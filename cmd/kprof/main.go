// Command kprof drives the full profiling workflow on the simulated
// machine: pick a scenario, instrument the kernel (optionally just selected
// modules), arm the Profiler, run, and print the analysis — the same
// workflow the paper describes against real hardware.
//
// Examples:
//
//	kprof -scenario netrecv -duration 400ms -report summary -top 12
//	kprof -scenario forkexec -count 3 -report trace -maxlines 120
//	kprof -scenario netrecv -modules if_we,ip_input,tcp_input -report summary
//	kprof -scenario mixed -save run.kprof -tagsout run.tags
//	kprof -load run.kprof -tags run.tags -report groups
//
// Multi-seed sweeps fan the same scenario across many seeds on a worker
// pool and print the cross-seed aggregate (mean ± stddev per function):
//
//	kprof -scenario netrecv -seeds 1..32 -parallel 8 -report sweep
//	kprof -scenario forkexec -seeds 1..16 -count 2 -report sweep -top 15
//
// Exporters hand the reconstruction to modern viewers, and -http serves
// live capture status while the run executes:
//
//	kprof -scenario netrecv -pprof out.pb.gz -trace out.json -http :6060
//	go tool pprof -top out.pb.gz
//
// The benchmark harness measures the analysis hot paths (streaming decode,
// drain-and-stitch capture, multi-seed sweep) and gates regressions against
// a committed BENCH_*.json artifact:
//
//	kprof -bench BENCH_5.json
//	kprof -bench /tmp/now.json -benchquick
//	kprof -benchcmp BENCH_5.json,/tmp/now.json
//
// Fleet mode runs N heterogeneous machines under continuous capture and
// streams every drained segment through one ingest pipeline into a
// windowed cross-fleet aggregate:
//
//	kprof -fleet 6 -fleetmix netrecv=2,proday=1 -duration 200ms -window 50ms
//	kprof -fleet 4 -fleetworkers 2 -fleetjson fleet.json -http :6060
//
// The profile-guided loop closes the paper's "before and after" cycle:
// -budget solves which functions the next profile should instrument, and
// -pgo applies each proposed kernel change, re-profiles under the
// identical seed, and verifies the measured delta against the what-if
// estimate:
//
//	kprof -scenario netrecv -budget 16 -budgetoverhead 5000
//	kprof -scenario netrecv -pgo -duration 150ms -seed 1
//	kprof -pgo -optimize recode-in-cksum,link-mbufs -seeds 1..8 -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kprof/internal/analyze"
	"kprof/internal/bench"
	"kprof/internal/core"
	"kprof/internal/export"
	"kprof/internal/faults"
	"kprof/internal/fleet"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/loadgen"
	"kprof/internal/netstack"
	"kprof/internal/sim"
	"kprof/internal/sweep"
	"kprof/internal/tagfile"
	"kprof/internal/workload"
)

func main() {
	var (
		scenario   = flag.String("scenario", "netrecv", "workload: netrecv, netrecv-long, forkexec, ffswrite, ffsread, nfsftp, mixed, proday, embedded, embedded-old")
		duration   = flag.Duration("duration", 400*time.Millisecond, "virtual duration for time-based scenarios")
		count      = flag.Int("count", 3, "iterations for count-based scenarios (forkexec)")
		arrivals   = flag.String("arrivals", "poisson", "arrival process for loadgen-driven scenarios (proday): poisson, burst, const")
		rate       = flag.Float64("rate", 0, "total arrival rate in events per simulated second for loadgen-driven scenarios (0 = scenario default)")
		conns      = flag.Int("conns", 0, "concurrent connection count for proday (0 = 2000)")
		mix        = flag.String("mix", "", "proday class weights, e.g. net=70,disk=12,vm=8,nfs=5,snmp=5 (empty = defaults)")
		report     = flag.String("report", "summary", "report: summary, trace, groups, hist, timeline, callgraph, json")
		top        = flag.Int("top", 20, "rows in the summary report (0 = all)")
		maxlines   = flag.Int("maxlines", 80, "lines in the trace report (0 = all)")
		fn         = flag.String("fn", "bcopy", "function for -report hist")
		modules    = flag.String("modules", "", "comma-separated modules to instrument (selective profiling); empty = whole kernel")
		seed       = flag.Uint64("seed", 42, "simulation seed")
		seeds      = flag.String("seeds", "", "seed set for a multi-seed sweep, e.g. 1..32 or 1,2,7 (enables -report sweep)")
		parallel   = flag.Int("parallel", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
		depth      = flag.Int("depth", 0, "profiler RAM depth (0 = 16384)")
		drain      = flag.Bool("drain", false, "continuous capture: drain the card through the EPROM socket before it overflows")
		highWater  = flag.Int("highwater", 0, "drain when this many records are stored (0 = 3/4 of depth; needs -drain)")
		drainEvery = flag.Duration("draininterval", 0, "virtual fill-level poll period (0 = 1ms; needs -drain)")
		segments   = flag.Bool("segments", false, "print the drain-segment summary before the report")
		save       = flag.String("save", "", "write the raw capture to this file")
		tagsOut    = flag.String("tagsout", "", "write the name/tag file to this file")
		load       = flag.String("load", "", "analyze a saved capture instead of running a scenario")
		tagsIn     = flag.String("tags", "", "name/tag file for -load")
		pprofOut   = flag.String("pprof", "", "write the analysis as a gzipped pprof profile (view with `go tool pprof`)")
		traceOut   = flag.String("trace", "", "write the analysis as a Chrome trace_event JSON file (view in Perfetto or chrome://tracing)")
		httpAddr   = flag.String("http", "", "serve live capture status on this address, e.g. :6060 (JSON + HTML + SSE /events + /timeseries.json + live /pprof and /trace.json); keeps serving after the run")
		ringCap    = flag.Int("ringcap", 0, "points retained per time-series ring on the -http endpoint (0 = 256 windows / 512 load samples)")
		faultsOn   = flag.Bool("faults", false, "inject deterministic hardware faults into the capture (robustness testing)")
		faultRate  = flag.Float64("faultrate", 0.01, "per-strobe fault probability in [0,1] (needs -faults)")
		faultSeed  = flag.Uint64("faultseed", 1, "fault-injector seed; sweeps derive a per-seed stream from it (needs -faults)")
		pipeline   = flag.Bool("pipeline", false, "decode drained segments on a background goroutine, overlapping readout with analysis (needs -drain)")
		benchOut   = flag.String("bench", "", "run the benchmark suite and write the BENCH json artifact to this file (- for stdout)")
		benchQuick = flag.Bool("benchquick", false, "trim the benchmark suite to the fast check-in configuration (needs -bench)")
		benchCmp   = flag.String("benchcmp", "", "compare two BENCH json artifacts, 'old.json,new.json'; exits 1 on regression")
		benchTol   = flag.Float64("benchtol", 0, "regression tolerance percentage for -benchcmp (0 = 15)")
		fleetN     = flag.Int("fleet", 0, "fleet mode: run this many machines under continuous capture through one ingest pipeline")
		fleetMix   = flag.String("fleetmix", "netrecv", "scenario mix for -fleet, e.g. netrecv=2,proday=1 (weights cycle across machines)")
		fleetWrk   = flag.Int("fleetworkers", 0, "projection workers for -fleet (0 = GOMAXPROCS; the report bytes do not depend on it)")
		window     = flag.Duration("window", 100*time.Millisecond, "fleet aggregation window in virtual time (needs -fleet)")
		fleetJSON  = flag.String("fleetjson", "", "write the fleet report as JSON (schema kprof-fleet/1) to this file (- for stdout; needs -fleet)")
		pgoRun     = flag.Bool("pgo", false, "profile-guided optimize-verify loop: profile the scenario, apply each proposed kernel change, re-profile under the identical seed, and verify the measured delta against the what-if estimate (with -seeds, prints the sweep-level verification table)")
		optimize   = flag.String("optimize", "", "comma-separated proposed changes for -pgo, e.g. recode-in-cksum,cheaper-bcopy (empty = the full registry)")
		budgetTags = flag.Int("budget", 0, "instrumentation tag budget: profile the scenario once, then print the optimal set of functions to instrument within this many tags")
		budgetOvh  = flag.Int64("budgetoverhead", 0, "trigger-overhead budget in microseconds for -budget (0 = unconstrained)")
	)
	flag.Parse()

	if *benchCmp != "" {
		if err := runBenchCmp(*benchCmp, *benchTol); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if *benchOut != "" {
		if err := runBench(*benchOut, *benchQuick, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	var status *export.StatusServer
	serveStatus := func(scenario string) {
		if *httpAddr == "" {
			return
		}
		status = export.NewStatusServer()
		if *ringCap > 0 {
			status.SetRingCap(*ringCap, 2**ringCap)
		}
		status.SetScenario(scenario)
		status.SetState("running")
		url, _, err := status.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "kprof: live status at %s (/, /status.json, /events, /timeseries.json, /pprof, /trace.json)\n", url)
	}
	// finish flushes the exporters, publishes the analysis to the live
	// /pprof and /trace.json endpoints, parks the status server in its
	// "done" state, and exits the process.
	finish := func(a *analyze.Analysis) {
		if a != nil {
			if err := writeExports(a, *pprofOut, *traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "kprof:", err)
				os.Exit(1)
			}
		}
		if status != nil {
			if a != nil {
				status.PublishAnalysis(a)
			}
			status.SetState("done")
			fmt.Fprintf(os.Stderr, "kprof: run finished; status endpoint still serving (Ctrl-C to exit)\n")
			select {}
		}
		os.Exit(0)
	}

	if *load != "" {
		serveStatus("(saved capture)")
		a, err := analyzeSaved(*load, *tagsIn, *report, *top, *maxlines, *fn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		finish(a)
	}

	var mods []string
	if *modules != "" {
		mods = strings.Split(*modules, ",")
	}
	arrivalKind, err := loadgen.ParseKind(*arrivals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kprof:", err)
		os.Exit(1)
	}
	prodayMix, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kprof:", err)
		os.Exit(1)
	}
	params := workload.Params{
		Duration: sim.Time(duration.Nanoseconds()),
		Count:    *count,
		Arrivals: arrivalKind,
		Rate:     *rate,
		Conns:    *conns,
		Mix:      prodayMix,
	}
	mode := core.CaptureOneShot
	if *drain {
		mode = core.CaptureContinuous
	}
	drainCfg := core.DrainConfig{HighWater: *highWater, Interval: sim.Time(drainEvery.Nanoseconds()), Pipeline: *pipeline}
	var faultCfg *faults.Config
	if *faultsOn {
		if *faultRate < 0 || *faultRate > 1 {
			fmt.Fprintf(os.Stderr, "kprof: -faultrate %v outside [0,1]\n", *faultRate)
			os.Exit(1)
		}
		faultCfg = &faults.Config{Seed: *faultSeed, Rate: *faultRate}
	}
	profileCfg := core.ProfileConfig{Mode: mode, Drain: drainCfg, Modules: mods, Depth: *depth, Faults: faultCfg}
	if *budgetTags != 0 || *budgetOvh != 0 {
		if err := runBudget(*scenario, *budgetTags, *budgetOvh, *seed, params, profileCfg); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if *pgoRun {
		if err := runPGO(*scenario, *seeds, *optimize, *parallel, *seed, params, profileCfg, *top); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if *fleetN > 0 {
		serveStatus(fmt.Sprintf("fleet of %d (%s)", *fleetN, *fleetMix))
		var onProgress func(fleet.Progress)
		var onWindow func(fleet.WindowSummary)
		if status != nil {
			onProgress = status.OnFleetProgress
			onWindow = status.OnFleetWindow
		}
		if err := runFleet(*fleetN, *fleetMix, *fleetWrk, *seed, params,
			sim.Time(window.Nanoseconds()), *top, *fleetJSON, onProgress, onWindow); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		finish(nil)
	}
	if *seeds != "" || *report == "sweep" {
		// The per-run exporters need one analysis; a sweep has many.
		if *pprofOut != "" || *traceOut != "" {
			fmt.Fprintln(os.Stderr, "kprof: -pprof/-trace export a single run; drop -seeds or pick one -seed")
			os.Exit(1)
		}
		serveStatus(*scenario)
		var onProgress func(sweep.Progress)
		if status != nil {
			onProgress = status.OnSweepProgress
		}
		if err := runSweep(*scenario, *seeds, *parallel, *seed,
			params, mods, *depth, *top, mode, drainCfg, faultCfg, onProgress); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		finish(nil)
	}
	if *scenario == "embedded" || *scenario == "embedded-old" {
		serveStatus(*scenario)
		a, err := runEmbedded(*scenario == "embedded-old", sim.Time(duration.Nanoseconds()),
			*seed, mods, *report, *top, *maxlines, *fn, status)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		finish(a)
	}
	serveStatus(*scenario)
	m := core.NewMachine(kernel.Config{Seed: *seed})
	if sc, ok := workload.FindScenario(*scenario); ok && sc.Setup != nil {
		// Scenario setup registers kernel functions; it must precede
		// instrumentation to be visible to the profile.
		if err := sc.Setup(m, params); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
	}
	s, err := core.NewSession(m, profileCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kprof:", err)
		os.Exit(1)
	}
	if status != nil {
		s.SetProgress(status.OnSessionProgress)
	}

	s.Arm()
	if err := runScenario(m, *scenario, params); err != nil {
		fmt.Fprintln(os.Stderr, "kprof:", err)
		os.Exit(1)
	}
	s.Disarm()

	if err := s.DrainErr(); err != nil {
		// A failed drain strands its bank — accounted as dropped strobes on
		// an empty segment, visible in -segments and the summary header —
		// but capture continued, so the profile is still valid.
		fmt.Fprintf(os.Stderr, "kprof: %d drain(s) failed readout; stranded banks are accounted as dropped strobes (first error: %v)\n",
			s.DrainErrs(), err)
	}
	if mode == core.CaptureOneShot && s.Card.Overflowed() {
		fmt.Fprintf(os.Stderr, "kprof: note: profiler RAM overflowed after %d events; the capture is the head of the run (rerun with -drain to keep everything)\n", s.Card.Stored())
	}

	if *save != "" {
		// A drained run's records live host-side; flatten the segments
		// into one capture file (drain boundaries are not preserved).
		c := s.Capture()
		if segs := s.Segments(); len(segs) > 0 {
			c = segs[0].Capture
			c.Records = append([]hw.Record(nil), c.Records...)
			for _, seg := range segs[1:] {
				c.Records = append(c.Records, seg.Capture.Records...)
				c.Dropped += seg.Capture.Dropped
				c.Overflowed = c.Overflowed || seg.Capture.Overflowed
			}
		}
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		if _, err := c.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if *tagsOut != "" {
		f, err := os.Create(*tagsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		if err := s.Tags.Format(f); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
		f.Close()
	}

	a := s.Analyze()
	if st, ok := s.FaultStats(); ok {
		fmt.Fprintf(os.Stderr, "kprof: faults injected: %s\n", st)
		fmt.Fprintf(os.Stderr, "kprof: decode found %d corrupt records, repaired %d timestamps, %d resyncs\n",
			a.Stats.CorruptRecords, a.Stats.RepairedTimestamps, a.Stats.Resyncs)
	}
	if *segments {
		a.WriteSegments(os.Stdout)
		if n := s.DrainErrs(); n > 0 {
			fmt.Printf("%d drain(s) failed readout verification (first: %v; %d suppressed); their banks appear above as zero-record lossy segments\n",
				n, s.DrainErr(), n-1)
		}
		fmt.Println()
	}
	printReport(a, m, *report, *top, *maxlines, *fn)
	finish(a)
}

// runFleet builds the fleet from the mix spec, runs it through the ingest
// pipeline, and prints the windowed report (plus the JSON document when
// requested).
func runFleet(n int, mixSpec string, workers int, seed uint64, params workload.Params, window sim.Time, top int, jsonPath string, onProgress func(fleet.Progress), onWindow func(fleet.WindowSummary)) error {
	machines, err := fleet.MachinesFromMix(n, mixSpec, seed, params)
	if err != nil {
		return err
	}
	res, err := fleet.Run(fleet.Config{
		Machines:   machines,
		Window:     window,
		Workers:    workers,
		OnProgress: onProgress,
		OnWindow:   onWindow,
	})
	if err != nil {
		return err
	}
	if err := res.Write(os.Stdout, top); err != nil {
		return err
	}
	if jsonPath != "" {
		w := os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := res.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}

// runBench executes the benchmark suite and writes the BENCH json artifact
// to path ("-" = stdout), echoing a human-readable table to stderr.
func runBench(path string, quick bool, seed uint64) error {
	rep, err := bench.Run(bench.Config{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(os.Stderr, "kprof: %-16s %9d records  %8.1f ns/record  %7.3f allocs/record  %6.1f B/record\n",
			b.Name, b.Records, b.NsPerRecord, b.AllocsPerRecord, b.BytesPerRecord)
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteJSON(w)
}

// runBenchCmp gates the artifact after the comma against the one before it,
// reporting every benchmark that regressed past the tolerance.
func runBenchCmp(spec string, tolerancePct float64) error {
	oldPath, newPath, ok := strings.Cut(spec, ",")
	if !ok || oldPath == "" || newPath == "" {
		return fmt.Errorf("-benchcmp wants 'old.json,new.json', got %q", spec)
	}
	oldRep, err := bench.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newRep, err := bench.ReadFile(newPath)
	if err != nil {
		return err
	}
	regs := bench.Compare(oldRep, newRep, tolerancePct)
	if len(regs) > 0 {
		for _, g := range regs {
			fmt.Fprintln(os.Stderr, "kprof: regression:", g)
		}
		return fmt.Errorf("%d benchmark regression(s) between %s and %s", len(regs), oldPath, newPath)
	}
	fmt.Printf("benchcmp: %s vs %s: no regressions in %d benchmarks\n",
		oldPath, newPath, len(newRep.Benchmarks))
	return nil
}

// parseMix parses the -mix spec ("net=70,disk=12,vm=8,nfs=5,snmp=5"); an
// empty spec keeps the scenario defaults, and omitted classes get weight 0.
func parseMix(spec string) (workload.ProdayMix, error) {
	var m workload.ProdayMix
	if spec == "" {
		return m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("-mix entry %q wants class=weight", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return m, fmt.Errorf("-mix entry %q: bad weight %q", part, val)
		}
		switch name {
		case "net":
			m.Net = w
		case "disk":
			m.Disk = w
		case "vm":
			m.VM = w
		case "nfs":
			m.NFS = w
		case "snmp":
			m.SNMP = w
		default:
			return m, fmt.Errorf("-mix entry %q: unknown class (want net, disk, vm, nfs, snmp)", part)
		}
	}
	return m, nil
}

// writeExports runs the file exporters requested on the command line.
func writeExports(a *analyze.Analysis, pprofPath, tracePath string) error {
	if pprofPath != "" {
		f, err := os.Create(pprofPath)
		if err != nil {
			return err
		}
		if err := export.WritePprof(f, a, export.PprofOptions{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := export.WriteChromeTrace(f, a); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func runScenario(m *core.Machine, scenario string, params workload.Params) error {
	if sc, ok := workload.FindScenario(scenario); ok {
		line, err := sc.Run(m, params)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n\n", line)
		return nil
	}
	switch scenario {
	case "nfsftp":
		nres, err := workload.NFSTransfer(m, 128*1024)
		if err != nil {
			return err
		}
		fmt.Printf("nfs: %d bytes, elapsed %v, CPU proxy %v\n", nres.Bytes, nres.Elapsed, nres.CPUProxy)
		m2 := core.NewMachine(kernel.Config{Seed: 1})
		fres, err := workload.FTPTransfer(m2, 128*1024)
		if err != nil {
			return err
		}
		fmt.Printf("ftp: %d bytes, elapsed %v, CPU proxy %v\n\n", fres.Bytes, fres.Elapsed, fres.CPUProxy)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	return nil
}

func printReport(a *analyze.Analysis, m *core.Machine, report string, top, maxlines int, fn string) {
	switch report {
	case "summary":
		a.WriteSummary(os.Stdout, top)
	case "trace":
		a.WriteTrace(os.Stdout, analyze.TraceOptions{MaxLines: maxlines})
	case "groups":
		var groupOf map[string]string
		if m != nil {
			groupOf = m.SubsystemOf()
		}
		analyze.WriteGroups(os.Stdout, a.Groups(groupOf))
	case "hist":
		a.HistogramOf(fn).Write(os.Stdout)
	case "timeline":
		var groupOf map[string]string
		if m != nil {
			groupOf = m.SubsystemOf()
		}
		a.Timeline(groupOf, 72).Write(os.Stdout)
	case "callgraph":
		g := a.CallGraph()
		g.Write(os.Stdout, top)
		if fn != "" {
			fmt.Println()
			g.WriteFunction(os.Stdout, fn)
		}
	case "json":
		if err := a.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "kprof:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "kprof: unknown report %q\n", report)
		os.Exit(1)
	}
}

// runSweep fans the scenario across a seed set on a worker pool and prints
// the cross-seed aggregate. With -report sweep but no -seeds, the single
// -seed value runs (a one-seed sweep).
func runSweep(scenario, spec string, parallel int, seed uint64, params workload.Params, mods []string, depth, top int, mode core.CaptureMode, drain core.DrainConfig, faultCfg *faults.Config, onProgress func(sweep.Progress)) error {
	var seedSet []uint64
	if spec == "" {
		seedSet = []uint64{seed}
	} else {
		var err error
		if seedSet, err = sweep.ParseSeeds(spec); err != nil {
			return err
		}
	}
	res, err := sweep.Run(sweep.Config{
		Scenario:   scenario,
		Seeds:      seedSet,
		Parallel:   parallel,
		Params:     params,
		Profile:    core.ProfileConfig{Mode: mode, Drain: drain, Modules: mods, Depth: depth, Faults: faultCfg},
		OnProgress: onProgress,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s sweep: %d seeds on %d workers\n", res.Scenario, len(res.PerSeed), res.Workers)
	fmt.Printf("first seed: %s\n", res.PerSeed[0].Workload)
	if mode == core.CaptureContinuous {
		var segs int
		var lost uint64
		for _, r := range res.PerSeed {
			segs += r.Segments
			lost += r.Dropped
		}
		fmt.Printf("drained %d segments across %d seeds, %d strobes lost\n", segs, len(res.PerSeed), lost)
	}
	if faultCfg != nil {
		var injected uint64
		var corrupt, repaired, resyncs int
		for _, r := range res.PerSeed {
			injected += r.Faults
			corrupt += r.Corrupt
			repaired += r.Repaired
			resyncs += r.Resyncs
		}
		fmt.Printf("faults: %d injected across %d seeds; decode found %d corrupt records, repaired %d timestamps, %d resyncs\n",
			injected, len(res.PerSeed), corrupt, repaired, resyncs)
	}
	fmt.Println()
	return res.Agg.Write(os.Stdout, top)
}

// runEmbedded profiles the Megadata 68020 platform (the paper's first case
// study): `-scenario embedded` uses the recoded Ethernet driver,
// `-scenario embedded-old` the original double-copy one.
func runEmbedded(oldDriver bool, d sim.Time, seed uint64, mods []string, report string, top, maxlines int, fn string, status *export.StatusServer) (*analyze.Analysis, error) {
	style := netstack.DriverRecoded
	if oldDriver {
		style = netstack.DriverOld
	}
	m, le := core.NewEmbeddedMachine(kernel.Config{Seed: seed}, style)
	s, err := core.NewSession(m, core.ProfileConfig{Modules: mods})
	if err != nil {
		return nil, err
	}
	if status != nil {
		s.SetProgress(status.OnSessionProgress)
	}
	s.Arm()
	res, err := workload.EmbeddedNetReceive(m, le, d)
	if err != nil {
		return nil, err
	}
	s.Disarm()
	fmt.Printf("embedded (68020, %v driver): %d bytes delivered, %d frames, %d drops\n\n",
		style, res.BytesDelivered, res.Frames, res.Drops)
	a := s.Analyze()
	printReport(a, m, report, top, maxlines, fn)
	return a, nil
}

func analyzeSaved(capPath, tagsPath, report string, top, maxlines int, fn string) (*analyze.Analysis, error) {
	if tagsPath == "" {
		return nil, fmt.Errorf("-load requires -tags")
	}
	cf, err := os.Open(capPath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	c, err := hw.ReadCapture(cf)
	if err != nil {
		return nil, err
	}
	tf, err := os.Open(tagsPath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	tags, err := tagfile.Parse(tf)
	if err != nil {
		return nil, err
	}
	// Saved captures come from arbitrary hardware in arbitrary health;
	// analyze through the hardened pipeline.
	a := analyze.ReconstructCapture(c, tags, analyze.ReconstructOptions{Repair: analyze.DefaultRepair()})
	printReport(a, nil, report, top, maxlines, fn)
	return a, nil
}
