package main

import (
	"fmt"
	"os"
	"strings"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/pgo"
	"kprof/internal/sweep"
	"kprof/internal/workload"
)

// runPGO executes the optimize-verify loop (-pgo): baseline profile,
// apply each proposed change, re-profile under the identical seed, verify
// against the what-if estimate. With a -seeds spec the whole loop runs
// per seed and the sweep-level verification table prints instead.
func runPGO(scenario, seedsSpec, optimizeSpec string, parallel int, seed uint64,
	params workload.Params, profile core.ProfileConfig, top int) error {
	changes, err := parseChanges(optimizeSpec)
	if err != nil {
		return err
	}
	cfg := pgo.LoopConfig{
		Scenario: scenario,
		Seed:     seed,
		Params:   params,
		Profile:  profile,
		Changes:  changes,
	}
	if seedsSpec != "" {
		seedSet, err := sweep.ParseSeeds(seedsSpec)
		if err != nil {
			return err
		}
		sw, err := pgo.RunLoopSweep(cfg, seedSet, parallel)
		if err != nil {
			return err
		}
		return sw.Write(os.Stdout)
	}
	r, err := pgo.RunLoop(cfg)
	if err != nil {
		return err
	}
	return r.Write(os.Stdout, top)
}

// parseChanges resolves the -optimize spec; empty selects the full
// registry.
func parseChanges(spec string) ([]pgo.Change, error) {
	if spec == "" {
		return nil, nil
	}
	return pgo.FindChanges(strings.Split(spec, ","))
}

// runBudget profiles the scenario once, then solves the
// instrumentation-budget problem (-budget): which functions should the
// next profile instrument to attribute the most net time within the tag
// budget. The plan prints in density order.
func runBudget(scenario string, tags int, overheadUS int64, seed uint64,
	params workload.Params, profile core.ProfileConfig) error {
	sc, ok := workload.FindScenario(scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (have %v)", scenario, workload.ScenarioNames())
	}
	m := core.NewMachine(kernel.Config{Seed: seed})
	if sc.Setup != nil {
		if err := sc.Setup(m, params); err != nil {
			return err
		}
	}
	s, err := core.NewSession(m, profile)
	if err != nil {
		return err
	}
	s.Arm()
	if _, err := sc.Run(m, params); err != nil {
		return err
	}
	s.Disarm()
	cands := pgo.CandidatesFromAnalysis(s.AnalyzeLean(), m.ModuleOf())
	plan := pgo.Optimize(cands, pgo.Budget{Tags: tags, OverheadNs: overheadUS * 1000})
	fmt.Printf("profiled %s (seed %d): %d candidate functions\n", scenario, seed, plan.Considered)
	return plan.Write(os.Stdout)
}
