// Command tagtool maintains name/tag files: create one from scratch with a
// starting dummy entry, verify a file, merge per-module-group files, assign
// tags to new function names, and mark modifiers — the housekeeping the
// paper's modified compiler and build scripts performed.
//
//	tagtool new -start 500 -o kernel.tags
//	tagtool verify kernel.tags
//	tagtool merge -o all.tags net.tags fs.tags vm.tags
//	tagtool assign -o kernel.tags kernel.tags myfunc otherfunc
//	tagtool mark -o kernel.tags kernel.tags swtch
//	tagtool resolve kernel.tags 1386
package main

import (
	"fmt"
	"os"
	"strconv"

	"kprof/internal/tagfile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "new":
		err = cmdNew(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "assign":
		err = cmdAssign(os.Args[2:])
	case "mark":
		err = cmdMark(os.Args[2:])
	case "resolve":
		err = cmdResolve(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tagtool {new|verify|merge|assign|mark|resolve} ...")
	os.Exit(2)
}

// popFlag extracts "-name value" pairs from a simple argument list.
func popFlag(args []string, name string) (string, []string) {
	for i := 0; i+1 < len(args); i++ {
		if args[i] == "-"+name {
			return args[i+1], append(args[:i:i], args[i+2:]...)
		}
	}
	return "", args
}

func writeOut(f *tagfile.File, out string) error {
	if out == "" || out == "-" {
		return f.Format(os.Stdout)
	}
	fh, err := os.Create(out)
	if err != nil {
		return err
	}
	defer fh.Close()
	return f.Format(fh)
}

func loadFile(path string) (*tagfile.File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return tagfile.Parse(fh)
}

func cmdNew(args []string) error {
	startStr, args := popFlag(args, "start")
	out, _ := popFlag(args, "o")
	start := uint64(500)
	if startStr != "" {
		var err error
		start, err = strconv.ParseUint(startStr, 10, 16)
		if err != nil {
			return err
		}
	}
	f, err := tagfile.NewStartingAt(uint16(start))
	if err != nil {
		return err
	}
	return writeOut(f, out)
}

func cmdVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("verify takes one file")
	}
	f, err := loadFile(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d entries, %d functions, next tag %d\n",
		args[0], f.Len(), len(f.Functions()), f.NextTag())
	return nil
}

func cmdMerge(args []string) error {
	out, args := popFlag(args, "o")
	if len(args) < 1 {
		return fmt.Errorf("merge needs input files")
	}
	merged := tagfile.New()
	for _, path := range args {
		f, err := loadFile(path)
		if err != nil {
			return err
		}
		if err := merged.Merge(f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return writeOut(merged, out)
}

func cmdAssign(args []string) error {
	out, args := popFlag(args, "o")
	if len(args) < 2 {
		return fmt.Errorf("assign needs a file and function names")
	}
	f, err := loadFile(args[0])
	if err != nil {
		return err
	}
	for _, name := range args[1:] {
		e, err := f.Assign(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s\n", e)
	}
	return writeOut(f, out)
}

func cmdMark(args []string) error {
	out, args := popFlag(args, "o")
	if len(args) != 2 {
		return fmt.Errorf("mark needs a file and a function name")
	}
	f, err := loadFile(args[0])
	if err != nil {
		return err
	}
	if err := f.MarkContextSwitch(args[1]); err != nil {
		return err
	}
	return writeOut(f, out)
}

func cmdResolve(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("resolve needs a file and a tag value")
	}
	f, err := loadFile(args[0])
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(args[1], 10, 16)
	if err != nil {
		return err
	}
	e, kind := f.Resolve(uint16(v))
	switch kind {
	case tagfile.FunctionEntry:
		fmt.Printf("%d: entry of %s\n", v, e.Name)
	case tagfile.FunctionExit:
		fmt.Printf("%d: exit of %s\n", v, e.Name)
	case tagfile.InlineTag:
		fmt.Printf("%d: inline %s\n", v, e.Name)
	default:
		fmt.Printf("%d: unknown tag\n", v)
	}
	return nil
}
