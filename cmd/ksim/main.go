// Command ksim runs the simulated kernel without the Profiler attached —
// the baseline for the paper's claim that "no noticeable difference can be
// detected between a profiled and a non-profiled kernel". It prints the
// kernel's traditional event counters (the coarse measurement facility the
// Profiler supersedes) and, with -compare, runs the same scenario
// instrumented to report the trigger overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "netrecv", "workload: netrecv, forkexec, ffswrite, mixed")
		duration = flag.Duration("duration", 400*time.Millisecond, "virtual duration")
		count    = flag.Int("count", 3, "iterations for forkexec")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		compare  = flag.Bool("compare", false, "also run instrumented and report the overhead")
	)
	flag.Parse()

	bare := run(*scenario, *seed, sim.Time(duration.Nanoseconds()), *count, false)
	fmt.Printf("bare kernel:        work metric = %v\n", bare)
	printStats(*scenario, *seed, sim.Time(duration.Nanoseconds()), *count)

	if *compare {
		prof := run(*scenario, *seed, sim.Time(duration.Nanoseconds()), *count, true)
		fmt.Printf("profiled kernel:    work metric = %v\n", prof)
		if bare > 0 {
			fmt.Printf("trigger overhead:   %+.2f%%\n", 100*(float64(prof)/float64(bare)-1))
		}
	}
}

// run executes the scenario and returns a scenario-specific work metric
// (time for fixed work, so overhead comparisons are meaningful).
func run(scenario string, seed uint64, d sim.Time, count int, instrumented bool) sim.Time {
	m := core.NewMachine(kernel.Config{Seed: seed})
	if instrumented {
		if _, err := core.NewSession(m, core.ProfileConfig{}); err != nil {
			fmt.Fprintln(os.Stderr, "ksim:", err)
			os.Exit(1)
		}
	}
	switch scenario {
	case "netrecv":
		res, err := workload.NetReceive(m, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ksim:", err)
			os.Exit(1)
		}
		if res.BytesDelivered == 0 {
			return 0
		}
		// Time per delivered byte.
		return d / sim.Time(res.BytesDelivered)
	case "forkexec":
		res := workload.ForkExec(m, count)
		return res.ForkTime + res.ExecTime
	case "ffswrite":
		res := workload.FFSWrite(m, d)
		if res.BytesWritten == 0 {
			return 0
		}
		return d / sim.Time(res.BytesWritten/1024)
	case "mixed":
		start := m.K.Now()
		workload.Mixed(m, d)
		return m.K.Now() - start
	default:
		fmt.Fprintf(os.Stderr, "ksim: unknown scenario %q\n", scenario)
		os.Exit(1)
	}
	return 0
}

// printStats reruns briefly and dumps the kernel's event-counter block.
func printStats(scenario string, seed uint64, d sim.Time, count int) {
	m := core.NewMachine(kernel.Config{Seed: seed})
	switch scenario {
	case "netrecv":
		workload.NetReceive(m, d)
	case "forkexec":
		workload.ForkExec(m, count)
	case "ffswrite":
		workload.FFSWrite(m, d)
	case "mixed":
		workload.Mixed(m, d)
	}
	st := m.K.Stats
	fmt.Printf("event counters:     syscalls=%d interrupts=%d softintrs=%d ctxsw=%d ticks=%d faults=%d forks=%d execs=%d\n",
		st.Syscalls, st.Interrupts, st.SoftIntrs, st.ContextSw, st.Ticks, st.PageFaults, st.Forks, st.Execs)
}
