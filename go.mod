module kprof

go 1.22
