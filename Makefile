GO ?= go

.PHONY: all build test race bench gobench bench-check fuzz check fmt vet docs-check cover

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel sweep engine makes this routine: the full suite under the
# race detector, including the worker-pool tests.
race:
	$(GO) test -race ./...

# The perf-trajectory artifact: run the full deterministic benchmark suite
# (streaming decode, drain-and-stitch capture, multi-seed sweep, proday
# end to end, fleet ingest, live serving tier) and write BENCH_9.json — the artifact
# scripts/bench_check.sh gates regressions against. Bump the artifact
# number alongside the ISSUE/PR number.
bench:
	$(GO) run ./cmd/kprof -bench BENCH_9.json

# Regression gate: quick benchmark run compared against the newest
# committed BENCH_*.json (>15 % slower or more allocs per record fails).
bench-check:
	./scripts/bench_check.sh

# The conventional go-test microbenchmarks (exporters, decode internals).
gobench:
	$(GO) test -bench=. -benchmem

# Short fuzz passes over the decoder's timestamp unwrap, the
# segment-boundary stitching state, and the hardened (fault-surviving)
# decode pipeline.
fuzz:
	$(GO) test -run FuzzDecodeUnwrap -fuzz FuzzDecodeUnwrap -fuzztime 20s ./internal/analyze/
	$(GO) test -run FuzzSegmentBoundary -fuzz FuzzSegmentBoundary -fuzztime 20s ./internal/analyze/
	$(GO) test -run FuzzFaultedDecode -fuzz FuzzFaultedDecode -fuzztime 20s ./internal/analyze/

# Statement-coverage floors for the packages the fault-injection claims
# rest on (internal/analyze, internal/faults).
cover:
	./scripts/cover_check.sh

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Documentation consistency: every exported identifier in kprof.go has a
# doc comment, every relative markdown link resolves, and every kprof CLI
# flag is covered in README.md.
docs-check:
	./scripts/godoc_check.sh
	./scripts/docs_check.sh

# Everything tier-1 verification should cover: formatting, vet, build,
# tests, and the race detector.
check:
	./scripts/check.sh
