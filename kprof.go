// Package kprof is a reproduction of "Hardware Profiling of Kernels"
// (Andrew McRae, USENIX Winter 1993): a hardware event-tag profiler — a
// cheap card of RAM and counters piggy-backed on an EPROM socket — together
// with compiler-inserted trigger instructions and the host-side analysis
// software, measuring a simulated 386BSD-0.1-class kernel.
//
// The package is a facade over the internal implementation:
//
//   - NewMachine boots the simulated PC (kernel, VM, network stack,
//     filesystem, allocators) on a deterministic virtual clock.
//   - NewSession instruments the kernel (assigning event tags via the
//     name/tag file, performing the two-stage ProfileBase link) and plugs
//     the Profiler card into a spare EPROM socket.
//   - Workload functions (NetReceive, ForkExec, FFSWrite, ...) replay the
//     paper's case studies.
//   - Session.Analyze decodes the captured (tag, µs) stream and produces
//     the paper's reports: the per-function summary and the code-path
//     trace.
//   - Exporters (WritePprof, WriteChromeTrace) hand the reconstruction to
//     modern viewers — `go tool pprof` and Perfetto/chrome://tracing — and
//     StatusServer serves live capture status over HTTP.
//
// Quick start:
//
//	m := kprof.NewMachine(kprof.MachineConfig{Seed: 1})
//	s, _ := kprof.NewSession(m, kprof.ProfileConfig{})
//	s.Arm()
//	kprof.NetReceive(m, 400*kprof.Millisecond)
//	s.Disarm()
//	a := s.Analyze()
//	fmt.Print(a.SummaryString(10))
package kprof

import (
	"kprof/internal/analyze"
	"kprof/internal/bench"
	"kprof/internal/core"
	"kprof/internal/export"
	"kprof/internal/faults"
	"kprof/internal/fleet"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/loadgen"
	"kprof/internal/netstack"
	"kprof/internal/pgo"
	"kprof/internal/sampling"
	"kprof/internal/sim"
	"kprof/internal/snmp"
	"kprof/internal/sweep"
	"kprof/internal/tagfile"
	"kprof/internal/workload"
)

// Time is a virtual-time instant or duration in nanoseconds.
type Time = sim.Time

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// MachineConfig selects the simulated machine's parameters.
type MachineConfig = kernel.Config

// Machine is the simulated 40 MHz i386 PC running the modeled 386BSD
// kernel with all subsystems attached.
type Machine = core.Machine

// NewMachine boots a machine.
func NewMachine(cfg MachineConfig) *Machine { return core.NewMachine(cfg) }

// ProfileConfig selects what to instrument and where the card sits.
type ProfileConfig = core.ProfileConfig

// CaptureMode selects how a Session manages the card's finite RAM.
type CaptureMode = core.CaptureMode

// Capture modes: the paper's arm-run-pull workflow, or the drain-and-stitch
// pipeline that bounds captures by host memory instead of the 16384-entry
// RAM.
const (
	CaptureOneShot    = core.CaptureOneShot
	CaptureContinuous = core.CaptureContinuous
)

// DrainConfig tunes continuous capture (high-water mark and poll period).
type DrainConfig = core.DrainConfig

// Segment is one drained slice of a continuous capture, held host-side.
type Segment = core.Segment

// SegmentInfo is one segment's entry in a stitched Analysis: record count
// plus the losses (dropped strobes, force-closed frames) at its boundary.
type SegmentInfo = analyze.SegmentInfo

// Session is an instrumented kernel with the Profiler card attached.
type Session = core.Session

// NewSession instruments the machine per cfg and attaches the card.
func NewSession(m *Machine, cfg ProfileConfig) (*Session, error) {
	return core.NewSession(m, cfg)
}

// Profiler is the hardware card model.
type Profiler = hw.Profiler

// Capture is the raw data pulled from the card's battery-backed RAM.
type Capture = hw.Capture

// ReadCapture and WriteTo (on Capture) move captures between hosts.
var ReadCapture = hw.ReadCapture

// Analysis is a reconstructed capture: function statistics, idle
// accounting, and the trace timeline.
type Analysis = analyze.Analysis

// CallGraph is the measured caller/callee graph of a capture.
type CallGraph = analyze.CallGraph

// Comparison is a before/after report between two analyses — the paper's
// "accurate before and after measurements" workflow.
type Comparison = analyze.Comparison

// Compare builds a before/after comparison.
var Compare = analyze.Compare

// Timeline is the per-subsystem activity chart.
type Timeline = analyze.Timeline

// FnStat is one function's aggregated statistics.
type FnStat = analyze.FnStat

// TraceOptions controls trace rendering.
type TraceOptions = analyze.TraceOptions

// TagFile is the name/tag file shared by the compiler and the analyzer.
type TagFile = tagfile.File

// ParseTagFile parses a name/tag file ("name/value" lines with '!' and '='
// modifiers).
var ParseTagFile = tagfile.ParseString

// Analyze decodes and reconstructs a raw capture against a tag file, for
// captures loaded from disk rather than a live session. It runs the
// hardened pipeline — timestamp repair on — since a loaded capture's
// provenance is unknown; clean captures decode identically either way.
func Analyze(c Capture, tags *TagFile) *Analysis {
	return analyze.ReconstructCapture(c, tags, analyze.ReconstructOptions{Repair: analyze.DefaultRepair()})
}

// Stitch reconstructs a segmented capture — the drained slices of one
// continuous run, in drain order — into a single Analysis, reporting any
// per-boundary losses on Analysis.Segments. Like Analyze, it runs the
// hardened pipeline.
func Stitch(segs []Capture, tags *TagFile) *Analysis {
	return analyze.Stitch(segs, tags, analyze.ReconstructOptions{Repair: analyze.DefaultRepair()})
}

// RepairConfig tunes the decoder's timestamp-monotonicity repair; see
// analyze.RepairConfig for the heuristic.
type RepairConfig = analyze.RepairConfig

// DefaultRepair is the hardened pipeline's repair configuration.
var DefaultRepair = analyze.DefaultRepair

// Fault injection: a deterministic, seedable model of the card's analog
// failure modes (dropped/duplicated strobes, tag and timestamp bit flips,
// timer jitter, glitched readout). Attach one via ProfileConfig.Faults to
// prove an analysis pipeline survives broken hardware.
type (
	// FaultConfig configures the injector attached to a session's card.
	FaultConfig = faults.Config
	// FaultStats counts what an injector has done (Session.FaultStats).
	FaultStats = faults.Stats
	// FaultClass is a bitmask selecting fault classes.
	FaultClass = faults.Class
)

// Fault classes for FaultConfig.Classes.
const (
	// FaultDropStrobe loses latch strobes silently.
	FaultDropStrobe = faults.DropStrobe
	// FaultDupStrobe stores a strobe twice (a bounced strobe line).
	FaultDupStrobe = faults.DupStrobe
	// FaultTagFlip flips one bit on the 16 tag lines.
	FaultTagFlip = faults.TagFlip
	// FaultStampFlip flips one bit in the stored timestamp.
	FaultStampFlip = faults.StampFlip
	// FaultJitter perturbs the counter by a few ticks.
	FaultJitter = faults.Jitter
	// FaultReadoutGlitch misreads single bytes during socket readout.
	FaultReadoutGlitch = faults.ReadoutGlitch
	// FaultBankBurst corrupts a contiguous run of one RAM bank on drain.
	FaultBankBurst = faults.BankBurst
	// FaultAllClasses enables every fault class.
	FaultAllClasses = faults.AllClasses
)

// DeriveFaultSeed folds a sweep seed into a base fault seed, giving every
// seed of a sweep a distinct but reproducible fault stream.
var DeriveFaultSeed = faults.DeriveSeed

// Workload drivers (see internal/workload for details).
var (
	// NetReceive runs the TCP receive saturation study (Figures 3/4).
	NetReceive = workload.NetReceive
	// ForkExec runs the vfork/execve study (Figure 5).
	ForkExec = workload.ForkExec
	// FFSWrite streams sequential filesystem writes (the FFS study).
	FFSWrite = workload.FFSWrite
	// FFSRead performs seek-heavy reads.
	FFSRead = workload.FFSRead
	// NFSTransfer runs the NFS leg of the NFS-vs-FTP comparison.
	NFSTransfer = workload.NFSTransfer
	// FTPTransfer runs the FTP leg of the NFS-vs-FTP comparison.
	FTPTransfer = workload.FTPTransfer
	// Mixed is the everything-at-once background of Table 1.
	Mixed = workload.Mixed
	// RunFor advances the machine in virtual time.
	RunFor = workload.RunFor
	// ProdaySetup pre-registers the kernel state the proday scenario
	// needs; call it before NewSession.
	ProdaySetup = workload.ProdaySetup
	// Proday runs the open-loop "production day" stress: thousands of
	// TCP/UDP connections, fork storms, disk and VM pressure, NFS and
	// SNMP traffic, all driven by seeded arrival processes.
	Proday = workload.Proday
)

// Production-day scenario types.
type (
	// ProdayMix sets the per-class arrival weights for Proday.
	ProdayMix = workload.ProdayMix
	// ProdayResult summarises a Proday run.
	ProdayResult = workload.ProdayResult
)

// Open-loop load generation (see internal/loadgen): seeded arrival
// processes driven off the sim scheduler, so the same seed reproduces the
// same schedule bit for bit regardless of what the system under test does.
type (
	// ArrivalKind selects an arrival process for LoadGenConfig or
	// WorkloadParams.Arrivals.
	ArrivalKind = loadgen.Kind
	// LoadGenConfig parameterizes a load generator.
	LoadGenConfig = loadgen.Config
	// LoadGen generates one seeded arrival schedule.
	LoadGen = loadgen.Gen
)

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps.
	ArrivalPoisson = loadgen.Poisson
	// ArrivalBurst is an ON/OFF modulated Poisson process.
	ArrivalBurst = loadgen.Burst
	// ArrivalConst emits arrivals at a fixed interval.
	ArrivalConst = loadgen.Const
)

var (
	// NewLoadGen builds a load generator.
	NewLoadGen = loadgen.New
	// ParseArrivalKind parses the -arrivals flag spelling ("poisson",
	// "burst", "const").
	ParseArrivalKind = loadgen.ParseKind
)

// The SNMP MIB case study (linear list versus B-tree; see the paper's
// 68020 case studies section).
type (
	// SNMPAgent services GET/GETNEXT against a MIB store under profile.
	SNMPAgent = snmp.Agent
	// MIBStore is a MIB variable store.
	MIBStore = snmp.Store
	// OID is an SNMP object identifier.
	OID = snmp.OID
)

// SNMP case-study constructors.
var (
	NewLinearMIB = snmp.NewLinearStore
	NewBTreeMIB  = snmp.NewBTreeStore
	NewSNMPAgent = snmp.NewAgent
	// PopulateMIB fills a store with MIB-II-shaped entries.
	PopulateMIB = snmp.StandardMIB
)

// The Megadata 68020 embedded platform — the paper's first case-study
// machine, with multi-priority interrupt hardware and the Ethernet driver
// whose recoding doubled throughput.
type (
	// EmbeddedNIC is the board's LANCE-class Ethernet controller.
	EmbeddedNIC = netstack.LE
	// DriverStyle selects the old (double-copy) or recoded driver.
	DriverStyle = netstack.DriverStyle
)

// Driver generations for the embedded Ethernet.
const (
	DriverOld     = netstack.DriverOld
	DriverRecoded = netstack.DriverRecoded
)

// CksumMode selects the in_cksum implementation (set it on Machine.Net).
type CksumMode = netstack.CksumMode

// Checksum implementations: the shipped C code and the assembler-style
// recode the paper recommends.
const (
	CksumNaive     = netstack.CksumNaive
	CksumOptimized = netstack.CksumOptimized
)

// NewEmbeddedMachine boots the 68020 board; EmbeddedNetReceive runs the
// case-study workload on it.
var (
	NewEmbeddedMachine = core.NewEmbeddedMachine
	EmbeddedNetReceive = workload.EmbeddedNetReceive
)

// User-level profiling (the paper's User Code Profiling section): map the
// card into a process with Session.MapUser, register functions, and their
// triggers interleave with the kernel's in one capture.
type UserProgram = core.UserProgram

// SNMPServe runs the mixed kernel/user scenario: a profiled user-mode
// snmpd serving GETNEXT requests over UDP.
var SNMPServe = workload.SNMPServe

// Multi-seed sweeps: the deterministic simulator makes every run
// reproducible, so statistical confidence comes from rerunning a scenario
// under many seeds. Sweep fans (scenario, seed) runs across a worker pool
// — each worker boots its own Machine and Session and analyzes through
// the streaming decode path — and merges the per-seed results into
// cross-seed aggregate statistics (per-function mean/stddev/min/max and a
// stability measure).
type (
	// SweepConfig selects the scenario, seeds, pool size and per-worker
	// profiling configuration.
	SweepConfig = sweep.Config
	// SweepResult carries the per-seed results and the merged aggregate.
	SweepResult = sweep.Result
	// SweepSeedResult is one seed's compact outcome.
	SweepSeedResult = sweep.SeedResult
	// SweepAggregate is the cross-seed merge.
	SweepAggregate = sweep.Aggregate
	// SweepFnAggregate is one function's cross-seed statistics.
	SweepFnAggregate = sweep.FnAggregate
	// WorkloadParams tunes a registered scenario (duration, count, and
	// the proday load knobs: arrival process, rate, connections, mix).
	WorkloadParams = workload.Params
)

// Sweep runs a parallel multi-seed sweep.
func Sweep(cfg SweepConfig) (*SweepResult, error) { return sweep.Run(cfg) }

// ParseSeeds parses a seed-set specification such as "1..32" or
// "1..4,10,20..22".
var ParseSeeds = sweep.ParseSeeds

// ScenarioNames lists the workload scenarios a sweep can run.
var ScenarioNames = workload.ScenarioNames

// Exporters: the analysis rendered in the formats modern profiling
// consumers expect (see internal/export).
type (
	// PprofOptions tunes the pprof export (sampling period metadata).
	PprofOptions = export.PprofOptions
	// StatusServer is the live serving tier: /status.json and / (HTML)
	// with ETag revalidation, /events (SSE push through a bounded
	// fan-out hub that drops slow clients rather than block the capture
	// path), /timeseries.json (fixed-capacity ring of recent fleet
	// windows and load samples), and live /pprof + /trace.json rendered
	// from a published analysis. Fed by Session.SetProgress,
	// SweepConfig.OnProgress, FleetConfig.OnProgress and
	// FleetConfig.OnWindow hooks.
	StatusServer = export.StatusServer
	// SessionProgress is one capture-state snapshot delivered to a
	// Session.SetProgress hook.
	SessionProgress = core.Progress
	// SweepProgress is one scheduling event delivered to a
	// SweepConfig.OnProgress hook.
	SweepProgress = sweep.Progress
	// ServingStats is the SSE hub's lifetime accounting: current
	// subscribers, events published, slow clients dropped.
	ServingStats = export.HubStats
	// Timeseries is the /timeseries.json document: recent fleet window
	// summaries and ingest load samples, oldest first, plus lifetime
	// totals (schema kprof-timeseries/1).
	Timeseries = export.Timeseries
	// TimeseriesWindow is one closed fleet window in the time series.
	TimeseriesWindow = export.WindowPoint
	// TimeseriesLoad is one ingest load sample (backlog/throughput) in
	// the time series.
	TimeseriesLoad = export.LoadPoint
)

// TimeseriesSchema identifies the /timeseries.json document format.
const TimeseriesSchema = export.TimeseriesSchema

var (
	// MarshalPprof encodes an Analysis as an uncompressed pprof protobuf
	// profile with deterministic bytes.
	MarshalPprof = export.MarshalPprof
	// WritePprof writes the gzipped pprof profile `go tool pprof` expects.
	WritePprof = export.WritePprof
	// WriteChromeTrace writes the Chrome trace_event JSON file Perfetto
	// and chrome://tracing load.
	WriteChromeTrace = export.WriteChromeTrace
	// NewStatusServer builds a live status endpoint.
	NewStatusServer = export.NewStatusServer
)

// Benchmark harness: the deterministic perf-trajectory runner behind
// `kprof -bench` and the committed BENCH_N.json artifacts (see
// internal/bench). It measures records/sec, ns/record and allocs/record
// for the analysis hot paths; scripts/bench_check.sh gates regressions.
type (
	// BenchConfig tunes a benchmark run (quick configuration, base seed).
	BenchConfig = bench.Config
	// BenchReport is the full benchmark artifact serialized as BENCH_N.json.
	BenchReport = bench.Report
	// BenchResult is one hot path's measurement within a BenchReport.
	BenchResult = bench.Result
	// BenchRegression is one benchmark that got worse between two artifacts.
	BenchRegression = bench.Regression
)

// BenchSchema tags the BENCH_N.json format.
const BenchSchema = bench.Schema

// RunBench executes the benchmark suite and assembles the report.
func RunBench(cfg BenchConfig) (*BenchReport, error) { return bench.Run(cfg) }

// ReadBenchReport loads a BENCH_N.json artifact from disk.
var ReadBenchReport = bench.ReadFile

// CompareBench gates a new report against an old one, returning the
// benchmarks that regressed past the tolerance (worst first; 0 =
// the default 15 %).
var CompareBench = bench.Compare

// Sampler is the clock-sampling software profiler the paper contrasts the
// hardware approach with (granularity versus perturbation).
type Sampler = sampling.Sampler

// NewSampler installs a sampling profiler at rate Hz; skewed adds the
// pseudo-random period jitter the paper mentions.
func NewSampler(m *Machine, rate int, skewed bool) *Sampler {
	return sampling.New(m.K, rate, skewed)
}

// What-if estimation (the paper's Network Performance arithmetic).
type (
	// PacketCost is a measured per-packet cost breakdown.
	PacketCost = analyze.PacketCost
	// WhatIf is an estimated design alternative.
	WhatIf = analyze.WhatIf
)

var (
	// EstimateMbufLinking evaluates leaving packets in controller memory.
	EstimateMbufLinking = analyze.EstimateMbufLinking
	// EstimateOptimizedChecksum evaluates recoding in_cksum.
	EstimateOptimizedChecksum = analyze.EstimateOptimizedChecksum
)

// Fleet mode: many machines, one ingest pipeline. N heterogeneous
// simulated machines run continuous drain capture concurrently and stream
// every finished segment into a central staging store; projection workers
// commit them with atomic per-machine checkpoints under a monotonic fleet
// watermark, folding an incremental windowed cross-fleet aggregate (see
// internal/fleet and the DESIGN.md fleet section).
type (
	// FleetMachine describes one fleet machine: seed, scenario, card build.
	FleetMachine = fleet.MachineConfig
	// FleetConfig describes a fleet run (machines, window, workers,
	// staging bound, progress hook).
	FleetConfig = fleet.Config
	// FleetResult is a finished fleet run: the closed windows and the
	// cumulative aggregate, rendered by Write/WriteJSON.
	FleetResult = fleet.Result
	// FleetWindow is one closed aggregation window's summary.
	FleetWindow = fleet.WindowSummary
	// FleetProgress is a point-in-time view of the ingest pipeline
	// (watermark, backlog, committed counts), fed to FleetConfig.OnProgress
	// — window-close summaries flow separately to FleetConfig.OnWindow
	// and to StatusServer.OnFleetProgress.
	FleetProgress = fleet.Progress
	// FleetSource is one machine's segment stream (live or replayed).
	FleetSource = fleet.Source
	// FleetReplaySource replays a pre-captured segment stream — the same
	// bytes under any worker count, for determinism tests and benchmarks.
	FleetReplaySource = fleet.ReplaySource
)

// FleetSchema tags the fleet JSON report format.
const FleetSchema = fleet.Schema

// RunFleet executes a full fleet run and returns the windowed result.
func RunFleet(cfg FleetConfig) (*FleetResult, error) { return fleet.Run(cfg) }

var (
	// RunFleetSources executes a fleet run over explicit sources (e.g.
	// FleetReplaySources).
	RunFleetSources = fleet.RunSources
	// FleetMachinesFromMix expands a scenario-mix spec ("netrecv=2,proday=1")
	// into n deterministic heterogeneous machine configurations.
	FleetMachinesFromMix = fleet.MachinesFromMix
	// RecordFleetSource captures one machine's live stream into a
	// FleetReplaySource.
	RecordFleetSource = fleet.Record
)

// Profile-guided optimization: the closing of the paper's loop. A captured
// profile feeds back two ways — into the next measurement (the
// instrumentation-budget optimizer chooses which functions to instrument
// so the next run attributes the most net time within a tag or
// trigger-overhead budget) and into the kernel itself (the optimize-verify
// loop applies proposed cost changes, re-profiles under the identical
// seed, and verifies the measured delta against the what-if estimate).
// See internal/pgo.
type (
	// PGOCandidate is one function the budget optimizer may instrument,
	// with its footprint in the prior profile.
	PGOCandidate = pgo.Candidate
	// PGOBudget bounds an instrumentation plan (tags, trigger overhead).
	PGOBudget = pgo.Budget
	// PGOPlan is a concrete instrumentation choice; Options converts it
	// into instrument options for the next session.
	PGOPlan = pgo.Plan
	// PGOChange is one proposed kernel cost change the loop can apply and
	// verify.
	PGOChange = pgo.Change
	// PGOMeasurement is one profiled run reduced to what the estimators
	// and the per-unit verification metric need.
	PGOMeasurement = pgo.Measurement
	// PGOLoopConfig describes one optimize-verify run (scenario, seed,
	// changes).
	PGOLoopConfig = pgo.LoopConfig
	// PGOLoopResult is a finished optimize-verify loop, rendered by
	// Write/String.
	PGOLoopResult = pgo.LoopResult
	// PGOChangeOutcome is one change's verified result within a loop.
	PGOChangeOutcome = pgo.ChangeOutcome
	// PGOLoopSweep is the loop verified across a seed set, folded in seed
	// order.
	PGOLoopSweep = pgo.LoopSweep
	// Bottleneck is the roofline-style classification of a profiled run:
	// compute, memory, latency, or balanced, with a confidence and
	// suggestions.
	Bottleneck = pgo.Bottleneck
)

var (
	// OptimizeInstrumentation solves the instrumentation-budget problem
	// exactly: the candidate set maximizing attributed net time under the
	// budget.
	OptimizeInstrumentation = pgo.Optimize
	// PGOCandidatesFromAnalysis extracts optimizer candidates from a prior
	// profile (pair with Machine.ModuleOf for module labels).
	PGOCandidatesFromAnalysis = pgo.CandidatesFromAnalysis
	// PGOCandidatesFromAggregate extracts candidates from a cross-seed
	// sweep aggregate.
	PGOCandidatesFromAggregate = pgo.CandidatesFromAggregate
	// PGORegistry returns the proposed kernel changes the loop knows.
	PGORegistry = pgo.Registry
	// FindPGOChanges resolves registry changes by name, registry order.
	FindPGOChanges = pgo.FindChanges
	// RunPGOLoop executes the optimize-verify loop for one seed.
	RunPGOLoop = pgo.RunLoop
	// RunPGOLoopSweep executes the loop across a seed set on a worker
	// pool; the result is identical whatever the worker count.
	RunPGOLoopSweep = pgo.RunLoopSweep
	// ClassifyBottleneck labels a profiled run with its bottleneck type.
	ClassifyBottleneck = pgo.Classify
)

// PGODefaultTriggerNs is the per-trigger cost the budget optimizer
// assumes when none is given: ≈200 ns per EPROM-window load.
const PGODefaultTriggerNs = pgo.DefaultTriggerNs

// PGODefaultWorkFn is the work-unit function the loop's per-unit metric
// normalizes by when none is named.
const PGODefaultWorkFn = pgo.DefaultWorkFn
