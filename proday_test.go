// Stress and golden tests for the proday scenario: a production-day mix
// of open-loop network, disk, VM, NFS and SNMP load. proday is the
// deepest-nesting, highest-context-switch workload in the registry, so it
// doubles as a correctness stress for the Reconstructor's continuous
// drain path.
package kprof_test

import (
	"strings"
	"testing"

	"kprof"
	"kprof/internal/sim"
)

// prodayParams sizes a golden/stress run: long enough that every load
// class (including the slow SNMP poll cadence) makes progress, small
// enough to keep the suite's wall clock in check.
var prodayParams = kprof.WorkloadParams{
	Duration: 600 * sim.Millisecond,
	Conns:    100,
	Rate:     300,
}

// runProday boots a machine, runs ProdaySetup before instrumentation
// (the scenario registers SNMP/NFS kernel functions the profile must
// see), then profiles the run under cfg.
func runProday(t *testing.T, seed uint64, p kprof.WorkloadParams, cfg kprof.ProfileConfig) *kprof.Session {
	t.Helper()
	m := kprof.NewMachine(kprof.MachineConfig{Seed: seed})
	if err := kprof.ProdaySetup(m, p); err != nil {
		t.Fatal(err)
	}
	s, err := kprof.NewSession(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	if _, err := kprof.Proday(m, p); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	return s
}

// forceClosed sums the frames force-closed across an analysis' segments.
func forceClosed(a *kprof.Analysis) int {
	n := 0
	for _, seg := range a.Segments {
		n += seg.ForceClosed
	}
	return n
}

// The proday drain capture is golden: same seed, same params, same
// shrunken card RAM => byte-identical segment table and summary, with
// zero silent loss despite the record stream dwarfing the RAM.
func TestGoldenProdayDrain(t *testing.T) {
	const depth = 2048
	s := runProday(t, 42, prodayParams, kprof.ProfileConfig{
		Mode:  kprof.CaptureContinuous,
		Depth: depth,
	})
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	a := s.Analyze()
	if a.Stats.Records < 10*depth {
		t.Fatalf("captured %d records, want >= 10x the %d-entry RAM", a.Stats.Records, depth)
	}
	if a.Stats.Dropped != 0 {
		t.Fatalf("%d strobes lost silently despite draining", a.Stats.Dropped)
	}
	if fc := forceClosed(a); fc != 0 {
		t.Fatalf("%d frames force-closed on a lossless run", fc)
	}
	golden(t, "proday_drain_seed42.segments", a.SegmentsString())
	golden(t, "proday_drain_seed42.summary", a.SummaryString(15))
}

// Continuous capture must not change what proday's profile says: the
// stitched drained analysis reproduces the one-shot reference byte for
// byte, and the lean streaming path agrees with the full path.
func TestProdayDrainedMatchesOneShot(t *testing.T) {
	// One-shot with an oversized RAM: nothing overflows.
	sOne := runProday(t, 11, prodayParams, kprof.ProfileConfig{Depth: 1 << 18})
	one := sOne.Analyze()
	if one.Stats.Overflowed {
		t.Fatal("one-shot reference overflowed; shrink the workload or grow the RAM")
	}
	// Continuous with a RAM a tiny fraction of the record stream.
	sCont := runProday(t, 11, prodayParams, kprof.ProfileConfig{
		Mode:  kprof.CaptureContinuous,
		Depth: 1024,
	})
	if err := sCont.DrainErr(); err != nil {
		t.Fatal(err)
	}
	cont := sCont.Analyze()
	if cont.Stats.Dropped != 0 {
		t.Fatalf("continuous run lost %d strobes; tighten the drain config", cont.Stats.Dropped)
	}
	if len(cont.Segments) < 2 {
		t.Fatalf("continuous run drained only %d segments", len(cont.Segments))
	}
	if got, want := cont.SummaryString(0), one.SummaryString(0); got != want {
		t.Fatalf("stitched summary differs from one-shot:\n--- one-shot\n%s--- stitched\n%s", want, got)
	}
	lean := sCont.AnalyzeLean()
	if got, want := lean.SummaryString(0), cont.SummaryString(0); got != want {
		t.Fatalf("lean stitched summary differs:\n--- full\n%s--- lean\n%s", want, got)
	}
}

// A long zero-fault drain under proday's deep nesting and context-switch
// churn must come out clean: no corrupt records, no resyncs, no frames
// force-closed, no dropped strobes. Any of those on pristine hardware is
// a Reconstructor bug, not noise.
func TestProdayLongDrainClean(t *testing.T) {
	if testing.Short() {
		t.Skip("long drain stress")
	}
	p := kprof.WorkloadParams{
		Duration: 2 * sim.Second,
		Conns:    300,
		Rate:     350,
	}
	s := runProday(t, 3, p, kprof.ProfileConfig{
		Mode:  kprof.CaptureContinuous,
		Depth: 4096,
	})
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	a := s.Analyze()
	if a.Stats.CorruptRecords != 0 || a.Stats.Resyncs != 0 {
		t.Fatalf("pristine run decoded dirty: %d corrupt, %d resyncs",
			a.Stats.CorruptRecords, a.Stats.Resyncs)
	}
	if a.Stats.Dropped != 0 {
		t.Fatalf("%d strobes dropped", a.Stats.Dropped)
	}
	if fc := forceClosed(a); fc != 0 {
		t.Fatalf("%d frames force-closed without loss", fc)
	}
	if a.Switches < 500 {
		t.Fatalf("only %d context switches; the stress did not stress", a.Switches)
	}
}

// The proday sweep aggregate is golden and independent of the worker
// pool: one worker and two workers must merge to the same bytes.
func TestGoldenProdaySweep(t *testing.T) {
	run := func(parallel int) string {
		res, err := kprof.Sweep(kprof.SweepConfig{
			Scenario: "proday",
			Seeds:    []uint64{1, 2},
			Parallel: parallel,
			Params:   prodayParams,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Agg.Write(&b, 12); err != nil {
			t.Fatal(err)
		}
		for _, r := range res.PerSeed {
			b.WriteString("seed ")
			b.WriteString(r.Workload)
			b.WriteString("\n")
		}
		return b.String()
	}
	one := run(1)
	if two := run(2); two != one {
		t.Fatalf("sweep aggregate depends on worker count:\n--- 1 worker\n%s--- 2 workers\n%s", one, two)
	}
	golden(t, "sweep_proday_seeds1-2.txt", one)
}
