// Forkexec: the paper's fork/exec study (Figure 5).
//
// Profiles a loop of vfork + execve with a cached image, prints the
// high-cost-subroutine summary, the subsystem breakdown showing >50% of the
// time in the VM layer, and a histogram of pmap_remove showing the huge
// spread between small and large map entries.
package main

import (
	"fmt"
	"os"

	"kprof"
)

func main() {
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 7})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s.Arm()
	res := kprof.ForkExec(m, 3)
	s.Disarm()

	fmt.Printf("vfork:  %v average (the paper measured ≈24 ms)\n", res.ForkTime)
	fmt.Printf("execve: %v average (the paper measured ≈28 ms)\n", res.ExecTime)
	fmt.Printf("pmap_pte: %d calls per fork (the paper counted 1053)\n\n", res.PmapPteCallsPerFork)

	a := s.Analyze()
	fmt.Println("=== High cost subroutines (the paper's Figure 5) ===")
	a.WriteSummary(os.Stdout, 12)

	fmt.Println("\n=== Subsystem breakdown ===")
	groups := a.Groups(m.SubsystemOf())
	for _, g := range groups {
		fmt.Printf("%-10s %6.2f%%  (%d fns, %d calls)\n", g.Name, g.PctNet, g.Fns, g.Calls)
	}

	fmt.Println("\n=== pmap_remove per-call distribution ===")
	a.HistogramOf("pmap_remove").Write(os.Stdout)
}
