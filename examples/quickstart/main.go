// Quickstart: boot the simulated 386BSD PC, plug the Profiler into the
// spare EPROM socket, run the paper's network saturation test, and print
// the two reports — the per-function summary (Figure 3) and the code-path
// trace (Figure 4).
package main

import (
	"fmt"
	"os"

	"kprof"
)

func main() {
	// The machine: a 40 MHz i386 PC with 8 MB, WD8003E Ethernet on the
	// ISA bus, an ST3144 IDE disk — all on a deterministic virtual clock.
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 42})

	// Instrument the whole kernel (the "compiler pass" assigns event
	// tags and the two-stage link resolves ProfileBase), then plug the
	// card into the EPROM socket at 0xD0000.
	s, err := kprof.NewSession(m, kprof.ProfileConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(s)

	// Flip the front-panel switch and run the workload: a Sparc-class
	// host streams TCP data at the PC, which reads and discards it.
	s.Arm()
	res, err := kprof.NetReceive(m, 400*kprof.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Disarm()
	fmt.Printf("delivered %d bytes in %d frames (%d ring drops)\n\n",
		res.BytesDelivered, res.Frames, res.Drops)

	// Pull the battery-backed RAMs and analyze.
	a := s.Analyze()
	fmt.Println("=== Function summary (the paper's Figure 3) ===")
	a.WriteSummary(os.Stdout, 12)

	fmt.Println("\n=== Code-path trace (the paper's Figure 4) ===")
	a.WriteTrace(os.Stdout, kprof.TraceOptions{
		From:     20 * kprof.Millisecond,
		MaxLines: 40,
	})
}
