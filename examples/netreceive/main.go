// Netreceive: the paper's Network Performance study end to end.
//
// Runs the saturation workload three ways — stock kernel, the rejected
// "link controller buffers into mbufs" design, and the recommended
// optimized in_cksum — and also computes the paper's pencil-and-paper
// what-if estimates from the measured baseline, showing they agree with
// the simulated outcomes: mbuf linking loses, checksum recoding wins.
package main

import (
	"fmt"
	"os"

	"kprof"
	"kprof/internal/netstack"
)

func measure(mode string) (perByte float64, a *kprof.Analysis) {
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 42})
	switch mode {
	case "mbuf-linking":
		m.Net.ChecksumInController = true
	case "optimized-cksum":
		m.Net.CksumMode = netstack.CksumOptimized
	}
	s, err := kprof.NewSession(m, kprof.ProfileConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Arm()
	res, err := kprof.NetReceive(m, 400*kprof.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Disarm()
	a = s.Analyze()
	if res.BytesDelivered > 0 {
		perByte = float64(a.RunTime()) / float64(res.BytesDelivered)
	}
	fmt.Printf("%-16s: %7d bytes delivered, %6.0f ns CPU/byte, idle %5.2f%%\n",
		mode, res.BytesDelivered,
		perByte, 100*float64(a.Idle)/float64(a.Elapsed()))
	return perByte, a
}

func main() {
	fmt.Println("=== Measured: three kernel configurations ===")
	base, a := measure("stock")
	linkPB, _ := measure("mbuf-linking")
	optPB, _ := measure("optimized-cksum")

	fmt.Println("\n=== Stock kernel, top functions ===")
	a.WriteSummary(os.Stdout, 10)

	fmt.Println("\n=== The paper's what-if arithmetic, from the measured baseline ===")
	// Build the per-packet breakdown from the profile.
	fnNet := func(name string) kprof.Time {
		if s, ok := a.Fn(name); ok {
			return s.Net
		}
		return 0
	}
	packets := 0
	if s, ok := a.Fn("tcp_input"); ok {
		packets = s.Calls
	}
	if packets == 0 {
		fmt.Println("no packets profiled")
		return
	}
	per := func(t kprof.Time) kprof.Time { return t / kprof.Time(packets) }
	cost := kprof.PacketCost{
		DriverCopy: per(fnNet("bcopy") * 9 / 10), // the driver's share of bcopy
		Checksum:   per(fnNet("in_cksum")),
		Copyout:    per(fnNet("copyout")),
		Other:      per(a.RunTime()) - per(fnNet("bcopy")*9/10) - per(fnNet("in_cksum")) - per(fnNet("copyout")),
		Bytes:      1460,
	}
	fmt.Printf("measured per-packet: copy=%v cksum=%v copyout=%v other=%v total=%v\n",
		cost.DriverCopy, cost.Checksum, cost.Copyout, cost.Other, cost.Total())

	link := kprof.EstimateMbufLinking(cost, 691) // ISA8 minus main, ns/byte
	opt := kprof.EstimateOptimizedChecksum(cost, 42, 8*kprof.Microsecond)
	fmt.Println(link)
	fmt.Println(opt)

	fmt.Println("\n=== Estimates versus simulation ===")
	fmt.Printf("mbuf linking:   estimated %+5.1f%%, simulated %+5.1f%% CPU/byte\n",
		100*float64(link.Delta())/float64(link.Baseline), 100*(linkPB/base-1))
	fmt.Printf("recoded cksum:  estimated %+5.1f%%, simulated %+5.1f%% CPU/byte\n",
		100*float64(opt.Delta())/float64(opt.Baseline), 100*(optPB/base-1))
}
