// Snmpstudy: the paper's SNMP case study from the 68020 platform.
//
// "A SNMP client based on the CMU SNMP code was profiled, highlighting a
// major bottleneck in searching the MIB table linearly; redesigning the
// data structure to use a B-tree to hold the MIB data reduced the CPU
// cycles required to respond to SNMP requests by an order of magnitude."
package main

import (
	"fmt"

	"kprof"
	"kprof/internal/kernel"
)

func walk(name string, store kprof.MIBStore, entries int) (perReq kprof.Time, agent *kprof.SNMPAgent) {
	k := kernel.New(kernel.Config{Seed: 1})
	kprof.PopulateMIB(store, entries)
	agent = kprof.NewSNMPAgent(k, store, name)
	start := k.Now()
	visited := agent.Walk()
	elapsed := k.Now() - start
	perReq = elapsed / kprof.Time(visited+1)
	fmt.Printf("%-8s %5d entries: walk %8v total, %6v per GETNEXT, %8d comparisons\n",
		name, entries, elapsed, perReq, agent.Comparisons)
	return perReq, agent
}

func main() {
	fmt.Println("=== MIB walk: linear list versus B-tree ===")
	for _, n := range []int{100, 500, 1000, 4000} {
		lin, _ := walk("linear", kprof.NewLinearMIB(), n)
		bt, _ := walk("btree", kprof.NewBTreeMIB(), n)
		fmt.Printf("         %5d entries: linear/btree = %.1fx\n\n", n, float64(lin)/float64(bt))
	}
	fmt.Println("At the 1000-entry MIB of the original study the redesign is an")
	fmt.Println("order of magnitude, exactly as the Profiler showed in 1993.")
}
