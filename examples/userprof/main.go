// Userprof: the paper's User Code Profiling section, end to end.
//
// "A driver stub may be configured in the kernel that reserves the
// Profiler's physical memory address space; a modified profiling crt.o ...
// calls mmap to memory map the Profiler's address space into a fixed
// location within the process address space. ... This approach is
// especially applicable in debugging and tuning communication protocol
// stacks."
//
// An snmpd user process, instrumented through the mmap'd window, services
// GETNEXT requests arriving over UDP. One capture shows the whole path:
// Ethernet interrupt → ipintr → udp_input → soreceive → user-mode BER and
// MIB code → the UDP transmit path — kernel and user frames interleaved.
package main

import (
	"fmt"
	"os"

	"kprof"
)

func main() {
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 11})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The profiling crt.o: open /dev/prof, mmap the window.
	u := s.MapUser("snmpd")

	store := kprof.NewBTreeMIB()
	kprof.PopulateMIB(store, 500)

	s.Arm()
	res, err := kprof.SNMPServe(m, u, store, 25)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Disarm()

	fmt.Printf("served %d requests, mean response %v over the wire\n\n",
		res.Requests, res.MeanResponse)

	a := s.Analyze()
	fmt.Println("=== Mixed user/kernel summary ===")
	a.WriteSummary(os.Stdout, 14)

	fmt.Println("\n=== One request, user and kernel frames interleaved ===")
	a.WriteTrace(os.Stdout, kprof.TraceOptions{From: 5 * kprof.Millisecond, MaxLines: 50})

	fmt.Println("\n=== Subsystem timeline ===")
	groupOf := m.SubsystemOf()
	for _, fn := range []string{"snmpd_main", "snmp_input", "mib_getnext", "ber_encode"} {
		groupOf[fn] = "user"
	}
	a.Timeline(groupOf, 72).Write(os.Stdout)
}
