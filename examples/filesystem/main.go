// Filesystem: the paper's FFS and NFS studies.
//
// Streams writes to the ST3144 model (per-sector write interrupts ≈200 µs,
// mostly back-to-back), performs seek-heavy reads (18-26 ms each), and runs
// the NFS-versus-FTP transfer comparison showing NFS's lower CPU overhead
// with UDP checksums off.
package main

import (
	"fmt"
	"os"

	"kprof"
)

func main() {
	// --- FFS write study ---
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 3})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{
		// Micro-profile just the storage stack, the paper's selective
		// profiling: compile only these modules with triggers.
		Modules: []string{"wd", "vfs_bio", "ufs_vnops", "ffs_alloc", "locore", "kern_synch", "trap"},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Arm()
	wres := kprof.FFSWrite(m, 2*kprof.Second)
	s.Disarm()
	a := s.Analyze()

	fmt.Println("=== FFS write study ===")
	fmt.Printf("wrote %d KB; %d sectors; %d disk interrupts, %d back-to-back (<100 µs)\n",
		wres.BytesWritten/1024, wres.WriteSectors, wres.DiskInterrupts, wres.ShortGaps)
	fmt.Printf("CPU busy %.1f%% of elapsed (the paper measured ≈28%%)\n\n",
		100*float64(a.RunTime())/float64(a.Elapsed()))
	a.WriteSummary(os.Stdout, 8)

	// --- FFS read study ---
	m2 := kprof.NewMachine(kprof.MachineConfig{Seed: 4})
	rres := kprof.FFSRead(m2, 40)
	fmt.Printf("\n=== FFS read study ===\nmean read latency %v over %d KB (the paper: 18-26 ms)\n",
		rres.MeanReadLatency, rres.BytesRead/1024)

	// --- NFS versus FTP ---
	fmt.Println("\n=== NFS (UDP, cksum off) versus FTP-style TCP ===")
	m3 := kprof.NewMachine(kprof.MachineConfig{Seed: 5})
	nres, err := kprof.NFSTransfer(m3, 256*1024)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m4 := kprof.NewMachine(kprof.MachineConfig{Seed: 5})
	fres, err := kprof.FTPTransfer(m4, 256*1024)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nPB := float64(nres.CPUProxy) / float64(nres.Bytes)
	fPB := float64(fres.CPUProxy) / float64(fres.Bytes)
	fmt.Printf("NFS: %d KB, CPU %4.0f ns/byte\n", nres.Bytes/1024, nPB)
	fmt.Printf("FTP: %d KB, CPU %4.0f ns/byte\n", fres.Bytes/1024, fPB)
	fmt.Printf("NFS overhead is %.1fx lower — \"NFS actually provides less overhead\n"+
		"and better throughput than an FTP style connection!\"\n", fPB/nPB)
}
