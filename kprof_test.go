package kprof

import (
	"bytes"
	"strings"
	"testing"
)

// The public API walked end to end, as the README's quick start does.
func TestPublicAPIQuickStart(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	res, err := NetReceive(m, 100*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	if res.BytesDelivered == 0 {
		t.Fatal("no data")
	}
	a := s.Analyze()
	sum := a.SummaryString(10)
	if !strings.Contains(sum, "bcopy") || !strings.Contains(sum, "Idle time") {
		t.Fatalf("summary:\n%s", sum)
	}
	trace := a.TraceString(TraceOptions{MaxLines: 50})
	if !strings.Contains(trace, "->") {
		t.Fatalf("trace:\n%s", trace)
	}
}

func TestCaptureRoundTripThroughAPI(t *testing.T) {
	m := NewMachine(MachineConfig{Seed: 2})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	ForkExec(m, 1)
	s.Disarm()
	c := s.Capture()

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Offline analysis against the session's tag file.
	a := Analyze(loaded, s.Tags)
	if _, ok := a.Fn("pmap_pte"); !ok {
		t.Fatal("offline analysis lost pmap_pte")
	}
	// And against a re-parsed tag file (the text round trip).
	tags2, err := ParseTagFile(s.Tags.String())
	if err != nil {
		t.Fatal(err)
	}
	a2 := Analyze(loaded, tags2)
	f1, _ := a.Fn("pmap_pte")
	f2, _ := a2.Fn("pmap_pte")
	if f1.Calls != f2.Calls || f1.Net != f2.Net {
		t.Fatal("tag file text round trip changed the analysis")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		m := NewMachine(MachineConfig{Seed: 77})
		s, err := NewSession(m, ProfileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		NetReceive(m, 50*Millisecond)
		s.Disarm()
		return s.Analyze().SummaryString(0)
	}
	if run() != run() {
		t.Fatal("same seed produced different profiles")
	}
}

// The before/after workflow through the public API: recode in_cksum, rerun
// the same workload, compare the profiles.
func TestBeforeAfterComparison(t *testing.T) {
	profile := func(optimized bool) *Analysis {
		m := NewMachine(MachineConfig{Seed: 42})
		if optimized {
			m.Net.CksumMode = CksumOptimized
		}
		s, err := NewSession(m, ProfileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		if _, err := NetReceive(m, 200*Millisecond); err != nil {
			t.Fatal(err)
		}
		s.Disarm()
		return s.Analyze()
	}
	before := profile(false)
	after := profile(true)
	c := Compare(before, after)
	// in_cksum must be the (or near the) biggest mover, sharply down.
	var cksum float64
	for _, d := range c.Deltas[:3] {
		if d.Name == "in_cksum" {
			cksum = d.ShareChange()
		}
	}
	if cksum > -0.15 {
		t.Fatalf("in_cksum share change = %+.2f, want a big drop; report:\n%s", cksum, c)
	}
}

// The embedded platform through the public API.
func TestEmbeddedPlatformAPI(t *testing.T) {
	m, le := NewEmbeddedMachine(MachineConfig{Seed: 13}, DriverOld)
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	res, err := EmbeddedNetReceive(m, le, 100*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	if res.BytesDelivered == 0 {
		t.Fatal("no data")
	}
	a := s.Analyze()
	g := a.CallGraph()
	// The driver copy loop is called from leread.
	callers := g.Callers("lecopy")
	if len(callers) == 0 {
		t.Fatal("lecopy has no callers in the graph")
	}
	found := false
	for _, arc := range callers {
		if arc.Caller == "leread" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lecopy callers = %+v, want leread", callers)
	}
}
