// Golden-capture regression tests: rendered reports for fixed
// (scenario, seed) pairs are checked into testdata/ and must reproduce
// byte for byte — the simulator, instrumentation, card model and analyzer
// are all deterministic, so any drift is a behavior change, not noise.
//
// Regenerate after an intentional change with:
//
//	go test -run TestGolden -update
package kprof_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kprof"
	"kprof/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// golden compares got against testdata/name, or rewrites it under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with: go test -run TestGolden -update): %v", path, err)
	}
	if got == string(want) {
		return
	}
	// Report the first differing line, not a wall of text.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s: first difference at line %d:\n got: %q\nwant: %q", path, i+1, g, w)
		}
	}
	t.Fatalf("%s: outputs differ", path)
}

// profileScenario runs one (scenario, seed) pair and returns the analysis.
func profileScenario(t *testing.T, seed uint64, run func(m *kprof.Machine)) *kprof.Analysis {
	t.Helper()
	m := kprof.NewMachine(kprof.MachineConfig{Seed: seed})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	run(m)
	s.Disarm()
	return s.Analyze()
}

func TestGoldenNetReceiveReports(t *testing.T) {
	a := profileScenario(t, 42, func(m *kprof.Machine) {
		if _, err := kprof.NetReceive(m, 60*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	golden(t, "netrecv_seed42.summary", a.SummaryString(15))
	golden(t, "netrecv_seed42.trace", a.TraceString(kprof.TraceOptions{
		From: 20 * sim.Millisecond, MaxLines: 40,
	}))
}

func TestGoldenForkExecReports(t *testing.T) {
	a := profileScenario(t, 7, func(m *kprof.Machine) {
		kprof.ForkExec(m, 1)
	})
	golden(t, "forkexec_seed7.summary", a.SummaryString(15))
	golden(t, "forkexec_seed7.trace", a.TraceString(kprof.TraceOptions{MaxLines: 40}))
}

// The long-run scenario under continuous capture: a workload generating
// >=10x the card's RAM depth completes with every record drained into
// host-side segments and zero silent loss, and the stitched reports
// reproduce byte for byte.
func TestGoldenNetReceiveLongDrain(t *testing.T) {
	const depth = 1024
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 42})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{
		Mode:  kprof.CaptureContinuous,
		Depth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	// netrecv-long's driver at a golden-test-sized duration: still >=10x
	// the (shrunken) card RAM.
	if _, err := kprof.NetReceive(m, 400*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	total := 0
	var lost uint64
	for _, seg := range s.Segments() {
		total += seg.Capture.Len()
		lost += seg.Capture.Dropped
	}
	if total < 10*depth {
		t.Fatalf("captured %d records, want >= 10x the %d-entry RAM", total, depth)
	}
	if lost != 0 {
		t.Fatalf("%d strobes lost silently despite draining", lost)
	}
	a := s.Analyze()
	if a.Stats.Records != total || a.Stats.Dropped != 0 {
		t.Fatalf("stitched stats %+v, want %d records and no loss", a.Stats, total)
	}
	golden(t, "netrecv_long_drain_seed42.segments", a.SegmentsString())
	golden(t, "netrecv_long_drain_seed42.summary", a.SummaryString(15))
}

// The exporters are golden too: MarshalPprof assigns every id in
// first-encounter order and WriteChromeTrace formats deterministically,
// so both byte streams must reproduce exactly. The pprof golden holds the
// raw (uncompressed) protobuf — the gzip layer is checked separately in
// the export package's own tests.
func TestGoldenPprofExport(t *testing.T) {
	a := profileScenario(t, 42, func(m *kprof.Machine) {
		if _, err := kprof.NetReceive(m, 60*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	golden(t, "netrecv_seed42.pprof", string(kprof.MarshalPprof(a, kprof.PprofOptions{})))
}

func TestGoldenChromeTraceExport(t *testing.T) {
	// A short window keeps the golden trace reviewable.
	a := profileScenario(t, 42, func(m *kprof.Machine) {
		if _, err := kprof.NetReceive(m, 10*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	var b strings.Builder
	if err := kprof.WriteChromeTrace(&b, a); err != nil {
		t.Fatal(err)
	}
	golden(t, "netrecv_seed42.trace.json", b.String())
}

// The sweep aggregate is golden too: per-seed merges are deterministic in
// seed order regardless of the worker pool, so the whole cross-seed table
// must reproduce byte for byte.
func TestGoldenSweepAggregate(t *testing.T) {
	seeds, err := kprof.ParseSeeds("1..4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := kprof.Sweep(kprof.SweepConfig{
		Scenario: "netrecv",
		Seeds:    seeds,
		Params:   kprof.WorkloadParams{Duration: 40 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Agg.Write(&b, 12); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.PerSeed {
		fmt.Fprintf(&b, "seed %d: %s\n", r.Seed, r.Workload)
	}
	golden(t, "sweep_netrecv_seeds1-4.txt", b.String())
}

// The optimize-verify loop's differential report is fully deterministic:
// baseline and every re-profile boot from the same seed, so the estimate,
// the verified delta, the bottleneck classifications and the mover tables
// reproduce byte for byte.
func TestGoldenPGOLoopReport(t *testing.T) {
	r, err := kprof.RunPGOLoop(kprof.PGOLoopConfig{
		Seed:   1,
		Params: kprof.WorkloadParams{Duration: 150 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Confirmed() {
		t.Fatal("loop did not confirm every registry change")
	}
	var b strings.Builder
	if err := r.Write(&b, 6); err != nil {
		t.Fatal(err)
	}
	golden(t, "pgo_loop_netrecv_seed1.txt", b.String())
}

// The instrumentation-budget plan from a profiled run is deterministic
// too: same seed, same candidates, same exact optimum.
func TestGoldenPGOBudgetPlan(t *testing.T) {
	m := kprof.NewMachine(kprof.MachineConfig{Seed: 1})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	if _, err := kprof.NetReceive(m, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	cands := kprof.PGOCandidatesFromAnalysis(s.Analyze(), m.ModuleOf())
	plan := kprof.OptimizeInstrumentation(cands, kprof.PGOBudget{Tags: 16, OverheadNs: 5_000_000})
	var b strings.Builder
	if err := plan.Write(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "pgo_budget_netrecv_seed1.txt", b.String())
}
