// The differential fault-injection harness: every scenario profiled twice,
// once clean and once through a faulted card, and the two analyses compared.
// The contract under test is graceful degradation — at the rates a field
// deployment would actually see, the report still tells the same story
// within a declared tolerance, and at absurd rates the pipeline still
// completes with honest loss accounting instead of panicking or hanging.
//
// The accuracy bar is declared per scenario because it depends on capture
// density: netrecv's hot functions run hundreds of calls, so losing a
// strobe costs a fraction of one call; forkexec's giants (vmspace_fork)
// run once, so a single dropped strobe untimes their only frame — the
// honest claim there stops at a lower rate.
package kprof_test

import (
	"fmt"
	"strings"
	"testing"

	"kprof"
	"kprof/internal/sim"
)

// faultScenario is one profiled workload for the differential harness.
type faultScenario struct {
	name string
	seed uint64
	run  func(t *testing.T, m *kprof.Machine)
}

// rateCase is one injection rate and the accuracy claim defended at it:
// tol is the relative net-time tolerance for the clean top-5, or <0 when
// the claim is completion-only.
type rateCase struct {
	rate float64
	tol  float64
}

var faultCases = []struct {
	faultScenario
	rates []rateCase
}{
	{
		faultScenario{"netrecv", 42, func(t *testing.T, m *kprof.Machine) {
			if _, err := kprof.NetReceive(m, 60*sim.Millisecond); err != nil {
				t.Fatal(err)
			}
		}},
		[]rateCase{{0.001, 0.10}, {0.01, 0.25}, {0.05, -1}, {0.20, -1}},
	},
	{
		faultScenario{"forkexec", 7, func(t *testing.T, m *kprof.Machine) {
			kprof.ForkExec(m, 1)
		}},
		[]rateCase{{0.001, 0.15}, {0.01, -1}, {0.05, -1}, {0.20, -1}},
	},
}

// runFaulted profiles one scenario, with an injector attached when fc is
// non-nil, and returns the analysis plus the injector's statistics.
func runFaulted(t *testing.T, sc faultScenario, fc *kprof.FaultConfig) (*kprof.Analysis, kprof.FaultStats) {
	t.Helper()
	m := kprof.NewMachine(kprof.MachineConfig{Seed: sc.seed})
	s, err := kprof.NewSession(m, kprof.ProfileConfig{Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	sc.run(t, m)
	s.Disarm()
	a := s.Analyze()
	st, ok := s.FaultStats()
	if ok != (fc != nil) {
		t.Fatalf("FaultStats ok=%v with config %v", ok, fc)
	}
	return a, st
}

// topNet returns the top n non-idle function names by net time, busiest
// first (Functions() sorts by net descending).
func topNet(a *kprof.Analysis, n int) []string {
	var out []string
	for _, s := range a.Functions() {
		if s.CtxSwitch {
			continue
		}
		out = append(out, s.Name)
		if len(out) == n {
			break
		}
	}
	return out
}

// TestFaultedProfileDegradesGracefully is the differential harness. For
// each scenario the clean run is the reference; each faulted run must
// complete with coherent accounting at every rate, and at the rates where
// an accuracy claim is declared the report must still tell the same story:
// the same busiest function, the clean top-5 still in the faulted top-7
// (and vice versa — a repair residual of a few hundred µs can swap
// near-tied ranks, never invent a new hot function), and each clean top-5
// net time reproduced within the declared tolerance.
func TestFaultedProfileDegradesGracefully(t *testing.T) {
	for _, sc := range faultCases {
		clean, _ := runFaulted(t, sc.faultScenario, nil)
		cleanTop := topNet(clean, 7)
		if len(cleanTop) < 7 {
			t.Fatalf("%s: clean run produced only %d functions", sc.name, len(cleanTop))
		}
		for _, rc := range sc.rates {
			t.Run(fmt.Sprintf("%s/rate=%g", sc.name, rc.rate), func(t *testing.T) {
				a, st := runFaulted(t, sc.faultScenario, &kprof.FaultConfig{Seed: 1, Rate: rc.rate})

				// Completion invariants, at every rate: the pipeline
				// finishes, the timeline is well-formed, the accounting
				// is self-consistent, and the reports render.
				if st.Injected() == 0 && rc.rate >= 0.01 {
					t.Fatalf("injector at rate %g injected nothing over %d strobes", rc.rate, st.Strobes)
				}
				if a.Stats.Records == 0 {
					t.Fatal("faulted capture decoded to zero records")
				}
				if a.End < a.Start || a.RunTime() < 0 {
					t.Fatalf("incoherent timeline: start %v end %v run %v", a.Start, a.End, a.RunTime())
				}
				if a.Stats.CorruptRecords > a.Stats.Records {
					t.Fatalf("corrupt %d exceeds records %d", a.Stats.CorruptRecords, a.Stats.Records)
				}
				// Corruption must be seen AND counted: a fault layer the
				// decode cannot detect at a 1% rate would be silent loss.
				if rc.rate >= 0.01 && a.Stats.CorruptRecords == 0 {
					t.Fatalf("rate %g injected %d faults but decode reported no corrupt records", rc.rate, st.Injected())
				}
				for _, s := range a.Functions() {
					if s.TimedCalls > s.Calls {
						t.Fatalf("%s: %d timed of %d calls", s.Name, s.TimedCalls, s.Calls)
					}
					if s.Net < 0 || s.Elapsed < 0 {
						t.Fatalf("%s: negative time (net %v, elapsed %v)", s.Name, s.Net, s.Elapsed)
					}
				}
				if sum := a.SummaryString(15); sum == "" {
					t.Fatal("empty summary")
				}
				if tr := a.TraceString(kprof.TraceOptions{MaxLines: 20}); tr == "" {
					t.Fatal("empty trace")
				}

				if rc.tol < 0 {
					return // absurd rate: surviving it is the whole claim
				}

				// Accuracy claims at the declared rates.
				top := topNet(a, 7)
				if top[0] != cleanTop[0] {
					t.Errorf("busiest function changed: %q, clean says %q", top[0], cleanTop[0])
				}
				in := func(set []string, name string) bool {
					for _, n := range set {
						if n == name {
							return true
						}
					}
					return false
				}
				for _, name := range cleanTop[:5] {
					if !in(top, name) {
						t.Errorf("clean top-5 function %q fell out of the faulted top-7 %v", name, top)
					}
				}
				for _, name := range top[:5] {
					if !in(cleanTop, name) {
						t.Errorf("faulted top-5 invented %q, not in clean top-7 %v", name, cleanTop)
					}
				}
				for _, name := range cleanTop[:5] {
					cs, _ := clean.Fn(name)
					fs, ok := a.Fn(name)
					if !ok {
						t.Errorf("%s vanished from the faulted profile", name)
						continue
					}
					diff := fs.Net - cs.Net
					if diff < 0 {
						diff = -diff
					}
					if float64(diff) > rc.tol*float64(cs.Net) {
						t.Errorf("%s: net %v drifted beyond %.0f%% of clean %v", name, fs.Net, rc.tol*100, cs.Net)
					}
				}
			})
		}
	}
}

// TestFaultRateZeroByteIdentical is the pass-through property: a session
// with an injector attached at rate 0 reproduces the golden reports byte
// for byte — attaching the fault layer costs nothing and changes nothing
// until it actually fires.
func TestFaultRateZeroByteIdentical(t *testing.T) {
	fc := &kprof.FaultConfig{Seed: 12345, Rate: 0}
	run := func(dur sim.Time) (*kprof.Analysis, kprof.FaultStats) {
		return runFaulted(t, faultScenario{"netrecv", 42, func(t *testing.T, m *kprof.Machine) {
			if _, err := kprof.NetReceive(m, dur); err != nil {
				t.Fatal(err)
			}
		}}, fc)
	}

	a, st := run(60 * sim.Millisecond)
	if st.Injected() != 0 {
		t.Fatalf("rate-0 injector injected %d faults", st.Injected())
	}
	if st.Strobes == 0 {
		t.Fatal("rate-0 injector saw no strobes — not attached?")
	}
	golden(t, "netrecv_seed42.summary", a.SummaryString(15))
	golden(t, "netrecv_seed42.pprof", string(kprof.MarshalPprof(a, kprof.PprofOptions{})))

	// The Chrome trace golden comes from the shorter 10 ms window.
	a10, _ := run(10 * sim.Millisecond)
	var b strings.Builder
	if err := kprof.WriteChromeTrace(&b, a10); err != nil {
		t.Fatal(err)
	}
	golden(t, "netrecv_seed42.trace.json", b.String())
}
