#!/bin/sh
# cover_check.sh — per-package statement-coverage floors for the packages
# whose correctness claims rest on their test suites: the hardened decode
# pipeline, the fault injector that attacks it, the workload drivers, the
# open-loop load generator, the live serving tier, and the
# profile-guided optimize-verify loop. Floors sit a few
# points below the measured baseline (analyze 91%, faults 98%, workload
# 89%, loadgen 94%, export 93% at introduction) so honest refactoring
# never trips them, but a change that lands untested code in any of them
# does.
set -eu

cd "$(dirname "$0")/.."

check() {
	pkg=$1
	floor=$2
	line=$(go test -cover "$pkg" | tail -n 1)
	pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "cover_check: no coverage figure for $pkg:"
		echo "$line"
		exit 1
	fi
	below=$(awk -v p="$pct" -v f="$floor" 'BEGIN{print (p < f) ? 1 : 0}')
	if [ "$below" = "1" ]; then
		echo "cover_check: $pkg at ${pct}%, floor is ${floor}%"
		exit 1
	fi
	echo "cover_check: $pkg ${pct}% >= ${floor}%"
}

check ./internal/analyze 85
check ./internal/faults 90
check ./internal/workload 85
check ./internal/loadgen 90
check ./internal/export 85
check ./internal/pgo 85
