#!/bin/sh
# bench_check.sh — the performance-regression gate: run the benchmark suite
# in its quick configuration and compare against the newest committed
# BENCH_*.json artifact. Any hot path more than the tolerance slower per
# record (or allocating more per record) than the artifact fails the check.
#
#   BENCH_TOLERANCE_PCT  regression tolerance (default 15)
#   SKIP_BENCH=1         skip the gate entirely (callers, e.g. check.sh)
#
# The measured work is deterministic (fixed scenario/seed pairs), so the
# comparison is per-record figures against per-record figures; quick mode
# only trims sample counts, not the work per iteration.
set -eu

cd "$(dirname "$0")/.."

# Numeric sort on the artifact number: plain lexical sort would order
# BENCH_10.json before BENCH_9.json and gate against a stale baseline.
base=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$base" ]; then
	echo "bench_check: no committed BENCH_*.json yet; run 'make bench' to create the baseline"
	exit 1
fi

tmp=$(mktemp /tmp/bench_check.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT INT TERM

echo "bench_check: quick suite vs $base (tolerance ${BENCH_TOLERANCE_PCT:-15}%)"
go run ./cmd/kprof -bench "$tmp" -benchquick
go run ./cmd/kprof -benchcmp "$base,$tmp" -benchtol "${BENCH_TOLERANCE_PCT:-0}"
