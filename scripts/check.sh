#!/bin/sh
# check.sh — the repository's verification gate: formatting, vet, doc
# consistency (public-surface godoc, markdown links, CLI flag coverage),
# build, tests, and (unless SKIP_RACE=1) the full suite under the race
# detector. CI and pre-commit hooks should run exactly this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== docs =="
./scripts/godoc_check.sh
./scripts/docs_check.sh

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== long-scenario drain golden =="
go test -run 'TestGoldenNetReceiveLongDrain|TestGoldenProdayDrain' .

echo "== sharded-reconstructor determinism (GOMAXPROCS 1/2/4) =="
# Serial-vs-sharded byte identity must hold whatever the scheduler does:
# the differential tests pin every retained quantity, so run them under
# one, two and four procs, and under the race detector (unless skipped)
# to cover the worker fan-out itself.
for procs in 1 2 4; do
	GOMAXPROCS=$procs go test -count=1 \
		-run 'TestSharded|TestAnalyzeLeanShardedMatchesSerial' \
		./internal/analyze/ ./internal/core/
done
if [ "${SKIP_RACE:-0}" != "1" ]; then
	GOMAXPROCS=4 go test -race -count=1 \
		-run 'TestSharded|TestAnalyzeLeanShardedMatchesSerial|TestRecycle|TestDrainZeroAlloc' \
		./internal/analyze/ ./internal/core/ ./internal/bench/
fi

echo "== fleet determinism + restart (GOMAXPROCS 1/2/4) =="
# The fleet report must be byte-identical for any projection-worker count
# and ingest interleaving, and a killed-and-restarted projector must
# resume from the checkpoints to the same bytes. Run the differentials
# under one, two and four procs, and under the race detector (unless
# skipped) to cover the staging/projection concurrency itself.
for procs in 1 2 4; do
	GOMAXPROCS=$procs go test -count=1 \
		-run 'TestFleetDeterminism|TestFleetRestart' \
		./internal/fleet/
done
if [ "${SKIP_RACE:-0}" != "1" ]; then
	GOMAXPROCS=4 go test -race -count=1 \
		-run 'TestFleet|TestStatusServerFleet' \
		./internal/fleet/ ./internal/export/
fi

echo "== serving tier: multi-client concurrency battery =="
# The SSE hub, ETag cache and time-series ring serve many clients off the
# capture path; their battery (100-subscriber churn, slow-client
# eviction, cache coherence under mutation, the multi-client live-session
# hammer) must hold under the race detector.
if [ "${SKIP_RACE:-0}" != "1" ]; then
	GOMAXPROCS=4 go test -race -count=1 \
		-run 'TestSSE|TestHub|TestETag|TestSubscribe|TestServing|TestCacheCoherence|TestTimeseries' \
		./internal/export/
fi

echo "== optimize-verify loop =="
# The profile-guided loop must close on a real seed: every registry
# change's measured per-unit delta agrees in sign with its what-if
# estimate and lands within the declared tolerance, the differential
# report reproduces byte for byte, and the budget optimizer stays exact
# against brute force. The loop-sweep determinism test additionally runs
# the whole loop across seeds on 1 and 3 workers and demands identical
# bytes.
go test -count=1 \
	-run 'TestRunLoopVerifiesRegistry|TestRunLoopSweepDeterministicAcrossWorkers|TestOptimizeMatchesBruteForce' \
	./internal/pgo/
go test -count=1 -run 'TestGoldenPGO' .

echo "== fuzz smoke =="
go test -run 'FuzzDecodeUnwrap|FuzzSegmentBoundary|FuzzFaultedDecode|FuzzProdayDecode' ./internal/analyze/
if [ "${SKIP_FUZZ:-0}" != "1" ]; then
	go test -run FuzzSegmentBoundary -fuzz FuzzSegmentBoundary -fuzztime 10s ./internal/analyze/
fi

echo "== coverage floors =="
./scripts/cover_check.sh

if [ "${SKIP_BENCH:-0}" != "1" ]; then
	echo "== benchmark regression gate =="
	./scripts/bench_check.sh
fi

if [ "${SKIP_RACE:-0}" != "1" ]; then
	echo "== go test -race =="
	go test -race ./...
fi

echo "check: all clean"
