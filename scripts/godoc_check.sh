#!/bin/sh
# godoc_check.sh — the public surface must stay documented: every exported
# identifier declared in kprof.go needs a doc comment (directly above it,
# or above the var/const/type block that groups it). Pure grep/awk, no
# tooling beyond the POSIX shell.
set -eu

cd "$(dirname "$0")/.."

out=$(awk '
	BEGIN { prevc = 0; inblock = 0; blockdoc = 0 }
	# comment lines arm the "documented" flag for the next declaration
	/^\/\// { prevc = 1; next }
	/^(func|type|var|const) [A-Z]/ {
		n = $2; sub(/[^A-Za-z0-9_].*/, "", n)
		if (!prevc)
			print FILENAME ":" NR ": exported identifier " n " has no doc comment"
		prevc = 0; next
	}
	/^(var|const|type) \(/ { inblock = 1; blockdoc = prevc; prevc = 0; next }
	inblock && /^\)/ { inblock = 0; prevc = 0; next }
	inblock && /^\t\/\// { prevc = 1; next }
	inblock && /^\t[A-Z]/ {
		n = $1; sub(/[^A-Za-z0-9_].*/, "", n)
		if (!prevc && !blockdoc)
			print FILENAME ":" NR ": exported identifier " n " is in an undocumented block and has no doc comment"
		prevc = 0; next
	}
	{ prevc = 0 }
' kprof.go)

if [ -n "$out" ]; then
	echo "$out"
	echo "godoc_check: undocumented exported identifiers in kprof.go"
	exit 1
fi
echo "godoc_check: kprof.go public surface fully documented"
