#!/bin/sh
# docs_check.sh — keep the prose honest:
#   1. every relative link in the repo's markdown files must resolve to an
#      existing file, and
#   2. every kprof CLI flag defined in cmd/kprof/main.go must be mentioned
#      in README.md (so new flags cannot ship undocumented).
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== markdown relative links =="
for md in *.md; do
	# pull out ](target) link destinations, skip absolute/anchor links
	for l in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//'); do
		case $l in
		http://* | https://* | \#* | mailto:*) continue ;;
		esac
		target=${l%%#*}
		[ -z "$target" ] && continue
		if [ ! -e "$target" ]; then
			echo "$md: broken relative link: $l"
			fail=1
		fi
	done
done

echo "== kprof CLI flags documented in README =="
flags=$(grep -oE 'flag\.[A-Za-z0-9]+\("[a-z]+' cmd/kprof/main.go | sed 's/.*"//' | sort -u)
if [ -z "$flags" ]; then
	echo "docs_check: found no flags in cmd/kprof/main.go (parser broken?)"
	exit 1
fi
for f in $flags; do
	if ! grep -q -- "-$f" README.md; then
		echo "README.md: kprof flag -$f is not mentioned"
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "docs_check: failures above"
	exit 1
fi
echo "docs_check: links and CLI flag docs are consistent"
