// The benchmark harness regenerates every table and figure in the paper's
// evaluation. Each benchmark runs the corresponding workload on the
// simulated machine and reports the reproduced quantities as custom metrics
// (virtual-time microseconds, percentages, call counts), so
//
//	go test -bench=. -benchmem
//
// prints the numbers EXPERIMENTS.md records against the paper's. Run with
// -v to also get the rendered report tables.
package kprof_test

import (
	"testing"
	"time"

	"kprof"
	"kprof/internal/analyze"
	"kprof/internal/bus"
	"kprof/internal/core"
	"kprof/internal/fs"
	"kprof/internal/kernel"
	"kprof/internal/netstack"
	"kprof/internal/sampling"
	"kprof/internal/sim"
	"kprof/internal/snmp"
	"kprof/internal/workload"
)

func newProfiled(b *testing.B, seed uint64, mods []string) (*core.Machine, *core.Session) {
	b.Helper()
	m := core.NewMachine(kernel.Config{Seed: seed})
	s, err := core.NewSession(m, core.ProfileConfig{Modules: mods})
	if err != nil {
		b.Fatal(err)
	}
	return m, s
}

func pctOf(a *analyze.Analysis, name string) float64 {
	st, ok := a.Fn(name)
	if !ok || a.RunTime() <= 0 {
		return 0
	}
	return 100 * float64(st.Net) / float64(a.RunTime())
}

// BenchmarkFigure3NetworkSummary reproduces Figure 3: the per-function
// summary of the TCP receive saturation test. Paper: bcopy 33.59% net,
// in_cksum 30.82%, splnet 5.35%, idle 1.01%.
func BenchmarkFigure3NetworkSummary(b *testing.B) {
	var last *analyze.Analysis
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 42, nil)
		s.Arm()
		if _, err := workload.NetReceive(m, 400*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		s.Disarm()
		last = s.Analyze()
	}
	b.ReportMetric(pctOf(last, "bcopy"), "bcopy_%net")
	b.ReportMetric(pctOf(last, "in_cksum"), "in_cksum_%net")
	b.ReportMetric(pctOf(last, "splnet"), "splnet_%net")
	b.ReportMetric(100*float64(last.Idle)/float64(last.Elapsed()), "idle_%")
	b.ReportMetric(float64(last.Stats.Records), "tags")
	if testing.Verbose() {
		b.Logf("\n%s", last.SummaryString(12))
	}
}

// BenchmarkFigure4CodePathTrace reproduces Figure 4: the real-time
// code-path trace of the same run.
func BenchmarkFigure4CodePathTrace(b *testing.B) {
	var trace string
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 42, nil)
		s.Arm()
		if _, err := workload.NetReceive(m, 60*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		s.Disarm()
		trace = s.Analyze().TraceString(analyze.TraceOptions{
			From: 20 * sim.Millisecond, MaxLines: 60,
		})
	}
	b.ReportMetric(float64(len(trace)), "trace_bytes")
	if testing.Verbose() {
		b.Logf("\n%s", trace)
	}
}

// BenchmarkTable1FunctionTimings reproduces Table 1: sample function
// timings (inclusive of subroutines) under a mixed workload. Paper:
// vm_fault 410, kmem_alloc 801, malloc 37, free 32, splnet 11, spl0 25,
// copyinstr 170 (µs).
func BenchmarkTable1FunctionTimings(b *testing.B) {
	var last *analyze.Analysis
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 7, nil)
		s.Arm()
		workload.Mixed(m, sim.Second)
		s.Disarm()
		last = s.Analyze()
	}
	report := func(name string) {
		if st, ok := last.Fn(name); ok {
			b.ReportMetric(float64(st.AvgElapsed().Micros()), name+"_us")
		}
	}
	for _, name := range []string{"vm_fault", "kmem_alloc", "malloc", "free", "splnet", "spl0", "copyinstr"} {
		report(name)
	}
}

// BenchmarkFigure5ForkExec reproduces Figure 5 and the fork/exec timings.
// Paper: vfork ≈24 ms, execve ≈28 ms, pmap_pte ≈1053 calls per fork,
// pmap_remove the top net consumer, >50% of the time in the VM layer.
func BenchmarkFigure5ForkExec(b *testing.B) {
	var res *workload.ForkExecResult
	var last *analyze.Analysis
	var m *core.Machine
	for i := 0; i < b.N; i++ {
		var s *core.Session
		m, s = newProfiled(b, 7, nil)
		s.Arm()
		res = workload.ForkExec(m, 3)
		s.Disarm()
		last = s.Analyze()
	}
	b.ReportMetric(float64(res.ForkTime.Micros()), "vfork_us")
	b.ReportMetric(float64(res.ExecTime.Micros()), "execve_us")
	b.ReportMetric(float64(res.PmapPteCallsPerFork), "pmap_pte_calls/fork")
	var vmPct float64
	for _, g := range last.Groups(m.SubsystemOf()) {
		if g.Name == "vm" {
			vmPct = g.PctNet
		}
	}
	b.ReportMetric(vmPct, "vm_%net")
	if testing.Verbose() {
		b.Logf("\n%s", last.SummaryString(12))
	}
}

// BenchmarkPacketCostBreakdown reproduces E1: the per-packet cost
// arithmetic of the Network Performance section. Paper: driver bcopy
// ≈1045 µs per full packet, in_cksum ≈843 µs/KiB, ≈2000 µs per packet.
func BenchmarkPacketCostBreakdown(b *testing.B) {
	var copyUS, cksumKiB, totalUS float64
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(kernel.Config{Seed: 1})
		// Direct bus-model measurements.
		copyUS = float64(bus.CopyCost(1500, bus.ISA8, bus.MainMemory).Micros())
		start := m.K.Now()
		m.Net.Cksum(make([]byte, 1024), bus.MainMemory)
		cksumKiB = float64((m.K.Now() - start).Micros())
		// Whole-path cost: one warm packet through the stack.
		m.Net.SoCreate(netstack.ProtoTCP, 5001)
		sender := netstack.NewSender(m.Net, 5001)
		sender.SendOne()
		m.K.Advance(sim.Microsecond)
		start = m.K.Now()
		sender.SendOne()
		m.K.Advance(sim.Microsecond)
		totalUS = float64((m.K.Now() - start).Micros())
	}
	b.ReportMetric(copyUS, "driver_copy_us")    // paper: ≈1045
	b.ReportMetric(cksumKiB, "in_cksum_KiB_us") // paper: ≈843
	b.ReportMetric(totalUS, "packet_total_us")  // paper: ≈2000
}

// BenchmarkWhatIfMbufLinking reproduces E2a: the rejected design of
// linking controller buffers into mbufs, run for real. Paper's estimate:
// ≈2000 → ≈3000 µs per packet (a loss).
func BenchmarkWhatIfMbufLinking(b *testing.B) {
	perByte := func(linking bool) float64 {
		m := core.NewMachine(kernel.Config{Seed: 42})
		m.Net.ChecksumInController = linking
		res, err := workload.NetReceive(m, 200*sim.Millisecond)
		if err != nil || res.BytesDelivered == 0 {
			b.Fatal("no data", err)
		}
		return float64(200*sim.Millisecond) / float64(res.BytesDelivered)
	}
	var base, linked float64
	for i := 0; i < b.N; i++ {
		base = perByte(false)
		linked = perByte(true)
	}
	b.ReportMetric(100*(linked/base-1), "cpu_per_byte_change_%") // paper: +50% (2000→3000)
}

// BenchmarkWhatIfOptimizedCksum reproduces E2b: recoding in_cksum. Paper's
// estimate: ≈2000 → ≈1200 µs per packet (a win).
func BenchmarkWhatIfOptimizedCksum(b *testing.B) {
	perByte := func(mode netstack.CksumMode) float64 {
		m := core.NewMachine(kernel.Config{Seed: 42})
		m.Net.CksumMode = mode
		res, err := workload.NetReceive(m, 200*sim.Millisecond)
		if err != nil || res.BytesDelivered == 0 {
			b.Fatal("no data", err)
		}
		return float64(200*sim.Millisecond) / float64(res.BytesDelivered)
	}
	var naive, opt float64
	for i := 0; i < b.N; i++ {
		naive = perByte(netstack.CksumNaive)
		opt = perByte(netstack.CksumOptimized)
	}
	b.ReportMetric(100*(opt/naive-1), "cpu_per_byte_change_%") // paper: −40% (2000→1200)
}

// BenchmarkClockInterrupt reproduces E3: the clock tick cost. Paper:
// ≈94 µs average, with ≈24 µs of software-interrupt emulation.
func BenchmarkClockInterrupt(b *testing.B) {
	var avgUS float64
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 1, nil)
		s.Arm()
		workload.RunFor(m, sim.Second) // pure idle: only clock activity
		s.Disarm()
		a := s.Analyze()
		if st, ok := a.Fn("ISAINTR"); ok && st.Calls > 0 {
			avgUS = float64(st.AvgElapsed().Micros())
		}
	}
	b.ReportMetric(avgUS, "clock_intr_us") // paper: ≈94
}

// BenchmarkSplOverhead reproduces E4: spl* cost. Paper: splnet ≈11 µs;
// 9% of total CPU in spl* under network load.
func BenchmarkSplOverhead(b *testing.B) {
	var splnetUS, splPct float64
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 42, nil)
		s.Arm()
		if _, err := workload.NetReceive(m, 300*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		s.Disarm()
		a := s.Analyze()
		if st, ok := a.Fn("splnet"); ok {
			splnetUS = float64(st.AvgElapsed().Micros())
		}
		splPct = 0
		for _, n := range []string{"splnet", "splx", "spl0", "splbio", "spltty", "splclock", "splhigh"} {
			splPct += pctOf(a, n)
		}
	}
	b.ReportMetric(splnetUS, "splnet_us") // paper: ≈11
	b.ReportMetric(splPct, "spl_%net")    // paper: ≈9
}

// BenchmarkFFSWriteProfile reproduces E5: the FFS write study. Paper: CPU
// ≈28% busy, write interrupt ≈200 µs (149 µs transfer), gaps <100 µs.
func BenchmarkFFSWriteProfile(b *testing.B) {
	var cpuPct, wdUS, shortFrac float64
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 3, nil)
		s.Arm()
		res := workload.FFSWrite(m, 2*sim.Second)
		s.Disarm()
		a := s.Analyze()
		cpuPct = 100 * float64(a.RunTime()) / float64(a.Elapsed())
		if st, ok := a.Fn("wdintr"); ok {
			wdUS = float64(st.AvgElapsed().Micros())
		}
		if res.DiskInterrupts > 0 {
			shortFrac = 100 * float64(res.ShortGaps) / float64(res.DiskInterrupts)
		}
	}
	b.ReportMetric(cpuPct, "cpu_busy_%")       // paper: ≈28
	b.ReportMetric(wdUS, "write_intr_us")      // paper: ≈200
	b.ReportMetric(shortFrac, "gaps_<100us_%") // paper: "most"
}

// BenchmarkNFSvsFTP reproduces E6. Paper: with UDP checksums off, NFS has
// less CPU overhead than an FTP-style TCP transfer.
func BenchmarkNFSvsFTP(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		m1 := core.NewMachine(kernel.Config{Seed: 5})
		nfsRes, err := workload.NFSTransfer(m1, 128*1024)
		if err != nil {
			b.Fatal(err)
		}
		m2 := core.NewMachine(kernel.Config{Seed: 5})
		ftpRes, err := workload.FTPTransfer(m2, 128*1024)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(ftpRes.CPUProxy) / float64(nfsRes.CPUProxy)
	}
	b.ReportMetric(ratio, "ftp/nfs_cpu_ratio") // paper: >1
}

// BenchmarkSNMPLinearVsBTree reproduces E7: the MIB redesign case study.
// Paper: an order of magnitude fewer CPU cycles per request.
func BenchmarkSNMPLinearVsBTree(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		k1 := kernel.New(kernel.Config{Seed: 1})
		lin := snmp.NewLinearStore()
		snmp.StandardMIB(lin, 1000)
		la := snmp.NewAgent(k1, lin, "lin")
		start := k1.Now()
		la.Walk()
		linTime := k1.Now() - start

		k2 := kernel.New(kernel.Config{Seed: 1})
		bt := snmp.NewBTreeStore()
		snmp.StandardMIB(bt, 1000)
		ba := snmp.NewAgent(k2, bt, "bt")
		start = k2.Now()
		ba.Walk()
		btTime := k2.Now() - start
		ratio = float64(linTime) / float64(btTime)
	}
	b.ReportMetric(ratio, "linear/btree_cpu") // paper: ≈10
}

// BenchmarkTriggerOverhead reproduces E8: the cost of the trigger
// instructions themselves. Paper: ≈1-1.2% extra CPU cycles; "no noticeable
// difference ... between a profiled and a non-profiled kernel".
func BenchmarkTriggerOverhead(b *testing.B) {
	var overheadPct float64
	for i := 0; i < b.N; i++ {
		bare := core.NewMachine(kernel.Config{Seed: 7})
		r1 := workload.ForkExec(bare, 3)

		m, s := newProfiled(b, 7, nil)
		s.Arm()
		r2 := workload.ForkExec(m, 3)
		s.Disarm()
		overheadPct = 100 * (float64(r2.ForkTime+r2.ExecTime)/float64(r1.ForkTime+r1.ExecTime) - 1)
	}
	b.ReportMetric(overheadPct, "overhead_%") // paper: ≈1-1.2
}

// BenchmarkProfilerFillRate reproduces E9: how fast a busy kernel fills the
// 16384-event RAM. Paper: "as short a time as 300 milliseconds". Also
// reports the instrumented-function census (paper: 1392 C + 35 asm; our
// model kernel is necessarily smaller).
func BenchmarkProfilerFillRate(b *testing.B) {
	var fillMS, cFns, asmFns float64
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 42, nil)
		s.Arm()
		workload.NetReceive(m, 2*sim.Second)
		s.Disarm()
		if !s.Card.Overflowed() {
			b.Fatal("card did not fill")
		}
		a := s.Analyze()
		fillMS = float64(a.Elapsed()) / float64(sim.Millisecond)
		cFns = float64(s.Inst.CFunctions)
		asmFns = float64(s.Inst.AsmFunctions)
	}
	b.ReportMetric(fillMS, "fill_ms") // paper: ≈300 on a busy kernel
	b.ReportMetric(cFns, "c_fns")
	b.ReportMetric(asmFns, "asm_fns")
}

// BenchmarkISAvsMainMemory reproduces E10: the bus-speed gap. Paper: the
// ISA bus is up to 20 times slower than main memory.
func BenchmarkISAvsMainMemory(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		slow = bus.SlowdownVsMain(bus.ISA8)
	}
	b.ReportMetric(slow, "isa8_slowdown_x") // paper: ≈20
}

// BenchmarkCaptureDecode reproduces E11 and measures the analyzer itself:
// decoding and reconstructing a full 16384-event capture, wrap and
// context-switch handling included.
func BenchmarkCaptureDecode(b *testing.B) {
	m, s := newProfiled(b, 42, nil)
	s.Arm()
	workload.NetReceive(m, 2*sim.Second)
	s.Disarm()
	c := s.Capture()
	if c.Len() == 0 {
		b.Fatal("empty capture")
	}
	b.ResetTimer()
	var a *kprof.Analysis
	for i := 0; i < b.N; i++ {
		a = kprof.Analyze(c, s.Tags)
	}
	b.ReportMetric(float64(c.Len()), "events")
	b.ReportMetric(float64(a.Switches), "ctx_switches")
}

// BenchmarkSweepParallel measures the multi-seed sweep engine: the same
// (scenario, seed) set run through the worker pool at GOMAXPROCS versus
// serially (Parallel: 1). The merged statistics must be identical — the
// fold happens in seed order after the pool drains — and the wall-clock
// ratio is reported as speedup_x: near-linear on a multi-core host
// (workers share nothing but the job queue), necessarily ≈1 on one core.
func BenchmarkSweepParallel(b *testing.B) {
	seeds, err := kprof.ParseSeeds("1..8")
	if err != nil {
		b.Fatal(err)
	}
	cfg := kprof.SweepConfig{
		Scenario: "netrecv",
		Seeds:    seeds,
		Params:   kprof.WorkloadParams{Duration: 100 * sim.Millisecond},
	}
	serialCfg := cfg
	serialCfg.Parallel = 1
	start := time.Now()
	serial, err := kprof.Sweep(serialCfg)
	if err != nil {
		b.Fatal(err)
	}
	serialWall := time.Since(start)

	b.ResetTimer()
	var parallel *kprof.SweepResult
	for i := 0; i < b.N; i++ {
		if parallel, err = kprof.Sweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if parallel.Agg.String() != serial.Agg.String() {
		b.Fatalf("parallel merge differs from serial\n--- parallel ---\n%s--- serial ---\n%s",
			parallel.Agg.String(), serial.Agg.String())
	}
	parWall := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(serialWall)/float64(parWall), "speedup_x")
	b.ReportMetric(float64(parallel.Workers), "workers")
	b.ReportMetric(float64(len(seeds)), "seeds")
	if testing.Verbose() {
		b.Logf("\n%s", parallel.Agg.String())
	}
}

// BenchmarkAblationSelectiveProfiling contrasts whole-kernel (macro) with
// module-restricted (micro) instrumentation: fewer tags per second means a
// longer observation window in the same RAM — the paper's motivation for
// selective profiling.
func BenchmarkAblationSelectiveProfiling(b *testing.B) {
	window := func(mods []string) float64 {
		m, s := newProfiled(b, 42, mods)
		s.Arm()
		workload.NetReceive(m, 2*sim.Second)
		s.Disarm()
		a := s.Analyze()
		return float64(a.Elapsed()) / float64(sim.Millisecond)
	}
	var macro, micro float64
	for i := 0; i < b.N; i++ {
		macro = window(nil)
		micro = window([]string{"if_we", "ip_input", "tcp_input"})
	}
	b.ReportMetric(macro, "whole_kernel_window_ms")
	b.ReportMetric(micro, "selective_window_ms")
}

// BenchmarkAblationSamplingVsHardware puts the paper's rejected software
// alternative head to head with the card: a skewed 1 kHz clock-sampling
// profiler and the hardware profiler watch the same saturation run. The
// sampler lands in the right region but carries sampling noise and its own
// interrupt load; the card's error is its 400 ns triggers.
func BenchmarkAblationSamplingVsHardware(b *testing.B) {
	var hwPct, swPct float64
	for i := 0; i < b.N; i++ {
		m, s := newProfiled(b, 42, nil)
		sampler := sampling.New(m.K, 1000, true)
		sampler.Start()
		s.Arm()
		if _, err := workload.NetReceive(m, 400*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		s.Disarm()
		sampler.Stop()
		a := s.Analyze()
		if st, ok := a.Fn("bcopy"); ok {
			hwPct = 100 * float64(st.Net) / float64(a.RunTime())
		}
		swPct = 100 * sampler.Fraction("bcopy")
	}
	b.ReportMetric(hwPct, "hw_bcopy_%")
	b.ReportMetric(swPct, "sampler_bcopy_%")
}

// BenchmarkAblationClockPrecision contrasts the prototype's 1 MHz counter
// with the future-work 10 MHz upgrade on sub-microsecond functions: the
// prototype rounds pmap_pte's ≈3 µs calls to whole microseconds; the
// upgrade resolves them.
func BenchmarkAblationClockPrecision(b *testing.B) {
	spread := func(hz int64, bits uint) (avg, spreadUS float64) {
		m := core.NewMachine(kernel.Config{Seed: 7})
		s, err := core.NewSession(m, core.ProfileConfig{ClockHz: hz, TimerBits: bits})
		if err != nil {
			b.Fatal(err)
		}
		s.Arm()
		workload.ForkExec(m, 1)
		s.Disarm()
		a := s.Analyze()
		st, ok := a.Fn("pmap_pte")
		if !ok || st.Calls == 0 {
			b.Fatal("no pmap_pte")
		}
		avg = float64(st.Net) / float64(st.Calls) / 1000
		spreadUS = float64(st.Max-st.MinOrZero()) / 1000
		return
	}
	var protoSpread, fastSpread float64
	for i := 0; i < b.N; i++ {
		// The averages agree (quantization is unbiased); the per-call
		// uncertainty band is what the precision upgrade buys.
		_, protoSpread = spread(0, 0)
		_, fastSpread = spread(10_000_000, 28)
	}
	b.ReportMetric(protoSpread, "pte_spread_us_1MHz")
	b.ReportMetric(fastSpread, "pte_spread_us_10MHz")
}

// BenchmarkAblationAckPolicy measures the delayed-ack design choice the
// TCP model exposes: acking every packet versus every other.
func BenchmarkAblationAckPolicy(b *testing.B) {
	goodput := func(every bool) float64 {
		m := core.NewMachine(kernel.Config{Seed: 42})
		m.Net.AckEveryPacket = every
		res, err := workload.NetReceive(m, 200*sim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.BytesDelivered)
	}
	var everyB, delayedB float64
	for i := 0; i < b.N; i++ {
		everyB = goodput(true)
		delayedB = goodput(false)
	}
	b.ReportMetric(100*(delayedB/everyB-1), "delayed_ack_goodput_change_%")
}

// BenchmarkEmbeddedDriverRecoding reproduces the 68020 case study: "the
// recoding of an Ethernet driver doubled the network throughput."
func BenchmarkEmbeddedDriverRecoding(b *testing.B) {
	goodput := func(style netstack.DriverStyle) float64 {
		m, le := core.NewEmbeddedMachine(kernel.Config{Seed: 13}, style)
		res, err := workload.EmbeddedNetReceive(m, le, 400*sim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.BytesDelivered)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = goodput(netstack.DriverRecoded) / goodput(netstack.DriverOld)
	}
	b.ReportMetric(ratio, "recoded/old_throughput") // paper: ≈2
}

// BenchmarkArchSplComparison is the side-by-side the paper wishes for: the
// same spl operations on the i386 (ICU reprogramming) and the 68020
// (move-to-SR). "on the average it took 11 microseconds per splnet call
// ... it is hard to see how this could be improved, given the nature of
// the interrupt architecture."
func BenchmarkArchSplComparison(b *testing.B) {
	pair := func(arch kernel.Arch) float64 {
		k := kernel.New(kernel.Config{Seed: 1, Arch: arch})
		start := k.Now()
		for i := 0; i < 100; i++ {
			s := k.SplNet()
			k.SplX(s)
		}
		return float64((k.Now()-start)/100) / 1000 // µs per raise+restore
	}
	var i386us, m68kus float64
	for i := 0; i < b.N; i++ {
		i386us = pair(kernel.ArchI386)
		m68kus = pair(kernel.ArchM68K)
	}
	b.ReportMetric(i386us, "i386_spl_pair_us")
	b.ReportMetric(m68kus, "m68k_spl_pair_us")
}

// BenchmarkAblationDMAController answers the paper's FFS-section question:
// "It would be interesting to use a different type of controller (maybe one
// with DMA) and see what difference it makes." Same write load, measured
// through the Profiler, PIO versus DMA.
func BenchmarkAblationDMAController(b *testing.B) {
	busy := func(mode fs.TransferMode) float64 {
		m, s := newProfiled(b, 3, nil)
		m.FS.Disk.Mode = mode
		s.Arm()
		workload.FFSWrite(m, 2*sim.Second)
		s.Disarm()
		a := s.Analyze()
		return 100 * float64(a.RunTime()) / float64(a.Elapsed())
	}
	var pio, dma float64
	for i := 0; i < b.N; i++ {
		pio = busy(fs.PIO)
		dma = busy(fs.DMA)
	}
	b.ReportMetric(pio, "pio_cpu_busy_%") // paper: ≈28
	b.ReportMetric(dma, "dma_cpu_busy_%")
}
