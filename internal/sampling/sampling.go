// Package sampling implements the software alternative the paper weighs
// and rejects: a statclock-driven PC-sampling profiler ("function counting
// and gross clock profiling ... If a psuedo-random or skewed clock is
// available, then it is possible to improve the clock profiling").
//
// Each sample is a real interrupt: the sampling clock preempts the kernel,
// attributes the interrupted function, and burns CPU doing so. That is the
// paper's trade-off made concrete — "the finer the granularity, the more
// time is spent running the profiling clock and not actually running the
// kernel ... The coarser the granularity ... the resolution becomes too
// low to perform useful measurement" — which the benchmark harness
// quantifies against the hardware Profiler.
package sampling

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// Sampler is the clock-sampling profiler.
type Sampler struct {
	k   *kernel.Kernel
	rng *sim.Rand

	fnStatProf *kernel.Fn
	irq        *kernel.IRQ

	period  sim.Time
	skewed  bool
	running bool

	// hits counts samples per function name; "idle" collects samples
	// that landed outside any kernel function.
	hits  map[string]uint64
	total uint64

	// pending is the function captured at the sample instant, before the
	// sampling interrupt's own frames pile on.
	pending string
}

// Calibrated cost of servicing one sampling interrupt (beyond the usual
// interrupt stub): read the PC from the trap frame, hash, bump a counter.
const costSample = 12 * sim.Microsecond

// New installs a sampling profiler ticking at rate Hz. skewed adds the
// pseudo-random period jitter the paper mentions, decorrelating samples
// from clock-driven kernel activity.
func New(k *kernel.Kernel, rate int, skewed bool) *Sampler {
	if rate <= 0 {
		panic("sampling: non-positive rate")
	}
	s := &Sampler{
		k:          k,
		rng:        sim.NewRand(0x5a3),
		fnStatProf: k.RegisterFn("kern_clock", "statprof"),
		period:     sim.Second / sim.Time(rate),
		skewed:     skewed,
		hits:       make(map[string]uint64),
	}
	s.irq = k.RegisterIRQ("statclk", kernel.MaskClock, kernel.MaskAll, 1, s.intr)
	return s
}

// Start begins sampling.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.arm()
}

// Stop halts sampling after the next tick.
func (s *Sampler) Stop() { s.running = false }

func (s *Sampler) arm() {
	d := s.period
	if s.skewed {
		// +/- 25% jitter around the nominal period.
		d = s.rng.Duration(s.period*3/4, s.period*5/4)
	}
	s.k.Scheduler().After(d, func() {
		if !s.running {
			return
		}
		// Capture the interrupted function at the sample instant,
		// before the interrupt machinery runs.
		if fn := s.k.CurrentFn(); fn != nil {
			s.pending = fn.Name
		} else {
			s.pending = "idle"
		}
		s.k.Raise(s.irq)
		// The next tick is armed from the service routine: a chip whose
		// period is shorter than its own service time drops ticks rather
		// than storming the CPU — at absurd rates the effective rate
		// saturates at 1/serviceTime, which is perturbation enough.
	})
}

// intr services the sampling interrupt: charge the bookkeeping cost,
// commit the sample, re-arm.
func (s *Sampler) intr() {
	s.k.Call(s.fnStatProf, func() {
		s.k.Advance(costSample)
		s.hits[s.pending]++
		s.total++
	})
	if s.running {
		s.arm()
	}
}

// Samples reports the total samples taken.
func (s *Sampler) Samples() uint64 { return s.total }

// Fraction reports the sampled share of name among non-idle samples.
func (s *Sampler) Fraction(name string) float64 {
	busy := s.total - s.hits["idle"]
	if busy == 0 {
		return 0
	}
	return float64(s.hits[name]) / float64(busy)
}

// IdleFraction reports the sampled idle share.
func (s *Sampler) IdleFraction() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.hits["idle"]) / float64(s.total)
}

// Row is one line of the sampling report.
type Row struct {
	Name    string
	Hits    uint64
	Percent float64
}

// Report returns rows sorted by hits.
func (s *Sampler) Report() []Row {
	rows := make([]Row, 0, len(s.hits))
	for name, n := range s.hits {
		var pct float64
		if s.total > 0 {
			pct = 100 * float64(n) / float64(s.total)
		}
		rows = append(rows, Row{Name: name, Hits: n, Percent: pct})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Hits != rows[j].Hits {
			return rows[i].Hits > rows[j].Hits
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// Write renders the sampling report.
func (s *Sampler) Write(w io.Writer, top int) error {
	fmt.Fprintf(w, "%d samples at %v nominal period\n", s.total, s.period)
	rows := s.Report()
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %6.2f%%  %s\n", r.Hits, r.Percent, r.Name)
	}
	return nil
}

// String renders the report.
func (s *Sampler) String() string {
	var b strings.Builder
	_ = s.Write(&b, 0)
	return b.String()
}
