package sampling

import (
	"strings"
	"testing"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

func TestSamplerAttributesHotFunction(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	hot := k.RegisterFn("m", "hot")
	cold := k.RegisterFn("m", "cold")
	s := New(k, 1000, false)
	s.Start()
	// 90% of time in hot, 10% in cold.
	for i := 0; i < 200; i++ {
		k.CallCost(hot, 900*sim.Microsecond)
		k.CallCost(cold, 100*sim.Microsecond)
	}
	s.Stop()
	if s.Samples() < 150 {
		t.Fatalf("samples = %d", s.Samples())
	}
	hf, cf := s.Fraction("hot"), s.Fraction("cold")
	if hf < 0.80 || hf > 0.98 {
		t.Fatalf("hot fraction = %.3f, want ≈0.9", hf)
	}
	if cf > 0.2 {
		t.Fatalf("cold fraction = %.3f", cf)
	}
	if !strings.Contains(s.String(), "hot") {
		t.Fatalf("report:\n%s", s)
	}
}

func TestSamplerSeesIdle(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	k.StartClock()
	s := New(k, 500, false)
	s.Start()
	k.Run(sim.Second) // pure idle apart from ticks
	s.Stop()
	if s.IdleFraction() < 0.9 {
		t.Fatalf("idle fraction = %.3f on an idle machine", s.IdleFraction())
	}
}

// The paper's granularity complaint: at a coarse rate, short-lived hot
// functions are barely resolved over a short window.
func TestCoarseRateMissesDetail(t *testing.T) {
	run := func(rate int) uint64 {
		k := kernel.New(kernel.Config{Seed: 1})
		short := k.RegisterFn("m", "short")
		filler := k.RegisterFn("m", "filler")
		s := New(k, rate, false)
		s.Start()
		for k.Now() < 100*sim.Millisecond {
			k.CallCost(short, 8*sim.Microsecond) // hot but tiny
			k.CallCost(filler, 92*sim.Microsecond)
		}
		s.Stop()
		return s.hits["short"]
	}
	coarse := run(100)  // 100 Hz over 100 ms: ~10 samples total
	fine := run(10_000) // 10 kHz: ~1000 samples (any faster and the
	// sample service time exceeds the period — interrupt livelock, the
	// perturbation end-state)
	if coarse > 3 {
		t.Fatalf("coarse sampler resolved the 8%% function with %d hits in 10 samples?", coarse)
	}
	if fine < 40 {
		t.Fatalf("fine sampler hits = %d", fine)
	}
}

// The paper's perturbation complaint: the finer the sampling, the more CPU
// the profiling clock itself burns.
func TestFineRatePerturbs(t *testing.T) {
	elapsed := func(rate int) sim.Time {
		k := kernel.New(kernel.Config{Seed: 1})
		fn := k.RegisterFn("m", "work")
		var s *Sampler
		if rate > 0 {
			s = New(k, rate, false)
			s.Start()
		}
		start := k.Now()
		for i := 0; i < 100; i++ {
			k.CallCost(fn, sim.Millisecond)
		}
		if s != nil {
			s.Stop()
		}
		return k.Now() - start
	}
	base := elapsed(0)
	fine := elapsed(10_000) // 10 kHz
	overhead := float64(fine)/float64(base) - 1
	// 10 kHz × (12 µs + interrupt stub ≈31 µs) ≈ 43% — unusable, which
	// is the point.
	if overhead < 0.20 {
		t.Fatalf("10 kHz sampling overhead = %.3f, expected heavy perturbation", overhead)
	}
	mild := elapsed(100)
	if o := float64(mild)/float64(base) - 1; o > 0.02 {
		t.Fatalf("100 Hz overhead = %.3f, should be light", o)
	}
}

func TestSkewedClockDecorrelates(t *testing.T) {
	// A workload synchronized with the sampling clock: a function that
	// runs for 100 µs exactly every 1 ms, phase-locked. The unskewed
	// 1 kHz sampler aliases; the skewed one sees ≈10%.
	run := func(skewed bool) float64 {
		k := kernel.New(kernel.Config{Seed: 1})
		locked := k.RegisterFn("m", "locked")
		gap := k.RegisterFn("m", "gap")
		s := New(k, 1000, skewed)
		s.Start()
		for i := 0; i < 500; i++ {
			k.CallCost(locked, 100*sim.Microsecond)
			k.CallCost(gap, 900*sim.Microsecond)
		}
		s.Stop()
		return s.Fraction("locked")
	}
	plain := run(false)
	skewed := run(true)
	truth := 0.1
	plainErr := abs(plain - truth)
	skewedErr := abs(skewed - truth)
	if skewedErr > 0.05 {
		t.Fatalf("skewed sampler error = %.3f (got %.3f)", skewedErr, skewed)
	}
	// The phase-locked sampler aliases badly (sees ~0% or ~100%).
	if plainErr < skewedErr {
		t.Logf("note: plain sampler happened to land well (%.3f vs %.3f)", plain, skewed)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// The head-to-head the paper implies: on the network saturation workload,
// the sampler gets the big picture roughly right at moderate rates while
// burning CPU, and the hardware profiler gets it exactly with ≈1% cost.
func TestSamplerVsProfilerOnNetLoad(t *testing.T) {
	m := core.NewMachine(kernel.Config{Seed: 42})
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sampler := New(m.K, 1000, true)
	sampler.Start()
	s.Arm()
	if _, err := workload.NetReceive(m, 400*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	sampler.Stop()

	a := s.Analyze()
	hwFrac := 0.0
	if st, ok := a.Fn("bcopy"); ok {
		hwFrac = float64(st.Net) / float64(a.RunTime())
	}
	swFrac := sampler.Fraction("bcopy")
	if swFrac == 0 {
		t.Fatal("sampler never saw bcopy")
	}
	// The 1 kHz sampler's bcopy estimate is in the right region but
	// noticeably noisier than the hardware number.
	if abs(swFrac-hwFrac) > 0.15 {
		t.Fatalf("sampler %.3f vs profiler %.3f: too far apart", swFrac, hwFrac)
	}
}
