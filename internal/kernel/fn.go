package kernel

import (
	"fmt"

	"kprof/internal/sim"
)

// Fn is one kernel function known to the symbol table. The simulated kernel
// registers every routine it models (bcopy, splnet, tcp_input, ...) as an Fn
// so that the instrumentation pass can assign event tags and enable triggers
// per function, exactly as the modified compiler did per object module.
type Fn struct {
	Name   string
	Module string // object module ("net", "vm", "fs", ...), the unit of selective profiling
	Asm    bool   // assembler routine (triggers added via include-file macro, not the compiler)

	// Set by the instrumentation pass.
	instrumented bool
	entryAddr    uint32 // virtual address of the entry trigger load
	exitAddr     uint32

	// Runtime statistics the simulator keeps for its own assertions
	// (the Profiler does not see these).
	Calls uint64
}

// Instrumented reports whether the instrumentation pass enabled triggers.
func (f *Fn) Instrumented() bool { return f.instrumented }

// SetTriggers is called by the instrumentation pass to plant the entry and
// exit trigger loads. Addresses are kernel-virtual addresses inside the
// EPROM window (ProfileBase + tag).
func (f *Fn) SetTriggers(entryAddr, exitAddr uint32) {
	f.instrumented = true
	f.entryAddr = entryAddr
	f.exitAddr = exitAddr
}

// ClearTriggers removes instrumentation, as recompiling the module without
// the profiling option would.
func (f *Fn) ClearTriggers() { f.instrumented = false }

// TriggerFunc performs the simulated EPROM-window load: the bus read that
// the Profiler's socket decodes. The kernel charges the trigger instruction
// cost separately.
type TriggerFunc func(addr uint32)

// RegisterFn adds a function to the kernel symbol table. Registering the
// same name twice is a bug in the subsystem setup code and panics.
func (k *Kernel) RegisterFn(module, name string) *Fn {
	return k.registerFn(module, name, false)
}

// RegisterAsmFn adds an assembler routine to the symbol table. Assembler
// routines get their triggers from a preprocessor macro rather than the
// compiler, and the instrumentation pass counts them separately.
func (k *Kernel) RegisterAsmFn(module, name string) *Fn {
	return k.registerFn(module, name, true)
}

// fnArenaCap covers a fully-attached machine's symbol table (~100 entries)
// with headroom; registrations past the arena fall back to individual
// allocations, so the cap is a sizing hint, not a limit.
const fnArenaCap = 192

func (k *Kernel) registerFn(module, name string, asm bool) *Fn {
	if _, dup := k.fns[name]; dup {
		panic(fmt.Sprintf("kernel: function %q registered twice", name))
	}
	var f *Fn
	if len(k.fnArena) < cap(k.fnArena) {
		// Carve from the slab. Growing the arena would move earlier
		// entries, so past capacity we allocate individually instead.
		k.fnArena = append(k.fnArena, Fn{Name: name, Module: module, Asm: asm})
		f = &k.fnArena[len(k.fnArena)-1]
	} else {
		f = &Fn{Name: name, Module: module, Asm: asm}
	}
	k.fns[name] = f
	k.fnOrder = append(k.fnOrder, f)
	return f
}

// FindFn looks up a function by name.
func (k *Kernel) FindFn(name string) (*Fn, bool) {
	f, ok := k.fns[name]
	return f, ok
}

// MustFn looks up a function that must exist.
func (k *Kernel) MustFn(name string) *Fn {
	f, ok := k.fns[name]
	if !ok {
		panic("kernel: unknown function " + name)
	}
	return f
}

// Functions returns the symbol table in registration order.
func (k *Kernel) Functions() []*Fn {
	out := make([]*Fn, len(k.fnOrder))
	copy(out, k.fnOrder)
	return out
}

// Call executes body as kernel function fn: it fires the entry trigger,
// runs the body (which advances virtual time through Advance and may call
// further functions), and fires the exit trigger. This is the simulated
// equivalent of the compiler-inserted prologue/epilogue loads:
//
//	movb _ProfileBase+1386,%al   ; entry
//	...
//	movb _ProfileBase+1387,%cl   ; exit
//	ret
func (k *Kernel) Call(fn *Fn, body func()) {
	fn.Calls++
	st := k.stack()
	*st = append(*st, fn)
	k.fireTrigger(fn, fn.entryAddr)
	body()
	k.fireTrigger(fn, fn.exitAddr)
	// The slice header may have moved while body ran (appends), but the
	// context is the same: pop from the current view.
	st = k.stack()
	*st = (*st)[:len(*st)-1]
}

// stack returns the Call-nesting stack of the executing context: the
// current process's, or the boot/idle context's.
func (k *Kernel) stack() *[]*Fn {
	if k.curproc != nil {
		return &k.curproc.callStack
	}
	return &k.bootStack
}

// CurrentFn reports the innermost kernel function executing right now, or
// nil in the idle loop / between functions. The clock-sampling profiler
// (internal/sampling) reads this at its sample instants; the Profiler
// hardware needs nothing of the kind.
func (k *Kernel) CurrentFn() *Fn {
	st := *k.stack()
	if len(st) == 0 {
		return nil
	}
	return st[len(st)-1]
}

// CallDepth reports the current context's nesting depth (for tests).
func (k *Kernel) CallDepth() int { return len(*k.stack()) }

// CallCost is shorthand for a leaf function whose body is a plain time cost.
func (k *Kernel) CallCost(fn *Fn, cost sim.Time) {
	k.Call(fn, func() { k.Advance(cost) })
}

// Inline fires a single inline trigger (the paper's asm-macro mechanism,
// marked '=' in the name/tag file). addr must have been assigned by the
// instrumentation pass; an addr of 0 means "not instrumented" and only the
// (negligible) cost is skipped too.
func (k *Kernel) Inline(addr uint32) {
	if addr == 0 || k.trig == nil {
		return
	}
	k.Advance(k.trigCost)
	k.trig(addr)
}

func (k *Kernel) fireTrigger(fn *Fn, addr uint32) {
	if !fn.instrumented || k.trig == nil {
		return
	}
	// The trigger is one extra instruction: ~400 ns on the 40 MHz 386.
	k.Advance(k.trigCost)
	k.trig(addr)
}

// SetTrigger connects the kernel's trigger loads to the bus (in practice, to
// the EPROM socket's Read). A nil trig detaches the Profiler; instrumented
// kernels then still pay the trigger instruction cost, faithfully to the
// real system where the movb executes whether or not the card is plugged in.
// Pass zero cost to model a kernel compiled without profiling at all.
func (k *Kernel) SetTrigger(trig TriggerFunc) { k.trig = trig }

// Advance moves virtual time forward by cost, delivering any device events
// and unmasked interrupts that fall inside the interval. An interrupt
// suspends the remaining cost, runs the handler (which advances time
// itself), and then resumes: total elapsed time grows by the handler time,
// exactly as a real CPU is delayed by an interrupt.
func (k *Kernel) Advance(cost sim.Time) {
	if cost < 0 {
		panic("kernel: negative cost")
	}
	remaining := cost
	for remaining > 0 {
		next, ok := k.sched.NextAt()
		target := k.sched.Now() + remaining
		if !ok || next > target {
			k.sched.AdvanceTo(target)
			break
		}
		step := next - k.sched.Now()
		k.sched.AdvanceTo(next)
		remaining -= step
		k.sched.RunDue()       // device events fire; they raise IRQs
		k.dispatchInterrupts() // unmasked handlers run now, on this stack
	}
	// Events scheduled exactly at the end of the interval.
	k.sched.RunDue()
	k.dispatchInterrupts()
}
