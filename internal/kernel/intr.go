package kernel

import "fmt"

// IRQ is a hardware interrupt line. Devices raise it from sim events; the
// kernel delivers it when the current spl mask admits its class, running the
// handler through the ISAINTR stub on whatever stack is executing — exactly
// the borrowed-context model of real interrupt delivery.
type IRQ struct {
	Name    string
	Class   SPL    // the mask bit that blocks this line
	RunAt   SPL    // additional classes blocked while the handler runs
	Handler func() // device interrupt service routine
	pri     int    // delivery order among simultaneously pending lines

	pending bool
	// Raised counts raise strobes; Delivered counts handler runs. A line
	// raised while already pending coalesces, as edge-triggered ISA
	// interrupts effectively do once latched in the ICU.
	Raised    uint64
	Delivered uint64
}

// RegisterIRQ installs an interrupt line. Lower pri is delivered first when
// several lines are pending.
func (k *Kernel) RegisterIRQ(name string, class SPL, runAt SPL, pri int, handler func()) *IRQ {
	if handler == nil {
		panic("kernel: nil interrupt handler for " + name)
	}
	irq := &IRQ{Name: name, Class: class, RunAt: runAt, Handler: handler, pri: pri}
	k.irqs = append(k.irqs, irq)
	return irq
}

// Raise latches the interrupt pending. Delivery happens at the next
// dispatch point (inside Advance, at splx/spl0, or in the idle loop).
func (k *Kernel) Raise(irq *IRQ) {
	irq.Raised++
	irq.pending = true
}

// Pending reports whether the line is latched awaiting delivery.
func (irq *IRQ) Pending() bool { return irq.pending }

func (k *Kernel) nextDeliverable() *IRQ {
	var best *IRQ
	for _, irq := range k.irqs {
		if !irq.pending || k.spl&irq.Class != 0 {
			continue
		}
		if best == nil || irq.pri < best.pri {
			best = irq
		}
	}
	return best
}

// dispatchInterrupts delivers every deliverable hardware interrupt, then
// any admissible software interrupts. It is called from Advance (so
// interrupts preempt mid-function), from the mask-lowering spl routines and
// from the idle loop.
func (k *Kernel) dispatchInterrupts() {
	for {
		irq := k.nextDeliverable()
		if irq == nil {
			break
		}
		irq.pending = false
		k.runIntr(irq)
	}
	k.runSoftIntrs()
}

// runIntr delivers one hardware interrupt through the ISAINTR stub:
// vector + ICU acknowledge, the device ISR, then the return path with its
// software-interrupt (AST) emulation — the ≈24 µs/interrupt overhead the
// paper measures for working around the 386's lack of ASTs.
func (k *Kernel) runIntr(irq *IRQ) {
	irq.Delivered++
	k.Stats.Interrupts++
	k.intrNest++
	saved := k.spl
	k.Call(k.fnISAINTR, func() {
		// Interrupts are off (cli) through the stub until the ICU mask
		// for this line's class is in place.
		k.spl = MaskAll
		k.Advance(k.costs.intrEntry)
		k.spl = saved | irq.Class | irq.RunAt
		irq.Handler()
		k.Advance(k.costs.intrAST)
	})
	k.spl = saved
	k.intrNest--
}

// InInterrupt reports whether the CPU is in interrupt context.
func (k *Kernel) InInterrupt() bool { return k.intrNest > 0 }

// Software interrupts (the netisr mechanism). The 386 has no hardware ASTs,
// so 386BSD keeps a word of pending soft-interrupt bits checked on the way
// out of every hardware interrupt and whenever spl drops to 0.

type softIntr struct {
	bit     uint32
	name    string
	handler func()
	// Scheduled / Run counters for tests and reports.
	Scheduled uint64
	Run       uint64
}

// Well-known soft interrupt bits.
const (
	SoftNetIP uint32 = 1 << iota
	SoftClockBit
)

// RegisterSoft installs a software-interrupt handler on a bit.
func (k *Kernel) RegisterSoft(bit uint32, name string, handler func()) {
	if handler == nil {
		panic("kernel: nil soft handler for " + name)
	}
	if _, dup := k.softs[bit]; dup {
		panic(fmt.Sprintf("kernel: soft interrupt bit %#x registered twice", bit))
	}
	k.softs[bit] = &softIntr{bit: bit, name: name, handler: handler}
}

// ScheduleSoft marks a software interrupt pending (schednetisr).
func (k *Kernel) ScheduleSoft(bit uint32) {
	if s, ok := k.softs[bit]; ok {
		s.Scheduled++
	}
	k.softPend |= bit
}

// SoftPending reports the pending soft-interrupt word.
func (k *Kernel) SoftPending() uint32 { return k.softPend }

// runSoftIntrs drains admissible soft interrupts. Soft net handlers run
// with soft-net (and soft-clock) masked so they do not re-enter.
func (k *Kernel) runSoftIntrs() {
	for k.softPend != 0 && k.spl&MaskSoftNet == 0 {
		bit := k.softPend & -k.softPend // lowest set bit first
		k.softPend &^= bit
		s, ok := k.softs[bit]
		if !ok {
			continue
		}
		s.Run++
		k.Stats.SoftIntrs++
		saved := k.spl
		k.spl |= MaskSoftNet | MaskSoftClock
		k.Call(k.fnDoreti, func() {
			k.Advance(k.costs.doreti)
			s.handler()
		})
		k.spl = saved
	}
}

// SoftIntrStats reports scheduled/run counts for a registered bit.
func (k *Kernel) SoftIntrStats(bit uint32) (scheduled, run uint64) {
	if s, ok := k.softs[bit]; ok {
		return s.Scheduled, s.Run
	}
	return 0, 0
}
