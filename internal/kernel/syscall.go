package kernel

import "kprof/internal/sim"

// Syscall runs body as a system call made by the current process: the trap
// and dispatch overhead on the way in, the body (kernel work), and the
// return path, which is also the kernel's voluntary reschedule point — if
// hardclock has requested a round-robin switch, it happens here, as on the
// real system where the AST check on return to user mode triggers swtch.
func (k *Kernel) Syscall(p *Proc, body func()) {
	if p == nil || k.curproc != p {
		panic("kernel: Syscall from a process that does not own the CPU")
	}
	k.Stats.Syscalls++
	k.Call(k.fnSyscall, func() {
		k.Advance(costSyscallEntry)
		body()
		k.Advance(costSyscallExit)
	})
	if k.needResch && len(k.runq) > 0 {
		p.Yield()
	}
}

// Copyin models copying n bytes from user space into the kernel.
func (k *Kernel) Copyin(n int) { k.CallCost(k.fnCopyin, CopyCost(n)) }

// Copyout models copying n bytes from the kernel to user space. The paper
// measures ≈40 µs for a 1 KiB mbuf cluster.
func (k *Kernel) Copyout(n int) { k.CallCost(k.fnCopyout, CopyCost(n)) }

// Copyinstr models copying a NUL-terminated string (a path name) from user
// space, with the per-byte fault checking that makes it so much slower than
// a block copy — Table 1 reports ≈170 µs for a typical path.
func (k *Kernel) Copyinstr(n int) {
	k.CallCost(k.fnCopyinstr, costCopyinstrBase+sim.Time(n)*costCopyinstrPB)
}
