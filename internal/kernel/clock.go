package kernel

import "kprof/internal/sim"

// Callout is a pending timeout() request, executed by softclock when its
// tick count expires.
type Callout struct {
	fn     func()
	ticks  int
	active bool
}

// Active reports whether the callout is still pending.
func (c *Callout) Active() bool { return c.active }

// Timeout arranges for fn to run ticks clock ticks from now, in softclock
// context. It models the BSD timeout() interface, callout-table scan cost
// included.
func (k *Kernel) Timeout(fn func(), ticks int) *Callout {
	if fn == nil {
		panic("kernel: nil timeout function")
	}
	if ticks < 1 {
		ticks = 1
	}
	c := &Callout{fn: fn, ticks: ticks, active: true}
	k.Call(k.fnTimeout, func() {
		k.Advance(costTimeout)
		k.callouts = append(k.callouts, c)
	})
	return c
}

// Untimeout cancels a pending callout; cancelling an expired or already
// cancelled callout is a no-op.
func (k *Kernel) Untimeout(c *Callout) {
	k.Call(k.fnUntime, func() {
		k.Advance(costUntimeout)
		c.active = false
	})
}

// PendingCallouts reports how many callouts are live (for tests).
func (k *Kernel) PendingCallouts() int {
	n := 0
	for _, c := range k.callouts {
		if c.active {
			n++
		}
	}
	return n
}

// StartClock installs the clock interrupt and begins ticking at HZ. The
// paper measured the whole tick at ≈94 µs on average — the ISAINTR stub,
// hardclock's bookkeeping, the periodic statistics gathering and the
// software-interrupt emulation on the way out all add up.
func (k *Kernel) StartClock() {
	irq := k.RegisterIRQ("clk", MaskClock, MaskAll, 0, k.hardclock)
	period := sim.Second / sim.Time(k.hz)
	// The tick closure is allocated once and rearmed on pooled events, so
	// a long run's clock costs no allocation per tick.
	var tick func()
	tick = func() {
		k.Raise(irq)
		k.sched.AfterFree(period, tick)
	}
	k.sched.AfterFree(period, tick)
	k.RegisterSoft(SoftClockBit, "softclock", k.softclock)
}

// roundRobinTicks is the quantum: request a reschedule every N ticks, as
// BSD's roundrobin() does (100 ms at HZ=100).
const roundRobinTicks = 10

// hardclock is the clock ISR body (the ISAINTR wrapper is supplied by the
// interrupt dispatch path).
func (k *Kernel) hardclock() {
	k.Call(k.fnHardclk, func() {
		k.ticks++
		k.Stats.Ticks++
		k.Advance(costHardclockBase)
		// Statistics gathering runs at a fraction of clock rate when no
		// separate statclock exists; every fourth tick approximates the
		// skewed statclock of the period.
		if k.ticks%4 == 0 {
			k.CallCost(k.fnGather, costGatherstats)
		}
		// Age the callout table; schedule softclock if anything expired.
		expired := false
		for _, c := range k.callouts {
			if !c.active {
				continue
			}
			c.ticks--
			if c.ticks <= 0 {
				expired = true
			}
		}
		if expired {
			k.ScheduleSoft(SoftClockBit)
		}
		if k.ticks%roundRobinTicks == 0 {
			k.NeedResched()
		}
	})
}

// softclock runs expired callouts at soft-interrupt priority.
func (k *Kernel) softclock() {
	k.Call(k.fnSoftclk, func() {
		k.Advance(costSoftclockBase)
		// Collect first: callout bodies may add new callouts.
		var due []*Callout
		live := k.callouts[:0]
		for _, c := range k.callouts {
			switch {
			case !c.active:
				// drop
			case c.ticks <= 0:
				c.active = false
				due = append(due, c)
			default:
				live = append(live, c)
			}
		}
		k.callouts = live
		for _, c := range due {
			k.Advance(costPerCallout)
			c.fn()
		}
	})
}
