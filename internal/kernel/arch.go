package kernel

import "kprof/internal/sim"

// Arch selects the processor/interrupt architecture being modeled. The
// paper profiles two machines: the 40 MHz i386 PC (whose ISA interrupt
// controller makes spl* expensive and which must emulate software
// interrupts — "the grossest area of mismatch between the hardware
// architecture and UNIX"), and the 68020 Megadata embedded board, "a
// multi-priority interrupt level processor" where the same operations are
// a single move-to-SR instruction.
type Arch int

const (
	// ArchI386 is the paper's 386BSD target.
	ArchI386 Arch = iota
	// ArchM68K is the Megadata 68020 embedded platform of the first case
	// study.
	ArchM68K
)

func (a Arch) String() string {
	switch a {
	case ArchI386:
		return "i386"
	case ArchM68K:
		return "m68k"
	}
	return "arch?"
}

// archCosts are the machine-dependent timing constants.
type archCosts struct {
	splRaise  sim.Time // splnet/splbio/spltty body
	splHigh   sim.Time
	splx      sim.Time
	spl0      sim.Time
	softPoll  sim.Time // spl0's check of the pending-soft-interrupt word
	intrEntry sim.Time // interrupt stub prologue
	intrAST   sim.Time // software-interrupt emulation on the way out
	doreti    sim.Time
	trigger   sim.Time // one profiling trigger instruction
	intrName  string   // the stub's symbol name
}

var archTable = map[Arch]archCosts{
	// The i386 numbers are the paper's: splnet ≈11 µs inclusive, spl0
	// ≈25 µs, ISAINTR ≈31 µs net with ≈24 µs of AST emulation, triggers
	// ≈400 ns per function (two loads).
	ArchI386: {
		splRaise:  10 * sim.Microsecond,
		splHigh:   8 * sim.Microsecond,
		splx:      3 * sim.Microsecond,
		spl0:      20 * sim.Microsecond,
		softPoll:  2 * sim.Microsecond,
		intrEntry: 7 * sim.Microsecond,
		intrAST:   24 * sim.Microsecond,
		doreti:    5 * sim.Microsecond,
		trigger:   200 * sim.Nanosecond,
		intrName:  "ISAINTR",
	},
	// The 68020: spl* is "move #level,SR" — a microsecond of work
	// including the call; vectored interrupts need no ICU dance and the
	// lower-priority self-interrupt trick makes soft interrupts cheap.
	// The embedded board runs a slower clock, so the trigger instruction
	// (tstb absolute) costs a little more than the 386's load.
	ArchM68K: {
		splRaise:  1500 * sim.Nanosecond,
		splHigh:   1200 * sim.Nanosecond,
		splx:      1 * sim.Microsecond,
		spl0:      1500 * sim.Nanosecond,
		softPoll:  0,
		intrEntry: 4 * sim.Microsecond,
		intrAST:   3 * sim.Microsecond,
		doreti:    3 * sim.Microsecond,
		trigger:   300 * sim.Nanosecond,
		intrName:  "VECINTR",
	},
}

// Arch reports the kernel's architecture.
func (k *Kernel) Arch() Arch { return k.arch }
