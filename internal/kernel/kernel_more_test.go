package kernel

import (
	"strings"
	"testing"

	"kprof/internal/sim"
)

func TestCurrentFnTracksNesting(t *testing.T) {
	k := newTestKernel()
	outer := k.RegisterFn("m", "outer")
	inner := k.RegisterFn("m", "inner")
	if k.CurrentFn() != nil || k.CallDepth() != 0 {
		t.Fatal("non-empty initial stack")
	}
	k.Call(outer, func() {
		if k.CurrentFn() != outer {
			t.Fatal("outer not current")
		}
		k.Call(inner, func() {
			if k.CurrentFn() != inner || k.CallDepth() != 2 {
				t.Fatalf("inner not current at depth 2 (depth %d)", k.CallDepth())
			}
		})
		if k.CurrentFn() != outer || k.CallDepth() != 1 {
			t.Fatal("outer not restored")
		}
	})
	if k.CurrentFn() != nil {
		t.Fatal("stack not empty after call")
	}
}

// The per-context stacks: a suspended process's open frames must not be
// disturbed by another process's calls — the bug class that a single global
// stack would have.
func TestCallStacksArePerProcess(t *testing.T) {
	k := newTestKernel()
	fnA := k.RegisterFn("m", "deepA")
	fnB := k.RegisterFn("m", "deepB")
	var ident int
	var observedInB *Fn
	k.Spawn("a", func(p *Proc) {
		k.Call(fnA, func() {
			k.Tsleep(&ident, "hold", 0) // block with deepA open
			if k.CurrentFn() != fnA {
				t.Error("A's stack corrupted across the switch")
			}
		})
		if k.CallDepth() != 0 {
			t.Errorf("A depth after call = %d", k.CallDepth())
		}
	})
	k.Spawn("b", func(p *Proc) {
		k.Call(fnB, func() {
			observedInB = k.CurrentFn()
			k.Advance(10 * sim.Microsecond)
			k.Wakeup(&ident)
		})
	})
	k.Run(10 * sim.Millisecond)
	if observedInB != fnB {
		t.Fatalf("B observed %v as current", observedInB)
	}
}

func TestCurrentFnDuringInterrupt(t *testing.T) {
	k := newTestKernel()
	work := k.RegisterFn("m", "work")
	var inISR *Fn
	irq := k.RegisterIRQ("dev", MaskNet, 0, 1, func() {
		inISR = k.CurrentFn() // the ISAINTR stub frame
	})
	k.Scheduler().After(5*sim.Microsecond, func() { k.Raise(irq) })
	k.Call(work, func() { k.Advance(20 * sim.Microsecond) })
	if inISR == nil || inISR.Name != "ISAINTR" {
		t.Fatalf("current in ISR = %v", inISR)
	}
	if k.CurrentFn() != nil {
		t.Fatal("stack not unwound")
	}
}

func TestInInterrupt(t *testing.T) {
	k := newTestKernel()
	var during bool
	irq := k.RegisterIRQ("dev", MaskNet, 0, 1, func() { during = k.InInterrupt() })
	k.Raise(irq)
	k.Advance(sim.Microsecond)
	if !during {
		t.Fatal("InInterrupt false inside a handler")
	}
	if k.InInterrupt() {
		t.Fatal("InInterrupt true outside")
	}
}

func TestInlineTrigger(t *testing.T) {
	k := newTestKernel()
	var addrs []uint32
	k.SetTrigger(func(a uint32) { addrs = append(addrs, a) })
	k.Inline(0)      // not instrumented: no-op
	k.Inline(0x1234) // fires
	if len(addrs) != 1 || addrs[0] != 0x1234 {
		t.Fatalf("addrs = %v", addrs)
	}
	k.SetTrigger(nil)
	k.Inline(0x1234) // detached: no-op
	if len(addrs) != 1 {
		t.Fatal("detached inline fired")
	}
}

func TestSoftPendingWord(t *testing.T) {
	k := newTestKernel()
	k.RegisterSoft(SoftNetIP, "x", func() {})
	s := k.SplNet()
	k.ScheduleSoft(SoftNetIP)
	if k.SoftPending()&SoftNetIP == 0 {
		t.Fatal("bit not pending")
	}
	k.SplX(s)
	if k.SoftPending() != 0 {
		t.Fatal("bit not cleared after delivery")
	}
}

func TestSplTtyAndSplClock(t *testing.T) {
	k := newTestKernel()
	s1 := k.SplTty()
	if k.CurrentSPL()&MaskTty == 0 {
		t.Fatal("tty not masked")
	}
	s2 := k.SplClock()
	if k.CurrentSPL()&MaskClock == 0 || k.CurrentSPL()&MaskSoftClock == 0 {
		t.Fatal("clock classes not masked")
	}
	k.SplX(s2)
	k.SplX(s1)
	if k.CurrentSPL() != 0 {
		t.Fatal("masks not restored")
	}
}

func TestCopyinAndBlockOps(t *testing.T) {
	k := newTestKernel()
	start := k.Now()
	k.Copyin(1024)
	if d := k.Now() - start; d < 30*sim.Microsecond || d > 60*sim.Microsecond {
		t.Fatalf("copyin(1024) = %v", d)
	}
	start = k.Now()
	k.Bcopy(10 * sim.Microsecond)
	k.Bcopyb(5 * sim.Microsecond)
	k.Bzero(3 * sim.Microsecond)
	if d := k.Now() - start; d != 18*sim.Microsecond {
		t.Fatalf("block ops = %v", d)
	}
	if k.MustFn("bcopyb").Calls != 1 {
		t.Fatal("bcopyb not counted")
	}
}

func TestCalloutActive(t *testing.T) {
	k := newTestKernel()
	k.StartClock()
	c := k.Timeout(func() {}, 2)
	if !c.Active() {
		t.Fatal("fresh callout inactive")
	}
	k.Run(50 * sim.Millisecond)
	if c.Active() {
		t.Fatal("fired callout still active")
	}
	c2 := k.Timeout(func() {}, 100)
	k.Untimeout(c2)
	if c2.Active() {
		t.Fatal("cancelled callout still active")
	}
	// Untimeout after firing is a harmless no-op.
	k.Untimeout(c)
}

func TestStringersAndAccessors(t *testing.T) {
	k := newTestKernel()
	if !strings.Contains(k.String(), "kernel") {
		t.Fatalf("kernel string: %s", k)
	}
	p := k.Spawn("x", func(p *Proc) {
		if p.Kernel() != k || k.CurProc() != p {
			t.Error("ownership accessors wrong")
		}
	})
	if !strings.Contains(p.String(), "x") {
		t.Fatalf("proc string: %s", p)
	}
	if k.Runnable() != 1 {
		t.Fatalf("runnable = %d", k.Runnable())
	}
	k.Run(sim.Millisecond)
	if k.CurProc() != nil {
		t.Fatal("curproc after run")
	}
	for _, a := range []Arch{ArchI386, ArchM68K, Arch(9)} {
		if a.String() == "" {
			t.Fatal("empty arch string")
		}
	}
	if k.Arch() != ArchI386 {
		t.Fatalf("default arch = %v", k.Arch())
	}
}

func TestM68KKernel(t *testing.T) {
	k := New(Config{Seed: 1, Arch: ArchM68K})
	if k.Arch() != ArchM68K {
		t.Fatal("arch not set")
	}
	if _, ok := k.FindFn("VECINTR"); !ok {
		t.Fatal("m68k stub not registered")
	}
	if _, ok := k.FindFn("ISAINTR"); ok {
		t.Fatal("i386 stub registered on m68k")
	}
	// spl is cheap here.
	start := k.Now()
	s := k.SplNet()
	k.SplX(s)
	if d := k.Now() - start; d > 4*sim.Microsecond {
		t.Fatalf("m68k spl pair = %v", d)
	}
}

func TestUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Arch: Arch(42)})
}

func TestIdleAccessor(t *testing.T) {
	k := newTestKernel()
	var sawIdle bool
	irq := k.RegisterIRQ("dev", MaskNet, 0, 1, func() { sawIdle = k.Idle() })
	k.Scheduler().After(5*sim.Millisecond, func() { k.Raise(irq) })
	k.Run(10 * sim.Millisecond) // nothing runnable: pure idle
	if !sawIdle {
		t.Fatal("interrupt during idle did not observe Idle()")
	}
	if k.Idle() {
		t.Fatal("Idle true outside the idle loop")
	}
}

func TestRunUntilIdleWithSleepingForeverProc(t *testing.T) {
	k := newTestKernel()
	var ident int
	k.Spawn("stuck", func(p *Proc) {
		k.Tsleep(&ident, "forever", 0)
	})
	end := k.RunUntilIdle(sim.Second)
	// No wake source: RunUntilIdle must return rather than spin.
	if end >= sim.Second {
		t.Fatalf("ran to cap: %v", end)
	}
}

func TestSetBcopyScaleSeam(t *testing.T) {
	k := New(Config{Seed: 1})
	start := k.Now()
	k.Bcopy(1000)
	full := k.Now() - start
	k.SetBcopyScale(1, 2)
	start = k.Now()
	k.Bcopy(1000)
	if got := k.Now() - start; got != full-500 {
		t.Fatalf("halved bcopy advanced %v, full charge was %v", got, full)
	}
	// num <= 0 restores the identity.
	k.SetBcopyScale(0, 0)
	start = k.Now()
	k.Bcopy(1000)
	if got := k.Now() - start; got != full {
		t.Fatalf("restored bcopy advanced %v, want %v", got, full)
	}
}
