package kernel

import (
	"testing"

	"kprof/internal/sim"
)

func newTestKernel() *Kernel { return New(Config{Seed: 1}) }

func TestAdvanceMovesClock(t *testing.T) {
	k := newTestKernel()
	k.Advance(5 * sim.Microsecond)
	if k.Now() != 5*sim.Microsecond {
		t.Fatalf("Now = %v", k.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	k := newTestKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Advance(-1)
}

func TestRegisterFnDuplicatePanics(t *testing.T) {
	k := newTestKernel()
	k.RegisterFn("m", "foo")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.RegisterFn("m", "foo")
}

func TestSymbolTable(t *testing.T) {
	k := newTestKernel()
	if _, ok := k.FindFn("swtch"); !ok {
		t.Fatal("core function swtch not registered")
	}
	f := k.RegisterFn("net", "ipintr")
	if got := k.MustFn("ipintr"); got != f {
		t.Fatal("MustFn mismatch")
	}
	if !f.Asm == false {
		t.Fatal("compiler function marked asm")
	}
	af := k.RegisterAsmFn("net", "in_cksum_asm")
	if !af.Asm {
		t.Fatal("asm function not marked")
	}
	fns := k.Functions()
	if fns[len(fns)-1] != af {
		t.Fatal("Functions not in registration order")
	}
}

// recordingTrigger collects trigger addresses with their firing times.
type recordingTrigger struct {
	addrs []uint32
	times []sim.Time
	k     *Kernel
}

func (r *recordingTrigger) fire(addr uint32) {
	r.addrs = append(r.addrs, addr)
	r.times = append(r.times, r.k.Now())
}

func TestCallFiresEntryAndExitTriggers(t *testing.T) {
	k := newTestKernel()
	rec := &recordingTrigger{k: k}
	k.SetTrigger(rec.fire)
	f := k.RegisterFn("m", "foo")
	f.SetTriggers(1000, 1001)
	g := k.RegisterFn("m", "bar")
	g.SetTriggers(1002, 1003)

	k.Call(f, func() {
		k.Advance(10 * sim.Microsecond)
		k.Call(g, func() { k.Advance(5 * sim.Microsecond) })
		k.Advance(2 * sim.Microsecond)
	})

	want := []uint32{1000, 1002, 1003, 1001}
	if len(rec.addrs) != len(want) {
		t.Fatalf("triggers = %v", rec.addrs)
	}
	for i := range want {
		if rec.addrs[i] != want[i] {
			t.Fatalf("triggers = %v, want %v", rec.addrs, want)
		}
	}
	// Times are nondecreasing and the body time is included.
	if rec.times[3]-rec.times[0] < 17*sim.Microsecond {
		t.Fatalf("span = %v", rec.times[3]-rec.times[0])
	}
	if f.Calls != 1 || g.Calls != 1 {
		t.Fatalf("calls: %d, %d", f.Calls, g.Calls)
	}
}

func TestUninstrumentedCallFiresNothing(t *testing.T) {
	k := newTestKernel()
	rec := &recordingTrigger{k: k}
	k.SetTrigger(rec.fire)
	f := k.RegisterFn("m", "quiet")
	k.CallCost(f, 3*sim.Microsecond)
	if len(rec.addrs) != 0 {
		t.Fatalf("uninstrumented function fired triggers: %v", rec.addrs)
	}
	f.SetTriggers(10, 11)
	f.ClearTriggers()
	k.CallCost(f, 3*sim.Microsecond)
	if len(rec.addrs) != 0 {
		t.Fatal("cleared triggers still fire")
	}
}

func TestTriggerCostCharged(t *testing.T) {
	k := newTestKernel()
	k.SetTrigger(func(uint32) {})
	f := k.RegisterFn("m", "f")
	f.SetTriggers(2, 3)
	start := k.Now()
	k.CallCost(f, 10*sim.Microsecond)
	elapsed := k.Now() - start
	want := 10*sim.Microsecond + 2*k.trigCost
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestInterruptPreemptsAdvance(t *testing.T) {
	k := newTestKernel()
	var handlerAt sim.Time
	irq := k.RegisterIRQ("dev", MaskNet, 0, 1, func() {
		handlerAt = k.Now()
		k.Advance(50 * sim.Microsecond)
	})
	k.Scheduler().After(10*sim.Microsecond, func() { k.Raise(irq) })

	start := k.Now()
	k.Advance(100 * sim.Microsecond)
	// Total elapsed: 100 µs of work + the handler's time (plus stub costs).
	elapsed := k.Now() - start
	min := 100*sim.Microsecond + 50*sim.Microsecond + k.costs.intrEntry + k.costs.intrAST
	if elapsed != min {
		t.Fatalf("elapsed = %v, want %v", elapsed, min)
	}
	if handlerAt != start+10*sim.Microsecond+k.costs.intrEntry {
		t.Fatalf("handler ran at %v", handlerAt)
	}
	if irq.Delivered != 1 || k.Stats.Interrupts != 1 {
		t.Fatalf("delivered=%d stats=%d", irq.Delivered, k.Stats.Interrupts)
	}
}

func TestSplMasksAndSplxDelivers(t *testing.T) {
	k := newTestKernel()
	ran := false
	irq := k.RegisterIRQ("net", MaskNet, 0, 1, func() { ran = true })
	s := k.SplNet()
	k.Scheduler().After(sim.Microsecond, func() { k.Raise(irq) })
	k.Advance(10 * sim.Microsecond)
	if ran {
		t.Fatal("masked interrupt delivered")
	}
	if !irq.Pending() {
		t.Fatal("interrupt not pending")
	}
	k.SplX(s)
	if !ran {
		t.Fatal("interrupt not delivered at splx")
	}
}

func TestSplNesting(t *testing.T) {
	k := newTestKernel()
	if k.CurrentSPL() != 0 {
		t.Fatal("initial spl nonzero")
	}
	a := k.SplNet()
	b := k.SplBio()
	if k.CurrentSPL()&MaskNet == 0 || k.CurrentSPL()&MaskBio == 0 {
		t.Fatal("masks not accumulated")
	}
	k.SplX(b)
	if k.CurrentSPL()&MaskBio != 0 {
		t.Fatal("splx(b) should restore to the pre-SplBio mask, which had bio open")
	}
	if k.CurrentSPL()&MaskNet == 0 {
		t.Fatal("splx(b) must keep net blocked: it was blocked when SplBio ran")
	}
	_ = a
	k.Spl0()
	if k.CurrentSPL() != 0 {
		t.Fatal("spl0 did not clear mask")
	}
}

func TestSplHighBlocksEverything(t *testing.T) {
	k := newTestKernel()
	ran := 0
	net := k.RegisterIRQ("net", MaskNet, 0, 1, func() { ran++ })
	bio := k.RegisterIRQ("bio", MaskBio, 0, 2, func() { ran++ })
	s := k.SplHigh()
	k.Scheduler().After(sim.Microsecond, func() { k.Raise(net); k.Raise(bio) })
	k.Advance(5 * sim.Microsecond)
	if ran != 0 {
		t.Fatal("splhigh leaked an interrupt")
	}
	k.SplX(s)
	if ran != 2 {
		t.Fatalf("delivered %d of 2 after splx", ran)
	}
}

func TestInterruptPriorityOrder(t *testing.T) {
	k := newTestKernel()
	var order []string
	hi := k.RegisterIRQ("hi", MaskBio, 0, 0, func() { order = append(order, "hi") })
	lo := k.RegisterIRQ("lo", MaskNet, 0, 9, func() { order = append(order, "lo") })
	s := k.SplHigh()
	k.Raise(lo)
	k.Raise(hi)
	k.SplX(s)
	if len(order) != 2 || order[0] != "hi" || order[1] != "lo" {
		t.Fatalf("order = %v", order)
	}
}

func TestHandlerRunsAtItsOwnSPL(t *testing.T) {
	k := newTestKernel()
	depth, maxDepth := 0, 0
	var self *IRQ
	self = k.RegisterIRQ("self", MaskNet, 0, 1, func() {
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
		if self.Delivered == 1 {
			// Re-raise once: must not nest (our class is masked while we
			// run) but must deliver after we complete.
			k.Raise(self)
		}
		k.Advance(10 * sim.Microsecond)
		depth--
	})
	k.Raise(self)
	k.Advance(sim.Microsecond)
	if maxDepth != 1 {
		t.Fatalf("handler nested to depth %d", maxDepth)
	}
	if self.Delivered != 2 {
		t.Fatalf("re-raised interrupt should deliver after first completes: %d", self.Delivered)
	}
}

func TestSoftInterruptDelivery(t *testing.T) {
	k := newTestKernel()
	ran := 0
	k.RegisterSoft(SoftNetIP, "ipintr", func() { ran++ })
	s := k.SplNet()
	k.ScheduleSoft(SoftNetIP)
	k.Advance(5 * sim.Microsecond)
	if ran != 0 {
		t.Fatal("soft interrupt ran while soft-net masked")
	}
	k.SplX(s)
	if ran != 1 {
		t.Fatalf("soft interrupt ran %d times after splx", ran)
	}
	sched, run := k.SoftIntrStats(SoftNetIP)
	if sched != 1 || run != 1 {
		t.Fatalf("soft stats = %d/%d", sched, run)
	}
}

func TestSoftInterruptAfterHardware(t *testing.T) {
	k := newTestKernel()
	var events []string
	k.RegisterSoft(SoftNetIP, "ipintr", func() { events = append(events, "soft") })
	irq := k.RegisterIRQ("net", MaskNet, 0, 1, func() {
		events = append(events, "hard")
		k.ScheduleSoft(SoftNetIP)
	})
	k.Raise(irq)
	k.Advance(sim.Microsecond)
	if len(events) != 2 || events[0] != "hard" || events[1] != "soft" {
		t.Fatalf("events = %v", events)
	}
}

func TestClockTicksAndCallouts(t *testing.T) {
	k := newTestKernel()
	k.StartClock()
	fired := 0
	k.Timeout(func() { fired++ }, 3)
	cancelled := k.Timeout(func() { t.Error("cancelled callout fired") }, 5)
	k.Untimeout(cancelled)
	if k.PendingCallouts() != 1 {
		t.Fatalf("pending = %d", k.PendingCallouts())
	}
	k.Run(100 * sim.Millisecond)
	if k.Ticks() < 9 || k.Ticks() > 11 {
		t.Fatalf("ticks = %d over 100 ms at HZ=100", k.Ticks())
	}
	if fired != 1 {
		t.Fatalf("callout fired %d times", fired)
	}
	if k.Stats.SoftIntrs == 0 {
		t.Fatal("softclock never ran")
	}
}

func TestProcRunsAndExits(t *testing.T) {
	k := newTestKernel()
	ran := false
	p := k.Spawn("worker", func(p *Proc) {
		k.Advance(100 * sim.Microsecond)
		ran = true
	})
	k.Run(sim.Millisecond)
	if !ran {
		t.Fatal("proc body did not run")
	}
	if p.State() != ProcZombie {
		t.Fatalf("state = %v", p.State())
	}
	if k.Stats.ContextSw == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestTsleepWakeup(t *testing.T) {
	k := newTestKernel()
	var ident struct{ c chan int }
	order := []string{}
	k.Spawn("sleeper", func(p *Proc) {
		order = append(order, "sleeping")
		timedOut := k.Tsleep(&ident, "wait", 0)
		if timedOut {
			t.Error("tsleep reported timeout on wakeup")
		}
		order = append(order, "woken")
	})
	k.Spawn("waker", func(p *Proc) {
		k.Advance(50 * sim.Microsecond)
		order = append(order, "waking")
		k.Wakeup(&ident)
		k.Advance(10 * sim.Microsecond)
	})
	k.Run(10 * sim.Millisecond)
	want := []string{"sleeping", "waking", "woken"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v", order)
	}
	if k.SleepersOn(&ident) != 0 {
		t.Fatal("sleeper left on queue")
	}
}

func TestTsleepTimeout(t *testing.T) {
	k := newTestKernel()
	k.StartClock()
	timedOut := false
	k.Spawn("sleeper", func(p *Proc) {
		timedOut = k.Tsleep(p, "slp", 2) // 2 ticks = 20 ms
	})
	k.Run(100 * sim.Millisecond)
	if !timedOut {
		t.Fatal("tsleep did not time out")
	}
}

func TestWakeupCancelsTimeout(t *testing.T) {
	k := newTestKernel()
	k.StartClock()
	var ident int
	k.Spawn("sleeper", func(p *Proc) {
		if k.Tsleep(&ident, "slp", 50) {
			t.Error("woken sleep reported timeout")
		}
	})
	k.Spawn("waker", func(p *Proc) {
		k.Advance(5 * sim.Millisecond)
		k.Wakeup(&ident)
	})
	k.Run(sim.Second)
	if k.PendingCallouts() != 0 {
		t.Fatalf("timeout callout leaked: %d", k.PendingCallouts())
	}
}

func TestWakeupWakesAllSleepersOnIdent(t *testing.T) {
	k := newTestKernel()
	var ident int
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("s", func(p *Proc) {
			k.Tsleep(&ident, "multi", 0)
			woken++
		})
	}
	k.Spawn("w", func(p *Proc) {
		k.Advance(10 * sim.Microsecond)
		k.Wakeup(&ident)
	})
	k.Run(10 * sim.Millisecond)
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestInterruptWakesSleeper(t *testing.T) {
	k := newTestKernel()
	var ident int
	woken := false
	irq := k.RegisterIRQ("dev", MaskNet, 0, 1, func() { k.Wakeup(&ident) })
	k.Scheduler().After(3*sim.Millisecond, func() { k.Raise(irq) })
	k.Spawn("sleeper", func(p *Proc) {
		k.Tsleep(&ident, "io", 0)
		woken = true
	})
	k.Run(10 * sim.Millisecond)
	if !woken {
		t.Fatal("interrupt wakeup failed")
	}
}

func TestYieldRoundRobin(t *testing.T) {
	k := newTestKernel()
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < 3; j++ {
				order = append(order, i)
				k.Advance(sim.Microsecond)
				p.Yield()
			}
		})
	}
	k.Run(10 * sim.Millisecond)
	want := []int{0, 1, 0, 1, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSyscallReschedulesOnNeedResched(t *testing.T) {
	k := newTestKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		k.Syscall(p, func() {
			k.Advance(sim.Microsecond)
			k.NeedResched()
		})
		order = append(order, "a-after")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	k.Run(10 * sim.Millisecond)
	if len(order) != 2 || order[0] != "b" || order[1] != "a-after" {
		t.Fatalf("order = %v", order)
	}
	if k.Stats.Syscalls != 1 {
		t.Fatalf("syscalls = %d", k.Stats.Syscalls)
	}
}

func TestRunUntilIdleStopsWhenAllExit(t *testing.T) {
	k := newTestKernel()
	k.Spawn("short", func(p *Proc) { k.Advance(42 * sim.Microsecond) })
	end := k.RunUntilIdle(sim.Second)
	if end >= sim.Second {
		t.Fatalf("RunUntilIdle ran to the cap: %v", end)
	}
	if end < 42*sim.Microsecond {
		t.Fatalf("ended too early: %v", end)
	}
}

func TestIdleAdvancesThroughEvents(t *testing.T) {
	k := newTestKernel()
	k.StartClock()
	k.Run(50 * sim.Millisecond)
	// A tick landing exactly on the limit may push Now past it by the
	// handler's own time; that is physically correct.
	if k.Now() < 50*sim.Millisecond || k.Now() > 51*sim.Millisecond {
		t.Fatalf("Now = %v", k.Now())
	}
	if k.Ticks() < 4 {
		t.Fatalf("clock did not tick during idle: %d", k.Ticks())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		k := New(Config{Seed: 99})
		k.StartClock()
		var ident int
		irq := k.RegisterIRQ("dev", MaskNet, 0, 1, func() { k.Wakeup(&ident) })
		var rearm func()
		rearm = func() {
			k.Raise(irq)
			k.Scheduler().After(k.Rand().Duration(sim.Millisecond, 3*sim.Millisecond), rearm)
		}
		k.Scheduler().After(sim.Millisecond, rearm)
		for i := 0; i < 3; i++ {
			k.Spawn("w", func(p *Proc) {
				for j := 0; j < 20; j++ {
					k.Syscall(p, func() { k.Advance(30 * sim.Microsecond) })
					k.Tsleep(&ident, "loop", 0)
				}
			})
		}
		k.Run(200 * sim.Millisecond)
		return k.Now(), k.Stats.ContextSw, k.Stats.Interrupts
	}
	t1, c1, i1 := run()
	t2, c2, i2 := run()
	if t1 != t2 || c1 != c2 || i1 != i2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", t1, c1, i1, t2, c2, i2)
	}
}

func TestSwtchTriggersFireAcrossContextSwitch(t *testing.T) {
	k := newTestKernel()
	rec := &recordingTrigger{k: k}
	k.SetTrigger(rec.fire)
	k.SwtchFn().SetTriggers(600, 601)
	var ident int
	k.Spawn("a", func(p *Proc) {
		k.Tsleep(&ident, "x", 0)
	})
	k.Spawn("b", func(p *Proc) {
		k.Advance(10 * sim.Microsecond)
		k.Wakeup(&ident)
	})
	k.Run(10 * sim.Millisecond)
	// Expect: exit (a first dispatch), entry (a sleeps), exit (b first
	// dispatch), ... entry/exit pairs for wake and process exits.
	if len(rec.addrs) < 4 {
		t.Fatalf("triggers = %v", rec.addrs)
	}
	if rec.addrs[0] != 601 {
		t.Fatalf("first trigger = %d, want bare swtch exit 601", rec.addrs[0])
	}
	if rec.addrs[1] != 600 {
		t.Fatalf("second trigger = %d, want swtch entry when a sleeps", rec.addrs[1])
	}
	// Every entry must eventually be followed by exit or end-of-capture.
	entries, exits := 0, 0
	for _, a := range rec.addrs {
		switch a {
		case 600:
			entries++
		case 601:
			exits++
		default:
			t.Fatalf("unexpected trigger %d", a)
		}
	}
	if entries == 0 || exits == 0 {
		t.Fatalf("entries=%d exits=%d", entries, exits)
	}
}

func TestCopyCosts(t *testing.T) {
	k := newTestKernel()
	start := k.Now()
	k.Copyout(1024)
	d := k.Now() - start
	// Paper: ≈40 µs for a 1 KiB copyout.
	if d < 35*sim.Microsecond || d > 50*sim.Microsecond {
		t.Fatalf("copyout(1024) took %v, want ≈40 µs", d)
	}
	start = k.Now()
	k.Copyinstr(72)
	d = k.Now() - start
	// Table 1: ≈170 µs for a path name.
	if d < 140*sim.Microsecond || d > 200*sim.Microsecond {
		t.Fatalf("copyinstr(72) took %v, want ≈170 µs", d)
	}
}

func TestSplCostsMatchPaper(t *testing.T) {
	k := newTestKernel()
	start := k.Now()
	s := k.SplNet()
	d := k.Now() - start
	if d < 8*sim.Microsecond || d > 14*sim.Microsecond {
		t.Fatalf("splnet took %v, want ≈11 µs", d)
	}
	start = k.Now()
	k.SplX(s)
	d = k.Now() - start
	if d < 2*sim.Microsecond || d > 6*sim.Microsecond {
		t.Fatalf("splx took %v, want ≈3 µs", d)
	}
	start = k.Now()
	k.Spl0()
	d = k.Now() - start
	if d < 18*sim.Microsecond || d > 30*sim.Microsecond {
		t.Fatalf("spl0 took %v, want ≈22-25 µs", d)
	}
}

func TestHardclockCostMatchesPaper(t *testing.T) {
	k := newTestKernel()
	k.StartClock()
	// Run one second of pure idle; measure mean interrupt cost via the
	// accumulated non-idle time per tick. We approximate by timing a
	// single dispatched clock interrupt.
	before := k.Now()
	k.sched.RunUntil(sim.Second / sim.Time(k.HZ())) // reach the first tick
	k.dispatchInterrupts()
	cost := k.Now() - before - sim.Second/sim.Time(k.HZ())
	// Paper: ≈94 µs average for the whole clock interrupt.
	if cost < 80*sim.Microsecond || cost > 115*sim.Microsecond {
		t.Fatalf("clock interrupt cost = %v, want ≈94 µs", cost)
	}
}

func TestStatePanics(t *testing.T) {
	k := newTestKernel()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("tsleep outside proc", func() { k.Tsleep(1, "x", 0) })
	mustPanic("nil spawn", func() { k.Spawn("x", nil) })
	mustPanic("nil timeout", func() { k.Timeout(nil, 1) })
	mustPanic("nil irq handler", func() { k.RegisterIRQ("x", MaskNet, 0, 1, nil) })
	mustPanic("nil soft handler", func() { k.RegisterSoft(1, "x", nil) })
	p := k.Spawn("p", func(p *Proc) {})
	mustPanic("yield without cpu", func() { p.Yield() })
	mustPanic("syscall without cpu", func() { k.Syscall(p, func() {}) })
	k.Run(sim.Millisecond)
}

func TestProcStateString(t *testing.T) {
	states := []ProcState{ProcEmbryo, ProcRunnable, ProcRunning, ProcSleeping, ProcZombie, ProcState(42)}
	for _, s := range states {
		if s.String() == "" {
			t.Fatalf("empty string for %d", int(s))
		}
	}
}
