package kernel

import "kprof/internal/sim"

// SPL is an interrupt-priority mask: a set of interrupt classes currently
// blocked. The 386/ISA architecture has no hardware notion of prioritised
// interrupt levels like the 680x0, so 386BSD implements the spl* interface
// by reprogramming the interrupt-controller mask — which is exactly why the
// spl routines are so expensive on this machine (≈10 µs each) and why the
// paper found up to 9% of total CPU time inside them under network load.
type SPL uint32

// Interrupt classes.
const (
	MaskNet       SPL = 1 << iota // network hardware interrupts
	MaskBio                       // block I/O (disk) interrupts
	MaskTty                       // terminal interrupts
	MaskClock                     // clock interrupts
	MaskSoftNet                   // software network interrupts (netisr)
	MaskSoftClock                 // softclock

	// MaskAll blocks everything (splhigh).
	MaskAll SPL = MaskNet | MaskBio | MaskTty | MaskClock | MaskSoftNet | MaskSoftClock
)

// CurrentSPL reports the mask in force.
func (k *Kernel) CurrentSPL() SPL { return k.spl }

// splRaise is the common body of the raising spl routines: charge the cost
// of reprogramming the ICU, then add bits to the mask. Raising never
// delivers interrupts.
func (k *Kernel) splRaise(fn *Fn, add SPL, cost sim.Time) SPL {
	old := k.spl
	k.Call(fn, func() {
		k.Advance(cost)
		k.spl |= add
	})
	return old
}

// SplNet blocks network hardware and software interrupts; returns the
// previous mask for SplX.
func (k *Kernel) SplNet() SPL { return k.splRaise(k.fnSplnet, MaskNet|MaskSoftNet, k.costs.splRaise) }

// SplBio blocks block-I/O interrupts.
func (k *Kernel) SplBio() SPL { return k.splRaise(k.fnSplbio, MaskBio, k.costs.splRaise) }

// SplTty blocks terminal interrupts.
func (k *Kernel) SplTty() SPL { return k.splRaise(k.fnSpltty, MaskTty, k.costs.splRaise) }

// SplClock blocks the clock (and, as on the real machine, everything the
// clock path might take).
func (k *Kernel) SplClock() SPL {
	return k.splRaise(k.fnSplclock, MaskClock|MaskSoftClock, k.costs.splRaise)
}

// SplHigh blocks all interrupts.
func (k *Kernel) SplHigh() SPL { return k.splRaise(k.fnSplhigh, MaskAll, k.costs.splHigh) }

// SplX restores a mask previously returned by a raising routine and
// delivers any interrupts the lowered mask now admits.
func (k *Kernel) SplX(old SPL) {
	k.Call(k.fnSplx, func() {
		k.Advance(k.costs.splx)
		k.spl = old
	})
	k.dispatchInterrupts()
}

// Spl0 lowers the mask completely. It is the expensive one: besides the ICU
// write it polls the software-interrupt word (the netisr emulation the
// paper laments) before returning.
func (k *Kernel) Spl0() SPL {
	old := k.spl
	k.Call(k.fnSpl0, func() {
		k.Advance(k.costs.spl0)
		k.spl = 0
		k.Advance(k.costs.softPoll)
	})
	k.dispatchInterrupts()
	return old
}
