package kernel

import (
	"fmt"

	"kprof/internal/sim"
)

// ProcState is the lifecycle state of a process.
type ProcState int

const (
	ProcEmbryo ProcState = iota
	ProcRunnable
	ProcRunning
	ProcSleeping
	ProcZombie
)

func (s ProcState) String() string {
	switch s {
	case ProcEmbryo:
		return "embryo"
	case ProcRunnable:
		return "runnable"
	case ProcRunning:
		return "running"
	case ProcSleeping:
		return "sleeping"
	case ProcZombie:
		return "zombie"
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Proc is a simulated process. Its body runs on its own goroutine, but
// exactly one process (or the scheduler/idle context) executes at a time;
// control is handed around through channels, so the simulation stays
// deterministic.
type Proc struct {
	PID   int
	Name  string
	k     *Kernel
	state ProcState

	resume chan struct{}
	body   func(*Proc)

	sleepIdent any
	sleepMsg   string
	sleepTimer *Callout
	timedOut   bool

	// firstRun marks that the proc has not yet been dispatched; its first
	// dispatch fires a bare swtch-exit trigger, modelling the child's
	// return out of swtch into its new context.
	firstRun bool

	// callStack tracks this process context's Call nesting (CurrentFn).
	callStack []*Fn
}

// State reports the process state.
func (p *Proc) State() ProcState { return p.state }

// Kernel reports the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

func (p *Proc) String() string {
	return fmt.Sprintf("proc %d (%s) %s", p.PID, p.Name, p.state)
}

// schedEvent is what a process reports back to the scheduler when it gives
// up the CPU.
type schedEvent int

const (
	evSlept schedEvent = iota
	evYielded
	evExited
)

// Spawn creates a process. It becomes runnable immediately but does not run
// until the scheduler selects it inside Run.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	if body == nil {
		panic("kernel: nil proc body")
	}
	p := &Proc{
		PID:      k.nextPID,
		Name:     name,
		k:        k,
		state:    ProcRunnable,
		resume:   make(chan struct{}),
		body:     body,
		firstRun: true,
		// Presized for typical Call nesting so the hot path never regrows.
		callStack: make([]*Fn, 0, 32),
	}
	k.nextPID++
	k.procs = append(k.procs, p)
	k.runq = append(k.runq, p)
	go p.run()
	return p
}

// run is the process goroutine: wait for the CPU, execute the body, exit.
func (p *Proc) run() {
	<-p.resume
	p.onDispatch()
	p.body(p)
	p.exit()
}

// onDispatch runs in the process context immediately after it is handed the
// CPU for the first time: restore cost plus the swtch exit trigger.
func (p *Proc) onDispatch() {
	k := p.k
	k.Advance(costSwtchRestore)
	k.fireTrigger(k.fnSwtch, k.fnSwtch.exitAddr)
}

// exit terminates the process: a final entry into swtch that never returns.
func (p *Proc) exit() {
	k := p.k
	p.state = ProcZombie
	k.Stats.ContextSw++
	k.fnSwtch.Calls++
	k.fireTrigger(k.fnSwtch, k.fnSwtch.entryAddr)
	k.Advance(costSwtchSave)
	k.toSched <- evExited
	// goroutine ends; the CPU token now belongs to the scheduler.
}

// Yield gives up the CPU voluntarily (the syscall-return reschedule point).
// The process goes to the back of the run queue.
func (p *Proc) Yield() {
	k := p.k
	if k.curproc != p {
		panic("kernel: Yield from a process that does not own the CPU")
	}
	k.swtchOut(p, evYielded)
}

// swtchOut performs the in-context half of a context switch: swtch entry
// trigger, state save, hand the token to the scheduler, and - once the
// scheduler hands it back - state restore and the swtch exit trigger.
func (k *Kernel) swtchOut(p *Proc, ev schedEvent) {
	// The priority level drops to zero on the way into swtch — the
	// spl0 calls visible just before context switches in the paper's
	// Figure 4 trace.
	k.Spl0()
	k.Stats.ContextSw++
	k.fnSwtch.Calls++
	k.fireTrigger(k.fnSwtch, k.fnSwtch.entryAddr)
	k.Advance(costSwtchSave)
	k.toSched <- ev
	<-p.resume
	// Back on the CPU, still logically inside swtch.
	k.Advance(costSwtchRestore)
	k.fireTrigger(k.fnSwtch, k.fnSwtch.exitAddr)
}

// Tsleep blocks the process on ident until Wakeup(ident), or until timeout
// ticks elapse if timeout > 0. It reports true if it timed out, false if it
// was woken. Costs and triggers follow the paper: tsleep's own work then a
// context switch through swtch.
func (k *Kernel) Tsleep(ident any, msg string, timeoutTicks int) (timedOut bool) {
	p := k.curproc
	if p == nil {
		panic("kernel: Tsleep outside process context (ident=" + fmt.Sprint(ident) + ")")
	}
	if ident == nil {
		panic("kernel: Tsleep on nil ident")
	}
	k.Call(k.fnTsleep, func() {
		k.Advance(costTsleep)
		p.sleepIdent = ident
		p.sleepMsg = msg
		p.timedOut = false
		if timeoutTicks > 0 {
			p.sleepTimer = k.Timeout(func() { k.endTsleep(p, true) }, timeoutTicks)
		}
		p.state = ProcSleeping
		k.sleepers[ident] = append(k.sleepers[ident], p)
		k.swtchOut(p, evSlept)
	})
	return p.timedOut
}

// endTsleep makes a sleeping process runnable again.
func (k *Kernel) endTsleep(p *Proc, timedOut bool) {
	if p.state != ProcSleeping {
		return
	}
	if !timedOut && p.sleepTimer != nil {
		k.Untimeout(p.sleepTimer)
	}
	p.sleepTimer = nil
	p.timedOut = timedOut
	// Remove from the sleepers list for its ident.
	q := k.sleepers[p.sleepIdent]
	for i, sp := range q {
		if sp == p {
			k.sleepers[p.sleepIdent] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(k.sleepers[p.sleepIdent]) == 0 {
		delete(k.sleepers, p.sleepIdent)
	}
	p.sleepIdent = nil
	p.state = ProcRunnable
	k.CallCost(k.fnSetrq, costSetrq)
	k.runq = append(k.runq, p)
}

// Wakeup makes every process sleeping on ident runnable. It may be called
// from interrupt handlers, other processes, or callouts.
func (k *Kernel) Wakeup(ident any) {
	k.Call(k.fnWakeup, func() {
		k.Advance(costWakeup)
		for _, p := range append([]*Proc(nil), k.sleepers[ident]...) {
			k.endTsleep(p, false)
		}
	})
}

// SleepersOn reports how many processes sleep on ident (for tests).
func (k *Kernel) SleepersOn(ident any) int { return len(k.sleepers[ident]) }

// Runnable reports the run-queue length (for tests).
func (k *Kernel) Runnable() int { return len(k.runq) }

// NeedResched requests a reschedule at the next voluntary point (roundrobin
// from hardclock).
func (k *Kernel) NeedResched() { k.needResch = true }

// Run is the scheduler/idle context: it dispatches runnable processes and
// idles - advancing virtual time across device events and interrupts - when
// none are runnable. It returns when virtual time reaches until and the CPU
// token is back with the scheduler.
//
// The idle loop lives, as in 386BSD, "inside swtch": the analysis software
// attributes time between a swtch entry and the next swtch exit to idle
// (minus interrupt time), so Run needs no triggers of its own beyond the
// ones processes fire on their way in and out.
func (k *Kernel) Run(until sim.Time) {
	if k.running {
		panic("kernel: Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()

	for k.Now() < until {
		if len(k.runq) == 0 {
			k.idleAdvance(until)
			continue
		}
		p := k.runq[0]
		k.runq = k.runq[1:]
		if p.state == ProcZombie {
			continue
		}
		p.state = ProcRunning
		k.curproc = p
		k.needResch = false
		p.resume <- struct{}{}
		ev := <-k.toSched
		k.curproc = nil
		switch ev {
		case evYielded:
			p.state = ProcRunnable
			k.runq = append(k.runq, p)
		case evSlept, evExited:
			// Already accounted.
		}
	}
}

// RunUntilIdle runs until no process is runnable or sleeping with a pending
// wake source, bounded by maxTime as a safety net. It reports the time the
// system went fully idle.
func (k *Kernel) RunUntilIdle(maxTime sim.Time) sim.Time {
	if k.running {
		panic("kernel: Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()

	for k.Now() < maxTime {
		if len(k.runq) == 0 {
			if k.liveProcs() == 0 {
				return k.Now()
			}
			// Sleeping processes with no future events can never wake.
			if _, ok := k.sched.NextAt(); !ok {
				return k.Now()
			}
			k.idleAdvance(maxTime)
			continue
		}
		p := k.runq[0]
		k.runq = k.runq[1:]
		if p.state == ProcZombie {
			continue
		}
		p.state = ProcRunning
		k.curproc = p
		k.needResch = false
		p.resume <- struct{}{}
		ev := <-k.toSched
		k.curproc = nil
		if ev == evYielded {
			p.state = ProcRunnable
			k.runq = append(k.runq, p)
		}
	}
	return k.Now()
}

func (k *Kernel) liveProcs() int {
	n := 0
	for _, p := range k.procs {
		if p.state != ProcZombie {
			n++
		}
	}
	return n
}

// idleAdvance burns idle time until a process becomes runnable or the clock
// reaches limit. Interrupts fire and are serviced from the idle context.
func (k *Kernel) idleAdvance(limit sim.Time) {
	k.idleActive = true
	defer func() { k.idleActive = false }()
	for len(k.runq) == 0 && k.Now() < limit {
		next, ok := k.sched.NextAt()
		if !ok {
			// Nothing will ever happen; idle straight to the limit.
			k.sched.AdvanceTo(limit)
			return
		}
		if next > limit {
			k.sched.AdvanceTo(limit)
			return
		}
		k.sched.AdvanceTo(next)
		k.sched.RunDue()
		k.dispatchInterrupts()
	}
}

// Idle reports whether the CPU is in the idle loop (for tests and devices).
func (k *Kernel) Idle() bool { return k.idleActive }
