package kernel

import "kprof/internal/sim"

// Calibrated costs for the kernel core, in virtual time. The numbers are
// derived from the paper's measurements on the 40 MHz i386 target:
//
//   - trigger instruction: "about 400 nanoseconds per function for a
//     40 MHz 386" — the paper counts both loads in that figure, so each
//     trigger costs 200 ns and an instrumented call pays ~400 ns total.
//   - splnet ≈ 11 µs inclusive (Table 1), splx ≈ 3–4 µs (Figure 4),
//     spl0 ≈ 21–25 µs (Figure 4 / Table 1): masking the ISA ICU is slow,
//     and spl0 additionally polls for pending software interrupts.
//   - ISAINTR net ≈ 31 µs (Figure 4): the interrupt stub, which must
//     emulate Asynchronous System Traps in software; the paper puts that
//     emulation overhead at ≈24 µs per interrupt.
//   - hardclock ≈ 94 µs inclusive on average (§386BSD Overall Performance).
//   - tsleep ≈ 22 µs net (Figure 4); swtch save+restore ≈ 30 µs combined.
//   - copyout ≈ 40 µs per 1 KiB mbuf cluster (§Network Performance), i.e.
//     ≈39 ns/byte for main-memory copies; copyinstr ≈ 170 µs for a path
//     name (Table 1) because of its per-byte fault checking.
//
// Machine-dependent costs (spl*, interrupt stubs, trigger instructions)
// live in arch.go; the constants here are machine-independent kernel work.
const (
	costSwtchSave    = 16 * sim.Microsecond
	costSwtchRestore = 14 * sim.Microsecond
	costIdleLoop     = 2 * sim.Microsecond // one lap of the idle loop

	costTsleep = 22 * sim.Microsecond
	costWakeup = 12 * sim.Microsecond
	costSetrq  = 4 * sim.Microsecond
	costRemrq  = 4 * sim.Microsecond

	costHardclockBase = 58 * sim.Microsecond // timer bookkeeping, profil, resched
	costGatherstats   = 10 * sim.Microsecond
	costSoftclockBase = 12 * sim.Microsecond
	costPerCallout    = 3 * sim.Microsecond
	costTimeout       = 8 * sim.Microsecond
	costUntimeout     = 7 * sim.Microsecond

	costSyscallEntry = 18 * sim.Microsecond // trap, validate, dispatch
	costSyscallExit  = 12 * sim.Microsecond

	costCopyBase      = 3 * sim.Microsecond // setup + page validity check
	costCopyinstrPB   = 2200 * sim.Nanosecond
	costCopyinstrBase = 12 * sim.Microsecond
)

// MainMemoryNsPerByte is the calibrated main-memory copy rate: 1 KiB in
// ≈40 µs gives ≈39 ns/byte. Exported for the bus package's cross-check.
const MainMemoryNsPerByte = 39

// CopyCost is the time for an n-byte kernel<->user or memory-memory copy in
// main memory.
func CopyCost(n int) sim.Time {
	return costCopyBase + sim.Time(n)*MainMemoryNsPerByte*sim.Nanosecond
}
