// Package kernel is a deterministic discrete-event model of a 386BSD-0.1
// class kernel: processes with a run queue and swtch-based context
// switching, interrupt-priority (spl) masking with ISA-style interrupt
// dispatch and software-interrupt emulation, a 100 Hz hardclock with a
// softclock callout queue, and a system-call layer with user/kernel copy
// primitives.
//
// It exists to give the Profiler something real to measure. Every routine
// the paper profiles is registered in the kernel symbol table as an Fn;
// bodies advance a shared virtual clock through a cost model calibrated to
// the paper's measured numbers (see costs.go in each subsystem). Devices
// (the Ethernet card, the IDE disk, the clock chip) are sim events that
// raise IRQs, so interrupts preempt kernel code mid-function just as they do
// on hardware, and the captured event stream shows the same interleaving the
// paper's traces do.
//
// Concurrency model: the simulation is logically single-threaded. Each Proc
// is a goroutine, but exactly one goroutine runs at a time, passed an
// execution token through channels by the scheduler; determinism follows
// from the event queue's total order and the run queue's FIFO discipline.
package kernel

import (
	"fmt"

	"kprof/internal/sim"
)

// Config selects the machine being modeled. The zero value is the paper's
// target: a 40 MHz i386 PC with 8 MB of memory running 386BSD 0.1.
type Config struct {
	// Arch selects the processor/interrupt architecture; the zero value
	// is the paper's i386 target.
	Arch Arch
	// HZ is the clock interrupt rate; 0 means the BSD default of 100.
	HZ int
	// Seed seeds the kernel's private PRNG (used only by devices and
	// workloads that ask for jitter; the kernel core is deterministic).
	Seed uint64
	// TriggerCost overrides the per-trigger instruction cost.
	// 0 means the calibrated default (≈400 ns on the 40 MHz 386).
	TriggerCost sim.Time
}

// Kernel is the machine under test.
type Kernel struct {
	sched *sim.Scheduler
	rng   *sim.Rand
	hz    int
	arch  Arch
	costs archCosts

	// Symbol table. fnArena block-allocates the Fn structs themselves: a
	// full machine registers ~100 functions at boot, and carving them from
	// one slab keeps repeated boots (benchmarks, sweeps) cheap. The arena
	// is append-only — fns/fnOrder hold the stable per-entry pointers.
	fns     map[string]*Fn
	fnOrder []*Fn
	fnArena []Fn

	// bootStack tracks Call nesting for the boot/idle context; process
	// contexts carry their own stacks (see Proc.callStack).
	bootStack []*Fn

	// Profiler connection.
	trig     TriggerFunc
	trigCost sim.Time

	// Interrupts.
	spl      SPL
	irqs     []*IRQ
	intrNest int
	softPend uint32 // pending soft-interrupt bits (netisr style)
	softs    map[uint32]*softIntr

	// Scheduling.
	procs      []*Proc
	runq       []*Proc
	curproc    *Proc
	sleepers   map[any][]*Proc
	toSched    chan schedEvent
	nextPID    int
	needResch  bool
	running    bool
	idleActive bool

	// Clock.
	ticks    uint64
	callouts []*Callout

	// Core function handles used by the scheduler and interrupt paths.
	fnSwtch     *Fn
	fnIdle      *Fn
	fnISAINTR   *Fn
	fnDoreti    *Fn
	fnTsleep    *Fn
	fnWakeup    *Fn
	fnSetrq     *Fn
	fnRemrq     *Fn
	fnHardclk   *Fn
	fnSoftclk   *Fn
	fnTimeout   *Fn
	fnUntime    *Fn
	fnGather    *Fn
	fnSplnet    *Fn
	fnSplbio    *Fn
	fnSpltty    *Fn
	fnSplclock  *Fn
	fnSplhigh   *Fn
	fnSplx      *Fn
	fnSpl0      *Fn
	fnSyscall   *Fn
	fnCopyin    *Fn
	fnCopyout   *Fn
	fnCopyinstr *Fn
	fnBcopy     *Fn
	fnBcopyb    *Fn
	fnBzero     *Fn

	// bcopyScaleNum/Den rescale Bcopy charges (SetBcopyScale); 0 = off.
	bcopyScaleNum, bcopyScaleDen int

	// Stats are the kernel's own event counters — the coarse measurement
	// facility the paper contrasts the Profiler with.
	Stats Stats
}

// Stats is the traditional per-kernel event-counter block.
type Stats struct {
	Syscalls   uint64
	Interrupts uint64
	SoftIntrs  uint64
	ContextSw  uint64
	Ticks      uint64
	PacketsIn  uint64
	PacketsOut uint64
	DiskReads  uint64
	DiskWrites uint64
	PageFaults uint64
	Forks      uint64
	Execs      uint64
}

// New constructs a kernel on a fresh virtual clock.
func New(cfg Config) *Kernel {
	hz := cfg.HZ
	if hz == 0 {
		hz = 100
	}
	costs, ok := archTable[cfg.Arch]
	if !ok {
		panic("kernel: unknown architecture")
	}
	trigCost := cfg.TriggerCost
	if trigCost == 0 {
		trigCost = costs.trigger
	}
	k := &Kernel{
		sched:     sim.NewScheduler(),
		rng:       sim.NewRand(cfg.Seed ^ 0x6b70726f66), // "kprof"
		hz:        hz,
		arch:      cfg.Arch,
		costs:     costs,
		fns:       make(map[string]*Fn, fnArenaCap),
		fnOrder:   make([]*Fn, 0, fnArenaCap),
		fnArena:   make([]Fn, 0, fnArenaCap),
		bootStack: make([]*Fn, 0, 32),
		irqs:      make([]*IRQ, 0, 8),
		trigCost:  trigCost,
		sleepers:  make(map[any][]*Proc),
		toSched:   make(chan schedEvent),
		softs:     make(map[uint32]*softIntr),
		nextPID:   1,
	}
	k.registerCore()
	return k
}

// registerCore puts the machine-dependent and kern/ routines in the symbol
// table. Subsystem packages (mem, vm, netstack, fs) register theirs when
// attached.
func (k *Kernel) registerCore() {
	k.fnSwtch = k.RegisterAsmFn("locore", "swtch")
	k.fnIdle = k.RegisterAsmFn("locore", "idle")
	k.fnISAINTR = k.RegisterAsmFn("locore", k.costs.intrName)
	k.fnDoreti = k.RegisterAsmFn("locore", "doreti")
	k.fnSplnet = k.RegisterAsmFn("locore", "splnet")
	k.fnSplbio = k.RegisterAsmFn("locore", "splbio")
	k.fnSpltty = k.RegisterAsmFn("locore", "spltty")
	k.fnSplclock = k.RegisterAsmFn("locore", "splclock")
	k.fnSplhigh = k.RegisterAsmFn("locore", "splhigh")
	k.fnSplx = k.RegisterAsmFn("locore", "splx")
	k.fnSpl0 = k.RegisterAsmFn("locore", "spl0")
	k.fnBcopy = k.RegisterAsmFn("locore", "bcopy")
	k.fnBcopyb = k.RegisterAsmFn("locore", "bcopyb")
	k.fnBzero = k.RegisterAsmFn("locore", "bzero")
	k.fnCopyin = k.RegisterAsmFn("locore", "copyin")
	k.fnCopyout = k.RegisterAsmFn("locore", "copyout")
	k.fnCopyinstr = k.RegisterAsmFn("locore", "copyinstr")

	k.fnTsleep = k.RegisterFn("kern_synch", "tsleep")
	k.fnWakeup = k.RegisterFn("kern_synch", "wakeup")
	k.fnSetrq = k.RegisterFn("kern_synch", "setrq")
	k.fnRemrq = k.RegisterFn("kern_synch", "remrq")
	k.fnHardclk = k.RegisterFn("kern_clock", "hardclock")
	k.fnSoftclk = k.RegisterFn("kern_clock", "softclock")
	k.fnGather = k.RegisterFn("kern_clock", "gatherstats")
	k.fnTimeout = k.RegisterFn("kern_clock", "timeout")
	k.fnUntime = k.RegisterFn("kern_clock", "untimeout")
	k.fnSyscall = k.RegisterFn("trap", "syscall")
}

// Scheduler exposes the event scheduler so devices can model asynchronous
// hardware (packet arrival, disk completion).
func (k *Kernel) Scheduler() *sim.Scheduler { return k.sched }

// Now reports current virtual time.
func (k *Kernel) Now() sim.Time { return k.sched.Now() }

// Rand exposes the kernel's deterministic PRNG.
func (k *Kernel) Rand() *sim.Rand { return k.rng }

// HZ reports the clock tick rate.
func (k *Kernel) HZ() int { return k.hz }

// Ticks reports how many hardclock interrupts have occurred.
func (k *Kernel) Ticks() uint64 { return k.ticks }

// CurProc reports the process whose context the CPU is in, or nil in the
// idle loop / boot context.
func (k *Kernel) CurProc() *Proc { return k.curproc }

// SwtchFn returns the context-switch function; the tag file marks it '!'.
func (k *Kernel) SwtchFn() *Fn { return k.fnSwtch }

// Bcopy models the block-copy routine. cost accounts for the memory regions
// involved; callers compute it with the bus package.
func (k *Kernel) Bcopy(cost sim.Time) {
	if k.bcopyScaleNum > 0 {
		cost = cost * sim.Time(k.bcopyScaleNum) / sim.Time(k.bcopyScaleDen)
	}
	k.CallCost(k.fnBcopy, cost)
}

// SetBcopyScale rescales every subsequent Bcopy charge by num/den — the
// seam for the "recode bcopy with string-move instructions" proposed
// change: callers keep computing bus-accurate costs, and the kernel
// models the cheaper copy loop on top. num <= 0 restores the identity.
func (k *Kernel) SetBcopyScale(num, den int) {
	if num <= 0 || den <= 0 {
		k.bcopyScaleNum, k.bcopyScaleDen = 0, 0
		return
	}
	k.bcopyScaleNum, k.bcopyScaleDen = num, den
}

// Bcopyb is the byte-wise variant used for console scrolling.
func (k *Kernel) Bcopyb(cost sim.Time) { k.CallCost(k.fnBcopyb, cost) }

// Bzero models block clear.
func (k *Kernel) Bzero(cost sim.Time) { k.CallCost(k.fnBzero, cost) }

func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(t=%v, procs=%d, fns=%d)", k.Now(), len(k.procs), len(k.fns))
}
