// Package fs models the 386BSD storage stack the paper profiles: the wd
// IDE driver on a Seagate ST3144 model, the buffer cache, a Fast File
// System-shaped filesystem layer (inodes, a block map, cylinder-group-style
// allocation costs, directory lookup), and an NFS-lite RPC client for the
// NFS-versus-FTP comparison.
package fs

import (
	"fmt"
	"strings"

	"kprof/internal/kernel"
	"kprof/internal/mem"
)

// Inode is an FFS in-core inode.
type Inode struct {
	Inum   int
	Size   int
	blocks map[int]int // logical block -> physical blkno
}

// FS is the filesystem subsystem.
type FS struct {
	k     *kernel.Kernel
	alloc *mem.Allocator
	Disk  *Disk
	Cache *Cache

	fnFFSRead  *kernel.Fn
	fnFFSWrite *kernel.Fn
	fnBalloc   *kernel.Fn
	fnAlloc    *kernel.Fn
	fnNamei    *kernel.Fn
	fnLookup   *kernel.Fn
	fnIget     *kernel.Fn

	root      map[string]*Inode
	nextInum  int
	nextBlkno int

	// Statistics.
	Opens, ReadCalls, WriteCalls uint64
}

// Attach builds the storage stack on a kernel.
func Attach(k *kernel.Kernel, alloc *mem.Allocator) *FS {
	disk := NewDisk(k)
	f := &FS{
		k:          k,
		alloc:      alloc,
		Disk:       disk,
		Cache:      NewCache(k, disk, 0),
		fnFFSRead:  k.RegisterFn("ufs_vnops", "ffs_read"),
		fnFFSWrite: k.RegisterFn("ufs_vnops", "ffs_write"),
		fnBalloc:   k.RegisterFn("ffs_alloc", "ffs_balloc"),
		fnAlloc:    k.RegisterFn("ffs_alloc", "ffs_alloc"),
		fnNamei:    k.RegisterFn("vfs_lookup", "namei"),
		fnLookup:   k.RegisterFn("ufs_lookup", "ufs_lookup"),
		fnIget:     k.RegisterFn("ufs_inode", "iget"),
		root:       make(map[string]*Inode),
		nextInum:   3,
		nextBlkno:  64,
	}
	return f
}

// Create makes a file of the given size with all blocks allocated (and not
// cached). It charges no time: it is simulation setup, not kernel work.
func (f *FS) Create(name string, size int) *Inode {
	ino := &Inode{Inum: f.nextInum, Size: size, blocks: make(map[int]int)}
	f.nextInum++
	for lbn := 0; lbn*BlockSize < size; lbn++ {
		// Spread files across the disk so seeks vary, with mild
		// fragmentation every few blocks.
		f.nextBlkno += 8
		if lbn%4 == 3 {
			f.nextBlkno += f.k.Rand().Intn(64) * 8
		}
		ino.blocks[lbn] = f.nextBlkno
	}
	f.root[name] = ino
	return ino
}

// Open resolves a path through namei/ufs_lookup/iget, charging per
// component, and returns the inode. Must run in process context (the
// lookup may read directories... modeled as pure cost here).
func (f *FS) Open(p *kernel.Proc, path string) (*Inode, error) {
	f.Opens++
	var ino *Inode
	var err error
	f.k.Copyinstr(len(path) + 1)
	f.k.Call(f.fnNamei, func() {
		f.k.Advance(costNameiBody)
		components := strings.Split(strings.Trim(path, "/"), "/")
		for range components {
			f.k.CallCost(f.fnLookup, costUFSLookup)
		}
		name := components[len(components)-1]
		var ok bool
		ino, ok = f.root[name]
		if !ok {
			err = fmt.Errorf("fs: no such file %q", path)
			return
		}
		f.k.CallCost(f.fnIget, costIgetBody)
	})
	return ino, err
}

// blkno maps a logical block, allocating on demand for writes.
func (f *FS) blkno(ino *Inode, lbn int, alloc bool) (int, bool) {
	bn, ok := ino.blocks[lbn]
	if !ok && alloc {
		f.k.Call(f.fnBalloc, func() {
			f.k.Advance(costBallocBody)
			f.k.CallCost(f.fnAlloc, costBallocBody/2)
			f.nextBlkno += 8
			bn = f.nextBlkno
			ino.blocks[lbn] = bn
		})
		ok = true
	}
	return bn, ok
}

// Read reads n bytes at off, block by block through the buffer cache, and
// copies them out to user space. It returns the bytes read (short at EOF).
// Must run in process context.
func (f *FS) Read(p *kernel.Proc, ino *Inode, off, n int) int {
	f.ReadCalls++
	read := 0
	f.k.Call(f.fnFFSRead, func() {
		for read < n && off+read < ino.Size {
			f.k.Advance(costFFSReadBody)
			lbn := (off + read) / BlockSize
			inBlock := (off + read) % BlockSize
			chunk := BlockSize - inBlock
			if rem := n - read; chunk > rem {
				chunk = rem
			}
			if rem := ino.Size - off - read; chunk > rem {
				chunk = rem
			}
			bn, ok := f.blkno(ino, lbn, false)
			if !ok {
				// Hole: zero fill.
				f.k.Copyout(chunk)
				read += chunk
				continue
			}
			b := f.Cache.Bread(bn)
			f.k.Copyout(chunk)
			f.Cache.Brelse(b)
			read += chunk
		}
	})
	return read
}

// Write writes n bytes at off: allocate, fill the buffer from user space,
// and write behind (bawrite) — full blocks never wait for the disk.
// Must run in process context.
func (f *FS) Write(p *kernel.Proc, ino *Inode, off, n int) {
	f.WriteCalls++
	f.k.Call(f.fnFFSWrite, func() {
		written := 0
		for written < n {
			f.k.Advance(costFFSWriteBody)
			lbn := (off + written) / BlockSize
			inBlock := (off + written) % BlockSize
			chunk := BlockSize - inBlock
			if rem := n - written; chunk > rem {
				chunk = rem
			}
			bn, _ := f.blkno(ino, lbn, true)
			var b *Buf
			if chunk < BlockSize && off+written < ino.Size {
				// Partial update of an existing block: read-modify-write.
				b = f.Cache.Bread(bn)
			} else {
				b = f.Cache.getblk(bn)
			}
			f.k.Copyin(chunk)
			b.dirty = true
			f.Cache.Bawrite(b)
			written += chunk
			if off+written > ino.Size {
				ino.Size = off + written
			}
		}
	})
}

// Drain waits for the disk queue to empty (used by tests and benches to
// account the full cost of write-behind). Must run in process context.
func (f *FS) Drain(p *kernel.Proc) {
	for f.Disk.QueueLen() > 0 {
		f.k.Tsleep(p, "drain", 1)
	}
}
