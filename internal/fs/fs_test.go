package fs

import (
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

func newFS() (*kernel.Kernel, *FS) {
	k := kernel.New(kernel.Config{Seed: 7})
	k.StartClock()
	return k, Attach(k, mem.Attach(k))
}

func TestDiskReadLatencyMatchesPaper(t *testing.T) {
	k, f := newFS()
	ino := f.Create("bigfile", 64*BlockSize)
	k.Spawn("reader", func(p *kernel.Proc) {
		off := 0
		for i := 0; i < 20; i++ {
			f.Read(p, ino, off, BlockSize)
			off += 3 * BlockSize // skip around to force seeks
		}
	})
	k.RunUntilIdle(10 * sim.Second)
	mean := f.Disk.MeanReadLatency()
	// Paper: "Each read of the disc varied from 18 milliseconds up to 26
	// milliseconds."
	if mean < 15*sim.Millisecond || mean > 29*sim.Millisecond {
		t.Fatalf("mean read latency = %v, want 18-26 ms", mean)
	}
	if f.Disk.Reads != 20 {
		t.Fatalf("reads = %d", f.Disk.Reads)
	}
}

func TestBufferCacheHitAvoidsDisk(t *testing.T) {
	k, f := newFS()
	ino := f.Create("f", 4*BlockSize)
	var first, second sim.Time
	k.Spawn("reader", func(p *kernel.Proc) {
		start := k.Now()
		f.Read(p, ino, 0, BlockSize)
		first = k.Now() - start
		start = k.Now()
		f.Read(p, ino, 0, BlockSize)
		second = k.Now() - start
	})
	k.RunUntilIdle(sim.Second)
	if f.Cache.Misses != 1 || f.Cache.Hits != 1 {
		t.Fatalf("misses=%d hits=%d", f.Cache.Misses, f.Cache.Hits)
	}
	if first < 10*sim.Millisecond {
		t.Fatalf("miss read = %v, want disk latency", first)
	}
	if second > 2*sim.Millisecond {
		t.Fatalf("hit read = %v, want no disk latency", second)
	}
}

func TestWriteInterruptCostMatchesPaper(t *testing.T) {
	k, f := newFS()
	ino := f.Create("out", 0)
	k.Spawn("writer", func(p *kernel.Proc) {
		f.Write(p, ino, 0, BlockSize)
		f.Drain(p)
	})
	k.RunUntilIdle(5 * sim.Second)
	d := f.Disk
	if d.WriteSectors != SectorsPerBlock {
		t.Fatalf("sectors = %d", d.WriteSectors)
	}
	// Paper: each write interrupt ≈200 µs total, ≈149 µs of it transfer.
	// Check the transfer component directly via the bus model: it is
	// asserted in the bus tests; here verify interrupts occurred per
	// sector and most gaps were short.
	if d.Interrupts < uint64(SectorsPerBlock) {
		t.Fatalf("interrupts = %d, want ≥%d", d.Interrupts, SectorsPerBlock)
	}
	if d.InterGapUnder100us == 0 {
		t.Fatal("no back-to-back write interrupts observed")
	}
}

func TestWriteLoadCPUUtilization(t *testing.T) {
	k, f := newFS()
	ino := f.Create("stream", 0)
	var busy sim.Time
	k.Spawn("writer", func(p *kernel.Proc) {
		off := 0
		for k.Now() < 2*sim.Second {
			start := k.Now()
			f.Write(p, ino, off, BlockSize)
			busy += k.Now() - start
			off += BlockSize
			// Pace like a real writer: let the disk work.
			k.Tsleep(p, "pace", 1)
		}
	})
	k.Run(2 * sim.Second)
	// The writer's syscall time undercounts interrupt-context work; use
	// disk PIO accounting instead: CPU time = interrupts * (transfer +
	// overhead). Paper: ≈28% busy on a heavy write load.
	cpu := sim.Time(f.Disk.WriteSectors) * (195 * sim.Microsecond)
	frac := float64(cpu) / float64(2*sim.Second)
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("write-load CPU fraction ≈ %.2f, want ≈0.28", frac)
	}
	if f.Disk.WriteSectors < 1000 {
		t.Fatalf("only %d sectors written in 2 s", f.Disk.WriteSectors)
	}
}

func TestOpenResolvesPath(t *testing.T) {
	k, f := newFS()
	f.Create("etc", 0)
	want := f.Create("passwd", 1024)
	var got *Inode
	var err error
	k.Spawn("opener", func(p *kernel.Proc) {
		got, err = f.Open(p, "/etc/passwd")
	})
	k.RunUntilIdle(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("wrong inode")
	}
	lookup := k.MustFn("ufs_lookup")
	if lookup.Calls != 2 {
		t.Fatalf("ufs_lookup calls = %d, want one per component", lookup.Calls)
	}
}

func TestOpenMissingFile(t *testing.T) {
	k, f := newFS()
	var err error
	k.Spawn("opener", func(p *kernel.Proc) {
		_, err = f.Open(p, "/no/such/file")
	})
	k.RunUntilIdle(sim.Second)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestReadAtEOF(t *testing.T) {
	k, f := newFS()
	ino := f.Create("small", 100)
	var n int
	k.Spawn("reader", func(p *kernel.Proc) {
		n = f.Read(p, ino, 0, 4096)
	})
	k.RunUntilIdle(sim.Second)
	if n != 100 {
		t.Fatalf("read %d bytes, want 100 (EOF)", n)
	}
	var n2 int
	k.Spawn("reader2", func(p *kernel.Proc) {
		n2 = f.Read(p, ino, 100, 10)
	})
	k.RunUntilIdle(2 * sim.Second)
	if n2 != 0 {
		t.Fatalf("read past EOF returned %d", n2)
	}
}

func TestWriteExtendsFile(t *testing.T) {
	k, f := newFS()
	ino := f.Create("grow", 0)
	k.Spawn("writer", func(p *kernel.Proc) {
		f.Write(p, ino, 0, 3*BlockSize)
		f.Drain(p)
	})
	k.RunUntilIdle(5 * sim.Second)
	if ino.Size != 3*BlockSize {
		t.Fatalf("size = %d", ino.Size)
	}
	if len(ino.blocks) != 3 {
		t.Fatalf("blocks = %d", len(ino.blocks))
	}
	balloc := k.MustFn("ffs_balloc")
	if balloc.Calls != 3 {
		t.Fatalf("balloc calls = %d", balloc.Calls)
	}
}

func TestAsyncWriteReturnsBeforeDisk(t *testing.T) {
	k, f := newFS()
	ino := f.Create("wb", 0)
	var writeTime sim.Time
	k.Spawn("writer", func(p *kernel.Proc) {
		start := k.Now()
		f.Write(p, ino, 0, BlockSize)
		writeTime = k.Now() - start
		f.Drain(p)
	})
	k.RunUntilIdle(5 * sim.Second)
	// The write returns after copyin + bawrite, not after 16 sector
	// interrupts — though the first sector's PIO happens inline.
	if writeTime > 3*sim.Millisecond {
		t.Fatalf("async write blocked for %v", writeTime)
	}
	if f.Disk.Writes != 1 {
		t.Fatalf("disk writes = %d", f.Disk.Writes)
	}
}

func TestCacheEviction(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 7})
	k.StartClock()
	alloc := mem.Attach(k)
	disk := NewDisk(k)
	c := NewCache(k, disk, 4)
	_ = alloc
	k.Spawn("reader", func(p *kernel.Proc) {
		for i := 0; i < 8; i++ {
			b := c.Bread(i * 8)
			c.Brelse(b)
		}
	})
	k.RunUntilIdle(5 * sim.Second)
	if c.Len() > 4 {
		t.Fatalf("cache grew to %d, capacity 4", c.Len())
	}
	if c.Misses != 8 {
		t.Fatalf("misses = %d", c.Misses)
	}
}

func TestPartialBlockWriteReadsFirst(t *testing.T) {
	k, f := newFS()
	ino := f.Create("rmw", 2*BlockSize)
	k.Spawn("writer", func(p *kernel.Proc) {
		f.Write(p, ino, 100, 200) // partial, inside existing block
		f.Drain(p)
	})
	k.RunUntilIdle(5 * sim.Second)
	if f.Cache.Misses != 1 {
		t.Fatalf("misses = %d, want 1 read-modify-write read", f.Cache.Misses)
	}
}

func TestDiskQueueing(t *testing.T) {
	k, f := newFS()
	ino := f.Create("q", 0)
	k.Spawn("writer", func(p *kernel.Proc) {
		for i := 0; i < 5; i++ {
			f.Write(p, ino, i*BlockSize, BlockSize)
		}
		f.Drain(p)
	})
	k.RunUntilIdle(10 * sim.Second)
	if f.Disk.Writes != 5 {
		t.Fatalf("writes completed = %d", f.Disk.Writes)
	}
	if f.Disk.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", f.Disk.QueueLen())
	}
}

func TestBwriteSynchronous(t *testing.T) {
	k, f := newFS()
	var took sim.Time
	k.Spawn("sync-writer", func(p *kernel.Proc) {
		b := f.Cache.getblk(128)
		start := k.Now()
		f.Cache.Bwrite(b)
		took = k.Now() - start
	})
	k.RunUntilIdle(5 * sim.Second)
	// Synchronous write waits for all 16 sector interrupts.
	if took < 3*sim.Millisecond {
		t.Fatalf("bwrite returned after %v, want full device time", took)
	}
	if f.Disk.Writes != 1 {
		t.Fatalf("writes = %d", f.Disk.Writes)
	}
}

func TestCachedAccessor(t *testing.T) {
	k, f := newFS()
	ino := f.Create("c", BlockSize)
	bn := ino.blocks[0]
	if f.Cache.Cached(bn) {
		t.Fatal("block cached before any read")
	}
	k.Spawn("r", func(p *kernel.Proc) { f.Read(p, ino, 0, 512) })
	k.RunUntilIdle(sim.Second)
	if !f.Cache.Cached(bn) {
		t.Fatal("block not cached after read")
	}
}

func TestReadAcrossBlockBoundary(t *testing.T) {
	k, f := newFS()
	ino := f.Create("span", 3*BlockSize)
	var n int
	k.Spawn("r", func(p *kernel.Proc) {
		n = f.Read(p, ino, BlockSize-100, 200) // straddles blocks 0 and 1
	})
	k.RunUntilIdle(5 * sim.Second)
	if n != 200 {
		t.Fatalf("read %d", n)
	}
	if f.Cache.Misses != 2 {
		t.Fatalf("misses = %d, want both blocks", f.Cache.Misses)
	}
}

func TestDiskSubmitValidation(t *testing.T) {
	k, f := newFS()
	_ = k
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Disk.Submit(false, 0, 0, nil)
}

// The paper's controller what-if: "It would be interesting to use a
// different type of controller (maybe one with DMA) and see what difference
// it makes." A DMA controller removes the per-sector PIO from the CPU.
func TestDMAControllerCutsWriteCPU(t *testing.T) {
	writeCPU := func(mode TransferMode) sim.Time {
		k, f := newFS()
		f.Disk.Mode = mode
		ino := f.Create("out", 0)
		var busy sim.Time
		k.Spawn("writer", func(p *kernel.Proc) {
			for i := 0; i < 8; i++ {
				f.Write(p, ino, i*BlockSize, BlockSize)
			}
			f.Drain(p)
		})
		k.RunUntilIdle(10 * sim.Second)
		// CPU share of the disk path: interrupts × (base + transfer).
		per := 195 * sim.Microsecond
		if mode == DMA {
			per = 85 * sim.Microsecond
		}
		busy = sim.Time(f.Disk.WriteSectors) * per
		return busy
	}
	pio := writeCPU(PIO)
	dma := writeCPU(DMA)
	if float64(pio)/float64(dma) < 2 {
		t.Fatalf("DMA should cut the write-path CPU at least in half: pio=%v dma=%v", pio, dma)
	}
}

func TestDMAReadStillHasMechanicalLatency(t *testing.T) {
	k, f := newFS()
	f.Disk.Mode = DMA
	ino := f.Create("r", 4*BlockSize)
	k.Spawn("reader", func(p *kernel.Proc) {
		f.Read(p, ino, 0, BlockSize)
	})
	k.RunUntilIdle(sim.Second)
	// DMA does not make seeks faster.
	if f.Disk.MeanReadLatency() < 14*sim.Millisecond {
		t.Fatalf("read latency = %v; DMA should not beat the mechanics", f.Disk.MeanReadLatency())
	}
	if f.Disk.Mode.String() != "dma" || PIO.String() != "pio" {
		t.Fatal("mode strings")
	}
}
