package fs

import "kprof/internal/sim"

// Calibrated filesystem and disk costs, from the paper's Filesystems
// section:
//
//   - disk reads "varied from 18 milliseconds up to 26 milliseconds" on
//     the Seagate ST3144 IDE disk: seek + rotation + transfer.
//   - "Each write interrupt took about 200 microseconds in total, with
//     about 149 microseconds of that being actual transfer time of the
//     data to the controller": one interrupt per 512-byte sector, PIO over
//     the 16-bit bus (the bus package's ISA16 rate of 290 ns/byte gives
//     512 × 0.29 ≈ 148 µs).
//   - "Interrupts seemed to be close together most of the time
//     (< 100 microseconds)": while the controller's track buffer has
//     room it accepts the next sector almost immediately; when the buffer
//     flushes to the media the gap is milliseconds. The emergent CPU
//     utilisation on a pure write load is ≈28%, matching the paper.
const (
	// Disk timing.
	seekBase        = 12 * sim.Millisecond
	seekPerSpan     = 4 * sim.Millisecond // worst extra seek across the disk
	rotMin          = 2 * sim.Millisecond // rotational latency bounds
	rotMax          = 8300 * sim.Microsecond
	sectorGapShort  = 30 * sim.Microsecond // controller ready again (buffered)
	sectorGapLong   = 80 * sim.Microsecond
	trackFlushEvery = 16                  // sectors per media flush
	trackFlushMin   = 6 * sim.Millisecond // media write + seek + settle
	trackFlushMax   = 16 * sim.Millisecond

	costWdStart    = 24 * sim.Microsecond // command block setup, port writes
	costWdIntrBase = 45 * sim.Microsecond // status read, decode, biodone share
	dmaSetupCost   = 8 * sim.Microsecond  // DMA descriptor write / completion ack

	// Buffer cache.
	costGetblkHit  = 22 * sim.Microsecond // hash hit
	costGetblkMiss = 34 * sim.Microsecond // hash miss + free-list reclaim
	costBrelse     = 12 * sim.Microsecond
	costBioWait    = 10 * sim.Microsecond
	costBioDone    = 14 * sim.Microsecond

	// FFS.
	costFFSReadBody  = 26 * sim.Microsecond // block mapping (bmap)
	costFFSWriteBody = 30 * sim.Microsecond
	costBallocBody   = 48 * sim.Microsecond // cylinder-group scan
	costUFSLookup    = 55 * sim.Microsecond // per path component
	costNameiBody    = 40 * sim.Microsecond
	costIgetBody     = 38 * sim.Microsecond
)

// Geometry.
const (
	SectorSize      = 512
	BlockSize       = 8192 // FFS block
	FragSize        = 1024
	SectorsPerBlock = BlockSize / SectorSize
)
