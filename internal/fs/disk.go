package fs

import (
	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// TransferMode selects how data moves between memory and the controller.
type TransferMode int

const (
	// PIO is the paper's IDE reality: the CPU copies every byte, one
	// interrupt per written sector (≈149 µs of the ≈200 µs each).
	PIO TransferMode = iota
	// DMA is the paper's what-if ("maybe one with DMA"): the controller
	// masters the bus itself; the CPU pays only the interrupt overhead
	// and the transfer happens in parallel with computation.
	DMA
)

func (m TransferMode) String() string {
	if m == DMA {
		return "dma"
	}
	return "pio"
}

// Disk models the Seagate ST3144 IDE disk behind a wd-style driver: a
// single request at a time, programmed I/O over the 16-bit bus, one
// interrupt per sector on writes, one per block on reads. The mechanical
// model (seek + rotation) reproduces the paper's 18–26 ms read latencies.
// Switching Mode to DMA answers the paper's controller question.
type Disk struct {
	k *kernel.Kernel

	// Mode selects PIO (default, the paper's hardware) or DMA.
	Mode TransferMode

	fnWdStart *kernel.Fn
	fnWdIntr  *kernel.Fn
	fnBiodone *kernel.Fn

	irq *kernel.IRQ

	busy bool
	cur  *ioReq
	q    []*ioReq

	lastCyl       int
	sectorInTrack int // sectors written since the last media flush

	// Statistics.
	Reads, Writes      uint64
	ReadSectors        uint64
	WriteSectors       uint64
	TotalReadLatency   sim.Time
	Interrupts         uint64
	InterGapUnder100us uint64 // gap from end of one wdintr to the next arrival
	lastIntrEnd        sim.Time
}

// ioReq is one queued disk transfer.
type ioReq struct {
	write       bool
	cyl         int
	sectors     int
	done        func() // called at biodone, in interrupt context
	sectorsLeft int
	started     sim.Time
}

// Cylinders on the modeled disk (ST3144-ish: 1001 cylinders).
const diskCylinders = 1001

// NewDisk attaches the disk and its driver functions.
func NewDisk(k *kernel.Kernel) *Disk {
	d := &Disk{
		k:         k,
		fnWdStart: k.RegisterFn("wd", "wdstart"),
		fnWdIntr:  k.RegisterFn("wd", "wdintr"),
		fnBiodone: k.RegisterFn("vfs_bio", "biodone"),
	}
	d.irq = k.RegisterIRQ("wd0", kernel.MaskBio, 0, 5, d.intr)
	return d
}

// Submit queues a transfer and starts the disk if idle. done runs in
// interrupt context when the transfer completes (biodone).
func (d *Disk) Submit(write bool, cyl, sectors int, done func()) {
	if sectors <= 0 {
		panic("fs: disk transfer of no sectors")
	}
	req := &ioReq{write: write, cyl: cyl % diskCylinders, sectors: sectors, sectorsLeft: sectors, done: done}
	s := d.k.SplBio()
	d.q = append(d.q, req)
	d.k.SplX(s)
	if !d.busy {
		d.start()
	}
}

// start is wdstart: set up the controller command and either begin the
// mechanical seek (reads / first write sector) or push the first sector.
func (d *Disk) start() {
	d.k.Call(d.fnWdStart, func() {
		d.k.Advance(costWdStart)
		s := d.k.SplBio()
		if len(d.q) == 0 {
			d.busy = false
			d.k.SplX(s)
			return
		}
		req := d.q[0]
		d.q = d.q[1:]
		d.cur = req
		d.busy = true
		req.started = d.k.Now()
		d.k.SplX(s)
		if req.write {
			// Push the first sector now; the controller interrupts for
			// each subsequent one.
			d.pushSector()
		} else {
			// Reads: the mechanical delay happens before any data moves.
			delay := d.mechanicalDelay(req.cyl)
			d.k.Scheduler().After(delay, func() { d.k.Raise(d.irq) })
		}
	})
}

// mechanicalDelay is seek plus rotational latency for a target cylinder.
func (d *Disk) mechanicalDelay(cyl int) sim.Time {
	span := cyl - d.lastCyl
	if span < 0 {
		span = -span
	}
	d.lastCyl = cyl
	seek := seekBase + seekPerSpan*sim.Time(span)/diskCylinders
	rot := d.k.Rand().Duration(rotMin, rotMax)
	return seek + rot
}

// pushSector transfers one sector of a write to the controller — CPU PIO
// over the 16-bit bus, or a bus-mastered DMA that costs the CPU only the
// descriptor setup — and arranges the "ready for next" interrupt.
func (d *Disk) pushSector() {
	req := d.cur
	if d.Mode == PIO {
		d.k.Advance(bus.CopyCost(SectorSize, bus.MainMemory, bus.ISA16))
	} else {
		d.k.Advance(dmaSetupCost)
	}
	req.sectorsLeft--
	d.WriteSectors++
	d.sectorInTrack++
	var gap sim.Time
	if d.sectorInTrack >= trackFlushEvery {
		d.sectorInTrack = 0
		gap = d.k.Rand().Duration(trackFlushMin, trackFlushMax)
	} else {
		gap = d.k.Rand().Duration(sectorGapShort, sectorGapLong)
	}
	d.k.Scheduler().After(gap, func() { d.k.Raise(d.irq) })
}

// intr is wdintr: on writes, account the finished sector and push the next
// (or complete the request); on reads, PIO the whole block in and complete.
func (d *Disk) intr() {
	d.k.Call(d.fnWdIntr, func() {
		d.Interrupts++
		now := d.k.Now()
		// The paper: "Interrupts seemed to be close together most of the
		// time (< 100 microseconds)" — the controller is ready for the
		// next sector almost as soon as the driver finishes the last.
		if d.lastIntrEnd != 0 && now-d.lastIntrEnd < 100*sim.Microsecond {
			d.InterGapUnder100us++
		}
		defer func() { d.lastIntrEnd = d.k.Now() }()
		d.k.Advance(costWdIntrBase)
		req := d.cur
		if req == nil {
			return // spurious
		}
		if req.write {
			if req.sectorsLeft > 0 {
				d.pushSector()
				return
			}
			d.Writes++
		} else {
			// The whole block arrives in one interrupt: PIO it in, or
			// just acknowledge the DMA completion.
			if d.Mode == PIO {
				d.k.Advance(bus.CopyCost(req.sectors*SectorSize, bus.ISA16, bus.MainMemory))
			} else {
				d.k.Advance(dmaSetupCost)
			}
			d.ReadSectors += uint64(req.sectors)
			d.Reads++
			d.TotalReadLatency += now - req.started
		}
		d.complete(req)
	})
}

func (d *Disk) complete(req *ioReq) {
	d.cur = nil
	d.busy = false
	d.k.CallCost(d.fnBiodone, costBioDone)
	if req.done != nil {
		req.done()
	}
	s := d.k.SplBio()
	more := len(d.q) > 0
	d.k.SplX(s)
	if more {
		d.start()
	}
}

// QueueLen reports pending requests (for tests).
func (d *Disk) QueueLen() int {
	n := len(d.q)
	if d.busy {
		n++
	}
	return n
}

// MeanReadLatency reports the average completed read latency.
func (d *Disk) MeanReadLatency() sim.Time {
	if d.Reads == 0 {
		return 0
	}
	return d.TotalReadLatency / sim.Time(d.Reads)
}
