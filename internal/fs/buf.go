package fs

import (
	"kprof/internal/kernel"
)

// The buffer cache: getblk/bread/bwrite/bawrite/brelse over the disk model,
// with a hash table and an LRU free list, as in vfs_bio.c. Reads that miss
// sleep on the buffer until wdintr's biodone wakes them; asynchronous
// writes (bawrite) return immediately, which is what lets the FFS write
// workload keep the CPU only ≈28% busy while the disk streams.

// Buf is a cache buffer for one (device, blkno) block.
type Buf struct {
	Blkno int
	valid bool
	dirty bool
	busy  bool
	inIO  bool
}

// Cache is the buffer cache.
type Cache struct {
	k    *kernel.Kernel
	disk *Disk

	fnBread   *kernel.Fn
	fnBwrite  *kernel.Fn
	fnBawrite *kernel.Fn
	fnBrelse  *kernel.Fn
	fnGetblk  *kernel.Fn
	fnBiowait *kernel.Fn

	bufs map[int]*Buf
	// capacity bounds the cache; a miss beyond it reclaims the oldest
	// clean buffer (LRU order tracked in lru).
	capacity int
	lru      []int

	// Statistics.
	Hits, Misses      uint64
	ReadIOs, WriteIOs uint64
}

// DefaultCacheBlocks is the default cache size in blocks (≈10% of 8 MB).
const DefaultCacheBlocks = 100

// NewCache builds the buffer cache over a disk.
func NewCache(k *kernel.Kernel, disk *Disk, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheBlocks
	}
	return &Cache{
		k:         k,
		disk:      disk,
		fnBread:   k.RegisterFn("vfs_bio", "bread"),
		fnBwrite:  k.RegisterFn("vfs_bio", "bwrite"),
		fnBawrite: k.RegisterFn("vfs_bio", "bawrite"),
		fnBrelse:  k.RegisterFn("vfs_bio", "brelse"),
		fnGetblk:  k.RegisterFn("vfs_bio", "getblk"),
		fnBiowait: k.RegisterFn("vfs_bio", "biowait"),
		bufs:      make(map[int]*Buf),
		capacity:  capacity,
	}
}

// getblk finds or creates the buffer for blkno, reclaiming if needed.
func (c *Cache) getblk(blkno int) *Buf {
	var b *Buf
	c.k.Call(c.fnGetblk, func() {
		s := c.k.SplBio()
		defer c.k.SplX(s)
		if have, ok := c.bufs[blkno]; ok {
			c.k.Advance(costGetblkHit)
			b = have
			c.touch(blkno)
			return
		}
		c.k.Advance(costGetblkMiss)
		if len(c.bufs) >= c.capacity {
			c.reclaim()
		}
		b = &Buf{Blkno: blkno}
		c.bufs[blkno] = b
		c.lru = append(c.lru, blkno)
	})
	return b
}

// touch moves blkno to the MRU end.
func (c *Cache) touch(blkno int) {
	for i, bn := range c.lru {
		if bn == blkno {
			c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), blkno)
			return
		}
	}
}

// reclaim evicts the least recently used clean, idle buffer.
func (c *Cache) reclaim() {
	for i, bn := range c.lru {
		b := c.bufs[bn]
		if b != nil && !b.dirty && !b.busy && !b.inIO {
			delete(c.bufs, bn)
			c.lru = append(c.lru[:i:i], c.lru[i+1:]...)
			return
		}
	}
	// Everything dirty or busy: in the real kernel we would sleep on a
	// buffer; the workloads here never truly exhaust the cache, so just
	// let it grow by one.
}

// Bread returns the block, reading it from disk if not cached. Must run in
// process context when a miss is possible.
func (c *Cache) Bread(blkno int) *Buf {
	var b *Buf
	c.k.Call(c.fnBread, func() {
		b = c.getblk(blkno)
		if b.valid {
			c.Hits++
			return
		}
		c.Misses++
		c.ReadIOs++
		b.inIO = true
		c.disk.Submit(false, blkno/8, SectorsPerBlock, func() {
			b.inIO = false
			b.valid = true
			c.k.Wakeup(b)
		})
		c.biowait(b)
	})
	return b
}

// biowait sleeps until the buffer's I/O completes.
func (c *Cache) biowait(b *Buf) {
	c.k.Call(c.fnBiowait, func() {
		c.k.Advance(costBioWait)
		for b.inIO {
			c.k.Tsleep(b, "biowait", 0)
		}
	})
}

// Bwrite writes the block synchronously: start the I/O and wait for it.
func (c *Cache) Bwrite(b *Buf) {
	c.k.Call(c.fnBwrite, func() {
		c.WriteIOs++
		b.dirty = false
		b.valid = true
		b.inIO = true
		c.disk.Submit(true, b.Blkno/8, SectorsPerBlock, func() {
			b.inIO = false
			c.k.Wakeup(b)
		})
		c.biowait(b)
	})
}

// Bawrite writes the block asynchronously (write-behind): the caller
// continues immediately; brelse happens at biodone.
func (c *Cache) Bawrite(b *Buf) {
	c.k.Call(c.fnBawrite, func() {
		c.WriteIOs++
		b.dirty = false
		b.valid = true
		b.inIO = true
		c.disk.Submit(true, b.Blkno/8, SectorsPerBlock, func() {
			b.inIO = false
			c.k.Wakeup(b)
		})
	})
}

// Brelse releases the buffer back to the cache.
func (c *Cache) Brelse(b *Buf) {
	c.k.Call(c.fnBrelse, func() {
		c.k.Advance(costBrelse)
		b.busy = false
	})
}

// Cached reports whether a block is valid in the cache (for tests).
func (c *Cache) Cached(blkno int) bool {
	b, ok := c.bufs[blkno]
	return ok && b.valid
}

// Len reports the number of buffers in the cache.
func (c *Cache) Len() int { return len(c.bufs) }
