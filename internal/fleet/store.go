package fleet

import (
	"fmt"
	"sync"

	"kprof/internal/sim"
	"kprof/internal/sweep"
)

// Progress is a point-in-time view of the ingest pipeline, delivered to
// Config.OnProgress under the store's lock.
type Progress struct {
	// Machines is the fleet size; MachinesDone counts machines whose
	// streams have ended.
	Machines     int
	MachinesDone int
	// SegmentsStaged and SegmentsCommitted are lifetime totals; Backlog
	// is the staged-but-uncommitted count (bounded by Config.Staging).
	SegmentsStaged    int
	SegmentsCommitted int
	Backlog           int
	// RecordsCommitted and Dropped total the committed samples.
	RecordsCommitted int
	Dropped          uint64
	// WatermarkUS is the fleet watermark in virtual microseconds: every
	// machine's stream is committed at least this far.
	WatermarkUS int64
	// WindowsClosed counts closed aggregation windows.
	WindowsClosed int
}

// machineState is one machine's staging queue and checkpoint.
type machineState struct {
	id int
	// queue holds staged, uncommitted samples in sequence order.
	queue []*Sample
	// stagedThrough is the next Seq the ingest worker will append.
	stagedThrough int
	// next and pos are the checkpoint: the next Seq to commit and the
	// drain time of the last committed sample. They advance together,
	// atomically with the sample's window fold, under the store lock.
	next int
	pos  sim.Time
	// done marks the stream ended; complete marks done AND fully
	// committed (the machine no longer holds the watermark back).
	done      bool
	complete  bool
	committed int
}

// machineWindow is one machine's integer sums within one open window.
type machineWindow struct {
	segments int
	records  int
	dropped  uint64
	elapsed  sim.Time
	idle     sim.Time
	switches int
	fns      map[string]FnDelta
}

// windowState is one open window: per-machine integer sums, folded into
// float statistics only when the window closes.
type windowState struct {
	perMachine map[int]*machineWindow
}

// Store is the staging store and the whole durable state of a fleet run:
// staged samples, per-machine checkpoints, open-window sums, the closed-
// window list and the cumulative aggregate. Projectors hold no state of
// their own beyond in-flight claims, so killing one and starting another
// over the same Store resumes exactly at the checkpoints.
//
// Commit order per machine is sequence order, enforced by panic — a
// projection that would reprocess a committed sample or regress a
// checkpoint is a bug, not a recoverable condition. Windows close in
// ascending index order and machines fold within a window in ascending ID
// order, both under the store lock, which is what makes the report bytes
// independent of worker count and ingest interleaving.
type Store struct {
	mu   sync.Mutex
	cond *sync.Cond

	window  sim.Time
	staging int

	machines map[int]*machineState
	order    []int // machine IDs, ascending

	backlog int // staged, uncommitted samples across all machines

	windows   map[int64]*windowState
	cum       *sweep.Aggregate
	closed    []WindowSummary
	watermark sim.Time

	totalStaged      int
	totalCommitted   int
	recordsCommitted int
	dropped          uint64

	failed     error
	onProgress func(Progress)
	onWindow   func(WindowSummary)
}

// NewStore builds an empty staging store for the given machine IDs.
// window and staging of 0 select DefaultWindow and DefaultStaging.
// onProgress and onWindow mirror Config.OnProgress and Config.OnWindow;
// either may be nil.
func NewStore(window sim.Time, staging int, machineIDs []int, onProgress func(Progress), onWindow func(WindowSummary)) (*Store, error) {
	if window <= 0 {
		window = DefaultWindow
	}
	if staging <= 0 {
		staging = DefaultStaging
	}
	if len(machineIDs) == 0 {
		return nil, fmt.Errorf("fleet: store needs at least one machine")
	}
	st := &Store{
		window:     window,
		staging:    staging,
		machines:   make(map[int]*machineState, len(machineIDs)),
		windows:    make(map[int64]*windowState),
		cum:        sweep.NewAggregator("fleet").Finish(),
		onProgress: onProgress,
		onWindow:   onWindow,
	}
	st.cond = sync.NewCond(&st.mu)
	for _, id := range machineIDs {
		if _, dup := st.machines[id]; dup {
			return nil, fmt.Errorf("fleet: duplicate machine ID %d", id)
		}
		st.machines[id] = &machineState{id: id}
	}
	st.order = sortedMachineIDs(st.machines)
	return st, nil
}

// Append stages one sample, blocking while the store is at its staging
// bound — the backpressure path back into the machine's drain loop. It
// returns the store's failure error if the run has failed, so blocked
// ingest workers unwind instead of deadlocking.
func (st *Store) Append(s *Sample) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.failed == nil && st.backlog >= st.staging {
		st.cond.Wait()
	}
	if st.failed != nil {
		return st.failed
	}
	ms := st.machines[s.Machine]
	if ms == nil {
		panic(fmt.Sprintf("fleet: append for unknown machine %d", s.Machine))
	}
	if ms.done {
		panic(fmt.Sprintf("fleet: machine %d: append after MachineDone", s.Machine))
	}
	if s.Seq != ms.stagedThrough {
		panic(fmt.Sprintf("fleet: machine %d: staged seq %d, want %d", s.Machine, s.Seq, ms.stagedThrough))
	}
	ms.stagedThrough++
	ms.queue = append(ms.queue, s)
	st.backlog++
	st.totalStaged++
	st.cond.Broadcast()
	st.notifyLocked()
	return nil
}

// MachineDone marks one machine's stream ended. Once its queue drains the
// machine is complete and stops holding the watermark back.
func (st *Store) MachineDone(id int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ms := st.machines[id]
	if ms == nil {
		panic(fmt.Sprintf("fleet: MachineDone for unknown machine %d", id))
	}
	ms.done = true
	ms.complete = ms.done && len(ms.queue) == 0
	st.advanceLocked()
	st.cond.Broadcast()
	st.notifyLocked()
}

// Fail marks the run failed and wakes every waiter (blocked appends and
// idle projection workers).
func (st *Store) Fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed == nil {
		st.failed = err
	}
	st.cond.Broadcast()
}

// Err returns the store's failure, if any.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failed
}

// Commit applies one claimed sample atomically: pop it from its machine's
// queue, advance the machine's checkpoint, fold the integer sums into the
// sample's window, recompute the fleet watermark, and close every window
// the watermark has passed — all under one critical section, so no
// observer ever sees a sample half-applied. The sequence and position
// asserts are the never-reprocess / never-regress invariants.
func (st *Store) Commit(s *Sample) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return
	}
	ms := st.machines[s.Machine]
	if ms == nil || len(ms.queue) == 0 || ms.queue[0] != s {
		panic(fmt.Sprintf("fleet: machine %d: commit of unclaimed or out-of-order sample", s.Machine))
	}
	if s.Seq != ms.next {
		panic(fmt.Sprintf("fleet: machine %d: commit seq %d, checkpoint expects %d (reprocess or skip)", s.Machine, s.Seq, ms.next))
	}
	if s.DrainedAt < ms.pos {
		panic(fmt.Sprintf("fleet: machine %d: checkpoint regression %d -> %d", s.Machine, ms.pos, s.DrainedAt))
	}
	ms.queue = ms.queue[1:]
	st.backlog--
	ms.next++
	ms.pos = s.DrainedAt
	ms.committed++
	ms.complete = ms.done && len(ms.queue) == 0
	st.totalCommitted++
	st.recordsCommitted += s.Records
	st.dropped += s.Dropped

	idx := int64(s.DrainedAt / st.window)
	ws := st.windows[idx]
	if ws == nil {
		ws = &windowState{perMachine: make(map[int]*machineWindow)}
		st.windows[idx] = ws
	}
	mw := ws.perMachine[s.Machine]
	if mw == nil {
		mw = &machineWindow{fns: make(map[string]FnDelta, len(s.Fns))}
		ws.perMachine[s.Machine] = mw
	}
	mw.segments++
	mw.records += s.Records
	mw.dropped += s.Dropped
	mw.elapsed += s.Elapsed
	mw.idle += s.Idle
	mw.switches += s.Switches
	for name, d := range s.Fns {
		e := mw.fns[name]
		e.Calls += d.Calls
		e.Net += d.Net
		mw.fns[name] = e
	}

	st.advanceLocked()
	st.cond.Broadcast()
	st.notifyLocked()
}

// advanceLocked recomputes the watermark and closes every window it has
// passed, in ascending index order. The watermark is the minimum
// checkpoint position over incomplete machines; once every machine is
// complete it jumps to the maximum committed position and all remaining
// windows close.
func (st *Store) advanceLocked() {
	allComplete := true
	var wm sim.Time
	first := true
	for _, id := range st.order {
		ms := st.machines[id]
		if ms.complete {
			continue
		}
		allComplete = false
		if first || ms.pos < wm {
			wm = ms.pos
			first = false
		}
	}
	if allComplete {
		for _, id := range st.order {
			if p := st.machines[id].pos; p > wm {
				wm = p
			}
		}
	}
	if wm < st.watermark {
		panic(fmt.Sprintf("fleet: watermark regression %d -> %d", st.watermark, wm))
	}
	st.watermark = wm
	for {
		idx, ok := st.minOpenWindowLocked()
		if !ok {
			break
		}
		if !allComplete && st.watermark < sim.Time(idx+1)*st.window {
			break
		}
		st.closeWindowLocked(idx)
	}
}

func (st *Store) minOpenWindowLocked() (int64, bool) {
	var min int64
	found := false
	for idx := range st.windows {
		if !found || idx < min {
			min = idx
			found = true
		}
	}
	return min, found
}

// closeWindowLocked folds one window's per-machine integer sums into
// float statistics — machines in ascending ID order — merges the window
// aggregate into the cumulative, records the summary, and drops the
// window state (retention: closed windows keep only their summary, so
// open-window memory stays bounded by the fleet's drain spread).
func (st *Store) closeWindowLocked(idx int64) {
	ws := st.windows[idx]
	delete(st.windows, idx)

	ag := sweep.NewAggregator("fleet")
	sum := WindowSummary{
		Index:   idx,
		StartUS: (sim.Time(idx) * st.window).Micros(),
		EndUS:   (sim.Time(idx+1) * st.window).Micros(),
	}
	for _, id := range sortedMachineIDs(ws.perMachine) {
		mw := ws.perMachine[id]
		sum.Machines++
		sum.Segments += mw.segments
		sum.Records += mw.records
		sum.Dropped += mw.dropped
		run := mw.elapsed - mw.idle
		r := sweep.SeedResult{
			Seed:      uint64(id),
			ElapsedUS: us(mw.elapsed),
			RunUS:     us(run),
			IdleUS:    us(mw.idle),
			Records:   mw.records,
			Switches:  mw.switches,
			Segments:  mw.segments,
			Dropped:   mw.dropped,
			Fns:       make(map[string]sweep.FnSample, len(mw.fns)),
		}
		if mw.elapsed > 0 {
			r.IdlePct = 100 * float64(mw.idle) / float64(mw.elapsed)
		}
		for name, d := range mw.fns {
			fs := sweep.FnSample{Calls: d.Calls, NetUS: us(d.Net)}
			if d.Calls > 0 {
				fs.AvgUS = fs.NetUS / float64(d.Calls)
			}
			if mw.elapsed > 0 {
				fs.PctReal = 100 * float64(d.Net) / float64(mw.elapsed)
			}
			if run > 0 {
				fs.PctNet = 100 * float64(d.Net) / float64(run)
			}
			r.Fns[name] = fs
		}
		ag.Add(r)
	}
	wagg := ag.Finish()
	for i, f := range wagg.Fns {
		if i >= windowTopFns {
			break
		}
		sum.Top = append(sum.Top, WindowFn{
			Name:       f.Name,
			Machines:   f.Seeds,
			CallsMean:  f.Calls.Mean,
			NetUSMean:  f.NetUS.Mean,
			PctNetMean: f.PctNet.Mean,
		})
	}
	st.cum.Merge(wagg)
	st.closed = append(st.closed, sum)
	if st.onWindow != nil {
		st.onWindow(sum)
	}
}

func (st *Store) allCompleteLocked() bool {
	for _, id := range st.order {
		if !st.machines[id].complete {
			return false
		}
	}
	return true
}

func (st *Store) progressLocked() Progress {
	done := 0
	for _, id := range st.order {
		if st.machines[id].done {
			done++
		}
	}
	return Progress{
		Machines:          len(st.order),
		MachinesDone:      done,
		SegmentsStaged:    st.totalStaged,
		SegmentsCommitted: st.totalCommitted,
		Backlog:           st.backlog,
		RecordsCommitted:  st.recordsCommitted,
		Dropped:           st.dropped,
		WatermarkUS:       st.watermark.Micros(),
		WindowsClosed:     len(st.closed),
	}
}

func (st *Store) notifyLocked() {
	if st.onProgress != nil {
		st.onProgress(st.progressLocked())
	}
}

// Progress reports the pipeline's current state.
func (st *Store) Progress() Progress {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.progressLocked()
}

// Result assembles the finished report. Call it only after ingest and
// projection have drained the store (Projector.Wait returned nil).
func (st *Store) Result() *Result {
	st.mu.Lock()
	defer st.mu.Unlock()
	return &Result{
		Machines:    len(st.order),
		WindowUS:    st.window.Micros(),
		Segments:    st.totalCommitted,
		Records:     st.recordsCommitted,
		Dropped:     st.dropped,
		WatermarkUS: st.watermark.Micros(),
		Windows:     append([]WindowSummary(nil), st.closed...),
		Agg:         st.cum,
	}
}
