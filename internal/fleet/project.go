package fleet

import (
	"errors"
	"runtime"
	"sync"
)

// ErrKilled reports a projector that hit its kill budget (SetKillAfter)
// before the store drained — the simulated crash of the restart
// differential test.
var ErrKilled = errors.New("fleet: projector killed before the store drained")

// Projector is a pool of projection workers over one staging store. Each
// worker claims the head of some machine's queue — machines are claimed
// exclusively, so per-machine commit order is structurally sequence order
// — commits it, and releases the machine. Claims are the projector's only
// state; everything durable lives in the Store, so a new Projector over
// the same Store resumes exactly where a dead one stopped.
type Projector struct {
	st      *Store
	workers int
	wg      sync.WaitGroup

	// claimed (guarded by st.mu) marks machines with a sample in flight.
	claimed map[int]bool
	// budget is the number of claims left before the projector simulates
	// a crash; <0 is unlimited. stopped/killed record why workers exited.
	budget  int
	stopped bool
	killed  bool
}

// NewProjector builds a projector; workers of 0 means GOMAXPROCS.
func NewProjector(st *Store, workers int) *Projector {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Projector{st: st, workers: workers, budget: -1, claimed: make(map[int]bool)}
}

// SetKillAfter arms the simulated crash: the projector commits exactly n
// more samples, then stops dead, leaving the store's checkpoints, open
// windows and cumulative aggregate exactly as the n commits left them.
// Call before Start.
func (p *Projector) SetKillAfter(n int) { p.budget = n }

// Start launches the workers.
func (p *Projector) Start() {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.run()
	}
}

func (p *Projector) run() {
	defer p.wg.Done()
	for {
		s := p.claim()
		if s == nil {
			return
		}
		p.st.Commit(s)
		p.release(s.Machine)
	}
}

// claim blocks until some unclaimed machine has a staged sample, the
// store drains completely, the run fails, or the projector stops. Among
// claimable machines it picks the one with the smallest checkpoint
// position (ties by ID) — the machine most likely to be holding the
// watermark back. The policy affects only scheduling: report bytes are
// fixed by the commit fold orders, not by claim order.
func (p *Projector) claim() *Sample {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.failed != nil || p.stopped || st.allCompleteLocked() {
			return nil
		}
		var best *machineState
		for _, id := range st.order {
			ms := st.machines[id]
			if p.claimed[id] || len(ms.queue) == 0 {
				continue
			}
			if best == nil || ms.pos < best.pos {
				best = ms
			}
		}
		if best != nil {
			if p.budget == 0 {
				p.stopped = true
				p.killed = true
				st.cond.Broadcast()
				return nil
			}
			if p.budget > 0 {
				p.budget--
			}
			p.claimed[best.id] = true
			return best.queue[0]
		}
		st.cond.Wait()
	}
}

func (p *Projector) release(machine int) {
	st := p.st
	st.mu.Lock()
	delete(p.claimed, machine)
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Stop halts the workers without draining and waits for them to exit.
func (p *Projector) Stop() {
	st := p.st
	st.mu.Lock()
	p.stopped = true
	p.killed = true
	st.cond.Broadcast()
	st.mu.Unlock()
	p.wg.Wait()
}

// Wait blocks until every worker has exited and reports why: nil when the
// store drained completely, ErrKilled when the kill budget (or Stop) hit
// first, or the store's failure error.
func (p *Projector) Wait() error {
	p.wg.Wait()
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return st.failed
	}
	if p.killed && !st.allCompleteLocked() {
		return ErrKilled
	}
	return nil
}
