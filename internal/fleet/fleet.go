// Package fleet profiles many simulated machines at once and streams
// their captures through one host-side ingest pipeline.
//
// One Session owns one Machine; a sweep parallelizes seeds but each
// worker is an island that reports only when the pool drains. Fleet mode
// is the production shape: N machines with heterogeneous configurations
// (card RAM depth, counter clock rate, workload scenario) each run
// continuous drain capture, and every finished segment streams to a
// central ingest service the moment it drains. The ingest side follows
// the ingestor → staging store → projection-worker pattern:
//
//   - a per-machine ingest worker decodes its machine's segment stream
//     through a dedicated streaming Reconstructor and condenses each
//     segment into an integer-delta Sample, appended to the staging
//     store (Append blocks when the store is full — backpressure reaches
//     all the way back to the machine's drain loop);
//   - projection workers consume staged samples in strict per-machine
//     order, committing each one atomically: advance the machine's
//     checkpoint, fold the sample into its time window, recompute the
//     fleet watermark, and close every window the watermark has passed;
//   - cross-fleet aggregation is incremental and windowed: each closed
//     window folds its machines' sums into a sweep.Aggregate (machines in
//     ID order) and merges into the running fleet cumulative
//     (sweep.Aggregate.Merge, windows in index order) — never a
//     fold-at-the-end over retained per-seed results.
//
// Every float fold order is fixed — segments per machine in sequence
// order, machines within a window in ID order, windows into the
// cumulative in index order — so the fleet report is byte-identical for
// any projection-worker count and any ingest interleaving. The staging
// store holds the whole durable state (staged samples, checkpoints,
// window sums, the cumulative); a projector that dies mid-run is
// restarted over the same store and resumes from the checkpoints without
// reprocessing a single committed segment. See DESIGN.md ("Fleet mode")
// for the invariant list the tests assert.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"kprof/internal/sim"
	"kprof/internal/sweep"
	"kprof/internal/workload"
)

// Schema identifies the fleet JSON report format (Result.WriteJSON).
const Schema = "kprof-fleet/1"

// DefaultWindow is the aggregation window width when Config.Window is
// zero: wide enough that every machine drains at least once per window
// under the default drain interval, narrow enough that a production-day
// run produces a meaningful time series.
const DefaultWindow = 100 * sim.Millisecond

// DefaultStaging bounds the staging store (in samples) when
// Config.Staging is zero.
const DefaultStaging = 64

// MachineConfig describes one fleet machine: its simulation seed, its
// workload, and the card build it profiles with. Heterogeneity lives
// here — different RAM depths drain at different cadences, different
// clock rates stamp at different precision, and the ingest pipeline
// decodes each stream under its own machine's configuration.
type MachineConfig struct {
	// ID identifies the machine; IDs must be unique across the fleet and
	// fix the merge order within a window (ascending).
	ID int
	// Seed is the machine's simulation seed.
	Seed uint64
	// Scenario names a registered workload (workload.ScenarioNames).
	Scenario string
	// Params tunes the workload (zero values select scenario defaults).
	Params workload.Params
	// Depth is the machine's card RAM depth; 0 means the prototype's
	// 16384 records.
	Depth int
	// ClockHz is the card's counter rate; 0 means the prototype's 1 MHz.
	ClockHz int64
}

// Config describes one fleet run.
type Config struct {
	// Machines is the fleet, typically built by MachinesFromMix.
	Machines []MachineConfig
	// Window is the aggregation window width in virtual time; 0 means
	// DefaultWindow. Samples are assigned to windows by drain time.
	Window sim.Time
	// Workers is the projection-worker count; 0 means GOMAXPROCS. The
	// report bytes do not depend on it.
	Workers int
	// Staging bounds the staging store in samples; 0 means
	// DefaultStaging. Appends block when the store is full.
	Staging int
	// OnProgress, when non-nil, observes the ingest pipeline: it fires on
	// every append, commit and machine completion. Calls are serialized
	// under the store's lock — the callback must be fast and must not
	// re-enter the fleet (it feeds export.StatusServer).
	OnProgress func(Progress)
	// OnWindow, when non-nil, observes every closed aggregation window at
	// the moment it closes, in ascending index order — the summaries are
	// exactly the ones Result.Windows will list. Like OnProgress, calls run
	// under the store's lock: the callback must be fast and must not
	// re-enter the fleet (it feeds export.StatusServer's time-series ring).
	OnWindow func(WindowSummary)
}

// MachinesFromMix builds n machine configurations from a scenario-mix
// spec of the form "netrecv=2,proday=1": scenario names with integer
// weights, assigned to machines by cycling through the weighted
// expansion (two netrecv machines, then one proday, repeating). An empty
// spec means all netrecv. Seeds are baseSeed, baseSeed+1, ...; card
// heterogeneity is derived deterministically from the machine index
// (RAM depth cycling 16384/8192/4096, clock rate cycling 1/2/4 MHz), so
// the same arguments always describe the same fleet.
func MachinesFromMix(n int, spec string, baseSeed uint64, params workload.Params) ([]MachineConfig, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: need at least one machine, got %d", n)
	}
	if spec == "" {
		spec = "netrecv"
	}
	var cycle []string
	for _, part := range strings.Split(spec, ",") {
		name, val, hasWeight := strings.Cut(part, "=")
		w := 1
		if hasWeight {
			parsed, err := strconv.Atoi(val)
			if err != nil || parsed < 0 {
				return nil, fmt.Errorf("fleet: -fleetmix entry %q: bad weight %q", part, val)
			}
			w = parsed
		}
		if _, ok := workload.FindScenario(name); !ok {
			return nil, fmt.Errorf("fleet: -fleetmix entry %q: unknown scenario (have %v)", part, workload.ScenarioNames())
		}
		for i := 0; i < w; i++ {
			cycle = append(cycle, name)
		}
	}
	if len(cycle) == 0 {
		return nil, fmt.Errorf("fleet: -fleetmix %q selects no machines (all weights zero)", spec)
	}
	depths := []int{0, 8192, 4096}             // 0 = prototype 16384
	clocks := []int64{0, 2_000_000, 4_000_000} // 0 = prototype 1 MHz
	machines := make([]MachineConfig, n)
	for i := range machines {
		machines[i] = MachineConfig{
			ID:       i,
			Seed:     baseSeed + uint64(i),
			Scenario: cycle[i%len(cycle)],
			Params:   params,
			Depth:    depths[i%len(depths)],
			ClockHz:  clocks[(i/len(depths))%len(clocks)],
		}
	}
	return machines, nil
}

// Run executes a full fleet run: boot every machine live, stream, ingest,
// project, and return the finished result once every machine's stream is
// fully committed and every window is closed.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("fleet: no machines configured")
	}
	sources := make([]Source, len(cfg.Machines))
	for i, mc := range cfg.Machines {
		ls, err := NewLiveSource(mc)
		if err != nil {
			return nil, err
		}
		sources[i] = ls
	}
	return RunSources(cfg, sources)
}

// RunSources executes a fleet run over explicit sources — live machines,
// or pre-captured ReplaySources (the benchmark and the differential
// tests replay identical streams under different worker counts and
// staging bounds).
func RunSources(cfg Config, sources []Source) (*Result, error) {
	ids := make([]int, len(sources))
	for i, src := range sources {
		ids[i] = src.ID()
	}
	st, err := NewStore(cfg.Window, cfg.Staging, ids, cfg.OnProgress, cfg.OnWindow)
	if err != nil {
		return nil, err
	}
	ing := StartIngest(st, sources)
	proj := NewProjector(st, cfg.Workers)
	proj.Start()
	ingErr := ing.Wait()
	projErr := proj.Wait()
	if ingErr != nil {
		return nil, ingErr
	}
	if projErr != nil {
		return nil, projErr
	}
	return st.Result(), nil
}

// WindowFn is one function's entry in a closed window's top list.
type WindowFn struct {
	Name string `json:"name"`
	// Machines counts the machines the function appeared on in the window.
	Machines int `json:"machines"`
	// CallsMean, NetUSMean and PctNetMean are cross-machine means within
	// the window.
	CallsMean  float64 `json:"calls_mean"`
	NetUSMean  float64 `json:"net_us_mean"`
	PctNetMean float64 `json:"pct_net_mean"`
}

// WindowSummary is one closed aggregation window. Windows with no
// committed samples produce no summary, so indices may have gaps.
type WindowSummary struct {
	// Index is the window's position on the virtual timeline: the window
	// covers [Index*width, (Index+1)*width).
	Index int64 `json:"index"`
	// StartUS and EndUS are the window bounds in virtual microseconds.
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Machines counts machines that contributed at least one segment.
	Machines int `json:"machines"`
	// Segments, Records and Dropped total the window's committed samples.
	Segments int    `json:"segments"`
	Records  int    `json:"records"`
	Dropped  uint64 `json:"dropped_strobes"`
	// Top lists the window's heaviest functions by mean net time.
	Top []WindowFn `json:"top"`
}

// windowTopFns bounds WindowSummary.Top.
const windowTopFns = 5

// Result is a finished fleet run.
type Result struct {
	// Machines is the fleet size; WindowUS the window width.
	Machines int
	WindowUS int64
	// Segments, Records and Dropped total every committed sample.
	Segments int
	Records  int
	Dropped  uint64
	// WatermarkUS is the final fleet watermark in virtual microseconds.
	WatermarkUS int64
	// Windows lists the closed windows in index order.
	Windows []WindowSummary
	// Agg is the cumulative fleet aggregate: the incremental merge of
	// every closed window, observation unit = one machine's contribution
	// to one window.
	Agg *sweep.Aggregate
}

// Write renders the fleet report: the run header, the window table, and
// the cumulative aggregate (top functions; 0 = all). The bytes depend
// only on the committed samples and the window width — not on worker
// count, staging bound, or ingest interleaving.
func (r *Result) Write(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "Fleet of %d machines: %d segments ingested (%d records, %d dropped strobes), watermark %d us\n",
		r.Machines, r.Segments, r.Records, r.Dropped, r.WatermarkUS)
	fmt.Fprintf(ew, "%d windows of %d us:\n", len(r.Windows), r.WindowUS)
	fmt.Fprintf(ew, "%6s %22s %5s %5s %8s %6s   %s\n",
		"window", "span (us)", "mach", "segs", "records", "drop", "top function (% net mean)")
	for _, ws := range r.Windows {
		topFn := ""
		if len(ws.Top) > 0 {
			topFn = fmt.Sprintf("%s (%.1f)", ws.Top[0].Name, ws.Top[0].PctNetMean)
		}
		fmt.Fprintf(ew, "%6d %10d..%-11d %5d %5d %8d %6d   %s\n",
			ws.Index, ws.StartUS, ws.EndUS, ws.Machines, ws.Segments, ws.Records, ws.Dropped, topFn)
	}
	fmt.Fprintln(ew)
	if ew.err != nil {
		return ew.err
	}
	return r.Agg.Write(w, top)
}

// String renders the report with the top 20 functions.
func (r *Result) String() string {
	var b strings.Builder
	_ = r.Write(&b, 20)
	return b.String()
}

// jsonAcc renders one accumulator.
type jsonAcc struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func accJSON(a interface {
	Std() float64
	Min() float64
	Max() float64
}, n int, mean float64) jsonAcc {
	return jsonAcc{N: n, Mean: mean, Std: a.Std(), Min: a.Min(), Max: a.Max()}
}

// jsonFleetFn is one function's row in the cumulative aggregate.
type jsonFleetFn struct {
	Name string `json:"name"`
	// Observations counts the (machine, window) pairs the function
	// appeared in.
	Observations int     `json:"observations"`
	CallsMean    float64 `json:"calls_mean"`
	NetUS        jsonAcc `json:"net_us"`
	PctNet       jsonAcc `json:"pct_net"`
	PctNetCV     float64 `json:"pct_net_cv"`
}

// jsonFleet is the cumulative aggregate section.
type jsonFleet struct {
	Observations int           `json:"observations"`
	ElapsedUS    jsonAcc       `json:"elapsed_us"`
	RunUS        jsonAcc       `json:"run_us"`
	IdlePct      jsonAcc       `json:"idle_pct"`
	Functions    []jsonFleetFn `json:"functions"`
}

// jsonReport is the whole document (schema kprof-fleet/1; see DESIGN.md).
type jsonReport struct {
	Schema      string          `json:"schema"`
	Machines    int             `json:"machines"`
	WindowUS    int64           `json:"window_us"`
	Segments    int             `json:"segments"`
	Records     int             `json:"records"`
	Dropped     uint64          `json:"dropped_strobes"`
	WatermarkUS int64           `json:"watermark_us"`
	Windows     []WindowSummary `json:"windows"`
	Fleet       jsonFleet       `json:"fleet"`
}

// WriteJSON writes the machine-readable fleet report (schema
// "kprof-fleet/1", documented in DESIGN.md). Like Write, the bytes are
// independent of worker count and ingest interleaving.
func (r *Result) WriteJSON(w io.Writer) error {
	g := r.Agg
	doc := jsonReport{
		Schema:      Schema,
		Machines:    r.Machines,
		WindowUS:    r.WindowUS,
		Segments:    r.Segments,
		Records:     r.Records,
		Dropped:     r.Dropped,
		WatermarkUS: r.WatermarkUS,
		Windows:     r.Windows,
		Fleet: jsonFleet{
			Observations: g.Seeds,
			ElapsedUS:    accJSON(g.ElapsedUS, g.ElapsedUS.N, g.ElapsedUS.Mean),
			RunUS:        accJSON(g.RunUS, g.RunUS.N, g.RunUS.Mean),
			IdlePct:      accJSON(g.IdlePct, g.IdlePct.N, g.IdlePct.Mean),
		},
	}
	if doc.Windows == nil {
		doc.Windows = []WindowSummary{}
	}
	doc.Fleet.Functions = make([]jsonFleetFn, 0, len(g.Fns))
	for _, f := range g.Fns {
		doc.Fleet.Functions = append(doc.Fleet.Functions, jsonFleetFn{
			Name:         f.Name,
			Observations: f.Seeds,
			CallsMean:    f.Calls.Mean,
			NetUS:        accJSON(f.NetUS, f.NetUS.N, f.NetUS.Mean),
			PctNet:       accJSON(f.PctNet, f.PctNet.N, f.PctNet.Mean),
			PctNetCV:     f.PctNet.CV(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// us converts virtual time to float microseconds (the aggregate unit).
func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// sortedMachineIDs returns m's keys ascending — the fixed fold order
// within a window.
func sortedMachineIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// errWriter passes writes through until one fails, then remembers the
// first error (the same pattern as the analyze/sweep report writers).
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}
