package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// fixtureMachines is the heterogeneous test fleet: three machines with
// different scenarios, RAM depths and clock rates.
var fixtureMachines = []MachineConfig{
	{ID: 0, Seed: 1001, Scenario: "netrecv", Params: workload.Params{Duration: 120 * sim.Millisecond}, Depth: 2048},
	{ID: 1, Seed: 1002, Scenario: "forkexec", Params: workload.Params{Count: 2}, Depth: 1024, ClockHz: 2_000_000},
	{ID: 2, Seed: 1003, Scenario: "mixed", Params: workload.Params{Duration: 100 * sim.Millisecond}, Depth: 4096, ClockHz: 4_000_000},
}

var (
	fixtureOnce sync.Once
	fixtureSrcs []*ReplaySource
	fixtureErr  error
)

// fixture records the test fleet's segment streams once; every test
// replays the identical bytes.
func fixture(t *testing.T) []Source {
	t.Helper()
	fixtureOnce.Do(func() {
		for _, mc := range fixtureMachines {
			rs, err := Record(mc)
			if err != nil {
				fixtureErr = err
				return
			}
			fixtureSrcs = append(fixtureSrcs, rs)
		}
	})
	if fixtureErr != nil {
		t.Fatalf("recording fixture fleet: %v", fixtureErr)
	}
	srcs := make([]Source, len(fixtureSrcs))
	for i, rs := range fixtureSrcs {
		srcs[i] = rs
	}
	return srcs
}

const testWindow = 20 * sim.Millisecond

// render flattens a result into its full text + JSON report bytes.
func render(t *testing.T, r *Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.Write(&b, 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b.WriteString("\n--json--\n")
	if err := r.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return b.String()
}

func runReplay(t *testing.T, workers, staging int) *Result {
	t.Helper()
	res, err := RunSources(Config{
		Machines: fixtureMachines,
		Window:   testWindow,
		Workers:  workers,
		Staging:  staging,
	}, fixture(t))
	if err != nil {
		t.Fatalf("RunSources(workers=%d, staging=%d): %v", workers, staging, err)
	}
	return res
}

// TestFleetDeterminism is the tentpole acceptance check: the fleet report
// must be byte-identical for any projection-worker count and any ingest
// interleaving (staging bound changes which appends block, reshuffling
// the commit schedule).
func TestFleetDeterminism(t *testing.T) {
	base := runReplay(t, 1, 64)
	if base.Segments == 0 || base.Records == 0 || len(base.Windows) < 2 {
		t.Fatalf("fixture fleet too small to exercise windowing: %d segments, %d records, %d windows",
			base.Segments, base.Records, len(base.Windows))
	}
	baseBytes := render(t, base)
	for _, workers := range []int{1, 2, 4} {
		for _, staging := range []int{2, 8, 64} {
			got := render(t, runReplay(t, workers, staging))
			if got != baseBytes {
				t.Errorf("report bytes differ at workers=%d staging=%d (want the workers=1 staging=64 bytes)", workers, staging)
			}
		}
	}
}

// TestFleetRestart is the checkpoint differential: kill the projector
// after k commits, restart a fresh one over the same store, and require
// the final report byte-identical to an uninterrupted run — with every
// segment committed exactly once.
func TestFleetRestart(t *testing.T) {
	base := runReplay(t, 2, 64)
	baseBytes := render(t, base)
	total := base.Segments
	if total < 4 {
		t.Fatalf("fixture fleet produced only %d segments; restart test needs more", total)
	}
	for _, k := range []int{1, total / 2, total - 1} {
		st, err := NewStore(testWindow, 4, []int{0, 1, 2}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ing := StartIngest(st, fixture(t))
		p1 := NewProjector(st, 2)
		p1.SetKillAfter(k)
		p1.Start()
		if err := p1.Wait(); err != ErrKilled {
			t.Fatalf("kill after %d: projector Wait = %v, want ErrKilled", k, err)
		}
		if got := st.Progress().SegmentsCommitted; got != k {
			t.Fatalf("kill after %d: %d segments committed at kill", k, got)
		}
		p2 := NewProjector(st, 3)
		p2.Start()
		if err := ing.Wait(); err != nil {
			t.Fatalf("kill after %d: ingest: %v", k, err)
		}
		if err := p2.Wait(); err != nil {
			t.Fatalf("kill after %d: restarted projector: %v", k, err)
		}
		prog := st.Progress()
		if prog.SegmentsCommitted != total || prog.SegmentsStaged != total {
			t.Errorf("kill after %d: committed %d / staged %d, want %d exactly-once",
				k, prog.SegmentsCommitted, prog.SegmentsStaged, total)
		}
		if got := render(t, st.Result()); got != baseBytes {
			t.Errorf("kill after %d: restarted report bytes differ from uninterrupted run", k)
		}
	}
}

// TestFleetWatermark asserts the pipeline invariants observable through
// the progress hook: the watermark never regresses, the backlog respects
// the staging bound, and commits never outrun appends.
func TestFleetWatermark(t *testing.T) {
	const staging = 3
	var trace []Progress
	_, err := RunSources(Config{
		Machines: fixtureMachines,
		Window:   testWindow,
		Workers:  2,
		Staging:  staging,
		// Serialized under the store lock, so the plain append is safe.
		OnProgress: func(p Progress) { trace = append(trace, p) },
	}, fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("no progress callbacks fired")
	}
	var prev Progress
	for i, p := range trace {
		if p.WatermarkUS < prev.WatermarkUS {
			t.Fatalf("callback %d: watermark regressed %d -> %d us", i, prev.WatermarkUS, p.WatermarkUS)
		}
		if p.WindowsClosed < prev.WindowsClosed {
			t.Fatalf("callback %d: closed-window count regressed", i)
		}
		if p.Backlog > staging {
			t.Fatalf("callback %d: backlog %d exceeds staging bound %d", i, p.Backlog, staging)
		}
		if p.SegmentsCommitted > p.SegmentsStaged {
			t.Fatalf("callback %d: committed %d > staged %d", i, p.SegmentsCommitted, p.SegmentsStaged)
		}
		prev = p
	}
	last := trace[len(trace)-1]
	if last.MachinesDone != len(fixtureMachines) || last.Backlog != 0 {
		t.Fatalf("final progress not drained: %+v", last)
	}
}

// TestFleetLiveMatchesReplay proves the live path and the replay path
// are the same pipeline: a live fleet run renders the same bytes as
// replaying the recorded streams of identically configured machines.
func TestFleetLiveMatchesReplay(t *testing.T) {
	cfg := Config{Machines: fixtureMachines, Window: testWindow, Workers: 2}
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay := runReplay(t, 2, 64)
	if render(t, live) != render(t, replay) {
		t.Error("live fleet run and replayed fleet run render different bytes")
	}
}

// TestFleetSamplesSumToReconstruction checks the ingest delta math
// end-to-end: a single-machine fleet's committed totals equal a direct
// full-stream reconstruction of the same segments, exactly.
func TestFleetSamplesSumToReconstruction(t *testing.T) {
	rs := fixture(t)[0].(*ReplaySource)
	res, err := RunSources(Config{
		Machines: fixtureMachines[:1],
		Window:   60 * sim.Second, // one window: the whole stream
		Workers:  2,
	}, []Source{rs})
	if err != nil {
		t.Fatal(err)
	}
	rc := analyze.NewReconstructor(rs.Clock, rs.TagFile, analyze.ReconstructOptions{
		DiscardEvents: true, DiscardTrace: true, Repair: analyze.DefaultRepair(),
	})
	for _, seg := range rs.Segments {
		rc.PushBatch(seg.Records)
		rc.EndSegment(seg.Dropped, seg.Overflowed)
	}
	a := rc.Finish(false, 0)
	if res.Records != a.Stats.Records {
		t.Errorf("fleet committed %d records, reconstruction decoded %d", res.Records, a.Stats.Records)
	}
	if res.Segments != len(rs.Segments) {
		t.Errorf("fleet committed %d segments, stream has %d", res.Segments, len(rs.Segments))
	}
	if len(res.Windows) != 1 {
		t.Fatalf("expected one window, got %d", len(res.Windows))
	}
	g := res.Agg
	if g.Seeds != 1 {
		t.Fatalf("expected one observation, got %d", g.Seeds)
	}
	if want := float64(a.Elapsed()) / float64(sim.Microsecond); g.ElapsedUS.Mean != want {
		t.Errorf("window elapsed %v us, reconstruction %v us", g.ElapsedUS.Mean, want)
	}
	if want := float64(a.Idle) / float64(sim.Microsecond); g.ElapsedUS.Mean-g.RunUS.Mean != want {
		t.Errorf("window idle %v us, reconstruction %v us", g.ElapsedUS.Mean-g.RunUS.Mean, want)
	}
	// Per-function sums: every non-switcher function with net time must
	// round-trip exactly (ticks are integers; one float conversion each).
	for _, f := range a.Functions() {
		if f.CtxSwitch {
			continue
		}
		fa, ok := g.Fn(f.Name)
		if f.Calls == 0 && f.Net == 0 {
			continue
		}
		if !ok {
			t.Errorf("function %s missing from fleet aggregate", f.Name)
			continue
		}
		if fa.Calls.Mean != float64(f.Calls) {
			t.Errorf("%s: fleet calls %v, reconstruction %d", f.Name, fa.Calls.Mean, f.Calls)
		}
		if want := float64(f.Net) / float64(sim.Microsecond); fa.NetUS.Mean != want {
			t.Errorf("%s: fleet net %v us, reconstruction %v us", f.Name, fa.NetUS.Mean, want)
		}
	}
}

func TestMachinesFromMix(t *testing.T) {
	machines, err := MachinesFromMix(7, "netrecv=2,forkexec=1", 500, workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	wantScenario := []string{"netrecv", "netrecv", "forkexec", "netrecv", "netrecv", "forkexec", "netrecv"}
	for i, mc := range machines {
		if mc.ID != i {
			t.Errorf("machine %d: ID %d", i, mc.ID)
		}
		if mc.Seed != 500+uint64(i) {
			t.Errorf("machine %d: seed %d", i, mc.Seed)
		}
		if mc.Scenario != wantScenario[i] {
			t.Errorf("machine %d: scenario %s, want %s", i, mc.Scenario, wantScenario[i])
		}
	}
	// Heterogeneity cycles: depth by index, clock every three machines.
	if machines[0].Depth != 0 || machines[1].Depth != 8192 || machines[2].Depth != 4096 {
		t.Errorf("depth cycle wrong: %d %d %d", machines[0].Depth, machines[1].Depth, machines[2].Depth)
	}
	if machines[0].ClockHz != 0 || machines[3].ClockHz != 2_000_000 || machines[6].ClockHz != 4_000_000 {
		t.Errorf("clock cycle wrong: %d %d %d", machines[0].ClockHz, machines[3].ClockHz, machines[6].ClockHz)
	}
	for _, spec := range []string{"nosuch", "netrecv=x", "netrecv=0"} {
		if _, err := MachinesFromMix(3, spec, 1, workload.Params{}); err == nil {
			t.Errorf("MachinesFromMix(%q) succeeded, want error", spec)
		}
	}
	if _, err := MachinesFromMix(0, "netrecv", 1, workload.Params{}); err == nil {
		t.Error("MachinesFromMix(0 machines) succeeded, want error")
	}
}

// TestFleetReportShape sanity-checks the rendered report so doc examples
// stay truthful.
func TestFleetReportShape(t *testing.T) {
	res := runReplay(t, 2, 64)
	text := res.String()
	for _, want := range []string{"Fleet of 3 machines", "windows of 20000 us", "Sweep of fleet across"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	var b bytes.Buffer
	if err := res.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "kprof-fleet/1"`, `"watermark_us"`, `"windows"`, `"functions"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

// TestFleetOnWindowHook: the window-close hook sees every summary the
// final report lists, in close order — which is ascending index order,
// whatever the worker count — and each summary equals its Result.Windows
// entry field for field (the serving tier's time-series ring depends on
// both properties).
func TestFleetOnWindowHook(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var hooked []WindowSummary
		res, err := RunSources(Config{
			Machines: fixtureMachines,
			Window:   testWindow,
			Workers:  workers,
			OnWindow: func(ws WindowSummary) { hooked = append(hooked, ws) },
		}, fixture(t))
		if err != nil {
			t.Fatalf("RunSources(workers=%d): %v", workers, err)
		}
		if len(hooked) != len(res.Windows) {
			t.Fatalf("workers=%d: hook fired %d times, result has %d windows", workers, len(hooked), len(res.Windows))
		}
		for i, ws := range hooked {
			if i > 0 && ws.Index <= hooked[i-1].Index {
				t.Fatalf("workers=%d: window %d closed out of order: index %d after %d",
					workers, i, ws.Index, hooked[i-1].Index)
			}
			if !reflect.DeepEqual(ws, res.Windows[i]) {
				t.Fatalf("workers=%d: hooked window %d is %+v, result lists %+v", workers, i, ws, res.Windows[i])
			}
		}
	}
}
