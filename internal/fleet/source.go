package fleet

import (
	"fmt"

	"kprof/internal/core"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
	"kprof/internal/workload"
)

// RawSegment is one drained capture segment as the machine side hands it
// to ingest: the raw card records plus the drain boundary's loss
// accounting, before any decoding.
type RawSegment struct {
	// Records are the drained card records.
	Records []hw.Record
	// Dropped and Overflowed describe strobes lost at the segment's end
	// boundary (arrived after the card filled, before the drain ran).
	Dropped    uint64
	Overflowed bool
	// DrainedAt is the virtual time the drain ran — the sample's position
	// on the fleet timeline and its window assignment.
	DrainedAt sim.Time
}

// Source is one machine's segment stream. Open boots whatever the stream
// needs and reports the card clock configuration and tag file its records
// decode under; Run produces the segments in drain order, calling emit for
// each, and returns when the stream ends. An emit error aborts the stream:
// Run must stop emitting and return it (or a wrapper).
type Source interface {
	// ID is the machine ID (unique across the fleet).
	ID() int
	// Open prepares the stream and returns the decode configuration.
	Open() (hw.Config, *tagfile.File, error)
	// Run produces the segments; it must not be called before Open.
	Run(emit func(RawSegment) error) error
}

// LiveSource boots a real simulated machine and streams its continuous-
// capture drains as they happen. The emit callback runs on the machine's
// simulation goroutine inside the drain itself, so ingest backpressure
// (a blocking staging append) propagates naturally into the machine's
// capture loop — the production coupling the fleet models.
type LiveSource struct {
	mc MachineConfig
	sc workload.Scenario
	m  *core.Machine
	s  *core.Session
}

// NewLiveSource validates the machine configuration and resolves its
// scenario. The machine itself boots in Open.
func NewLiveSource(mc MachineConfig) (*LiveSource, error) {
	sc, ok := workload.FindScenario(mc.Scenario)
	if !ok {
		return nil, fmt.Errorf("fleet: machine %d: unknown scenario %q (have %v)",
			mc.ID, mc.Scenario, workload.ScenarioNames())
	}
	return &LiveSource{mc: mc, sc: sc}, nil
}

// ID returns the machine ID.
func (ls *LiveSource) ID() int { return ls.mc.ID }

// Open boots the machine, runs the scenario's Setup, and instruments a
// continuous-capture session with the machine's card configuration.
func (ls *LiveSource) Open() (hw.Config, *tagfile.File, error) {
	m := core.NewMachine(kernel.Config{Seed: ls.mc.Seed})
	if ls.sc.Setup != nil {
		if err := ls.sc.Setup(m, ls.mc.Params); err != nil {
			return hw.Config{}, nil, fmt.Errorf("fleet: machine %d: setup: %w", ls.mc.ID, err)
		}
	}
	s, err := core.NewSession(m, core.ProfileConfig{
		Mode:    core.CaptureContinuous,
		Depth:   ls.mc.Depth,
		ClockHz: ls.mc.ClockHz,
	})
	if err != nil {
		return hw.Config{}, nil, fmt.Errorf("fleet: machine %d: session: %w", ls.mc.ID, err)
	}
	ls.m, ls.s = m, s
	return s.Card.Config(), s.Tags, nil
}

// Run arms the card, drives the scenario, and emits every drained segment
// — including the final drain at Disarm. An emit error stops further
// emission immediately; the scenario still runs to completion (the
// simulation loop cannot be aborted mid-workload) and the error is
// returned afterwards.
func (ls *LiveSource) Run(emit func(RawSegment) error) error {
	if ls.s == nil {
		return fmt.Errorf("fleet: machine %d: Run before Open", ls.mc.ID)
	}
	var emitErr error
	ls.s.SetOnSegment(func(seg core.Segment) {
		if emitErr != nil {
			return
		}
		emitErr = emit(RawSegment{
			Records:    seg.Capture.Records,
			Dropped:    seg.Capture.Dropped,
			Overflowed: seg.Capture.Overflowed,
			DrainedAt:  seg.DrainedAt,
		})
	})
	ls.s.Arm()
	_, runErr := ls.sc.Run(ls.m, ls.mc.Params)
	ls.s.Disarm()
	if runErr != nil {
		return fmt.Errorf("fleet: machine %d: %s: %w", ls.mc.ID, ls.mc.Scenario, runErr)
	}
	return emitErr
}

// ReplaySource replays a pre-captured segment stream. Replays are
// reusable (Run may be called repeatedly after one Open) and cheap, which
// is what the determinism tests and the ingest benchmark need: the same
// byte-for-byte stream fed through different worker counts, staging
// bounds and kill points.
type ReplaySource struct {
	// Machine is the machine ID the stream claims.
	Machine int
	// Clock and TagFile are the decode configuration.
	Clock   hw.Config
	TagFile *tagfile.File
	// Segments is the stream, in drain order.
	Segments []RawSegment
}

// ID returns the machine ID.
func (rs *ReplaySource) ID() int { return rs.Machine }

// Open returns the recorded decode configuration.
func (rs *ReplaySource) Open() (hw.Config, *tagfile.File, error) {
	if rs.TagFile == nil {
		return hw.Config{}, nil, fmt.Errorf("fleet: machine %d: replay has no tag file", rs.Machine)
	}
	return rs.Clock, rs.TagFile, nil
}

// Run emits the recorded segments in order.
func (rs *ReplaySource) Run(emit func(RawSegment) error) error {
	for _, seg := range rs.Segments {
		if err := emit(seg); err != nil {
			return err
		}
	}
	return nil
}

// Record captures one machine's full segment stream into a ReplaySource
// by running it live once and copying every emitted segment.
func Record(mc MachineConfig) (*ReplaySource, error) {
	ls, err := NewLiveSource(mc)
	if err != nil {
		return nil, err
	}
	cfg, tags, err := ls.Open()
	if err != nil {
		return nil, err
	}
	rs := &ReplaySource{Machine: mc.ID, Clock: cfg, TagFile: tags}
	err = ls.Run(func(seg RawSegment) error {
		seg.Records = append([]hw.Record(nil), seg.Records...)
		rs.Segments = append(rs.Segments, seg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}
