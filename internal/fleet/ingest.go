package fleet

import (
	"fmt"
	"sync"

	"kprof/internal/analyze"
	"kprof/internal/sim"
)

// FnDelta is one function's contribution within one sample: exact integer
// call and net-tick deltas between two reconstruction snapshots.
type FnDelta struct {
	Calls int
	Net   sim.Time
}

// Sample is one drained segment condensed into integer deltas — the unit
// the staging store holds and the projection workers commit. Because
// every field is an exact difference of cumulative integer counters, the
// samples of one machine sum to its full-stream reconstruction totals bit
// for bit, in any grouping: windowing never changes the fleet's sums.
type Sample struct {
	// Machine and Seq identify the sample: Seq is the machine's segment
	// index, dense from 0 — the checkpoint coordinate.
	Machine int
	Seq     int
	// DrainedAt positions the sample on the fleet timeline (window
	// assignment and watermark accounting).
	DrainedAt sim.Time
	// Records counts decoded records; Dropped the strobes lost at the
	// segment's end boundary.
	Records int
	Dropped uint64
	// Elapsed, Idle and Switches are this segment's share of the
	// machine's timeline.
	Elapsed  sim.Time
	Idle     sim.Time
	Switches int
	// Fns holds per-function deltas; functions with no activity in the
	// segment are absent.
	Fns map[string]FnDelta
}

// fnCum is one function's cumulative counters at the previous snapshot.
type fnCum struct {
	calls int
	net   sim.Time
}

// deltaTracker diffs successive reconstruction snapshots into Samples.
type deltaTracker struct {
	prev         map[string]fnCum
	prevRecords  int
	prevSwitches int
	prevEnd      sim.Time
	prevIdle     sim.Time
	started      bool
}

func newDeltaTracker() *deltaTracker {
	return &deltaTracker{prev: make(map[string]fnCum, 64)}
}

// cut snapshots the reconstruction at a segment boundary and returns the
// delta since the previous cut. Context-switcher pseudo-functions are
// excluded from Fns — their time is the Idle counter.
func (t *deltaTracker) cut(rc *analyze.Reconstructor, machine, seq int, seg RawSegment) *Sample {
	s := &Sample{
		Machine:   machine,
		Seq:       seq,
		DrainedAt: seg.DrainedAt,
		Dropped:   seg.Dropped,
		Fns:       make(map[string]FnDelta, 16),
	}
	c := rc.Snapshot(func(f *analyze.FnStat) {
		if f.CtxSwitch {
			return
		}
		old := t.prev[f.Name]
		if f.Calls != old.calls || f.Net != old.net {
			s.Fns[f.Name] = FnDelta{Calls: f.Calls - old.calls, Net: f.Net - old.net}
			t.prev[f.Name] = fnCum{calls: f.Calls, net: f.Net}
		}
	})
	t.applyCounters(s, c.Records, c.Switches, c.Start, c.End, c.Idle)
	return s
}

func (t *deltaTracker) applyCounters(s *Sample, records, switches int, start, end, idle sim.Time) {
	if !t.started {
		// The machine's timeline starts at its first record, not at 0.
		t.prevEnd = start
		t.started = true
	}
	s.Records = records - t.prevRecords
	s.Switches = switches - t.prevSwitches
	s.Elapsed = end - t.prevEnd
	s.Idle = idle - t.prevIdle
	t.prevRecords, t.prevSwitches, t.prevEnd, t.prevIdle = records, switches, end, idle
}

// foldResidual folds the post-Finish residual — frames the reconstruction
// force-closed at end of stream, plus any repair-arbitration record the
// decoder was still holding — into the held-back final sample, so the
// stream's samples account for the full reconstruction exactly.
func (t *deltaTracker) foldResidual(held *Sample, a *analyze.Analysis) {
	for _, f := range a.Functions() {
		if f.CtxSwitch {
			continue
		}
		old := t.prev[f.Name]
		if f.Calls != old.calls || f.Net != old.net {
			d := held.Fns[f.Name]
			d.Calls += f.Calls - old.calls
			d.Net += f.Net - old.net
			held.Fns[f.Name] = d
			t.prev[f.Name] = fnCum{calls: f.Calls, net: f.Net}
		}
	}
	if !t.started {
		return
	}
	held.Records += a.Stats.Records - t.prevRecords
	held.Switches += a.Switches - t.prevSwitches
	held.Elapsed += a.End - t.prevEnd
	held.Idle += a.Idle - t.prevIdle
}

// Ingest is a running set of per-machine ingest workers feeding one
// staging store.
type Ingest struct {
	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
}

// StartIngest launches one ingest worker per source. Each worker decodes
// its machine's stream through a dedicated streaming Reconstructor,
// condenses every segment into a Sample, and appends it to the store —
// blocking when the store is full, which is the backpressure path back
// into the machine's drain loop for live sources. A worker that fails
// marks the store failed so projection workers and sibling appends do not
// wait forever.
func StartIngest(st *Store, sources []Source) *Ingest {
	ing := &Ingest{}
	for _, src := range sources {
		src := src
		ing.wg.Add(1)
		go func() {
			defer ing.wg.Done()
			if err := ingestOne(st, src); err != nil {
				ing.mu.Lock()
				if ing.firstErr == nil {
					ing.firstErr = err
				}
				ing.mu.Unlock()
				st.Fail(err)
			}
		}()
	}
	return ing
}

// Wait blocks until every ingest worker has finished and returns the
// first worker error, if any.
func (ing *Ingest) Wait() error {
	ing.wg.Wait()
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.firstErr
}

// ingestOne runs one machine's ingest worker. Samples are appended with a
// one-segment lag (the previous sample goes to the store when the next
// segment arrives) so the stream's final sample can absorb the
// reconstruction's end-of-stream residual before it is staged — once
// staged, a sample is immutable.
func ingestOne(st *Store, src Source) error {
	cfg, tags, err := src.Open()
	if err != nil {
		return err
	}
	rc := analyze.NewReconstructor(cfg, tags, analyze.ReconstructOptions{
		DiscardEvents: true,
		DiscardTrace:  true,
		Repair:        analyze.DefaultRepair(),
	})
	t := newDeltaTracker()
	var held *Sample
	seq := 0
	runErr := src.Run(func(seg RawSegment) error {
		rc.PushBatch(seg.Records)
		rc.EndSegment(seg.Dropped, seg.Overflowed)
		s := t.cut(rc, src.ID(), seq, seg)
		seq++
		if held != nil {
			if err := st.Append(held); err != nil {
				return err
			}
		}
		held = s
		return nil
	})
	if runErr != nil {
		return fmt.Errorf("fleet: machine %d: ingest: %w", src.ID(), runErr)
	}
	a := rc.Finish(false, 0)
	if held != nil {
		t.foldResidual(held, a)
		if err := st.Append(held); err != nil {
			return err
		}
	}
	st.MachineDone(src.ID())
	return nil
}
