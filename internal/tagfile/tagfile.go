// Package tagfile implements the profiler's name/tag file: the text file
// that maps kernel function names to event-tag values, shared between the
// instrumenting compiler and the analysis software.
//
// The format is one entry per line, "name/value" with optional trailing
// modifier characters, exactly as the paper shows:
//
//	main/502
//	hardclock/510
//	swtch/600!
//	MGET/1002=
//
// A function entry's tag is an even number; the function's exit trigger is
// tag+1, so each function occupies a pair of tag values. The '!' modifier
// marks a function that performs a processor context switch (swtch), which
// the analysis software must treat specially; '=' marks an inline tag, a
// single trigger placed inside a function rather than an entry/exit pair.
//
// The compiler extends the file automatically: a function not yet listed is
// assigned the next available even value above the current highest. A file
// may therefore be started from scratch with a single dummy entry that fixes
// the starting tag number. Multiple files may be concatenated (Merge) to
// cover a kernel built from separately instrumented module groups.
package tagfile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MaxTag is the largest tag the hardware's 16 tag lines can carry.
const MaxTag = 1<<16 - 1

// Entry is one line of the file.
type Entry struct {
	Name          string
	Tag           uint16
	Inline        bool // '=' modifier: a single inline trigger
	ContextSwitch bool // '!' modifier: the analysis splits code paths here
}

// ExitTag reports the tag of the function's exit trigger. It panics for
// inline entries, which have no exit.
func (e Entry) ExitTag() uint16 {
	if e.Inline {
		panic("tagfile: inline entry has no exit tag")
	}
	return e.Tag + 1
}

// String formats the entry as a file line.
func (e Entry) String() string {
	var mods string
	if e.ContextSwitch {
		mods += "!"
	}
	if e.Inline {
		mods += "="
	}
	return fmt.Sprintf("%s/%d%s", e.Name, e.Tag, mods)
}

// File is a parsed name/tag file. Entries keep their file order; lookups by
// name and by tag are indexed.
type File struct {
	entries []Entry
	byName  map[string]int
	byTag   map[uint16]int // function entry tag or inline tag -> entry index

	// resolved is the dense tag-resolution table built lazily by
	// ResolveIndex and invalidated by every mutation: one slot per tag
	// value in [resolvedLo, resolvedLo+len), classifying the tag and
	// naming its entry. Tag files are contiguous in practice (assignment
	// packs pairs upward from the base), so the table stays small and a
	// decode resolves each record with one bounds check instead of one or
	// two map probes.
	resolved   []resolvedSlot
	resolvedLo uint32
}

// resolvedSlot is one entry of the dense resolution table. It carries the
// entry's name and context-switch flag alongside the classification so the
// decode hot path reads everything it needs in a single table load, with no
// second lookup into the entries slice.
type resolvedSlot struct {
	idx  int32 // index into entries, -1 for unused tag values
	kind uint8 // EventKind
	ctx  bool  // the entry's ContextSwitch flag
	name string
}

// New returns an empty file. The first Assign call on an empty file starts
// at tag 500, matching the paper's convention of leaving low tag values for
// manual use; use NewStartingAt to pick a different base.
func New() *File {
	// Presized for a full machine's symbol table (~100 functions plus
	// inlines), so repeated boots don't regrow the maps entry by entry.
	const sizeHint = 160
	return &File{
		byName:  make(map[string]int, sizeHint),
		byTag:   make(map[uint16]int, sizeHint),
		entries: make([]Entry, 0, sizeHint),
	}
}

// NewStartingAt returns a file seeded with a dummy entry that fixes the
// first automatically assigned tag, the way a from-scratch file is begun.
func NewStartingAt(firstTag uint16) (*File, error) {
	f := New()
	if firstTag < 2 {
		return nil, fmt.Errorf("tagfile: starting tag %d too small", firstTag)
	}
	// The dummy occupies the pair just below firstTag.
	if err := f.add(Entry{Name: "__dummy__", Tag: firstTag - 2}); err != nil {
		return nil, err
	}
	return f, nil
}

// defaultFirstTag is where assignment starts on a completely empty file.
const defaultFirstTag = 500

// Len reports the number of entries.
func (f *File) Len() int { return len(f.entries) }

// Entries returns a copy of the entries in file order.
func (f *File) Entries() []Entry {
	out := make([]Entry, len(f.entries))
	copy(out, f.entries)
	return out
}

// Lookup finds an entry by function name.
func (f *File) Lookup(name string) (Entry, bool) {
	i, ok := f.byName[name]
	if !ok {
		return Entry{}, false
	}
	return f.entries[i], true
}

// occupied reports whether tag value v is already in use, counting the
// exit tag (pair partner) of function entries.
func (f *File) occupied(v uint16) bool {
	if _, ok := f.byTag[v]; ok {
		return true
	}
	// v may be the exit tag of a function whose entry tag is v-1.
	if v >= 1 {
		if i, ok := f.byTag[v-1]; ok && !f.entries[i].Inline {
			return true
		}
	}
	return false
}

func (f *File) add(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("tagfile: empty name")
	}
	if strings.ContainsAny(e.Name, "/ \t\n!=") {
		return fmt.Errorf("tagfile: invalid character in name %q", e.Name)
	}
	if _, dup := f.byName[e.Name]; dup {
		return fmt.Errorf("tagfile: duplicate name %q", e.Name)
	}
	if !e.Inline {
		if e.Tag%2 != 0 {
			return fmt.Errorf("tagfile: function %q has odd tag %d (entry tags must be even)", e.Name, e.Tag)
		}
		if e.Tag > MaxTag-1 {
			return fmt.Errorf("tagfile: function %q tag %d leaves no room for exit tag", e.Name, e.Tag)
		}
		if f.occupied(e.Tag) || f.occupied(e.Tag+1) {
			return fmt.Errorf("tagfile: function %q tags %d/%d collide with an existing entry", e.Name, e.Tag, e.Tag+1)
		}
	} else {
		if e.ContextSwitch {
			return fmt.Errorf("tagfile: inline tag %q cannot carry the context-switch modifier", e.Name)
		}
		if f.occupied(e.Tag) {
			return fmt.Errorf("tagfile: inline %q tag %d collides with an existing entry", e.Name, e.Tag)
		}
	}
	f.byName[e.Name] = len(f.entries)
	f.byTag[e.Tag] = len(f.entries)
	f.entries = append(f.entries, e)
	f.resolved = nil
	return nil
}

// Add inserts an explicit entry, validating tag pairing and collisions.
// It is how manually allocated inline and assembler tags enter the file.
func (f *File) Add(e Entry) error { return f.add(e) }

// NextTag reports the next even tag value automatic assignment would use:
// the smallest even value above every tag currently in the file.
func (f *File) NextTag() uint16 {
	// Widened arithmetic: an entry at the top of the tag space would wrap
	// top+1 past uint16 and restart assignment at 0.
	next := int(defaultFirstTag)
	for _, e := range f.entries {
		top := int(e.Tag)
		if !e.Inline {
			top++
		}
		if top >= next {
			next = top + 1
		}
	}
	if next%2 != 0 {
		next++
	}
	if next > MaxTag {
		// MaxTag is odd, so it can never be a legal entry tag: both assign
		// paths read it as "space exhausted".
		next = MaxTag
	}
	return uint16(next)
}

// PairsRemaining reports how many entry/exit tag pairs automatic
// assignment can still fit below MaxTag — the tag budget an
// instrumentation plan has left to spend. Because assignment is
// append-only (NextTag never reuses holes), the remaining capacity is
// exactly the pairs between NextTag and the top of the tag space.
func (f *File) PairsRemaining() int {
	next := f.NextTag()
	if next > MaxTag-1 {
		return 0
	}
	return int(MaxTag-1-next)/2 + 1
}

// Assign returns the existing entry for name, or extends the file with the
// next available even tag pair — the compiler's behaviour when it meets a
// function not yet listed. Reassigned compilations therefore keep stable
// tags.
func (f *File) Assign(name string) (Entry, error) {
	if e, ok := f.Lookup(name); ok {
		return e, nil
	}
	tag := f.NextTag()
	if tag > MaxTag-1 {
		return Entry{}, fmt.Errorf("tagfile: tag space exhausted assigning %q", name)
	}
	e := Entry{Name: name, Tag: tag}
	if err := f.add(e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// AssignInline returns the existing inline entry for name, or extends the
// file with a new inline tag.
func (f *File) AssignInline(name string) (Entry, error) {
	if e, ok := f.Lookup(name); ok {
		if !e.Inline {
			return Entry{}, fmt.Errorf("tagfile: %q already assigned as a function", name)
		}
		return e, nil
	}
	tag := f.NextTag()
	if tag > MaxTag {
		return Entry{}, fmt.Errorf("tagfile: tag space exhausted assigning inline %q", name)
	}
	e := Entry{Name: name, Tag: tag, Inline: true}
	if err := f.add(e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// MarkContextSwitch sets the '!' modifier on an existing function entry.
func (f *File) MarkContextSwitch(name string) error {
	i, ok := f.byName[name]
	if !ok {
		return fmt.Errorf("tagfile: no entry %q", name)
	}
	if f.entries[i].Inline {
		return fmt.Errorf("tagfile: %q is an inline tag, not a function", name)
	}
	f.entries[i].ContextSwitch = true
	f.resolved = nil
	return nil
}

// EventKind classifies what a raw hardware tag meant.
type EventKind int

const (
	// UnknownTag is a tag with no entry in the file.
	UnknownTag EventKind = iota
	// FunctionEntry is the even tag of a listed function.
	FunctionEntry
	// FunctionExit is entry tag + 1.
	FunctionExit
	// InlineTag is a '=' single trigger.
	InlineTag
)

// Resolve classifies a raw tag from the capture and returns the entry it
// belongs to.
func (f *File) Resolve(tag uint16) (Entry, EventKind) {
	i, kind := f.ResolveIndex(tag)
	if i < 0 {
		return Entry{}, UnknownTag
	}
	return f.entries[i], kind
}

// ResolveIndex classifies a raw tag and returns the index of its entry in
// file order, or -1 for a tag the file does not list. It is the decode hot
// path: one bounds-checked table load per record, against Resolve's one or
// two map probes, and the index lets downstream consumers key per-function
// state by a small dense integer instead of hashing the name.
func (f *File) ResolveIndex(tag uint16) (int32, EventKind) {
	if f.resolved == nil {
		f.buildResolved()
	}
	t := uint32(tag) - f.resolvedLo // wraps below-range tags out of bounds
	if t >= uint32(len(f.resolved)) {
		return -1, UnknownTag
	}
	s := f.resolved[t]
	return s.idx, EventKind(s.kind)
}

// EntryAt returns the entry at a ResolveIndex result. It panics on a
// negative (UnknownTag) index.
func (f *File) EntryAt(i int32) Entry { return f.entries[i] }

// ResolveRecord classifies a raw tag and returns its entry index, kind,
// name and context-switch flag in one dense-table load. It is what the
// record decoder uses: everything an event needs without copying the Entry.
func (f *File) ResolveRecord(tag uint16) (idx int32, kind EventKind, name string, ctxSwitch bool) {
	if f.resolved == nil {
		f.buildResolved()
	}
	t := uint32(tag) - f.resolvedLo // wraps below-range tags out of bounds
	if t >= uint32(len(f.resolved)) {
		return -1, UnknownTag, "", false
	}
	s := &f.resolved[t]
	return s.idx, EventKind(s.kind), s.name, s.ctx
}

// buildResolved materializes the dense resolution table over the file's
// occupied tag range (entry and exit tags included).
func (f *File) buildResolved() {
	lo, hi := uint32(MaxTag), uint32(0)
	for _, e := range f.entries {
		t := uint32(e.Tag)
		top := t
		if !e.Inline {
			top = t + 1
		}
		if t < lo {
			lo = t
		}
		if top > hi {
			hi = top
		}
	}
	if len(f.entries) == 0 {
		f.resolved, f.resolvedLo = make([]resolvedSlot, 0), 0
		return
	}
	tbl := make([]resolvedSlot, hi-lo+1)
	for i := range tbl {
		tbl[i].idx = -1
	}
	for i, e := range f.entries {
		t := uint32(e.Tag) - lo
		if e.Inline {
			tbl[t] = resolvedSlot{idx: int32(i), kind: uint8(InlineTag), name: e.Name}
		} else {
			tbl[t] = resolvedSlot{idx: int32(i), kind: uint8(FunctionEntry), name: e.Name, ctx: e.ContextSwitch}
			tbl[t+1] = resolvedSlot{idx: int32(i), kind: uint8(FunctionExit), name: e.Name, ctx: e.ContextSwitch}
		}
	}
	f.resolved, f.resolvedLo = tbl, lo
}

// Merge concatenates other into f, the way multiple per-module-group files
// are combined into the complete list for analysis. Identical duplicate
// lines are tolerated; conflicting ones are errors.
func (f *File) Merge(other *File) error {
	for _, e := range other.entries {
		if have, ok := f.Lookup(e.Name); ok {
			if have.Tag != e.Tag || have.Inline != e.Inline {
				return fmt.Errorf("tagfile: conflicting entries for %q: %v vs %v", e.Name, have, e)
			}
			if e.ContextSwitch && !have.ContextSwitch {
				f.entries[f.byName[e.Name]].ContextSwitch = true
				f.resolved = nil
			}
			continue
		}
		if err := f.add(e); err != nil {
			return fmt.Errorf("tagfile: merging: %w", err)
		}
	}
	return nil
}

// Parse reads a name/tag file. Blank lines and lines starting with '#' are
// ignored.
func Parse(r io.Reader) (*File, error) {
	f := New()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("tagfile: line %d: %w", lineno, err)
		}
		if err := f.add(e); err != nil {
			return nil, fmt.Errorf("tagfile: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tagfile: %w", err)
	}
	return f, nil
}

// ParseString parses a file held in a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

func parseLine(line string) (Entry, error) {
	slash := strings.LastIndexByte(line, '/')
	if slash < 0 {
		return Entry{}, fmt.Errorf("missing '/' in %q", line)
	}
	name := line[:slash]
	rest := line[slash+1:]
	var e Entry
	e.Name = name
	for len(rest) > 0 {
		switch rest[len(rest)-1] {
		case '!':
			e.ContextSwitch = true
			rest = rest[:len(rest)-1]
			continue
		case '=':
			e.Inline = true
			rest = rest[:len(rest)-1]
			continue
		}
		break
	}
	v, err := strconv.ParseUint(rest, 10, 16)
	if err != nil {
		return Entry{}, fmt.Errorf("bad tag value in %q: %v", line, err)
	}
	e.Tag = uint16(v)
	return e, nil
}

// Format writes the file in its text form, entries in file order.
func (f *File) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range f.entries {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders the file as text.
func (f *File) String() string {
	var b strings.Builder
	_ = f.Format(&b)
	return b.String()
}

// Functions returns the non-inline entries sorted by tag, excluding the
// dummy placeholder; useful for reports.
func (f *File) Functions() []Entry {
	var out []Entry
	for _, e := range f.entries {
		if !e.Inline && e.Name != "__dummy__" {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}
