package tagfile

import (
	"strings"
	"testing"
	"testing/quick"
)

// The sample from the paper, verbatim.
const paperSample = `main/502
hardclock/510
gatherstats/512
softclock/514
timeout/516
untimeout/518
swtch/600!
MGET/1002=
`

func TestParsePaperSample(t *testing.T) {
	f, err := ParseString(paperSample)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 8 {
		t.Fatalf("Len = %d", f.Len())
	}
	main, ok := f.Lookup("main")
	if !ok || main.Tag != 502 || main.Inline || main.ContextSwitch {
		t.Fatalf("main = %+v ok=%v", main, ok)
	}
	swtch, ok := f.Lookup("swtch")
	if !ok || swtch.Tag != 600 || !swtch.ContextSwitch || swtch.Inline {
		t.Fatalf("swtch = %+v", swtch)
	}
	mget, ok := f.Lookup("MGET")
	if !ok || mget.Tag != 1002 || !mget.Inline {
		t.Fatalf("MGET = %+v", mget)
	}
	if got := swtch.ExitTag(); got != 601 {
		t.Fatalf("swtch exit tag = %d", got)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f, err := ParseString(paperSample)
	if err != nil {
		t.Fatal(err)
	}
	text := f.String()
	if text != paperSample {
		t.Fatalf("format round trip:\n%s\nwant:\n%s", text, paperSample)
	}
	f2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != f.Len() {
		t.Fatalf("reparse Len = %d", f2.Len())
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	f, err := ParseString("# header\n\nmain/502\n   \n# trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"noslash",
		"f/notanumber",
		"f/99999999",    // out of uint16 range
		"f/501",         // odd function tag
		"a/500\na/502",  // duplicate name
		"a/500\nb/500",  // duplicate tag
		"a/500\nb/501=", // inline collides with a's exit tag
		"a/500\nb/499=", // inline collides below? 499 is free; craft real overlap:
	}
	// the last line above is actually legal; replace with a genuine case
	bad[len(bad)-1] = "a/500=\nb/500"
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestInlineBelowFunctionIsLegal(t *testing.T) {
	if _, err := ParseString("a/500\nb/499="); err != nil {
		t.Fatalf("inline at 499 should not collide with function 500/501: %v", err)
	}
}

func TestAssignExtendsWithNextEvenPair(t *testing.T) {
	f, err := ParseString(paperSample)
	if err != nil {
		t.Fatal(err)
	}
	// Highest used value is inline 1002, so next even is 1004.
	e, err := f.Assign("newfunc")
	if err != nil {
		t.Fatal(err)
	}
	if e.Tag != 1004 {
		t.Fatalf("assigned tag = %d, want 1004", e.Tag)
	}
	// Reassignment is stable.
	e2, err := f.Assign("newfunc")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tag != e.Tag {
		t.Fatalf("reassign changed tag: %d -> %d", e.Tag, e2.Tag)
	}
	// Next one continues.
	e3, err := f.Assign("another")
	if err != nil {
		t.Fatal(err)
	}
	if e3.Tag != 1006 {
		t.Fatalf("second assign tag = %d, want 1006", e3.Tag)
	}
}

func TestNewStartingAtDummy(t *testing.T) {
	f, err := NewStartingAt(500)
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.Assign("first")
	if err != nil {
		t.Fatal(err)
	}
	if e.Tag != 500 {
		t.Fatalf("first assigned tag = %d, want 500", e.Tag)
	}
	if _, err := NewStartingAt(1); err == nil {
		t.Fatal("NewStartingAt(1) should fail")
	}
}

func TestAssignOnEmptyFileUsesDefaultBase(t *testing.T) {
	f := New()
	e, err := f.Assign("first")
	if err != nil {
		t.Fatal(err)
	}
	if e.Tag != 500 {
		t.Fatalf("tag = %d, want default base 500", e.Tag)
	}
}

func TestAssignInline(t *testing.T) {
	f := New()
	if _, err := f.Assign("fn"); err != nil {
		t.Fatal(err)
	}
	e, err := f.AssignInline("marker")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Inline || e.Tag != 502 {
		t.Fatalf("inline = %+v", e)
	}
	if _, err := f.AssignInline("fn"); err == nil {
		t.Fatal("AssignInline on a function name should fail")
	}
	e2, err := f.AssignInline("marker")
	if err != nil || e2.Tag != e.Tag {
		t.Fatalf("inline reassign: %+v, %v", e2, err)
	}
}

func TestMarkContextSwitch(t *testing.T) {
	f := New()
	if _, err := f.Assign("swtch"); err != nil {
		t.Fatal(err)
	}
	if err := f.MarkContextSwitch("swtch"); err != nil {
		t.Fatal(err)
	}
	e, _ := f.Lookup("swtch")
	if !e.ContextSwitch {
		t.Fatal("modifier not set")
	}
	if err := f.MarkContextSwitch("nosuch"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if _, err := f.AssignInline("m"); err != nil {
		t.Fatal(err)
	}
	if err := f.MarkContextSwitch("m"); err == nil {
		t.Fatal("expected error marking an inline tag")
	}
}

func TestResolve(t *testing.T) {
	f, err := ParseString(paperSample)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tag  uint16
		name string
		kind EventKind
	}{
		{502, "main", FunctionEntry},
		{503, "main", FunctionExit},
		{600, "swtch", FunctionEntry},
		{601, "swtch", FunctionExit},
		{1002, "MGET", InlineTag},
		{1003, "", UnknownTag}, // inline has no exit pair
		{9999, "", UnknownTag},
	}
	for _, c := range cases {
		e, kind := f.Resolve(c.tag)
		if kind != c.kind || e.Name != c.name {
			t.Errorf("Resolve(%d) = %q,%v; want %q,%v", c.tag, e.Name, kind, c.name, c.kind)
		}
	}
}

func TestMergeConcatenatesModuleFiles(t *testing.T) {
	a, _ := ParseString("main/502\nswtch/600!")
	b, _ := ParseString("ipintr/700\ntcp_input/702")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	if _, ok := a.Lookup("tcp_input"); !ok {
		t.Fatal("merged entry missing")
	}
	// Identical duplicates tolerated; modifier unioned.
	c, _ := ParseString("main/502\nswtch/600")
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	// Conflicts rejected.
	d, _ := ParseString("main/800")
	if err := a.Merge(d); err == nil {
		t.Fatal("conflicting merge should fail")
	}
}

func TestMergePreservesContextSwitchFromEitherSide(t *testing.T) {
	a, _ := ParseString("swtch/600")
	b, _ := ParseString("swtch/600!")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	e, _ := a.Lookup("swtch")
	if !e.ContextSwitch {
		t.Fatal("modifier lost in merge")
	}
}

func TestFunctionsSortedAndFiltered(t *testing.T) {
	f, _ := ParseString("zed/900\nalpha/500\nm/702=\n")
	fns := f.Functions()
	if len(fns) != 2 || fns[0].Name != "alpha" || fns[1].Name != "zed" {
		t.Fatalf("Functions = %+v", fns)
	}
}

func TestAddValidation(t *testing.T) {
	f := New()
	if err := f.Add(Entry{Name: "", Tag: 500}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := f.Add(Entry{Name: "a b", Tag: 500}); err == nil {
		t.Fatal("space in name accepted")
	}
	if err := f.Add(Entry{Name: "a!", Tag: 500}); err == nil {
		t.Fatal("modifier char in name accepted")
	}
	if err := f.Add(Entry{Name: "x", Tag: MaxTag, Inline: true}); err != nil {
		t.Fatalf("inline at MaxTag should be fine: %v", err)
	}
	if err := f.Add(Entry{Name: "y", Tag: MaxTag - 1}); err == nil {
		t.Fatal("function entry at MaxTag-1 would need exit at MaxTag which is taken")
	}
	if err := f.Add(Entry{Name: "z", Tag: 700, Inline: true, ContextSwitch: true}); err == nil {
		t.Fatal("inline with '!' accepted")
	}
}

func TestExitTagPanicsForInline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Entry{Name: "m", Tag: 10, Inline: true}.ExitTag()
}

// Property: Assign never produces colliding tag pairs and Resolve is the
// inverse of assignment for both entry and exit tags.
func TestAssignResolveProperty(t *testing.T) {
	prop := func(nameSeeds []uint8) bool {
		f := New()
		seen := map[string]bool{}
		for i, s := range nameSeeds {
			if i > 50 {
				break
			}
			name := "fn" + strings.Repeat("x", int(s%5)) + string(rune('a'+s%26))
			if seen[name] {
				continue
			}
			seen[name] = true
			e, err := f.Assign(name)
			if err != nil {
				return false
			}
			if ent, kind := f.Resolve(e.Tag); kind != FunctionEntry || ent.Name != name {
				return false
			}
			if ent, kind := f.Resolve(e.ExitTag()); kind != FunctionExit || ent.Name != name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: parse(format(f)) == f for files built by assignment.
func TestParseFormatRoundTripProperty(t *testing.T) {
	prop := func(n uint8, inlineEvery uint8) bool {
		f := New()
		count := int(n%40) + 1
		step := int(inlineEvery%4) + 2
		for i := 0; i < count; i++ {
			name := "f" + strings.Repeat("q", i%3) + string(rune('a'+i%26)) + string(rune('a'+i/26))
			var err error
			if i%step == 0 {
				_, err = f.AssignInline(name)
			} else {
				_, err = f.Assign(name)
			}
			if err != nil {
				return false
			}
		}
		g, err := ParseString(f.String())
		if err != nil || g.Len() != f.Len() {
			return false
		}
		for _, e := range f.Entries() {
			ge, ok := g.Lookup(e.Name)
			if !ok || ge != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPairsRemaining(t *testing.T) {
	f := New()
	// Empty file: pairs from the default base 500 up to the 65534/65535
	// pair inclusive.
	want := (int(MaxTag)-1-500)/2 + 1
	if got := f.PairsRemaining(); got != want {
		t.Fatalf("empty file PairsRemaining = %d, want %d", got, want)
	}
	// Every assignment spends exactly one pair.
	for i, name := range []string{"a", "b", "c"} {
		if _, err := f.Assign(name); err != nil {
			t.Fatal(err)
		}
		if got := f.PairsRemaining(); got != want-1-i {
			t.Fatalf("after %d assigns PairsRemaining = %d, want %d", i+1, got, want-1-i)
		}
	}
}

func TestPairsRemainingAtTopOfTagSpace(t *testing.T) {
	f, err := NewStartingAt(MaxTag - 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.PairsRemaining(); got != 1 {
		t.Fatalf("one pair left, PairsRemaining = %d", got)
	}
	e, err := f.Assign("last")
	if err != nil {
		t.Fatal(err)
	}
	if e.Tag != MaxTag-1 {
		t.Fatalf("last pair tag = %d", e.Tag)
	}
	// The space is now full: no wraparound back to low tags.
	if got := f.PairsRemaining(); got != 0 {
		t.Fatalf("full file PairsRemaining = %d", got)
	}
	if next := f.NextTag(); next != MaxTag {
		t.Fatalf("NextTag on full file = %d, want the MaxTag sentinel", next)
	}
	if _, err := f.Assign("overflow"); err == nil {
		t.Fatal("assignment past the top of the tag space succeeded")
	}
}
