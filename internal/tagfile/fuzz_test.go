package tagfile

import "testing"

// The name/tag file parser faces hand-edited text files: arbitrary input
// must never panic, and accepted files must round-trip through Format.
func FuzzParse(f *testing.F) {
	f.Add("main/502\nswtch/600!\nMGET/1002=\n")
	f.Add("# comment\n\nf/500")
	f.Add("broken")
	f.Add("f/")
	f.Fuzz(func(t *testing.T, text string) {
		file, err := ParseString(text)
		if err != nil {
			return
		}
		again, err := ParseString(file.String())
		if err != nil {
			t.Fatalf("re-parse of accepted file failed: %v", err)
		}
		if again.Len() != file.Len() {
			t.Fatalf("round trip changed entry count: %d != %d", again.Len(), file.Len())
		}
		for _, e := range file.Entries() {
			ge, ok := again.Lookup(e.Name)
			if !ok || ge != e {
				t.Fatalf("entry %v lost in round trip", e)
			}
		}
	})
}
