package hw

// EPROMSocket models the card's connection to the machine under test: a
// piggy-back plug in a standard JEDEC EPROM socket. Only 18 signals reach
// the card — 16 address lines plus ChipEnable and OutputEnable — so the
// event tag is simply the low 16 bits of the address of any read performed
// inside the EPROM's 64 KiB window.
//
// On the 386BSD target the window sits somewhere in ISA memory space
// (0xA0000–0x100000) and, after the kernel remaps ISA space into kernel
// virtual addresses, its virtual base (the paper's _ProfileBase) depends on
// the kernel size; the instrument package reproduces that two-stage link.
type EPROMSocket struct {
	base uint32 // physical base address of the EPROM window
	card *Profiler
}

// WindowSize is the address span of the socket: 16 address lines.
const WindowSize = 1 << 16

// NewEPROMSocket plugs card into a socket decoded at physical address base.
func NewEPROMSocket(base uint32, card *Profiler) *EPROMSocket {
	if card == nil {
		panic("hw: nil profiler card")
	}
	return &EPROMSocket{base: base, card: card}
}

// Base reports the physical base address the socket is decoded at.
func (s *EPROMSocket) Base() uint32 { return s.base }

// Contains reports whether addr falls inside the socket's window.
func (s *EPROMSocket) Contains(addr uint32) bool {
	return addr >= s.base && addr-s.base < WindowSize
}

// Read models a CPU read with ChipEnable and OutputEnable asserted at addr.
// Reads inside the window latch an event; reads elsewhere are ignored (the
// decode logic never selects the card). The data returned is meaningless —
// the kernel's trigger instruction discards it — so Read returns 0xFF as an
// unprogrammed EPROM would. In readout mode (the future-work fast-dump
// design) in-window reads return the selected RAM bank's bytes instead.
func (s *EPROMSocket) Read(addr uint32) byte {
	if !s.Contains(addr) {
		return 0xFF
	}
	if s.card.InReadout() {
		return s.card.readoutByte(addr - s.base)
	}
	s.card.Latch(uint16(addr - s.base))
	return 0xFF
}
