package hw

import (
	"bytes"
	"testing"
)

// The capture reader faces files from disk: arbitrary bytes must never
// panic, and accepted captures must round-trip.
func FuzzReadCapture(f *testing.F) {
	var buf bytes.Buffer
	c := Capture{Records: []Record{{502, 100}, {503, 250}}, Overflowed: true, Dropped: 3}
	c.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("KPROFRAW garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCapture(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCapture(&out)
		if err != nil {
			t.Fatalf("re-read of accepted capture failed: %v", err)
		}
		if back.Len() != got.Len() || back.Overflowed != got.Overflowed || back.Dropped != got.Dropped {
			t.Fatal("round trip changed the capture")
		}
	})
}
