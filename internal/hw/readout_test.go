package hw

import (
	"testing"

	"kprof/internal/sim"
)

// Arming the card during readout must be ignored: the mode line gates the
// latch path, because an address strobe while the RAM is multiplexed onto
// the window would corrupt the capture being read.
func TestArmIsNoOpDuringReadout(t *testing.T) {
	s, p := newTestCard(8)
	p.Arm()
	s.AdvanceTo(10 * sim.Microsecond)
	p.Latch(500)
	p.EnterReadout()
	if p.Armed() {
		t.Fatal("EnterReadout left the card armed")
	}
	p.Arm()
	if p.Armed() {
		t.Fatal("Arm during readout re-enabled latching")
	}
	p.Latch(502)
	if p.Stored() != 1 {
		t.Fatalf("strobe during readout stored a record: %d stored", p.Stored())
	}
	if p.Dropped != 1 {
		t.Fatalf("strobe during readout not counted dropped: %d", p.Dropped)
	}
	p.ExitReadout()
	// Back in normal mode the switch works again.
	p.Arm()
	if !p.Armed() {
		t.Fatal("Arm after ExitReadout did not arm")
	}
	p.Latch(504)
	if p.Stored() != 2 {
		t.Fatalf("latch after readout stored %d records, want 2", p.Stored())
	}
}

// Reset must clear readout-mode state: a card reset mid-readout comes back
// in normal mode with bank 0 selected, not half-way into a stale readout.
func TestResetClearsReadoutState(t *testing.T) {
	s, p := newTestCard(8)
	p.Arm()
	s.AdvanceTo(3 * sim.Microsecond)
	p.Latch(500)
	p.EnterReadout()
	p.SelectBank(3)
	p.Reset()
	if p.InReadout() {
		t.Fatal("Reset left the card in readout mode")
	}
	if p.readout.bank != 0 {
		t.Fatalf("Reset left bank %d selected", p.readout.bank)
	}
	// A fresh capture works immediately after the reset.
	p.Arm()
	p.Latch(502)
	if p.Stored() != 1 || p.Dropped != 0 {
		t.Fatalf("capture after mid-readout reset: stored=%d dropped=%d", p.Stored(), p.Dropped)
	}
}

// A socket read during readout must serve RAM bytes without latching, and
// the drain cycle readout -> reset -> arm must leave a clean card.
func TestDrainCycleLeavesCleanCard(t *testing.T) {
	s, p := newTestCard(4)
	sock := NewEPROMSocket(0xD0000, p)
	p.Arm()
	for i := 0; i < 6; i++ { // overfill: 4 stored, 2 dropped
		s.AdvanceTo(sim.Time(i+1) * sim.Microsecond)
		sock.Read(0xD0000 + uint32(500+2*i))
	}
	if !p.Overflowed() || p.Dropped != 2 {
		t.Fatalf("overfill: overflowed=%v dropped=%d", p.Overflowed(), p.Dropped)
	}
	c, err := ReadoutViaSocket(sock, -1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 || c.Dropped != 2 || !c.Overflowed {
		t.Fatalf("drained capture: len=%d dropped=%d overflowed=%v", c.Len(), c.Dropped, c.Overflowed)
	}
	p.Reset()
	p.Arm()
	s.AdvanceTo(20 * sim.Microsecond)
	sock.Read(0xD0000 + 500)
	if p.Stored() != 1 || p.Dropped != 0 || p.Overflowed() {
		t.Fatalf("card not clean after drain cycle: stored=%d dropped=%d overflowed=%v",
			p.Stored(), p.Dropped, p.Overflowed())
	}
}
