package hw

import (
	"errors"
	"fmt"
)

// Fast capture readout through the EPROM socket — the paper's future-work
// plan for eliminating the pull-the-RAMs step: "once the Profiler has been
// used to collect the data, each of the storage RAMs in turn can be
// multiplexed into the EPROM address space, and the data can be read as if
// it were an EPROM. This would allow fast turnaround for processing the
// Profiler data."
//
// In readout mode the card stops latching (an address strobe would corrupt
// the capture otherwise) and instead drives the selected RAM bank's bytes
// onto the data lines for reads inside the window.

// readout state lives on the Profiler.
type readoutState struct {
	active bool
	bank   int
}

// EnterReadout switches the card to readout mode, disarming capture.
func (p *Profiler) EnterReadout() {
	p.armed = false
	p.readout.active = true
	p.readout.bank = 0
}

// ExitReadout returns the card to normal (latching) operation.
func (p *Profiler) ExitReadout() { p.readout.active = false }

// InReadout reports whether the card is multiplexing RAM onto the window.
func (p *Profiler) InReadout() bool { return p.readout.active }

// SelectBank multiplexes RAM chip bank (0..NumBanks-1) into the window.
func (p *Profiler) SelectBank(bank int) {
	if bank < 0 || bank >= NumBanks {
		panic(fmt.Sprintf("hw: bank %d out of range", bank))
	}
	p.readout.bank = bank
}

// readoutByte serves an in-window read during readout: offset indexes the
// selected bank's record bytes; past the stored count the unwritten RAM
// reads as 0xFF. A fault hook sees every served byte — readout shares the
// same analog data lines capture does, so glitched polls and partial bank
// corruption land here.
func (p *Profiler) readoutByte(offset uint32) byte {
	b := byte(0xFF)
	if int(offset) < len(p.ram) {
		r := p.ram[offset]
		switch p.readout.bank {
		case 0:
			b = byte(r.Tag)
		case 1:
			b = byte(r.Tag >> 8)
		case 2:
			b = byte(r.Stamp)
		case 3:
			b = byte(r.Stamp >> 8)
		default:
			b = byte(r.Stamp >> 16)
		}
	}
	if p.fault != nil {
		b = p.fault.ReadoutByte(p.readout.bank, offset, b)
	}
	return b
}

// fillBank extracts one RAM bank's byte lane from the records, the bulk
// equivalent of readoutByte over offsets [0, len(ram)) with no fault hook:
// the bank select is hoisted out of the loop.
func fillBank(dst []byte, ram []Record, bank int) {
	switch bank {
	case 0:
		for i := range ram {
			dst[i] = byte(ram[i].Tag)
		}
	case 1:
		for i := range ram {
			dst[i] = byte(ram[i].Tag >> 8)
		}
	case 2:
		for i := range ram {
			dst[i] = byte(ram[i].Stamp)
		}
	case 3:
		for i := range ram {
			dst[i] = byte(ram[i].Stamp >> 8)
		}
	default:
		for i := range ram {
			dst[i] = byte(ram[i].Stamp >> 16)
		}
	}
}

// ErrReadoutVerify reports a readout whose open-bus verify read came back
// wrong: the bank mux or the data lines glitched while the host was dumping
// the RAM, so the bytes read cannot be trusted. The capture on the card is
// untouched (readout is non-destructive), but the host has no way to tell
// which bytes were misread — the drain that hit this must treat the whole
// bank as lost.
var ErrReadoutVerify = errors.New("readout verification failed")

// verifyOpenBus checks the bank mux after a bank dump: the first address
// past the stored count has no RAM cell driving the data lines, so it must
// read as open bus (0xFF), exactly as an unprogrammed EPROM would. A
// glitched readout — marginal mux settle, a corrupted bank select — shows
// up as a wrong sentinel. The check costs one socket read per bank and
// catches the failure modes that corrupt addressing (not every data-line
// flip; single misreads inside the bank decode as corrupt records and are
// the repair pipeline's job).
func verifyOpenBus(sock *EPROMSocket, bank int) error {
	p := sock.card
	stored := p.Stored()
	if stored >= WindowSize {
		return nil // RAM fills the window; no open-bus address to check
	}
	if got := sock.Read(sock.base + uint32(stored)); got != 0xFF {
		return fmt.Errorf("hw: bank %d open-bus sentinel read %#02x, want 0xff: %w", bank, got, ErrReadoutVerify)
	}
	return nil
}

// ReadoutBuffer is the scratch a recycling drain loop reuses across
// readouts: the five bank images and the record slice the capture decodes
// into. Ownership is strict — the Capture a readout-into returns aliases
// the buffer's record storage, so the buffer must not be reused until the
// capture's consumer is done with those records (core's pipelined drain
// returns buffers to its pool only after the background decoder has
// consumed the batch). The zero value is ready to use.
type ReadoutBuffer struct {
	banks   [NumBanks][]byte
	records []Record
}

// bank returns the scratch image for bank b sized to n bytes, reusing the
// previous readout's storage when it is big enough.
func (rb *ReadoutBuffer) bank(b, n int) []byte {
	if cap(rb.banks[b]) < n {
		rb.banks[b] = make([]byte, n)
	}
	return rb.banks[b][:n]
}

// ReadoutViaSocket performs the full fast readout: bank by bank through
// the window, reassembling the records host-side. The card is left in
// normal mode, still holding its capture. Each bank dump ends with an
// open-bus verify read; a glitched readout returns ErrReadoutVerify and
// the caller must treat the bank as unread (the capture is still intact on
// the card, but a live drain has no time to retry — see core's drain loop).
func ReadoutViaSocket(sock *EPROMSocket, count int) (Capture, error) {
	return ReadoutViaSocketInto(sock, count, nil)
}

// ReadoutViaSocketInto is ReadoutViaSocket draining into buf's storage, so
// a drain loop that recycles consumed captures reads the card out without
// allocating. A nil buf allocates fresh storage, exactly as
// ReadoutViaSocket does; see ReadoutBuffer for the aliasing contract.
func ReadoutViaSocketInto(sock *EPROMSocket, count int, buf *ReadoutBuffer) (Capture, error) {
	p := sock.card
	if count < 0 || count > p.Stored() {
		count = p.Stored()
	}
	if count > WindowSize {
		return Capture{}, fmt.Errorf("hw: %d records exceed the 64 KiB readout window", count)
	}
	p.EnterReadout()
	defer p.ExitReadout()
	var banks [NumBanks][]byte
	for b := 0; b < NumBanks; b++ {
		p.SelectBank(b)
		if buf != nil {
			banks[b] = buf.bank(b, count)
		} else {
			banks[b] = make([]byte, count)
		}
		if p.fault == nil {
			// No injector on the data lines: serve the bank straight from
			// the RAM image. Byte-for-byte what the per-read loop below
			// produces, without the per-byte window decode.
			fillBank(banks[b], p.ram[:count], b)
		} else {
			for i := 0; i < count; i++ {
				banks[b][i] = sock.Read(sock.base + uint32(i))
			}
		}
		if err := verifyOpenBus(sock, b); err != nil {
			return Capture{}, err
		}
	}
	var dst []Record
	if buf != nil {
		dst = buf.records
	}
	records, err := DecodeBanksInto(banks, dst)
	if err != nil {
		return Capture{}, err
	}
	if buf != nil {
		buf.records = records
	}
	return Capture{
		Records:    records,
		Overflowed: p.Overflowed(),
		Dropped:    p.Dropped,
		ClockHz:    p.cfg.ClockHz,
		TimerBits:  p.cfg.TimerBits,
	}, nil
}
