package hw

import "fmt"

// Fast capture readout through the EPROM socket — the paper's future-work
// plan for eliminating the pull-the-RAMs step: "once the Profiler has been
// used to collect the data, each of the storage RAMs in turn can be
// multiplexed into the EPROM address space, and the data can be read as if
// it were an EPROM. This would allow fast turnaround for processing the
// Profiler data."
//
// In readout mode the card stops latching (an address strobe would corrupt
// the capture otherwise) and instead drives the selected RAM bank's bytes
// onto the data lines for reads inside the window.

// readout state lives on the Profiler.
type readoutState struct {
	active bool
	bank   int
}

// EnterReadout switches the card to readout mode, disarming capture.
func (p *Profiler) EnterReadout() {
	p.armed = false
	p.readout.active = true
	p.readout.bank = 0
}

// ExitReadout returns the card to normal (latching) operation.
func (p *Profiler) ExitReadout() { p.readout.active = false }

// InReadout reports whether the card is multiplexing RAM onto the window.
func (p *Profiler) InReadout() bool { return p.readout.active }

// SelectBank multiplexes RAM chip bank (0..NumBanks-1) into the window.
func (p *Profiler) SelectBank(bank int) {
	if bank < 0 || bank >= NumBanks {
		panic(fmt.Sprintf("hw: bank %d out of range", bank))
	}
	p.readout.bank = bank
}

// readoutByte serves an in-window read during readout: offset indexes the
// selected bank's record bytes; past the stored count the unwritten RAM
// reads as 0xFF. A fault hook sees every served byte — readout shares the
// same analog data lines capture does, so glitched polls and partial bank
// corruption land here.
func (p *Profiler) readoutByte(offset uint32) byte {
	b := byte(0xFF)
	if int(offset) < len(p.ram) {
		r := p.ram[offset]
		switch p.readout.bank {
		case 0:
			b = byte(r.Tag)
		case 1:
			b = byte(r.Tag >> 8)
		case 2:
			b = byte(r.Stamp)
		case 3:
			b = byte(r.Stamp >> 8)
		default:
			b = byte(r.Stamp >> 16)
		}
	}
	if p.fault != nil {
		b = p.fault.ReadoutByte(p.readout.bank, offset, b)
	}
	return b
}

// ReadoutViaSocket performs the full fast readout: bank by bank through
// the window, reassembling the records host-side. The card is left in
// normal mode, still holding its capture.
func ReadoutViaSocket(sock *EPROMSocket, count int) (Capture, error) {
	p := sock.card
	if count < 0 || count > p.Stored() {
		count = p.Stored()
	}
	if count > WindowSize {
		return Capture{}, fmt.Errorf("hw: %d records exceed the 64 KiB readout window", count)
	}
	p.EnterReadout()
	defer p.ExitReadout()
	var banks [NumBanks][]byte
	for b := 0; b < NumBanks; b++ {
		p.SelectBank(b)
		banks[b] = make([]byte, count)
		for i := 0; i < count; i++ {
			banks[b][i] = sock.Read(sock.base + uint32(i))
		}
	}
	records, err := DecodeBanks(banks)
	if err != nil {
		return Capture{}, err
	}
	return Capture{
		Records:    records,
		Overflowed: p.Overflowed(),
		Dropped:    p.Dropped,
		ClockHz:    p.cfg.ClockHz,
		TimerBits:  p.cfg.TimerBits,
	}, nil
}
