package hw

import (
	"bytes"
	"testing"
	"testing/quick"

	"kprof/internal/sim"
)

func newTestCard(depth int) (*sim.Scheduler, *Profiler) {
	s := sim.NewScheduler()
	return s, New(depth, s.Now)
}

func TestLatchStoresTagAndMicroseconds(t *testing.T) {
	s, p := newTestCard(8)
	p.Arm()
	s.AdvanceTo(1234 * sim.Microsecond)
	p.Latch(502)
	s.AdvanceTo(1234*sim.Microsecond + 999*sim.Nanosecond) // sub-µs: same stamp
	p.Latch(503)
	s.AdvanceTo(5 * sim.Second)
	p.Latch(600)
	c := p.Dump()
	if c.Len() != 3 {
		t.Fatalf("stored %d records", c.Len())
	}
	want := []Record{{502, 1234}, {503, 1234}, {600, 5000000}}
	for i, r := range c.Records {
		if r != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestDisarmedCardDropsStrobes(t *testing.T) {
	_, p := newTestCard(8)
	p.Latch(1)
	if p.Stored() != 0 || p.Dropped != 1 || p.Latched != 1 {
		t.Fatalf("disarmed card stored=%d dropped=%d latched=%d", p.Stored(), p.Dropped, p.Latched)
	}
	p.Arm()
	if !p.Armed() {
		t.Fatal("Armed = false after Arm")
	}
	p.Latch(2)
	p.Disarm()
	p.Latch(3)
	if p.Stored() != 1 || p.Dropped != 2 {
		t.Fatalf("stored=%d dropped=%d", p.Stored(), p.Dropped)
	}
}

func TestAddressCounterOverflowStopsCapture(t *testing.T) {
	_, p := newTestCard(4)
	p.Arm()
	for i := 0; i < 10; i++ {
		p.Latch(uint16(i))
	}
	if !p.Overflowed() {
		t.Fatal("overflow LED not lit")
	}
	if p.Stored() != 4 {
		t.Fatalf("stored %d records, want 4", p.Stored())
	}
	c := p.Dump()
	if !c.Overflowed {
		t.Fatal("capture does not report overflow")
	}
	if c.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", c.Dropped)
	}
	// The first Depth records are kept (list fills front to back).
	for i, r := range c.Records {
		if r.Tag != uint16(i) {
			t.Fatalf("record %d tag = %d", i, r.Tag)
		}
	}
}

func TestResetClearsOverflowAndRAM(t *testing.T) {
	_, p := newTestCard(2)
	p.Arm()
	p.Latch(1)
	p.Latch(2)
	p.Latch(3)
	p.Reset()
	if p.Overflowed() || p.Stored() != 0 || p.Dropped != 0 || p.Latched != 0 {
		t.Fatal("Reset did not clear card state")
	}
	p.Latch(9)
	if p.Stored() != 1 {
		t.Fatal("card not usable after Reset")
	}
	if got := p.Dump().Records[0].Tag; got != 9 {
		t.Fatalf("tag after reset = %d", got)
	}
}

func TestTimerWrapsAt24Bits(t *testing.T) {
	s, p := newTestCard(8)
	p.Arm()
	// 2^24 µs ≈ 16.78 s. An event just before and just after the wrap.
	s.AdvanceTo(sim.Time(TimerWrap-1) * sim.Microsecond)
	p.Latch(1)
	s.AdvanceTo(sim.Time(TimerWrap+5) * sim.Microsecond)
	p.Latch(2)
	c := p.Dump()
	if c.Records[0].Stamp != TimerWrap-1 {
		t.Fatalf("stamp 0 = %d", c.Records[0].Stamp)
	}
	if c.Records[1].Stamp != 5 {
		t.Fatalf("stamp 1 = %d, want wrapped value 5", c.Records[1].Stamp)
	}
}

func TestPowerOnCounterOffset(t *testing.T) {
	s, p := newTestCard(8)
	p.SetPowerOnCounter(TimerMask) // counter one tick from wrap at t=0
	p.Arm()
	p.Latch(1)
	s.AdvanceTo(1 * sim.Microsecond)
	p.Latch(2)
	c := p.Dump()
	if c.Records[0].Stamp != TimerMask {
		t.Fatalf("stamp 0 = %d", c.Records[0].Stamp)
	}
	if c.Records[1].Stamp != 0 {
		t.Fatalf("stamp 1 = %d, want 0 (wrapped)", c.Records[1].Stamp)
	}
}

func TestDefaultDepthIs16384(t *testing.T) {
	_, p := newTestCard(0)
	if p.Depth() != 16384 {
		t.Fatalf("default depth = %d", p.Depth())
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil clock")
		}
	}()
	New(8, nil)
}

func TestEPROMSocketDecodesWindow(t *testing.T) {
	s, p := newTestCard(16)
	p.Arm()
	const base = 0xD0000
	sock := NewEPROMSocket(base, p)
	if sock.Base() != base {
		t.Fatalf("Base = %#x", sock.Base())
	}
	s.AdvanceTo(10 * sim.Microsecond)
	if v := sock.Read(base + 1386); v != 0xFF {
		t.Fatalf("Read returned %#x, want 0xFF", v)
	}
	sock.Read(base + 1387)
	sock.Read(base - 1)          // below window: no latch
	sock.Read(base + WindowSize) // above window: no latch
	sock.Read(0)                 // far away
	c := p.Dump()
	if c.Len() != 2 {
		t.Fatalf("latched %d events, want 2", c.Len())
	}
	if c.Records[0].Tag != 1386 || c.Records[1].Tag != 1387 {
		t.Fatalf("tags = %d,%d", c.Records[0].Tag, c.Records[1].Tag)
	}
}

func TestEPROMSocketContains(t *testing.T) {
	_, p := newTestCard(1)
	sock := NewEPROMSocket(0xC8000, p)
	for _, c := range []struct {
		addr uint32
		want bool
	}{
		{0xC8000, true}, {0xC8000 + WindowSize - 1, true},
		{0xC8000 + WindowSize, false}, {0xC7FFF, false}, {0, false},
	} {
		if got := sock.Contains(c.addr); got != c.want {
			t.Errorf("Contains(%#x) = %v", c.addr, got)
		}
	}
}

func TestBankRoundTrip(t *testing.T) {
	records := []Record{{502, 0}, {503, 16383}, {1386, TimerMask}, {65535, 0xABCDEF & TimerMask}}
	banks := EncodeBanks(records)
	for i := range banks {
		if len(banks[i]) != len(records) {
			t.Fatalf("bank %d has %d bytes", i, len(banks[i]))
		}
	}
	got, err := DecodeBanks(banks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if got[i] != records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestDecodeBanksLengthMismatch(t *testing.T) {
	var banks [NumBanks][]byte
	for i := range banks {
		banks[i] = make([]byte, 4)
	}
	banks[3] = make([]byte, 3)
	if _, err := DecodeBanks(banks); err == nil {
		t.Fatal("expected error for mismatched bank lengths")
	}
}

func TestBankLayoutMatchesChipWiring(t *testing.T) {
	banks := EncodeBanks([]Record{{Tag: 0x1234, Stamp: 0xABCDEF}})
	want := [NumBanks]byte{0x34, 0x12, 0xEF, 0xCD, 0xAB}
	for i := range banks {
		if banks[i][0] != want[i] {
			t.Fatalf("bank %d byte = %#x, want %#x", i, banks[i][0], want[i])
		}
	}
}

func TestCaptureFileRoundTrip(t *testing.T) {
	c := Capture{
		Records:    []Record{{502, 100}, {503, 250}, {600, TimerMask}},
		Overflowed: true,
		Dropped:    42,
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflowed != c.Overflowed || got.Dropped != c.Dropped || got.Len() != c.Len() {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range c.Records {
		if got.Records[i] != c.Records[i] {
			t.Fatalf("record %d = %+v", i, got.Records[i])
		}
	}
}

func TestReadCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(bytes.NewReader([]byte("not a capture file at all........"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	// Truncated records.
	c := Capture{Records: []Record{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadCapture(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("expected error for truncated file")
	}
	if _, err := ReadCapture(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// Property: bank encode/decode round-trips arbitrary records (with the
// stamp masked to 24 bits, as the hardware stores).
func TestBankRoundTripProperty(t *testing.T) {
	prop := func(tags []uint16, stamps []uint32) bool {
		n := len(tags)
		if len(stamps) < n {
			n = len(stamps)
		}
		records := make([]Record, n)
		for i := 0; i < n; i++ {
			records[i] = Record{Tag: tags[i], Stamp: stamps[i] & TimerMask}
		}
		got, err := DecodeBanks(EncodeBanks(records))
		if err != nil || len(got) != n {
			return false
		}
		for i := range records {
			if got[i] != records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a card never stores more than its depth, and Latched always
// equals Stored + Dropped.
func TestCaptureAccountingProperty(t *testing.T) {
	prop := func(depth uint8, strobes []uint16, armPattern []bool) bool {
		d := int(depth%64) + 1
		_, p := newTestCard(d)
		for i, tag := range strobes {
			if i < len(armPattern) {
				if armPattern[i] {
					p.Arm()
				} else {
					p.Disarm()
				}
			}
			p.Latch(tag)
		}
		return p.Stored() <= d && p.Latched == uint64(p.Stored())+p.Dropped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
