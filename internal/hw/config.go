package hw

import "kprof/internal/sim"

// Config describes a Profiler build. The zero value is the paper's
// prototype: 16384 records, a 1 MHz counter, 24 timer bits. The
// alternatives model the paper's future-work upgrades: "A higher clock
// precision has been considered, especially if the Profiler were connected
// to a upmarket workstation architecture ... this would entail fitting a
// wider RAM module for accepting more clock data bits."
type Config struct {
	// Depth is the RAM depth in records; 0 means DefaultDepth.
	Depth int
	// ClockHz is the free-running counter rate; 0 means 1 MHz.
	ClockHz int64
	// TimerBits is the stored counter width; 0 means 24. Wider timers
	// need an extra RAM chip per 8 bits but stretch the maximum interval
	// between events before wraparound.
	TimerBits uint
}

// DefaultClockHz is the prototype's counter rate.
const DefaultClockHz = 1_000_000

// WithDefaults fills zero fields with the prototype's values.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.ClockHz == 0 {
		c.ClockHz = DefaultClockHz
	}
	if c.TimerBits == 0 {
		c.TimerBits = TimerBits
	}
	return c
}

// Wrap reports the timer modulus.
func (c Config) Wrap() uint32 { return 1 << c.TimerBits }

// Mask reports the stored-bits mask.
func (c Config) Mask() uint32 { return 1<<c.TimerBits - 1 }

// TickPeriod reports one counter tick as virtual time.
func (c Config) TickPeriod() sim.Time {
	return sim.Time(int64(sim.Second) / c.ClockHz)
}

// MaxInterval reports the longest interval between events before the
// counter wraps and information is lost (the prototype's ≈16.7 s).
func (c Config) MaxInterval() sim.Time {
	return c.TickPeriod() * sim.Time(c.Wrap())
}

// NewWithConfig builds a card to a specific configuration.
func NewWithConfig(cfg Config, clock func() sim.Time) *Profiler {
	cfg = cfg.withDefaults()
	if cfg.TimerBits > 32 {
		panic("hw: timer wider than 32 bits needs a different record layout")
	}
	if clock == nil {
		panic("hw: nil clock")
	}
	return &Profiler{
		clock: clock,
		cfg:   cfg,
		tick:  int64(cfg.TickPeriod()),
		mask:  cfg.Mask(),
		ram:   make([]Record, 0, cfg.Depth),
		depth: cfg.Depth,
	}
}

// Config reports the card's build configuration.
func (p *Profiler) Config() Config { return p.cfg }
