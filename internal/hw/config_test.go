package hw

import (
	"bytes"
	"testing"

	"kprof/internal/sim"
)

func TestHigherPrecisionClock(t *testing.T) {
	s := sim.NewScheduler()
	// The future-work upgrade: a 4 MHz counter with 26 stored bits.
	p := NewWithConfig(Config{Depth: 16, ClockHz: 4_000_000, TimerBits: 26}, s.Now)
	p.Arm()
	s.AdvanceTo(1 * sim.Microsecond)
	p.Latch(1)
	s.AdvanceTo(1*sim.Microsecond + 250*sim.Nanosecond)
	p.Latch(2)
	s.AdvanceTo(1*sim.Microsecond + 500*sim.Nanosecond)
	p.Latch(3)
	c := p.Dump()
	// Sub-microsecond intervals are now distinguishable: stamps differ
	// by one tick each.
	if c.Records[1].Stamp-c.Records[0].Stamp != 1 || c.Records[2].Stamp-c.Records[1].Stamp != 1 {
		t.Fatalf("stamps = %d %d %d", c.Records[0].Stamp, c.Records[1].Stamp, c.Records[2].Stamp)
	}
	if c.ClockHz != 4_000_000 || c.TimerBits != 26 {
		t.Fatalf("capture config = %d Hz, %d bits", c.ClockHz, c.TimerBits)
	}
}

func TestPrototypeCannotSeeSubMicrosecond(t *testing.T) {
	s := sim.NewScheduler()
	p := New(16, s.Now)
	p.Arm()
	s.AdvanceTo(1 * sim.Microsecond)
	p.Latch(1)
	s.AdvanceTo(1*sim.Microsecond + 500*sim.Nanosecond)
	p.Latch(2)
	c := p.Dump()
	if c.Records[0].Stamp != c.Records[1].Stamp {
		t.Fatal("prototype clock resolved below 1 µs")
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	proto := Config{}.withDefaults()
	if proto.ClockHz != 1_000_000 || proto.TimerBits != 24 || proto.Depth != 16384 {
		t.Fatalf("defaults = %+v", proto)
	}
	if proto.TickPeriod() != sim.Microsecond {
		t.Fatalf("tick = %v", proto.TickPeriod())
	}
	// ≈16.7 s before wrap on the prototype.
	if maxI := proto.MaxInterval(); maxI < 16*sim.Second || maxI > 17*sim.Second {
		t.Fatalf("max interval = %v", maxI)
	}
	// The upgraded card wraps *sooner* per bit-budget at higher rates —
	// the trade-off the paper weighs.
	fast := Config{ClockHz: 4_000_000, TimerBits: 24}.withDefaults()
	if fast.MaxInterval() >= proto.MaxInterval() {
		t.Fatal("faster clock should wrap sooner at equal width")
	}
	wide := Config{ClockHz: 4_000_000, TimerBits: 26}.withDefaults()
	if wide.MaxInterval() != proto.MaxInterval() {
		t.Fatalf("two extra bits should exactly compensate a 4x clock: %v vs %v",
			wide.MaxInterval(), proto.MaxInterval())
	}
}

func TestWideTimerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >32-bit timer")
		}
	}()
	NewWithConfig(Config{TimerBits: 33}, sim.NewScheduler().Now)
}

func TestCaptureFileCarriesClockConfig(t *testing.T) {
	s := sim.NewScheduler()
	p := NewWithConfig(Config{Depth: 8, ClockHz: 4_000_000, TimerBits: 26}, s.Now)
	p.Arm()
	p.Latch(7)
	var buf bytes.Buffer
	if _, err := p.Dump().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClockHz != 4_000_000 || got.TimerBits != 26 {
		t.Fatalf("round trip config = %d Hz, %d bits", got.ClockHz, got.TimerBits)
	}
	cfg := got.ClockConfig()
	if cfg.TickPeriod() != 250*sim.Nanosecond {
		t.Fatalf("tick = %v", cfg.TickPeriod())
	}
}

func TestReadoutViaSocket(t *testing.T) {
	s := sim.NewScheduler()
	p := New(64, s.Now)
	sock := NewEPROMSocket(0xC8000, p)
	p.Arm()
	for i := 0; i < 10; i++ {
		s.AdvanceTo(sim.Time(i+1) * 100 * sim.Microsecond)
		sock.Read(0xC8000 + uint32(500+i))
	}
	p.Disarm()
	direct := p.Dump()

	got, err := ReadoutViaSocket(sock, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != direct.Len() {
		t.Fatalf("readout %d records, direct %d", got.Len(), direct.Len())
	}
	for i := range direct.Records {
		if got.Records[i] != direct.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], direct.Records[i])
		}
	}
	// The card is back in normal mode and the capture is intact.
	if p.InReadout() {
		t.Fatal("card stuck in readout")
	}
	if p.Stored() != 10 {
		t.Fatalf("readout disturbed the RAM: %d", p.Stored())
	}
	// Readout reads must not have latched anything.
	if p.Latched != 10 {
		t.Fatalf("latched = %d, readout strobes leaked in", p.Latched)
	}
}

func TestReadoutModeDisablesLatching(t *testing.T) {
	s := sim.NewScheduler()
	p := New(8, s.Now)
	sock := NewEPROMSocket(0xC8000, p)
	p.Arm()
	sock.Read(0xC8000 + 500)
	p.EnterReadout()
	if p.Armed() {
		t.Fatal("readout left the card armed")
	}
	sock.Read(0xC8000 + 501) // must NOT latch
	p.ExitReadout()
	if p.Stored() != 1 {
		t.Fatalf("stored = %d", p.Stored())
	}
}

func TestSelectBankValidation(t *testing.T) {
	p := New(8, sim.NewScheduler().Now)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SelectBank(5)
}

func TestReadoutPastEndReadsFF(t *testing.T) {
	s := sim.NewScheduler()
	p := New(8, s.Now)
	sock := NewEPROMSocket(0xC8000, p)
	p.Arm()
	sock.Read(0xC8000 + 500)
	p.EnterReadout()
	p.SelectBank(0)
	if v := sock.Read(0xC8000 + 3); v != 0xFF {
		t.Fatalf("unwritten RAM read %#x", v)
	}
}
