// Package hw models the Profiler hardware card described in the paper: a
// block of battery-backed RAM 40 bits wide (a 16-bit event tag plus a 24-bit
// microsecond timestamp), a free-running 1 MHz counter, an auto-incrementing
// address counter that stops capture on overflow, an arm switch, and two
// status LEDs. The card connects to the machine under test through a JEDEC
// EPROM piggy-back socket (see EPROMSocket): an access anywhere in the
// EPROM's address window latches the low 16 address bits as the event tag.
//
// The model is register-level faithful to the paper's description: the
// timestamp is stored modulo 2^24 µs (so events more than ~16.7 s apart lose
// information), capture ceases silently when the 16384-entry RAM fills, and
// the stored data can be read back as five 8-bit RAM bank images exactly as
// the physical card's Smart-Socket RAMs would be.
package hw

import "kprof/internal/sim"

// Hardware constants from the paper.
const (
	// DefaultDepth is the number of event records the prototype card
	// stores before the address counter overflows.
	DefaultDepth = 16384

	// TimerBits is the width of the microsecond counter; the maximum
	// interval between events before wraparound is 2^24 µs ≈ 16.7 s.
	TimerBits = 24

	// TimerMask extracts the stored bits of the microsecond counter.
	TimerMask = 1<<TimerBits - 1

	// TimerWrap is the modulus of the stored timestamp, in microseconds.
	TimerWrap = 1 << TimerBits

	// MaxTag is the largest event tag the 16 tag lines can carry.
	MaxTag = 1<<16 - 1
)

// Record is one captured event: the latched tag and the 24 low bits of the
// card's free-running microsecond counter at the moment of capture.
type Record struct {
	Tag   uint16
	Stamp uint32 // microseconds, modulo TimerWrap
}

// LatchVerdict is a FaultHook's decision about one latch strobe.
type LatchVerdict int

// Latch verdicts: store the (possibly modified) record once, lose the
// strobe entirely, or store it twice (a bounced strobe line).
const (
	LatchKeep LatchVerdict = iota
	LatchDrop
	LatchDup
)

// FaultHook intercepts the card's data paths so a fault injector can model
// the analog failure modes the paper warns about: lost and duplicated
// strobes, bit flips on the tag and timer lines, clock jitter, and glitched
// reads during socket readout. The hook sits below the card's bookkeeping —
// a dropped strobe is lost silently, exactly as real hardware would lose
// it, and only the injector's own statistics know it happened.
type FaultHook interface {
	// Latch transforms a record about to be stored and rules on its fate.
	// The returned record's stamp is re-masked by the card, so a corrupted
	// stamp is always hardware-representable.
	Latch(r Record) (Record, LatchVerdict)
	// ReadoutByte transforms a byte served through the EPROM window while
	// the card is in readout mode.
	ReadoutByte(bank int, offset uint32, b byte) byte
}

// Profiler is the card itself.
//
// The card has no notion of kernel time: it owns a free-running counter that
// starts at an arbitrary value at power-on (counterAt models that), and the
// analysis software is expected to use successive stamps only as intervals.
type Profiler struct {
	clock func() sim.Time // the simulation clock the counter is derived from
	cfg   Config

	// tick and mask cache cfg.TickPeriod() and cfg.Mask(): Counter runs
	// once per latch strobe, and recomputing the tick period there costs
	// an integer division per event.
	tick int64
	mask uint32

	ram      []Record
	depth    int
	addr     int
	armed    bool
	overflow bool

	// counterAt is the card counter value at simulation time zero.
	// A nonzero power-on value exercises the wraparound path.
	counterAt uint32

	readout readoutState
	fault   FaultHook

	// Latched counts every latch strobe, including ones dropped because
	// the card was disarmed or full; useful for capture-loss accounting.
	Latched uint64
	// Dropped counts strobes that arrived while the card could not store
	// (disarmed or overflowed).
	Dropped uint64
}

// New returns a prototype-configuration card with the given RAM depth,
// timestamping from clock. A depth of 0 selects DefaultDepth.
func New(depth int, clock func() sim.Time) *Profiler {
	if depth < 0 {
		panic("hw: negative profiler depth")
	}
	return NewWithConfig(Config{Depth: depth}, clock)
}

// SetPowerOnCounter sets the card counter's value at simulation time zero.
// The physical counter free-runs from power-on, so its value at the first
// capture is arbitrary; tests use this to exercise timer wraparound.
func (p *Profiler) SetPowerOnCounter(v uint32) { p.counterAt = v & p.mask }

// Counter reports the card's current truncated counter value.
func (p *Profiler) Counter() uint32 {
	now := int64(p.clock())
	var ticks uint32
	if p.tick == 1000 {
		// The prototype card's 1 MHz counter: a constant divisor the
		// compiler strength-reduces, on the once-per-event path.
		ticks = uint32(now / 1000)
	} else {
		ticks = uint32(now / p.tick)
	}
	return (ticks + p.counterAt) & p.mask
}

// Arm starts capture, as the front-panel switch does. Arming does not clear
// previously captured records; use Reset for a fresh capture. While the card
// is in readout mode the switch is ignored: the mode line gates the latch
// path, because an address strobe during readout would corrupt the capture
// being read.
func (p *Profiler) Arm() {
	if p.readout.active {
		return
	}
	p.armed = true
}

// Disarm stops capture.
func (p *Profiler) Disarm() { p.armed = false }

// Armed reports whether the capture LED would be lit.
func (p *Profiler) Armed() bool { return p.armed }

// Overflowed reports whether the address-counter-overflow LED would be lit:
// the RAM filled and the card has ceased storing.
func (p *Profiler) Overflowed() bool { return p.overflow }

// Reset clears the RAM address counter, the overflow latch, the capture
// statistics and any readout-mode state, ready for a new profiling run.
func (p *Profiler) Reset() {
	p.ram = p.ram[:0]
	p.addr = 0
	p.overflow = false
	p.Latched = 0
	p.Dropped = 0
	p.readout = readoutState{}
}

// Stored reports how many records are currently in the RAM.
func (p *Profiler) Stored() int { return len(p.ram) }

// Depth reports the RAM capacity in records.
func (p *Profiler) Depth() int { return p.depth }

// SetFaultHook installs (or, with nil, removes) a fault injector on the
// card's capture and readout paths. Reset does not clear the hook: the
// injector models the card's analog environment, which a fresh capture does
// not change.
func (p *Profiler) SetFaultHook(h FaultHook) { p.fault = h }

// Latch presents an event tag to the card, exactly as an access in the EPROM
// window does. If the card is armed and not full, the tag and the current
// counter value are stored and the address counter increments; otherwise the
// strobe is counted and dropped.
func (p *Profiler) Latch(tag uint16) {
	p.Latched++
	if !p.armed || p.overflow {
		p.Dropped++
		return
	}
	r := Record{Tag: tag, Stamp: p.Counter()}
	if p.fault != nil {
		var v LatchVerdict
		r, v = p.fault.Latch(r)
		r.Stamp &= p.mask
		switch v {
		case LatchDrop:
			// Lost silently: the card's own Dropped counter never sees
			// it — only the injector's statistics do.
			return
		case LatchDup:
			p.store(r)
			if p.overflow {
				return
			}
		}
	}
	p.store(r)
}

// store appends one record, latching overflow when the RAM fills.
func (p *Profiler) store(r Record) {
	p.ram = append(p.ram, r)
	p.addr++
	if p.addr >= p.depth {
		p.overflow = true
	}
}

// Scan visits the stored records oldest first, in place — no copy of the
// bank list is made. Streaming decode paths (the sweep engine's workers)
// use it so a worker never holds a second copy of the 16384-entry RAM
// while building its report.
func (p *Profiler) Scan(fn func(Record)) {
	for _, r := range p.ram {
		fn(r)
	}
}

// Records returns the stored records oldest first as a direct view of the
// card RAM — no copy. The view is only valid until the next Latch or Reset;
// batch decode paths read it straight into the reconstructor and drop it.
func (p *Profiler) Records() []Record { return p.ram }

// Dump copies out the captured records, oldest first. This models pulling
// the battery-backed RAMs and reading them on the host.
func (p *Profiler) Dump() Capture {
	out := make([]Record, len(p.ram))
	copy(out, p.ram)
	return Capture{
		Records:    out,
		Overflowed: p.overflow,
		Dropped:    p.Dropped,
		ClockHz:    p.cfg.ClockHz,
		TimerBits:  p.cfg.TimerBits,
	}
}

// StrandedCapture describes a bank the host failed to read out (a glitched
// drain): no records recovered, every stored strobe plus the card's own
// drop counter accounted as dropped. It is the loss-is-never-silent
// counterpart of a successful readout — the drain loop appends it to the
// segment store so the lost bank shows up as a lossy, force-closed segment
// instead of vanishing.
func (p *Profiler) StrandedCapture() Capture {
	return Capture{
		Overflowed: p.overflow,
		Dropped:    p.Dropped + uint64(len(p.ram)),
		ClockHz:    p.cfg.ClockHz,
		TimerBits:  p.cfg.TimerBits,
	}
}

// Capture is the raw data retrieved from the card: the event list plus the
// card status and clock configuration needed to interpret it.
type Capture struct {
	Records    []Record
	Overflowed bool   // RAM filled; the tail of the run is missing
	Dropped    uint64 // strobes lost while disarmed or full
	ClockHz    int64  // counter rate; 0 means the prototype's 1 MHz
	TimerBits  uint   // stored counter width; 0 means 24
}

// ClockConfig reports the capture's counter configuration with defaults
// applied.
func (c Capture) ClockConfig() Config {
	return Config{ClockHz: c.ClockHz, TimerBits: c.TimerBits}.withDefaults()
}

// Len reports the number of records.
func (c Capture) Len() int { return len(c.Records) }
