package hw

import (
	"testing"

	"kprof/internal/sim"
)

// fillCard latches n distinct records onto a fresh card.
func fillCard(t *testing.T, depth, n int) (*sim.Scheduler, *Profiler, *EPROMSocket) {
	t.Helper()
	s, p := newTestCard(depth)
	sock := NewEPROMSocket(0xC8000, p)
	p.Arm()
	for i := 0; i < n; i++ {
		s.AdvanceTo(sim.Time(i+1) * 3 * sim.Microsecond)
		p.Latch(uint16(500 + 2*(i%8)))
	}
	p.Disarm()
	return s, p, sock
}

// TestReadoutViaSocketIntoReuses pins the recycling readout's contract: a
// second drain into the same buffer reuses its storage (no fresh record
// slice) and reads back exactly what a plain readout does.
func TestReadoutViaSocketIntoReuses(t *testing.T) {
	s, p, sock := fillCard(t, 16, 12)
	want, err := ReadoutViaSocket(sock, p.Stored())
	if err != nil {
		t.Fatal(err)
	}

	buf := new(ReadoutBuffer)
	got, err := ReadoutViaSocketInto(sock, p.Stored(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("into-readout got %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Records[i], want.Records[i])
		}
	}
	if &got.Records[0] != &buf.records[0] {
		t.Fatal("into-readout did not decode into the buffer's storage")
	}

	// A second, smaller capture drains into the same storage.
	firstBacking := &buf.records[0]
	p.Reset()
	p.Arm()
	s.AdvanceTo(s.Now() + 5*sim.Microsecond)
	p.Latch(500)
	s.AdvanceTo(s.Now() + 5*sim.Microsecond)
	p.Latch(501)
	p.Disarm()
	got2, err := ReadoutViaSocketInto(sock, p.Stored(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Records) != 2 {
		t.Fatalf("second readout got %d records, want 2", len(got2.Records))
	}
	if &got2.Records[0] != firstBacking {
		t.Fatal("second readout allocated a fresh record slice instead of reusing the buffer")
	}
	if got2.Records[0].Tag != 500 || got2.Records[1].Tag != 501 {
		t.Fatalf("second readout decoded tags %d, %d", got2.Records[0].Tag, got2.Records[1].Tag)
	}

	// A nil buffer behaves exactly like ReadoutViaSocket.
	got3, err := ReadoutViaSocketInto(sock, p.Stored(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got3.Records) != 2 || got3.Records[0] != got2.Records[0] {
		t.Fatalf("nil-buffer readout differs: %+v", got3.Records)
	}
}
