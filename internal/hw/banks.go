package hw

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// The physical card stores each 40-bit record across five 8-bit static RAM
// chips: two hold the 16-bit tag and three hold the 24-bit timestamp. When
// the battery-backed Smart-Sockets are pulled and read out on a host, the
// data arrives as five independent bank images. These helpers convert
// between the record list and the bank images, and define the simple
// host-side file format used to move captures around.

// NumBanks is the number of 8-bit RAM chips on the card.
const NumBanks = 5

// EncodeBanks lays the records out across the five RAM chip images:
// bank 0 = tag low byte, bank 1 = tag high byte,
// banks 2..4 = timestamp bits 0–7, 8–15, 16–23.
func EncodeBanks(records []Record) [NumBanks][]byte {
	var banks [NumBanks][]byte
	for i := range banks {
		banks[i] = make([]byte, len(records))
	}
	for i, r := range records {
		banks[0][i] = byte(r.Tag)
		banks[1][i] = byte(r.Tag >> 8)
		banks[2][i] = byte(r.Stamp)
		banks[3][i] = byte(r.Stamp >> 8)
		banks[4][i] = byte(r.Stamp >> 16)
	}
	return banks
}

// DecodeBanks reassembles records from five RAM chip images. All banks must
// be the same length.
func DecodeBanks(banks [NumBanks][]byte) ([]Record, error) {
	return DecodeBanksInto(banks, nil)
}

// DecodeBanksInto reassembles records into dst's backing array, allocating
// only when its capacity is too small — the recycling drain loop's variant
// (see ReadoutViaSocketInto). dst's length is ignored; the returned slice
// holds exactly the decoded records.
func DecodeBanksInto(banks [NumBanks][]byte, dst []Record) ([]Record, error) {
	n := len(banks[0])
	for i := 1; i < NumBanks; i++ {
		if len(banks[i]) != n {
			return nil, fmt.Errorf("hw: bank %d has %d bytes, bank 0 has %d", i, len(banks[i]), n)
		}
	}
	if cap(dst) < n {
		dst = make([]Record, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = Record{
			Tag:   uint16(banks[0][i]) | uint16(banks[1][i])<<8,
			Stamp: uint32(banks[2][i]) | uint32(banks[3][i])<<8 | uint32(banks[4][i])<<16,
		}
	}
	return dst, nil
}

// Raw capture file format: a fixed header followed by packed records.
// Everything is little-endian.
var rawMagic = [8]byte{'K', 'P', 'R', 'O', 'F', 'R', 'A', 'W'}

const rawVersion = 2

type rawHeader struct {
	Magic     [8]byte
	Version   uint32
	Count     uint32
	Flags     uint32 // bit 0: overflowed
	Dropped   uint64
	ClockHz   int64  // 0 = the prototype's 1 MHz counter
	TimerBits uint32 // 0 = 24
	Reserved  uint32
}

const flagOverflowed = 1 << 0

// WriteTo serializes the capture in the host file format.
func (c Capture) WriteTo(w io.Writer) (int64, error) {
	h := rawHeader{
		Magic:     rawMagic,
		Version:   rawVersion,
		Count:     uint32(len(c.Records)),
		Dropped:   c.Dropped,
		ClockHz:   c.ClockHz,
		TimerBits: uint32(c.TimerBits),
	}
	if c.Overflowed {
		h.Flags |= flagOverflowed
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
		return 0, err
	}
	for _, r := range c.Records {
		if err := binary.Write(&buf, binary.LittleEndian, r.Tag); err != nil {
			return 0, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, r.Stamp); err != nil {
			return 0, err
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadCapture deserializes a capture written by WriteTo.
func ReadCapture(r io.Reader) (Capture, error) {
	var h rawHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return Capture{}, fmt.Errorf("hw: reading capture header: %w", err)
	}
	if h.Magic != rawMagic {
		return Capture{}, fmt.Errorf("hw: bad capture magic %q", h.Magic[:])
	}
	if h.Version != rawVersion {
		return Capture{}, fmt.Errorf("hw: unsupported capture version %d", h.Version)
	}
	c := Capture{
		Records:    make([]Record, h.Count),
		Overflowed: h.Flags&flagOverflowed != 0,
		Dropped:    h.Dropped,
		ClockHz:    h.ClockHz,
		TimerBits:  uint(h.TimerBits),
	}
	for i := range c.Records {
		if err := binary.Read(r, binary.LittleEndian, &c.Records[i].Tag); err != nil {
			return Capture{}, fmt.Errorf("hw: truncated capture at record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &c.Records[i].Stamp); err != nil {
			return Capture{}, fmt.Errorf("hw: truncated capture at record %d: %w", i, err)
		}
	}
	return c, nil
}
