package nfs

import (
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/netstack"
	"kprof/internal/sim"
)

func newClient(t *testing.T) (*kernel.Kernel, *netstack.Net, *Client) {
	t.Helper()
	k := kernel.New(kernel.Config{Seed: 3})
	k.StartClock()
	n := netstack.Attach(k, mem.Attach(k))
	c, err := NewClient(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return k, n, c
}

func TestSingleRPCRoundTrip(t *testing.T) {
	k, _, c := newClient(t)
	var got int
	var turn sim.Time
	k.Spawn("nfsio", func(p *kernel.Proc) {
		got, turn = c.Read(p, RSize)
	})
	k.RunUntilIdle(sim.Second)
	if got != RSize {
		t.Fatalf("read %d bytes", got)
	}
	// Turnaround: request + wire + ≈1.8 ms service + wire + input path.
	if turn < 2*sim.Millisecond || turn > 8*sim.Millisecond {
		t.Fatalf("turnaround = %v", turn)
	}
	if c.ServerModel().Requests != 1 {
		t.Fatalf("server saw %d requests", c.ServerModel().Requests)
	}
}

func TestReadFileLoops(t *testing.T) {
	k, _, c := newClient(t)
	var total int
	k.Spawn("nfsio", func(p *kernel.Proc) {
		total = c.ReadFile(p, 16*1024)
	})
	k.RunUntilIdle(5 * sim.Second)
	if total != 16*1024 {
		t.Fatalf("read %d bytes", total)
	}
	if c.Calls != 16 {
		t.Fatalf("calls = %d", c.Calls)
	}
	if c.MeanTurnaround() == 0 {
		t.Fatal("no turnaround recorded")
	}
}

func TestNFSSkipsPayloadChecksum(t *testing.T) {
	k, _, c := newClient(t)
	cksum := k.MustFn("in_cksum")
	k.Spawn("nfsio", func(p *kernel.Proc) {
		c.ReadFile(p, 8*1024)
	})
	before := cksum.Calls
	k.RunUntilIdle(5 * sim.Second)
	calls := cksum.Calls - before
	// Per RPC: IP header out + IP header in = 2 checksums, never the
	// 1 KiB payload (UDP checksums off).
	if calls != 2*c.Calls {
		t.Fatalf("in_cksum calls = %d for %d RPCs, want %d", calls, c.Calls, 2*c.Calls)
	}
}

// The paper's E6 comparison in miniature: the same bytes over NFS-lite
// (UDP, no checksum) cost the PC less CPU than over TCP (checksummed).
func TestNFSCheaperThanTCPPerByte(t *testing.T) {
	const size = 64 * 1024

	// NFS leg.
	k1, _, c := newClient(t)
	var nfsCPU sim.Time
	k1.Spawn("nfsio", func(p *kernel.Proc) {
		start := k1.Now()
		c.ReadFile(p, size)
		nfsCPU = k1.Now() - start
	})
	k1.RunUntilIdle(20 * sim.Second)

	// The NFS leg's elapsed time includes wire and server time; estimate
	// CPU by subtracting the known non-CPU components.
	nonCPU := sim.Time(c.Calls) * (c.ServerModel().ServiceTime +
		netstack.WireTime(RSize+36) + netstack.WireTime(132))
	nfsBusy := nfsCPU - nonCPU

	// FTP-style leg: the same bytes over TCP with checksums.
	k2 := kernel.New(kernel.Config{Seed: 3})
	k2.StartClock()
	n2 := netstack.Attach(k2, mem.Attach(k2))
	so, _ := n2.SoCreate(netstack.ProtoTCP, 5001)
	sender := netstack.NewSender(n2, 5001)
	var tcpDone sim.Time
	k2.Spawn("ftp", func(p *kernel.Proc) {
		total := 0
		for total < size {
			total += len(n2.SoReceive(p, so, 8192))
		}
		tcpDone = k2.Now()
	})
	sender.Start()
	k2.Run(20 * sim.Second)
	sender.Stop()
	if tcpDone == 0 {
		t.Fatal("tcp leg did not finish")
	}
	// TCP leg: CPU-bound the whole time (idle ≈ 0 in saturation), so
	// elapsed ≈ CPU. Compare per-byte cost.
	tcpBusy := tcpDone

	nfsPerByte := float64(nfsBusy) / size
	tcpPerByte := float64(tcpBusy) / size
	if nfsPerByte >= tcpPerByte {
		t.Fatalf("NFS (%v/B) should be cheaper than TCP (%v/B)", nfsPerByte, tcpPerByte)
	}
}
