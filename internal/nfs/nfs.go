// Package nfs is the NFS-lite client used for the paper's NFS-versus-FTP
// comparison: Sun RPC-shaped read requests over UDP with checksums off (the
// usual configuration of the period), against a simulated remote server.
//
// The paper's observation: because in_cksum dominated TCP receive cost and
// "UDP checksums are usually turned off with NFS", NFS moved file data with
// *less* CPU overhead than an FTP-style TCP connection on this machine. The
// package also measures RPC turnaround — request formulation, wire time,
// server service, reply processing — which the Profiler made easy to see.
package nfs

import (
	"encoding/binary"

	"kprof/internal/kernel"
	"kprof/internal/netstack"
	"kprof/internal/sim"
)

// Protocol constants for the lite RPC.
const (
	// RSize is the NFS read transfer size. The real rsize of the period
	// was 8192, carried in IP fragments; the lite protocol uses one
	// datagram per read to stay inside a single Ethernet frame.
	RSize = 1024

	serverPort = 2049
	clientPort = 1008

	rpcHeaderLen = 96 // credentials, verifier, xid, proc — all opaque here
)

// Client is the NFS-lite client on the PC.
type Client struct {
	k   *kernel.Kernel
	net *netstack.Net

	fnRequest *kernel.Fn
	fnReply   *kernel.Fn

	so  *netstack.Socket
	xid uint32

	server *Server

	// Statistics.
	Calls           uint64
	BytesRead       uint64
	TotalTurnaround sim.Time
}

// Server is the simulated remote NFS server: it watches the wire for
// requests and delivers replies after a service delay. It runs entirely in
// event context — it is the other machine.
type Server struct {
	n *netstack.Net
	// ServiceTime is how long the remote host takes to serve a read
	// (cache-hit service on a Sparc-class server).
	ServiceTime sim.Time
	Requests    uint64
}

// NewClient builds the client and its simulated server.
func NewClient(k *kernel.Kernel, n *netstack.Net) (*Client, error) {
	so, err := n.SoCreate(netstack.ProtoUDP, clientPort)
	if err != nil {
		return nil, err
	}
	so.Connect(netstack.SparcAddr, serverPort)
	c := &Client{
		k:         k,
		net:       n,
		fnRequest: k.RegisterFn("nfs_socket", "nfs_request"),
		fnReply:   k.RegisterFn("nfs_socket", "nfs_reply"),
		so:        so,
		server:    &Server{n: n, ServiceTime: 1800 * sim.Microsecond},
	}
	n.Device().AddWireTap(c.server.onWire)
	return c, nil
}

// Server exposes the simulated remote server.
func (c *Client) ServerModel() *Server { return c.server }

// onWire watches for NFS requests leaving the PC and schedules the reply.
func (s *Server) onWire(frame []byte) {
	ih, err := netstack.ParseIPv4(frame)
	if err != nil || ih.Proto != netstack.ProtoUDP || ih.Dst != netstack.SparcAddr {
		return
	}
	uh, payload, _, err := netstack.ParseUDP(ih.Src, ih.Dst, frame[netstack.IPHdrLen:ih.TotalLen])
	if err != nil || uh.DstPort != serverPort || len(payload) < 8 {
		return
	}
	s.Requests++
	xid := binary.BigEndian.Uint32(payload)
	want := int(binary.BigEndian.Uint32(payload[4:]))
	if want > RSize {
		want = RSize
	}
	reply := make([]byte, 8+want)
	binary.BigEndian.PutUint32(reply, xid)
	binary.BigEndian.PutUint32(reply[4:], uint32(want))
	ruh := netstack.UDPHeader{SrcPort: serverPort, DstPort: clientPort}
	dgram := ruh.Marshal(netstack.SparcAddr, netstack.PCAddr, reply, false)
	rih := netstack.IPv4Header{
		TotalLen: uint16(netstack.IPHdrLen + len(dgram)),
		TTL:      255,
		Proto:    netstack.ProtoUDP,
		Src:      netstack.SparcAddr,
		Dst:      netstack.PCAddr,
	}
	pkt := append(rih.Marshal(), dgram...)
	s.n.Scheduler().After(s.ServiceTime+netstack.WireTime(len(pkt)), func() {
		s.n.Device().HostDeliver(pkt)
	})
}

// Read performs one NFS read RPC of up to RSize bytes and returns the data
// length and the turnaround time (request sent to reply in hand). Must run
// in process context.
func (c *Client) Read(p *kernel.Proc, n int) (int, sim.Time) {
	if n > RSize {
		n = RSize
	}
	start := c.k.Now()
	c.xid++
	c.Calls++
	// Formulate and send the request.
	c.k.Call(c.fnRequest, func() {
		c.k.Advance(costNfsRequest)
		req := make([]byte, rpcHeaderLen)
		binary.BigEndian.PutUint32(req, c.xid)
		binary.BigEndian.PutUint32(req[4:], uint32(n))
		c.net.SendUDPDatagram(c.so, req)
	})
	// Wait for and process the reply.
	data := c.net.SoReceive(p, c.so, 8+RSize)
	var got int
	c.k.Call(c.fnReply, func() {
		c.k.Advance(costNfsReply)
		if len(data) >= 8 {
			got = int(binary.BigEndian.Uint32(data[4:]))
		}
	})
	c.BytesRead += uint64(got)
	turnaround := c.k.Now() - start
	c.TotalTurnaround += turnaround
	return got, turnaround
}

// ReadFile reads size bytes via successive RPCs and returns the total.
func (c *Client) ReadFile(p *kernel.Proc, size int) int {
	total := 0
	for total < size {
		got, _ := c.Read(p, size-total)
		if got == 0 {
			break
		}
		total += got
	}
	return total
}

// MeanTurnaround reports the average RPC turnaround.
func (c *Client) MeanTurnaround() sim.Time {
	if c.Calls == 0 {
		return 0
	}
	return c.TotalTurnaround / sim.Time(c.Calls)
}

const (
	costNfsRequest = 120 * sim.Microsecond
	costNfsReply   = 95 * sim.Microsecond
)
