// Package mem models the 386BSD kernel memory allocators the paper
// profiles: the general-purpose power-of-two bucket malloc/free (Table 1:
// malloc ≈37 µs, free ≈32 µs inclusive), kmem_alloc (≈801 µs — dominated by
// page-map work), and the mbuf allocator whose MGET fast path is the
// paper's example of an inline '=' trigger.
package mem

import (
	"fmt"

	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// PageSize is the i386 page size.
const PageSize = 4096

// Allocator is the kernel memory subsystem.
type Allocator struct {
	k *kernel.Kernel

	fnMalloc    *kernel.Fn
	fnFree      *kernel.Fn
	fnKmemAlloc *kernel.Fn
	fnKmemFree  *kernel.Fn

	// backing is called by kmem_alloc to wire fresh pages; the vm package
	// installs the pmap work here. nil means a flat calibrated cost.
	backing func(pages int)

	buckets [bucketCount]bucket

	// spare recycles Block descriptors freed through Free, and arena
	// block-allocates them before any have been freed (simulator-side
	// bookkeeping only; the cost model is unchanged). The arena is
	// append-only at fixed capacity, so carved pointers stay valid.
	spare []*Block
	arena []Block

	// Statistics.
	Mallocs, Frees        uint64
	KmemAllocs, KmemFrees uint64
	BytesInUse            int64
}

type bucket struct {
	size int
	free int // free chunks currently in the bucket
}

const (
	minBucketShift = 4  // 16 bytes
	maxBucketShift = 16 // 64 KiB: larger goes straight to kmem_alloc
	bucketCount    = maxBucketShift - minBucketShift + 1
)

// Calibrated costs (see package comment).
const (
	// malloc/free raise to splhigh (splimp) around the bucket surgery,
	// as kern_malloc.c did; the bodies below plus the spl pair land on
	// Table 1's ≈37/32 µs inclusive.
	costMallocBody    = 22 * sim.Microsecond
	costFreeBody      = 18 * sim.Microsecond
	costKmemAllocBase = 90 * sim.Microsecond // map bookkeeping before paging
	costKmemFreeBase  = 60 * sim.Microsecond
	costBucketRefill  = 9 * sim.Microsecond // linking fresh chunks
	// flatKmemPageCost approximates the pmap work per page when the vm
	// package is not attached (Table 1 measures kmem_alloc at ≈801 µs for
	// the common two-page request).
	flatKmemPageCost = 355 * sim.Microsecond
)

// Attach registers the allocator's functions in the kernel symbol table.
func Attach(k *kernel.Kernel) *Allocator {
	a := &Allocator{
		k:           k,
		fnMalloc:    k.RegisterFn("kern_malloc", "malloc"),
		fnFree:      k.RegisterFn("kern_malloc", "free"),
		fnKmemAlloc: k.RegisterFn("vm_kern", "kmem_alloc"),
		fnKmemFree:  k.RegisterFn("vm_kern", "kmem_free"),
	}
	for i := range a.buckets {
		a.buckets[i].size = 1 << (minBucketShift + i)
	}
	a.spare = make([]*Block, 0, blockSpareMax)
	return a
}

// SetBacking installs the page-wiring callback kmem_alloc uses (the vm
// package's pmap work). Passing nil restores the flat calibrated cost.
func (a *Allocator) SetBacking(f func(pages int)) { a.backing = f }

// bucketFor returns the bucket index for a request size, or -1 if the
// request is too large for the bucket allocator.
func bucketFor(size int) int {
	for i := 0; i < bucketCount; i++ {
		if size <= 1<<(minBucketShift+i) {
			return i
		}
	}
	return -1
}

// Block is an allocated kernel memory block.
type Block struct {
	Size   int // requested size
	bucket int // -1 for direct kmem allocations
	freed  bool
}

// Malloc allocates size bytes from the bucket allocator, refilling the
// bucket from kmem_alloc when it runs dry — which is where the occasional
// very slow malloc the paper's max columns show comes from.
func (a *Allocator) Malloc(size int) *Block {
	if size <= 0 {
		panic(fmt.Sprintf("mem: malloc of %d bytes", size))
	}
	a.Mallocs++
	bi := bucketFor(size)
	var blk *Block
	switch {
	case len(a.spare) > 0:
		n := len(a.spare)
		blk = a.spare[n-1]
		a.spare[n-1] = nil
		a.spare = a.spare[:n-1]
		*blk = Block{Size: size, bucket: bi}
	case len(a.arena) < cap(a.arena) || a.arena == nil:
		if a.arena == nil {
			a.arena = make([]Block, 0, blockArenaCap)
		}
		a.arena = append(a.arena, Block{Size: size, bucket: bi})
		blk = &a.arena[len(a.arena)-1]
	default:
		blk = &Block{Size: size, bucket: bi}
	}
	a.k.Call(a.fnMalloc, func() {
		s := a.k.SplHigh()
		defer a.k.SplX(s)
		a.k.Advance(costMallocBody)
		if bi < 0 {
			// Large request: straight to kmem_alloc.
			a.kmemAlloc((size + PageSize - 1) / PageSize)
			return
		}
		b := &a.buckets[bi]
		if b.free == 0 {
			pages := (b.size + PageSize - 1) / PageSize
			if pages < 1 {
				pages = 1
			}
			a.kmemAlloc(pages)
			a.k.Advance(costBucketRefill)
			b.free = pages * PageSize / b.size
		}
		b.free--
	})
	a.BytesInUse += int64(size)
	return blk
}

// Free returns a block to its bucket.
func (a *Allocator) Free(blk *Block) {
	if blk == nil || blk.freed {
		panic("mem: double free")
	}
	blk.freed = true
	a.Frees++
	a.BytesInUse -= int64(blk.Size)
	a.k.Call(a.fnFree, func() {
		s := a.k.SplHigh()
		a.k.Advance(costFreeBody)
		if blk.bucket >= 0 {
			a.buckets[blk.bucket].free++
		}
		a.k.SplX(s)
	})
	if len(a.spare) < blockSpareMax {
		a.spare = append(a.spare, blk)
	}
}

// blockSpareMax bounds the Block descriptor recycle list; blockArenaCap
// covers the live-block population of a steady receive run.
const (
	blockSpareMax = 64
	blockArenaCap = 128
)

// KmemAlloc allocates and wires pages of kernel virtual memory.
func (a *Allocator) KmemAlloc(pages int) {
	a.kmemAlloc(pages)
}

func (a *Allocator) kmemAlloc(pages int) {
	if pages <= 0 {
		panic("mem: kmem_alloc of no pages")
	}
	a.KmemAllocs++
	a.k.Call(a.fnKmemAlloc, func() {
		a.k.Advance(costKmemAllocBase)
		if a.backing != nil {
			a.backing(pages)
		} else {
			a.k.Advance(sim.Time(pages) * flatKmemPageCost)
		}
	})
}

// KmemFree releases pages of kernel virtual memory.
func (a *Allocator) KmemFree(pages int) {
	if pages <= 0 {
		panic("mem: kmem_free of no pages")
	}
	a.KmemFrees++
	a.k.CallCost(a.fnKmemFree, costKmemFreeBase)
}

// BucketFree reports the free count of the bucket serving size (for tests).
func (a *Allocator) BucketFree(size int) int {
	bi := bucketFor(size)
	if bi < 0 {
		return 0
	}
	return a.buckets[bi].free
}

var _ = bus.MainMemory // the mbuf layer (mbuf.go) uses bus regions
