package mem

import (
	"testing"
	"testing/quick"

	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func newAlloc() (*kernel.Kernel, *Allocator) {
	k := kernel.New(kernel.Config{Seed: 1})
	return k, Attach(k)
}

func TestMallocTimingMatchesTable1(t *testing.T) {
	k, a := newAlloc()
	// Warm the bucket so we measure the common fast path.
	warm := a.Malloc(256)
	a.Free(warm)
	start := k.Now()
	b := a.Malloc(256)
	d := k.Now() - start
	if d < 30*sim.Microsecond || d > 45*sim.Microsecond {
		t.Fatalf("malloc fast path = %v, want ≈37 µs", d)
	}
	start = k.Now()
	a.Free(b)
	d = k.Now() - start
	if d < 25*sim.Microsecond || d > 40*sim.Microsecond {
		t.Fatalf("free = %v, want ≈32 µs", d)
	}
}

func TestKmemAllocTimingMatchesTable1(t *testing.T) {
	k, a := newAlloc()
	start := k.Now()
	a.KmemAlloc(2)
	d := k.Now() - start
	// Table 1: ≈801 µs (inclusive) for the common case.
	if d < 700*sim.Microsecond || d > 900*sim.Microsecond {
		t.Fatalf("kmem_alloc(2 pages) = %v, want ≈800 µs", d)
	}
}

func TestMallocColdPathRefillsBucket(t *testing.T) {
	_, a := newAlloc()
	if a.BucketFree(256) != 0 {
		t.Fatal("bucket not empty at start")
	}
	a.Malloc(256)
	if a.KmemAllocs != 1 {
		t.Fatalf("kmem allocs = %d, want 1 (refill)", a.KmemAllocs)
	}
	per := PageSize / 256
	if a.BucketFree(256) != per-1 {
		t.Fatalf("bucket free = %d, want %d", a.BucketFree(256), per-1)
	}
	// Subsequent allocations use the bucket, no more kmem traffic.
	for i := 0; i < per-1; i++ {
		a.Malloc(256)
	}
	if a.KmemAllocs != 1 {
		t.Fatalf("kmem allocs = %d after draining bucket", a.KmemAllocs)
	}
	a.Malloc(256)
	if a.KmemAllocs != 2 {
		t.Fatalf("kmem allocs = %d, want refill", a.KmemAllocs)
	}
}

func TestMallocLargeGoesDirect(t *testing.T) {
	_, a := newAlloc()
	b := a.Malloc(256 * 1024)
	if b.bucket != -1 {
		t.Fatal("large allocation went through a bucket")
	}
	if a.KmemAllocs != 1 {
		t.Fatalf("kmem allocs = %d", a.KmemAllocs)
	}
	a.Free(b)
}

func TestBytesInUseAccounting(t *testing.T) {
	_, a := newAlloc()
	b1 := a.Malloc(100)
	b2 := a.Malloc(200)
	if a.BytesInUse != 300 {
		t.Fatalf("in use = %d", a.BytesInUse)
	}
	a.Free(b1)
	a.Free(b2)
	if a.BytesInUse != 0 {
		t.Fatalf("in use after frees = %d", a.BytesInUse)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, a := newAlloc()
	b := a.Malloc(64)
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not detected")
		}
	}()
	a.Free(b)
}

func TestMallocZeroPanics(t *testing.T) {
	_, a := newAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Malloc(0)
}

func TestBackingCallback(t *testing.T) {
	k, a := newAlloc()
	var got int
	a.SetBacking(func(pages int) {
		got = pages
		k.Advance(100 * sim.Microsecond)
	})
	start := k.Now()
	a.KmemAlloc(3)
	if got != 3 {
		t.Fatalf("backing saw %d pages", got)
	}
	d := k.Now() - start
	if d > 300*sim.Microsecond {
		t.Fatalf("backing path should replace the flat cost: %v", d)
	}
}

func TestMGetFastAndSlowPath(t *testing.T) {
	k, a := newAlloc()
	p := NewMbufPool(a)
	m := p.MGet()
	if m.Region != bus.MainMemory || m.Cluster {
		t.Fatalf("mbuf = %+v", m)
	}
	// Empty free list: MGET falls back to malloc, Net/2 style.
	if p.PoolMallocs != 1 || a.Mallocs != 1 {
		t.Fatalf("poolMallocs=%d mallocs=%d", p.PoolMallocs, a.Mallocs)
	}
	// A freed mbuf goes on the free list; the next MGET pops it without
	// malloc — the fast path.
	p.MFree(m)
	if p.FreeListLen() != 1 {
		t.Fatalf("free list = %d", p.FreeListLen())
	}
	start := k.Now()
	p.MGet()
	if a.Mallocs != 1 {
		t.Fatal("fast path hit malloc")
	}
	if d := k.Now() - start; d > 30*sim.Microsecond {
		t.Fatalf("MGET fast path = %v", d)
	}
}

func TestMFreeOverflowReallyFrees(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	var ms []*Mbuf
	for i := 0; i < freeListMax+3; i++ {
		ms = append(ms, p.MGet())
	}
	for _, m := range ms {
		p.MFree(m)
	}
	if p.FreeListLen() != freeListMax {
		t.Fatalf("free list = %d, want %d", p.FreeListLen(), freeListMax)
	}
	if p.PoolFrees != 3 || a.Frees != 3 {
		t.Fatalf("poolFrees=%d frees=%d, want 3", p.PoolFrees, a.Frees)
	}
}

func TestClusterPoolUsesKmem(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	kmemBefore := a.KmemAllocs
	m := p.MGetCluster()
	// One page wires four clusters; the plain-mbuf malloc may also have
	// hit kmem for its bucket.
	if a.KmemAllocs == kmemBefore {
		t.Fatal("cluster pool did not wire a page")
	}
	clustersPerPage := PageSize / MCLBytes
	for i := 0; i < clustersPerPage-1; i++ {
		p.MGetCluster()
	}
	during := a.KmemAllocs
	p.MGetCluster() // fifth: a new page
	if a.KmemAllocs != during+1 {
		t.Fatalf("kmem allocs = %d, want one more page", a.KmemAllocs)
	}
	_ = m
}

func TestMGetInlineTriggerFires(t *testing.T) {
	k, a := newAlloc()
	var addrs []uint32
	k.SetTrigger(func(addr uint32) { addrs = append(addrs, addr) })
	p := NewMbufPool(a)
	p.SetMGetInline(0x1002)
	p.MGet()
	if len(addrs) != 1 || addrs[0] != 0x1002 {
		t.Fatalf("inline triggers = %v", addrs)
	}
}

func TestMGetCluster(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	m := p.MGetCluster()
	if !m.Cluster {
		t.Fatal("no cluster")
	}
	if p.ClusterGets != 1 {
		t.Fatalf("cluster gets = %d", p.ClusterGets)
	}
}

func TestMGetExternal(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	m := p.MGetExternal(bus.ISA8, 1500)
	if m.Region != bus.ISA8 || m.Len != 1500 || !m.Cluster {
		t.Fatalf("external mbuf = %+v", m)
	}
}

func TestChainOperations(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	var head *Mbuf
	for i := 0; i < 3; i++ {
		m := p.MGet()
		m.Len = 100 * (i + 1)
		head = AppendChain(head, m)
	}
	if head.ChainCount() != 3 {
		t.Fatalf("chain count = %d", head.ChainCount())
	}
	if head.ChainLen() != 600 {
		t.Fatalf("chain len = %d", head.ChainLen())
	}
	freed := p.MFreeChain(head)
	if freed != 3 || p.MFrees != 3 {
		t.Fatalf("freed = %d, MFrees = %d", freed, p.MFrees)
	}
}

func TestAppendChainNilHead(t *testing.T) {
	m := &Mbuf{Len: 5}
	if AppendChain(nil, m) != m {
		t.Fatal("AppendChain(nil, m) != m")
	}
}

func TestMFreeNilPanics(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MFree(nil)
}

// Property: any mix of mallocs and frees keeps BytesInUse equal to the sum
// of outstanding request sizes, and bucket free counts never go negative.
func TestAllocatorAccountingProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		_, a := newAlloc()
		var live []*Block
		var want int64
		for i, s := range sizes {
			size := int(s%8192) + 1
			if i%3 == 2 && len(live) > 0 {
				b := live[len(live)-1]
				live = live[:len(live)-1]
				want -= int64(b.Size)
				a.Free(b)
				continue
			}
			b := a.Malloc(size)
			live = append(live, b)
			want += int64(size)
		}
		return a.BytesInUse == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListDepthSeam(t *testing.T) {
	_, a := newAlloc()
	p := NewMbufPool(a)
	// Default bound: the fifth free really frees.
	var ms []*Mbuf
	for i := 0; i < 6; i++ {
		ms = append(ms, p.MGet())
	}
	for _, m := range ms {
		p.MFree(m)
	}
	if p.FreeListLen() != 4 || p.PoolFrees != 2 {
		t.Fatalf("default bound: list %d, pool frees %d", p.FreeListLen(), p.PoolFrees)
	}
	// A deeper pool swallows the same burst without real frees.
	p2 := NewMbufPool(a)
	p2.SetFreeListDepth(16)
	ms = ms[:0]
	for i := 0; i < 6; i++ {
		ms = append(ms, p2.MGet())
	}
	for _, m := range ms {
		p2.MFree(m)
	}
	if p2.FreeListLen() != 6 || p2.PoolFrees != 0 {
		t.Fatalf("deep pool: list %d, pool frees %d", p2.FreeListLen(), p2.PoolFrees)
	}
	// n <= 0 restores the Net/2 default.
	p2.SetFreeListDepth(0)
	if p2.freeListBound() != 4 {
		t.Fatalf("restored bound = %d", p2.freeListBound())
	}
}
