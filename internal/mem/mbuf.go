package mem

import (
	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// Mbuf sizes, as in 4.3BSD/Net2-era kernels.
const (
	MSize    = 128  // plain mbuf
	MHLen    = 108  // data bytes in a plain mbuf (header overhead removed)
	MCLBytes = 1024 // cluster size — the paper's "1Kbyte mbuf cluster"
)

// Mbuf is a network memory buffer. Data is represented only by length and
// the memory region it lives in; the simulation charges bus time for every
// copy and checksum over it.
type Mbuf struct {
	Len     int
	Cluster bool
	// Region is where the data bytes live. External mbufs pointing at
	// controller memory (the paper's what-if) carry bus.ISA8.
	Region bus.Region
	Next   *Mbuf // next buffer in this packet's chain

	// Frame, when set on a chain's head, is the raw frame buffer whose
	// bytes this chain carries; freeing the mbuf hands the buffer to the
	// pool's frame recycler. Receivers that keep payload bytes must copy
	// them out before freeing the chain.
	Frame []byte

	blk *Block // backing storage from the bucket allocator
}

// ChainLen reports the total data length of the chain starting at m.
func (m *Mbuf) ChainLen() int {
	n := 0
	for ; m != nil; m = m.Next {
		n += m.Len
	}
	return n
}

// ChainCount reports the number of mbufs in the chain.
func (m *Mbuf) ChainCount() int {
	c := 0
	for ; m != nil; m = m.Next {
		c++
	}
	return c
}

// MbufPool is the mbuf layer, Net/2 style: plain mbufs are malloc'd
// individually with a small free list in front (MGET pops the list, falls
// back to malloc; MFREE pushes, overflowing back to free). Under bursty
// interrupt-side allocation and batched process-side freeing the list
// oscillates, producing the steady malloc/free traffic visible in the
// paper's Figure 3 profile. Clusters come from a dedicated page pool
// (mb_map), not the malloc buckets.
type MbufPool struct {
	k *kernel.Kernel
	a *Allocator

	freeBlks    []*Block // free list of malloc'd plain mbufs
	freeCluster int

	// spare recycles Mbuf structs themselves, and arena block-allocates
	// them before any have been freed (simulator-side, no cost model: the
	// real kernel's mbufs live inside the malloc'd blocks). The arena is
	// append-only at fixed capacity, so carved pointers stay valid.
	spare []*Mbuf
	arena []Mbuf

	// frameRecycler, when set, receives the Frame buffer of each freed
	// mbuf that carries one.
	frameRecycler func([]byte)

	// mgetInline is the inline '=' trigger address assigned by the
	// instrumentation pass for the MGET macro; 0 when not instrumented.
	mgetInline uint32

	// freeListDepth bounds the plain-mbuf free list; 0 means the Net/2
	// default of freeListMax. Deepening it is the "mbuf pooling" proposed
	// change: the list stops oscillating under bursty interrupt-side
	// allocation, so the steady malloc/free traffic disappears.
	freeListDepth int

	// Statistics.
	MGets, MFrees uint64
	ClusterGets   uint64
	PoolMallocs   uint64 // free-list misses that fell back to malloc
	PoolFrees     uint64 // free-list overflows returned to free
}

// Calibrated costs: MGET is a macro fast path — a handful of instructions
// plus the splimp protection; cluster gets add page-pool bookkeeping.
const (
	costMGet     = 6 * sim.Microsecond
	costMFree    = 5 * sim.Microsecond
	costClustGet = 9 * sim.Microsecond

	// freeListMax bounds the plain-mbuf free list; beyond it MFREE
	// really frees.
	freeListMax = 4
	// clusterPoolMax bounds the cluster pool; clusters per page = 4.
	clusterPoolMax = 16

	// spareMax bounds the Mbuf-struct recycle list; mbufArenaCap covers
	// the steady in-flight mbuf population of a saturated receive run.
	spareMax     = 64
	mbufArenaCap = 96
)

// NewMbufPool builds the pool on an allocator.
func NewMbufPool(a *Allocator) *MbufPool {
	return &MbufPool{
		k:        a.k,
		a:        a,
		freeBlks: make([]*Block, 0, freeListMax),
		spare:    make([]*Mbuf, 0, spareMax),
	}
}

// SetMGetInline installs the inline trigger address for the MGET macro.
func (p *MbufPool) SetMGetInline(addr uint32) { p.mgetInline = addr }

// SetFreeListDepth rebounds the plain-mbuf free list; n <= 0 restores
// the Net/2 default. Applying a deeper pool is a proposed kernel change
// the optimize-verify loop can re-profile.
func (p *MbufPool) SetFreeListDepth(n int) { p.freeListDepth = n }

// freeListBound reports the active free-list bound.
func (p *MbufPool) freeListBound() int {
	if p.freeListDepth > 0 {
		return p.freeListDepth
	}
	return freeListMax
}

// SetFrameRecycler installs f as the destination for Frame buffers carried
// by freed mbufs (the netstack's frame pool).
func (p *MbufPool) SetFrameRecycler(f func([]byte)) { p.frameRecycler = f }

// MGet allocates a plain mbuf: the MGET macro — inline trigger, the splimp
// dance (modeled as splnet), free-list pop or malloc fallback.
func (p *MbufPool) MGet() *Mbuf {
	p.MGets++
	p.k.Inline(p.mgetInline)
	s := p.k.SplNet()
	p.k.Advance(costMGet)
	var blk *Block
	if n := len(p.freeBlks); n > 0 {
		blk = p.freeBlks[n-1]
		p.freeBlks = p.freeBlks[:n-1]
	} else {
		p.PoolMallocs++
		blk = p.a.Malloc(MSize)
	}
	p.k.SplX(s)
	if n := len(p.spare); n > 0 {
		m := p.spare[n-1]
		p.spare[n-1] = nil
		p.spare = p.spare[:n-1]
		*m = Mbuf{Region: bus.MainMemory, blk: blk}
		return m
	}
	if p.arena == nil {
		p.arena = make([]Mbuf, 0, mbufArenaCap)
	}
	if len(p.arena) < cap(p.arena) {
		p.arena = append(p.arena, Mbuf{Region: bus.MainMemory, blk: blk})
		return &p.arena[len(p.arena)-1]
	}
	return &Mbuf{Region: bus.MainMemory, blk: blk}
}

// MGetCluster allocates an mbuf with a 1 KiB cluster attached, drawn from
// the dedicated cluster page pool.
func (p *MbufPool) MGetCluster() *Mbuf {
	m := p.MGet()
	p.ClusterGets++
	p.k.Advance(costClustGet)
	if p.freeCluster == 0 {
		// Wire a fresh page into mb_map: four clusters.
		p.a.KmemAlloc(1)
		p.freeCluster = PageSize / MCLBytes
	}
	p.freeCluster--
	m.Cluster = true
	return m
}

// MGetExternal allocates an mbuf header whose data lives in device memory —
// the paper's proposed driver optimisation of linking controller buffers
// directly into the chain instead of copying.
func (p *MbufPool) MGetExternal(region bus.Region, length int) *Mbuf {
	m := p.MGet()
	m.Region = region
	m.Len = length
	m.Cluster = true
	return m
}

// MFree releases one mbuf (not its chain): push the free list or, past the
// watermark, really free.
func (p *MbufPool) MFree(m *Mbuf) {
	if m == nil {
		panic("mem: MFree(nil)")
	}
	p.MFrees++
	s := p.k.SplNet()
	p.k.Advance(costMFree)
	if m.Cluster && m.Region == bus.MainMemory {
		p.freeCluster++
		if p.freeCluster > clusterPoolMax {
			p.a.KmemFree(1)
			p.freeCluster -= PageSize / MCLBytes
		}
	}
	if m.blk != nil {
		if len(p.freeBlks) < p.freeListBound() {
			p.freeBlks = append(p.freeBlks, m.blk)
		} else {
			p.PoolFrees++
			p.a.Free(m.blk)
		}
		m.blk = nil
	}
	if m.Frame != nil {
		if p.frameRecycler != nil {
			p.frameRecycler(m.Frame)
		}
		m.Frame = nil
	}
	if m.Next == nil && len(p.spare) < spareMax {
		p.spare = append(p.spare, m)
	}
	p.k.SplX(s)
}

// MFreeChain releases a whole chain and reports how many mbufs it freed.
func (p *MbufPool) MFreeChain(m *Mbuf) int {
	n := 0
	for m != nil {
		next := m.Next
		m.Next = nil
		p.MFree(m)
		m = next
		n++
	}
	return n
}

// FreeListLen reports the plain free-list length (for tests).
func (p *MbufPool) FreeListLen() int { return len(p.freeBlks) }

// AppendChain links more onto the tail of head and returns the head (or
// more, when head is nil).
func AppendChain(head, more *Mbuf) *Mbuf {
	if head == nil {
		return more
	}
	m := head
	for m.Next != nil {
		m = m.Next
	}
	m.Next = more
	return head
}
