package snmp

import "sort"

// LinearStore is the original CMU-style MIB: an ordered list searched from
// the front — O(n) comparisons per request.
type LinearStore struct {
	entries []Entry
}

// NewLinearStore returns an empty linear store.
func NewLinearStore() *LinearStore { return &LinearStore{} }

// Insert adds or replaces an entry, keeping the list ordered (insertion is
// not what the paper measured, so it may be as slow as it likes).
func (s *LinearStore) Insert(e Entry) {
	i := sort.Search(len(s.entries), func(i int) bool {
		return s.entries[i].OID.Compare(e.OID) >= 0
	})
	if i < len(s.entries) && s.entries[i].OID.Compare(e.OID) == 0 {
		s.entries[i] = e
		return
	}
	s.entries = append(s.entries, Entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// Lookup scans from the front, exactly as the original agent did.
func (s *LinearStore) Lookup(oid OID) (Entry, int, bool) {
	cmps := 0
	for _, e := range s.entries {
		cmps++
		switch e.OID.Compare(oid) {
		case 0:
			return e, cmps, true
		case 1:
			return Entry{}, cmps, false // passed it: ordered list
		}
	}
	return Entry{}, cmps, false
}

// Next scans for the first entry beyond oid.
func (s *LinearStore) Next(oid OID) (Entry, int, bool) {
	cmps := 0
	for _, e := range s.entries {
		cmps++
		if e.OID.Compare(oid) > 0 {
			return e, cmps, true
		}
	}
	return Entry{}, cmps, false
}

// Len reports the entry count.
func (s *LinearStore) Len() int { return len(s.entries) }

// BTreeStore is the redesigned MIB: a B-tree of order btreeOrder.
type BTreeStore struct {
	root *btreeNode
	n    int
}

const btreeOrder = 16 // max children per node

type btreeNode struct {
	entries  []Entry      // len < btreeOrder
	children []*btreeNode // len == len(entries)+1, nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// NewBTreeStore returns an empty B-tree store.
func NewBTreeStore() *BTreeStore { return &BTreeStore{root: &btreeNode{}} }

// Len reports the entry count.
func (s *BTreeStore) Len() int { return s.n }

// Insert adds or replaces an entry.
func (s *BTreeStore) Insert(e Entry) {
	if replaced := s.root.replace(e); replaced {
		return
	}
	s.n++
	if len(s.root.entries) == btreeOrder-1 {
		old := s.root
		s.root = &btreeNode{children: []*btreeNode{old}}
		s.root.splitChild(0)
	}
	s.root.insertNonFull(e)
}

// replace updates an existing key in place; reports whether it existed.
func (n *btreeNode) replace(e Entry) bool {
	i := sort.Search(len(n.entries), func(i int) bool {
		return n.entries[i].OID.Compare(e.OID) >= 0
	})
	if i < len(n.entries) && n.entries[i].OID.Compare(e.OID) == 0 {
		n.entries[i] = e
		return true
	}
	if n.leaf() {
		return false
	}
	return n.children[i].replace(e)
}

func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.entries) / 2
	up := child.entries[mid]
	right := &btreeNode{
		entries: append([]Entry(nil), child.entries[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]
	n.entries = append(n.entries, Entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = up
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insertNonFull(e Entry) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return n.entries[i].OID.Compare(e.OID) >= 0
	})
	if n.leaf() {
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return
	}
	if len(n.children[i].entries) == btreeOrder-1 {
		n.splitChild(i)
		if e.OID.Compare(n.entries[i].OID) > 0 {
			i++
		}
	}
	n.children[i].insertNonFull(e)
}

// Lookup descends the tree, binary-searching each node.
func (s *BTreeStore) Lookup(oid OID) (Entry, int, bool) {
	cmps := 0
	n := s.root
	for n != nil {
		lo, hi := 0, len(n.entries)
		for lo < hi {
			m := (lo + hi) / 2
			cmps++
			switch n.entries[m].OID.Compare(oid) {
			case 0:
				return n.entries[m], cmps, true
			case -1:
				lo = m + 1
			default:
				hi = m
			}
		}
		if n.leaf() {
			return Entry{}, cmps, false
		}
		n = n.children[lo]
	}
	return Entry{}, cmps, false
}

// Next finds the successor of oid.
func (s *BTreeStore) Next(oid OID) (Entry, int, bool) {
	cmps := 0
	var best *Entry
	n := s.root
	for n != nil {
		// Find the first entry > oid in this node.
		lo, hi := 0, len(n.entries)
		for lo < hi {
			m := (lo + hi) / 2
			cmps++
			if n.entries[m].OID.Compare(oid) > 0 {
				hi = m
			} else {
				lo = m + 1
			}
		}
		if lo < len(n.entries) {
			best = &n.entries[lo]
		}
		if n.leaf() {
			break
		}
		n = n.children[lo]
	}
	if best == nil {
		return Entry{}, cmps, false
	}
	return *best, cmps, true
}
