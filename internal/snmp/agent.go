package snmp

import (
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// Agent is the SNMP agent under profile: it services GET/GETNEXT requests
// against a Store, charging virtual time per key comparison plus fixed
// request-processing overhead (BER decode, response encode). The original
// study ran on a 68020 embedded platform; the per-comparison cost reflects
// an OID compare loop on that class of machine.
type Agent struct {
	k     *kernel.Kernel
	store Store

	fnInput  *kernel.Fn
	fnLookup *kernel.Fn
	fnNext   *kernel.Fn

	// Statistics.
	Requests    uint64
	Comparisons uint64
}

// Costs: BER parse/build dominate the fixed part; each OID comparison is a
// short loop.
const (
	costRequestFixed = 180 * sim.Microsecond
	costPerCompare   = 3 * sim.Microsecond
)

// NewAgent attaches an agent using the given store implementation. name
// distinguishes the registered function names when two agents coexist in
// one kernel (e.g. "lin" and "btree").
func NewAgent(k *kernel.Kernel, store Store, name string) *Agent {
	return &Agent{
		k:        k,
		store:    store,
		fnInput:  k.RegisterFn("snmp", "snmp_input_"+name),
		fnLookup: k.RegisterFn("snmp", "mib_lookup_"+name),
		fnNext:   k.RegisterFn("snmp", "mib_next_"+name),
	}
}

// Store exposes the underlying MIB store.
func (a *Agent) Store() Store { return a.store }

// Get services one SNMP GET.
func (a *Agent) Get(oid OID) (Entry, bool) {
	a.Requests++
	var e Entry
	var ok bool
	a.k.Call(a.fnInput, func() {
		a.k.Advance(costRequestFixed)
		a.k.Call(a.fnLookup, func() {
			var cmps int
			e, cmps, ok = a.store.Lookup(oid)
			a.Comparisons += uint64(cmps)
			a.k.Advance(sim.Time(cmps) * costPerCompare)
		})
	})
	return e, ok
}

// GetNext services one SNMP GETNEXT.
func (a *Agent) GetNext(oid OID) (Entry, bool) {
	a.Requests++
	var e Entry
	var ok bool
	a.k.Call(a.fnInput, func() {
		a.k.Advance(costRequestFixed)
		a.k.Call(a.fnNext, func() {
			var cmps int
			e, cmps, ok = a.store.Next(oid)
			a.Comparisons += uint64(cmps)
			a.k.Advance(sim.Time(cmps) * costPerCompare)
		})
	})
	return e, ok
}

// Walk performs a full GETNEXT sweep of the MIB (the classic snmpwalk) and
// returns the number of variables visited.
func (a *Agent) Walk() int {
	var cur OID
	count := 0
	for {
		e, ok := a.GetNext(cur)
		if !ok {
			return count
		}
		count++
		cur = e.OID
	}
}

// StandardMIB populates a store with n entries shaped like MIB-II tables:
// interfaces, IP, TCP rows under distinct prefixes.
func StandardMIB(s Store, n int) {
	prefixes := []OID{
		{1, 3, 6, 1, 2, 1, 2, 2, 1},  // ifTable
		{1, 3, 6, 1, 2, 1, 4, 20, 1}, // ipAddrTable
		{1, 3, 6, 1, 2, 1, 6, 13, 1}, // tcpConnTable
		{1, 3, 6, 1, 2, 1, 1},        // system
	}
	for i := 0; i < n; i++ {
		p := prefixes[i%len(prefixes)]
		oid := append(p.Clone(), uint32(i/len(prefixes)+1), uint32(i%7+1))
		s.Insert(Entry{OID: oid, Value: int64(i * 17)})
	}
}
