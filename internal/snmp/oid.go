// Package snmp reproduces the paper's SNMP case study: a CMU-derived agent
// whose MIB was searched linearly, which the Profiler exposed as the major
// bottleneck; "redesigning the data structure to use a B-tree to hold the
// MIB data reduced the CPU cycles required to respond to SNMP requests by
// an order of magnitude."
//
// Both stores are real data structures (a slice scan and a genuine B-tree);
// the agent charges virtual time per key comparison so the Profiler sees
// the same order-of-magnitude effect the paper reports.
package snmp

// OID is an SNMP object identifier.
type OID []uint32

// Compare orders OIDs lexicographically, shorter-prefix first.
func (a OID) Compare(b OID) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Clone copies the OID.
func (a OID) Clone() OID {
	c := make(OID, len(a))
	copy(c, a)
	return c
}

// Entry is one MIB variable binding.
type Entry struct {
	OID   OID
	Value int64
}

// Store is a MIB variable store. Lookup and Next report how many key
// comparisons they performed so the agent can charge time for them.
type Store interface {
	// Insert adds or replaces an entry.
	Insert(e Entry)
	// Lookup finds an exact OID (SNMP GET).
	Lookup(oid OID) (Entry, int, bool)
	// Next finds the first entry strictly after oid (SNMP GETNEXT).
	Next(oid OID) (Entry, int, bool)
	// Len reports the number of entries.
	Len() int
}
