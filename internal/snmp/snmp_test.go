package snmp

import (
	"sort"
	"testing"
	"testing/quick"

	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func TestOIDCompare(t *testing.T) {
	cases := []struct {
		a, b OID
		want int
	}{
		{OID{1, 3, 6}, OID{1, 3, 6}, 0},
		{OID{1, 3}, OID{1, 3, 6}, -1},
		{OID{1, 3, 6}, OID{1, 3}, 1},
		{OID{1, 3, 5}, OID{1, 3, 6}, -1},
		{OID{2}, OID{1, 9, 9}, 1},
		{nil, OID{1}, -1},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func buildStores(n int) (*LinearStore, *BTreeStore) {
	lin, bt := NewLinearStore(), NewBTreeStore()
	StandardMIB(lin, n)
	StandardMIB(bt, n)
	return lin, bt
}

func TestStoresAgreeOnLookup(t *testing.T) {
	lin, bt := buildStores(500)
	if lin.Len() != bt.Len() {
		t.Fatalf("sizes differ: %d vs %d", lin.Len(), bt.Len())
	}
	// Every entry found in one is found in the other with the same value.
	var cur OID
	for {
		e, _, ok := lin.Next(cur)
		if !ok {
			break
		}
		le, _, lok := lin.Lookup(e.OID)
		be, _, bok := bt.Lookup(e.OID)
		if !lok || !bok || le.Value != be.Value {
			t.Fatalf("disagreement at %v: %v/%v %v/%v", e.OID, le, lok, be, bok)
		}
		cur = e.OID
	}
	// A missing OID is missing in both.
	if _, _, ok := bt.Lookup(OID{9, 9, 9}); ok {
		t.Fatal("phantom entry in btree")
	}
	if _, _, ok := lin.Lookup(OID{9, 9, 9}); ok {
		t.Fatal("phantom entry in list")
	}
}

func TestStoresAgreeOnWalk(t *testing.T) {
	lin, bt := buildStores(300)
	var curL, curB OID
	for i := 0; ; i++ {
		le, _, lok := lin.Next(curL)
		be, _, bok := bt.Next(curB)
		if lok != bok {
			t.Fatalf("walk diverged at step %d: %v vs %v", i, lok, bok)
		}
		if !lok {
			break
		}
		if le.OID.Compare(be.OID) != 0 || le.Value != be.Value {
			t.Fatalf("walk step %d: %v=%d vs %v=%d", i, le.OID, le.Value, be.OID, be.Value)
		}
		curL, curB = le.OID, be.OID
	}
}

func TestBTreeOrderedAfterRandomInserts(t *testing.T) {
	bt := NewBTreeStore()
	// Insert in a scrambled order.
	var oids []OID
	for i := 0; i < 1000; i++ {
		oids = append(oids, OID{1, 3, uint32((i * 7919) % 1000), uint32(i % 13)})
	}
	for i, o := range oids {
		bt.Insert(Entry{OID: o, Value: int64(i)})
	}
	// Walk must come out sorted and complete.
	var prev OID
	count := 0
	cur := OID(nil)
	for {
		e, _, ok := bt.Next(cur)
		if !ok {
			break
		}
		if prev != nil && e.OID.Compare(prev) <= 0 {
			t.Fatalf("walk out of order: %v after %v", e.OID, prev)
		}
		prev = e.OID
		cur = e.OID
		count++
	}
	// Dedupe expectation.
	uniq := map[string]bool{}
	for _, o := range oids {
		uniq[oidKey(o)] = true
	}
	if count != len(uniq) {
		t.Fatalf("walked %d entries, want %d", count, len(uniq))
	}
	if bt.Len() != len(uniq) {
		t.Fatalf("Len = %d, want %d", bt.Len(), len(uniq))
	}
}

func oidKey(o OID) string {
	b := make([]byte, 0, len(o)*4)
	for _, v := range o {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

func TestInsertReplaces(t *testing.T) {
	for _, s := range []Store{NewLinearStore(), NewBTreeStore()} {
		s.Insert(Entry{OID: OID{1, 2, 3}, Value: 1})
		s.Insert(Entry{OID: OID{1, 2, 3}, Value: 2})
		if s.Len() != 1 {
			t.Fatalf("Len = %d after replace", s.Len())
		}
		e, _, ok := s.Lookup(OID{1, 2, 3})
		if !ok || e.Value != 2 {
			t.Fatalf("Lookup = %v %v", e, ok)
		}
	}
}

func TestBTreeComparisonsLogarithmic(t *testing.T) {
	lin, bt := buildStores(2000)
	target, _, _ := lin.Next(nil) // first entry: worst case favours linear!
	// Use a late entry to show the linear cost.
	var last Entry
	cur := OID(nil)
	for {
		e, _, ok := lin.Next(cur)
		if !ok {
			break
		}
		last = e
		cur = e.OID
	}
	_, linCmps, ok1 := lin.Lookup(last.OID)
	_, btCmps, ok2 := bt.Lookup(last.OID)
	if !ok1 || !ok2 {
		t.Fatal("lookup failed")
	}
	if linCmps < 1000 {
		t.Fatalf("linear comparisons = %d, want O(n)", linCmps)
	}
	if btCmps > 40 {
		t.Fatalf("btree comparisons = %d, want O(log n)", btCmps)
	}
	_ = target
}

func TestAgentOrderOfMagnitude(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	lin, bt := buildStores(1000)
	la := NewAgent(k, lin, "lin")
	ba := NewAgent(k, bt, "btree")

	start := k.Now()
	if n := la.Walk(); n != 1000 {
		t.Fatalf("linear walk visited %d", n)
	}
	linTime := k.Now() - start

	start = k.Now()
	if n := ba.Walk(); n != 1000 {
		t.Fatalf("btree walk visited %d", n)
	}
	btTime := k.Now() - start

	ratio := float64(linTime) / float64(btTime)
	// Paper: "reduced the CPU cycles required to respond to SNMP requests
	// by an order of magnitude."
	if ratio < 5 {
		t.Fatalf("linear/btree = %.1fx, want ≥5x (paper: ~10x)", ratio)
	}
	if la.Requests != ba.Requests {
		t.Fatalf("request counts differ: %d vs %d", la.Requests, ba.Requests)
	}
}

func TestAgentGet(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	bt := NewBTreeStore()
	StandardMIB(bt, 100)
	a := NewAgent(k, bt, "x")
	e, _, _ := bt.Next(nil)
	got, ok := a.Get(e.OID)
	if !ok || got.Value != e.Value {
		t.Fatalf("Get = %v %v", got, ok)
	}
	if _, ok := a.Get(OID{9}); ok {
		t.Fatal("phantom get")
	}
	if k.Now() == 0 {
		t.Fatal("agent charged no time")
	}
	if a.Comparisons == 0 {
		t.Fatal("no comparisons recorded")
	}
}

// Property: for random OID sets, the B-tree agrees with a sorted slice on
// every Lookup and Next.
func TestBTreeEquivalenceProperty(t *testing.T) {
	prop := func(seeds []uint16) bool {
		bt := NewBTreeStore()
		var all []OID
		seen := map[string]bool{}
		for i, s := range seeds {
			o := OID{uint32(s % 50), uint32(s % 7), uint32(i % 5)}
			if !seen[oidKey(o)] {
				seen[oidKey(o)] = true
				all = append(all, o)
			}
			bt.Insert(Entry{OID: o, Value: int64(i)})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Compare(all[j]) < 0 })
		if bt.Len() != len(all) {
			return false
		}
		// Next from every point agrees with the sorted slice.
		cur := OID(nil)
		for _, want := range all {
			e, _, ok := bt.Next(cur)
			if !ok || e.OID.Compare(want) != 0 {
				return false
			}
			cur = e.OID
		}
		_, _, ok := bt.Next(cur)
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkTimeScalesWithStore(t *testing.T) {
	k := kernel.New(kernel.Config{Seed: 1})
	small := NewBTreeStore()
	StandardMIB(small, 50)
	a := NewAgent(k, small, "small")
	start := k.Now()
	a.Walk()
	smallTime := k.Now() - start
	if smallTime <= 0 {
		t.Fatal("no time charged")
	}
	_ = sim.Time(0)
}
