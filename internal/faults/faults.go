// Package faults is a deterministic, seedable fault injector for the
// Profiler card model. The paper's card is analog-adjacent hardware — a
// wire-wrapped prototype piggy-backed on an EPROM socket — and McRae names
// its real failure modes: RAM overflow, timer wraparound, and strobes that
// never make it into the RAM. Production profilers treat corrupted and
// partial traces as the common case; this package makes every scenario a
// robustness scenario by corrupting captures in exactly those
// paper-plausible ways:
//
//   - DropStrobe: a latch strobe lost on the way to the RAM (marginal
//     timing on the address-strobe line).
//   - DupStrobe: a strobe stored twice (a bounced strobe line).
//   - TagFlip: a single-bit flip on one of the 16 tag lines.
//   - StampFlip: a single-bit flip in the stored 24-bit timestamp.
//   - Jitter: the free-running counter read mid-settle, off by a few
//     ticks in either direction.
//   - ReadoutGlitch: a single byte misread during socket readout (the
//     drain pipeline's fast-dump path).
//   - BankBurst: a contiguous run of one RAM bank corrupted during a
//     drain (a marginal bank-select multiplexer).
//
// The injector implements hw.FaultHook and sits below the card's
// bookkeeping: a dropped strobe is lost silently, exactly as the real
// hardware would lose it. Everything is driven by one splitmix64 stream, so
// a (seed, rate) pair reproduces the same corruption bit for bit — the
// differential test harness depends on that.
package faults

import (
	"fmt"

	"kprof/internal/hw"
	"kprof/internal/sim"
)

// Class is a bitmask of fault classes to enable.
type Class uint32

// The fault classes. CaptureClasses corrupt the latch path; ReadoutClasses
// corrupt the EPROM-window readout used by the drain pipeline.
const (
	DropStrobe Class = 1 << iota
	DupStrobe
	TagFlip
	StampFlip
	Jitter
	ReadoutGlitch
	BankBurst

	// CaptureClasses are the classes applied per latch strobe.
	CaptureClasses = DropStrobe | DupStrobe | TagFlip | StampFlip | Jitter
	// ReadoutClasses are the classes applied during socket readout.
	ReadoutClasses = ReadoutGlitch | BankBurst
	// AllClasses enables everything.
	AllClasses = CaptureClasses | ReadoutClasses
)

// String names the class set for reports and errors.
func (c Class) String() string {
	names := []struct {
		bit  Class
		name string
	}{
		{DropStrobe, "drop"}, {DupStrobe, "dup"}, {TagFlip, "tagflip"},
		{StampFlip, "stampflip"}, {Jitter, "jitter"},
		{ReadoutGlitch, "glitch"}, {BankBurst, "burst"},
	}
	out := ""
	for _, n := range names {
		if c&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Config describes one injector. The zero value injects nothing; a Config
// attached to a session with Rate 0 is a pure pass-through, byte-identical
// to running with no injector at all (the property tests prove it).
type Config struct {
	// Seed drives the deterministic fault stream. Sweeps derive a
	// distinct per-seed stream with DeriveSeed.
	Seed uint64
	// Rate is the per-strobe fault probability in [0, 1]: each latch
	// strobe suffers one fault, drawn uniformly from the enabled capture
	// classes, with this probability.
	Rate float64
	// Classes selects the enabled fault classes; zero means AllClasses.
	Classes Class
	// JitterTicks bounds timer jitter: a jittered stamp is off by up to
	// this many ticks in either direction. 0 means 16.
	JitterTicks uint32
	// ReadoutRate is the per-byte misread probability during socket
	// readout; 0 means Rate/64 (readout is far more reliable than the
	// asynchronous latch path).
	ReadoutRate float64
	// BurstLen bounds a partial-bank corruption run in bytes; 0 means 32.
	// Each bank of each drain suffers a burst with probability Rate.
	BurstLen int
	// TimerBits is the card's stored counter width, so stamp flips land
	// on real timer lines; 0 means 24.
	TimerBits uint
}

// Stats counts what the injector has done. The card itself never sees
// these numbers — that is the point: the decode pipeline must survive the
// corruption without being told where it is.
type Stats struct {
	// Strobes counts latch strobes the injector inspected.
	Strobes uint64
	// Faults counts capture-path faults injected (the sum of the five
	// capture-class counters below).
	Faults uint64

	DroppedStrobes    uint64
	DuplicatedStrobes uint64
	TagFlips          uint64
	StampFlips        uint64
	Jittered          uint64

	// ReadoutGlitches counts single bytes misread during readout;
	// BurstBytes counts bytes corrupted by partial-bank bursts.
	ReadoutGlitches uint64
	BurstBytes      uint64
}

// Injected reports the total number of corruptions across both paths.
func (s Stats) Injected() uint64 { return s.Faults + s.ReadoutGlitches + s.BurstBytes }

// String summarizes the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d/%d strobes faulted (%d dropped, %d duplicated, %d tag flips, %d stamp flips, %d jittered), %d readout glitches, %d burst bytes",
		s.Faults, s.Strobes, s.DroppedStrobes, s.DuplicatedStrobes,
		s.TagFlips, s.StampFlips, s.Jittered, s.ReadoutGlitches, s.BurstBytes)
}

// Injector is a deterministic fault source implementing hw.FaultHook.
// It is not safe for concurrent use; each card gets its own.
type Injector struct {
	cfg     Config
	rng     *sim.Rand
	capture []Class // enabled capture classes, in bit order
	stats   Stats

	// Partial-bank burst state: decided once per (drain, bank) when
	// offset 0 of the bank is read.
	burstBank        int
	burstLo, burstHi uint32
	burstOn          bool
}

// New builds an injector from cfg, applying the documented defaults.
func New(cfg Config) *Injector {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		panic(fmt.Sprintf("faults: rate %v outside [0,1]", cfg.Rate))
	}
	if cfg.Classes == 0 {
		cfg.Classes = AllClasses
	}
	if cfg.JitterTicks == 0 {
		cfg.JitterTicks = 16
	}
	if cfg.ReadoutRate == 0 {
		cfg.ReadoutRate = cfg.Rate / 64
	}
	if cfg.BurstLen == 0 {
		cfg.BurstLen = 32
	}
	if cfg.TimerBits == 0 {
		cfg.TimerBits = hw.TimerBits
	}
	in := &Injector{cfg: cfg, rng: sim.NewRand(cfg.Seed), burstBank: -1}
	for bit := DropStrobe; bit <= Jitter; bit <<= 1 {
		if cfg.Classes&bit != 0 {
			in.capture = append(in.capture, bit)
		}
	}
	return in
}

// Config reports the injector's effective configuration (defaults applied).
func (in *Injector) Config() Config { return in.cfg }

// Stats reports what the injector has injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// Latch implements hw.FaultHook: with probability Rate, one capture-class
// fault is applied to the strobe.
func (in *Injector) Latch(r hw.Record) (hw.Record, hw.LatchVerdict) {
	in.stats.Strobes++
	if len(in.capture) == 0 || !in.rng.Bool(in.cfg.Rate) {
		return r, hw.LatchKeep
	}
	in.stats.Faults++
	switch in.capture[in.rng.Intn(len(in.capture))] {
	case DropStrobe:
		in.stats.DroppedStrobes++
		return r, hw.LatchDrop
	case DupStrobe:
		in.stats.DuplicatedStrobes++
		return r, hw.LatchDup
	case TagFlip:
		in.stats.TagFlips++
		r.Tag ^= 1 << in.rng.Intn(16)
	case StampFlip:
		in.stats.StampFlips++
		r.Stamp ^= 1 << in.rng.Intn(int(in.cfg.TimerBits))
	case Jitter:
		in.stats.Jittered++
		j := in.rng.Intn(2*int(in.cfg.JitterTicks)+1) - int(in.cfg.JitterTicks)
		r.Stamp = uint32(int64(r.Stamp)+int64(j)) & (1<<in.cfg.TimerBits - 1)
	}
	return r, hw.LatchKeep
}

// ReadoutByte implements hw.FaultHook for the socket-readout path. Reaching
// offset 0 of a bank rolls that bank's partial-corruption burst; every byte
// additionally risks a single-bit misread at ReadoutRate.
func (in *Injector) ReadoutByte(bank int, offset uint32, b byte) byte {
	if offset == 0 || bank != in.burstBank {
		in.burstBank = bank
		in.burstOn = in.cfg.Classes&BankBurst != 0 && in.rng.Bool(in.cfg.Rate)
		if in.burstOn {
			in.burstLo = uint32(in.rng.Intn(hw.DefaultDepth))
			in.burstHi = in.burstLo + uint32(1+in.rng.Intn(in.cfg.BurstLen))
		}
	}
	if in.burstOn && offset >= in.burstLo && offset < in.burstHi {
		in.stats.BurstBytes++
		b ^= byte(1 + in.rng.Intn(255)) // never a no-op XOR
	}
	if in.cfg.Classes&ReadoutGlitch != 0 && in.rng.Bool(in.cfg.ReadoutRate) {
		in.stats.ReadoutGlitches++
		b ^= 1 << in.rng.Intn(8)
	}
	return b
}

// DeriveSeed folds a sweep seed into a base fault seed so every seed of a
// sweep gets a distinct but reproducible fault stream (the per-seed fault
// profile). The mix is splitmix64's finalizer over the pair.
func DeriveSeed(base, seed uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(seed+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
