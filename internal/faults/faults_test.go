package faults

import (
	"strings"
	"testing"

	"kprof/internal/hw"
)

// Two injectors with the same configuration must produce the identical
// fault stream — the differential test harness and the sweep's per-seed
// reproducibility depend on it.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Rate: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 5000; i++ {
		r := hw.Record{Tag: uint16(i * 2), Stamp: uint32(i * 37)}
		ra, va := a.Latch(r)
		rb, vb := b.Latch(r)
		if ra != rb || va != vb {
			t.Fatalf("strobe %d diverged: (%v,%v) vs (%v,%v)", i, ra, va, rb, vb)
		}
	}
	for i := 0; i < 2000; i++ {
		ba := a.ReadoutByte(i%hw.NumBanks, uint32(i), byte(i))
		bb := b.ReadoutByte(i%hw.NumBanks, uint32(i), byte(i))
		if ba != bb {
			t.Fatalf("readout byte %d diverged: %#x vs %#x", i, ba, bb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// Different seeds must produce different fault streams (overwhelmingly
// likely at a 10% rate over 5000 strobes).
func TestInjectorSeedsDiffer(t *testing.T) {
	a, b := New(Config{Seed: 1, Rate: 0.1}), New(Config{Seed: 2, Rate: 0.1})
	diverged := false
	for i := 0; i < 5000; i++ {
		r := hw.Record{Tag: uint16(i * 2), Stamp: uint32(i * 37)}
		ra, va := a.Latch(r)
		rb, vb := b.Latch(r)
		if ra != rb || va != vb {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 produced identical fault streams")
	}
}

// At rate 0 the injector is a pure pass-through: every record comes back
// untouched with LatchKeep, every readout byte unchanged, zero faults.
func TestRateZeroPassThrough(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 0})
	for i := 0; i < 10000; i++ {
		r := hw.Record{Tag: uint16(i), Stamp: uint32(i * 13)}
		got, v := in.Latch(r)
		if got != r || v != hw.LatchKeep {
			t.Fatalf("strobe %d modified at rate 0: %+v verdict %v", i, got, v)
		}
	}
	for i := 0; i < 10000; i++ {
		b := byte(i)
		if got := in.ReadoutByte(i%hw.NumBanks, uint32(i), b); got != b {
			t.Fatalf("readout byte %d modified at rate 0: %#x", i, got)
		}
	}
	st := in.Stats()
	if st.Injected() != 0 {
		t.Fatalf("injected %d faults at rate 0: %+v", st.Injected(), st)
	}
	if st.Strobes != 10000 {
		t.Fatalf("counted %d strobes, want 10000", st.Strobes)
	}
}

// Rate 1 with a single enabled class exercises exactly that class, and the
// per-class statistics account for every strobe.
func TestSingleClassStats(t *testing.T) {
	cases := []struct {
		class Class
		count func(s Stats) uint64
	}{
		{DropStrobe, func(s Stats) uint64 { return s.DroppedStrobes }},
		{DupStrobe, func(s Stats) uint64 { return s.DuplicatedStrobes }},
		{TagFlip, func(s Stats) uint64 { return s.TagFlips }},
		{StampFlip, func(s Stats) uint64 { return s.StampFlips }},
		{Jitter, func(s Stats) uint64 { return s.Jittered }},
	}
	for _, tc := range cases {
		t.Run(tc.class.String(), func(t *testing.T) {
			in := New(Config{Seed: 3, Rate: 1, Classes: tc.class})
			const n = 500
			for i := 0; i < n; i++ {
				in.Latch(hw.Record{Tag: uint16(i * 2), Stamp: uint32(i)})
			}
			st := in.Stats()
			if st.Faults != n || tc.count(st) != n {
				t.Fatalf("%s: faults=%d classCount=%d, want %d each", tc.class, st.Faults, tc.count(st), n)
			}
		})
	}
}

// A tag flip flips exactly one bit; a stamp flip stays within the timer
// width; jitter stays within the configured bound.
func TestFaultShapes(t *testing.T) {
	in := New(Config{Seed: 11, Rate: 1, Classes: TagFlip})
	for i := 0; i < 200; i++ {
		r := hw.Record{Tag: 0x1234, Stamp: 500}
		got, _ := in.Latch(r)
		diff := got.Tag ^ r.Tag
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("tag flip changed %016b bits, want exactly one", diff)
		}
		if got.Stamp != r.Stamp {
			t.Fatalf("tag flip touched the stamp: %d", got.Stamp)
		}
	}
	in = New(Config{Seed: 11, Rate: 1, Classes: StampFlip})
	for i := 0; i < 200; i++ {
		r := hw.Record{Tag: 2, Stamp: 0x00ABCDEF}
		got, _ := in.Latch(r)
		diff := got.Stamp ^ r.Stamp
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("stamp flip changed %024b bits, want exactly one", diff)
		}
		if diff > hw.TimerMask {
			t.Fatalf("stamp flip outside the %d-bit timer: %#x", hw.TimerBits, diff)
		}
	}
	const bound = 5
	in = New(Config{Seed: 11, Rate: 1, Classes: Jitter, JitterTicks: bound})
	for i := 0; i < 200; i++ {
		r := hw.Record{Tag: 2, Stamp: 1 << 20}
		got, _ := in.Latch(r)
		delta := int64(got.Stamp) - int64(r.Stamp)
		if delta < -bound || delta > bound {
			t.Fatalf("jitter of %d ticks outside ±%d", delta, bound)
		}
	}
}

// BankBurst and ReadoutGlitch corrupt the readout path and count bytes.
func TestReadoutFaults(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 1, Classes: BankBurst, BurstLen: 8})
	changed := 0
	// Scan past the full RAM depth so every bank's burst window (anywhere
	// in [0, DefaultDepth)) is covered.
	for bank := 0; bank < hw.NumBanks; bank++ {
		for off := uint32(0); off < hw.DefaultDepth+8; off++ {
			if in.ReadoutByte(bank, off, 0xAA) != 0xAA {
				changed++
			}
		}
	}
	st := in.Stats()
	if st.BurstBytes == 0 || uint64(changed) != st.BurstBytes {
		t.Fatalf("burst corrupted %d bytes, stats say %d (want nonzero and equal)", changed, st.BurstBytes)
	}
	if st.BurstBytes > uint64(hw.NumBanks*8) {
		t.Fatalf("burst corrupted %d bytes, want <= %d (BurstLen 8 per bank)", st.BurstBytes, hw.NumBanks*8)
	}

	in = New(Config{Seed: 5, Rate: 0, Classes: ReadoutGlitch, ReadoutRate: 1})
	for off := uint32(0); off < 100; off++ {
		got := in.ReadoutByte(0, off, 0x55)
		diff := got ^ 0x55
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("glitch changed %08b bits, want exactly one", diff)
		}
	}
	if g := in.Stats().ReadoutGlitches; g != 100 {
		t.Fatalf("counted %d glitches, want 100", g)
	}
}

// The injector never lets a corrupted stamp escape the timer width once
// the card re-masks, and New rejects rates outside [0,1].
func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted rate 1.5")
		}
	}()
	New(Config{Rate: 1.5})
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		d := DeriveSeed(42, seed)
		if seen[d] {
			t.Fatalf("collision at sweep seed %d", seed)
		}
		seen[d] = true
	}
	if DeriveSeed(42, 1) == DeriveSeed(43, 1) {
		t.Fatal("base seeds 42 and 43 derived the same stream seed")
	}
	if DeriveSeed(42, 1) != DeriveSeed(42, 1) {
		t.Fatal("DeriveSeed is not deterministic")
	}
}

func TestClassAndStatsStrings(t *testing.T) {
	if got := (DropStrobe | Jitter).String(); got != "drop+jitter" {
		t.Fatalf("class string %q", got)
	}
	if got := Class(0).String(); got != "none" {
		t.Fatalf("zero class string %q", got)
	}
	in := New(Config{Seed: 1, Rate: 1, Classes: DropStrobe})
	in.Latch(hw.Record{Tag: 2})
	if s := in.Stats().String(); !strings.Contains(s, "1 dropped") {
		t.Fatalf("stats string %q missing drop count", s)
	}
}
