package core

import (
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func TestSessionSetup(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Inst.Functions() < 60 {
		t.Fatalf("only %d functions instrumented", s.Inst.Functions())
	}
	if s.Inst.AsmFunctions == 0 {
		t.Fatal("no assembler routines instrumented")
	}
	// swtch is marked '!' in the tag file.
	e, ok := s.Tags.Lookup("swtch")
	if !ok || !e.ContextSwitch {
		t.Fatalf("swtch entry = %+v ok=%v", e, ok)
	}
	// MGET inline tag allocated.
	e, ok = s.Tags.Lookup("MGET")
	if !ok || !e.Inline {
		t.Fatalf("MGET entry = %+v ok=%v", e, ok)
	}
	// ProfileBase is a kernel-virtual ISA address above the kernel image.
	if s.Linked.ProfileBase < 0xFE000000 {
		t.Fatalf("ProfileBase = %#x", s.Linked.ProfileBase)
	}
	if s.Socket.Base() != 0xD0000 {
		t.Fatalf("socket base = %#x", s.Socket.Base())
	}
}

func TestTriggersReachCardThroughSocket(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	// Run a little kernel activity in process context.
	m.K.Spawn("worker", func(p *kernel.Proc) {
		m.K.Syscall(p, func() {
			blk := m.Alloc.Malloc(512)
			m.Alloc.Free(blk)
		})
	})
	m.K.Run(50 * sim.Millisecond)
	s.Disarm()
	c := s.Capture()
	if c.Len() == 0 {
		t.Fatal("no events captured")
	}
	a := s.Analyze()
	if _, ok := a.Fn("malloc"); !ok {
		t.Fatalf("malloc not in analysis; functions: %d", len(a.Functions()))
	}
	if _, ok := a.Fn("hardclock"); !ok {
		t.Fatal("clock interrupt not captured")
	}
}

func TestSelectiveProfiling(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{Modules: []string{"kern_malloc"}})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		blk := m.Alloc.Malloc(512)
		m.Alloc.Free(blk)
	})
	m.K.Run(30 * sim.Millisecond)
	a := s.Analyze()
	if _, ok := a.Fn("malloc"); !ok {
		t.Fatal("selected module not profiled")
	}
	if _, ok := a.Fn("hardclock"); ok {
		t.Fatal("unselected module leaked into the capture")
	}
}

func TestDetachKeepsTriggerCostOnly(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	s.Detach()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		m.K.Syscall(p, func() { m.K.Advance(sim.Millisecond) })
	})
	m.K.Run(20 * sim.Millisecond)
	if s.Card.Stored() != 0 {
		t.Fatalf("detached card stored %d events", s.Card.Stored())
	}
	s.Reattach()
	m.K.Spawn("worker2", func(p *kernel.Proc) {
		m.K.Syscall(p, func() { m.K.Advance(sim.Millisecond) })
	})
	m.K.Run(40 * sim.Millisecond)
	if s.Card.Stored() == 0 {
		t.Fatal("reattached card captured nothing")
	}
}

func TestAnalysisSurvivesCardOverflow(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{Depth: 256})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		for i := 0; i < 200; i++ {
			m.K.Syscall(p, func() {
				blk := m.Alloc.Malloc(256)
				m.Alloc.Free(blk)
			})
			p.Yield()
		}
	})
	m.K.Run(time500ms)
	if !s.Card.Overflowed() {
		t.Fatal("card should have overflowed")
	}
	a := s.Analyze()
	if !a.Stats.Overflowed {
		t.Fatal("overflow not propagated")
	}
	// The analysis still produces sane numbers from the truncated head.
	if len(a.Functions()) == 0 || a.Elapsed() <= 0 {
		t.Fatal("no analysis from overflowed capture")
	}
}

const time500ms = 500 * sim.Millisecond

func TestSubsystemMaps(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	mods := m.ModuleOf()
	if mods["tcp_input"] != "tcp_input" || mods["malloc"] != "kern_malloc" {
		t.Fatalf("ModuleOf: %v %v", mods["tcp_input"], mods["malloc"])
	}
	subs := m.SubsystemOf()
	if subs["tcp_input"] != "net" || subs["pmap_pte"] != "vm" || subs["bread"] != "fs" {
		t.Fatalf("SubsystemOf: tcp=%v pmap=%v bread=%v", subs["tcp_input"], subs["pmap_pte"], subs["bread"])
	}
}

func TestSessionString(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "ProfileBase") {
		t.Fatalf("String: %s", s)
	}
}

func TestNFSLazyAttach(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	c1, err := m.NFS()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.NFS()
	if err != nil || c1 != c2 {
		t.Fatal("NFS client not cached")
	}
}

// mallocStorm spawns a worker that generates records well past a small
// card's RAM depth: iters syscalls each doing a malloc/free pair.
func mallocStorm(m *Machine, iters int) {
	m.K.Spawn("storm", func(p *kernel.Proc) {
		for i := 0; i < iters; i++ {
			m.K.Syscall(p, func() {
				blk := m.Alloc.Malloc(256)
				m.Alloc.Free(blk)
			})
			p.Yield()
		}
	})
}

// The tentpole: a continuous-capture session drains the card before it
// overflows, so a workload generating many times the RAM depth loses
// nothing — every record lands in some host-side segment.
func TestContinuousCaptureOutrunsRAM(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 9})
	s, err := NewSession(m, ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{HighWater: 64, Interval: 20 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	mallocStorm(m, 400)
	m.K.Run(2 * sim.Second)
	s.Disarm()
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected multiple drain segments, got %d", len(segs))
	}
	total := 0
	var lost uint64
	for _, seg := range segs {
		total += seg.Capture.Len()
		lost += seg.Capture.Dropped
	}
	if total < 10*256 {
		t.Fatalf("captured %d records, want >= 10x the 256-entry RAM", total)
	}
	if lost != 0 {
		t.Fatalf("%d strobes lost despite drains", lost)
	}
	if s.Card.Stored() != 0 {
		t.Fatalf("%d records left on the card after Disarm", s.Card.Stored())
	}
	a := s.Analyze()
	if len(a.Segments) != len(segs) {
		t.Fatalf("analysis has %d segments, session drained %d", len(a.Segments), len(segs))
	}
	if a.Stats.Records != total {
		t.Fatalf("analysis decoded %d records, segments hold %d", a.Stats.Records, total)
	}
	if a.Stats.Dropped != 0 || a.Stats.Overflowed {
		t.Fatalf("loss reported on a lossless run: dropped=%d overflowed=%v",
			a.Stats.Dropped, a.Stats.Overflowed)
	}
	if _, ok := a.Fn("malloc"); !ok {
		t.Fatal("malloc missing from stitched analysis")
	}
}

// A drained run and a one-shot run of the same seeded workload must produce
// identical per-function summaries: the drain pipeline may not perturb the
// simulation, and stitching a losslessly segmented capture is exact.
func TestDrainedAnalysisMatchesOneShot(t *testing.T) {
	run := func(cfg ProfileConfig) (*Session, *analyze.Analysis) {
		m := NewMachine(kernel.Config{Seed: 11})
		s, err := NewSession(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		mallocStorm(m, 300)
		m.K.Run(2 * sim.Second)
		s.Disarm()
		return s, s.Analyze()
	}
	// One-shot with the full-size RAM: nothing overflows.
	sOne, one := run(ProfileConfig{})
	if one.Stats.Overflowed {
		t.Fatal("one-shot reference overflowed; shrink the workload")
	}
	// Continuous with a RAM 1/64 the size.
	sCont, cont := run(ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{HighWater: 64, Interval: 20 * sim.Microsecond},
	})
	if err := sCont.DrainErr(); err != nil {
		t.Fatal(err)
	}
	if cont.Stats.Dropped != 0 {
		t.Fatalf("continuous run lost %d strobes; tighten the drain config", cont.Stats.Dropped)
	}
	if len(sCont.Segments()) < 2 {
		t.Fatalf("continuous run drained only %d segments", len(sCont.Segments()))
	}
	if got, want := cont.SummaryString(0), one.SummaryString(0); got != want {
		t.Fatalf("stitched summary differs from one-shot:\n--- one-shot\n%s--- stitched\n%s", want, got)
	}
	// The lean path agrees with the full path segment for segment.
	lean := sCont.AnalyzeLean()
	if got, want := lean.SummaryString(0), cont.SummaryString(0); got != want {
		t.Fatalf("lean stitched summary differs:\n--- full\n%s--- lean\n%s", want, got)
	}
	if len(lean.Segments) != len(cont.Segments) {
		t.Fatalf("lean %d segments, full %d", len(lean.Segments), len(cont.Segments))
	}
	_ = sOne
}

// When drains cannot keep up (a poll interval far too long), records are
// lost — but the loss is *accounted*: each segment reports its dropped
// strobes and the stitched totals match the card's counters.
func TestContinuousCaptureReportsLoss(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 9})
	s, err := NewSession(m, ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{Interval: 100 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	mallocStorm(m, 400)
	m.K.Run(2 * sim.Second)
	s.Disarm()
	segs := s.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments drained")
	}
	var lost uint64
	for _, seg := range segs {
		lost += seg.Capture.Dropped
	}
	if lost == 0 {
		t.Fatal("expected losses with a 100ms poll on a 256-entry card")
	}
	a := s.Analyze()
	if a.Stats.Dropped != lost {
		t.Fatalf("analysis reports %d dropped, segments recorded %d", a.Stats.Dropped, lost)
	}
	if !a.Stats.Overflowed {
		t.Fatal("overflow flag lost in stitching")
	}
	forced := 0
	for _, seg := range a.Segments {
		forced += seg.ForceClosed
	}
	if forced == 0 {
		t.Fatal("lossy boundaries force-closed no frames")
	}
	if a.Recovered < forced {
		t.Fatalf("Recovered=%d < force-closed=%d", a.Recovered, forced)
	}
}

// Continuous-mode configuration errors are caught at session setup, not at
// the first drain.
func TestContinuousConfigValidation(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	if _, err := NewSession(m, ProfileConfig{Mode: CaptureContinuous, Depth: 2 * hw.WindowSize}); err == nil {
		t.Fatal("depth beyond the EPROM window accepted")
	}
	if _, err := NewSession(m, ProfileConfig{Mode: CaptureContinuous, Drain: DrainConfig{HighWater: 99999}}); err == nil {
		t.Fatal("high-water above depth accepted")
	}
	if _, err := NewSession(m, ProfileConfig{Mode: CaptureContinuous, Drain: DrainConfig{Interval: -1}}); err == nil {
		t.Fatal("negative interval accepted")
	}
	// Session.Reset clears the segment store for a fresh run.
	s, err := NewSession(m, ProfileConfig{
		Mode: CaptureContinuous, Depth: 256,
		Drain: DrainConfig{HighWater: 64, Interval: 20 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	mallocStorm(m, 100)
	m.K.Run(sim.Second)
	s.Disarm()
	if len(s.Segments()) == 0 {
		t.Fatal("no segments before reset")
	}
	s.Reset()
	if len(s.Segments()) != 0 {
		t.Fatal("Reset left segments behind")
	}
}

// The future-work fast readout: pull the capture back through the EPROM
// window instead of unsocketing the RAMs, and get an identical analysis.
func TestReadoutViaSocketMatchesDirectDump(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 4})
	s, err := NewSession(m, ProfileConfig{Depth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		for i := 0; i < 10; i++ {
			m.K.Syscall(p, func() {
				blk := m.Alloc.Malloc(128)
				m.Alloc.Free(blk)
			})
			p.Yield()
		}
	})
	m.K.Run(200 * sim.Millisecond)
	s.Disarm()

	direct := s.Capture()
	viaSocket, err := hw.ReadoutViaSocket(s.Socket, -1)
	if err != nil {
		t.Fatal(err)
	}
	if viaSocket.Len() != direct.Len() {
		t.Fatalf("readout %d records, direct %d", viaSocket.Len(), direct.Len())
	}
	a1 := s.Analyze()
	events, stats := analyze.Decode(viaSocket, s.Tags)
	a2 := analyze.Reconstruct(events, stats)
	if a1.SummaryString(0) != a2.SummaryString(0) {
		t.Fatal("readout analysis differs from direct dump")
	}
	// And the card still latches normally afterwards.
	s.Arm()
	before := s.Card.Stored()
	m.K.Spawn("again", func(p *kernel.Proc) {
		m.K.Syscall(p, func() { m.K.Advance(sim.Microsecond) })
	})
	m.K.Run(m.K.Now() + 50*sim.Millisecond)
	if s.Card.Stored() == before {
		t.Fatal("card dead after readout")
	}
}

// The pipelined decoder (readout overlapping decode on a background
// goroutine) must be invisible in the output: a pipelined continuous run
// yields a summary and segment accounting byte-identical to the serial
// lean path over the same seeded workload.
func TestPipelinedDecodeMatchesSerial(t *testing.T) {
	run := func(pipeline bool) (*Session, *analyze.Analysis) {
		m := NewMachine(kernel.Config{Seed: 11})
		s, err := NewSession(m, ProfileConfig{
			Mode:  CaptureContinuous,
			Depth: 256,
			Drain: DrainConfig{
				HighWater: 64,
				Interval:  20 * sim.Microsecond,
				Pipeline:  pipeline,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		mallocStorm(m, 300)
		m.K.Run(2 * sim.Second)
		s.Disarm()
		if err := s.DrainErr(); err != nil {
			t.Fatal(err)
		}
		return s, s.AnalyzeLean()
	}
	sSer, serial := run(false)
	sPipe, piped := run(true)
	if len(sPipe.Segments()) < 2 {
		t.Fatalf("pipelined run drained only %d segments", len(sPipe.Segments()))
	}
	if len(sSer.Segments()) != len(sPipe.Segments()) {
		t.Fatalf("segment counts differ: serial %d, pipelined %d",
			len(sSer.Segments()), len(sPipe.Segments()))
	}
	if got, want := piped.SummaryString(0), serial.SummaryString(0); got != want {
		t.Fatalf("pipelined summary differs from serial:\n--- serial\n%s--- pipelined\n%s", want, got)
	}
	if len(piped.Segments) != len(serial.Segments) {
		t.Fatalf("analysis segments differ: serial %d, pipelined %d",
			len(serial.Segments), len(piped.Segments))
	}
	for i := range piped.Segments {
		if piped.Segments[i] != serial.Segments[i] {
			t.Fatalf("segment %d differs: serial %+v, pipelined %+v",
				i, serial.Segments[i], piped.Segments[i])
		}
	}
	if piped.Stats != serial.Stats {
		t.Fatalf("stats differ: serial %+v, pipelined %+v", serial.Stats, piped.Stats)
	}
	// The pipelined result really is the background decoder's work, not a
	// serial re-decode: a second AnalyzeLean returns the identical object.
	if sPipe.AnalyzeLean() != piped {
		t.Fatal("pipelined analysis not cached")
	}
}

// Analyzing while armed ("what has the profile seen so far?") stitches the
// drained segments plus a live dump of the card's partial bank. In pipeline
// mode that live tail is also decoded — later, by the background pipe, once
// a drain actually reads it out. The two consumers must stay independent: a
// mid-run Analyze may not perturb the pipe (or the simulation), and its
// result must be byte-identical to the serial path's mid-run view.
func TestMidRunAnalyzePipelineEquivalence(t *testing.T) {
	run := func(pipeline bool) (*Session, *analyze.Analysis, *analyze.Analysis) {
		m := NewMachine(kernel.Config{Seed: 11})
		s, err := NewSession(m, ProfileConfig{
			Mode:  CaptureContinuous,
			Depth: 256,
			Drain: DrainConfig{
				HighWater: 64,
				Interval:  20 * sim.Microsecond,
				Pipeline:  pipeline,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		mallocStorm(m, 300)
		m.K.Run(1 * sim.Second)
		// Mid-run observation: still armed, some segments drained, a
		// partial bank live on the card.
		if len(s.Segments()) < 2 {
			t.Fatalf("only %d segments drained before the mid-run analyze", len(s.Segments()))
		}
		mid := s.Analyze()
		m.K.Run(2 * sim.Second)
		s.Disarm()
		return s, mid, s.AnalyzeLean()
	}
	sSer, midSer, finSer := run(false)
	sPipe, midPipe, finPipe := run(true)

	if got, want := midPipe.SummaryString(0), midSer.SummaryString(0); got != want {
		t.Fatalf("mid-run summary differs between pipeline and serial:\n--- serial\n%s--- pipelined\n%s", want, got)
	}
	if midSer.Stats.Records <= 0 || midPipe.Stats.Records != midSer.Stats.Records {
		t.Fatalf("mid-run records: serial %d, pipelined %d", midSer.Stats.Records, midPipe.Stats.Records)
	}

	// The observation perturbed nothing: the finished captures agree with
	// each other byte for byte, and the pipelined session still serves the
	// background decoder's cached result.
	if got, want := finPipe.SummaryString(0), finSer.SummaryString(0); got != want {
		t.Fatalf("final summary differs after a mid-run analyze:\n--- serial\n%s--- pipelined\n%s", want, got)
	}
	if finPipe.Stats != finSer.Stats {
		t.Fatalf("final stats differ: serial %+v, pipelined %+v", finSer.Stats, finPipe.Stats)
	}
	if sPipe.AnalyzeLean() != finPipe {
		t.Fatal("mid-run analyze evicted the pipelined analysis cache")
	}
	if sSer.DrainErr() != nil || sPipe.DrainErr() != nil {
		t.Fatalf("drain errors: serial %v, pipelined %v", sSer.DrainErr(), sPipe.DrainErr())
	}
}

// TestProgressGenMonotonic: every delivered progress snapshot carries the
// session's Gen sequence number, incrementing by exactly one per
// delivery starting at 1 — the serving tier keys cache invalidation and
// SSE event identity off it, so two equal Gens must always be the same
// snapshot.
func TestProgressGenMonotonic(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 5})
	s, err := NewSession(m, ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{HighWater: 64, Interval: 20 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var gens []uint64
	s.SetProgress(func(p Progress) { gens = append(gens, p.Gen) })
	s.Arm()
	mallocStorm(m, 200)
	m.K.Run(1 * sim.Second)
	s.Disarm()
	if len(gens) < 3 {
		t.Fatalf("only %d progress deliveries; the run should drain repeatedly", len(gens))
	}
	for i, g := range gens {
		if g != uint64(i+1) {
			t.Fatalf("delivery %d carried gen %d, want %d (dense, monotonic, starting at 1)", i, g, i+1)
		}
	}
}
