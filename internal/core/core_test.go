package core

import (
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func TestSessionSetup(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Inst.Functions() < 60 {
		t.Fatalf("only %d functions instrumented", s.Inst.Functions())
	}
	if s.Inst.AsmFunctions == 0 {
		t.Fatal("no assembler routines instrumented")
	}
	// swtch is marked '!' in the tag file.
	e, ok := s.Tags.Lookup("swtch")
	if !ok || !e.ContextSwitch {
		t.Fatalf("swtch entry = %+v ok=%v", e, ok)
	}
	// MGET inline tag allocated.
	e, ok = s.Tags.Lookup("MGET")
	if !ok || !e.Inline {
		t.Fatalf("MGET entry = %+v ok=%v", e, ok)
	}
	// ProfileBase is a kernel-virtual ISA address above the kernel image.
	if s.Linked.ProfileBase < 0xFE000000 {
		t.Fatalf("ProfileBase = %#x", s.Linked.ProfileBase)
	}
	if s.Socket.Base() != 0xD0000 {
		t.Fatalf("socket base = %#x", s.Socket.Base())
	}
}

func TestTriggersReachCardThroughSocket(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	// Run a little kernel activity in process context.
	m.K.Spawn("worker", func(p *kernel.Proc) {
		m.K.Syscall(p, func() {
			blk := m.Alloc.Malloc(512)
			m.Alloc.Free(blk)
		})
	})
	m.K.Run(50 * sim.Millisecond)
	s.Disarm()
	c := s.Capture()
	if c.Len() == 0 {
		t.Fatal("no events captured")
	}
	a := s.Analyze()
	if _, ok := a.Fn("malloc"); !ok {
		t.Fatalf("malloc not in analysis; functions: %d", len(a.Functions()))
	}
	if _, ok := a.Fn("hardclock"); !ok {
		t.Fatal("clock interrupt not captured")
	}
}

func TestSelectiveProfiling(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{Modules: []string{"kern_malloc"}})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		blk := m.Alloc.Malloc(512)
		m.Alloc.Free(blk)
	})
	m.K.Run(30 * sim.Millisecond)
	a := s.Analyze()
	if _, ok := a.Fn("malloc"); !ok {
		t.Fatal("selected module not profiled")
	}
	if _, ok := a.Fn("hardclock"); ok {
		t.Fatal("unselected module leaked into the capture")
	}
}

func TestDetachKeepsTriggerCostOnly(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	s.Detach()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		m.K.Syscall(p, func() { m.K.Advance(sim.Millisecond) })
	})
	m.K.Run(20 * sim.Millisecond)
	if s.Card.Stored() != 0 {
		t.Fatalf("detached card stored %d events", s.Card.Stored())
	}
	s.Reattach()
	m.K.Spawn("worker2", func(p *kernel.Proc) {
		m.K.Syscall(p, func() { m.K.Advance(sim.Millisecond) })
	})
	m.K.Run(40 * sim.Millisecond)
	if s.Card.Stored() == 0 {
		t.Fatal("reattached card captured nothing")
	}
}

func TestAnalysisSurvivesCardOverflow(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{Depth: 256})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		for i := 0; i < 200; i++ {
			m.K.Syscall(p, func() {
				blk := m.Alloc.Malloc(256)
				m.Alloc.Free(blk)
			})
			p.Yield()
		}
	})
	m.K.Run(time500ms)
	if !s.Card.Overflowed() {
		t.Fatal("card should have overflowed")
	}
	a := s.Analyze()
	if !a.Stats.Overflowed {
		t.Fatal("overflow not propagated")
	}
	// The analysis still produces sane numbers from the truncated head.
	if len(a.Functions()) == 0 || a.Elapsed() <= 0 {
		t.Fatal("no analysis from overflowed capture")
	}
}

const time500ms = 500 * sim.Millisecond

func TestSubsystemMaps(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	mods := m.ModuleOf()
	if mods["tcp_input"] != "tcp_input" || mods["malloc"] != "kern_malloc" {
		t.Fatalf("ModuleOf: %v %v", mods["tcp_input"], mods["malloc"])
	}
	subs := m.SubsystemOf()
	if subs["tcp_input"] != "net" || subs["pmap_pte"] != "vm" || subs["bread"] != "fs" {
		t.Fatalf("SubsystemOf: tcp=%v pmap=%v bread=%v", subs["tcp_input"], subs["pmap_pte"], subs["bread"])
	}
}

func TestSessionString(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "ProfileBase") {
		t.Fatalf("String: %s", s)
	}
}

func TestNFSLazyAttach(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 1})
	c1, err := m.NFS()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.NFS()
	if err != nil || c1 != c2 {
		t.Fatal("NFS client not cached")
	}
}

// The future-work fast readout: pull the capture back through the EPROM
// window instead of unsocketing the RAMs, and get an identical analysis.
func TestReadoutViaSocketMatchesDirectDump(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 4})
	s, err := NewSession(m, ProfileConfig{Depth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	m.K.Spawn("worker", func(p *kernel.Proc) {
		for i := 0; i < 10; i++ {
			m.K.Syscall(p, func() {
				blk := m.Alloc.Malloc(128)
				m.Alloc.Free(blk)
			})
			p.Yield()
		}
	})
	m.K.Run(200 * sim.Millisecond)
	s.Disarm()

	direct := s.Capture()
	viaSocket, err := hw.ReadoutViaSocket(s.Socket, -1)
	if err != nil {
		t.Fatal(err)
	}
	if viaSocket.Len() != direct.Len() {
		t.Fatalf("readout %d records, direct %d", viaSocket.Len(), direct.Len())
	}
	a1 := s.Analyze()
	events, stats := analyze.Decode(viaSocket, s.Tags)
	a2 := analyze.Reconstruct(events, stats)
	if a1.SummaryString(0) != a2.SummaryString(0) {
		t.Fatal("readout analysis differs from direct dump")
	}
	// And the card still latches normally afterwards.
	s.Arm()
	before := s.Card.Stored()
	m.K.Spawn("again", func(p *kernel.Proc) {
		m.K.Syscall(p, func() { m.K.Advance(sim.Microsecond) })
	})
	m.K.Run(m.K.Now() + 50*sim.Millisecond)
	if s.Card.Stored() == before {
		t.Fatal("card dead after readout")
	}
}
