// Package core assembles the full profiling system: a simulated 386BSD-0.1
// class machine (kernel, allocators, VM, network stack, filesystem), the
// instrumentation pass and two-stage link, and the Profiler card plugged
// into a spare EPROM socket — the paper used the socket on the WD8003E
// Ethernet card. A Session drives the paper's workflow: instrument selected
// modules, arm the card, run a workload, pull the RAMs, analyze.
package core

import (
	"fmt"

	"kprof/internal/analyze"
	"kprof/internal/faults"
	"kprof/internal/fdesc"
	"kprof/internal/fs"
	"kprof/internal/hw"
	"kprof/internal/instrument"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/netstack"
	"kprof/internal/nfs"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
	"kprof/internal/vm"
)

// Machine is the complete simulated PC: the 40 MHz i386 with 8 MB running
// the modeled kernel and all its subsystems.
type Machine struct {
	K     *kernel.Kernel
	Alloc *mem.Allocator
	VM    *vm.VM
	Net   *netstack.Net
	FS    *fs.FS
	FD    *fdesc.FD

	// Aux carries scenario state that must be built before the kernel is
	// instrumented (a Scenario.Setup registering kernel functions stashes
	// what its Run needs here; see workload.Scenario).
	Aux map[string]any

	nfsClient *nfs.Client
}

// NewMachine boots a machine: every subsystem attached, clock ticking.
func NewMachine(cfg kernel.Config) *Machine {
	k := kernel.New(cfg)
	alloc := mem.Attach(k)
	m := &Machine{
		K:     k,
		Alloc: alloc,
		VM:    vm.Attach(k, alloc),
		Net:   netstack.Attach(k, alloc),
		FS:    fs.Attach(k, alloc),
		FD:    fdesc.Attach(k, alloc),
		Aux:   make(map[string]any),
	}
	k.StartClock()
	return m
}

// NFS lazily attaches the NFS-lite client (it binds a UDP port).
func (m *Machine) NFS() (*nfs.Client, error) {
	if m.nfsClient == nil {
		c, err := nfs.NewClient(m.K, m.Net)
		if err != nil {
			return nil, err
		}
		m.nfsClient = c
	}
	return m.nfsClient, nil
}

// CaptureMode selects how a Session manages the card's finite RAM.
type CaptureMode int

// String names the mode ("one-shot" or "continuous").
func (m CaptureMode) String() string {
	switch m {
	case CaptureOneShot:
		return "one-shot"
	case CaptureContinuous:
		return "continuous"
	}
	return fmt.Sprintf("CaptureMode(%d)", int(m))
}

const (
	// CaptureOneShot is the paper's workflow: arm, run, pull the RAMs.
	// Capture ceases silently when the 16384-entry RAM fills; only the
	// head of a long run is kept.
	CaptureOneShot CaptureMode = iota
	// CaptureContinuous is the drain-and-stitch pipeline built on the
	// paper's future-work fast readout: whenever the card crosses a
	// high-water mark the session pauses capture at a safe point, reads
	// the RAM out through the EPROM socket into a host-side segment
	// store, resets the card and resumes. Captures are then bounded only
	// by host memory, and any records lost between drains are reported
	// per segment — never silently.
	CaptureContinuous
)

// DefaultDrainInterval is how often a continuous-capture session polls the
// card's fill level when DrainConfig.Interval is zero.
const DefaultDrainInterval = sim.Millisecond

// DefaultPipelineDepth is the bounded-channel capacity between the drain
// loop and the background reconstructor when DrainConfig.Pipeline is on: up
// to this many drained-but-undecoded segments may be in flight before a
// drain blocks on the decoder.
const DefaultPipelineDepth = 4

// DrainConfig tunes continuous capture.
type DrainConfig struct {
	// HighWater is the stored-record count that triggers a drain; 0
	// means three quarters of the card depth. The headroom above it
	// absorbs the records that arrive between polls.
	HighWater int
	// Interval is the fill-level poll period in virtual time; 0 means
	// DefaultDrainInterval. The card has no interrupt line to the host —
	// the front panel has only LEDs — so the host polls.
	Interval sim.Time
	// Pipeline overlaps drain readout with decoding: each drained segment
	// is handed through a bounded channel to a background goroutine that
	// streams it into a lean Reconstructor while the simulation (and the
	// next drains) continue. When the session disarms, the already-decoded
	// analysis is ready — AnalyzeLean returns it instead of re-decoding
	// the segment store — and it is byte-identical to the serial path: the
	// same records flow into the same reconstructor in the same order.
	Pipeline bool
	// PipelineDepth bounds the in-flight segment batches; 0 means
	// DefaultPipelineDepth.
	PipelineDepth int
	// Recycle returns each drained record buffer to a pool once the
	// pipelined decoder has consumed its batch, so a long continuous
	// capture reads the card out into a handful of reused buffers instead
	// of accumulating every segment's records host-side. It requires
	// Pipeline, and it narrows the session's contract: segments retain
	// only their loss metadata (Segment.Recycled, Capture.Records nil),
	// so the capture cannot be re-decoded — Analyze and any AnalyzeLean
	// call the pipelined result does not cover panic rather than silently
	// analyzing an empty record list. Use it where only the final
	// statistics matter (benchmarks, sweeps), not where the raw records
	// are part of the product.
	Recycle bool
}

// ProfileConfig selects what to instrument and where the card sits.
type ProfileConfig struct {
	// Mode selects one-shot (the default, the paper's pull-the-RAMs
	// workflow) or continuous (drain-and-stitch) capture.
	Mode CaptureMode
	// Drain tunes continuous capture; ignored in one-shot mode.
	Drain DrainConfig
	// Modules restricts instrumentation (micro-profiling); empty
	// instruments the whole kernel.
	Modules []string
	// Depth is the card RAM depth; 0 means the prototype's 16384.
	Depth int
	// ClockHz selects the card's counter rate (the paper's future-work
	// precision upgrade); 0 means the prototype's 1 MHz.
	ClockHz int64
	// TimerBits selects the stored counter width; 0 means 24.
	TimerBits uint
	// EPROMPhys is the physical address of the borrowed EPROM socket;
	// 0 means the WD8003E's socket at 0xD0000.
	EPROMPhys uint32
	// KernelSize feeds the two-stage link; 0 means a representative
	// 640 KB kernel.
	KernelSize uint32
	// Tags supplies an existing name/tag file to extend; nil starts
	// fresh at tag 500.
	Tags *tagfile.File
	// NoMGETInline disables the MGET inline trigger the paper's sample
	// tag file shows.
	NoMGETInline bool
	// Faults, when non-nil, attaches a deterministic fault injector to the
	// card's capture and readout paths (see internal/faults). A non-nil
	// config with Rate 0 attaches a pure pass-through — byte-identical
	// captures to running with no injector at all.
	Faults *faults.Config
}

// Segment is one drained slice of a continuous capture, held host-side.
// Its Capture.Dropped and Capture.Overflowed fields describe the loss (if
// any) at the segment's end: strobes that arrived after the card filled
// but before the drain ran.
type Segment struct {
	Capture   hw.Capture
	DrainedAt sim.Time // virtual time the drain ran
	// Records is the drained record count. It always equals
	// Capture.Len() except on a recycled segment, where it preserves the
	// count after the record buffer went back to the pool.
	Records int
	// Recycled marks a segment whose record buffer was returned to the
	// drain pool after the pipelined decoder consumed it
	// (DrainConfig.Recycle): Capture.Records is nil and only the loss
	// metadata remains host-side.
	Recycled bool
}

// Session is one profiling setup: an instrumented kernel with the card
// attached.
type Session struct {
	M      *Machine
	Card   *hw.Profiler
	Socket *hw.EPROMSocket
	Inst   *instrument.Result
	Linked *instrument.Linked
	Tags   *tagfile.File

	// Continuous-capture state.
	mode     CaptureMode
	drain    DrainConfig
	segments []Segment
	drainEv  *sim.Event
	// drainPollFn is the poll body, bound once so the periodic re-arm can
	// reuse drainEv's allocation (Reschedule) instead of building a fresh
	// closure and event every interval.
	drainPollFn func()
	drainErr    error
	drainErrs   int
	// stitchBuf is the capture list stitchList assembles, reused across
	// Analyze calls so a mid-run analysis loop does not allocate a fresh
	// header slice per call.
	stitchBuf []hw.Capture

	// Pipelined-decode state (DrainConfig.Pipeline): the in-flight pipe
	// while armed, then the finished analysis and the number of segments
	// it consumed once the session disarms.
	pipe      *decodePipe
	pipedA    *analyze.Analysis
	pipedSegs int

	// injector is the fault injector attached via ProfileConfig.Faults,
	// nil when the session runs on pristine hardware.
	injector *faults.Injector

	// progress, when set, observes capture state changes (see SetProgress).
	// progressGen counts delivered snapshots (Progress.Gen).
	progress    func(Progress)
	progressGen uint64
	// onSegment, when set, receives each drained segment (see SetOnSegment).
	onSegment func(Segment)
}

// Progress is a point-in-time snapshot of a session's capture state,
// delivered to the callback registered with SetProgress. It is the feed
// for live observability (export.StatusServer): fill level, drained
// segments and loss counters while a long continuous capture runs.
type Progress struct {
	// Now is the machine's virtual time at the snapshot.
	Now sim.Time
	// Armed reports whether the card is capturing; Mode is the session's
	// capture mode.
	Armed bool
	Mode  CaptureMode
	// Stored and Depth are the card RAM's fill state; Overflowed reports
	// the overflow LED.
	Stored     int
	Depth      int
	Overflowed bool
	// Segments counts host-side drained segments so far, holding
	// SegmentRecords records in total.
	Segments       int
	SegmentRecords int
	// Dropped counts every strobe lost so far: the card's current drop
	// counter plus the losses attached to already-drained segments.
	Dropped uint64
	// FaultsInjected counts corruptions the session's fault injector has
	// applied so far (zero when no injector is attached).
	FaultsInjected uint64
	// DrainErrs counts drains whose readout failed verification so far;
	// each one stranded a bank, accounted as dropped strobes above.
	DrainErrs int
	// Gen is a session-monotonic snapshot sequence number: it increments
	// by exactly one per delivered snapshot, so a consumer can order
	// snapshots and invalidate caches (export.StatusServer's ETag
	// generations) without comparing every field.
	Gen uint64
}

// SetProgress registers fn to observe the session's capture state: it
// fires on Arm and Disarm, on every drain-loop fill poll, and after every
// drain. The callback runs on the simulation goroutine between events —
// it must not re-enter the session, and anything it shares with other
// goroutines (an HTTP status server, say) must do its own locking. A nil
// fn unregisters.
func (s *Session) SetProgress(fn func(Progress)) { s.progress = fn }

// SetOnSegment registers fn to receive every drained segment of a
// continuous capture, immediately after it is appended to the segment
// store — including the final drain performed by Disarm. The callback
// runs on the simulation goroutine inside the drain (no virtual time
// passes during it) and must not re-enter the session. The segment's
// Capture.Records slice is owned by the segment store; a recycling
// session (DrainConfig.Recycle) has already surrendered it to the drain
// pool, so the callback sees Records nil there, exactly like
// Session.Segments does. This is the streaming tap the fleet ingest
// pipeline consumes: each machine's segments flow to a host-side ingest
// worker as they finish instead of being collected after disarm. A nil fn
// unregisters.
func (s *Session) SetOnSegment(fn func(Segment)) { s.onSegment = fn }

// notifyProgress delivers a snapshot to the registered callback.
func (s *Session) notifyProgress() {
	if s.progress == nil {
		return
	}
	p := Progress{
		Now:        s.M.K.Now(),
		Armed:      s.Card.Armed(),
		Mode:       s.mode,
		Stored:     s.Card.Stored(),
		Depth:      s.Card.Depth(),
		Overflowed: s.Card.Overflowed(),
		Segments:   len(s.segments),
		Dropped:    s.Card.Dropped,
		DrainErrs:  s.drainErrs,
	}
	for _, seg := range s.segments {
		p.SegmentRecords += seg.Records
		p.Dropped += seg.Capture.Dropped
	}
	if s.injector != nil {
		p.FaultsInjected = s.injector.Stats().Injected()
	}
	s.progressGen++
	p.Gen = s.progressGen
	s.progress(p)
}

// NewSession instruments the machine's kernel per cfg, performs the
// two-stage link, and plugs the card into the EPROM socket.
func NewSession(m *Machine, cfg ProfileConfig) (*Session, error) {
	epromPhys := cfg.EPROMPhys
	if epromPhys == 0 {
		epromPhys = 0xD0000
	}
	kernelSize := cfg.KernelSize
	if kernelSize == 0 {
		kernelSize = 640 * 1024
	}
	var inlines []string
	if !cfg.NoMGETInline {
		inlines = []string{"MGET"}
	}
	inst, err := instrument.Instrument(m.K, instrument.Options{
		Modules: cfg.Modules,
		Tags:    cfg.Tags,
		Inlines: inlines,
	})
	if err != nil {
		return nil, err
	}
	linked, err := inst.Link(instrument.Layout{KernelSize: kernelSize, EPROMPhys: epromPhys})
	if err != nil {
		return nil, err
	}
	card := hw.NewWithConfig(hw.Config{
		Depth:     cfg.Depth,
		ClockHz:   cfg.ClockHz,
		TimerBits: cfg.TimerBits,
	}, m.K.Now)
	socket := hw.NewEPROMSocket(epromPhys, card)
	// The kernel's trigger loads hit kernel-virtual addresses; the MMU
	// translation puts them on the ISA bus where the socket decodes them.
	m.K.SetTrigger(func(va uint32) {
		socket.Read(linked.VirtToPhys(va))
	})
	if addr, ok := inst.InlineAddr(linked, "MGET"); ok {
		m.Net.Pool().SetMGetInline(addr)
	}
	s := &Session{
		M: m, Card: card, Socket: socket, Inst: inst, Linked: linked, Tags: inst.Tags,
		mode: cfg.Mode, drain: cfg.Drain,
	}
	if cfg.Faults != nil {
		s.injector = faults.New(*cfg.Faults)
		card.SetFaultHook(s.injector)
	}
	if cfg.Mode == CaptureContinuous {
		if card.Depth() > hw.WindowSize {
			return nil, fmt.Errorf("core: continuous capture needs the RAM readable through the 64 KiB EPROM window; depth %d exceeds it", card.Depth())
		}
		if cfg.Drain.HighWater < 0 || cfg.Drain.HighWater > card.Depth() {
			return nil, fmt.Errorf("core: drain high-water mark %d outside the card's %d-record RAM", cfg.Drain.HighWater, card.Depth())
		}
		if cfg.Drain.Interval < 0 {
			return nil, fmt.Errorf("core: negative drain interval %v", cfg.Drain.Interval)
		}
		if cfg.Drain.Recycle && !cfg.Drain.Pipeline {
			return nil, fmt.Errorf("core: DrainConfig.Recycle requires Pipeline — only the background decoder knows when a drained buffer is consumed")
		}
	}
	return s, nil
}

// Detach unplugs the Profiler: trigger instructions remain (and still cost
// their 400 ns) but latch nothing — the configuration used to show that a
// profiled and unprofiled kernel behave indistinguishably.
func (s *Session) Detach() { s.M.K.SetTrigger(nil) }

// Reattach plugs the card back in.
func (s *Session) Reattach() {
	sock, linked := s.Socket, s.Linked
	s.M.K.SetTrigger(func(va uint32) { sock.Read(linked.VirtToPhys(va)) })
}

// Arm flips the front-panel switch to begin capture. In continuous mode it
// also starts the drain loop: a periodic poll of the card's fill level that
// drains the RAM through the EPROM socket whenever the high-water mark is
// crossed.
func (s *Session) Arm() {
	s.Card.Arm()
	if s.mode == CaptureContinuous && s.drainEv == nil {
		s.scheduleDrainPoll()
	}
	// The pipelined decoder starts on the first arm of a fresh capture; a
	// re-arm after Disarm already consumed its stream, so later segments
	// fall back to the serial path (AnalyzeLean checks the coverage).
	if s.mode == CaptureContinuous && s.drain.Pipeline && s.pipe == nil && s.pipedA == nil {
		s.startPipe()
	}
	s.notifyProgress()
}

// Disarm stops capture. In continuous mode the drain loop stops and any
// remaining records (and the card's loss counters) are drained into a final
// segment, so nothing is left behind on the card.
func (s *Session) Disarm() {
	if s.drainEv != nil {
		s.M.K.Scheduler().Cancel(s.drainEv)
		s.drainEv = nil
	}
	if s.mode == CaptureContinuous {
		s.drainNow(false)
	}
	s.Card.Disarm()
	s.finishPipe()
	s.notifyProgress()
}

// Reset clears the card — and, in continuous mode, the host-side segment
// store — for a fresh run.
func (s *Session) Reset() {
	s.finishPipe()
	s.Card.Reset()
	s.segments = nil
	s.drainErr = nil
	s.drainErrs = 0
	s.pipedA = nil
	s.pipedSegs = 0
}

// Mode reports the session's capture mode.
func (s *Session) Mode() CaptureMode { return s.mode }

// FaultStats reports the attached fault injector's statistics; ok is false
// when the session runs on pristine hardware.
func (s *Session) FaultStats() (stats faults.Stats, ok bool) {
	if s.injector == nil {
		return faults.Stats{}, false
	}
	return s.injector.Stats(), true
}

// Segments reports the host-side segment store: the drained slices of a
// continuous capture, in drain order.
func (s *Session) Segments() []Segment { return s.segments }

// DrainErr reports the first drain failure, if any — a readout whose
// open-bus verify caught glitched addressing (hw.ErrReadoutVerify). The
// drain loop survives it: the card is reset and re-armed, and the stranded
// bank is accounted as dropped strobes on an empty segment, so a non-nil
// value means the capture has a lossy (but honestly reported) hole, not
// that it stalled. Later failures are suppressed behind the first; DrainErrs
// counts them all.
func (s *Session) DrainErr() error { return s.drainErr }

// DrainErrs reports how many drains failed readout in total. Only the first
// failure's error is retained (DrainErr); the remaining DrainErrs-1 were
// suppressed, but every one of them left a zero-record segment carrying its
// stranded bank's drop count, so no loss is silent.
func (s *Session) DrainErrs() int { return s.drainErrs }

// decodePipe couples the drain loop to a background reconstructor: drained
// segments travel through a bounded channel of record batches and are
// decoded while the simulation runs on. The worker owns the reconstructor
// exclusively; the main goroutine only sends batches and, after close,
// reads the finished analysis — so the two sides never share mutable state.
type decodePipe struct {
	ch   chan pipeBatch
	done chan struct{}
	a    *analyze.Analysis
	// free recycles drained readout buffers (DrainConfig.Recycle): the
	// worker returns a batch's buffer here once the reconstructor has
	// consumed its records, and the next drain reads the card out into
	// it. The channel handoff is the synchronization — a buffer is never
	// touched by both sides at once. Nil when recycling is off.
	free chan *hw.ReadoutBuffer
}

// pipeBatch is one drained segment in flight: the records (read-only — on
// an unrecycled session the segment store holds the same slice) and the
// loss at its end boundary. buf, when non-nil, is the readout buffer the
// records live in, returned to the pipe's free pool after consumption.
type pipeBatch struct {
	records    []hw.Record
	dropped    uint64
	overflowed bool
	buf        *hw.ReadoutBuffer
}

// startPipe launches the background decoder for a pipelined continuous
// capture.
func (s *Session) startPipe() {
	depth := s.drain.PipelineDepth
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	p := &decodePipe{
		ch:   make(chan pipeBatch, depth),
		done: make(chan struct{}),
	}
	if s.drain.Recycle {
		// One buffer per in-flight batch plus the one being drained into.
		p.free = make(chan *hw.ReadoutBuffer, depth+1)
	}
	rc := analyze.NewReconstructor(s.Card.Config(), s.Tags, analyze.ReconstructOptions{
		DiscardEvents: true,
		DiscardTrace:  true,
		Repair:        analyze.DefaultRepair(),
	})
	go func() {
		defer close(p.done)
		for b := range p.ch {
			rc.PushBatch(b.records)
			rc.EndSegment(b.dropped, b.overflowed)
			if b.buf != nil {
				select {
				case p.free <- b.buf:
				default: // pool full; let the buffer go
				}
			}
		}
		p.a = rc.Finish(false, 0)
	}()
	s.pipe = p
}

// finishPipe closes the batch channel, waits for the background decoder to
// finish the books, and parks the result for AnalyzeLean.
func (s *Session) finishPipe() {
	p := s.pipe
	if p == nil {
		return
	}
	s.pipe = nil
	close(p.ch)
	<-p.done
	s.pipedA = p.a
	s.pipedSegs = len(s.segments)
}

// highWater reports the effective drain threshold.
func (s *Session) highWater() int {
	if s.drain.HighWater > 0 {
		return s.drain.HighWater
	}
	return s.Card.Depth() * 3 / 4
}

// drainInterval reports the effective fill-level poll period.
func (s *Session) drainInterval() sim.Time {
	if s.drain.Interval > 0 {
		return s.drain.Interval
	}
	return DefaultDrainInterval
}

// scheduleDrainPoll arms the next fill-level check on the machine's event
// scheduler. The callback runs between simulation events — a safe point:
// no kernel code is mid-trigger, and no virtual time passes while the
// host reads the card out. The poll closure and its event are allocated
// once per session and re-armed in place each interval.
func (s *Session) scheduleDrainPoll() {
	if s.drainPollFn == nil {
		s.drainPollFn = func() {
			if s.Card.Stored() >= s.highWater() || s.Card.Overflowed() {
				s.drainNow(true)
			}
			s.notifyProgress()
			s.scheduleDrainPoll()
		}
	}
	sched := s.M.K.Scheduler()
	if s.drainEv != nil && !s.drainEv.Scheduled() {
		sched.Reschedule(s.drainEv, sched.Now()+s.drainInterval())
		return
	}
	s.drainEv = sched.After(s.drainInterval(), s.drainPollFn)
}

// drainNow performs one drain: pause capture, fast-read the RAM bank by
// bank through the EPROM socket, append the result to the segment store,
// reset the card, and (between polls, not at the final drain) re-arm. The
// whole cycle is atomic in virtual time; a real host would pause the
// workload for the microseconds the readout takes.
func (s *Session) drainNow(rearm bool) {
	if s.Card.Stored() == 0 && s.Card.Dropped == 0 {
		return // nothing captured and nothing lost since the last drain
	}
	// A recycling drain reads the card out into a pooled buffer; the pipe
	// worker hands the buffer back once the decoder has consumed it.
	var buf *hw.ReadoutBuffer
	if s.drain.Recycle && s.pipe != nil {
		select {
		case buf = <-s.pipe.free:
		default:
			buf = new(hw.ReadoutBuffer)
		}
	}
	c, err := hw.ReadoutViaSocketInto(s.Socket, s.Card.Stored(), buf)
	if err != nil {
		// The bank is unreadable — a glitched readout. Its records are
		// gone, but the loss must be loud and capture must go on: account
		// every stranded strobe as dropped on an empty (force-closed)
		// segment, keep the first error and count the rest, and fall
		// through to the same reset + re-arm a successful drain performs.
		// Returning early here would leave the card full and disarmed,
		// silently stalling capture for the rest of the run.
		s.drainErrs++
		if s.drainErr == nil {
			s.drainErr = err
		}
		c = s.Card.StrandedCapture()
		if buf != nil {
			// Nothing to consume; the buffer goes straight back.
			select {
			case s.pipe.free <- buf:
			default:
			}
			buf = nil
		}
	}
	seg := Segment{Capture: c, DrainedAt: s.M.K.Now(), Records: c.Len()}
	if buf != nil {
		// The buffer (and the records in it) belongs to the pipe now;
		// the segment store keeps only the loss metadata.
		seg.Capture.Records = nil
		seg.Recycled = true
	}
	s.segments = append(s.segments, seg)
	if s.onSegment != nil {
		s.onSegment(seg)
	}
	if s.pipe != nil {
		// Hand the segment to the background decoder. The send blocks only
		// when PipelineDepth segments are already in flight — the bounded
		// channel is the pipeline's backpressure.
		s.pipe.ch <- pipeBatch{records: c.Records, dropped: c.Dropped, overflowed: c.Overflowed, buf: buf}
	}
	s.Card.Reset()
	if rearm {
		s.Card.Arm()
	}
}

// Capture pulls the battery-backed RAMs: the raw event list.
func (s *Session) Capture() hw.Capture { return s.Card.Dump() }

// stitchList assembles the full capture sequence of a continuous run: the
// drained segments plus whatever is still on the card (a Disarm leaves the
// card empty, but callers may analyze mid-run). Nil when nothing was ever
// drained — the one-shot case. The returned slice is the session's cached
// stitch buffer, overwritten by the next call.
func (s *Session) stitchList() []hw.Capture {
	if len(s.segments) == 0 {
		return nil
	}
	caps := s.stitchBuf[:0]
	if cap(caps) < len(s.segments)+1 {
		caps = make([]hw.Capture, 0, len(s.segments)+1)
	}
	for _, seg := range s.segments {
		caps = append(caps, seg.Capture)
	}
	if s.Card.Stored() > 0 || s.Card.Dropped > 0 {
		caps = append(caps, s.Card.Dump())
	}
	s.stitchBuf = caps
	return caps
}

// requireResident panics when any drained segment's records went back to
// the readout pool: a recycling session (DrainConfig.Recycle) traded the
// raw records for bounded memory, so re-decoding them is a contract
// violation, not an empty analysis.
func (s *Session) requireResident(op string) {
	for _, seg := range s.segments {
		if seg.Recycled {
			panic("core: " + op + " needs the drained records, but DrainConfig.Recycle returned them to the readout pool; only the pipelined AnalyzeLean result is available")
		}
	}
}

// Analyze decodes and reconstructs the current capture through the hardened
// pipeline (timestamp repair on — see analyze.RepairConfig; clean captures
// decode identically either way). A continuous run's drained segments are
// stitched back into one timeline, with per-boundary losses reported on
// Analysis.Segments.
func (s *Session) Analyze() *analyze.Analysis {
	s.requireResident("Analyze")
	opts := analyze.ReconstructOptions{Repair: analyze.DefaultRepair()}
	if caps := s.stitchList(); caps != nil {
		return analyze.Stitch(caps, s.Tags, opts)
	}
	return analyze.ReconstructCapture(s.Capture(), s.Tags, opts)
}

// AnalyzeLean decodes the card's RAM in place — streaming each record into
// the reconstructor — and discards the event list and trace timeline. The
// resulting Analysis carries the per-function statistics and idle
// accounting only, so a sweep worker never holds a copy of the 16384-entry
// bank list alongside its report. Drained segments stream the same way:
// the worker holds the segment store it already paid for, nothing more.
func (s *Session) AnalyzeLean() *analyze.Analysis {
	// A finished pipelined capture already decoded every segment in the
	// background; reuse it when it covers the whole capture (nothing
	// drained after the pipe closed, nothing left on the card).
	if s.pipedA != nil && s.pipedSegs == len(s.segments) &&
		s.Card.Stored() == 0 && s.Card.Dropped == 0 {
		return s.pipedA
	}
	s.requireResident("AnalyzeLean")
	rc := analyze.NewReconstructor(s.Card.Config(), s.Tags, analyze.ReconstructOptions{
		DiscardEvents: true,
		DiscardTrace:  true,
		Repair:        analyze.DefaultRepair(),
	})
	if len(s.segments) > 0 {
		for _, seg := range s.segments {
			rc.PushBatch(seg.Capture.Records)
			rc.EndSegment(seg.Capture.Dropped, seg.Capture.Overflowed)
		}
		if s.Card.Stored() > 0 || s.Card.Dropped > 0 {
			rc.PushBatch(s.Card.Records())
			rc.EndSegment(s.Card.Dropped, s.Card.Overflowed())
		}
		return rc.Finish(false, 0)
	}
	rc.PushBatch(s.Card.Records())
	return rc.Finish(s.Card.Overflowed(), s.Card.Dropped)
}

// AnalyzeLeanSharded is AnalyzeLean with the reconstruction sharded per
// process context across workers goroutines (workers <= 0 selects
// GOMAXPROCS), so a multi-core host speeds up a single capture's analysis.
// The result is bit-identical to AnalyzeLean's whatever the worker count —
// the sharded engine's merge is order-independent by construction (see
// analyze.NewShardedReconstructor) — so goldens and reports cannot tell
// the two apart. A finished pipelined capture short-circuits the same way
// AnalyzeLean does: the background decoder already paid for the analysis.
func (s *Session) AnalyzeLeanSharded(workers int) *analyze.Analysis {
	if s.pipedA != nil && s.pipedSegs == len(s.segments) &&
		s.Card.Stored() == 0 && s.Card.Dropped == 0 {
		return s.pipedA
	}
	s.requireResident("AnalyzeLeanSharded")
	sr := analyze.NewShardedReconstructor(s.Card.Config(), s.Tags, analyze.ReconstructOptions{
		Repair: analyze.DefaultRepair(),
	}, workers)
	if len(s.segments) > 0 {
		for _, seg := range s.segments {
			sr.PushBatch(seg.Capture.Records)
			sr.EndSegment(seg.Capture.Dropped, seg.Capture.Overflowed)
		}
		if s.Card.Stored() > 0 || s.Card.Dropped > 0 {
			sr.PushBatch(s.Card.Records())
			sr.EndSegment(s.Card.Dropped, s.Card.Overflowed())
		}
		return sr.Finish(false, 0)
	}
	sr.PushBatch(s.Card.Records())
	return sr.Finish(s.Card.Overflowed(), s.Card.Dropped)
}

// ModuleOf maps function names to their kernel module, for subsystem
// grouping of analysis results.
func (m *Machine) ModuleOf() map[string]string {
	out := make(map[string]string)
	for _, fn := range m.K.Functions() {
		out[fn.Name] = fn.Module
	}
	return out
}

// SubsystemOf maps function names to coarse subsystems (net, fs, vm, mem,
// kern, dev) for the grouping report.
func (m *Machine) SubsystemOf() map[string]string {
	coarse := map[string]string{
		"if_we": "netdev", "ip_input": "net", "ip_output": "net",
		"in_cksum": "net", "in_pcb": "net", "tcp_input": "net",
		"tcp_output": "net", "udp_usrreq": "net", "uipc_socket": "net",
		"uipc_socket2": "net", "nfs_socket": "nfs",
		"wd": "disk", "vfs_bio": "fs", "ufs_vnops": "fs",
		"ffs_alloc": "fs", "vfs_lookup": "fs", "ufs_lookup": "fs",
		"ufs_inode": "fs",
		"vm_fault":  "vm", "vm_page": "vm", "vm_map": "vm", "pmap": "vm",
		"vm_kern": "vm", "kern_malloc": "mem",
		"locore": "kern", "kern_synch": "kern", "kern_clock": "kern",
		"trap": "kern", "kern_descrip": "kern",
	}
	out := make(map[string]string)
	for _, fn := range m.K.Functions() {
		if g, ok := coarse[fn.Module]; ok {
			out[fn.Name] = g
		} else {
			out[fn.Name] = fn.Module
		}
	}
	return out
}

func (s *Session) String() string {
	return fmt.Sprintf("session(%d fns instrumented, ProfileBase=%#x, %d/%d records)",
		s.Inst.Functions(), s.Linked.ProfileBase, s.Card.Stored(), s.Card.Depth())
}

// NewEmbeddedMachine boots the paper's first case-study platform: the
// Megadata 68020 embedded board running a kernel with the 4.3BSD Tahoe
// networking code. The 68020 has real multi-priority interrupt levels
// (cheap spl*), the Tahoe stack carries the assembler in_cksum, the
// Ethernet controller DMAs into shared memory, and with no MMU there is no
// user/kernel boundary — application code traces straight into the kernel.
func NewEmbeddedMachine(cfg kernel.Config, style netstack.DriverStyle) (*Machine, *netstack.LE) {
	cfg.Arch = kernel.ArchM68K
	k := kernel.New(cfg)
	alloc := mem.Attach(k)
	m := &Machine{
		K:     k,
		Alloc: alloc,
		Net:   netstack.Attach(k, alloc),
		Aux:   make(map[string]any),
	}
	le := netstack.NewLE(m.Net, style)
	m.Net.SetOutputDevice(le)
	// Tahoe's in_cksum is the assembler version.
	m.Net.CksumMode = netstack.CksumOptimized
	k.StartClock()
	return m, le
}
