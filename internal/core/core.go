// Package core assembles the full profiling system: a simulated 386BSD-0.1
// class machine (kernel, allocators, VM, network stack, filesystem), the
// instrumentation pass and two-stage link, and the Profiler card plugged
// into a spare EPROM socket — the paper used the socket on the WD8003E
// Ethernet card. A Session drives the paper's workflow: instrument selected
// modules, arm the card, run a workload, pull the RAMs, analyze.
package core

import (
	"fmt"

	"kprof/internal/analyze"
	"kprof/internal/fdesc"
	"kprof/internal/fs"
	"kprof/internal/hw"
	"kprof/internal/instrument"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/netstack"
	"kprof/internal/nfs"
	"kprof/internal/tagfile"
	"kprof/internal/vm"
)

// Machine is the complete simulated PC: the 40 MHz i386 with 8 MB running
// the modeled kernel and all its subsystems.
type Machine struct {
	K     *kernel.Kernel
	Alloc *mem.Allocator
	VM    *vm.VM
	Net   *netstack.Net
	FS    *fs.FS
	FD    *fdesc.FD

	nfsClient *nfs.Client
}

// NewMachine boots a machine: every subsystem attached, clock ticking.
func NewMachine(cfg kernel.Config) *Machine {
	k := kernel.New(cfg)
	alloc := mem.Attach(k)
	m := &Machine{
		K:     k,
		Alloc: alloc,
		VM:    vm.Attach(k, alloc),
		Net:   netstack.Attach(k, alloc),
		FS:    fs.Attach(k, alloc),
		FD:    fdesc.Attach(k, alloc),
	}
	k.StartClock()
	return m
}

// NFS lazily attaches the NFS-lite client (it binds a UDP port).
func (m *Machine) NFS() (*nfs.Client, error) {
	if m.nfsClient == nil {
		c, err := nfs.NewClient(m.K, m.Net)
		if err != nil {
			return nil, err
		}
		m.nfsClient = c
	}
	return m.nfsClient, nil
}

// ProfileConfig selects what to instrument and where the card sits.
type ProfileConfig struct {
	// Modules restricts instrumentation (micro-profiling); empty
	// instruments the whole kernel.
	Modules []string
	// Depth is the card RAM depth; 0 means the prototype's 16384.
	Depth int
	// ClockHz selects the card's counter rate (the paper's future-work
	// precision upgrade); 0 means the prototype's 1 MHz.
	ClockHz int64
	// TimerBits selects the stored counter width; 0 means 24.
	TimerBits uint
	// EPROMPhys is the physical address of the borrowed EPROM socket;
	// 0 means the WD8003E's socket at 0xD0000.
	EPROMPhys uint32
	// KernelSize feeds the two-stage link; 0 means a representative
	// 640 KB kernel.
	KernelSize uint32
	// Tags supplies an existing name/tag file to extend; nil starts
	// fresh at tag 500.
	Tags *tagfile.File
	// NoMGETInline disables the MGET inline trigger the paper's sample
	// tag file shows.
	NoMGETInline bool
}

// Session is one profiling setup: an instrumented kernel with the card
// attached.
type Session struct {
	M      *Machine
	Card   *hw.Profiler
	Socket *hw.EPROMSocket
	Inst   *instrument.Result
	Linked *instrument.Linked
	Tags   *tagfile.File
}

// NewSession instruments the machine's kernel per cfg, performs the
// two-stage link, and plugs the card into the EPROM socket.
func NewSession(m *Machine, cfg ProfileConfig) (*Session, error) {
	epromPhys := cfg.EPROMPhys
	if epromPhys == 0 {
		epromPhys = 0xD0000
	}
	kernelSize := cfg.KernelSize
	if kernelSize == 0 {
		kernelSize = 640 * 1024
	}
	var inlines []string
	if !cfg.NoMGETInline {
		inlines = []string{"MGET"}
	}
	inst, err := instrument.Instrument(m.K, instrument.Options{
		Modules: cfg.Modules,
		Tags:    cfg.Tags,
		Inlines: inlines,
	})
	if err != nil {
		return nil, err
	}
	linked, err := inst.Link(instrument.Layout{KernelSize: kernelSize, EPROMPhys: epromPhys})
	if err != nil {
		return nil, err
	}
	card := hw.NewWithConfig(hw.Config{
		Depth:     cfg.Depth,
		ClockHz:   cfg.ClockHz,
		TimerBits: cfg.TimerBits,
	}, m.K.Now)
	socket := hw.NewEPROMSocket(epromPhys, card)
	// The kernel's trigger loads hit kernel-virtual addresses; the MMU
	// translation puts them on the ISA bus where the socket decodes them.
	m.K.SetTrigger(func(va uint32) {
		socket.Read(linked.VirtToPhys(va))
	})
	if addr, ok := inst.InlineAddr(linked, "MGET"); ok {
		m.Net.Pool().SetMGetInline(addr)
	}
	return &Session{M: m, Card: card, Socket: socket, Inst: inst, Linked: linked, Tags: inst.Tags}, nil
}

// Detach unplugs the Profiler: trigger instructions remain (and still cost
// their 400 ns) but latch nothing — the configuration used to show that a
// profiled and unprofiled kernel behave indistinguishably.
func (s *Session) Detach() { s.M.K.SetTrigger(nil) }

// Reattach plugs the card back in.
func (s *Session) Reattach() {
	sock, linked := s.Socket, s.Linked
	s.M.K.SetTrigger(func(va uint32) { sock.Read(linked.VirtToPhys(va)) })
}

// Arm flips the front-panel switch to begin capture.
func (s *Session) Arm() { s.Card.Arm() }

// Disarm stops capture.
func (s *Session) Disarm() { s.Card.Disarm() }

// Reset clears the card for a fresh run.
func (s *Session) Reset() { s.Card.Reset() }

// Capture pulls the battery-backed RAMs: the raw event list.
func (s *Session) Capture() hw.Capture { return s.Card.Dump() }

// Analyze decodes and reconstructs the current capture.
func (s *Session) Analyze() *analyze.Analysis {
	events, stats := analyze.Decode(s.Capture(), s.Tags)
	return analyze.Reconstruct(events, stats)
}

// AnalyzeLean decodes the card's RAM in place — streaming each record into
// the reconstructor — and discards the event list and trace timeline. The
// resulting Analysis carries the per-function statistics and idle
// accounting only, so a sweep worker never holds a copy of the 16384-entry
// bank list alongside its report.
func (s *Session) AnalyzeLean() *analyze.Analysis {
	rc := analyze.NewReconstructor(s.Card.Config(), s.Tags, analyze.ReconstructOptions{
		DiscardEvents: true,
		DiscardTrace:  true,
	})
	s.Card.Scan(rc.Push)
	return rc.Finish(s.Card.Overflowed(), s.Card.Dropped)
}

// ModuleOf maps function names to their kernel module, for subsystem
// grouping of analysis results.
func (m *Machine) ModuleOf() map[string]string {
	out := make(map[string]string)
	for _, fn := range m.K.Functions() {
		out[fn.Name] = fn.Module
	}
	return out
}

// SubsystemOf maps function names to coarse subsystems (net, fs, vm, mem,
// kern, dev) for the grouping report.
func (m *Machine) SubsystemOf() map[string]string {
	coarse := map[string]string{
		"if_we": "netdev", "ip_input": "net", "ip_output": "net",
		"in_cksum": "net", "in_pcb": "net", "tcp_input": "net",
		"tcp_output": "net", "udp_usrreq": "net", "uipc_socket": "net",
		"uipc_socket2": "net", "nfs_socket": "nfs",
		"wd": "disk", "vfs_bio": "fs", "ufs_vnops": "fs",
		"ffs_alloc": "fs", "vfs_lookup": "fs", "ufs_lookup": "fs",
		"ufs_inode": "fs",
		"vm_fault":  "vm", "vm_page": "vm", "vm_map": "vm", "pmap": "vm",
		"vm_kern": "vm", "kern_malloc": "mem",
		"locore": "kern", "kern_synch": "kern", "kern_clock": "kern",
		"trap": "kern", "kern_descrip": "kern",
	}
	out := make(map[string]string)
	for _, fn := range m.K.Functions() {
		if g, ok := coarse[fn.Module]; ok {
			out[fn.Name] = g
		} else {
			out[fn.Name] = fn.Module
		}
	}
	return out
}

func (s *Session) String() string {
	return fmt.Sprintf("session(%d fns instrumented, ProfileBase=%#x, %d/%d records)",
		s.Inst.Functions(), s.Linked.ProfileBase, s.Card.Stored(), s.Card.Depth())
}

// NewEmbeddedMachine boots the paper's first case-study platform: the
// Megadata 68020 embedded board running a kernel with the 4.3BSD Tahoe
// networking code. The 68020 has real multi-priority interrupt levels
// (cheap spl*), the Tahoe stack carries the assembler in_cksum, the
// Ethernet controller DMAs into shared memory, and with no MMU there is no
// user/kernel boundary — application code traces straight into the kernel.
func NewEmbeddedMachine(cfg kernel.Config, style netstack.DriverStyle) (*Machine, *netstack.LE) {
	cfg.Arch = kernel.ArchM68K
	k := kernel.New(cfg)
	alloc := mem.Attach(k)
	m := &Machine{
		K:     k,
		Alloc: alloc,
		Net:   netstack.Attach(k, alloc),
	}
	le := netstack.NewLE(m.Net, style)
	m.Net.SetOutputDevice(le)
	// Tahoe's in_cksum is the assembler version.
	m.Net.CksumMode = netstack.CksumOptimized
	k.StartClock()
	return m, le
}
