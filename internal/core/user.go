package core

import (
	"fmt"

	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// User-level profiling, per the paper's User Code Profiling section: "A
// driver stub may be configured in the kernel that reserves the Profiler's
// physical memory address space; a modified profiling crt.o initialises the
// process for profiling by opening the driver and calling mmap to memory
// map the Profiler's address space into a fixed location within the
// process address space."
//
// Kernel and user profiling coexist on one card: user functions draw tags
// from the same name/tag file (or a concatenated one), so the analysis
// resolves a mixed capture uniformly and traces cross the user/kernel
// boundary — the paper's protocol-stack debugging scenario.

// UserBase is the fixed user virtual address the profiling crt.o maps the
// Profiler window at.
const UserBase = 0x2000_0000

// UserFn is an instrumented user-level function.
type UserFn struct {
	Name      string
	entryAddr uint32
	exitAddr  uint32
	Calls     uint64
}

// UserProgram is one profiled user process image: a trigger mapping plus
// its registered functions.
type UserProgram struct {
	s    *Session
	Name string
	fns  map[string]*UserFn
}

// MapUser models the open("/dev/prof") + mmap sequence: it returns a
// program whose trigger loads reach the card through the user mapping.
// Function tags extend the session's tag file.
func (s *Session) MapUser(name string) *UserProgram {
	return &UserProgram{s: s, Name: name, fns: make(map[string]*UserFn)}
}

// Register instruments a user function, assigning its tag pair from the
// shared name/tag file.
func (u *UserProgram) Register(fnName string) (*UserFn, error) {
	if _, dup := u.fns[fnName]; dup {
		return nil, fmt.Errorf("core: user function %q registered twice", fnName)
	}
	e, err := u.s.Tags.Assign(fnName)
	if err != nil {
		return nil, err
	}
	f := &UserFn{
		Name:      fnName,
		entryAddr: UserBase + uint32(e.Tag),
		exitAddr:  UserBase + uint32(e.ExitTag()),
	}
	u.fns[fnName] = f
	return f, nil
}

// MustRegister is Register for program setup code.
func (u *UserProgram) MustRegister(fnName string) *UserFn {
	f, err := u.Register(fnName)
	if err != nil {
		panic(err)
	}
	return f
}

// RegisterInline allocates a user inline ('=') trigger.
func (u *UserProgram) RegisterInline(name string) (uint32, error) {
	e, err := u.s.Tags.AssignInline(name)
	if err != nil {
		return 0, err
	}
	return UserBase + uint32(e.Tag), nil
}

// trigger performs the user-space load: the MMU routes the user virtual
// address to the card's physical window.
func (u *UserProgram) trigger(va uint32) {
	u.s.M.K.Advance(userTrigCost)
	u.s.Socket.Read(va - UserBase + u.s.Socket.Base())
}

const userTrigCost = 200 * sim.Nanosecond // the same single-instruction load

// Call executes body as user function f, firing entry and exit triggers
// exactly as the kernel's instrumented functions do. body runs in process
// context and advances virtual time for its user-mode work; kernel entries
// (syscalls) made inside nest naturally in the capture.
func (u *UserProgram) Call(f *UserFn, body func()) {
	f.Calls++
	u.trigger(f.entryAddr)
	body()
	u.trigger(f.exitAddr)
}

// Inline fires a user inline trigger previously allocated with
// RegisterInline.
func (u *UserProgram) Inline(addr uint32) { u.trigger(addr) }

// Fn looks up a registered user function.
func (u *UserProgram) Fn(name string) (*UserFn, bool) {
	f, ok := u.fns[name]
	return f, ok
}

// UserTags returns the tag-file entries belonging to this program (for
// writing a separate per-program file, which Merge can recombine).
func (u *UserProgram) UserTags() []tagfile.Entry {
	var out []tagfile.Entry
	for name := range u.fns {
		if e, ok := u.s.Tags.Lookup(name); ok {
			out = append(out, e)
		}
	}
	return out
}
