package core

import (
	"strings"
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// runForRecycle profiles the drain-equivalence workload with the pipelined
// decoder, optionally recycling drained record buffers.
func runForRecycle(t *testing.T, recycle bool) *Session {
	t.Helper()
	m := NewMachine(kernel.Config{Seed: 11})
	s, err := NewSession(m, ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{
			HighWater: 64,
			Interval:  20 * sim.Microsecond,
			Pipeline:  true,
			Recycle:   recycle,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	mallocStorm(m, 300)
	m.K.Run(2 * sim.Second)
	s.Disarm()
	return s
}

// TestRecycleMatchesResident pins the recycling drain loop's analysis to
// the record-retaining one's, byte for byte: recycling changes where the
// drained bytes live, never what they say.
func TestRecycleMatchesResident(t *testing.T) {
	sKeep := runForRecycle(t, false)
	sRec := runForRecycle(t, true)
	keep, rec := sKeep.AnalyzeLean(), sRec.AnalyzeLean()
	if got, want := rec.SummaryString(0), keep.SummaryString(0); got != want {
		t.Fatalf("recycled summary differs from resident:\n--- resident\n%s--- recycled\n%s", want, got)
	}
	if rec.Stats != keep.Stats {
		t.Fatalf("stats differ: resident %+v, recycled %+v", keep.Stats, rec.Stats)
	}
	if got, want := rec.SegmentsString(), keep.SegmentsString(); got != want {
		t.Fatalf("segment tables differ:\n--- resident\n%s--- recycled\n%s", want, got)
	}

	// The segment store kept counts and loss metadata, not records.
	var keepRecs, recRecs int
	for _, seg := range sKeep.Segments() {
		keepRecs += seg.Records
		if seg.Records != seg.Capture.Len() {
			t.Fatalf("resident segment count %d != %d records held", seg.Records, seg.Capture.Len())
		}
	}
	for _, seg := range sRec.Segments() {
		recRecs += seg.Records
		if !seg.Recycled {
			t.Fatal("recycling session produced an unrecycled segment")
		}
		if seg.Capture.Records != nil {
			t.Fatal("recycled segment still holds its record buffer")
		}
	}
	if keepRecs != recRecs || keepRecs == 0 {
		t.Fatalf("drained record counts differ: resident %d, recycled %d", keepRecs, recRecs)
	}
}

// TestRecycleContract pins the narrowed contract: a recycling session's
// records are gone, so re-decoding them must fail loudly, not return an
// empty analysis.
func TestRecycleContract(t *testing.T) {
	if _, err := NewSession(NewMachine(kernel.Config{Seed: 1}), ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{Recycle: true},
	}); err == nil {
		t.Fatal("Recycle without Pipeline accepted")
	}

	s := runForRecycle(t, true)
	if len(s.Segments()) < 2 {
		t.Fatalf("only %d segments drained", len(s.Segments()))
	}
	mustPanic := func(op string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on recycled segments did not panic", op)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "Recycle") {
				t.Fatalf("%s panic does not explain the contract: %v", op, r)
			}
		}()
		fn()
	}
	mustPanic("Analyze", func() { s.Analyze() })

	// Invalidate the pipelined result's coverage (fresh capture after the
	// pipe closed): the lean fallback would re-decode, so it must panic
	// too rather than analyze nil record lists.
	s.Arm()
	mallocStorm(s.M, 50)
	s.M.K.Run(s.M.K.Now() + 500*sim.Millisecond)
	s.Disarm()
	mustPanic("AnalyzeLean", func() { s.AnalyzeLean() })
}
