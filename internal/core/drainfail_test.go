package core

import (
	"errors"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/faults"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// runGlitched profiles the same seeded workload the drain-equivalence tests
// use, with an optional injector on the readout path. Because readout-class
// faults never touch the latch path (and draw no randomness per strobe),
// the strobe stream is bit-identical to a clean run's — and a failed drain
// resets the card exactly like a successful one, so the fill-level
// trajectory and every drain boundary line up too. That makes the clean run
// a strobe-for-strobe reference for the glitched one.
func runGlitched(t *testing.T, fc *faults.Config, pipeline bool) (*Session, *analyze.Analysis, Progress) {
	t.Helper()
	m := NewMachine(kernel.Config{Seed: 11})
	s, err := NewSession(m, ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{
			HighWater: 64,
			Interval:  20 * sim.Microsecond,
			Pipeline:  pipeline,
		},
		Faults: fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	var last Progress
	s.SetProgress(func(p Progress) { last = p })
	s.Arm()
	mallocStorm(m, 300)
	m.K.Run(2 * sim.Second)
	s.Disarm()
	return s, s.AnalyzeLean(), last
}

// glitchAll is an injector profile that corrupts socket readout heavily
// enough that some drains fail their open-bus verify, while leaving the
// latch path untouched.
var glitchAll = &faults.Config{Seed: 3, Classes: faults.ReadoutGlitch, ReadoutRate: 0.05}

// TestGlitchedDrainCaptureContinues is the headline differential test: a
// readout failure mid-run must not stall capture. The card is recovered
// (reset and re-armed), the stranded bank is accounted as dropped strobes
// on a zero-record segment, and later drains succeed — against the buggy
// early return, the card stayed full and disarmed and the rest of the run
// silently vanished.
func TestGlitchedDrainCaptureContinues(t *testing.T) {
	sClean, clean, _ := runGlitched(t, nil, false)
	if err := sClean.DrainErr(); err != nil {
		t.Fatal(err)
	}
	s, a, prog := runGlitched(t, glitchAll, false)

	fails := s.DrainErrs()
	if fails < 2 {
		t.Fatalf("want ≥2 failed drains to exercise error suppression, got %d (re-seed the injector)", fails)
	}
	if err := s.DrainErr(); !errors.Is(err, hw.ErrReadoutVerify) {
		t.Fatalf("DrainErr = %v, want ErrReadoutVerify", err)
	}
	if prog.DrainErrs != fails {
		t.Fatalf("Progress reports %d drain errors, session says %d", prog.DrainErrs, fails)
	}

	// Capture continued after the first failure: a later segment holds
	// records again (the card was re-armed, not left dead).
	segs := s.Segments()
	firstFail := -1
	stranded := 0
	var lost, captured uint64
	for i, seg := range segs {
		captured += uint64(seg.Capture.Len())
		lost += seg.Capture.Dropped
		if seg.Capture.Len() == 0 && seg.Capture.Dropped > 0 {
			stranded++
			if firstFail < 0 {
				firstFail = i
			}
		}
	}
	if stranded != fails {
		t.Fatalf("%d failed drains but %d stranded segments", fails, stranded)
	}
	recovered := false
	for _, seg := range segs[firstFail+1:] {
		if seg.Capture.Len() > 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no records captured after the first failed drain (segment %d of %d) — card not recovered", firstFail, len(segs))
	}

	// Nothing is silent: every strobe of the identical clean run is either
	// captured or accounted as dropped, exactly.
	if captured+lost != uint64(clean.Stats.Records) {
		t.Fatalf("accounting hole: %d captured + %d dropped != %d clean records",
			captured, lost, clean.Stats.Records)
	}
	if a.Stats.Dropped != lost {
		t.Fatalf("analysis reports %d dropped, segments carry %d", a.Stats.Dropped, lost)
	}
	// The stranded banks surface in the segment report as lossy boundaries.
	zero := 0
	for _, seg := range a.Segments {
		if seg.Records == 0 && seg.Dropped > 0 {
			zero++
		}
	}
	if zero != fails {
		t.Fatalf("analysis shows %d zero-record lossy segments, want %d", zero, fails)
	}
}

// TestGlitchedDrainPipelineMatchesSerial pins the pipelined decoder's view
// of a glitched run to the serial path's: stranded segments flow through
// the pipe as empty batches with their drop counts, so both paths see the
// identical boundary sequence.
func TestGlitchedDrainPipelineMatchesSerial(t *testing.T) {
	sSer, serial, _ := runGlitched(t, glitchAll, false)
	sPipe, piped, _ := runGlitched(t, glitchAll, true)
	if sSer.DrainErrs() == 0 || sSer.DrainErrs() != sPipe.DrainErrs() {
		t.Fatalf("drain failures differ: serial %d, pipelined %d", sSer.DrainErrs(), sPipe.DrainErrs())
	}
	if got, want := piped.SummaryString(0), serial.SummaryString(0); got != want {
		t.Fatalf("pipelined summary differs from serial under glitched drains:\n--- serial\n%s--- pipelined\n%s", want, got)
	}
	if piped.Stats != serial.Stats {
		t.Fatalf("stats differ: serial %+v, pipelined %+v", serial.Stats, piped.Stats)
	}
	if got, want := piped.SegmentsString(), serial.SegmentsString(); got != want {
		t.Fatalf("segment tables differ:\n--- serial\n%s--- pipelined\n%s", want, got)
	}
	// The pipelined run really used the background decoder's result.
	if sPipe.AnalyzeLean() != piped {
		t.Fatal("pipelined analysis not cached")
	}
}
