package core

import (
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func newUserSession(t *testing.T) (*Machine, *Session, *UserProgram) {
	t.Helper()
	m := NewMachine(kernel.Config{Seed: 9})
	s, err := NewSession(m, ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m, s, s.MapUser("app")
}

func TestUserFunctionsShareTagSpace(t *testing.T) {
	_, s, u := newUserSession(t)
	f, err := u.Register("app_main")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.Tags.Lookup("app_main")
	if !ok {
		t.Fatal("user function not in the shared tag file")
	}
	if e.Tag%2 != 0 {
		t.Fatalf("odd user tag %d", e.Tag)
	}
	if f.entryAddr != UserBase+uint32(e.Tag) {
		t.Fatalf("entry addr = %#x", f.entryAddr)
	}
	if _, err := u.Register("app_main"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if len(u.UserTags()) != 1 {
		t.Fatalf("UserTags = %v", u.UserTags())
	}
}

func TestUserTriggersReachCard(t *testing.T) {
	m, s, u := newUserSession(t)
	f := u.MustRegister("compute")
	s.Arm()
	m.K.Spawn("app", func(p *kernel.Proc) {
		u.Call(f, func() { m.K.Advance(500 * sim.Microsecond) })
	})
	m.K.Run(20 * sim.Millisecond)
	s.Disarm()
	a := s.Analyze()
	st, ok := a.Fn("compute")
	if !ok {
		t.Fatal("user function missing from analysis")
	}
	if st.Calls != 1 {
		t.Fatalf("calls = %d", st.Calls)
	}
	if st.Net < 480*sim.Microsecond || st.Net > 620*sim.Microsecond {
		t.Fatalf("net = %v, want ≈500 µs", st.Net)
	}
}

// The paper's promise: one capture traces from user code down through the
// kernel — syscalls nest inside user frames.
func TestMixedUserKernelTrace(t *testing.T) {
	m, s, u := newUserSession(t)
	fMain := u.MustRegister("app_main")
	fWork := u.MustRegister("app_work")
	s.Arm()
	m.K.Spawn("app", func(p *kernel.Proc) {
		u.Call(fMain, func() {
			u.Call(fWork, func() {
				m.K.Advance(100 * sim.Microsecond)
				m.K.Syscall(p, func() {
					blk := m.Alloc.Malloc(256)
					m.Alloc.Free(blk)
				})
			})
		})
	})
	m.K.Run(50 * sim.Millisecond)
	s.Disarm()
	a := s.Analyze()

	// The kernel's malloc is a descendant of the user frame: app_main's
	// inclusive time covers the syscall.
	main, _ := a.Fn("app_main")
	mallocStat, ok := a.Fn("malloc")
	if !ok {
		t.Fatal("kernel function missing")
	}
	if main.Elapsed < mallocStat.Elapsed {
		t.Fatalf("user frame (%v) does not cover the kernel work (%v)", main.Elapsed, mallocStat.Elapsed)
	}
	trace := a.TraceString(analyze.TraceOptions{})
	iMain := strings.Index(trace, "-> app_main")
	iSys := strings.Index(trace, "-> syscall")
	iMalloc := strings.Index(trace, "-> malloc")
	if iMain < 0 || iSys < iMain || iMalloc < iSys {
		t.Fatalf("trace does not nest user->syscall->malloc:\n%s", trace)
	}
}

func TestUserInlineTrigger(t *testing.T) {
	m, s, u := newUserSession(t)
	addr, err := u.RegisterInline("CHECKPOINT")
	if err != nil {
		t.Fatal(err)
	}
	f := u.MustRegister("loop")
	s.Arm()
	m.K.Spawn("app", func(p *kernel.Proc) {
		u.Call(f, func() {
			for i := 0; i < 3; i++ {
				m.K.Advance(10 * sim.Microsecond)
				u.Inline(addr)
			}
		})
	})
	m.K.Run(10 * sim.Millisecond)
	s.Disarm()
	a := s.Analyze()
	st, ok := a.Fn("CHECKPOINT")
	if !ok || st.Inlines != 3 {
		t.Fatalf("checkpoint inlines = %+v", st)
	}
}

// Profiling several user processes at the same time, as the paper
// describes for IPC analysis.
func TestTwoUserProgramsConcurrently(t *testing.T) {
	m, s, _ := newUserSession(t)
	u1 := s.MapUser("producer")
	u2 := s.MapUser("consumer")
	f1 := u1.MustRegister("produce")
	f2 := u2.MustRegister("consume")
	var ident int
	s.Arm()
	m.K.Spawn("producer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			u1.Call(f1, func() { m.K.Advance(50 * sim.Microsecond) })
			m.K.Wakeup(&ident)
			p.Yield()
		}
	})
	m.K.Spawn("consumer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			m.K.Tsleep(&ident, "wait", 10)
			u2.Call(f2, func() { m.K.Advance(30 * sim.Microsecond) })
		}
	})
	m.K.Run(sim.Second)
	s.Disarm()
	a := s.Analyze()
	p1, ok1 := a.Fn("produce")
	p2, ok2 := a.Fn("consume")
	if !ok1 || !ok2 || p1.Calls != 3 || p2.Calls != 3 {
		t.Fatalf("produce=%+v consume=%+v", p1, p2)
	}
}
