package core

import (
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// The segment hook must observe every drained segment — including the
// final drain at Disarm — in drain order, with the records the session
// retains.
func TestOnSegmentHook(t *testing.T) {
	m := NewMachine(kernel.Config{Seed: 17})
	s, err := NewSession(m, ProfileConfig{
		Mode:  CaptureContinuous,
		Depth: 256,
		Drain: DrainConfig{HighWater: 64, Interval: 20 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen []Segment
	s.SetOnSegment(func(seg Segment) { seen = append(seen, seg) })
	s.Arm()
	mallocStorm(m, 150)
	m.K.Run(sim.Second)
	s.Disarm()
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) < 2 {
		t.Fatalf("drained only %d segments; grow the workload", len(segs))
	}
	if len(seen) != len(segs) {
		t.Fatalf("hook fired %d times for %d segments", len(seen), len(segs))
	}
	var prev sim.Time
	for i, seg := range seen {
		if seg.Records != segs[i].Records || len(seg.Capture.Records) != seg.Records {
			t.Fatalf("segment %d: hook saw %d records (%d in slice), session retains %d",
				i, seg.Records, len(seg.Capture.Records), segs[i].Records)
		}
		if seg.DrainedAt < prev {
			t.Fatalf("segment %d: drain time regressed %v -> %v", i, prev, seg.DrainedAt)
		}
		prev = seg.DrainedAt
	}
}
