package core

import (
	"fmt"
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/sim"
)

// TestAnalyzeLeanShardedMatchesSerial pins the sharded analysis to the
// serial one on real machine captures, byte for byte, whatever the worker
// count: sharding changes which goroutine folds a context's frames, never
// what the books say.
func TestAnalyzeLeanShardedMatchesSerial(t *testing.T) {
	run := func(drain bool) *Session {
		m := NewMachine(kernel.Config{Seed: 23})
		cfg := ProfileConfig{Mode: CaptureOneShot, Depth: 4096}
		if drain {
			cfg = ProfileConfig{
				Mode:  CaptureContinuous,
				Depth: 256,
				Drain: DrainConfig{HighWater: 64, Interval: 20 * sim.Microsecond},
			}
		}
		s, err := NewSession(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		mallocStorm(m, 300)
		m.K.Run(2 * sim.Second)
		s.Disarm()
		return s
	}

	for _, drain := range []bool{false, true} {
		s := run(drain)
		want := s.AnalyzeLean()
		for _, workers := range []int{1, 2, 4} {
			got := s.AnalyzeLeanSharded(workers)
			label := fmt.Sprintf("drain=%v workers=%d", drain, workers)
			if g, w := got.SummaryString(0), want.SummaryString(0); g != w {
				t.Fatalf("%s: sharded summary differs from serial:\n--- serial\n%s--- sharded\n%s", label, w, g)
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s: stats differ: serial %+v, sharded %+v", label, want.Stats, got.Stats)
			}
			if g, w := got.SegmentsString(), want.SegmentsString(); g != w {
				t.Fatalf("%s: segment tables differ:\n--- serial\n%s--- sharded\n%s", label, w, g)
			}
			if got.Idle != want.Idle || got.Switches != want.Switches ||
				got.OrphanExits != want.OrphanExits || got.Recovered != want.Recovered {
				t.Fatalf("%s: accounting differs: serial Idle=%v Sw=%d Or=%d Rec=%d, sharded Idle=%v Sw=%d Or=%d Rec=%d",
					label, want.Idle, want.Switches, want.OrphanExits, want.Recovered,
					got.Idle, got.Switches, got.OrphanExits, got.Recovered)
			}
		}
	}
}
