package vm

import "kprof/internal/sim"

// Calibrated costs for the VM subsystem, reproducing the paper's fork/exec
// study (Figure 5) and Table 1:
//
//   - pmap_pte ≈ 3 µs net per call, ≈1053 calls during a fork: the page
//     table walk is cheap but the pmap module calls it incessantly.
//   - pmap_enter ≈ 29 µs net average.
//   - pmap_remove: per-page work plus a fixed sweep; large entries cost
//     milliseconds (Figure 5 max 14061 µs).
//   - pmap_protect ≈ 15 µs/page plus fixed overhead.
//   - vm_page_lookup ≈ 18 µs net.
//   - vm_fault ≈ 410 µs inclusive (Table 1): map lookup, object chain,
//     page allocation and zero fill, pmap_enter.
//   - bzero of a fresh page ≈ 160 µs at main-memory speed plus setup.
//   - the combined effect lands vfork ≈ 24 ms and execve ≈ 28 ms with the
//     standard image (no disk I/O involved; the image is cached).
const (
	costPmapPte        = 3 * sim.Microsecond
	costPmapEnterBody  = 20 * sim.Microsecond // plus one pmap_pte inside
	costPmapRemoveBase = 45 * sim.Microsecond
	// Per-page teardown is expensive: PTE invalidation, TLB flush, and
	// pv-list surgery — Figure 5's 14 ms maximum for a large entry
	// implies ≈40-70 µs per page.
	costPmapRemovePage  = 40 * sim.Microsecond // plus two pmap_pte per page
	costPmapProtectBase = 35 * sim.Microsecond
	costPmapProtectPage = 11 * sim.Microsecond // plus one pmap_pte per page

	costVmPageLookup = 17 * sim.Microsecond
	costVmPageAlloc  = 28 * sim.Microsecond
	costVmPageFree   = 14 * sim.Microsecond

	costFaultBase    = 120 * sim.Microsecond // trap frame, map/object chain walk
	costKmemWirePage = 120 * sim.Microsecond // vm_map_find + wiring bookkeeping
	costZeroFillPage = 160 * sim.Microsecond

	costMapEntryBase = 55 * sim.Microsecond  // vm_map_entry create/insert
	costMapFork      = 210 * sim.Microsecond // vmspace_fork fixed overhead
	costMapTeardown  = 130 * sim.Microsecond

	costVmspaceAlloc = 180 * sim.Microsecond
	costUAreaCopy    = 330 * sim.Microsecond // two-page bcopy of the u. area

	// Per-page cost of the copy performed for each resident data/stack
	// page during fork (386BSD's Mach-derived code did a lot of eager
	// copying despite the COW machinery).
	costForkPageCopy = 24 * sim.Microsecond
)
