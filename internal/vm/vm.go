// Package vm models the 386BSD virtual memory subsystem — the Mach-derived
// VM code whose interface with the pmap module the paper identifies as the
// kernel's worst bottleneck ("the glue is fairly thick in some places").
//
// The model captures the structure the profiler saw: a vm_map of entries per
// address space, a pmap layer entered through pmap_pte for every page
// touched, eager per-page work during fork, wholesale pmap_remove sweeps
// during exec teardown, and demand-zero faults through vm_fault. Costs are
// calibrated against Table 1 and Figure 5; the headline numbers — vfork
// ≈24 ms, execve ≈28 ms, pmap_pte ≈1053 calls per fork, >50% of fork/exec
// time inside the VM routines — emerge from the per-page mechanics rather
// than being hard-coded.
package vm

import (
	"fmt"

	"kprof/internal/kernel"
	"kprof/internal/mem"
)

// PageSize is the i386 page size.
const PageSize = mem.PageSize

// SegmentKind classifies a map entry.
type SegmentKind int

const (
	SegText SegmentKind = iota
	SegData
	SegStack
)

func (s SegmentKind) String() string {
	switch s {
	case SegText:
		return "text"
	case SegData:
		return "data"
	case SegStack:
		return "stack"
	}
	return "seg?"
}

// MapEntry is one vm_map_entry: a run of pages backed by a vm_object.
type MapEntry struct {
	Kind        SegmentKind
	Pages       int
	Resident    int // pages with valid mappings (faulted in)
	CopyOnWrite bool
}

// VMSpace is a process address space.
type VMSpace struct {
	Entries []*MapEntry
}

// TotalPages reports the address space size in pages.
func (s *VMSpace) TotalPages() int {
	n := 0
	for _, e := range s.Entries {
		n += e.Pages
	}
	return n
}

// ResidentPages reports how many pages are faulted in.
func (s *VMSpace) ResidentPages() int {
	n := 0
	for _, e := range s.Entries {
		n += e.Resident
	}
	return n
}

// Image describes a program image's memory layout in pages. DefaultImage is
// a typical small utility of the period.
type Image struct {
	TextPages  int
	DataPages  int
	StackPages int
}

// DefaultImage approximates a shell-class binary of the era with its
// libraries: ≈1.2 MB of address space.
var DefaultImage = Image{TextPages: 200, DataPages: 80, StackPages: 28}

func (im Image) total() int { return im.TextPages + im.DataPages + im.StackPages }

// VM is the virtual memory subsystem attached to a kernel.
type VM struct {
	k     *kernel.Kernel
	alloc *mem.Allocator

	fnVmFault      *kernel.Fn
	fnVmPageLookup *kernel.Fn
	fnVmPageAlloc  *kernel.Fn
	fnVmPageFree   *kernel.Fn
	fnVmMapEntry   *kernel.Fn
	fnVmspaceFork  *kernel.Fn
	fnVmspaceFree  *kernel.Fn
	fnVmAllocate   *kernel.Fn
	fnVmDeallocate *kernel.Fn
	fnPmapPte      *kernel.Fn
	fnPmapEnter    *kernel.Fn
	fnPmapRemove   *kernel.Fn
	fnPmapProtect  *kernel.Fn

	// Statistics.
	Faults uint64
	Forks  uint64
	Execs  uint64
}

// Attach registers the VM routines and wires kmem_alloc's page backing to
// the pmap layer, so kmem_alloc's ≈800 µs cost (Table 1) comes from real
// pmap work rather than a flat constant.
func Attach(k *kernel.Kernel, alloc *mem.Allocator) *VM {
	v := &VM{
		k:              k,
		alloc:          alloc,
		fnVmFault:      k.RegisterFn("vm_fault", "vm_fault"),
		fnVmPageLookup: k.RegisterFn("vm_page", "vm_page_lookup"),
		fnVmPageAlloc:  k.RegisterFn("vm_page", "vm_page_alloc"),
		fnVmPageFree:   k.RegisterFn("vm_page", "vm_page_free"),
		fnVmMapEntry:   k.RegisterFn("vm_map", "vm_map_entry_create"),
		fnVmspaceFork:  k.RegisterFn("vm_map", "vmspace_fork"),
		fnVmspaceFree:  k.RegisterFn("vm_map", "vmspace_free"),
		fnVmAllocate:   k.RegisterFn("vm_map", "vm_allocate"),
		fnVmDeallocate: k.RegisterFn("vm_map", "vm_deallocate"),
		fnPmapPte:      k.RegisterFn("pmap", "pmap_pte"),
		fnPmapEnter:    k.RegisterFn("pmap", "pmap_enter"),
		fnPmapRemove:   k.RegisterFn("pmap", "pmap_remove"),
		fnPmapProtect:  k.RegisterFn("pmap", "pmap_protect"),
	}
	if alloc != nil {
		alloc.SetBacking(v.kmemBacking)
	}
	return v
}

// kmemBacking wires fresh kernel pages: find space in the kernel map,
// allocate and zero a frame, and enter the mapping — Table 1's ≈800 µs for
// the common two-page request.
func (v *VM) kmemBacking(pages int) {
	for i := 0; i < pages; i++ {
		v.k.Advance(costKmemWirePage)
		v.pageAlloc()
		v.pageLookup()
		v.k.Bzero(costZeroFillPage)
		v.pmapEnter()
	}
}

// --- pmap layer ---

// PmapPte models the page-table-entry lookup, the most-called routine in
// the fork path.
func (v *VM) PmapPte() { v.k.CallCost(v.fnPmapPte, costPmapPte) }

func (v *VM) pmapEnter() {
	v.k.Call(v.fnPmapEnter, func() {
		v.k.Advance(costPmapEnterBody)
		v.PmapPte()
	})
}

// PmapEnter installs one page mapping.
func (v *VM) PmapEnter() { v.pmapEnter() }

// PmapRemove tears down the mappings of an entry: a fixed sweep plus
// per-resident-page PTE work. Large entries are where Figure 5's 14 ms
// maximum comes from.
func (v *VM) PmapRemove(pages int) {
	v.k.Call(v.fnPmapRemove, func() {
		v.k.Advance(costPmapRemoveBase)
		for i := 0; i < pages; i++ {
			v.PmapPte() // walk to the PTE
			v.PmapPte() // re-check after the invalidate (the paper's
			// cross-calling: the Mach layer and pmap each verify)
			v.k.Advance(costPmapRemovePage)
		}
	})
}

// PmapProtect changes protection across an entry (write-protecting for
// copy-on-write during fork).
func (v *VM) PmapProtect(pages int) {
	v.k.Call(v.fnPmapProtect, func() {
		v.k.Advance(costPmapProtectBase)
		for i := 0; i < pages; i++ {
			v.PmapPte()
			v.k.Advance(costPmapProtectPage)
		}
	})
}

// --- vm_page layer ---

func (v *VM) pageLookup() { v.k.CallCost(v.fnVmPageLookup, costVmPageLookup) }

func (v *VM) pageAlloc() { v.k.CallCost(v.fnVmPageAlloc, costVmPageAlloc) }

func (v *VM) pageFree() { v.k.CallCost(v.fnVmPageFree, costVmPageFree) }

// --- faults ---

// Fault services a page fault on entry e: the vm_fault path of Table 1 —
// map lookup, object chain walk (vm_page_lookup), page allocation, zero
// fill for demand-zero pages, then pmap_enter. It reports whether a new
// page was actually materialised (false when the entry is fully resident).
func (v *VM) Fault(e *MapEntry) bool {
	if e.Resident >= e.Pages {
		return false
	}
	v.Faults++
	v.k.Stats.PageFaults++
	v.k.Call(v.fnVmFault, func() {
		v.k.Advance(costFaultBase)
		v.PmapPte() // probe for an existing mapping first
		v.pageLookup()
		// Shadow object chain: a second lookup for COW entries.
		if e.CopyOnWrite {
			v.pageLookup()
		}
		v.pageAlloc()
		if e.Kind != SegText {
			v.k.Bzero(costZeroFillPage)
		}
		v.pmapEnter()
	})
	e.Resident++
	return true
}

// FaultIn makes n pages of e resident (the post-exec warm-up of the working
// set).
func (v *VM) FaultIn(e *MapEntry, n int) {
	for i := 0; i < n; i++ {
		if !v.Fault(e) {
			return
		}
	}
}

// --- address space construction ---

// NewVMSpace builds a fresh address space for an image, with the text
// resident (shared, already cached) and data/stack demand-zero.
func (v *VM) NewVMSpace(im Image) *VMSpace {
	if im.total() == 0 {
		panic("vm: empty image")
	}
	s := &VMSpace{}
	v.k.Call(v.fnVmAllocate, func() {
		v.k.Advance(costVmspaceAlloc)
		for _, seg := range []struct {
			kind  SegmentKind
			pages int
		}{{SegText, im.TextPages}, {SegData, im.DataPages}, {SegStack, im.StackPages}} {
			if seg.pages == 0 {
				continue
			}
			v.k.CallCost(v.fnVmMapEntry, costMapEntryBase)
			s.Entries = append(s.Entries, &MapEntry{Kind: seg.kind, Pages: seg.pages})
		}
	})
	return s
}

// Fork performs the address-space half of vfork: vmspace_fork write-
// protects the parent's writable entries, duplicates the map, and eagerly
// walks every resident page through the pmap module — the cross-calling
// the paper blames for fork's 24 ms.
func (v *VM) Fork(parent *VMSpace) *VMSpace {
	v.Forks++
	v.k.Stats.Forks++
	child := &VMSpace{}
	v.k.Call(v.fnVmspaceFork, func() {
		v.k.Advance(costMapFork)
		// The u. area (proc struct + kernel stack) is copied outright.
		v.k.Bcopy(costUAreaCopy)
		for _, e := range parent.Entries {
			v.k.CallCost(v.fnVmMapEntry, costMapEntryBase)
			ce := &MapEntry{Kind: e.Kind, Pages: e.Pages, CopyOnWrite: e.Kind != SegText}
			if e.Kind != SegText {
				// Write-protect the parent for COW.
				v.PmapProtect(e.Resident)
				e.CopyOnWrite = true
			}
			// Duplicate mappings: the pmap module is consulted for the
			// source and destination of every resident page, and the
			// mapping is eagerly entered in the child.
			for i := 0; i < e.Resident; i++ {
				v.PmapPte() // source PTE
				v.pageLookup()
				v.PmapPte() // destination PTE slot
				v.pmapEnter()
				v.k.Advance(costForkPageCopy)
			}
			ce.Resident = e.Resident
			child.Entries = append(child.Entries, ce)
		}
	})
	return child
}

// Teardown releases an address space: vm_deallocate each entry, with
// pmap_remove sweeping the mappings and the page level freeing frames.
func (v *VM) Teardown(s *VMSpace) {
	v.k.Call(v.fnVmspaceFree, func() {
		v.k.Advance(costMapTeardown)
		for _, e := range s.Entries {
			v.k.Call(v.fnVmDeallocate, func() {
				v.k.Advance(costMapEntryBase)
				v.PmapRemove(e.Resident)
				for i := 0; i < e.Resident; i++ {
					v.pageFree()
				}
			})
			e.Resident = 0
		}
		s.Entries = nil
	})
}

// Exec replaces an address space with a fresh image: teardown, rebuild,
// copy in the argument strings, and fault in the initial working set. It
// returns the new space. workingSet is how many pages the process touches
// before it is considered "running"; <=0 means a calibrated default.
func (v *VM) Exec(old *VMSpace, im Image, workingSet int) *VMSpace {
	v.Execs++
	v.k.Stats.Execs++
	// Path name and argument strings come from user space first.
	v.k.Copyinstr(68)
	v.k.Copyin(512)
	if old != nil {
		v.Teardown(old)
	}
	s := v.NewVMSpace(im)
	if workingSet <= 0 {
		workingSet = defaultWorkingSet(im)
	}
	// Text pages of a cached image are mapped without zero-fill faults;
	// data and stack demand-zero in as touched.
	for _, e := range s.Entries {
		var n int
		switch e.Kind {
		case SegText:
			n = min(e.Pages, workingSet)
		case SegData:
			n = min(e.Pages, workingSet/2)
		case SegStack:
			n = min(e.Pages, 4)
		}
		v.FaultIn(e, n)
	}
	return s
}

// DefaultWorkingSet is the page count Exec faults in by default for the
// text segment (data gets half, stack a few pages).
const DefaultWorkingSet = 24

func defaultWorkingSet(im Image) int {
	ws := DefaultWorkingSet
	if t := im.total() / 5; t < ws {
		ws = t
	}
	if ws < 1 {
		ws = 1
	}
	return ws
}

func (v *VM) String() string {
	return fmt.Sprintf("vm(faults=%d forks=%d execs=%d)", v.Faults, v.Forks, v.Execs)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
