package vm

import (
	"testing"
	"testing/quick"

	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

func newVM() (*kernel.Kernel, *VM) {
	k := kernel.New(kernel.Config{Seed: 1})
	a := mem.Attach(k)
	return k, Attach(k, a)
}

// fullyResident builds a parent address space with every page faulted in,
// the state of a long-running process about to fork.
func fullyResident(v *VM, im Image) *VMSpace {
	s := v.NewVMSpace(im)
	for _, e := range s.Entries {
		v.FaultIn(e, e.Pages)
	}
	return s
}

func TestVmFaultTimingMatchesTable1(t *testing.T) {
	k, v := newVM()
	s := v.NewVMSpace(DefaultImage)
	data := s.Entries[1]
	start := k.Now()
	if !v.Fault(data) {
		t.Fatal("fault did not materialise a page")
	}
	d := k.Now() - start
	// Table 1: vm_fault ≈ 410 µs inclusive for a demand-zero fault.
	if d < 350*sim.Microsecond || d > 470*sim.Microsecond {
		t.Fatalf("vm_fault = %v, want ≈410 µs", d)
	}
}

func TestKmemAllocThroughPmapMatchesTable1(t *testing.T) {
	k, v := newVM()
	start := k.Now()
	v.alloc.KmemAlloc(2)
	d := k.Now() - start
	if d < 550*sim.Microsecond || d > 1000*sim.Microsecond {
		t.Fatalf("kmem_alloc(2) through pmap backing = %v, want ≈800 µs", d)
	}
}

func TestForkPmapPteCallCount(t *testing.T) {
	k, v := newVM()
	parent := fullyResident(v, DefaultImage)
	pte := k.MustFn("pmap_pte")
	before := pte.Calls
	v.Fork(parent)
	calls := pte.Calls - before
	// Paper: pmap_pte is called 1053 times when a fork is executed.
	if calls < 900 || calls > 1200 {
		t.Fatalf("pmap_pte calls during fork = %d, want ≈1053", calls)
	}
}

func TestForkTimingMatchesPaper(t *testing.T) {
	k, v := newVM()
	parent := fullyResident(v, DefaultImage)
	start := k.Now()
	child := v.Fork(parent)
	d := k.Now() - start
	// Paper: ≈24 ms for the vfork (we measure the VM share, which
	// dominates; the syscall wrapper adds little).
	if d < 19*sim.Millisecond || d > 29*sim.Millisecond {
		t.Fatalf("fork VM work = %v, want ≈24 ms", d)
	}
	if child.TotalPages() != parent.TotalPages() {
		t.Fatalf("child pages = %d", child.TotalPages())
	}
	if child.ResidentPages() != parent.ResidentPages() {
		t.Fatalf("child resident = %d", child.ResidentPages())
	}
}

func TestExecTimingMatchesPaper(t *testing.T) {
	k, v := newVM()
	old := fullyResident(v, DefaultImage)
	start := k.Now()
	s := v.Exec(old, DefaultImage, 0)
	d := k.Now() - start
	// Paper: ≈28 ms for execve with a cached image.
	if d < 22*sim.Millisecond || d > 34*sim.Millisecond {
		t.Fatalf("exec = %v, want ≈28 ms", d)
	}
	if s.ResidentPages() == 0 {
		t.Fatal("exec left nothing resident")
	}
	if old.Entries != nil {
		t.Fatal("old space not torn down")
	}
}

func TestForkWriteProtectsParentForCOW(t *testing.T) {
	_, v := newVM()
	parent := fullyResident(v, DefaultImage)
	v.Fork(parent)
	for _, e := range parent.Entries {
		if e.Kind == SegText {
			if e.CopyOnWrite {
				t.Fatal("text marked COW")
			}
		} else if !e.CopyOnWrite {
			t.Fatalf("%v entry not write-protected after fork", e.Kind)
		}
	}
}

func TestFaultOnFullyResidentEntryIsNoop(t *testing.T) {
	k, v := newVM()
	s := v.NewVMSpace(Image{DataPages: 2})
	e := s.Entries[0]
	v.FaultIn(e, 10) // more than available: stops at 2
	if e.Resident != 2 {
		t.Fatalf("resident = %d", e.Resident)
	}
	before := k.Now()
	if v.Fault(e) {
		t.Fatal("fault on resident entry materialised a page")
	}
	if k.Now() != before {
		t.Fatal("no-op fault consumed time")
	}
}

func TestTeardownResetsSpace(t *testing.T) {
	_, v := newVM()
	s := fullyResident(v, Image{TextPages: 10, DataPages: 5})
	v.Teardown(s)
	if s.Entries != nil || s.ResidentPages() != 0 {
		t.Fatalf("teardown left %d entries", len(s.Entries))
	}
}

func TestCOWFaultCostsMoreThanPlain(t *testing.T) {
	k, v := newVM()
	s := v.NewVMSpace(Image{DataPages: 4})
	plain := s.Entries[0]
	start := k.Now()
	v.Fault(plain)
	plainCost := k.Now() - start

	s2 := v.NewVMSpace(Image{DataPages: 4})
	cow := s2.Entries[0]
	cow.CopyOnWrite = true
	start = k.Now()
	v.Fault(cow)
	cowCost := k.Now() - start
	if cowCost <= plainCost {
		t.Fatalf("COW fault (%v) should cost more than plain (%v)", cowCost, plainCost)
	}
}

func TestTextFaultSkipsZeroFill(t *testing.T) {
	k, v := newVM()
	s := v.NewVMSpace(Image{TextPages: 4, DataPages: 4})
	text, data := s.Entries[0], s.Entries[1]
	start := k.Now()
	v.Fault(text)
	textCost := k.Now() - start
	start = k.Now()
	v.Fault(data)
	dataCost := k.Now() - start
	if dataCost-textCost < 100*sim.Microsecond {
		t.Fatalf("zero fill not visible: text=%v data=%v", textCost, dataCost)
	}
}

func TestEmptyImagePanics(t *testing.T) {
	_, v := newVM()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.NewVMSpace(Image{})
}

func TestSegmentKindString(t *testing.T) {
	for _, s := range []SegmentKind{SegText, SegData, SegStack, SegmentKind(9)} {
		if s.String() == "" {
			t.Fatal("empty segment string")
		}
	}
}

func TestStatsCounting(t *testing.T) {
	k, v := newVM()
	parent := fullyResident(v, Image{TextPages: 4, DataPages: 2, StackPages: 1})
	v.Fork(parent)
	v.Exec(parent, Image{TextPages: 4, DataPages: 2, StackPages: 1}, 2)
	if v.Forks != 1 || v.Execs != 1 {
		t.Fatalf("forks=%d execs=%d", v.Forks, v.Execs)
	}
	if k.Stats.Forks != 1 || k.Stats.Execs != 1 || k.Stats.PageFaults == 0 {
		t.Fatalf("kernel stats: %+v", k.Stats)
	}
}

// Property: fork preserves page counts and residency for arbitrary images,
// and pmap_pte call volume scales with resident pages.
func TestForkInvariantProperty(t *testing.T) {
	prop := func(tp, dp, sp uint8) bool {
		im := Image{TextPages: int(tp%64) + 1, DataPages: int(dp % 64), StackPages: int(sp % 16)}
		k, v := newVM()
		parent := fullyResident(v, im)
		pte := k.MustFn("pmap_pte")
		before := pte.Calls
		child := v.Fork(parent)
		calls := int(pte.Calls - before)
		resident := parent.ResidentPages()
		if child.TotalPages() != parent.TotalPages() {
			return false
		}
		if child.ResidentPages() != resident {
			return false
		}
		// 3 PTE consultations per resident page, plus 1 per COW page.
		minCalls := 3 * resident
		return calls >= minCalls
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
