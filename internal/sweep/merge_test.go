package sweep

import (
	"fmt"
	"math"
	"testing"

	"kprof/internal/analyze"
)

// approxEq compares floats to a relative tolerance (absolute near zero):
// Acc.Merge reassociates the Welford update, so moments agree with the
// serial fold only to rounding.
func approxEq(a, b float64) bool {
	const tol = 1e-9
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// synthResults builds a deterministic observation set with overlapping
// but not identical function populations, so merges exercise both the
// find and the create path of the name fold.
func synthResults(n int) []SeedResult {
	names := []string{"bcopy", "in_cksum", "soreceive", "vm_fault", "ffs_write", "malloc", "ip_input", "tcp_input"}
	results := make([]SeedResult, n)
	for i := range results {
		r := SeedResult{
			Seed:      uint64(i),
			ElapsedUS: 100000 + 37.5*float64(i),
			RunUS:     90000 - 13.25*float64(i),
			IdlePct:   5 + 0.75*float64(i%7),
			Records:   16000 + 11*i,
			Switches:  300 + 7*i,
			Fns:       make(map[string]FnSample),
		}
		for j, name := range names {
			if (i+j)%3 == 0 {
				continue // this function absent in this observation
			}
			base := float64(i*7 + j*13)
			r.Fns[name] = FnSample{
				Calls:   100 + i*j,
				NetUS:   1000 + 11.5*base,
				AvgUS:   3 + 0.125*base,
				PctReal: 1 + 0.01*base,
				PctNet:  2 + 0.02*base,
			}
		}
		results[i] = r
	}
	return results
}

func requireAccEq(t *testing.T, ctx string, got, want analyze.Acc) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", ctx, got.N, want.N)
	}
	if got.N > 0 && (got.Min() != want.Min() || got.Max() != want.Max()) {
		t.Fatalf("%s: extremes [%v, %v], want [%v, %v]", ctx, got.Min(), got.Max(), want.Min(), want.Max())
	}
	if !approxEq(got.Mean, want.Mean) || !approxEq(got.M2, want.M2) {
		t.Fatalf("%s: moments (%v, %v), want (%v, %v)", ctx, got.Mean, got.M2, want.Mean, want.M2)
	}
}

func requireAggEq(t *testing.T, ctx string, got, want *Aggregate) {
	t.Helper()
	if got.Seeds != want.Seeds {
		t.Fatalf("%s: %d observations, want %d", ctx, got.Seeds, want.Seeds)
	}
	requireAccEq(t, ctx+": elapsed", got.ElapsedUS, want.ElapsedUS)
	requireAccEq(t, ctx+": run", got.RunUS, want.RunUS)
	requireAccEq(t, ctx+": idle%", got.IdlePct, want.IdlePct)
	requireAccEq(t, ctx+": records", got.Records, want.Records)
	requireAccEq(t, ctx+": switches", got.Switches, want.Switches)
	if len(got.Fns) != len(want.Fns) {
		t.Fatalf("%s: %d functions, want %d", ctx, len(got.Fns), len(want.Fns))
	}
	for _, wf := range want.Fns {
		gf, ok := got.Fn(wf.Name)
		if !ok {
			t.Fatalf("%s: function %s missing", ctx, wf.Name)
		}
		if gf.Seeds != wf.Seeds {
			t.Fatalf("%s: %s seen in %d observations, want %d", ctx, wf.Name, gf.Seeds, wf.Seeds)
		}
		requireAccEq(t, ctx+": "+wf.Name+" calls", gf.Calls, wf.Calls)
		requireAccEq(t, ctx+": "+wf.Name+" net", gf.NetUS, wf.NetUS)
		requireAccEq(t, ctx+": "+wf.Name+" avg", gf.AvgUS, wf.AvgUS)
		requireAccEq(t, ctx+": "+wf.Name+" %real", gf.PctReal, wf.PctReal)
		requireAccEq(t, ctx+": "+wf.Name+" %net", gf.PctNet, wf.PctNet)
	}
}

// TestWindowedMergeEqualsFold is the fleet refactor's property test: an
// incremental windowed merge — observations grouped into consecutive
// windows, each window aggregated independently, windows merged into a
// cumulative in order — equals the historical fold-at-the-end over the
// same observations, for every window size and every split point. Counts
// and extremes must match exactly; the moments to Merge's documented
// reassociation tolerance.
func TestWindowedMergeEqualsFold(t *testing.T) {
	results := synthResults(13)
	want := aggregate("synth", results)

	// Every uniform window size from singletons to one big window.
	for w := 1; w <= len(results); w++ {
		cum := NewAggregator("synth").Finish()
		for i := 0; i < len(results); i += w {
			end := i + w
			if end > len(results) {
				end = len(results)
			}
			wa := NewAggregator("synth")
			for _, r := range results[i:end] {
				wa.Add(r)
			}
			cum.Merge(wa.Finish())
		}
		requireAggEq(t, fmt.Sprintf("window size %d", w), cum, want)
	}

	// Every two-way split point, including the empty prefix and suffix.
	for cut := 0; cut <= len(results); cut++ {
		left := NewAggregator("synth")
		for _, r := range results[:cut] {
			left.Add(r)
		}
		right := NewAggregator("synth")
		for _, r := range results[cut:] {
			right.Add(r)
		}
		cum := left.Finish()
		cum.Merge(right.Finish())
		requireAggEq(t, fmt.Sprintf("split at %d", cut), cum, want)
	}
}

// TestAggregatorMatchesFold pins the streaming Aggregator to the batch
// fold exactly: same observations in the same order must produce
// bit-identical statistics (it is the same code path).
func TestAggregatorMatchesFold(t *testing.T) {
	results := synthResults(9)
	want := aggregate("synth", results)
	ag := NewAggregator("synth")
	for _, r := range results {
		ag.Add(r)
	}
	got := ag.Finish()
	if got.Seeds != want.Seeds || len(got.Fns) != len(want.Fns) {
		t.Fatalf("shape differs: %d/%d observations, %d/%d functions",
			got.Seeds, want.Seeds, len(got.Fns), len(want.Fns))
	}
	if got.ElapsedUS != want.ElapsedUS || got.RunUS != want.RunUS {
		t.Fatal("whole-run accumulators not bit-identical to the batch fold")
	}
	for i, wf := range want.Fns {
		gf := got.Fns[i]
		if gf.Name != wf.Name || gf.NetUS != wf.NetUS || gf.PctNet != wf.PctNet {
			t.Fatalf("function %d (%s) not bit-identical to the batch fold", i, wf.Name)
		}
	}
}

// TestMergeIntoEmpty covers the degenerate directions: merging into a
// fresh aggregate adopts the other side; merging an empty one is a no-op.
func TestMergeIntoEmpty(t *testing.T) {
	results := synthResults(5)
	want := aggregate("synth", results)

	empty := NewAggregator("synth").Finish()
	empty.Merge(want)
	requireAggEq(t, "into empty", empty, want)

	full := aggregate("synth", results)
	full.Merge(NewAggregator("synth").Finish())
	requireAggEq(t, "empty into full", full, want)
}
