package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/analyze"
)

// DefaultStableCV is the coefficient-of-variation threshold under which a
// function's run-time share is considered reproduced stably across seeds.
const DefaultStableCV = 0.10

// FnAggregate is one function's statistics across all seeds of a sweep.
// Each accumulator's observations are per-seed scalars: a seed where the
// function never ran contributes nothing (see Seeds versus the sweep's
// seed count).
type FnAggregate struct {
	Name string
	// Seeds counts the seeds in which the function appeared.
	Seeds int

	Calls   analyze.Acc // per-seed call counts
	NetUS   analyze.Acc // per-seed net µs
	AvgUS   analyze.Acc // per-seed mean net µs per call
	PctReal analyze.Acc // per-seed % of elapsed
	PctNet  analyze.Acc // per-seed % of run time
}

// Stable reports whether the function's run-time share reproduces across
// seeds: it appeared in every seed and the spread of its % net share is
// within maxCV of its mean (DefaultStableCV when maxCV is 0). A sweep of
// fewer than two seeds has no cross-seed spread to judge, so nothing is
// stable — a single observation always has CV 0, which says nothing
// about reproducibility.
func (f *FnAggregate) Stable(totalSeeds int, maxCV float64) bool {
	if totalSeeds < 2 {
		return false
	}
	if maxCV <= 0 {
		maxCV = DefaultStableCV
	}
	return f.Seeds == totalSeeds && f.PctNet.CV() <= maxCV
}

// Aggregate is the cross-seed merge of a sweep.
type Aggregate struct {
	Scenario string
	Seeds    int

	// Whole-run scalars, one observation per seed.
	ElapsedUS analyze.Acc
	RunUS     analyze.Acc
	IdlePct   analyze.Acc
	Records   analyze.Acc
	Switches  analyze.Acc

	// Fns is sorted by mean net time descending (ties by name).
	Fns    []*FnAggregate
	byName map[string]*FnAggregate
}

// aggregate folds per-seed results in slice order — a fixed order, so the
// merged statistics are identical however the seeds were scheduled.
func aggregate(scenario string, results []SeedResult) *Aggregate {
	// Presized for a full symbol table; the arena carves the per-function
	// aggregates from one slab (append-only at fixed capacity, falling
	// back to individual allocations if a sweep somehow exceeds it).
	const fnHint = 160
	arena := make([]FnAggregate, 0, fnHint)
	g := &Aggregate{
		Scenario: scenario,
		Seeds:    len(results),
		Fns:      make([]*FnAggregate, 0, fnHint),
		byName:   make(map[string]*FnAggregate, fnHint),
	}
	names := make([]string, 0, fnHint)
	for _, r := range results {
		g.ElapsedUS.Add(r.ElapsedUS)
		g.RunUS.Add(r.RunUS)
		g.IdlePct.Add(r.IdlePct)
		g.Records.Add(float64(r.Records))
		g.Switches.Add(float64(r.Switches))

		// Map iteration order is random; fold each seed's functions in
		// sorted name order to keep the float accumulation deterministic.
		names = names[:0]
		for name := range r.Fns {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := r.Fns[name]
			f := g.byName[name]
			if f == nil {
				if len(arena) < cap(arena) {
					arena = append(arena, FnAggregate{Name: name})
					f = &arena[len(arena)-1]
				} else {
					f = &FnAggregate{Name: name}
				}
				g.byName[name] = f
				g.Fns = append(g.Fns, f)
			}
			f.Seeds++
			f.Calls.Add(float64(s.Calls))
			f.NetUS.Add(s.NetUS)
			f.AvgUS.Add(s.AvgUS)
			f.PctReal.Add(s.PctReal)
			f.PctNet.Add(s.PctNet)
		}
	}
	sort.Slice(g.Fns, func(i, j int) bool {
		if g.Fns[i].NetUS.Mean != g.Fns[j].NetUS.Mean {
			return g.Fns[i].NetUS.Mean > g.Fns[j].NetUS.Mean
		}
		return g.Fns[i].Name < g.Fns[j].Name
	})
	return g
}

// Fn looks one function's aggregate up by name.
func (g *Aggregate) Fn(name string) (*FnAggregate, bool) {
	f, ok := g.byName[name]
	return f, ok
}

// Write renders the aggregate table: the whole-run header, then one line
// per function in the style of the paper's summary, each column carrying
// mean ± stddev across seeds, with the % net coefficient of variation and
// a stability marker ('*' = appeared in every seed with CV within
// DefaultStableCV).
func (g *Aggregate) Write(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "Sweep of %s across %d seeds\n", g.Scenario, g.Seeds)
	fmt.Fprintf(ew, "Elapsed us = %.0f ± %.0f  [%.0f, %.0f]\n",
		g.ElapsedUS.Mean, g.ElapsedUS.Std(), g.ElapsedUS.Min(), g.ElapsedUS.Max())
	fmt.Fprintf(ew, "Run us     = %.0f ± %.0f\n", g.RunUS.Mean, g.RunUS.Std())
	fmt.Fprintf(ew, "Idle %%     = %.2f ± %.2f\n", g.IdlePct.Mean, g.IdlePct.Std())
	fmt.Fprintf(ew, "Tags       = %.0f ± %.0f   context switches = %.0f ± %.0f\n",
		g.Records.Mean, g.Records.Std(), g.Switches.Mean, g.Switches.Std())
	fmt.Fprintln(ew, strings.Repeat("-", 78))
	fmt.Fprintf(ew, "%18s %16s %14s %7s %5s   %s\n",
		"net us (mean±sd)", "% net (mean±sd)", "calls (mean)", "CV", "seeds", "")
	fns := g.Fns
	if top > 0 && len(fns) > top {
		fns = fns[:top]
	}
	for _, f := range fns {
		marker := " "
		if f.Stable(g.Seeds, 0) {
			marker = "*"
		}
		fmt.Fprintf(ew, "%11.0f ±%5.0f %10.2f ±%5.2f %14.1f %7.3f %4d %s %s\n",
			f.NetUS.Mean, f.NetUS.Std(), f.PctNet.Mean, f.PctNet.Std(),
			f.Calls.Mean, f.PctNet.CV(), f.Seeds, marker, f.Name)
	}
	return ew.err
}

// String renders the top 20 functions.
func (g *Aggregate) String() string {
	var b strings.Builder
	_ = g.Write(&b, 20)
	return b.String()
}

// errWriter passes writes through until one fails, then remembers the
// first error — so Write stays a straight-line sequence of Fprintfs and
// still reports a full disk or closed pipe instead of pretending success.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}
