package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/analyze"
)

// DefaultStableCV is the coefficient-of-variation threshold under which a
// function's run-time share is considered reproduced stably across seeds.
const DefaultStableCV = 0.10

// FnAggregate is one function's statistics across all seeds of a sweep.
// Each accumulator's observations are per-seed scalars: a seed where the
// function never ran contributes nothing (see Seeds versus the sweep's
// seed count).
type FnAggregate struct {
	Name string
	// Seeds counts the seeds in which the function appeared.
	Seeds int

	Calls   analyze.Acc // per-seed call counts
	NetUS   analyze.Acc // per-seed net µs
	AvgUS   analyze.Acc // per-seed mean net µs per call
	PctReal analyze.Acc // per-seed % of elapsed
	PctNet  analyze.Acc // per-seed % of run time
}

// Stable reports whether the function's run-time share reproduces across
// seeds: it appeared in every seed and the spread of its % net share is
// within maxCV of its mean (DefaultStableCV when maxCV is 0). A sweep of
// fewer than two seeds has no cross-seed spread to judge, so nothing is
// stable — a single observation always has CV 0, which says nothing
// about reproducibility.
func (f *FnAggregate) Stable(totalSeeds int, maxCV float64) bool {
	if totalSeeds < 2 {
		return false
	}
	if maxCV <= 0 {
		maxCV = DefaultStableCV
	}
	return f.Seeds == totalSeeds && f.PctNet.CV() <= maxCV
}

// Aggregate is the cross-seed merge of a sweep. The observation unit is
// one SeedResult: a whole seed for a sweep, or one machine's contribution
// to one time window for a fleet run (internal/fleet), which reuses this
// type so fleet reports carry the same statistics vocabulary.
type Aggregate struct {
	Scenario string
	// Seeds counts observations folded in (per-seed for sweeps,
	// per-machine-window for fleet runs).
	Seeds int

	// Whole-run scalars, one observation per seed.
	ElapsedUS analyze.Acc
	RunUS     analyze.Acc
	IdlePct   analyze.Acc
	Records   analyze.Acc
	Switches  analyze.Acc

	// Fns is sorted by mean net time descending (ties by name).
	Fns    []*FnAggregate
	byName map[string]*FnAggregate
}

// Aggregator builds an Aggregate incrementally, one observation at a
// time, instead of folding a finished result slice at the end. The sweep
// engine feeds it per-seed results in seed order; the fleet ingest
// pipeline feeds it per-(machine, window) samples in machine order as
// each window closes. Observations fold in Add-call order and each
// observation's functions fold in sorted name order, so two Aggregators
// fed the same observations in the same order produce bit-identical
// statistics — whatever scheduling produced the observations.
type Aggregator struct {
	g *Aggregate
	// arena carves the per-function aggregates from one slab (append-only
	// at fixed capacity, falling back to individual allocations if a run
	// somehow exceeds the symbol-table hint).
	arena []FnAggregate
	names []string
}

// fnHint presizes for a full symbol table.
const fnHint = 160

// NewAggregator starts an empty aggregate for the named scenario (a fleet
// merging heterogeneous scenarios passes its own label).
func NewAggregator(scenario string) *Aggregator {
	return &Aggregator{
		g: &Aggregate{
			Scenario: scenario,
			Fns:      make([]*FnAggregate, 0, fnHint),
			byName:   make(map[string]*FnAggregate, fnHint),
		},
		arena: make([]FnAggregate, 0, fnHint),
		names: make([]string, 0, fnHint),
	}
}

// Add folds one observation in. The result's functions fold in sorted
// name order — map iteration order is random, and a fixed order keeps the
// float accumulation deterministic.
func (ag *Aggregator) Add(r SeedResult) {
	g := ag.g
	g.Seeds++
	g.ElapsedUS.Add(r.ElapsedUS)
	g.RunUS.Add(r.RunUS)
	g.IdlePct.Add(r.IdlePct)
	g.Records.Add(float64(r.Records))
	g.Switches.Add(float64(r.Switches))

	ag.names = ag.names[:0]
	for name := range r.Fns {
		ag.names = append(ag.names, name)
	}
	sort.Strings(ag.names)
	for _, name := range ag.names {
		s := r.Fns[name]
		f := g.byName[name]
		if f == nil {
			if len(ag.arena) < cap(ag.arena) {
				ag.arena = append(ag.arena, FnAggregate{Name: name})
				f = &ag.arena[len(ag.arena)-1]
			} else {
				f = &FnAggregate{Name: name}
			}
			g.byName[name] = f
			g.Fns = append(g.Fns, f)
		}
		f.Seeds++
		f.Calls.Add(float64(s.Calls))
		f.NetUS.Add(s.NetUS)
		f.AvgUS.Add(s.AvgUS)
		f.PctReal.Add(s.PctReal)
		f.PctNet.Add(s.PctNet)
	}
}

// Finish sorts the function table and returns the aggregate. The
// Aggregator must not be used afterwards.
func (ag *Aggregator) Finish() *Aggregate {
	sortFns(ag.g.Fns)
	return ag.g
}

// aggregate folds per-seed results in slice order — a fixed order, so the
// merged statistics are identical however the seeds were scheduled.
func aggregate(scenario string, results []SeedResult) *Aggregate {
	ag := NewAggregator(scenario)
	for _, r := range results {
		ag.Add(r)
	}
	return ag.Finish()
}

// Merge folds another aggregate into g using the exact parallel-variance
// update (analyze.Acc.Merge): g becomes the aggregate of both input
// observation sets. The other aggregate's functions fold in sorted name
// order and g's function table is re-sorted afterwards, so a chain of
// Merge calls in a fixed order — the fleet's windows closing in window
// order — renders bit-identically however the observations were produced.
// Merge-equals-serial holds to floating-point reassociation (~1e-9
// relative on the moments; counts and extremes are exact), which is why
// deterministic output always comes from fixing the fold order, never
// from re-grouping the folds.
func (g *Aggregate) Merge(o *Aggregate) {
	g.Seeds += o.Seeds
	g.ElapsedUS.Merge(o.ElapsedUS)
	g.RunUS.Merge(o.RunUS)
	g.IdlePct.Merge(o.IdlePct)
	g.Records.Merge(o.Records)
	g.Switches.Merge(o.Switches)

	if g.byName == nil {
		g.byName = make(map[string]*FnAggregate, fnHint)
	}
	names := make([]string, 0, len(o.Fns))
	for _, f := range o.Fns {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		of := o.byName[name]
		f := g.byName[name]
		if f == nil {
			f = &FnAggregate{Name: name}
			g.byName[name] = f
			g.Fns = append(g.Fns, f)
		}
		f.Seeds += of.Seeds
		f.Calls.Merge(of.Calls)
		f.NetUS.Merge(of.NetUS)
		f.AvgUS.Merge(of.AvgUS)
		f.PctReal.Merge(of.PctReal)
		f.PctNet.Merge(of.PctNet)
	}
	sortFns(g.Fns)
}

// sortFns orders the function table by mean net time descending, ties by
// name — the rendering order, re-established after every build or merge.
func sortFns(fns []*FnAggregate) {
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].NetUS.Mean != fns[j].NetUS.Mean {
			return fns[i].NetUS.Mean > fns[j].NetUS.Mean
		}
		return fns[i].Name < fns[j].Name
	})
}

// Fn looks one function's aggregate up by name.
func (g *Aggregate) Fn(name string) (*FnAggregate, bool) {
	f, ok := g.byName[name]
	return f, ok
}

// Write renders the aggregate table: the whole-run header, then one line
// per function in the style of the paper's summary, each column carrying
// mean ± stddev across seeds, with the % net coefficient of variation and
// a stability marker ('*' = appeared in every seed with CV within
// DefaultStableCV).
func (g *Aggregate) Write(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "Sweep of %s across %d seeds\n", g.Scenario, g.Seeds)
	fmt.Fprintf(ew, "Elapsed us = %.0f ± %.0f  [%.0f, %.0f]\n",
		g.ElapsedUS.Mean, g.ElapsedUS.Std(), g.ElapsedUS.Min(), g.ElapsedUS.Max())
	fmt.Fprintf(ew, "Run us     = %.0f ± %.0f\n", g.RunUS.Mean, g.RunUS.Std())
	fmt.Fprintf(ew, "Idle %%     = %.2f ± %.2f\n", g.IdlePct.Mean, g.IdlePct.Std())
	fmt.Fprintf(ew, "Tags       = %.0f ± %.0f   context switches = %.0f ± %.0f\n",
		g.Records.Mean, g.Records.Std(), g.Switches.Mean, g.Switches.Std())
	fmt.Fprintln(ew, strings.Repeat("-", 78))
	fmt.Fprintf(ew, "%18s %16s %14s %7s %5s   %s\n",
		"net us (mean±sd)", "% net (mean±sd)", "calls (mean)", "CV", "seeds", "")
	fns := g.Fns
	if top > 0 && len(fns) > top {
		fns = fns[:top]
	}
	for _, f := range fns {
		marker := " "
		if f.Stable(g.Seeds, 0) {
			marker = "*"
		}
		fmt.Fprintf(ew, "%11.0f ±%5.0f %10.2f ±%5.2f %14.1f %7.3f %4d %s %s\n",
			f.NetUS.Mean, f.NetUS.Std(), f.PctNet.Mean, f.PctNet.Std(),
			f.Calls.Mean, f.PctNet.CV(), f.Seeds, marker, f.Name)
	}
	return ew.err
}

// String renders the top 20 functions.
func (g *Aggregate) String() string {
	var b strings.Builder
	_ = g.Write(&b, 20)
	return b.String()
}

// errWriter passes writes through until one fails, then remembers the
// first error — so Write stays a straight-line sequence of Fprintfs and
// still reports a full disk or closed pipe instead of pretending success.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}
