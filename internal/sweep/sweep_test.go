package sweep

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/faults"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// shortNet is a quick saturation-test sweep configuration.
func shortNet(seeds []uint64, parallel int) Config {
	return Config{
		Scenario: "netrecv",
		Seeds:    seeds,
		Parallel: parallel,
		Params:   workload.Params{Duration: 30 * sim.Millisecond},
	}
}

// The acceptance bar: the merged statistics are identical whether the
// seeds ran serially or fanned across workers.
func TestSerialAndParallelMergeIdentically(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	serial, err := Run(shortNet(seeds, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(shortNet(seeds, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parallel.Agg.String(), serial.Agg.String(); got != want {
		t.Fatalf("aggregates differ\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
	if !reflect.DeepEqual(parallel.PerSeed, serial.PerSeed) {
		t.Fatal("per-seed results differ between serial and parallel runs")
	}
	if serial.Workers != 1 || parallel.Workers != 4 {
		t.Fatalf("workers = %d, %d", serial.Workers, parallel.Workers)
	}
}

// Same process, two consecutive sweeps: byte-identical.
func TestConsecutiveSweepsIdentical(t *testing.T) {
	seeds := []uint64{10, 11, 12}
	first, err := Run(shortNet(seeds, 3))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(shortNet(seeds, 3))
	if err != nil {
		t.Fatal(err)
	}
	if first.Agg.String() != second.Agg.String() {
		t.Fatal("two consecutive sweeps disagree")
	}
	if !reflect.DeepEqual(first.PerSeed, second.PerSeed) {
		t.Fatal("two consecutive sweeps disagree per seed")
	}
}

// A seed profiled inside a parallel sweep renders the same summary and
// trace, byte for byte, as the same seed run serially on its own — the
// workers share nothing.
func TestSweepMatchesSerialSummaryAndTrace(t *testing.T) {
	const dur = 25 * sim.Millisecond
	serialRun := func(seed uint64) (summary, trace string) {
		m := core.NewMachine(kernel.Config{Seed: seed})
		s, err := core.NewSession(m, core.ProfileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		if _, err := workload.NetReceive(m, dur); err != nil {
			t.Fatal(err)
		}
		s.Disarm()
		a := s.Analyze()
		return a.SummaryString(0), a.TraceString(analyze.TraceOptions{})
	}

	seeds := []uint64{3, 7, 21, 42}
	summaries := make(map[uint64]string)
	traces := make(map[uint64]string)
	cfg := shortNet(seeds, len(seeds))
	cfg.Params.Duration = dur
	cfg.Observe = func(seed uint64, a *analyze.Analysis) {
		summaries[seed] = a.SummaryString(0)
		traces[seed] = a.TraceString(analyze.TraceOptions{})
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		wantSummary, wantTrace := serialRun(seed)
		if summaries[seed] != wantSummary {
			t.Fatalf("seed %d: sweep summary differs from serial run", seed)
		}
		if traces[seed] != wantTrace {
			t.Fatalf("seed %d: sweep trace differs from serial run", seed)
		}
		if wantTrace == "" {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Run(Config{Scenario: "no-such", Seeds: []uint64{1}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Run(Config{Scenario: "netrecv"}); err == nil {
		t.Fatal("empty seed set accepted")
	}
}

// The saturation test's headline percentages must reproduce stably: bcopy
// and in_cksum appear in every seed with a tight %net spread.
func TestAggregateStability(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	res, err := Run(shortNet(seeds, 0))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Agg
	if g.Seeds != len(seeds) {
		t.Fatalf("aggregate seeds = %d", g.Seeds)
	}
	for _, name := range []string{"bcopy", "in_cksum"} {
		f, ok := g.Fn(name)
		if !ok {
			t.Fatalf("%s missing from aggregate", name)
		}
		if f.Seeds != len(seeds) {
			t.Fatalf("%s ran in %d/%d seeds", name, f.Seeds, len(seeds))
		}
		if !f.Stable(g.Seeds, 0) {
			t.Fatalf("%s unstable: %%net CV = %.3f (mean %.2f ± %.2f)",
				name, f.PctNet.CV(), f.PctNet.Mean, f.PctNet.Std())
		}
	}
	// The table renders with the stability marker and header.
	s := g.String()
	if !strings.Contains(s, "Sweep of netrecv across 5 seeds") || !strings.Contains(s, "* bcopy") {
		t.Fatalf("aggregate table:\n%s", s)
	}
	// swtch is accounted as idle in the header, not a row.
	if _, ok := g.Fn("swtch"); ok {
		t.Fatal("swtch leaked into the aggregate rows")
	}
}

// A sweep under continuous capture: every worker drains its small card
// through the EPROM socket and the lean stitched analysis merges into the
// same aggregate a one-shot sweep with a big-enough RAM produces.
func TestContinuousSweepMatchesOneShot(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	oneShot := shortNet(seeds, 0)
	ref, err := Run(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	drained := shortNet(seeds, 0)
	drained.Profile = core.ProfileConfig{
		Mode:  core.CaptureContinuous,
		Depth: 512,
		Drain: core.DrainConfig{HighWater: 128, Interval: 100 * sim.Microsecond},
	}
	res, err := Run(drained)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.PerSeed {
		if r.Segments < 2 {
			t.Fatalf("seed %d drained only %d segments", r.Seed, r.Segments)
		}
		if r.Dropped != 0 {
			t.Fatalf("seed %d lost %d strobes; tighten the drain config", r.Seed, r.Dropped)
		}
		if r.Records != ref.PerSeed[i].Records {
			t.Fatalf("seed %d: drained %d records, one-shot %d", r.Seed, r.Records, ref.PerSeed[i].Records)
		}
		// The switcher row never leaks into the per-seed samples.
		if _, ok := r.Fns["swtch"]; ok {
			t.Fatalf("seed %d: switcher leaked into samples", r.Seed)
		}
	}
	if got, want := res.Agg.String(), ref.Agg.String(); got != want {
		t.Fatalf("drained aggregate differs from one-shot\n--- drained ---\n%s--- one-shot ---\n%s", got, want)
	}
}

// Count-based scenarios sweep too.
func TestForkExecSweep(t *testing.T) {
	res, err := Run(Config{
		Scenario: "forkexec",
		Seeds:    []uint64{7, 8},
		Params:   workload.Params{Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := res.Agg.Fn("pmap_pte"); !ok || f.Calls.Mean == 0 {
		t.Fatal("forkexec sweep lost pmap_pte")
	}
	for _, r := range res.PerSeed {
		if !strings.HasPrefix(r.Workload, "forkexec: 1 cycles") {
			t.Fatalf("workload line %q", r.Workload)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	good := []struct {
		spec string
		want []uint64
	}{
		{"7", []uint64{7}},
		{"1..4", []uint64{1, 2, 3, 4}},
		{"1..2,10,20..21", []uint64{1, 2, 10, 20, 21}},
		{" 5 , 6 ", []uint64{5, 6}},
		{"3..3", []uint64{3}},
	}
	for _, tc := range good {
		got, err := ParseSeeds(tc.spec)
		if err != nil {
			t.Fatalf("ParseSeeds(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseSeeds(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
	for _, spec := range []string{"", "x", "4..1", "1..", "..4", "1,,2", "0..100000000000"} {
		if _, err := ParseSeeds(spec); err == nil {
			t.Fatalf("ParseSeeds(%q) accepted", spec)
		}
	}
}

// A faulted sweep gives every seed its own derived fault stream: each seed
// reports injected faults, the streams differ across seeds, and rerunning
// the sweep reproduces every per-seed fault and corruption count exactly.
func TestSweepPerSeedFaultStreams(t *testing.T) {
	cfg := shortNet([]uint64{1, 2, 3, 4}, 2)
	cfg.Profile.Faults = &faults.Config{Seed: 7, Rate: 0.02}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]bool{}
	for _, r := range first.PerSeed {
		if r.Faults == 0 {
			t.Fatalf("seed %d injected no faults at 2%%: %+v", r.Seed, r)
		}
		counts[r.Faults] = true
	}
	// Distinct derived streams: four seeds all landing on the same fault
	// count would mean the derivation ignored the seed.
	if len(counts) == 1 {
		t.Fatalf("all seeds report identical fault counts %v — shared stream?", first.PerSeed)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first.PerSeed {
		s := again.PerSeed[i]
		if r.Faults != s.Faults || r.Corrupt != s.Corrupt || r.Repaired != s.Repaired || r.Resyncs != s.Resyncs {
			t.Fatalf("seed %d not reproducible: %+v vs %+v", r.Seed, r, s)
		}
	}
	// The caller's base config must come through untouched — workers
	// clone it per seed rather than rewriting the shared pointer.
	if cfg.Profile.Faults.Seed != 7 {
		t.Fatalf("sweep mutated the caller's fault config: %+v", cfg.Profile.Faults)
	}
}

// A single-seed sweep has no cross-seed spread to judge: nothing may be
// flagged stable (one observation always has CV 0), and the rendered
// marker column stays blank.
func TestSingleSeedNothingStable(t *testing.T) {
	res, err := Run(shortNet([]uint64{1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Agg
	if g.Seeds != 1 {
		t.Fatalf("aggregate seeds = %d", g.Seeds)
	}
	for _, f := range g.Fns {
		if f.Stable(g.Seeds, 0) {
			t.Fatalf("%s flagged stable on a 1-seed sweep (CV %.3f)", f.Name, f.PctNet.CV())
		}
	}
	for i, line := range strings.Split(g.String(), "\n") {
		if strings.Contains(line, " * ") {
			t.Fatalf("line %d carries a stability marker on a 1-seed sweep: %q", i, line)
		}
	}
}

// failAfter errors once n bytes have been written — a stand-in for a
// full disk or a closed pipe.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	if f.n == 0 {
		return len(p), f.err
	}
	return len(p), nil
}

// Write must report the first failure instead of pretending success.
func TestAggregateWriteErrorPropagated(t *testing.T) {
	res, err := Run(shortNet([]uint64{1, 2}, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := errors.New("disk full")
	for _, budget := range []int{0, 1, 40, 200} {
		if err := res.Agg.Write(&failAfter{n: budget, err: want}, 10); !errors.Is(err, want) {
			t.Fatalf("budget %d: error %v, want %v", budget, err, want)
		}
	}
	var b strings.Builder
	if err := res.Agg.Write(&b, 10); err != nil {
		t.Fatalf("healthy writer errored: %v", err)
	}
}
