package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxSeeds bounds a parsed seed set; a typo like "1..1e9" should fail,
// not allocate the machine park.
const MaxSeeds = 65536

// ParseSeeds parses a seed-set specification: comma-separated terms, each
// a single seed ("7") or an inclusive range ("1..32"). Terms may mix:
// "1..4,10,20..22". Duplicates are kept (the caller asked for them);
// order is preserved.
func ParseSeeds(spec string) ([]uint64, error) {
	var seeds []uint64
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			return nil, fmt.Errorf("sweep: empty term in seed spec %q", spec)
		}
		lo, hi, ok := strings.Cut(term, "..")
		if !ok {
			v, err := strconv.ParseUint(term, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad seed %q: %w", term, err)
			}
			seeds = append(seeds, v)
			continue
		}
		from, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad range start %q: %w", term, err)
		}
		to, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad range end %q: %w", term, err)
		}
		if to < from {
			return nil, fmt.Errorf("sweep: descending range %q", term)
		}
		if to-from >= MaxSeeds {
			return nil, fmt.Errorf("sweep: range %q spans more than %d seeds", term, MaxSeeds)
		}
		for v := from; v <= to; v++ {
			seeds = append(seeds, v)
		}
		if len(seeds) > MaxSeeds {
			return nil, fmt.Errorf("sweep: spec %q yields more than %d seeds", spec, MaxSeeds)
		}
	}
	if len(seeds) > MaxSeeds {
		return nil, fmt.Errorf("sweep: spec %q yields more than %d seeds", spec, MaxSeeds)
	}
	return seeds, nil
}
