// Package sweep is the parallel multi-seed sweep engine: it fans N
// independent (scenario, seed, config) profiling runs across a pool of
// worker goroutines and merges the per-seed analyses into cross-seed
// aggregate statistics.
//
// The paper's figures come from single runs on one machine. The simulator
// is deterministic, so one run is perfectly reproducible — but it is still
// one sample of the seed-dependent workload jitter. A sweep reruns the
// same study under many seeds and reports, per function, the mean, spread
// and extremes of net time, call counts and run-time share, plus a
// stability measure (coefficient of variation) saying whether a
// paper-reproduced percentage holds across seeds or was luck of one seed.
//
// Each worker boots its own Machine and Session, runs the workload, and
// analyzes locally through the streaming decode path (core.AnalyzeLean),
// so no worker ever holds the raw 16384-entry bank list and the merged
// report at the same time. Workers deposit compact per-seed samples; the
// merge folds them in seed order after the pool drains, so the aggregate
// is byte-identical no matter how many workers ran or in what order they
// finished.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/faults"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// Config describes one sweep.
type Config struct {
	// Scenario names a registered workload (workload.ScenarioNames).
	Scenario string
	// Seeds are the simulation seeds to run, one machine each. Order is
	// the merge order, so it fixes the aggregate bit-for-bit.
	Seeds []uint64
	// Parallel is the worker-pool size; 0 means GOMAXPROCS. The pool is
	// clamped to len(Seeds).
	Parallel int
	// Params tunes the workload (zero values select scenario defaults).
	Params workload.Params
	// Profile configures each worker's instrumentation and card.
	Profile core.ProfileConfig
	// Observe, when non-nil, receives every seed's full Analysis (events
	// and trace retained) as it completes. Calls are serialized but
	// arrive in completion order. When nil, workers use the lean
	// streaming analysis and keep only compact samples.
	Observe func(seed uint64, a *analyze.Analysis)
	// OnProgress, when non-nil, observes sweep scheduling: it fires once
	// when a worker picks a seed up and once when the seed finishes.
	// Calls are serialized; the callback must not block for long (every
	// worker contends on its lock). It feeds live observability
	// (export.StatusServer) for long sweeps.
	OnProgress func(Progress)
}

// Progress is one sweep scheduling event, delivered to Config.OnProgress.
type Progress struct {
	// Scenario and Seeds identify the sweep (Seeds is the total count).
	Scenario string
	Seeds    int
	// Started counts seeds handed to workers so far; Done counts seeds
	// finished. Started - Done seeds are in flight.
	Started int
	Done    int
	// Seed is the seed this event concerns; Finished distinguishes its
	// completion event from its pickup event.
	Seed     uint64
	Finished bool
	// Segments and Dropped accumulate finished seeds' drain-segment
	// counts and dropped-strobe losses (always zero for one-shot sweeps).
	Segments int
	Dropped  uint64
}

// FnSample is one function's footprint in a single seed's run.
type FnSample struct {
	Calls   int
	NetUS   float64 // net µs in the function alone
	AvgUS   float64 // mean net µs per call
	PctReal float64 // net as % of elapsed (the summary's % real column)
	PctNet  float64 // net as % of accumulated run time (% net)
}

// SeedResult is one seed's compact outcome.
type SeedResult struct {
	Seed     uint64
	Workload string // the scenario's one-line result description

	ElapsedUS float64
	RunUS     float64
	IdleUS    float64
	IdlePct   float64
	Records   int
	Switches  int

	// Segments and Dropped describe a continuous-capture run: how many
	// drain segments the seed produced and how many strobes were lost at
	// their boundaries (0/0 for one-shot runs).
	Segments int
	Dropped  uint64

	// Faults counts corruptions the seed's fault injector applied (0 for
	// pristine-hardware sweeps); Corrupt, Repaired and Resyncs carry the
	// hardened decoder's accounting of what it found and fixed.
	Faults   uint64
	Corrupt  int
	Repaired int
	Resyncs  int

	Fns map[string]FnSample
}

// Result is a finished sweep.
type Result struct {
	Scenario string
	// PerSeed holds one entry per configured seed, in Config.Seeds order.
	PerSeed []SeedResult
	// Agg is the cross-seed aggregate.
	Agg *Aggregate
	// Workers is the pool size actually used.
	Workers int
}

// Run executes the sweep. Any seed's failure aborts the sweep and is
// reported (the first one in seed order); completed workers are drained
// first.
func Run(cfg Config) (*Result, error) {
	sc, ok := workload.FindScenario(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown scenario %q (have %v)", cfg.Scenario, workload.ScenarioNames())
	}
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: no seeds")
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfg.Seeds) {
		workers = len(cfg.Seeds)
	}

	results := make([]SeedResult, len(cfg.Seeds))
	errs := make([]error, len(cfg.Seeds))
	jobs := make(chan int)
	var observeMu sync.Mutex
	prog := newProgressTracker(cfg)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				prog.started(cfg.Seeds[idx])
				results[idx], errs[idx] = runSeed(cfg, sc, cfg.Seeds[idx], &observeMu)
				prog.finished(cfg.Seeds[idx], results[idx], errs[idx])
			}
		}()
	}
	for idx := range cfg.Seeds {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Scenario: cfg.Scenario,
		PerSeed:  results,
		Agg:      aggregate(cfg.Scenario, results),
		Workers:  workers,
	}, nil
}

// progressTracker serializes OnProgress callbacks and accumulates the
// cross-seed counters they carry.
type progressTracker struct {
	cfg Config
	mu  sync.Mutex
	p   Progress
}

func newProgressTracker(cfg Config) *progressTracker {
	return &progressTracker{cfg: cfg, p: Progress{Scenario: cfg.Scenario, Seeds: len(cfg.Seeds)}}
}

func (t *progressTracker) started(seed uint64) {
	if t.cfg.OnProgress == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Started++
	t.p.Seed, t.p.Finished = seed, false
	t.cfg.OnProgress(t.p)
}

func (t *progressTracker) finished(seed uint64, r SeedResult, err error) {
	if t.cfg.OnProgress == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Done++
	t.p.Seed, t.p.Finished = seed, true
	if err == nil {
		t.p.Segments += r.Segments
		t.p.Dropped += r.Dropped
	}
	t.cfg.OnProgress(t.p)
}

// runSeed is one worker unit: boot, instrument, run, analyze, sample.
func runSeed(cfg Config, sc workload.Scenario, seed uint64, observeMu *sync.Mutex) (SeedResult, error) {
	m := core.NewMachine(kernel.Config{Seed: seed})
	if sc.Setup != nil {
		// Scenario setup registers kernel functions (SNMP agent, NFS
		// client); it must precede instrumentation or those functions
		// stay invisible to the profile.
		if err := sc.Setup(m, cfg.Params); err != nil {
			return SeedResult{}, fmt.Errorf("sweep: seed %d: setup: %w", seed, err)
		}
	}
	prof := cfg.Profile
	if prof.Faults != nil {
		// Per-seed fault profile: every seed gets a distinct but
		// reproducible fault stream derived from the sweep's base seed.
		fc := *prof.Faults
		fc.Seed = faults.DeriveSeed(fc.Seed, seed)
		prof.Faults = &fc
	}
	s, err := core.NewSession(m, prof)
	if err != nil {
		return SeedResult{}, fmt.Errorf("sweep: seed %d: %w", seed, err)
	}
	s.Arm()
	line, err := sc.Run(m, cfg.Params)
	if err != nil {
		return SeedResult{}, fmt.Errorf("sweep: seed %d: %w", seed, err)
	}
	s.Disarm()

	var a *analyze.Analysis
	if cfg.Observe != nil {
		a = s.Analyze()
		observeMu.Lock()
		cfg.Observe(seed, a)
		observeMu.Unlock()
	} else {
		a = s.AnalyzeLean()
	}
	r := sample(seed, line, a)
	if st, ok := s.FaultStats(); ok {
		r.Faults = st.Injected()
	}
	return r, nil
}

// sample condenses an Analysis into the compact per-seed record the merge
// consumes.
func sample(seed uint64, line string, a *analyze.Analysis) SeedResult {
	elapsed, run := a.Elapsed(), a.RunTime()
	r := SeedResult{
		Seed:      seed,
		Workload:  line,
		ElapsedUS: us(elapsed),
		RunUS:     us(run),
		IdleUS:    us(a.Idle),
		Records:   a.Stats.Records,
		Switches:  a.Switches,
		Segments:  len(a.Segments),
		Dropped:   a.Stats.Dropped,
		Corrupt:   a.Stats.CorruptRecords,
		Repaired:  a.Stats.RepairedTimestamps,
		Resyncs:   a.Stats.Resyncs,
		Fns:       make(map[string]FnSample, 160),
	}
	if elapsed > 0 {
		r.IdlePct = 100 * float64(a.Idle) / float64(elapsed)
	}
	for _, s := range a.Functions() {
		if s.CtxSwitch {
			continue // idle is accounted in the header, as in the summary
		}
		fs := FnSample{Calls: s.Calls, NetUS: us(s.Net), AvgUS: us(s.Avg())}
		if elapsed > 0 {
			fs.PctReal = 100 * float64(s.Net) / float64(elapsed)
		}
		if run > 0 {
			fs.PctNet = 100 * float64(s.Net) / float64(run)
		}
		r.Fns[s.Name] = fs
	}
	return r
}

func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }
