package pgo

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// DefaultWorkFn is the work-unit function the loop normalizes by when
// LoopConfig.WorkFn is empty: one tcp_input call per delivered segment
// on the receive path the paper studies.
const DefaultWorkFn = "tcp_input"

// Measurement is one profiled run, reduced to what the estimators and
// the verification metric need.
type Measurement struct {
	// A is the run's analysis.
	A *analyze.Analysis
	// Units counts WorkFn calls — the work completed.
	Units int64
	// PoolMallocs and PoolFrees are the mbuf free-list miss counters at
	// the end of the run (the mbuf-pooling estimator's input).
	PoolMallocs, PoolFrees uint64
}

// PerUnit is the verification metric: accumulated run (non-idle) time
// per work unit. It is rate-free — a change that also shifts throughput
// (more packets in the same wall time) does not corrupt the comparison.
func (m Measurement) PerUnit() sim.Time {
	return perUnit(int64(m.A.RunTime()), m.Units)
}

func perUnit(runNs, units int64) sim.Time {
	if units <= 0 {
		return 0
	}
	return sim.Time(runNs / units)
}

// LoopConfig describes one optimize-verify run.
type LoopConfig struct {
	// Scenario names the registered workload; empty means "netrecv".
	Scenario string
	// Seed boots every machine in the loop — baseline and each change
	// re-profile under the identical seed; 0 means 1.
	Seed uint64
	// Params tunes the workload (zero selects scenario defaults).
	Params workload.Params
	// Profile configures instrumentation and the card for every run.
	Profile core.ProfileConfig
	// WorkFn names the work-unit function; empty means DefaultWorkFn.
	WorkFn string
	// Changes lists the proposed changes to apply and verify; nil means
	// the full Registry.
	Changes []Change
}

func (cfg *LoopConfig) defaults() {
	if cfg.Scenario == "" {
		cfg.Scenario = "netrecv"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.WorkFn == "" {
		cfg.WorkFn = DefaultWorkFn
	}
	if cfg.Changes == nil {
		cfg.Changes = Registry()
	}
}

// ChangeOutcome is one change's verified result.
type ChangeOutcome struct {
	Name, Summary string
	TolerancePct  float64

	// Estimate is the what-if prediction from the baseline profile;
	// EstimateErr carries the estimator's failure when it could not run
	// (Estimate is zero then).
	Estimate    analyze.WhatIf
	EstimateErr string
	// Verified is the measured per-unit before/after.
	Verified analyze.WhatIf

	// SignAgrees reports whether the verified delta moves the same way
	// the estimate predicted; WithinTolerance whether it lands within
	// TolerancePct of the estimated delta; ErrPct is the relative error.
	SignAgrees      bool
	WithinTolerance bool
	ErrPct          float64

	// Movers is the before/after differential (analyze.Compare).
	Movers *analyze.Comparison
	// After classifies the re-profiled run's bottleneck.
	After Bottleneck
}

// Confirmed reports whether the outcome's measurement confirmed the
// estimate: the estimator ran, the deltas agree in sign, and the error
// is within the change's declared tolerance.
func (o *ChangeOutcome) Confirmed() bool {
	return o.EstimateErr == "" && o.SignAgrees && o.WithinTolerance
}

// LoopResult is one finished optimize-verify loop.
type LoopResult struct {
	Scenario string
	Seed     uint64
	WorkFn   string

	// BaselineRun, BaselineUnits and BaselinePerUnit summarize the
	// baseline profile; Baseline classifies its bottleneck.
	BaselineRun     sim.Time
	BaselineUnits   int64
	BaselinePerUnit sim.Time
	Baseline        Bottleneck

	Outcomes []ChangeOutcome
}

// Confirmed reports whether every outcome confirmed its estimate.
func (r *LoopResult) Confirmed() bool {
	for i := range r.Outcomes {
		if !r.Outcomes[i].Confirmed() {
			return false
		}
	}
	return len(r.Outcomes) > 0
}

// runProfiled boots a fresh machine under cfg's seed, applies the change
// (nil for the baseline), runs the scenario under profile, and reduces
// the run to a Measurement.
func runProfiled(cfg LoopConfig, sc workload.Scenario, apply func(*core.Machine)) (Measurement, error) {
	m := core.NewMachine(kernel.Config{Seed: cfg.Seed})
	if sc.Setup != nil {
		if err := sc.Setup(m, cfg.Params); err != nil {
			return Measurement{}, fmt.Errorf("pgo: seed %d: setup: %w", cfg.Seed, err)
		}
	}
	s, err := core.NewSession(m, cfg.Profile)
	if err != nil {
		return Measurement{}, fmt.Errorf("pgo: seed %d: %w", cfg.Seed, err)
	}
	if apply != nil {
		apply(m)
	}
	s.Arm()
	if _, err := sc.Run(m, cfg.Params); err != nil {
		return Measurement{}, fmt.Errorf("pgo: seed %d: %w", cfg.Seed, err)
	}
	s.Disarm()
	a := s.AnalyzeLean()
	meas := Measurement{
		A:           a,
		PoolMallocs: m.Net.Pool().PoolMallocs,
		PoolFrees:   m.Net.Pool().PoolFrees,
	}
	if fn, ok := a.Fn(cfg.WorkFn); ok {
		meas.Units = int64(fn.Calls)
	}
	if meas.Units == 0 {
		return Measurement{}, fmt.Errorf("pgo: seed %d: work function %q did no work under %s", cfg.Seed, cfg.WorkFn, cfg.Scenario)
	}
	return meas, nil
}

// RunLoop executes the optimize-verify loop: profile the baseline, then
// for each change apply it to a fresh machine, re-profile under the
// identical seed and scenario, and verify the measured per-unit delta
// against the what-if estimate.
func RunLoop(cfg LoopConfig) (*LoopResult, error) {
	cfg.defaults()
	sc, ok := workload.FindScenario(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("pgo: unknown scenario %q (have %v)", cfg.Scenario, workload.ScenarioNames())
	}
	base, err := runProfiled(cfg, sc, nil)
	if err != nil {
		return nil, err
	}
	res := &LoopResult{
		Scenario:        cfg.Scenario,
		Seed:            cfg.Seed,
		WorkFn:          cfg.WorkFn,
		BaselineRun:     base.A.RunTime(),
		BaselineUnits:   base.Units,
		BaselinePerUnit: base.PerUnit(),
		Baseline:        Classify(base.A),
	}
	for _, ch := range cfg.Changes {
		out := ChangeOutcome{Name: ch.Name, Summary: ch.Summary, TolerancePct: ch.TolerancePct}
		est, eerr := ch.Estimate(base)
		if eerr != nil {
			out.EstimateErr = eerr.Error()
		} else {
			out.Estimate = est
		}
		after, err := runProfiled(cfg, sc, ch.Apply)
		if err != nil {
			return nil, fmt.Errorf("pgo: change %s: %w", ch.Name, err)
		}
		out.Verified = analyze.WhatIf{
			Name:     ch.Name,
			Baseline: base.PerUnit(),
			Estimate: after.PerUnit(),
		}
		if eerr == nil {
			ed, vd := int64(out.Estimate.Delta()), int64(out.Verified.Delta())
			out.SignAgrees = sign(ed) == sign(vd)
			if ed == 0 {
				out.WithinTolerance = vd == 0
			} else {
				out.ErrPct = 100 * float64(abs(vd-ed)) / float64(abs(ed))
				out.WithinTolerance = out.ErrPct <= ch.TolerancePct
			}
		}
		out.Movers = analyze.Compare(base.A, after.A)
		out.After = Classify(after.A)
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

func sign(v int64) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Write renders the loop's differential report: baseline summary and
// bottleneck, then per change the estimate, the verified measurement,
// the agreement verdict, the re-profiled bottleneck, and the biggest
// movers (top rows of the before/after comparison).
func (r *LoopResult) Write(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "pgo optimize-verify: scenario %s, seed %d, work unit = %s call\n",
		r.Scenario, r.Seed, r.WorkFn)
	fmt.Fprintf(ew, "baseline: run %d us over %d units -> %d us/unit\n",
		us(r.BaselineRun), r.BaselineUnits, us(r.BaselinePerUnit))
	fmt.Fprintf(ew, "baseline bottleneck: %s\n", r.Baseline.String())
	for _, s := range r.Baseline.Suggestions {
		fmt.Fprintf(ew, "  suggestion: %s\n", s)
	}
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		fmt.Fprintf(ew, "\n== %s: %s ==\n", o.Name, o.Summary)
		if o.EstimateErr != "" {
			fmt.Fprintf(ew, "estimate: unavailable (%s)\n", o.EstimateErr)
		} else {
			fmt.Fprintf(ew, "estimate: %d us/unit -> %d us/unit (%+d us, %s)\n",
				us(o.Estimate.Baseline), us(o.Estimate.Estimate), us(o.Estimate.Delta()), verdict(o.Estimate))
		}
		fmt.Fprintf(ew, "verified: %d us/unit -> %d us/unit (%+d us, %s)\n",
			us(o.Verified.Baseline), us(o.Verified.Estimate), us(o.Verified.Delta()), verdict(o.Verified))
		if o.EstimateErr == "" {
			agree := "sign MISMATCH"
			if o.SignAgrees {
				agree = "sign ok"
			}
			hold := "OUTSIDE tolerance"
			if o.WithinTolerance {
				hold = "within tolerance"
			}
			mark := "UNCONFIRMED"
			if o.Confirmed() {
				mark = "VERIFIED"
			}
			fmt.Fprintf(ew, "agreement: %s, error %.1f%% of estimated delta (tolerance %.0f%%) -> %s\n",
				agree, o.ErrPct, o.TolerancePct, hold+", "+mark)
		}
		fmt.Fprintf(ew, "bottleneck after: %s\n", o.After.String())
		fmt.Fprintf(ew, "biggest movers:\n")
		if err := o.Movers.Write(ew, top); err != nil {
			return err
		}
	}
	return ew.err
}

// verdict names a WhatIf's direction the way the report prints it.
func verdict(w analyze.WhatIf) string {
	switch {
	case w.Improves():
		return "win"
	case w.Delta() == 0:
		return "flat"
	}
	return "LOSS"
}

// String renders the report with the top 8 movers per change.
func (r *LoopResult) String() string {
	var b strings.Builder
	_ = r.Write(&b, 8)
	return b.String()
}

// SweepOutcome folds one change's verification across a sweep's seeds.
type SweepOutcome struct {
	Name string
	// SignAgree and Within count the seeds whose verified delta agreed
	// in sign / landed within tolerance; Seeds is the total.
	Seeds, SignAgree, Within int
	// EstDeltaUS and VerDeltaUS accumulate the per-unit deltas (µs)
	// across seeds.
	EstDeltaUS, VerDeltaUS analyze.Acc
}

// LoopSweep is the sweep-level optimize-verify run: the full loop under
// every seed, folded in seed order.
type LoopSweep struct {
	Scenario string
	WorkFn   string
	Seeds    []uint64
	// PerSeed holds each seed's loop result, in Seeds order.
	PerSeed []*LoopResult
	// Outcomes is per change, registry order.
	Outcomes []SweepOutcome
}

// RunLoopSweep verifies every change across seeds: each seed runs the
// full optimize-verify loop on its own machine (parallel workers, 0 =
// serial), and the verdicts fold in seed order so the result is
// identical whatever the worker count.
func RunLoopSweep(cfg LoopConfig, seeds []uint64, parallel int) (*LoopSweep, error) {
	cfg.defaults()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("pgo: no seeds")
	}
	results := make([]*LoopResult, len(seeds))
	errs := make([]error, len(seeds))
	workers := parallel
	if workers <= 0 {
		workers = 1
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				c := cfg
				c.Seed = seeds[idx]
				results[idx], errs[idx] = RunLoop(c)
			}
		}()
	}
	for idx := range seeds {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sw := &LoopSweep{Scenario: cfg.Scenario, WorkFn: cfg.WorkFn, Seeds: seeds, PerSeed: results}
	for ci, ch := range cfg.Changes {
		so := SweepOutcome{Name: ch.Name, Seeds: len(seeds)}
		for _, r := range results {
			o := &r.Outcomes[ci]
			if o.SignAgrees {
				so.SignAgree++
			}
			if o.WithinTolerance {
				so.Within++
			}
			so.EstDeltaUS.Add(float64(us(o.Estimate.Delta())))
			so.VerDeltaUS.Add(float64(us(o.Verified.Delta())))
		}
		sw.Outcomes = append(sw.Outcomes, so)
	}
	return sw, nil
}

// Write renders the sweep-level verification table.
func (s *LoopSweep) Write(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "pgo optimize-verify sweep: scenario %s, %d seeds, work unit = %s call\n",
		s.Scenario, len(s.Seeds), s.WorkFn)
	fmt.Fprintf(ew, "%-18s %10s %10s %12s %12s\n",
		"change", "sign-agree", "within-tol", "est d us", "meas d us")
	for i := range s.Outcomes {
		o := &s.Outcomes[i]
		fmt.Fprintf(ew, "%-18s %7d/%-2d %7d/%-2d %12.1f %12.1f\n",
			o.Name, o.SignAgree, o.Seeds, o.Within, o.Seeds,
			o.EstDeltaUS.Mean, o.VerDeltaUS.Mean)
	}
	return ew.err
}

// String renders the sweep table.
func (s *LoopSweep) String() string {
	var b strings.Builder
	_ = s.Write(&b)
	return b.String()
}
