package pgo

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"kprof/internal/core"
	"kprof/internal/instrument"
	"kprof/internal/kernel"
	"kprof/internal/sweep"
)

// bruteForce enumerates every candidate subset and returns the best
// attainable attributed net time under the budget — the ground truth the
// optimizer must match on small instances.
func bruteForce(cands []Candidate, b Budget) int64 {
	trig := b.triggerNs()
	overCap := b.OverheadNs
	if overCap <= 0 {
		overCap = int64(1) << 62
	}
	maxPick := len(cands)
	if b.Tags > 0 && b.Tags/2 < maxPick {
		maxPick = b.Tags / 2
	}
	var best int64
	for mask := 0; mask < 1<<len(cands); mask++ {
		var net, over int64
		count := 0
		for i, c := range cands {
			if mask&(1<<i) == 0 {
				continue
			}
			net += c.NetNs
			over += c.Overhead(trig)
			count++
		}
		if count <= maxPick && over <= overCap && net > best {
			best = net
		}
	}
	return best
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	// Every instance at or below 12 functions must be solved exactly.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(13)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{
				Name:  fmt.Sprintf("fn%02d", i),
				NetNs: rng.Int63n(1_000_000),
				Calls: rng.Int63n(500),
			}
			if rng.Intn(8) == 0 {
				cands[i].NetNs = 0 // zero-attribution functions exist
			}
		}
		b := Budget{}
		if rng.Intn(3) > 0 {
			b.Tags = 2 * rng.Intn(n+2)
		}
		if rng.Intn(3) > 0 {
			b.OverheadNs = rng.Int63n(200_000_000)
		}
		if rng.Intn(4) == 0 {
			b.TriggerNs = int64(100 + rng.Intn(400))
		}
		want := bruteForce(cands, b)
		plan := Optimize(cands, b)
		if plan.NetNs != want {
			t.Fatalf("trial %d: Optimize = %d, brute force = %d\ncands: %+v\nbudget: %+v",
				trial, plan.NetNs, want, cands, b)
		}
		// The plan must satisfy its own accounting and the budget.
		var net, over int64
		for _, c := range plan.Picks {
			net += c.NetNs
			over += c.Overhead(b.triggerNs())
		}
		if net != plan.NetNs || over != plan.OverheadNs {
			t.Fatalf("trial %d: plan books don't add up: %+v", trial, plan)
		}
		if b.Tags > 0 && plan.TagsUsed > b.Tags {
			t.Fatalf("trial %d: plan spends %d tags over budget %d", trial, plan.TagsUsed, b.Tags)
		}
		if b.OverheadNs > 0 && plan.OverheadNs > b.OverheadNs {
			t.Fatalf("trial %d: plan overhead %d over budget %d", trial, plan.OverheadNs, b.OverheadNs)
		}
	}
}

func TestOptimizeDeterministicUnderInputOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cands := make([]Candidate, 40)
	for i := range cands {
		cands[i] = Candidate{
			Name:   fmt.Sprintf("fn%02d", i),
			Module: fmt.Sprintf("mod%d", i%5),
			NetNs:  rng.Int63n(500_000),
			Calls:  rng.Int63n(300),
		}
	}
	b := Budget{Tags: 24, OverheadNs: 30_000_000}
	ref := Optimize(cands, b)
	for shuffle := 0; shuffle < 5; shuffle++ {
		shuffled := append([]Candidate(nil), cands...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := Optimize(shuffled, b)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("shuffle %d: plan differs:\nref: %+v\ngot: %+v", shuffle, ref, got)
		}
	}
	if len(ref.Picks) == 0 || ref.TagsUsed > 24 {
		t.Fatalf("plan = %+v", ref)
	}
}

func TestOptimizeEdgeCases(t *testing.T) {
	if p := Optimize(nil, Budget{}); len(p.Picks) != 0 || p.NetNs != 0 {
		t.Fatalf("empty input plan = %+v", p)
	}
	cands := []Candidate{
		{Name: "hot", NetNs: 100, Calls: 10},
		{Name: "cold", NetNs: 0, Calls: 10},
	}
	// Zero tag budget picks nothing.
	if p := Optimize(cands, Budget{Tags: 1}); len(p.Picks) != 0 {
		t.Fatalf("1-tag plan = %+v", p)
	}
	// Unlimited budget picks everything with attribution, never the
	// zero-net function.
	p := Optimize(cands, Budget{})
	if len(p.Picks) != 1 || p.Picks[0].Name != "hot" {
		t.Fatalf("unlimited plan = %+v", p)
	}
	// A candidate whose overhead alone busts the budget is not picked.
	p = Optimize(cands, Budget{OverheadNs: 100})
	if len(p.Picks) != 0 {
		t.Fatalf("tiny-overhead plan = %+v", p)
	}
	// Zero-overhead candidates are free under any overhead budget.
	free := []Candidate{{Name: "freebie", NetNs: 50, Calls: 0}}
	if p := Optimize(free, Budget{OverheadNs: 1}); len(p.Picks) != 1 {
		t.Fatalf("free plan = %+v", p)
	}
}

func TestPlanDrivesInstrumentation(t *testing.T) {
	// A plan from a real profile must convert into instrument.Options
	// that instrument exactly the chosen functions on a fresh kernel.
	base := profileNetrecv(t, 1)
	m := core.NewMachine(kernel.Config{Seed: 1})
	cands := CandidatesFromAnalysis(base.A, m.ModuleOf())
	if len(cands) < 10 {
		t.Fatalf("only %d candidates from profile", len(cands))
	}
	for _, c := range cands {
		if c.Name == "in_cksum" && c.Module != "in_cksum" {
			t.Fatalf("module labels missing: %+v", c)
		}
	}
	plan := Optimize(cands, Budget{Tags: 16})
	if len(plan.Picks) != 8 {
		t.Fatalf("16-tag plan picked %d functions", len(plan.Picks))
	}
	fresh := core.NewMachine(kernel.Config{Seed: 2})
	res, err := instrument.Instrument(fresh.K, plan.Options())
	if err != nil {
		t.Fatal(err)
	}
	if res.Functions() != len(plan.Picks) {
		t.Fatalf("instrumented %d functions, plan has %d", res.Functions(), len(plan.Picks))
	}
	got := res.InstrumentedNames()
	want := plan.Functions()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("instrumented %v, want %v", got, want)
	}
	out := &strings.Builder{}
	if err := plan.Write(out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "instrumentation plan: 8 functions (16 tags)") {
		t.Fatalf("plan render:\n%s", out.String())
	}
}

func TestCandidatesFromAggregate(t *testing.T) {
	var fn sweep.FnAggregate
	fn.Name = "tcp_input"
	fn.NetUS.Add(1000)
	fn.NetUS.Add(3000)
	fn.Calls.Add(10)
	fn.Calls.Add(20)
	agg := &sweep.Aggregate{Fns: []*sweep.FnAggregate{&fn}}
	cands := CandidatesFromAggregate(agg)
	if len(cands) != 1 || cands[0].NetNs != 2_000_000 || cands[0].Calls != 15 {
		t.Fatalf("cands = %+v", cands)
	}
}
