package pgo

import (
	"strings"
	"testing"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// profileNetrecv captures a baseline netrecv measurement the way the loop
// does, for tests that feed the estimators and the optimizer directly.
func profileNetrecv(t *testing.T, seed uint64) Measurement {
	t.Helper()
	cfg := LoopConfig{Seed: seed, Params: workload.Params{Duration: 120 * sim.Millisecond}}
	cfg.defaults()
	sc, ok := workload.FindScenario(cfg.Scenario)
	if !ok {
		t.Fatal("netrecv scenario missing")
	}
	m, err := runProfiled(cfg, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// profileIdle captures a run with no workload at all: the machine just
// ticks its clock, so the profile has no netstack functions and the
// classifier must call it latency-bound.
func profileIdle(t *testing.T) Measurement {
	t.Helper()
	m := core.NewMachine(kernel.Config{Seed: 3})
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	workload.RunFor(m, 50*sim.Millisecond)
	s.Disarm()
	return Measurement{A: s.AnalyzeLean(), Units: 1}
}

func TestRunLoopVerifiesRegistry(t *testing.T) {
	r, err := RunLoop(LoopConfig{
		Seed:   1,
		Params: workload.Params{Duration: 150 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "netrecv" || r.WorkFn != DefaultWorkFn || r.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", r)
	}
	if r.BaselineUnits == 0 || r.BaselinePerUnit == 0 {
		t.Fatalf("empty baseline: %+v", r)
	}
	if len(r.Outcomes) != len(Registry()) {
		t.Fatalf("%d outcomes for %d registry changes", len(r.Outcomes), len(Registry()))
	}
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.EstimateErr != "" {
			t.Errorf("%s: estimator failed: %s", o.Name, o.EstimateErr)
			continue
		}
		if !o.SignAgrees {
			t.Errorf("%s: estimate delta %d us, verified delta %d us — sign mismatch",
				o.Name, o.Estimate.Delta().Micros(), o.Verified.Delta().Micros())
		}
		if !o.WithinTolerance {
			t.Errorf("%s: error %.1f%% outside tolerance %.0f%%", o.Name, o.ErrPct, o.TolerancePct)
		}
		if o.Movers == nil || len(o.Movers.Deltas) == 0 {
			t.Errorf("%s: no differential", o.Name)
		}
		if o.After.Type == "" {
			t.Errorf("%s: no bottleneck classification", o.Name)
		}
	}
	if !r.Confirmed() {
		t.Fatal("loop did not confirm every registry change")
	}
	// The headline change must be a verified win within its own tight
	// tolerance; the rejected design must be a verified loss.
	byName := map[string]*ChangeOutcome{}
	for i := range r.Outcomes {
		byName[r.Outcomes[i].Name] = &r.Outcomes[i]
	}
	ck := byName["recode-in-cksum"]
	if ck == nil || !ck.Confirmed() || !ck.Verified.Improves() || ck.ErrPct > 20 {
		t.Fatalf("recode-in-cksum outcome: %+v", ck)
	}
	lm := byName["link-mbufs"]
	if lm == nil || lm.Verified.Delta() <= 0 {
		t.Fatalf("link-mbufs must verify as a loss: %+v", lm)
	}
	out := r.String()
	for _, want := range []string{
		"pgo optimize-verify: scenario netrecv, seed 1",
		"baseline bottleneck:",
		"VERIFIED",
		"sign ok",
		"LOSS", // link-mbufs
		"biggest movers:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunLoopDeterministic(t *testing.T) {
	cfg := LoopConfig{Seed: 2, Params: workload.Params{Duration: 100 * sim.Millisecond}}
	a, err := RunLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("identical configs produced different reports")
	}
}

func TestRunLoopErrors(t *testing.T) {
	if _, err := RunLoop(LoopConfig{Scenario: "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	_, err := RunLoop(LoopConfig{
		WorkFn: "no_such_fn",
		Params: workload.Params{Duration: 20 * sim.Millisecond},
	})
	if err == nil || !strings.Contains(err.Error(), "did no work") {
		t.Fatalf("missing work function not reported: %v", err)
	}
}

func TestRunLoopSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := LoopConfig{Params: workload.Params{Duration: 80 * sim.Millisecond}}
	seeds := []uint64{1, 2, 3}
	serial, err := RunLoopSweep(cfg, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunLoopSweep(cfg, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Fatalf("worker count changed the sweep:\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
	if len(serial.PerSeed) != 3 || len(serial.Outcomes) != len(Registry()) {
		t.Fatalf("sweep shape: %+v", serial)
	}
	for _, o := range serial.Outcomes {
		if o.Name == "recode-in-cksum" && (o.SignAgree != 3 || o.Within != 3) {
			t.Fatalf("recode-in-cksum across seeds: %+v", o)
		}
	}
	if !strings.Contains(serial.String(), "3 seeds") {
		t.Fatalf("sweep render:\n%s", serial.String())
	}
	if _, err := RunLoopSweep(cfg, nil, 1); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestClassifyLatencyOnDiskBoundRun(t *testing.T) {
	// ffswrite spends most of its elapsed time waiting on the disk: the
	// classifier must call that latency, not compute or memory.
	sc, ok := workload.FindScenario("ffswrite")
	if !ok {
		t.Fatal("ffswrite scenario missing")
	}
	p := workload.Params{Duration: 50 * sim.Millisecond}
	m := core.NewMachine(kernel.Config{Seed: 3})
	if sc.Setup != nil {
		if err := sc.Setup(m, p); err != nil {
			t.Fatal(err)
		}
	}
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	if _, err := sc.Run(m, p); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	b := Classify(s.AnalyzeLean())
	if b.Type != "latency" {
		t.Fatalf("idle machine classified %s: %+v", b.Type, b)
	}
	if b.IdleShare < latencyIdleShare || b.Confidence != b.IdleShare {
		t.Fatalf("latency confidence: %+v", b)
	}
	if len(b.Suggestions) == 0 || !strings.Contains(b.Suggestions[0], "waiting") {
		t.Fatalf("latency suggestions: %+v", b.Suggestions)
	}
	if !strings.Contains(b.String(), "latency (confidence") {
		t.Fatalf("render: %s", b.String())
	}
}

func TestEstimatorsFailWithoutTheirFunctions(t *testing.T) {
	// An idle profile has no in_cksum, bcopy, or mbuf churn: every
	// registry estimator must refuse rather than predict from nothing.
	idle := profileIdle(t)
	for _, ch := range Registry() {
		if _, err := ch.Estimate(idle); err == nil {
			t.Errorf("%s: estimator ran on an idle profile", ch.Name)
		}
	}
}

func TestFindChanges(t *testing.T) {
	got, err := FindChanges([]string{"link-mbufs", "recode-in-cksum"})
	if err != nil {
		t.Fatal(err)
	}
	// Registry order is preserved regardless of request order.
	if len(got) != 2 || got[0].Name != "recode-in-cksum" || got[1].Name != "link-mbufs" {
		t.Fatalf("FindChanges = %v", []string{got[0].Name, got[1].Name})
	}
	if _, err := FindChanges([]string{"warp-drive"}); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("unknown change: %v", err)
	}
}
