package pgo

import (
	"fmt"

	"kprof/internal/analyze"
)

// Bottleneck is a roofline-style classification of a profiled run, the
// shape the ROCm profiler gives each kernel dispatch: a type, a
// confidence, and concrete suggestions. The classes map onto this
// machine's physics: "compute" means the CPU is burning cycles in
// arithmetic loops (the naive in_cksum), "memory" means it is moving
// bytes (bcopy and the copyin/copyout family), "latency" means it is
// idle waiting on devices, "balanced" means no single class dominates.
type Bottleneck struct {
	// Type is one of "compute", "memory", "latency", "balanced".
	Type string
	// Confidence is the deterministic strength of the call in [0, 1]:
	// the idle share for latency, the winning class's share of the
	// compute+memory total otherwise, 0.5 for balanced.
	Confidence float64

	// ComputeShare, MemoryShare and IdleShare are the underlying
	// fractions: arithmetic-loop net time and byte-moving net time as
	// shares of run time, and idle as a share of elapsed time.
	ComputeShare, MemoryShare, IdleShare float64

	// Suggestions name registry changes (and traps) relevant to the
	// classification.
	Suggestions []string
}

// The classifier's function classes and thresholds. Deterministic by
// construction: fixed sets, fixed cutoffs, no sampling.
var (
	// memoryFns move bytes: the copy/zero family.
	memoryFns = []string{"bcopy", "bcopyb", "bzero", "copyin", "copyout", "copyinstr"}
	// computeFns burn cycles in arithmetic loops.
	computeFns = []string{"in_cksum"}
)

const (
	// latencyIdleShare is the idle fraction above which the machine is
	// classified as waiting, not working.
	latencyIdleShare = 0.35
	// classMinShare is the run-time share a class needs before it can be
	// called the bottleneck at all.
	classMinShare = 0.20
	// classDominance is how much bigger the winning class must be than
	// the runner-up (×1.25) to avoid the "balanced" verdict.
	classDominance = 1.25
)

// Classify labels a profiled run with its bottleneck type.
func Classify(a *analyze.Analysis) Bottleneck {
	b := Bottleneck{}
	if e := a.Elapsed(); e > 0 {
		b.IdleShare = float64(a.Idle) / float64(e)
	}
	if run := a.RunTime(); run > 0 {
		b.ComputeShare = shareOf(a, computeFns) / float64(run)
		b.MemoryShare = shareOf(a, memoryFns) / float64(run)
	}
	switch {
	case b.IdleShare >= latencyIdleShare:
		b.Type = "latency"
		b.Confidence = b.IdleShare
	case b.ComputeShare >= classMinShare && b.ComputeShare >= classDominance*b.MemoryShare:
		b.Type = "compute"
		b.Confidence = b.ComputeShare / (b.ComputeShare + b.MemoryShare)
	case b.MemoryShare >= classMinShare && b.MemoryShare >= classDominance*b.ComputeShare:
		b.Type = "memory"
		b.Confidence = b.MemoryShare / (b.ComputeShare + b.MemoryShare)
	default:
		b.Type = "balanced"
		b.Confidence = 0.5
	}
	if b.Confidence > 1 {
		b.Confidence = 1
	}
	b.Suggestions = suggestions[b.Type]
	return b
}

// suggestions keys advice to the classification, naming registry changes
// where one applies.
var suggestions = map[string][]string{
	"compute": {
		"recode-in-cksum: the checksum loop dominates - recode it at copy speed",
	},
	"memory": {
		"cheaper-bcopy: data copies dominate - recode the copy loop with string moves",
		"avoid link-mbufs: moving the copies onto the ISA bus makes them slower, not fewer",
	},
	"latency": {
		"the CPU is waiting, not working: overlap device I/O before recoding anything",
	},
	"balanced": {
		"no single class dominates: re-profile with a budgeted plan to sharpen attribution",
	},
}

// shareOf sums the net time of the named functions present in a.
func shareOf(a *analyze.Analysis, names []string) float64 {
	var total float64
	for _, n := range names {
		if s, ok := a.Fn(n); ok {
			total += float64(s.Net)
		}
	}
	return total
}

// String renders the classification on one line.
func (b Bottleneck) String() string {
	return fmt.Sprintf("%s (confidence %.2f; compute %.1f%%, memory %.1f%%, idle %.1f%%)",
		b.Type, b.Confidence, 100*b.ComputeShare, 100*b.MemoryShare, 100*b.IdleShare)
}
