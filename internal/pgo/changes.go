package pgo

import (
	"fmt"

	"kprof/internal/analyze"
	"kprof/internal/bus"
	"kprof/internal/core"
	"kprof/internal/netstack"
)

// Change is one proposed kernel cost change the optimize-verify loop can
// apply to the simulated kernel and re-profile. Its estimator predicts
// the effect from the baseline profile alone — the paper's what-if
// arithmetic — and the loop then measures the truth under the same seed.
type Change struct {
	// Name is the registry key (-optimize selects by it).
	Name string
	// Summary is the one-line description reports carry.
	Summary string
	// TolerancePct declares how far (in percent of the estimated delta)
	// the verified delta may stray while still counting as agreeing.
	TolerancePct float64
	// Apply mutates the simulated kernel before the re-profile run.
	Apply func(m *core.Machine)
	// Estimate predicts the per-work-unit effect from the baseline
	// measurement; it fails when the profile lacks the functions the
	// arithmetic needs.
	Estimate func(base Measurement) (analyze.WhatIf, error)
}

// estimateFromSaved builds the per-unit what-if for a change expected to
// shift the run's accumulated time by deltaNs (negative = saved).
func estimateFromSaved(name string, base Measurement, deltaNs int64) analyze.WhatIf {
	run := int64(base.A.RunTime())
	return analyze.WhatIf{
		Name:     name,
		Baseline: base.PerUnit(),
		Estimate: perUnit(run+deltaNs, base.Units),
	}
}

// cksumByteNs reports the portion of the baseline's in_cksum net time
// spent in the per-byte loop (net minus per-call setup), which the
// estimators convert between per-byte rates.
func cksumByteNs(base Measurement) (int64, error) {
	s, ok := base.A.Fn("in_cksum")
	if !ok {
		return 0, fmt.Errorf("pgo: baseline profile has no in_cksum sample")
	}
	byteNs := int64(s.Net) - int64(s.Calls)*int64(netstack.CksumSetup)
	if byteNs < 0 {
		byteNs = 0
	}
	return byteNs, nil
}

// fnNet reports a function's net time in the baseline, zero when absent.
func fnNet(base Measurement, name string) int64 {
	if s, ok := base.A.Fn(name); ok {
		return int64(s.Net)
	}
	return 0
}

// Registry returns the proposed kernel changes, headline first: the
// paper's recommended in_cksum recode, the cheaper copy loop, deeper
// mbuf pooling, and — deliberately included — the rejected mbuf-linking
// design, so the loop demonstrates a verified LOSS as well as wins.
func Registry() []Change {
	return []Change{
		{
			Name:         "recode-in-cksum",
			Summary:      "recode in_cksum at copy speed (assembler-style)",
			TolerancePct: 20,
			Apply:        func(m *core.Machine) { m.Net.CksumMode = netstack.CksumOptimized },
			Estimate: func(base Measurement) (analyze.WhatIf, error) {
				byteNs, err := cksumByteNs(base)
				if err != nil {
					return analyze.WhatIf{}, err
				}
				newByteNs := byteNs * int64(netstack.CksumFastPerByte) / int64(netstack.CksumNaivePerByte)
				return estimateFromSaved("recode-in-cksum", base, newByteNs-byteNs), nil
			},
		},
		{
			Name:         "cheaper-bcopy",
			Summary:      "recode bcopy with string-move instructions (2x)",
			TolerancePct: 30,
			Apply:        func(m *core.Machine) { m.K.SetBcopyScale(1, 2) },
			Estimate: func(base Measurement) (analyze.WhatIf, error) {
				saved := fnNet(base, "bcopy") / 2
				if saved == 0 {
					return analyze.WhatIf{}, fmt.Errorf("pgo: baseline profile has no bcopy sample")
				}
				return estimateFromSaved("cheaper-bcopy", base, -saved), nil
			},
		},
		{
			Name:         "mbuf-pooling",
			Summary:      "deepen the mbuf free list (stop malloc/free churn)",
			TolerancePct: 75,
			Apply:        func(m *core.Machine) { m.Net.Pool().SetFreeListDepth(64) },
			Estimate: func(base Measurement) (analyze.WhatIf, error) {
				var saved int64
				if s, ok := base.A.Fn("malloc"); ok {
					saved += int64(base.PoolMallocs) * int64(s.Avg())
				}
				if s, ok := base.A.Fn("free"); ok {
					saved += int64(base.PoolFrees) * int64(s.Avg())
				}
				if saved == 0 {
					return analyze.WhatIf{}, fmt.Errorf("pgo: baseline shows no mbuf free-list misses to save")
				}
				return estimateFromSaved("mbuf-pooling", base, -saved), nil
			},
		},
		{
			// The estimate here is the paper's coarse two-penalty
			// arithmetic; it overstates the damage (it cannot see the
			// chaining work the linked path also saves), so the declared
			// tolerance is wide. The sign — "would actually decrease the
			// performance" — is the point being verified.
			Name:         "link-mbufs",
			Summary:      "link controller bufs into mbufs (the rejected design)",
			TolerancePct: 80,
			Apply:        func(m *core.Machine) { m.Net.ChecksumInController = true },
			Estimate: func(base Measurement) (analyze.WhatIf, error) {
				byteNs, err := cksumByteNs(base)
				if err != nil {
					return analyze.WhatIf{}, err
				}
				// The driver copy disappears, but the checksum and the
				// copyout now read controller memory at the bus penalty —
				// the paper's "would actually decrease the performance".
				bytes := byteNs / int64(netstack.CksumNaivePerByte)
				penalty := int64(bus.NsPerByte(bus.ISA8) - bus.NsPerByte(bus.MainMemory))
				delta := 2*bytes*penalty - fnNet(base, "bcopy")
				return estimateFromSaved("link-mbufs", base, delta), nil
			},
		},
	}
}

// FindChanges resolves registry changes by name, preserving registry
// order; unknown names are an error listing what exists.
func FindChanges(names []string) ([]Change, error) {
	reg := Registry()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Change
	for _, c := range reg {
		if want[c.Name] {
			out = append(out, c)
			delete(want, c.Name)
		}
	}
	if len(want) > 0 {
		have := make([]string, len(reg))
		for i, c := range reg {
			have[i] = c.Name
		}
		for n := range want {
			return nil, fmt.Errorf("pgo: unknown change %q (have %v)", n, have)
		}
	}
	return out, nil
}
