// Package pgo closes the paper's loop: it feeds a captured profile back
// into the next measurement and into the kernel itself.
//
// The paper's closing argument is that "accurate before and after
// measurements may be made to test the success of such changes". Two
// pieces make that automatic here:
//
//   - the instrumentation-budget optimizer (Optimize): given a prior
//     profile and a tag or trigger-overhead budget, choose which
//     functions to instrument so the next run attributes the most net
//     time per nanosecond of trigger overhead — the
//     Metz/Lencevicius-style "spend the instrumentation where it buys
//     attributed time" problem, solved exactly;
//   - the optimize-verify loop (RunLoop): a registry of proposed kernel
//     cost changes that the loop applies to the simulated kernel,
//     re-profiles under the same seed and scenario, and verifies against
//     the what-if estimate, emitting a differential report with a
//     roofline-style bottleneck classification.
package pgo

import (
	"fmt"
	"io"
	"sort"

	"kprof/internal/analyze"
	"kprof/internal/instrument"
	"kprof/internal/sim"
	"kprof/internal/sweep"
)

// DefaultTriggerNs is the cost of one EPROM-window trigger load on the
// prototype: ≈200 ns, two per instrumented call (entry + exit).
const DefaultTriggerNs = 200

// Candidate is one function the optimizer may choose to instrument, with
// its footprint in the prior profile.
type Candidate struct {
	Name   string
	Module string // object module; empty when unknown
	NetNs  int64  // attributed net time in the prior profile, ns
	Calls  int64  // call count in the prior profile
}

// Overhead is the trigger overhead instrumenting this function adds to a
// run shaped like the prior profile: two triggers per call.
func (c Candidate) Overhead(triggerNs int64) int64 { return 2 * c.Calls * triggerNs }

// Budget bounds an instrumentation plan. A zero field means that
// dimension is unconstrained.
type Budget struct {
	// Tags bounds the name/tag file space the plan may spend; every
	// instrumented function costs an entry/exit pair (2 tags). Use
	// tagfile.File.PairsRemaining to budget against a partly-spent file.
	Tags int
	// OverheadNs bounds the total trigger overhead the plan may add to a
	// run shaped like the prior profile.
	OverheadNs int64
	// TriggerNs is the per-trigger cost; 0 means DefaultTriggerNs.
	TriggerNs int64
}

func (b Budget) triggerNs() int64 {
	if b.TriggerNs > 0 {
		return b.TriggerNs
	}
	return DefaultTriggerNs
}

// Plan is a concrete instrumentation choice.
type Plan struct {
	// Picks are the chosen functions in canonical order: attributed net
	// time per overhead ns descending, ties by net descending then name.
	Picks []Candidate
	// NetNs is the prior-profile net time the plan attributes.
	NetNs int64
	// OverheadNs is the trigger overhead the plan spends.
	OverheadNs int64
	// TagsUsed counts the tag pairs × 2 the plan consumes.
	TagsUsed int
	// Considered counts the candidates the optimizer weighed (those with
	// positive attributed time that fit the overhead budget alone).
	Considered int
}

// Functions lists the chosen function names sorted alphabetically — the
// form instrument.Options consumes.
func (p *Plan) Functions() []string {
	names := make([]string, len(p.Picks))
	for i, c := range p.Picks {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// Options converts the plan into instrumentation options for the next
// session: per-function selection, whole-kernel module scope.
func (p *Plan) Options() instrument.Options {
	return instrument.Options{Functions: p.Functions()}
}

// Write renders the plan, picks in canonical order.
func (p *Plan) Write(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "instrumentation plan: %d functions (%d tags), %d us attributed, %d us trigger overhead\n",
		len(p.Picks), p.TagsUsed, p.NetNs/1000, p.OverheadNs/1000)
	fmt.Fprintf(ew, "%-20s %-14s %10s %8s %8s\n", "function", "module", "net us", "calls", "ovh us")
	for _, c := range p.Picks {
		mod := c.Module
		if mod == "" {
			mod = "-"
		}
		fmt.Fprintf(ew, "%-20s %-14s %10d %8d %8d\n",
			c.Name, mod, c.NetNs/1000, c.Calls, c.Overhead(DefaultTriggerNs)/1000)
	}
	return ew.err
}

// CandidatesFromAnalysis extracts optimizer candidates from a prior
// profile. moduleOf (from core.Machine.ModuleOf) labels candidates with
// their object module; nil leaves modules empty. Context-switch
// pseudo-functions are excluded — their tags are structural, not
// discretionary.
func CandidatesFromAnalysis(a *analyze.Analysis, moduleOf map[string]string) []Candidate {
	var out []Candidate
	for _, s := range a.Functions() {
		if s.CtxSwitch {
			continue
		}
		out = append(out, Candidate{
			Name:   s.Name,
			Module: moduleOf[s.Name],
			NetNs:  int64(s.Net),
			Calls:  int64(s.Calls),
		})
	}
	return out
}

// CandidatesFromAggregate extracts candidates from a cross-seed sweep
// aggregate, using each function's mean net time and mean call count.
func CandidatesFromAggregate(agg *sweep.Aggregate) []Candidate {
	var out []Candidate
	for _, f := range agg.Fns {
		out = append(out, Candidate{
			Name:  f.Name,
			NetNs: int64(f.NetUS.Mean * 1000),
			Calls: int64(f.Calls.Mean + 0.5),
		})
	}
	return out
}

// Optimize chooses the candidate set that maximizes attributed net time
// subject to the budget, exactly: a branch-and-bound search over the
// candidates in density order whose bound is the tighter of the
// fractional-knapsack relaxation (overhead budget alone) and the
// top-k relaxation (tag budget alone), so no pruned branch can beat the
// incumbent. Candidates with no attributed time are never picked. The
// result is deterministic for a given candidate multiset regardless of
// input order; among equally-attributed optima the densest-first search
// order decides.
func Optimize(cands []Candidate, b Budget) *Plan {
	triggerNs := b.triggerNs()
	overCap := b.OverheadNs
	if overCap <= 0 {
		overCap = int64(1) << 62
	}
	maxPick := len(cands)
	if b.Tags > 0 && b.Tags/2 < maxPick {
		maxPick = b.Tags / 2
	}

	// Canonical order: density (net per overhead ns) descending via
	// cross-multiplication, zero-overhead candidates first; ties by net
	// descending, then name ascending — a total order, so the search (and
	// the plan) is input-order independent.
	cs := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.NetNs <= 0 || c.Overhead(triggerNs) > overCap {
			continue
		}
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool {
		oi, oj := cs[i].Overhead(triggerNs), cs[j].Overhead(triggerNs)
		// density_i > density_j  ⇔  net_i × ovh_j > net_j × ovh_i
		di, dj := cs[i].NetNs*oj, cs[j].NetNs*oi
		if di != dj {
			return di > dj
		}
		if cs[i].NetNs != cs[j].NetNs {
			return cs[i].NetNs > cs[j].NetNs
		}
		return cs[i].Name < cs[j].Name
	})

	plan := &Plan{Considered: len(cs)}
	if maxPick <= 0 || len(cs) == 0 {
		return plan
	}

	over := make([]int64, len(cs))
	for i, c := range cs {
		over[i] = c.Overhead(triggerNs)
	}
	// topNet[i] holds cs[i:]'s net values sorted descending, cumulated:
	// topNet[i][k] is the best possible net from any k+1 picks out of the
	// suffix, ignoring overhead — the tag-budget relaxation.
	topNet := make([][]int64, len(cs)+1)
	topNet[len(cs)] = nil
	suffix := []int64{}
	for i := len(cs) - 1; i >= 0; i-- {
		suffix = append(suffix, cs[i].NetNs)
		sorted := append([]int64(nil), suffix...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
		for k := 1; k < len(sorted); k++ {
			sorted[k] += sorted[k-1]
		}
		topNet[i] = sorted
	}

	bound := func(i, picked int, over64 int64) int64 {
		pl := maxPick - picked
		if pl <= 0 || i >= len(cs) {
			return 0
		}
		// Tag-budget relaxation: the pl biggest nets in the suffix.
		k := pl
		if k > len(topNet[i]) {
			k = len(topNet[i])
		}
		card := topNet[i][k-1]
		// Overhead relaxation: fractional knapsack in density order.
		var frac int64
		rc := overCap - over64
		for j := i; j < len(cs); j++ {
			if over[j] <= rc {
				frac += cs[j].NetNs
				rc -= over[j]
				continue
			}
			if over[j] > 0 && rc > 0 {
				frac += cs[j].NetNs * rc / over[j]
			}
			break
		}
		if frac < card {
			return frac
		}
		return card
	}

	var bestNet, bestOver int64 = 0, 0
	var bestPicks []int
	cur := make([]int, 0, maxPick)
	var dfs func(i, picked int, net, used int64)
	dfs = func(i, picked int, net, used int64) {
		if net > bestNet {
			bestNet, bestOver = net, used
			bestPicks = append(bestPicks[:0], cur...)
		}
		if i >= len(cs) || picked >= maxPick {
			return
		}
		if net+bound(i, picked, used) <= bestNet {
			return
		}
		if used+over[i] <= overCap {
			cur = append(cur, i)
			dfs(i+1, picked+1, net+cs[i].NetNs, used+over[i])
			cur = cur[:len(cur)-1]
		}
		dfs(i+1, picked, net, used)
	}
	dfs(0, 0, 0, 0)

	plan.NetNs, plan.OverheadNs = bestNet, bestOver
	plan.TagsUsed = 2 * len(bestPicks)
	plan.Picks = make([]Candidate, len(bestPicks))
	for i, idx := range bestPicks {
		plan.Picks[i] = cs[idx]
	}
	return plan
}

// errWriter folds the first write error, the report-writer idiom shared
// with internal/analyze.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return len(p), nil
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, nil
}

// us renders a sim.Time in microseconds for reports.
func us(t sim.Time) int64 { return t.Micros() }
