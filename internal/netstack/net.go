// Package netstack models the 386BSD networking subsystem the paper
// profiles to saturation: the WD8003E 8-bit ISA Ethernet driver
// (weintr/werint/weread/weget/westart), mbuf chains, the IP input path with
// its infamously slow in_cksum, a TCP input/output path sufficient for the
// paper's receive-and-discard workload, UDP (with the checksum-off
// configuration the NFS study depends on), and the socket layer
// (soreceive/sosend, sbappend/sbwait/sowakeup).
//
// Wire formats are real: packets are genuine IPv4/TCP/UDP bytes with
// genuine RFC 1071 checksums, parsed and verified by the code under
// simulation. Virtual time is charged alongside through the calibrated cost
// model in costs.go.
package netstack

import (
	"fmt"

	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

// Host addresses used by the simulated hosts.
const (
	PCAddr    uint32 = 0xC0A80001 // the 386BSD PC under test
	SparcAddr uint32 = 0xC0A80002 // the Sparcstation 2 traffic source
)

// CksumMode selects the in_cksum implementation, the paper's headline
// optimisation opportunity.
type CksumMode int

const (
	// CksumNaive is the shipped C implementation: ≈0.72 µs/byte, nearly
	// as slow as copying the data across the ISA bus.
	CksumNaive CksumMode = iota
	// CksumOptimized is the assembler-style recode the paper recommends:
	// close to memory-copy speed.
	CksumOptimized
)

// Net is the network subsystem attached to a kernel.
type Net struct {
	k     *kernel.Kernel
	pool  *mem.MbufPool
	alloc *mem.Allocator

	fnIPIntr    *kernel.Fn
	fnIPOutput  *kernel.Fn
	fnInCksum   *kernel.Fn
	fnPcbLookup *kernel.Fn
	fnTCPInput  *kernel.Fn
	fnTCPOutput *kernel.Fn
	fnUDPInput  *kernel.Fn
	fnUDPOutput *kernel.Fn
	fnSoCreate  *kernel.Fn
	fnSoReceive *kernel.Fn
	fnSoSend    *kernel.Fn
	fnSbAppend  *kernel.Fn
	fnSbWait    *kernel.Fn
	fnSoWakeup  *kernel.Fn

	we *WE
	// outDev is the interface ip_output routes through (the WD8003E by
	// default; the embedded machine routes through its LE).
	outDev NetDevice

	// Mode switches for the paper's what-if analyses.
	CksumMode CksumMode
	// ChecksumInController leaves the packet in card RAM during
	// checksumming (the paper's rejected mbuf-linking design).
	ChecksumInController bool
	// UDPChecksum enables UDP checksums (off by default, as with NFS).
	UDPChecksum bool
	// AckEveryPacket makes TCP acknowledge each segment rather than
	// using the period's delayed-ack behaviour. The saturation study
	// effectively acked continuously; keep it on for that workload.
	AckEveryPacket bool

	// ipq is the IP input queue between the driver and ipintr, drained
	// from ipqHead so steady-state traffic reuses the backing array
	// instead of growing a freshly-sliced tail forever.
	ipq     []inPacket
	ipqHead int

	// frames recycles the byte buffers packets travel in (see frames.go).
	frames framePool

	pcbs map[pcbKey]*Socket

	// Statistics.
	IPDelivered   uint64
	IPBadChecksum uint64
	IPNoProto     uint64
	NoSocketDrops uint64
	IPQDrops      uint64
}

// IFQMaxLen bounds the IP input queue, as the real ipintrq was bounded by
// IFQ_MAXLEN: when the protocol layer cannot keep up, packets drop at the
// queue rather than growing it without limit.
const IFQMaxLen = 50

type pcbKey struct {
	proto uint8
	port  uint16
}

// inPacket is a received packet queued between the driver and ipintr.
type inPacket struct {
	chain *mem.Mbuf
	data  []byte // the raw IP packet bytes
}

// Attach builds the network subsystem, registering every routine and the
// Ethernet device.
func Attach(k *kernel.Kernel, alloc *mem.Allocator) *Net {
	n := &Net{
		k:              k,
		alloc:          alloc,
		pool:           mem.NewMbufPool(alloc),
		fnIPIntr:       k.RegisterFn("ip_input", "ipintr"),
		fnIPOutput:     k.RegisterFn("ip_output", "ip_output"),
		fnInCksum:      k.RegisterFn("in_cksum", "in_cksum"),
		fnPcbLookup:    k.RegisterFn("in_pcb", "in_pcblookup"),
		fnTCPInput:     k.RegisterFn("tcp_input", "tcp_input"),
		fnTCPOutput:    k.RegisterFn("tcp_output", "tcp_output"),
		fnUDPInput:     k.RegisterFn("udp_usrreq", "udp_input"),
		fnUDPOutput:    k.RegisterFn("udp_usrreq", "udp_output"),
		pcbs:           make(map[pcbKey]*Socket),
		AckEveryPacket: true,
	}
	n.registerSocketFns()
	n.we = newWE(n)
	n.outDev = n.we
	// Received frames ride inside mbuf chains; freeing the chain returns
	// the buffer to the frame pool.
	n.pool.SetFrameRecycler(n.frames.Put)
	k.RegisterSoft(kernel.SoftNetIP, "ipintr", n.ipintr)
	return n
}

// NetDevice is the driver interface the IP output layer and the traffic
// generators use: deliver a frame from the wire, transmit one to it, watch
// transmissions.
type NetDevice interface {
	HostDeliver(ipPacket []byte)
	Transmit(frame []byte)
	AddWireTap(f func(frame []byte))
}

// Device returns the default Ethernet card model (the WD8003E).
func (n *Net) Device() *WE { return n.we }

// SetOutputDevice routes ip_output through d (the embedded machine's LE).
func (n *Net) SetOutputDevice(d NetDevice) { n.outDev = d }

// OutputDevice reports the interface ip_output routes through.
func (n *Net) OutputDevice() NetDevice { return n.outDev }

// Scheduler exposes the kernel's event scheduler for remote-host models.
func (n *Net) Scheduler() *sim.Scheduler { return n.k.Scheduler() }

// Pool returns the mbuf pool (shared with tests and the fs package's NFS
// client).
func (n *Net) Pool() *mem.MbufPool { return n.pool }

// Cksum charges the in_cksum cost for length bytes living in region and
// returns the real checksum of the data (which the callers use to verify).
func (n *Net) Cksum(data []byte, region bus.Region) uint16 {
	perByte := n.cksumPerByte(region)
	var sum uint16
	n.k.Call(n.fnInCksum, func() {
		n.k.Advance(cksumSetup + sim.Time(len(data))*perByte)
		sum = InternetChecksum(data)
	})
	return sum
}

// pseudoHdrLen is the TCP/UDP pseudo-header's width for cost accounting.
const pseudoHdrLen = 12

// CksumPseudo is Cksum over a pseudo-header followed by data, without ever
// materialising the concatenation: the charge covers the same
// pseudoHdrLen+len(data) bytes in_cksum touched, and the sum chains the
// pseudo-header words arithmetically (sumBytes/pseudoSum in cksum.go).
func (n *Net) CksumPseudo(src, dst uint32, proto uint8, data []byte, region bus.Region) uint16 {
	perByte := n.cksumPerByte(region)
	var sum uint16
	n.k.Call(n.fnInCksum, func() {
		n.k.Advance(cksumSetup + sim.Time(pseudoHdrLen+len(data))*perByte)
		sum = foldChecksum(sumBytes(data, pseudoSum(src, dst, proto, len(data))))
	})
	return sum
}

func (n *Net) cksumPerByte(region bus.Region) sim.Time {
	perByte := cksumNaivePerB
	if n.CksumMode == CksumOptimized {
		perByte = cksumFastPerB
	}
	if region != bus.MainMemory {
		// Checksumming in device memory pays the bus penalty on top of
		// the arithmetic.
		perByte += bus.NsPerByte(region) - bus.NsPerByte(bus.MainMemory)
	}
	return perByte
}

// cksumRegion is where packet data lives when checksummed: main memory
// normally, card RAM in the what-if configuration.
func (n *Net) cksumRegion() bus.Region {
	if n.ChecksumInController {
		return bus.ISA8
	}
	return bus.MainMemory
}

// enqueueIP hands a received packet from the driver to the IP input queue
// and schedules the network software interrupt (schednetisr(NETISR_IP)).
func (n *Net) enqueueIP(chain *mem.Mbuf, data []byte) {
	s := n.k.SplNet()
	if len(n.ipq)-n.ipqHead >= IFQMaxLen {
		n.IPQDrops++
		n.k.SplX(s)
		n.freeChain(chain)
		return
	}
	n.ipq = append(n.ipq, inPacket{chain: chain, data: data})
	n.k.SplX(s)
	n.k.ScheduleSoft(kernel.SoftNetIP)
}

// ipintr is the network soft interrupt: drain the IP input queue, verify
// each header, and dispatch to the transport protocol.
func (n *Net) ipintr() {
	n.k.Call(n.fnIPIntr, func() {
		n.k.Advance(costIPIntrBody)
		for {
			s := n.k.SplNet()
			if n.ipqHead == len(n.ipq) {
				n.ipq = n.ipq[:0]
				n.ipqHead = 0
				n.k.SplX(s)
				return
			}
			pkt := n.ipq[n.ipqHead]
			n.ipq[n.ipqHead] = inPacket{}
			n.ipqHead++
			n.k.SplX(s)
			n.ipInput(pkt)
		}
	})
}

func (n *Net) ipInput(pkt inPacket) {
	data := pkt.data
	if n.Cksum(dataOrAll(data, IPHdrLen), n.cksumRegion()) != 0 {
		n.IPBadChecksum++
		n.pool.MFreeChain(pkt.chain)
		return
	}
	ih, err := ParseIPv4(data)
	if err != nil {
		n.IPBadChecksum++
		n.pool.MFreeChain(pkt.chain)
		return
	}
	payload := data[IPHdrLen:ih.TotalLen]
	switch ih.Proto {
	case ProtoTCP:
		n.tcpInput(&ih, payload, pkt.chain)
	case ProtoUDP:
		n.udpInput(&ih, payload, pkt.chain)
	default:
		n.IPNoProto++
		n.pool.MFreeChain(pkt.chain)
	}
	n.IPDelivered++
}

func dataOrAll(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}

// pcbLookup finds the socket bound to (proto, port).
func (n *Net) pcbLookup(proto uint8, port uint16) *Socket {
	var so *Socket
	n.k.Call(n.fnPcbLookup, func() {
		n.k.Advance(costPcbLookup)
		so = n.pcbs[pcbKey{proto, port}]
	})
	return so
}

// ipOutput wraps a transport payload in an IP header and hands the frame to
// the driver. The payload is copied into a pooled frame buffer.
func (n *Net) ipOutput(proto uint8, src, dst uint32, payload []byte) {
	frame := n.frames.Get(IPHdrLen + len(payload))
	copy(frame[IPHdrLen:], payload)
	n.ipOutputFrame(proto, src, dst, frame)
}

// ipOutputFrame is ipOutput for a frame whose transport bytes already sit
// after IPHdrLen of headroom — the in-place path transport outputs use. The
// IP header is written into the headroom; ownership of frame passes to the
// driver, which recycles it once the wire is done with it.
func (n *Net) ipOutputFrame(proto uint8, src, dst uint32, frame []byte) {
	n.k.Call(n.fnIPOutput, func() {
		n.k.Advance(costIPOutputBody)
		ih := IPv4Header{
			TotalLen: uint16(len(frame)),
			TTL:      64,
			Proto:    proto,
			Src:      src,
			Dst:      dst,
		}
		ih.MarshalInto(frame)
		// ip_output computes the header checksum: charge it. (MarshalInto
		// already embedded the real sum; the charge models the work.)
		n.Cksum(frame[:IPHdrLen], bus.MainMemory)
		n.outDev.Transmit(frame)
	})
}

func (n *Net) String() string {
	return fmt.Sprintf("netstack(delivered=%d, drops=%d)", n.IPDelivered, n.we.RxDrops)
}
