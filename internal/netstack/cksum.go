package netstack

import "encoding/binary"

// The internet checksum (RFC 1071), computed for real over the simulated
// packet bytes. The simulation separately charges virtual time for the
// computation: the paper discovered that 386BSD's in_cksum "has not been
// optimally coded (e.g., like other architectures where it is done in
// assembler)" — ≈843 µs for a 1 KiB packet, nearly as slow as copying the
// data over the ISA bus — and estimates that recoding it would cut packet
// processing from ≈2000 µs to ≈1200 µs. Both cost models are provided; the
// ablation bench flips between them.

// InternetChecksum computes the RFC 1071 one's-complement checksum of data.
func InternetChecksum(data []byte) uint16 {
	return foldChecksum(sumBytes(data, 0))
}

// sumBytes accumulates data into a running one's-complement sum. The byte
// count must be even for every contribution except the last (one's-complement
// addition is associative over even-length prefixes), which is how the
// pseudo-header (always 12 bytes) chains with a segment without ever
// concatenating the two into a fresh buffer.
//
// The inner loop takes eight bytes per iteration: 16-bit one's-complement
// addition is congruent mod 0xffff, so wider partial sums accumulated in a
// 64-bit register fold back to the same uint32 partial the byte-pair loop
// produces (same residue, zero only when every contribution was zero —
// which is all foldChecksum depends on).
func sumBytes(data []byte, sum uint32) uint32 {
	n := len(data)
	acc := uint64(sum)
	i := 0
	for ; i+8 <= n; i += 8 {
		acc += uint64(binary.BigEndian.Uint32(data[i:])) +
			uint64(binary.BigEndian.Uint32(data[i+4:]))
	}
	for ; i+1 < n; i += 2 {
		acc += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if n%2 == 1 {
		acc += uint64(data[n-1]) << 8
	}
	for acc>>32 != 0 {
		acc = acc&0xffffffff + acc>>32
	}
	return uint32(acc)
}

// foldChecksum folds the carries and complements, finishing a sumBytes chain.
func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoSum is the TCP/UDP pseudo-header's contribution to the checksum,
// computed arithmetically — the 12 bytes (src, dst, zero, proto, length) are
// word-aligned, so their sum needs no byte buffer at all.
func pseudoSum(src, dst uint32, proto uint8, length int) uint32 {
	return (src >> 16) + (src & 0xffff) +
		(dst >> 16) + (dst & 0xffff) +
		uint32(proto) + uint32(uint16(length))
}

// checksumValid reports whether data containing an embedded checksum field
// sums to the all-ones complement (i.e. verifies).
func checksumValid(data []byte) bool {
	return InternetChecksum(data) == 0
}
