package netstack

// The internet checksum (RFC 1071), computed for real over the simulated
// packet bytes. The simulation separately charges virtual time for the
// computation: the paper discovered that 386BSD's in_cksum "has not been
// optimally coded (e.g., like other architectures where it is done in
// assembler)" — ≈843 µs for a 1 KiB packet, nearly as slow as copying the
// data over the ISA bus — and estimates that recoding it would cut packet
// processing from ≈2000 µs to ≈1200 µs. Both cost models are provided; the
// ablation bench flips between them.

// InternetChecksum computes the RFC 1071 one's-complement checksum of data.
func InternetChecksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// checksumValid reports whether data containing an embedded checksum field
// sums to the all-ones complement (i.e. verifies).
func checksumValid(data []byte) bool {
	return InternetChecksum(data) == 0
}
