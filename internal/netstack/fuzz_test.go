package netstack

import "testing"

// The wire-format parsers face bytes from the (simulated) network; none of
// them may panic on arbitrary input, and anything they accept must
// round-trip through the corresponding marshaller.

func FuzzParseIPv4(f *testing.F) {
	h := IPv4Header{TotalLen: 100, ID: 7, TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2}
	f.Add(h.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x45, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ParseIPv4(data)
		if err != nil {
			return
		}
		// Accepted headers re-marshal to the same checksummed bytes.
		again := got.Marshal()
		for i := range again {
			if again[i] != data[i] {
				t.Fatalf("byte %d: %#x != %#x", i, again[i], data[i])
			}
		}
	})
}

func FuzzParseTCP(f *testing.F) {
	h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagACK, Window: 100}
	f.Add(uint32(1), uint32(2), h.Marshal(1, 2, []byte("payload")))
	f.Add(uint32(0), uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, src, dst uint32, data []byte) {
		got, payload, err := ParseTCP(src, dst, data)
		if err != nil {
			return
		}
		again := got.Marshal(src, dst, payload)
		if len(again) != len(data) {
			t.Fatalf("length changed: %d != %d", len(again), len(data))
		}
		for i := range again {
			if again[i] != data[i] {
				t.Fatalf("byte %d differs", i)
			}
		}
	})
}

func FuzzParseUDP(f *testing.F) {
	h := UDPHeader{SrcPort: 997, DstPort: 2049}
	f.Add(uint32(1), uint32(2), h.Marshal(1, 2, []byte("rpc"), true))
	f.Add(uint32(1), uint32(2), h.Marshal(1, 2, []byte("rpc"), false))
	f.Fuzz(func(t *testing.T, src, dst uint32, data []byte) {
		_, payload, hadCksum, err := ParseUDP(src, dst, data)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatal("payload longer than datagram")
		}
		_ = hadCksum
	})
}

func FuzzInternetChecksum(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0xf2, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		sum := InternetChecksum(data)
		// Appending the complement on an even boundary verifies.
		padded := data
		if len(padded)%2 == 1 {
			padded = append(append([]byte{}, data...), 0)
			sum = InternetChecksum(padded)
		}
		withSum := append(append([]byte{}, padded...), byte(sum>>8), byte(sum))
		if !checksumValid(withSum) {
			t.Fatalf("checksum identity failed for %d bytes", len(data))
		}
	})
}
