package netstack

import (
	"testing"

	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

func newNet() (*kernel.Kernel, *Net) {
	k := kernel.New(kernel.Config{Seed: 1})
	alloc := mem.Attach(k)
	return k, Attach(k, alloc)
}

func TestCksumTimingNaive(t *testing.T) {
	k, n := newNet()
	data := make([]byte, 1024)
	start := k.Now()
	n.Cksum(data, bus.MainMemory)
	d := k.Now() - start
	// Paper: ≈843 µs to checksum a 1 KiB packet with the shipped code.
	// Our calibration lands slightly low to keep the Figure 3 ordering;
	// see EXPERIMENTS.md.
	if d < 600*sim.Microsecond || d > 900*sim.Microsecond {
		t.Fatalf("naive in_cksum(1KiB) = %v, want ≈700-850 µs", d)
	}
}

func TestCksumTimingOptimized(t *testing.T) {
	k, n := newNet()
	n.CksumMode = CksumOptimized
	data := make([]byte, 1024)
	start := k.Now()
	n.Cksum(data, bus.MainMemory)
	d := k.Now() - start
	// Recoded checksum runs near memory speed: tens of microseconds.
	if d > 80*sim.Microsecond {
		t.Fatalf("optimized in_cksum(1KiB) = %v, want <80 µs", d)
	}
}

func TestCksumInControllerMemoryCostsBusPenalty(t *testing.T) {
	k, n := newNet()
	data := make([]byte, 1024)
	start := k.Now()
	n.Cksum(data, bus.ISA8)
	isaCost := k.Now() - start
	start = k.Now()
	n.Cksum(data, bus.MainMemory)
	mainCost := k.Now() - start
	extra := isaCost - mainCost
	// Paper: checksumming in controller memory adds ≥980 µs per KiB-ish
	// packet. Our per-byte penalty (ISA − main) over 1024 bytes:
	if extra < 500*sim.Microsecond {
		t.Fatalf("ISA checksum penalty = %v, want substantial", extra)
	}
}

func TestCksumComputesRealChecksum(t *testing.T) {
	_, n := newNet()
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := n.Cksum(data, bus.MainMemory); got != 0x220d {
		t.Fatalf("Cksum = %#x", got)
	}
}

func TestSoCreateRejectsDuplicatePort(t *testing.T) {
	_, n := newNet()
	if _, err := n.SoCreate(ProtoTCP, 5001); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SoCreate(ProtoTCP, 5001); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	// Same port, different proto is fine.
	if _, err := n.SoCreate(ProtoUDP, 5001); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSegmentDeliveredToSocket(t *testing.T) {
	k, n := newNet()
	so, err := n.SoCreate(ProtoTCP, 5001)
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(n, 5001)
	sender.MSS = 512

	var got []byte
	k.Spawn("reader", func(p *kernel.Proc) {
		got = n.SoReceive(p, so, 4096)
	})
	k.Scheduler().After(sim.Millisecond, func() { sender.SendOne() })
	k.Run(100 * sim.Millisecond)

	if len(got) != 512 {
		t.Fatalf("received %d bytes, want 512", len(got))
	}
	segsIn, _, dups, _ := so.TCB()
	if segsIn != 1 || dups != 0 {
		t.Fatalf("segsIn=%d dups=%d", segsIn, dups)
	}
	if n.IPDelivered != 1 {
		t.Fatalf("IPDelivered = %d", n.IPDelivered)
	}
}

func TestAckTransmittedBack(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	var acks [][]byte
	// Taps only borrow the frame for the call; copy to keep it.
	n.Device().SetWire(func(frame []byte) { acks = append(acks, append([]byte(nil), frame...)) })
	sender := NewSender(n, 5001)
	sender.MSS = 256
	k.Spawn("reader", func(p *kernel.Proc) { n.SoReceive(p, so, 4096) })
	k.Scheduler().After(sim.Millisecond, func() { sender.SendOne() })
	k.Run(100 * sim.Millisecond)

	// One data ACK plus the reader's window update.
	if len(acks) != 2 {
		t.Fatalf("acks on wire = %d, want 2", len(acks))
	}
	// The ACK is a real, parseable, checksummed packet.
	ih, err := ParseIPv4(acks[0])
	if err != nil {
		t.Fatal(err)
	}
	if ih.Proto != ProtoTCP || ih.Src != PCAddr || ih.Dst != SparcAddr {
		t.Fatalf("ack header: %+v", ih)
	}
	th, payload, err := ParseTCP(ih.Src, ih.Dst, acks[0][IPHdrLen:ih.TotalLen])
	if err != nil {
		t.Fatal(err)
	}
	if th.Flags&FlagACK == 0 || len(payload) != 0 {
		t.Fatalf("not a pure ack: %+v payload=%d", th, len(payload))
	}
	if th.Ack != 1+256 {
		t.Fatalf("ack number = %d, want 257", th.Ack)
	}
	if n.Device().TxFrames != 2 {
		t.Fatalf("TxFrames = %d", n.Device().TxFrames)
	}
}

func TestDuplicateSegmentDropped(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	sender.MSS = 128
	k.Spawn("reader", func(p *kernel.Proc) {
		n.SoReceive(p, so, 64)
		n.SoReceive(p, so, 64)
	})
	k.Scheduler().After(sim.Millisecond, func() {
		sender.SendOne()
		sender.seq = 1 // rewind: next segment duplicates the first
		sender.SendOne()
	})
	k.Run(200 * sim.Millisecond)
	_, _, dups, _ := so.TCB()
	if dups != 1 {
		t.Fatalf("dups = %d, want 1", dups)
	}
}

func TestRingOverflowDropsFrames(t *testing.T) {
	k, n := newNet()
	// No reader, and interrupts masked, so the ring cannot drain.
	s := k.SplHigh()
	sender := NewSender(n, 5001)
	for i := 0; i < 20; i++ {
		sender.SendOne()
	}
	if n.Device().RxDrops == 0 {
		t.Fatal("no drops despite overflow")
	}
	if n.Device().RxFrames+n.Device().RxDrops != 20 {
		t.Fatalf("accounting: rx=%d drops=%d", n.Device().RxFrames, n.Device().RxDrops)
	}
	k.SplX(s)
}

func TestUDPDeliveryWithoutChecksumSkipsCksumCost(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoUDP, 2049)
	cksumFn := k.MustFn("in_cksum")
	src := NewUDPSource(n, 2049)
	src.Cksum = false
	var got []byte
	k.Spawn("reader", func(p *kernel.Proc) { got = n.SoReceive(p, so, 9000) })
	k.Scheduler().After(sim.Millisecond, func() { src.Send(1024) })
	before := cksumFn.Calls
	k.Run(100 * sim.Millisecond)
	if len(got) != 1024 {
		t.Fatalf("received %d", len(got))
	}
	// Only the IP header checksum should have been computed (1 call),
	// not the payload.
	calls := cksumFn.Calls - before
	if calls != 1 {
		t.Fatalf("in_cksum calls = %d, want 1 (IP header only)", calls)
	}
}

func TestUDPWithChecksumPaysForPayload(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoUDP, 2049)
	src := NewUDPSource(n, 2049)
	src.Cksum = true
	var got []byte
	k.Spawn("reader", func(p *kernel.Proc) { got = n.SoReceive(p, so, 9000) })
	k.Scheduler().After(sim.Millisecond, func() { src.Send(1024) })
	k.Run(100 * sim.Millisecond)
	if len(got) != 1024 {
		t.Fatalf("received %d", len(got))
	}
	cksumFn := k.MustFn("in_cksum")
	if cksumFn.Calls < 2 {
		t.Fatalf("in_cksum calls = %d, want ≥2", cksumFn.Calls)
	}
}

func TestSoReceiveBlocksUntilData(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	sender.MSS = 64
	var wokeAt sim.Time
	k.Spawn("reader", func(p *kernel.Proc) {
		n.SoReceive(p, so, 4096)
		wokeAt = k.Now()
	})
	k.Scheduler().After(10*sim.Millisecond, func() { sender.SendOne() })
	k.Run(100 * sim.Millisecond)
	if wokeAt < 10*sim.Millisecond {
		t.Fatalf("reader returned at %v, before data arrived", wokeAt)
	}
}

func TestMbufChainShapeForFullPacket(t *testing.T) {
	k, n := newNet()
	n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001) // full 1460-byte MSS
	sender.SendOne()
	k.Advance(sim.Microsecond) // deliver the interrupt
	// 1500-byte IP packet: 108 (header mbuf) + 1024 (cluster) + 368.
	if n.Pool().MGets != 3 || n.Pool().ClusterGets != 2 {
		t.Fatalf("MGets=%d ClusterGets=%d, want 3/2", n.Pool().MGets, n.Pool().ClusterGets)
	}
}

func TestFullPacketPathCost(t *testing.T) {
	k, n := newNet()
	n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	// Warm the mbuf pools so the steady-state path is measured.
	sender.SendOne()
	k.Advance(sim.Microsecond)
	start := k.Now()
	sender.SendOne()
	k.Advance(sim.Microsecond)
	elapsed := k.Now() - start
	// The full kernel path for one data packet: driver copy ≈1.1 ms +
	// TCP checksum ≈1.0 ms + protocol/ack/interrupt overhead. The paper
	// quotes ≈2000 µs counting just the two big items; see
	// EXPERIMENTS.md E1 for the full accounting.
	if elapsed < 2200*sim.Microsecond || elapsed > 3400*sim.Microsecond {
		t.Fatalf("packet path = %v, want ≈2.4-3.2 ms", elapsed)
	}
}

func TestSaturationWorkload(t *testing.T) {
	k, n := newNet()
	k.StartClock()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	total := 0
	k.Spawn("discard", func(p *kernel.Proc) {
		for k.Now() < 400*sim.Millisecond {
			buf := n.SoReceive(p, so, 4096)
			total += len(buf)
		}
	})
	sender.Start()
	k.Run(400 * sim.Millisecond)
	sender.Stop()

	we := n.Device()
	if total == 0 {
		t.Fatal("no data delivered")
	}
	// The PC cannot keep up with Ethernet: goodput well below wire rate
	// (10 Mb/s ≈ 1.25 MB/s would be ≈500 KB in 400 ms).
	if total > 350*1024 {
		t.Fatalf("goodput %d bytes in 400 ms — PC should be CPU-bound far below wire rate", total)
	}
	// And it is busy: >80 packets of ≈2.8 ms each fills the window.
	if we.RxFrames < 80 {
		t.Fatalf("only %d frames processed", we.RxFrames)
	}
	if sender.AcksSeen == 0 {
		t.Fatal("no ACKs flowed back")
	}
}

func TestWireTime(t *testing.T) {
	// A full frame occupies ≈1.2 ms of 10 Mb/s Ethernet.
	wt := WireTime(1500)
	if wt < 1100*sim.Microsecond || wt > 1350*sim.Microsecond {
		t.Fatalf("WireTime(1500) = %v", wt)
	}
}

func TestBadChecksumSegmentRejected(t *testing.T) {
	k, n := newNet()
	n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	pkt := sender.buildSegment()
	pkt[len(pkt)-1] ^= 0xFF // corrupt the payload
	n.Device().HostDeliver(pkt)
	k.Advance(sim.Microsecond)
	if n.IPBadChecksum == 0 {
		t.Fatal("corrupted segment not rejected")
	}
}

func TestNoListenerDropsSegment(t *testing.T) {
	k, n := newNet()
	sender := NewSender(n, 9999)
	sender.SendOne()
	k.Advance(sim.Microsecond)
	if n.NoSocketDrops != 1 {
		t.Fatalf("NoSocketDrops = %d", n.NoSocketDrops)
	}
}

func TestSoSendSegmentsAndBlocksOnWindow(t *testing.T) {
	k, n := newNet()
	k.StartClock()
	so, _ := n.SoCreate(ProtoTCP, 2000)
	so.Connect(SparcAddr, 5002)
	var sent int
	k.Spawn("sender", func(p *kernel.Proc) {
		sent = n.SoSend(p, so, make([]byte, 10*1460))
	})
	k.Run(2 * sim.Second)
	if sent != 10 {
		t.Fatalf("segments = %d, want 10", sent)
	}
	if n.Device().TxFrames != 10 {
		t.Fatalf("TxFrames = %d", n.Device().TxFrames)
	}
}
