package netstack

import (
	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

// WE models the Western Digital WD8003E: an 8-bit ISA Ethernet controller
// with 8 KiB of on-board packet RAM. Every byte in or out of that RAM
// crosses the 8-bit ISA bus at ≈20× main-memory cost — the paper's central
// I/O bottleneck. Received frames sit in the card's receive ring until the
// driver copies them into mbufs (weget); transmitted frames are copied into
// card RAM (westart) before the card serialises them onto the wire.
type WE struct {
	n *Net
	k *kernel.Kernel

	irq *kernel.IRQ

	fnWeIntr  *kernel.Fn
	fnWeRint  *kernel.Fn
	fnWeRead  *kernel.Fn
	fnWeGet   *kernel.Fn
	fnWeStart *kernel.Fn
	fnWeTint  *kernel.Fn

	ring      [][]byte // received frames awaiting the driver, in card RAM
	ringBytes int
	txBusy    bool
	txDone    bool

	// wireTaps receive frames the PC transmits (the remote hosts' view);
	// an empty list discards them.
	wireTaps []func(frame []byte)

	// Statistics.
	RxFrames, RxDrops, TxFrames uint64
	RxInterrupts, TxInterrupts  uint64
}

// RingCapacity is the card's usable packet RAM for the receive ring.
const RingCapacity = 8 * 1024

// wireNsPerByte is 10 Mb/s Ethernet: 800 ns per byte on the wire.
const wireNsPerByte = 800 * sim.Nanosecond

// frameOverhead is preamble + Ethernet header + CRC + interframe gap, in
// bytes-on-the-wire terms, added to every IP packet we carry.
const frameOverhead = 38

func newWE(n *Net) *WE {
	we := &WE{
		n:         n,
		k:         n.k,
		fnWeIntr:  n.k.RegisterFn("if_we", "weintr"),
		fnWeRint:  n.k.RegisterFn("if_we", "werint"),
		fnWeRead:  n.k.RegisterFn("if_we", "weread"),
		fnWeGet:   n.k.RegisterFn("if_we", "weget"),
		fnWeStart: n.k.RegisterFn("if_we", "westart"),
		fnWeTint:  n.k.RegisterFn("if_we", "wetint"),
	}
	we.irq = n.k.RegisterIRQ("we0", kernel.MaskNet, 0, 3, we.intr)
	return we
}

// SetWire installs f as the sole receiver of frames the PC transmits.
func (we *WE) SetWire(f func(frame []byte)) { we.wireTaps = []func([]byte){f} }

// AddWireTap adds a receiver for transmitted frames alongside existing ones.
func (we *WE) AddWireTap(f func(frame []byte)) { we.wireTaps = append(we.wireTaps, f) }

// WireTime reports how long a frame of n IP bytes occupies the Ethernet.
func WireTime(n int) sim.Time {
	return sim.Time(n+frameOverhead) * wireNsPerByte
}

// HostDeliver is called by the traffic generator (via a sim event) when a
// frame arrives from the wire: the card DMAs it into its ring — no CPU
// involvement — and raises its interrupt. A full ring drops the frame, which
// is exactly what happened to the saturated PC in the paper's test.
func (we *WE) HostDeliver(ipPacket []byte) {
	if we.ringBytes+len(ipPacket)+4 > RingCapacity {
		we.RxDrops++
		return
	}
	we.RxFrames++
	we.ring = append(we.ring, ipPacket)
	we.ringBytes += len(ipPacket) + 4
	we.k.Raise(we.irq)
}

// PendingRx reports frames waiting in the card ring (for tests).
func (we *WE) PendingRx() int { return len(we.ring) }

// intr is the card ISR: dispatch receive and transmit-complete work.
func (we *WE) intr() {
	we.k.Call(we.fnWeIntr, func() {
		we.k.Advance(costWeIntrBody)
		if len(we.ring) > 0 {
			we.RxInterrupts++
			we.rint()
		}
		if we.txDone {
			we.txDone = false
			we.TxInterrupts++
			we.k.CallCost(we.fnWeTint, costWeTintBody)
		}
	})
}

// rint drains the receive ring: one werint per interrupt, one weread per
// frame — when the CPU is saturated several frames accumulate per
// interrupt, which is why the paper's Figure 3 shows ~2-3 packets handled
// per werint call.
func (we *WE) rint() {
	we.k.Call(we.fnWeRint, func() {
		we.k.Advance(costWeRintBody)
		for len(we.ring) > 0 {
			frame := we.ring[0]
			we.ring = we.ring[1:]
			we.ringBytes -= len(frame) + 4
			we.read(frame)
		}
	})
}

// read processes one received frame: fetch the header from card RAM, build
// the mbuf chain (weget does the ISA-bus copies), and queue it for ipintr.
func (we *WE) read(frame []byte) {
	we.k.Call(we.fnWeRead, func() {
		we.k.Advance(costWeReadBody)
		// Peek at the buffer header in card RAM: a short ISA access.
		we.k.Advance(bus.TouchCost(4, bus.ISA8))
		chain := we.get(frame)
		we.n.enqueueIP(chain, frame)
	})
}

// get is weget: allocate an mbuf chain and copy the frame out of controller
// memory across the 8-bit bus, chunk by chunk — the ≈1045 µs per full
// packet the paper measures. In the what-if configuration the copy is
// skipped and the chain points at controller memory instead.
func (we *WE) get(frame []byte) *mem.Mbuf {
	var chain *mem.Mbuf
	we.k.Call(we.fnWeGet, func() {
		we.k.Advance(costWeGetBody)
		if we.n.ChecksumInController {
			// Link the controller buffer straight into an external mbuf.
			chain = we.n.pool.MGetExternal(bus.ISA8, len(frame))
			return
		}
		remaining := len(frame)
		first := true
		for remaining > 0 {
			var m *mem.Mbuf
			var space int
			if first {
				m = we.n.pool.MGet()
				space = mem.MHLen
				first = false
			} else {
				m = we.n.pool.MGetCluster()
				space = mem.MCLBytes
			}
			chunk := remaining
			if chunk > space {
				chunk = space
			}
			m.Len = chunk
			we.k.Bcopy(bus.CopyCost(chunk, bus.ISA8, bus.MainMemory))
			chain = mem.AppendChain(chain, m)
			remaining -= chunk
		}
	})
	return chain
}

// Transmit is westart: copy the frame into card RAM across the ISA bus and
// start the transmitter; the wire time later raises a transmit-complete
// interrupt.
func (we *WE) Transmit(frame []byte) {
	we.k.Call(we.fnWeStart, func() {
		we.k.Advance(costWeStartBody)
		if we.txBusy {
			// One outstanding transmit: the card of the period had a
			// single transmit buffer; back-to-back output waits.
			we.k.Advance(costWeStartBody)
		}
		we.k.Bcopy(bus.CopyCost(len(frame), bus.MainMemory, bus.ISA8))
		we.txBusy = true
		we.TxFrames++
		out := frame
		we.k.Scheduler().After(WireTime(len(frame)), func() {
			we.txBusy = false
			we.txDone = true
			we.k.Raise(we.irq)
			for _, tap := range we.wireTaps {
				tap(out)
			}
		})
	})
}
