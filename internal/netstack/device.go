package netstack

import (
	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

// WE models the Western Digital WD8003E: an 8-bit ISA Ethernet controller
// with 8 KiB of on-board packet RAM. Every byte in or out of that RAM
// crosses the 8-bit ISA bus at ≈20× main-memory cost — the paper's central
// I/O bottleneck. Received frames sit in the card's receive ring until the
// driver copies them into mbufs (weget); transmitted frames are copied into
// card RAM (westart) before the card serialises them onto the wire.
type WE struct {
	n *Net
	k *kernel.Kernel

	irq *kernel.IRQ

	fnWeIntr  *kernel.Fn
	fnWeRint  *kernel.Fn
	fnWeRead  *kernel.Fn
	fnWeGet   *kernel.Fn
	fnWeStart *kernel.Fn
	fnWeTint  *kernel.Fn

	// ring holds received frames awaiting the driver, in card RAM,
	// consumed from ringHead so the backing array is reused.
	ring      [][]byte
	ringHead  int
	ringBytes int
	txBusy    bool
	txDone    bool

	// txFree recycles in-flight transmit descriptors (frame + completion
	// callback), so the steady ACK stream schedules without allocating.
	txFree []*txJob

	// wireTaps receive frames the PC transmits (the remote hosts' view);
	// an empty list discards them. A tap sees the frame only for the
	// duration of the call: the buffer is recycled afterwards, so a tap
	// that keeps bytes must copy them.
	wireTaps []func(frame []byte)

	// Statistics.
	RxFrames, RxDrops, TxFrames uint64
	RxInterrupts, TxInterrupts  uint64
}

// RingCapacity is the card's usable packet RAM for the receive ring.
const RingCapacity = 8 * 1024

// wireNsPerByte is 10 Mb/s Ethernet: 800 ns per byte on the wire.
const wireNsPerByte = 800 * sim.Nanosecond

// frameOverhead is preamble + Ethernet header + CRC + interframe gap, in
// bytes-on-the-wire terms, added to every IP packet we carry.
const frameOverhead = 38

func newWE(n *Net) *WE {
	we := &WE{
		n:         n,
		k:         n.k,
		ring:      make([][]byte, 0, 16),
		fnWeIntr:  n.k.RegisterFn("if_we", "weintr"),
		fnWeRint:  n.k.RegisterFn("if_we", "werint"),
		fnWeRead:  n.k.RegisterFn("if_we", "weread"),
		fnWeGet:   n.k.RegisterFn("if_we", "weget"),
		fnWeStart: n.k.RegisterFn("if_we", "westart"),
		fnWeTint:  n.k.RegisterFn("if_we", "wetint"),
	}
	we.irq = n.k.RegisterIRQ("we0", kernel.MaskNet, 0, 3, we.intr)
	return we
}

// SetWire installs f as the sole receiver of frames the PC transmits. The
// frame passed to f is only valid for the duration of the call; copy to keep.
func (we *WE) SetWire(f func(frame []byte)) { we.wireTaps = []func([]byte){f} }

// AddWireTap adds a receiver for transmitted frames alongside existing ones.
// The frame passed to f is only valid for the duration of the call.
func (we *WE) AddWireTap(f func(frame []byte)) { we.wireTaps = append(we.wireTaps, f) }

// WireTime reports how long a frame of n IP bytes occupies the Ethernet.
func WireTime(n int) sim.Time {
	return sim.Time(n+frameOverhead) * wireNsPerByte
}

// HostDeliver is called by the traffic generator (via a sim event) when a
// frame arrives from the wire: the card DMAs it into its ring — no CPU
// involvement — and raises its interrupt. A full ring drops the frame, which
// is exactly what happened to the saturated PC in the paper's test.
// Ownership of ipPacket passes to the device; the caller must not reuse it.
func (we *WE) HostDeliver(ipPacket []byte) {
	if we.ringBytes+len(ipPacket)+4 > RingCapacity {
		we.RxDrops++
		we.n.frames.Put(ipPacket)
		return
	}
	we.RxFrames++
	we.ring = append(we.ring, ipPacket)
	we.ringBytes += len(ipPacket) + 4
	we.k.Raise(we.irq)
}

// PendingRx reports frames waiting in the card ring (for tests).
func (we *WE) PendingRx() int { return len(we.ring) - we.ringHead }

// intr is the card ISR: dispatch receive and transmit-complete work.
func (we *WE) intr() {
	we.k.Call(we.fnWeIntr, func() {
		we.k.Advance(costWeIntrBody)
		if we.PendingRx() > 0 {
			we.RxInterrupts++
			we.rint()
		}
		if we.txDone {
			we.txDone = false
			we.TxInterrupts++
			we.k.CallCost(we.fnWeTint, costWeTintBody)
		}
	})
}

// rint drains the receive ring: one werint per interrupt, one weread per
// frame — when the CPU is saturated several frames accumulate per
// interrupt, which is why the paper's Figure 3 shows ~2-3 packets handled
// per werint call.
func (we *WE) rint() {
	we.k.Call(we.fnWeRint, func() {
		we.k.Advance(costWeRintBody)
		for we.ringHead < len(we.ring) {
			frame := we.ring[we.ringHead]
			we.ring[we.ringHead] = nil
			we.ringHead++
			we.ringBytes -= len(frame) + 4
			we.read(frame)
		}
		we.ring = we.ring[:0]
		we.ringHead = 0
	})
}

// read processes one received frame: fetch the header from card RAM, build
// the mbuf chain (weget does the ISA-bus copies), and queue it for ipintr.
func (we *WE) read(frame []byte) {
	we.k.Call(we.fnWeRead, func() {
		we.k.Advance(costWeReadBody)
		// Peek at the buffer header in card RAM: a short ISA access.
		we.k.Advance(bus.TouchCost(4, bus.ISA8))
		chain := we.get(frame)
		// The chain carries the frame buffer; freeing the chain recycles
		// it back into the frame pool.
		chain.Frame = frame
		we.n.enqueueIP(chain, frame)
	})
}

// get is weget: allocate an mbuf chain and copy the frame out of controller
// memory across the 8-bit bus, chunk by chunk — the ≈1045 µs per full
// packet the paper measures. In the what-if configuration the copy is
// skipped and the chain points at controller memory instead.
func (we *WE) get(frame []byte) *mem.Mbuf {
	var chain *mem.Mbuf
	we.k.Call(we.fnWeGet, func() {
		we.k.Advance(costWeGetBody)
		if we.n.ChecksumInController {
			// Link the controller buffer straight into an external mbuf.
			chain = we.n.pool.MGetExternal(bus.ISA8, len(frame))
			return
		}
		remaining := len(frame)
		first := true
		for remaining > 0 {
			var m *mem.Mbuf
			var space int
			if first {
				m = we.n.pool.MGet()
				space = mem.MHLen
				first = false
			} else {
				m = we.n.pool.MGetCluster()
				space = mem.MCLBytes
			}
			chunk := remaining
			if chunk > space {
				chunk = space
			}
			m.Len = chunk
			we.k.Bcopy(bus.CopyCost(chunk, bus.ISA8, bus.MainMemory))
			chain = mem.AppendChain(chain, m)
			remaining -= chunk
		}
	})
	return chain
}

// txJob is one in-flight transmission: the frame on the wire plus its
// completion callback, pooled on the WE so back-to-back output does not
// allocate a closure and event per frame.
type txJob struct {
	we    *WE
	frame []byte
	fire  func() // bound once to done
}

func (we *WE) txJobGet() *txJob {
	if n := len(we.txFree); n > 0 {
		j := we.txFree[n-1]
		we.txFree = we.txFree[:n-1]
		return j
	}
	j := &txJob{we: we}
	j.fire = j.done
	return j
}

// done is the wire-time completion: transmit-complete interrupt, wire taps,
// and the frame buffer back to the pool.
func (j *txJob) done() {
	we, frame := j.we, j.frame
	j.frame = nil
	we.txFree = append(we.txFree, j)
	we.txBusy = false
	we.txDone = true
	we.k.Raise(we.irq)
	for _, tap := range we.wireTaps {
		tap(frame)
	}
	we.n.frames.Put(frame)
}

// Transmit is westart: copy the frame into card RAM across the ISA bus and
// start the transmitter; the wire time later raises a transmit-complete
// interrupt. Ownership of frame passes to the device: taps see it on the
// wire, then it returns to the frame pool.
func (we *WE) Transmit(frame []byte) {
	we.k.Call(we.fnWeStart, func() {
		we.k.Advance(costWeStartBody)
		if we.txBusy {
			// One outstanding transmit: the card of the period had a
			// single transmit buffer; back-to-back output waits.
			we.k.Advance(costWeStartBody)
		}
		we.k.Bcopy(bus.CopyCost(len(frame), bus.MainMemory, bus.ISA8))
		we.txBusy = true
		we.TxFrames++
		j := we.txJobGet()
		j.frame = frame
		we.k.Scheduler().AfterFree(WireTime(len(frame)), j.fire)
	})
}
