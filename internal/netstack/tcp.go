package netstack

import (
	"kprof/internal/bus"
	"kprof/internal/mem"
)

// The TCP path implemented here is the slice the paper exercises: an
// established connection receiving a stream of data segments (the
// read-and-discard saturation test) and sending acknowledgements, plus the
// send side used by the FTP-style comparison in the filesystem study. There
// is no three-way handshake, retransmission or congestion control — the
// paper's workloads never leave the established data path, and the profiler
// is the subject, not TCP.

// tcpcb is the per-connection control block.
type tcpcb struct {
	rcvNxt  uint32
	sndNxt  uint32
	peer    uint32
	rport   uint16
	unacked int // data segments since the last ACK (delayed-ack state)

	// Stats.
	SegsIn, SegsOut, DupSegs, AcksOut uint64
	SbFulls                           uint64
}

// tcpInput processes one received TCP segment: verify the checksum over the
// whole segment (the expensive part), locate the PCB, and append in-window
// data to the socket's receive buffer, waking the reader and scheduling an
// acknowledgement.
func (n *Net) tcpInput(ih *IPv4Header, seg []byte, chain *mem.Mbuf) {
	n.k.Call(n.fnTCPInput, func() {
		n.k.Advance(costTCPInputBody)
		// Checksum covers pseudo-header + header + data: the full
		// segment is touched, which is why in_cksum is ≈31% of the CPU
		// in the saturation test.
		if n.CksumPseudo(ih.Src, ih.Dst, ProtoTCP, seg, n.cksumRegion()) != 0 {
			n.IPBadChecksum++
			n.freeChain(chain)
			return
		}
		th, payload, err := ParseTCP(ih.Src, ih.Dst, seg)
		if err != nil {
			n.IPBadChecksum++
			n.freeChain(chain)
			return
		}
		so := n.pcbLookup(ProtoTCP, th.DstPort)
		if so == nil {
			n.NoSocketDrops++
			n.freeChain(chain)
			return
		}
		tcb := so.tcb
		if tcb.peer == 0 {
			// First segment establishes the (implicit) connection.
			tcb.peer = ih.Src
			tcb.rport = th.SrcPort
			tcb.rcvNxt = th.Seq
		}
		tcb.SegsIn++
		if len(payload) == 0 {
			// Pure ACK: update send state, free, done.
			if th.Flags&FlagACK != 0 && th.Ack > tcb.sndNxt {
				tcb.sndNxt = th.Ack
			}
			so.noteAck(th.Ack)
			n.freeChain(chain)
			return
		}
		if th.Seq < tcb.rcvNxt {
			tcb.DupSegs++
			n.freeChain(chain)
			return
		}
		if th.Seq > tcb.rcvNxt {
			// Gap: frames dropped at the ring or the IP queue. Accept
			// from the new offset (the discard workload never misses
			// them); a full reassembly queue is out of scope.
			tcb.rcvNxt = th.Seq
		}
		// m_pullup of the header portion before the PCB demux touched it.
		n.k.Bcopy(bus.CopyCost(TCPHdrLen+IPHdrLen, bus.MainMemory, bus.MainMemory))
		if !n.sbAppend(so, chain, payload) {
			// Receive buffer full: drop and advertise the closed window.
			tcb.SbFulls++
			n.freeChain(chain)
			n.tcpAck(so)
			return
		}
		tcb.rcvNxt += uint32(len(payload))
		n.soWakeup(so)
		tcb.unacked++
		if n.AckEveryPacket || tcb.unacked >= 2 {
			n.tcpAck(so)
		}
	})
}

// tcpAck emits an acknowledgement for everything received so far.
func (n *Net) tcpAck(so *Socket) {
	tcb := so.tcb
	tcb.unacked = 0
	tcb.AcksOut++
	n.tcpOutput(so, nil, FlagACK)
}

// tcpOutput builds and sends one segment (header only for ACKs; header plus
// payload for the send side). The segment is assembled directly into a
// pooled frame with IP headroom, so the steady ACK stream allocates nothing.
func (n *Net) tcpOutput(so *Socket, payload []byte, flags uint8) {
	tcb := so.tcb
	n.k.Call(n.fnTCPOutput, func() {
		n.k.Advance(costTCPOutputBody)
		th := TCPHeader{
			SrcPort: so.Port,
			DstPort: tcb.rport,
			Seq:     tcb.sndNxt,
			Ack:     tcb.rcvNxt,
			Flags:   flags,
			// The advertised window is the socket buffer's free space:
			// this is what throttles the Sparc when the PC falls behind.
			Window: uint16(so.SbSpace()),
		}
		frame := n.frames.Get(IPHdrLen + TCPHdrLen + len(payload))
		seg := frame[IPHdrLen:]
		copy(seg[TCPHdrLen:], payload)
		th.MarshalInto(seg, PCAddr, tcb.peer)
		// tcp_output checksums the outgoing segment.
		n.CksumPseudo(PCAddr, tcb.peer, ProtoTCP, seg, bus.MainMemory)
		tcb.sndNxt += uint32(len(payload))
		tcb.SegsOut++
		n.ipOutputFrame(ProtoTCP, PCAddr, tcb.peer, frame)
	})
}

// Connect primes a socket's control block with a peer, as the established
// connection the workloads assume.
func (so *Socket) Connect(peer uint32, rport uint16) {
	so.tcb.peer = peer
	so.tcb.rport = rport
}

// TCB exposes connection statistics for tests and reports.
func (so *Socket) TCB() (segsIn, segsOut, dups, acks uint64) {
	return so.tcb.SegsIn, so.tcb.SegsOut, so.tcb.DupSegs, so.tcb.AcksOut
}
