package netstack

import "kprof/internal/sim"

// Calibrated network-stack costs, from the paper's Network Performance
// section and Figures 3/4:
//
//   - in_cksum, as shipped: ≈843 µs per KiB (≈0.82 µs/byte) plus setup —
//     "not been optimally coded". The recoded (assembler-style) variant
//     runs at roughly memory-copy speed, the basis of the paper's estimate
//     that fixing it cuts per-packet cost from ≈2000 µs to ≈1200 µs.
//   - driver copy out of the 8-bit WD8003E packet RAM: the bus package
//     charges ≈700 ns/byte, giving ≈1045 µs for a full packet.
//   - function-body (net) times from Figure 4: weintr ≈50 µs, werint
//     ≈70 µs, weread ≈11 µs, ipintr ≈55 µs, tcp_input ≈92 µs,
//     in_pcblookup ≈9 µs, soreceive ≈98 µs (Figure 3 avg).
//
// The in_cksum cost model is exported for estimators (internal/pgo): a
// what-if arithmetic that predicts the recode's effect needs the same
// setup and per-byte figures the simulation charges.
const (
	// CksumSetup is the fixed per-call in_cksum entry cost.
	CksumSetup = cksumSetup
	// CksumNaivePerByte is the shipped C loop's per-byte cost.
	CksumNaivePerByte = cksumNaivePerB
	// CksumFastPerByte is the recoded (assembler-style) per-byte cost.
	CksumFastPerByte = cksumFastPerB
)

const (
	cksumSetup     = 8 * sim.Microsecond
	cksumNaivePerB = 680 * sim.Nanosecond
	cksumFastPerB  = 42 * sim.Nanosecond

	costWeIntrBody  = 50 * sim.Microsecond // ISR: read card status, loop setup
	costWeRintBody  = 70 * sim.Microsecond // ring housekeeping per receive burst
	costWeReadBody  = 11 * sim.Microsecond // per-packet header fetch
	costWeGetBody   = 38 * sim.Microsecond // mbuf chain assembly (plus MGETs)
	costWeStartBody = 26 * sim.Microsecond // per transmit: ring slot setup
	costWeTintBody  = 18 * sim.Microsecond // transmit-complete housekeeping

	costIPIntrBody    = 45 * sim.Microsecond
	costIPOutputBody  = 38 * sim.Microsecond
	costTCPInputBody  = 88 * sim.Microsecond
	costTCPOutputBody = 65 * sim.Microsecond
	costUDPInputBody  = 42 * sim.Microsecond
	costUDPOutputBody = 40 * sim.Microsecond
	costPcbLookup     = 9 * sim.Microsecond

	costSbAppend      = 14 * sim.Microsecond
	costSbWait        = 10 * sim.Microsecond
	costSoWakeup      = 15 * sim.Microsecond
	costSoReceiveBody = 60 * sim.Microsecond
	costSoSendBody    = 55 * sim.Microsecond
	costSoCreate      = 45 * sim.Microsecond
)
