package netstack

import "kprof/internal/mem"

// UDP input/output. The interesting property for the paper is the checksum
// configuration: with UDP checksums off (the usual NFS setup of the period)
// a received datagram's payload is never touched by in_cksum, which is why
// NFS showed *less* CPU overhead than an FTP-style TCP transfer on this
// machine.

// udpInput processes a received datagram.
func (n *Net) udpInput(ih *IPv4Header, dgram []byte, chain *mem.Mbuf) {
	n.k.Call(n.fnUDPInput, func() {
		n.k.Advance(costUDPInputBody)
		// Charge the checksum only if the datagram carries one.
		hasCksum := len(dgram) >= UDPHdrLen && (dgram[6] != 0 || dgram[7] != 0)
		if hasCksum {
			if n.CksumPseudo(ih.Src, ih.Dst, ProtoUDP, dgram, n.cksumRegion()) != 0 {
				n.IPBadChecksum++
				n.freeChain(chain)
				return
			}
		}
		uh, payload, _, err := ParseUDP(ih.Src, ih.Dst, dgram)
		if err != nil {
			n.IPBadChecksum++
			n.freeChain(chain)
			return
		}
		so := n.pcbLookup(ProtoUDP, uh.DstPort)
		if so == nil {
			n.NoSocketDrops++
			n.freeChain(chain)
			return
		}
		if so.tcb.peer == 0 {
			so.tcb.peer = ih.Src
			so.tcb.rport = uh.SrcPort
		}
		n.sbAppend(so, chain, payload)
		n.soWakeup(so)
	})
}

// udpOutput sends one datagram on a connected UDP socket.
func (n *Net) udpOutput(so *Socket, payload []byte) {
	n.k.Call(n.fnUDPOutput, func() {
		n.k.Advance(costUDPOutputBody)
		uh := UDPHeader{SrcPort: so.Port, DstPort: so.tcb.rport}
		frame := n.frames.Get(IPHdrLen + UDPHdrLen + len(payload))
		dgram := frame[IPHdrLen:]
		copy(dgram[UDPHdrLen:], payload)
		uh.MarshalInto(dgram, PCAddr, so.tcb.peer, n.UDPChecksum)
		if n.UDPChecksum {
			n.CksumPseudo(PCAddr, so.tcb.peer, ProtoUDP, dgram, n.cksumRegion())
		}
		// UDP "acks" itself immediately for the sender's window
		// accounting: there is no transport-level flow control.
		so.sndUnacked = 0
		n.ipOutputFrame(ProtoUDP, PCAddr, so.tcb.peer, frame)
	})
}

// SendUDPDatagram sends a single datagram outside SoSend's segmenting loop
// (used by the NFS RPC layer).
func (n *Net) SendUDPDatagram(so *Socket, payload []byte) {
	n.udpOutput(so, payload)
}
