package netstack

// framePool recycles the real byte buffers packets travel in. The simulated
// machine exchanges a few hundred frames per millisecond of virtual time;
// without reuse every segment, acknowledgement and reply is a fresh heap
// allocation, and the host-side profiler (internal/bench) charges that
// against the capture pipeline. The pool closes the loop: output paths and
// traffic generators Get a buffer, and it comes back with Put when the wire
// or the mbuf chain that carried it is done.
//
// Ownership rules:
//
//   - A frame handed to NetDevice.HostDeliver or Transmit belongs to the
//     device from that point on; the caller must not reuse or hold it.
//   - Wire taps (SetWire/AddWireTap) see a transmitted frame only for the
//     duration of the call — a tap that wants to keep bytes must copy them.
//   - A received frame is released when the mbuf chain built over it is
//     freed (mem.Mbuf.Frame carries the reference).
//
// Foreign buffers — tests and workload generators that build packets with
// plain appends — flow through the same paths; Put recognises the pool's own
// buffers by their exact capacity and lets everything else go to the garbage
// collector, so no caller is forced onto the pool.

// frameCap is the capacity of every pooled buffer: comfortably above the
// largest frame the stack builds (EtherMTU bytes of IP packet) and
// deliberately not a length any append-grown foreign buffer lands on.
const frameCap = 1792

// framePoolMax bounds the free list; beyond it frames are dropped for the
// collector (steady state needs only the frames in flight at once).
const framePoolMax = 64

// frameSlabCount is how many buffers each backing slab carves into: fresh
// frames cost one allocation per slab, not one per frame.
const frameSlabCount = 16

type framePool struct {
	free [][]byte
	slab []byte // remaining backing store, carved frameCap at a time
}

// Get returns a frame buffer of length n with undefined contents — callers
// write every byte. Oversized requests fall through to plain allocation.
func (p *framePool) Get(n int) []byte {
	if n > frameCap {
		return make([]byte, n)
	}
	if k := len(p.free); k > 0 {
		b := p.free[k-1]
		p.free = p.free[:k-1]
		return b[:n]
	}
	if len(p.slab) < frameCap {
		p.slab = make([]byte, frameCap*frameSlabCount)
	}
	b := p.slab[:frameCap:frameCap]
	p.slab = p.slab[frameCap:]
	return b[:n]
}

// Put returns a buffer to the pool. Only buffers the pool itself issued are
// kept (recognised by capacity); foreign buffers are ignored, so Put is safe
// to call on any frame that reaches an ownership-taking path.
func (p *framePool) Put(b []byte) {
	if cap(b) != frameCap || len(p.free) >= framePoolMax {
		return
	}
	if p.free == nil {
		p.free = make([][]byte, 0, framePoolMax)
	}
	p.free = append(p.free, b[:0])
}
