package netstack

import (
	"testing"

	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func TestSocketCloseReleasesPortAndBuffers(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	sender.MSS = 128
	sender.SendOne()
	k.Advance(sim.Microsecond)
	if so.RcvBuffered() == 0 {
		t.Fatal("nothing buffered")
	}
	frees := n.Pool().MFrees
	so.Close()
	if so.RcvBuffered() != 0 {
		t.Fatal("buffers not drained on close")
	}
	if n.Pool().MFrees == frees {
		t.Fatal("mbufs not freed on close")
	}
	if _, err := n.SoCreate(ProtoTCP, 5001); err != nil {
		t.Fatalf("port not released: %v", err)
	}
}

func TestSocketBufferFullDropsAndAdvertisesZero(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	so.RcvBufCap = 2048 // tiny buffer, no reader
	var windows []uint16
	n.Device().SetWire(func(frame []byte) {
		ih, err := ParseIPv4(frame)
		if err != nil {
			return
		}
		th, _, err := ParseTCP(ih.Src, ih.Dst, frame[IPHdrLen:ih.TotalLen])
		if err == nil {
			windows = append(windows, th.Window)
		}
	})
	sender := NewSender(n, 5001)
	sender.MSS = 1024
	for i := 0; i < 4; i++ {
		sender.SendOne()
		k.Advance(5 * sim.Millisecond)
	}
	_, _, _, _ = so.TCB()
	if so.tcb.SbFulls == 0 {
		t.Fatal("no sbappend failures despite the tiny buffer")
	}
	if len(windows) == 0 {
		t.Fatal("no acks observed")
	}
	if last := windows[len(windows)-1]; last != 0 {
		t.Fatalf("final advertised window = %d, want 0", last)
	}
}

func TestUDPOutputWithChecksumVerifiesOnWire(t *testing.T) {
	k, n := newNet()
	n.UDPChecksum = true
	so, _ := n.SoCreate(ProtoUDP, 2000)
	so.Connect(SparcAddr, 3000)
	var frames [][]byte
	// Taps only borrow the frame for the call; copy to keep it.
	n.Device().SetWire(func(f []byte) { frames = append(frames, append([]byte(nil), f...)) })
	n.SendUDPDatagram(so, []byte("checksummed payload"))
	k.Advance(50 * sim.Millisecond)
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	ih, err := ParseIPv4(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	_, payload, hadCksum, err := ParseUDP(ih.Src, ih.Dst, frames[0][IPHdrLen:ih.TotalLen])
	if err != nil {
		t.Fatal(err)
	}
	if !hadCksum {
		t.Fatal("datagram left without a checksum")
	}
	if string(payload) != "checksummed payload" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestWEPendingRxAndBatching(t *testing.T) {
	k, n := newNet()
	s := k.SplHigh() // hold off the ISR
	sender := NewSender(n, 5001)
	sender.MSS = 256
	sender.SendOne()
	sender.SendOne()
	if n.Device().PendingRx() != 2 {
		t.Fatalf("pending = %d", n.Device().PendingRx())
	}
	k.SplX(s)
	if n.Device().PendingRx() != 0 {
		t.Fatal("ring not drained")
	}
	if n.Device().RxInterrupts != 1 {
		t.Fatalf("rx interrupts = %d, want 1 batched", n.Device().RxInterrupts)
	}
}

func TestWETransmitBackToBackWaits(t *testing.T) {
	k, n := newNet()
	so, _ := n.SoCreate(ProtoTCP, 2000)
	so.Connect(SparcAddr, 5002)
	start := k.Now()
	n.tcpOutput(so, make([]byte, 512), FlagACK)
	first := k.Now() - start
	// Second transmit while the card is still busy pays the wait penalty.
	start = k.Now()
	n.tcpOutput(so, make([]byte, 512), FlagACK)
	second := k.Now() - start
	if second <= first {
		t.Fatalf("back-to-back transmit (%v) should cost more than first (%v)", second, first)
	}
}

func TestMGetExternalNotReturnedToClusterPool(t *testing.T) {
	_, n := newNet()
	p := n.Pool()
	ext := p.MGetExternal(bus.ISA8, 1500)
	// Freeing an external mbuf must not credit the main-memory cluster
	// pool (its "cluster" is controller RAM).
	p.MFree(ext)
	m := p.MGetCluster()
	if m.Region != bus.MainMemory {
		t.Fatal("cluster pool handed out controller memory")
	}
}

func TestNetString(t *testing.T) {
	_, n := newNet()
	if n.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSenderRecoveryAfterTotalLoss(t *testing.T) {
	k, n := newNet()
	k.StartClock()
	so, _ := n.SoCreate(ProtoTCP, 5001)
	sender := NewSender(n, 5001)
	sender.Window = 4 * 1460 // small window so loss can stall it

	// Swallow the first burst at splhigh until the ring overflows, then
	// open up: the recovery timer must restart the stream.
	s := k.SplHigh()
	total := 0
	k.Spawn("reader", func(p *kernel.Proc) {
		for k.Now() < 400*sim.Millisecond {
			total += len(n.SoReceive(p, so, 8192))
		}
	})
	sender.Start()
	// Lower the mask from a timer event after the damage is done.
	k.Scheduler().After(30*sim.Millisecond, func() { k.SplX(s) })
	k.Run(400 * sim.Millisecond)
	sender.Stop()
	if total == 0 {
		t.Fatal("stream never recovered")
	}
}
