package netstack

import (
	"encoding/binary"
	"fmt"
)

// Real wire formats for the simulated packets: the stack builds and parses
// genuine IPv4/TCP/UDP headers and verifies genuine checksums, so the
// protocol logic is testable independent of the timing model.

// Header sizes.
const (
	EtherHdrLen = 14
	IPHdrLen    = 20
	TCPHdrLen   = 20
	UDPHdrLen   = 8

	// EtherMTU is the Ethernet payload limit.
	EtherMTU = 1500
)

// Protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// IPv4Header is the fixed 20-byte IPv4 header (no options).
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst uint32
}

// Marshal encodes the header with a correct header checksum.
func (h *IPv4Header) Marshal() []byte {
	b := make([]byte, IPHdrLen)
	h.MarshalInto(b)
	return b
}

// MarshalInto encodes the header into b's first IPHdrLen bytes. Every byte
// is written (the buffer may be recycled and carry stale contents).
func (h *IPv4Header) MarshalInto(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0    // TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	b[6], b[7] = 0, 0 // flags/fragment offset
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0 // checksum placeholder (included in the sum below)
	binary.BigEndian.PutUint32(b[12:], h.Src)
	binary.BigEndian.PutUint32(b[16:], h.Dst)
	binary.BigEndian.PutUint16(b[10:], InternetChecksum(b[:IPHdrLen]))
}

// ParseIPv4 decodes and validates an IPv4 header.
func ParseIPv4(b []byte) (IPv4Header, error) {
	if len(b) < IPHdrLen {
		return IPv4Header{}, fmt.Errorf("netstack: short IP header (%d bytes)", len(b))
	}
	if b[0] != 0x45 {
		return IPv4Header{}, fmt.Errorf("netstack: unsupported IP version/IHL %#x", b[0])
	}
	if b[1] != 0 {
		return IPv4Header{}, fmt.Errorf("netstack: unsupported TOS %#x", b[1])
	}
	if b[6] != 0 || b[7] != 0 {
		// No reassembly: the stack never generates fragments (the
		// NFS-lite rsize stays inside one frame for this reason).
		return IPv4Header{}, fmt.Errorf("netstack: IP fragments not supported")
	}
	if !checksumValid(b[:IPHdrLen]) {
		return IPv4Header{}, fmt.Errorf("netstack: bad IP header checksum")
	}
	return IPv4Header{
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Proto:    b[9],
		Src:      binary.BigEndian.Uint32(b[12:]),
		Dst:      binary.BigEndian.Uint32(b[16:]),
	}, nil
}

// TCPHeader is the fixed 20-byte TCP header (no options).
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagACK = 1 << 4
)

// Marshal encodes the TCP header plus payload with a correct checksum
// computed over the pseudo-header, header and data.
func (h *TCPHeader) Marshal(src, dst uint32, payload []byte) []byte {
	b := make([]byte, TCPHdrLen+len(payload))
	copy(b[TCPHdrLen:], payload)
	h.MarshalInto(b, src, dst)
	return b
}

// MarshalInto encodes the TCP header into b's first TCPHdrLen bytes; the
// payload must already occupy the rest of b. The checksum covers the
// pseudo-header plus all of b. Every header byte is written (the buffer may
// be recycled and carry stale contents).
func (h *TCPHeader) MarshalInto(b []byte, src, dst uint32) {
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = 5 << 4 // data offset
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	b[16], b[17] = 0, 0 // checksum placeholder
	b[18], b[19] = 0, 0 // urgent pointer
	sum := foldChecksum(sumBytes(b, pseudoSum(src, dst, ProtoTCP, len(b))))
	binary.BigEndian.PutUint16(b[16:], sum)
}

// ParseTCP decodes a TCP segment and validates its checksum against the
// pseudo-header.
func ParseTCP(src, dst uint32, b []byte) (TCPHeader, []byte, error) {
	if len(b) < TCPHdrLen {
		return TCPHeader{}, nil, fmt.Errorf("netstack: short TCP segment (%d bytes)", len(b))
	}
	if b[12]>>4 != 5 {
		return TCPHeader{}, nil, fmt.Errorf("netstack: TCP options not supported (offset %d)", b[12]>>4)
	}
	if b[12]&0x0F != 0 {
		return TCPHeader{}, nil, fmt.Errorf("netstack: nonzero reserved bits")
	}
	if b[18] != 0 || b[19] != 0 {
		return TCPHeader{}, nil, fmt.Errorf("netstack: urgent pointer not supported")
	}
	if foldChecksum(sumBytes(b, pseudoSum(src, dst, ProtoTCP, len(b)))) != 0 {
		return TCPHeader{}, nil, fmt.Errorf("netstack: bad TCP checksum")
	}
	h := TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:]),
	}
	return h, b[TCPHdrLen:], nil
}

// UDPHeader is the 8-byte UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// Marshal encodes a UDP datagram. When cksum is false the checksum field is
// zero — "UDP checksums are usually turned off with NFS", the configuration
// whose consequences the paper explores.
func (h *UDPHeader) Marshal(src, dst uint32, payload []byte, cksum bool) []byte {
	b := make([]byte, UDPHdrLen+len(payload))
	copy(b[UDPHdrLen:], payload)
	h.MarshalInto(b, src, dst, cksum)
	return b
}

// MarshalInto encodes the UDP header into b's first UDPHdrLen bytes; the
// payload must already occupy the rest of b. Every header byte is written
// (the buffer may be recycled and carry stale contents).
func (h *UDPHeader) MarshalInto(b []byte, src, dst uint32, cksum bool) {
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(len(b)))
	b[6], b[7] = 0, 0 // checksum: absent unless computed below
	if cksum {
		sum := foldChecksum(sumBytes(b, pseudoSum(src, dst, ProtoUDP, len(b))))
		if sum == 0 {
			sum = 0xffff // 0 means "no checksum" on the wire
		}
		binary.BigEndian.PutUint16(b[6:], sum)
	}
}

// ParseUDP decodes a UDP datagram, validating the checksum only when one is
// present. It reports whether a checksum was verified.
func ParseUDP(src, dst uint32, b []byte) (UDPHeader, []byte, bool, error) {
	if len(b) < UDPHdrLen {
		return UDPHeader{}, nil, false, fmt.Errorf("netstack: short UDP datagram (%d bytes)", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length > len(b) || length < UDPHdrLen {
		return UDPHeader{}, nil, false, fmt.Errorf("netstack: bad UDP length %d", length)
	}
	hasCksum := binary.BigEndian.Uint16(b[6:]) != 0
	if hasCksum {
		if foldChecksum(sumBytes(b[:length], pseudoSum(src, dst, ProtoUDP, length))) != 0 {
			return UDPHeader{}, nil, true, fmt.Errorf("netstack: bad UDP checksum")
		}
	}
	h := UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
	}
	return h, b[UDPHdrLen:length], hasCksum, nil
}
