package netstack

import (
	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

// LE models the Ethernet controller of the Megadata 68020 embedded board —
// a LANCE-class chip that DMAs frames into shared on-board memory, so no
// ISA bus stands between the driver and the data. The paper's first case
// study lives here: "a number of profiling studies helped greatly in
// identifying key performance problem areas in the kernel, and in one case
// the recoding of an Ethernet driver doubled the network throughput."
//
// Both driver generations are implemented:
//
//   - DriverOld: the original — receive into a staging buffer with a
//     byte-at-a-time copy loop, then a second copy into mbufs. Two passes
//     over every packet, both at byte-loop speed.
//   - DriverRecoded: the rewrite the Profiler motivated — a single
//     word-at-a-time copy straight from the receive ring into mbufs.
type LE struct {
	n *Net
	k *kernel.Kernel

	Style DriverStyle

	irq *kernel.IRQ

	fnLeIntr  *kernel.Fn
	fnLeRint  *kernel.Fn
	fnLeRead  *kernel.Fn
	fnLeCopy  *kernel.Fn // the driver's own copy loop (the hot spot)
	fnLeStart *kernel.Fn

	ring      [][]byte
	ringHead  int
	ringBytes int
	txBusy    bool
	txDone    bool

	txFree []*leTxJob

	// wireTaps see a transmitted frame only for the duration of the call;
	// the buffer is recycled afterwards.
	wireTaps []func(frame []byte)

	// Statistics.
	RxFrames, RxDrops, TxFrames uint64
}

// DriverStyle selects the driver generation.
type DriverStyle int

const (
	// DriverOld is the original double-copy byte-loop driver.
	DriverOld DriverStyle = iota
	// DriverRecoded is the single-pass word-copy rewrite.
	DriverRecoded
)

func (d DriverStyle) String() string {
	if d == DriverRecoded {
		return "recoded"
	}
	return "old"
}

// Driver copy rates on the 68020 board. The byte loop reads, masks and
// stores one byte per iteration (≈10 cycles at 20 MHz ≈ 500 ns/byte); the
// recoded move.l loop streams 4 bytes per iteration.
const (
	leByteLoopPerB = 500 * sim.Nanosecond
	leWordLoopPerB = 130 * sim.Nanosecond
	leRingCapacity = 16 * 1024

	costLeIntrBody  = 30 * sim.Microsecond
	costLeRintBody  = 40 * sim.Microsecond
	costLeReadBody  = 9 * sim.Microsecond
	costLeStartBody = 18 * sim.Microsecond
)

// NewLE attaches the embedded Ethernet controller to the machine.
func NewLE(n *Net, style DriverStyle) *LE {
	le := &LE{
		n:         n,
		k:         n.k,
		Style:     style,
		ring:      make([][]byte, 0, 16),
		fnLeIntr:  n.k.RegisterFn("if_le", "leintr"),
		fnLeRint:  n.k.RegisterFn("if_le", "lerint"),
		fnLeRead:  n.k.RegisterFn("if_le", "leread"),
		fnLeCopy:  n.k.RegisterFn("if_le", "lecopy"),
		fnLeStart: n.k.RegisterFn("if_le", "lestart"),
	}
	le.irq = n.k.RegisterIRQ("le0", kernel.MaskNet, 0, 3, le.intr)
	return le
}

// SetWire installs f as the sole receiver of transmitted frames.
func (le *LE) SetWire(f func(frame []byte)) { le.wireTaps = []func([]byte){f} }

// AddWireTap adds a receiver of transmitted frames.
func (le *LE) AddWireTap(f func(frame []byte)) { le.wireTaps = append(le.wireTaps, f) }

// HostDeliver is the wire side: the chip DMAs the frame into the ring and
// interrupts. A full ring drops.
func (le *LE) HostDeliver(ipPacket []byte) {
	if le.ringBytes+len(ipPacket)+4 > leRingCapacity {
		le.RxDrops++
		le.n.frames.Put(ipPacket)
		return
	}
	le.RxFrames++
	le.ring = append(le.ring, ipPacket)
	le.ringBytes += len(ipPacket) + 4
	le.k.Raise(le.irq)
}

func (le *LE) intr() {
	le.k.Call(le.fnLeIntr, func() {
		le.k.Advance(costLeIntrBody)
		if le.ringHead < len(le.ring) {
			le.rint()
		}
		if le.txDone {
			le.txDone = false
		}
	})
}

func (le *LE) rint() {
	le.k.Call(le.fnLeRint, func() {
		le.k.Advance(costLeRintBody)
		for le.ringHead < len(le.ring) {
			frame := le.ring[le.ringHead]
			le.ring[le.ringHead] = nil
			le.ringHead++
			le.ringBytes -= len(frame) + 4
			le.read(frame)
		}
		le.ring = le.ring[:0]
		le.ringHead = 0
	})
}

// read builds the mbuf chain for one frame, through whichever copy
// generation the driver has.
func (le *LE) read(frame []byte) {
	le.k.Call(le.fnLeRead, func() {
		le.k.Advance(costLeReadBody)
		chain := le.buildChain(len(frame))
		chain.Frame = frame
		switch le.Style {
		case DriverOld:
			// Pass one: ring buffer to the staging area, byte loop.
			le.k.CallCost(le.fnLeCopy, sim.Time(len(frame))*leByteLoopPerB)
			// Pass two: staging area into the mbufs, byte loop again.
			le.k.CallCost(le.fnLeCopy, sim.Time(len(frame))*leByteLoopPerB)
		case DriverRecoded:
			// One pass, word-wide, straight into the mbufs.
			le.k.CallCost(le.fnLeCopy, sim.Time(len(frame))*leWordLoopPerB)
		}
		le.n.enqueueIP(chain, frame)
	})
}

func (le *LE) buildChain(length int) *mem.Mbuf {
	var chain *mem.Mbuf
	remaining := length
	first := true
	for remaining > 0 {
		var m *mem.Mbuf
		space := mem.MCLBytes
		if first {
			m = le.n.pool.MGet()
			space = mem.MHLen
			first = false
		} else {
			m = le.n.pool.MGetCluster()
		}
		chunk := remaining
		if chunk > space {
			chunk = space
		}
		m.Len = chunk
		m.Region = bus.MainMemory
		chain = mem.AppendChain(chain, m)
		remaining -= chunk
	}
	return chain
}

// Transmit copies the frame into the ring (word loop in both generations;
// the receive path was the broken one) and sends it after the wire time.
func (le *LE) Transmit(frame []byte) {
	le.k.Call(le.fnLeStart, func() {
		le.k.Advance(costLeStartBody)
		le.k.CallCost(le.fnLeCopy, sim.Time(len(frame))*leWordLoopPerB)
		le.txBusy = true
		le.TxFrames++
		j := le.txJobGet()
		j.frame = frame
		le.k.Scheduler().AfterFree(WireTime(len(frame)), j.fire)
	})
}

// leTxJob is the LE's pooled in-flight transmission, mirroring the WE's
// txJob so steady output allocates no closure or event per frame.
type leTxJob struct {
	le    *LE
	frame []byte
	fire  func() // bound once to done
}

func (le *LE) txJobGet() *leTxJob {
	if n := len(le.txFree); n > 0 {
		j := le.txFree[n-1]
		le.txFree = le.txFree[:n-1]
		return j
	}
	j := &leTxJob{le: le}
	j.fire = j.done
	return j
}

func (j *leTxJob) done() {
	le, frame := j.le, j.frame
	j.frame = nil
	le.txFree = append(le.txFree, j)
	le.txBusy = false
	le.txDone = true
	le.k.Raise(le.irq)
	for _, tap := range le.wireTaps {
		tap(frame)
	}
	le.n.frames.Put(frame)
}
