package netstack

import (
	"encoding/binary"

	"kprof/internal/sim"
)

// Sender models the remote host — the paper used "a Sun Sparcstation 2 ...
// as I was sure it could fill the available network bandwidth to the PC".
// It streams TCP data segments as fast as the receiver's window allows: the
// Sparc can fill the wire, but it is a real TCP sender, so once the PC's
// CPU saturates, throughput is governed by how fast the PC produces
// acknowledgements — which is exactly the regime of the paper's test ("the
// PC could not process the data from the network at anywhere near Ethernet
// speed").
type Sender struct {
	n   *Net
	dev NetDevice

	// MSS is the data bytes per segment; full Ethernet frames by default.
	MSS int
	// Port is the destination (listening) port on the PC.
	Port uint16
	// Window is how many bytes the sender keeps in flight awaiting ACKs.
	Window int
	// Gap adds idle time between frames beyond wire occupancy; 0 means
	// flat-out line rate.
	Gap sim.Time
	// Jitter adds a uniform random extra gap in [0, Jitter] before each
	// frame, drawn from the receiver kernel's seeded PRNG: the Sparc can
	// fill the wire, but it is not cycle-identical from run to run, so
	// seeding the machine differently perturbs the arrival pattern (the
	// variation a multi-seed sweep averages over). Zero keeps the wire
	// metronomic.
	Jitter sim.Time

	seq        uint32
	acked      uint32
	peerWindow int // receive window the PC last advertised
	running    bool
	inFlight   bool // a frame is occupying the wire / scheduled
	recovery   *sim.Event

	// pendingPkt/deliverFn carry the single in-flight frame to its arrival
	// event without allocating a closure per segment (deliverFn is bound
	// once; inFlight guarantees one outstanding delivery).
	pendingPkt []byte
	deliverFn  func()

	// Stats.
	SegmentsSent uint64
	BytesSent    uint64
	AcksSeen     uint64
	Recoveries   uint64
}

// DefaultMSS fills an Ethernet frame: 1500 − IP − TCP.
const DefaultMSS = EtherMTU - IPHdrLen - TCPHdrLen

// NewSender builds a traffic source aimed at port on the PC.
func NewSender(n *Net, port uint16) *Sender {
	s := &Sender{n: n, dev: n.we, MSS: DefaultMSS, Port: port, Window: 16384, peerWindow: 16384, seq: 1, acked: 1}
	s.deliverFn = s.deliver
	return s
}

// SetDevice aims the sender at a different interface (the embedded LE).
func (s *Sender) SetDevice(d NetDevice) { s.dev = d }

// payloadPattern fills segment payloads with a deterministic pattern so the
// real checksums vary across segments.
func payloadPattern(seq uint32, n int) []byte {
	b := make([]byte, n)
	payloadPatternInto(b, seq)
	return b
}

// payloadRamp holds byte(j) for every index the pattern fill can need: the
// body bytes of a payload are base+byte(i), a ramp shifted by base, so the
// fill is a single copy out of this table instead of a byte loop.
var payloadRamp = func() []byte {
	t := make([]byte, 256+frameCap)
	for j := range t {
		t[j] = byte(j)
	}
	return t
}()

// payloadPatternInto writes the pattern into an existing buffer.
func payloadPatternInto(b []byte, seq uint32) {
	binary.BigEndian.PutUint32(b, seq)
	if len(b) <= 4 {
		return
	}
	if base := int(byte(seq >> 8)); base+len(b) <= len(payloadRamp) {
		copy(b[4:], payloadRamp[base+4:base+len(b)])
		return
	}
	for i := 4; i < len(b); i++ {
		b[i] = byte(seq>>8) + byte(i)
	}
}

// buildSegment constructs the full IP packet for the next data segment,
// assembled in place in a pooled frame buffer (the receiving machine
// recycles it once the packet is consumed).
func (s *Sender) buildSegment() []byte {
	frame := s.n.frames.Get(IPHdrLen + TCPHdrLen + s.MSS)
	seg := frame[IPHdrLen:]
	payloadPatternInto(seg[TCPHdrLen:], s.seq)
	th := TCPHeader{
		SrcPort: 1023,
		DstPort: s.Port,
		Seq:     s.seq,
		Flags:   FlagACK,
		Window:  4096,
	}
	th.MarshalInto(seg, SparcAddr, PCAddr)
	ih := IPv4Header{
		TotalLen: uint16(len(frame)),
		ID:       uint16(s.seq),
		TTL:      255,
		Proto:    ProtoTCP,
		Src:      SparcAddr,
		Dst:      PCAddr,
	}
	ih.MarshalInto(frame)
	s.seq += uint32(s.MSS)
	return frame
}

// Start begins the stream. The sender transmits back-to-back frames while
// the receive window has room, then pauses until the PC's ACKs (observed on
// the wire) open it again.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.dev.AddWireTap(s.onWire)
	s.n.k.Scheduler().After(WireTime(EtherMTU), s.pump)
}

// Stop halts the stream.
func (s *Sender) Stop() { s.running = false }

// pump sends the next segment if both the sender's own window and the PC's
// advertised window allow, and schedules the frame's arrival one wire time
// later. When blocked on un-acked data (frames lost at the saturated PC) it
// arms a retransmit-style recovery timer.
func (s *Sender) pump() {
	if !s.running || s.inFlight {
		return
	}
	window := s.Window
	if s.peerWindow < window {
		window = s.peerWindow
	}
	if int(s.seq-s.acked)+s.MSS > window {
		if s.peerWindow >= s.MSS {
			// Blocked by lost data, not by the receiver: recover.
			s.armRecovery()
		}
		return // an ACK or window update will restart the pump
	}
	pkt := s.buildSegment()
	s.SegmentsSent++
	s.BytesSent += uint64(s.MSS)
	s.inFlight = true
	gap := s.Gap
	if s.Jitter > 0 {
		gap += s.n.k.Rand().Duration(0, s.Jitter)
	}
	s.pendingPkt = pkt
	s.n.k.Scheduler().AfterFree(WireTime(len(pkt))+gap, s.deliverFn)
}

// deliver is the frame-arrival event: hand the in-flight packet to the
// receiving device and pump the next one.
func (s *Sender) deliver() {
	pkt := s.pendingPkt
	s.pendingPkt = nil
	s.inFlight = false
	s.dev.HostDeliver(pkt)
	s.pump()
}

// armRecovery schedules the give-up-on-holes timer: the real Sparc would
// retransmit lost segments; the discard workload only needs the stream to
// keep moving, so after a timeout the sender declares the hole acknowledged.
func (s *Sender) armRecovery() {
	if s.recovery != nil && s.recovery.Scheduled() {
		return
	}
	seqAtArm := s.seq
	s.recovery = s.n.k.Scheduler().After(50*sim.Millisecond, func() {
		if !s.running || s.seq != seqAtArm || s.acked >= s.seq {
			return
		}
		s.Recoveries++
		s.acked = s.seq
		s.pump()
	})
}

// onWire watches the PC's transmissions for ACKs: they slide the send
// window and carry the PC's advertised receive window.
func (s *Sender) onWire(frame []byte) {
	if !s.running {
		return
	}
	ih, err := ParseIPv4(frame)
	if err != nil || ih.Proto != ProtoTCP || ih.Dst != SparcAddr {
		return
	}
	th, _, err := ParseTCP(ih.Src, ih.Dst, frame[IPHdrLen:ih.TotalLen])
	if err != nil || th.Flags&FlagACK == 0 {
		return
	}
	s.AcksSeen++
	if th.Ack > s.acked {
		s.acked = th.Ack
	}
	s.peerWindow = int(th.Window)
	s.pump()
}

// SendOne injects a single segment immediately (for tests).
func (s *Sender) SendOne() {
	pkt := s.buildSegment()
	s.SegmentsSent++
	s.BytesSent += uint64(s.MSS)
	s.dev.HostDeliver(pkt)
}

// UDPSource sends UDP datagrams toward a port, optionally checksummed —
// the stand-in for NFS client traffic and for loopback-style RPC tests.
type UDPSource struct {
	n      *Net
	Port   uint16
	Cksum  bool
	DgSent uint64
}

// NewUDPSource builds a datagram source aimed at port on the PC.
func NewUDPSource(n *Net, port uint16) *UDPSource {
	return &UDPSource{n: n, Port: port}
}

// Send injects one datagram of n payload bytes.
func (u *UDPSource) Send(nBytes int) {
	frame := u.n.frames.Get(IPHdrLen + UDPHdrLen + nBytes)
	dgram := frame[IPHdrLen:]
	payloadPatternInto(dgram[UDPHdrLen:], uint32(u.DgSent))
	uh := UDPHeader{SrcPort: 997, DstPort: u.Port}
	uh.MarshalInto(dgram, SparcAddr, PCAddr, u.Cksum)
	ih := IPv4Header{
		TotalLen: uint16(len(frame)),
		TTL:      255,
		Proto:    ProtoUDP,
		Src:      SparcAddr,
		Dst:      PCAddr,
	}
	ih.MarshalInto(frame)
	u.DgSent++
	u.n.we.HostDeliver(frame)
}
