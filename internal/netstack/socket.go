package netstack

import (
	"fmt"

	"kprof/internal/bus"
	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

// Socket is a kernel socket with a receive buffer of mbuf chains. The
// workloads the paper runs — "a program that listened on a socket and when
// another host connected, read and discard the data" — drive SoReceive in a
// loop; the interrupt path fills the buffer through sbappend and wakes the
// reader.
type Socket struct {
	n     *Net
	Proto uint8
	Port  uint16

	// rcvChains/rcvData queue received chains and their payload slices,
	// consumed from rcvHead so the backing arrays are reused in steady
	// state instead of reallocated by tail slicing.
	rcvChains []*mem.Mbuf
	rcvData   [][]byte // payload bytes parallel to rcvChains
	rcvHead   int
	rcvBytes  int
	// RcvBufCap is the socket receive buffer capacity; the space left is
	// the window TCP advertises, which is what flow-controls the remote
	// sender when the reader cannot keep up.
	RcvBufCap int

	sndUnacked int // bytes sent but not yet acknowledged (send side)

	tcb *tcpcb

	// Stats.
	RcvAppended uint64
	RcvRead     uint64
}

func (n *Net) registerSocketFns() {
	n.fnSoCreate = n.k.RegisterFn("uipc_socket", "socreate")
	n.fnSoReceive = n.k.RegisterFn("uipc_socket", "soreceive")
	n.fnSoSend = n.k.RegisterFn("uipc_socket", "sosend")
	n.fnSbAppend = n.k.RegisterFn("uipc_socket2", "sbappend")
	n.fnSbWait = n.k.RegisterFn("uipc_socket2", "sbwait")
	n.fnSoWakeup = n.k.RegisterFn("uipc_socket2", "sowakeup")
}

// SoCreate opens a socket bound to (proto, port).
func (n *Net) SoCreate(proto uint8, port uint16) (*Socket, error) {
	key := pcbKey{proto, port}
	if _, busy := n.pcbs[key]; busy {
		return nil, fmt.Errorf("netstack: port %d/%d in use", proto, port)
	}
	so := &Socket{
		n: n, Proto: proto, Port: port, tcb: &tcpcb{}, RcvBufCap: DefaultSockBuf,
		// Presized for the buffered-chain high-water mark of a full
		// receive buffer, so steady traffic never regrows the queues.
		rcvChains: make([]*mem.Mbuf, 0, 16),
		rcvData:   make([][]byte, 0, 16),
	}
	n.k.Call(n.fnSoCreate, func() {
		n.k.Advance(costSoCreate)
		n.alloc.Malloc(256) // struct socket + pcb
		n.pcbs[key] = so
	})
	return so, nil
}

// Close unbinds the socket.
func (so *Socket) Close() {
	delete(so.n.pcbs, pcbKey{so.Proto, so.Port})
	so.n.pool.MFreeChain(so.chainAll())
}

func (so *Socket) chainAll() *mem.Mbuf {
	var head *mem.Mbuf
	for _, c := range so.rcvChains[so.rcvHead:] {
		head = mem.AppendChain(head, c)
	}
	so.rcvChains = nil
	so.rcvData = nil
	so.rcvHead = 0
	so.rcvBytes = 0
	return head
}

// DefaultSockBuf is the default socket receive buffer capacity.
const DefaultSockBuf = 16 * 1024

// SbSpace reports the free space in the receive buffer — the window TCP
// advertises.
func (so *Socket) SbSpace() int {
	space := so.RcvBufCap - so.rcvBytes
	if space < 0 {
		return 0
	}
	return space
}

// sbAppend queues a received chain on the socket's receive buffer. It
// reports false (and the caller drops the data) when the buffer is full.
func (n *Net) sbAppend(so *Socket, chain *mem.Mbuf, payload []byte) bool {
	ok := false
	n.k.Call(n.fnSbAppend, func() {
		s := n.k.SplNet()
		n.k.Advance(costSbAppend)
		if so.rcvBytes+len(payload) > so.RcvBufCap {
			n.k.SplX(s)
			return
		}
		so.rcvChains = append(so.rcvChains, chain)
		so.rcvData = append(so.rcvData, payload)
		so.rcvBytes += len(payload)
		so.RcvAppended += uint64(len(payload))
		ok = true
		n.k.SplX(s)
	})
	return ok
}

// soWakeup wakes a reader blocked in sbwait.
func (n *Net) soWakeup(so *Socket) {
	n.k.Call(n.fnSoWakeup, func() {
		n.k.Advance(costSoWakeup)
		n.k.Wakeup(&so.rcvChains)
	})
}

// noteAck credits acknowledged bytes back to a blocked sender.
func (so *Socket) noteAck(ack uint32) {
	so.sndUnacked = 0
	so.n.k.Wakeup(&so.sndUnacked)
}

// SoReceive reads up to max payload bytes into the process's buffer,
// blocking (sbwait/tsleep) while the receive buffer is empty. It returns
// the bytes delivered to user space. Must run in process context.
func (n *Net) SoReceive(p *kernel.Proc, so *Socket, max int) []byte {
	return n.SoReceiveInto(p, so, max, nil)
}

// SoReceiveInto is SoReceive appending into buf (which may be nil), so a
// read-and-discard loop can reuse one scratch buffer across reads instead of
// allocating the return slice every time.
func (n *Net) SoReceiveInto(p *kernel.Proc, so *Socket, max int, buf []byte) []byte {
	out := buf[:0]
	n.k.Call(n.fnSoReceive, func() {
		n.k.Advance(costSoReceiveBody)
		s := n.k.SplNet()
		for so.rcvBytes == 0 {
			n.k.SplX(s)
			n.sbWait(so)
			s = n.k.SplNet()
		}
		for len(out) < max && so.rcvHead < len(so.rcvChains) {
			chain := so.rcvChains[so.rcvHead]
			data := so.rcvData[so.rcvHead]
			if len(out)+len(data) > max && len(out) > 0 {
				break // next chain doesn't fit; deliver what we have
			}
			so.rcvChains[so.rcvHead] = nil
			so.rcvData[so.rcvHead] = nil
			so.rcvHead++
			if so.rcvHead == len(so.rcvChains) {
				so.rcvChains = so.rcvChains[:0]
				so.rcvData = so.rcvData[:0]
				so.rcvHead = 0
			}
			so.rcvBytes -= len(data)
			so.RcvRead += uint64(len(data))
			n.k.SplX(s)
			// Copy to user space cluster by cluster and free the chain.
			// External mbufs (data still in controller memory, the
			// what-if configuration) pay the bus penalty here too.
			for m := chain; m != nil; m = m.Next {
				if m.Len > 0 {
					if m.Region != bus.MainMemory {
						n.k.Advance(sim.Time(m.Len) *
							(bus.NsPerByte(m.Region) - bus.NsPerByte(bus.MainMemory)))
					}
					n.k.Copyout(m.Len)
				}
			}
			// Copy the payload out BEFORE freeing the chain: the free
			// recycles the frame buffer data points into.
			out = append(out, data...)
			n.pool.MFreeChain(chain)
			s = n.k.SplNet()
		}
		n.k.SplX(s)
	})
	// Reading opened the receive window; tell the peer (the window-update
	// ACK real TCP sends when space becomes available again).
	if so.Proto == ProtoTCP && so.tcb.peer != 0 && len(out) > 0 {
		n.tcpAck(so)
	}
	return out
}

// sbWait blocks the reading process until data arrives.
func (n *Net) sbWait(so *Socket) {
	n.k.Call(n.fnSbWait, func() {
		n.k.Advance(costSbWait)
		n.k.Tsleep(&so.rcvChains, "sbwait", 0)
	})
}

// SoSend transmits payload over the socket's connection in MSS-sized
// segments, blocking for the ACK after each window — the FTP-style sender
// of the filesystem study. It must run in process context. It returns the
// number of segments sent.
func (n *Net) SoSend(p *kernel.Proc, so *Socket, payload []byte) int {
	segs := 0
	n.k.Call(n.fnSoSend, func() {
		n.k.Advance(costSoSendBody)
		const mss = 1460
		const window = 4096
		for off := 0; off < len(payload); off += mss {
			end := off + mss
			if end > len(payload) {
				end = len(payload)
			}
			chunk := payload[off:end]
			n.k.Copyin(len(chunk))
			if so.sndUnacked+len(chunk) > window {
				// Window full: sleep until the peer's ACK arrives (or a
				// short timeout — the simulated peers of the FTP study
				// ack out-of-band).
				n.k.Tsleep(&so.sndUnacked, "sbwait", 5)
				so.sndUnacked = 0
			}
			so.sndUnacked += len(chunk)
			if so.Proto == ProtoUDP {
				n.udpOutput(so, chunk)
			} else {
				n.tcpOutput(so, chunk, FlagACK)
			}
			segs++
		}
	})
	return segs
}

// RcvBuffered reports bytes waiting in the receive buffer (for tests).
func (so *Socket) RcvBuffered() int { return so.rcvBytes }

// freeChain releases a receive chain.
func (n *Net) freeChain(chain *mem.Mbuf) {
	if chain != nil {
		n.pool.MFreeChain(chain)
	}
}
