package netstack

import (
	"testing"
	"testing/quick"
)

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2,
	// checksum is its complement 220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(data); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestInternetChecksumOddLength(t *testing.T) {
	// Odd final byte is padded with zero on the right.
	even := InternetChecksum([]byte{0xAB, 0x00})
	odd := InternetChecksum([]byte{0xAB})
	if even != odd {
		t.Fatalf("odd-length handling: %#x vs %#x", odd, even)
	}
}

func TestInternetChecksumEmpty(t *testing.T) {
	if got := InternetChecksum(nil); got != 0xffff {
		t.Fatalf("checksum(nil) = %#x", got)
	}
}

// Property: appending the complement of the sum makes the data verify.
func TestChecksumVerifyProperty(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		sum := InternetChecksum(data)
		withSum := append(append([]byte{}, data...), byte(sum>>8), byte(sum))
		return checksumValid(withSum)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{TotalLen: 1500, ID: 42, TTL: 64, Proto: ProtoTCP, Src: PCAddr, Dst: SparcAddr}
	b := h.Marshal()
	if len(b) != IPHdrLen {
		t.Fatalf("marshal length = %d", len(b))
	}
	got, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	h := IPv4Header{TotalLen: 100, TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2}
	b := h.Marshal()
	b[4] ^= 0xFF // flip the ID field
	if _, err := ParseIPv4(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
	if _, err := ParseIPv4(b[:10]); err == nil {
		t.Fatal("short header accepted")
	}
	b2 := h.Marshal()
	b2[0] = 0x46 // IHL 6: options unsupported
	if _, err := ParseIPv4(b2); err == nil {
		t.Fatal("options header accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 1023, DstPort: 5001, Seq: 1000, Ack: 2000, Flags: FlagACK, Window: 4096}
	payload := []byte("hello kernel profiling world")
	b := h.Marshal(SparcAddr, PCAddr, payload)
	got, data, err := ParseTCP(SparcAddr, PCAddr, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header: %+v != %+v", got, h)
	}
	if string(data) != string(payload) {
		t.Fatalf("payload mismatch: %q", data)
	}
}

func TestTCPChecksumCoversPseudoHeader(t *testing.T) {
	h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: 3}
	b := h.Marshal(SparcAddr, PCAddr, []byte("data"))
	// Same bytes, wrong addresses: checksum must fail.
	if _, _, err := ParseTCP(SparcAddr, PCAddr+1, b); err == nil {
		t.Fatal("segment accepted with wrong destination address")
	}
}

func TestTCPPayloadCorruptionDetected(t *testing.T) {
	h := TCPHeader{SrcPort: 1, DstPort: 2}
	b := h.Marshal(1, 2, []byte{1, 2, 3, 4, 5})
	b[len(b)-1] ^= 0x01
	if _, _, err := ParseTCP(1, 2, b); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if _, _, err := ParseTCP(1, 2, b[:10]); err == nil {
		t.Fatal("short segment accepted")
	}
}

func TestUDPRoundTripWithChecksum(t *testing.T) {
	h := UDPHeader{SrcPort: 997, DstPort: 2049}
	b := h.Marshal(SparcAddr, PCAddr, []byte("rpc call"), true)
	got, data, hadCksum, err := ParseUDP(SparcAddr, PCAddr, b)
	if err != nil {
		t.Fatal(err)
	}
	if !hadCksum {
		t.Fatal("checksum not present")
	}
	if got != h || string(data) != "rpc call" {
		t.Fatalf("round trip: %+v %q", got, data)
	}
	b[9] ^= 0xFF
	if _, _, _, err := ParseUDP(SparcAddr, PCAddr, b); err == nil {
		t.Fatal("corrupted datagram accepted")
	}
}

func TestUDPWithoutChecksumSkipsVerification(t *testing.T) {
	h := UDPHeader{SrcPort: 997, DstPort: 2049}
	b := h.Marshal(SparcAddr, PCAddr, []byte("nfs data"), false)
	b[9] ^= 0xFF // corrupt payload: must still be accepted (no checksum)
	_, data, hadCksum, err := ParseUDP(SparcAddr, PCAddr, b)
	if err != nil {
		t.Fatal(err)
	}
	if hadCksum {
		t.Fatal("claims checksum present")
	}
	if len(data) != 8 {
		t.Fatalf("payload length %d", len(data))
	}
}

func TestUDPLengthValidation(t *testing.T) {
	if _, _, _, err := ParseUDP(1, 2, []byte{0, 1, 0, 2}); err == nil {
		t.Fatal("short datagram accepted")
	}
	h := UDPHeader{SrcPort: 1, DstPort: 2}
	b := h.Marshal(1, 2, []byte("xx"), false)
	b[5] = 200 // length larger than the buffer
	if _, _, _, err := ParseUDP(1, 2, b); err == nil {
		t.Fatal("overlong length accepted")
	}
}

// Property: TCP marshal/parse round-trips arbitrary payloads and detects
// any single-bit flip.
func TestTCPRoundTripProperty(t *testing.T) {
	prop := func(src, dst uint32, sport, dport uint16, seq uint32, payload []byte, flipBit uint16) bool {
		h := TCPHeader{SrcPort: sport, DstPort: dport, Seq: seq, Flags: FlagACK, Window: 1024}
		b := h.Marshal(src, dst, payload)
		got, data, err := ParseTCP(src, dst, b)
		if err != nil || got.SrcPort != sport || got.DstPort != dport || got.Seq != seq {
			return false
		}
		if len(data) != len(payload) {
			return false
		}
		// Single bit flip anywhere must be detected... except a flip that
		// turns 0x0000 into 0xFFFF in a 16-bit word can alias in one's
		// complement; flipping one bit never does that, but a flip in the
		// checksum field itself combined with data is still detected.
		pos := int(flipBit) % (len(b) * 8)
		b[pos/8] ^= 1 << (pos % 8)
		_, _, err = ParseTCP(src, dst, b)
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
