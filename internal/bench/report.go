package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// DefaultTolerancePct is the regression gate: a hot path may not get
// slower than the previous artifact by more than this percentage.
const DefaultTolerancePct = 15

// wallNoisyFactor widens the wall-clock tolerance for benchmarks marked
// WallNoisy: their timings carry scheduler and GC noise a best-of pass
// cannot clip on a one-core host, so only gross slowdowns are actionable.
const wallNoisyFactor = 3

// allocEpsilon absorbs sub-allocation jitter (a one-off pool growth, a map
// rehash landing inside the measured window) when comparing allocs/record:
// regressions smaller than this absolute delta are noise, not churn.
const allocEpsilon = 0.05

// WriteJSON serializes the report, indented and newline-terminated, so the
// committed BENCH_N.json artifacts diff cleanly.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadFile loads a BENCH_N.json artifact.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Regression is one benchmark that got worse between two artifacts.
type Regression struct {
	// Name is the benchmark; Metric is which figure regressed
	// ("ns_per_record" or "allocs_per_record").
	Name   string
	Metric string
	// Old and New are the compared values; Pct is the relative growth.
	Old float64
	New float64
	Pct float64
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %s %.3f -> %.3f (+%.1f%%)", g.Name, g.Metric, g.Old, g.New, g.Pct)
}

// Compare gates new against old: every benchmark present in both reports
// must not regress ns_per_record or allocs_per_record by more than
// tolerancePct (DefaultTolerancePct when 0). Benchmarks only in one report
// are ignored — adding a hot path is not a regression. The returned slice
// is sorted worst first.
func Compare(old, new *Report, tolerancePct float64) []Regression {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	var out []Regression
	for _, ob := range old.Benchmarks {
		nb, ok := new.Find(ob.Name)
		if !ok {
			continue
		}
		nsTol := tolerancePct
		if ob.WallNoisy || nb.WallNoisy {
			nsTol *= wallNoisyFactor
		}
		if ob.NsPerRecord > 0 && nb.NsPerRecord > ob.NsPerRecord*(1+nsTol/100) {
			out = append(out, Regression{
				Name: ob.Name, Metric: "ns_per_record",
				Old: ob.NsPerRecord, New: nb.NsPerRecord,
				Pct: 100 * (nb.NsPerRecord/ob.NsPerRecord - 1),
			})
		}
		// Allocation counts are exact, so the gate is tight: the relative
		// tolerance plus a small absolute epsilon. A path at 0
		// allocs/record must stay at (essentially) 0.
		if nb.AllocsPerRecord > ob.AllocsPerRecord*(1+tolerancePct/100)+allocEpsilon {
			pct := 0.0
			if ob.AllocsPerRecord > 0 {
				pct = 100 * (nb.AllocsPerRecord/ob.AllocsPerRecord - 1)
			}
			out = append(out, Regression{
				Name: ob.Name, Metric: "allocs_per_record",
				Old: ob.AllocsPerRecord, New: nb.AllocsPerRecord, Pct: pct,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pct != out[j].Pct {
			return out[i].Pct > out[j].Pct
		}
		return out[i].Name < out[j].Name
	})
	return out
}
