package bench

import (
	"runtime"
	"testing"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/sweep"
	"kprof/internal/workload"
)

// drainPass runs one full drain-and-stitch capture — boot, pipelined
// recycling drain under the netrecv workload, lean analysis — and reports
// how many records it processed. This is the capture/drain benchmark's
// exact workload.
func drainPass() int {
	m := core.NewMachine(kernel.Config{Seed: 42})
	s, err := core.NewSession(m, core.ProfileConfig{
		Mode:  core.CaptureContinuous,
		Depth: 4096,
		Drain: core.DrainConfig{Pipeline: true, Recycle: true},
	})
	if err != nil {
		panic(err)
	}
	s.Arm()
	if _, err := workload.NetReceive(m, 400*sim.Millisecond); err != nil {
		panic(err)
	}
	s.Disarm()
	return s.AnalyzeLean().Stats.Records
}

// allocsPerRecord measures one pass's heap allocations per processed
// record, after a warm-up pass has filled every package-level pool.
func allocsPerRecord(t *testing.T, pass func() int) float64 {
	t.Helper()
	pass() // warm package-level pools and tables
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	n := pass()
	runtime.ReadMemStats(&m1)
	if n == 0 {
		t.Fatal("pass processed no records")
	}
	allocs := m1.Mallocs - m0.Mallocs
	per := float64(allocs) / float64(n)
	t.Logf("records=%d allocs=%d allocs/record=%.4f bytes/record=%.1f",
		n, allocs, per, float64(m1.TotalAlloc-m0.TotalAlloc)/float64(n))
	return per
}

// TestDrainZeroAlloc holds the drained hot path's allocation discipline as
// an exact ceiling, not just the statistical bench gate: a full pipelined
// recycling drain — boot included — must stay at or under the tentpole's
// 0.05 allocs/record. The steady-state drain loop itself is allocation-
// free (buffers recycle through the readout pool, scheduler events and
// frames through theirs); the residue this ceiling admits is boot and the
// final report. Mirrors analyze's TestSteadyStatePushZeroAlloc one layer
// up.
func TestDrainZeroAlloc(t *testing.T) {
	if per := allocsPerRecord(t, drainPass); per > 0.05 {
		t.Errorf("drained hot path allocates %.4f allocs/record, ceiling 0.05", per)
	}
}

// TestSweepAllocCeiling holds the same discipline for the multi-seed sweep
// (eight booted machines per pass, aggregation included). The bench gate
// pins the tighter 0.05; the unit ceiling leaves headroom for goroutine
// and map-growth jitter across Go releases.
func TestSweepAllocCeiling(t *testing.T) {
	pass := func() int {
		res, err := sweep.Run(sweep.Config{
			Scenario: "netrecv",
			Seeds:    []uint64{1, 2, 3, 4, 5, 6, 7, 8},
			Params:   workload.Params{Duration: 100 * sim.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		total := 0
		for _, r := range res.PerSeed {
			total += r.Records
		}
		return total
	}
	if per := allocsPerRecord(t, pass); per > 0.08 {
		t.Errorf("sweep hot path allocates %.4f allocs/record, ceiling 0.08", per)
	}
}
