package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunQuick exercises the whole suite in its quick configuration: every
// hot path present, sane figures, and the JSON artifact round-trips.
func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite in -short mode")
	}
	rep, err := Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, Schema)
	}
	want := []string{"decode/steady", "decode/full", "capture/drain", "sweep/multiseed", "scenario/proday", "fleet/ingest",
		"pgo/plan", "serve/status_cached", "serve/status_uncached", "serve/sse_fanout"}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(rep.Benchmarks), len(want))
	}
	for _, name := range want {
		b, ok := rep.Find(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		if b.Records <= 0 || b.Iters <= 0 {
			t.Errorf("%s: empty measurement: %+v", name, b)
		}
		if b.NsPerRecord <= 0 || b.RecordsPerSec <= 0 {
			t.Errorf("%s: non-positive timing: %+v", name, b)
		}
		if b.AllocsPerRecord < 0 {
			t.Errorf("%s: negative allocs: %+v", name, b)
		}
		t.Logf("%-16s %8d records  %9.1f ns/rec  %12.0f rec/s  %7.3f allocs/rec  %8.1f B/rec",
			b.Name, b.Records, b.NsPerRecord, b.RecordsPerSec, b.AllocsPerRecord, b.BytesPerRecord)
	}

	// The decode benchmarks chew a full card RAM.
	if b, _ := rep.Find("decode/steady"); b.Records != 16384 {
		t.Errorf("decode/steady records = %d, want 16384", b.Records)
	}

	// Round-trip through the JSON artifact.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round-trip lost benchmarks: %d != %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	if regs := Compare(rep, back, 0); len(regs) != 0 {
		t.Fatalf("report does not compare clean against itself: %v", regs)
	}
}

// TestCompare drives the regression gate over synthetic reports.
func TestCompare(t *testing.T) {
	old := &Report{Schema: Schema, Benchmarks: []Result{
		{Name: "decode/steady", NsPerRecord: 100, AllocsPerRecord: 0},
		{Name: "decode/full", NsPerRecord: 200, AllocsPerRecord: 1.0},
		{Name: "gone", NsPerRecord: 50},
	}}
	fresh := &Report{Schema: Schema, Benchmarks: []Result{
		{Name: "decode/steady", NsPerRecord: 110, AllocsPerRecord: 0.01}, // within 15% + epsilon
		{Name: "decode/full", NsPerRecord: 200, AllocsPerRecord: 1.0},
		{Name: "new-path", NsPerRecord: 999},
	}}
	if regs := Compare(old, fresh, 0); len(regs) != 0 {
		t.Fatalf("clean comparison flagged: %v", regs)
	}

	fresh.Benchmarks[0].NsPerRecord = 120 // +20%
	fresh.Benchmarks[1].AllocsPerRecord = 1.3
	regs := Compare(old, fresh, 0)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	// Worst first: allocs +30% sorts above ns +20%.
	if regs[0].Name != "decode/full" || regs[0].Metric != "allocs_per_record" {
		t.Errorf("worst regression = %+v", regs[0])
	}
	if regs[1].Name != "decode/steady" || regs[1].Metric != "ns_per_record" {
		t.Errorf("second regression = %+v", regs[1])
	}

	// A path that was allocation-free must stay that way regardless of the
	// relative tolerance (0 * anything is 0).
	fresh.Benchmarks[0].NsPerRecord = 100
	fresh.Benchmarks[1].AllocsPerRecord = 1.0
	fresh.Benchmarks[0].AllocsPerRecord = 0.5
	regs = Compare(old, fresh, 0)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_record" || regs[0].Name != "decode/steady" {
		t.Fatalf("alloc-free regression not caught: %v", regs)
	}

	// A WallNoisy benchmark gets the widened wall-clock tolerance (3× the
	// gate) but no slack at all on its exact allocation figures.
	old.Benchmarks = append(old.Benchmarks,
		Result{Name: "sweep/multiseed", NsPerRecord: 100, AllocsPerRecord: 0.4, WallNoisy: true})
	fresh.Benchmarks[0] = Result{Name: "decode/steady", NsPerRecord: 100, AllocsPerRecord: 0}
	fresh.Benchmarks = append(fresh.Benchmarks,
		Result{Name: "sweep/multiseed", NsPerRecord: 140, AllocsPerRecord: 0.4, WallNoisy: true})
	if regs := Compare(old, fresh, 0); len(regs) != 0 {
		t.Fatalf("wall-noisy +40%% inside widened tolerance flagged: %v", regs)
	}
	fresh.Benchmarks[len(fresh.Benchmarks)-1].NsPerRecord = 150 // past 3×15%
	fresh.Benchmarks[len(fresh.Benchmarks)-1].AllocsPerRecord = 0.6
	regs = Compare(old, fresh, 0)
	if len(regs) != 2 {
		t.Fatalf("wall-noisy gross regression not caught on both metrics: %v", regs)
	}

	// Schema mismatch on read.
	path := filepath.Join(t.TempDir(), "bad.json")
	raw, _ := json.Marshal(map[string]any{"schema": "other/1"})
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}
