// Package bench is the repository's performance-trajectory harness: a
// deterministic benchmark runner that measures end-to-end throughput of the
// three analysis hot paths — streaming decode+repair, drain-and-stitch
// continuous capture, and the parallel multi-seed sweep — and emits a
// schema'd JSON artifact (BENCH_N.json) that scripts/bench_check.sh gates
// regressions against.
//
// "Deterministic" means the measured work is fixed bit for bit: every
// benchmark drives fixed (scenario, seed) pairs through the simulator, so
// two runs process exactly the same records and allocate exactly the same
// objects. Wall-clock figures still carry host noise, which the runner
// damps by taking the best of several interleaved passes; allocation
// figures are exact.
//
// The paper's premise is that measurement overhead must be small enough to
// trust (~400 ns per trigger, 1-1.2% CPU); this harness holds the analysis
// layer to the same standard, starting with the claim that the steady-state
// decode+reconstruct path allocates nothing per record.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/fleet"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/pgo"
	"kprof/internal/sim"
	"kprof/internal/sweep"
	"kprof/internal/workload"
)

// Schema identifies the report format; bump it when fields change meaning.
const Schema = "kprof-bench/1"

// Config tunes a benchmark run.
type Config struct {
	// Quick trims iteration counts so the suite finishes faster — the
	// configuration check-in gating (scripts/bench_check.sh) uses. The work
	// per iteration is identical to the full configuration (same captures,
	// same simulated durations, same seed sets), so quick and full reports
	// compare like for like per record; only the sample counts shrink, which
	// costs a little wall-clock stability.
	Quick bool
	// Seed is the base simulation seed; 0 means 42 (the golden-capture
	// seed, so the decode benchmarks chew the same records the golden
	// tests verify).
	Seed uint64
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the hot path, e.g. "decode/steady".
	Name string `json:"name"`
	// Records is the number of work units one iteration processes —
	// records for the decode/capture/sweep rows, segments for
	// fleet/ingest (whose per-unit figures therefore read as ns/segment
	// and allocs/segment).
	Records int `json:"records"`
	// Iters is how many measured iterations ran (after warmup).
	Iters int `json:"iters"`
	// NsPerRecord is wall nanoseconds per record (best measured pass).
	NsPerRecord float64 `json:"ns_per_record"`
	// RecordsPerSec is the throughput implied by NsPerRecord.
	RecordsPerSec float64 `json:"records_per_sec"`
	// AllocsPerRecord is heap allocations per record (exact, not sampled).
	AllocsPerRecord float64 `json:"allocs_per_record"`
	// BytesPerRecord is heap bytes per record.
	BytesPerRecord float64 `json:"bytes_per_record"`
	// WallNoisy marks end-to-end benchmarks whose wall time includes
	// goroutine scheduling and GC placement (the parallel sweep, the
	// pipelined drain) — run-to-run swings of tens of percent on a small
	// host. Compare widens the wall-clock tolerance for these; the
	// allocation gate stays tight since those figures are exact.
	WallNoisy bool `json:"wall_noisy,omitempty"`
}

// Report is the full benchmark artifact serialized as BENCH_N.json.
type Report struct {
	// Schema is the format tag (see Schema).
	Schema string `json:"schema"`
	// Quick records which configuration produced the numbers. Quick and
	// full reports are comparable per benchmark name — the work per
	// iteration is identical — which is how bench_check gates a quick run
	// against the committed full artifact.
	Quick bool `json:"quick"`
	// Seed is the base simulation seed the workloads ran under.
	Seed uint64 `json:"seed"`
	// GoVersion, GOOS, GOARCH and GOMAXPROCS describe the host, for
	// reading historical artifacts in context.
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchmarks holds one Result per hot path, in run order.
	Benchmarks []Result `json:"benchmarks"`
}

// Find looks a benchmark up by name.
func (r *Report) Find(name string) (Result, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Result{}, false
}

// measure times iters passes of fn (after warmup warm passes), reporting
// wall time from the best pass — the one least disturbed by the host — and
// exact allocation counts averaged over the measured passes.
func measure(name string, records, warmup, iters int, fn func()) Result {
	for i := 0; i < warmup; i++ {
		fn()
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&ms1)
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	bytes := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
	nsRec := float64(best.Nanoseconds()) / float64(records)
	res := Result{
		Name:            name,
		Records:         records,
		Iters:           iters,
		NsPerRecord:     nsRec,
		AllocsPerRecord: allocs / float64(records),
		BytesPerRecord:  bytes / float64(records),
	}
	if nsRec > 0 {
		res.RecordsPerSec = 1e9 / nsRec
	}
	return res
}

// fillCapture runs the netrecv scenario until the card RAM fills, returning
// the raw capture and its tag file — the fixed record stream every decode
// benchmark chews.
func fillCapture(seed uint64) (hw.Capture, *core.Session, error) {
	m := core.NewMachine(kernel.Config{Seed: seed})
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		return hw.Capture{}, nil, err
	}
	s.Arm()
	if _, err := workload.NetReceive(m, 2*sim.Second); err != nil {
		return hw.Capture{}, nil, err
	}
	s.Disarm()
	c := s.Capture()
	if c.Len() == 0 {
		return hw.Capture{}, nil, fmt.Errorf("bench: empty capture")
	}
	return c, s, nil
}

// Run executes the benchmark suite and assembles the report.
func Run(cfg Config) (*Report, error) {
	rep := &Report{
		Schema:     Schema,
		Quick:      cfg.Quick,
		Seed:       cfg.seed(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	c, s, err := fillCapture(cfg.seed())
	if err != nil {
		return nil, err
	}

	// decode/steady: the per-record cost of Decoder.Push plus
	// reconstructor.feed once every pool and table has warmed up — the
	// number the paper's "analysis must keep up with ingest" argument
	// cares about, and the allocation-free claim's gate (0 allocs/record).
	// One lean reconstructor absorbs the capture over and over; state
	// (function table, node pool, stacks) reaches its limit cycle during
	// warmup, so the measured passes run on reused memory only.
	steadyIters := 40
	if cfg.Quick {
		steadyIters = 10
	}
	rc := analyze.NewReconstructor(c.ClockConfig(), s.Tags, analyze.ReconstructOptions{
		DiscardEvents: true,
		DiscardTrace:  true,
		Repair:        analyze.DefaultRepair(),
	})
	pass := func() {
		for _, r := range c.Records {
			rc.Push(r)
		}
	}
	rep.Benchmarks = append(rep.Benchmarks,
		measure("decode/steady", c.Len(), 3, steadyIters, pass))

	// decode/full: a cold streaming reconstruction per iteration —
	// constructor, every record, Finish — the cost a sweep worker pays to
	// turn one card RAM into per-function statistics.
	fullIters := 40
	if cfg.Quick {
		fullIters = 10
	}
	var sink *analyze.Analysis
	rep.Benchmarks = append(rep.Benchmarks,
		measure("decode/full", c.Len(), 2, fullIters, func() {
			rc := analyze.NewReconstructor(c.ClockConfig(), s.Tags, analyze.ReconstructOptions{
				DiscardEvents: true,
				DiscardTrace:  true,
				Repair:        analyze.DefaultRepair(),
			})
			for _, r := range c.Records {
				rc.Push(r)
			}
			sink = rc.Finish(c.Overflowed, c.Dropped)
		}))
	if sink == nil || sink.Stats.Records != c.Len() {
		return nil, fmt.Errorf("bench: decode/full dropped records")
	}

	// capture/drain: the drain-and-stitch pipeline end to end — simulate,
	// poll, drain through the EPROM socket, and decode the segments as
	// they arrive (readout overlapping decode), measured per captured
	// record. The simulator dominates; the figure tracks the whole
	// pipeline, not the decoder alone.
	drainDur := 400 * sim.Millisecond
	drainIters := 5
	if cfg.Quick {
		drainIters = 3
	}
	var drainRecords int
	drainPass := func() {
		m := core.NewMachine(kernel.Config{Seed: cfg.seed()})
		ds, err := core.NewSession(m, core.ProfileConfig{
			Mode:  core.CaptureContinuous,
			Depth: 4096,
			Drain: core.DrainConfig{Pipeline: true, Recycle: true},
		})
		if err != nil {
			panic(err)
		}
		ds.Arm()
		if _, err := workload.NetReceive(m, drainDur); err != nil {
			panic(err)
		}
		ds.Disarm()
		a := ds.AnalyzeLean()
		drainRecords = a.Stats.Records
	}
	drainPass() // size the iteration before measuring
	drainRes := measure("capture/drain", drainRecords, 1, drainIters, drainPass)
	drainRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, drainRes)

	// sweep/multiseed: the parallel sweep engine end to end, measured per
	// record decoded across all seeds.
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	sweepDur := 100 * sim.Millisecond
	sweepIters := 3
	if cfg.Quick {
		sweepIters = 2
	}
	var sweepRecords int
	sweepPass := func() {
		res, err := sweep.Run(sweep.Config{
			Scenario: "netrecv",
			Seeds:    seeds,
			Params:   workload.Params{Duration: sweepDur},
		})
		if err != nil {
			panic(err)
		}
		sweepRecords = 0
		for _, r := range res.PerSeed {
			sweepRecords += r.Records
		}
	}
	sweepPass()
	sweepRes := measure("sweep/multiseed", sweepRecords, 1, sweepIters, sweepPass)
	sweepRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, sweepRes)

	// scenario/proday: the production-day scenario end to end — open-loop
	// load generation, thousands of events across six kernel subsystems,
	// continuous drain capture, lean analysis — measured per captured
	// record. This is the heaviest simulate+capture path in the repo; the
	// figure tracks whether the whole stack (loadgen, workload drivers,
	// drain pipeline, decoder) keeps up with a saturated machine.
	prodayParams := workload.Params{
		Duration: 400 * sim.Millisecond,
		Conns:    100,
		Rate:     300,
	}
	prodayIters := 4
	if cfg.Quick {
		prodayIters = 2
	}
	var prodayRecords int
	prodayPass := func() {
		m := core.NewMachine(kernel.Config{Seed: cfg.seed()})
		if err := workload.ProdaySetup(m, prodayParams); err != nil {
			panic(err)
		}
		ps, err := core.NewSession(m, core.ProfileConfig{
			Mode:  core.CaptureContinuous,
			Depth: 4096,
			Drain: core.DrainConfig{Pipeline: true, Recycle: true},
		})
		if err != nil {
			panic(err)
		}
		ps.Arm()
		if _, err := workload.Proday(m, prodayParams); err != nil {
			panic(err)
		}
		ps.Disarm()
		a := ps.AnalyzeLean()
		if a.Stats.Dropped != 0 {
			panic(fmt.Sprintf("bench: proday drain lost %d strobes", a.Stats.Dropped))
		}
		prodayRecords = a.Stats.Records
	}
	prodayPass()
	prodayRes := measure("scenario/proday", prodayRecords, 1, prodayIters, prodayPass)
	prodayRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, prodayRes)

	// fleet/ingest: the fleet ingest pipeline over pre-recorded segment
	// streams — per-machine streaming reconstruction, delta sampling,
	// staging, checkpointed projection, windowed merge — isolated from the
	// machine simulation by replaying four machines recorded once up
	// front. The unit is one SEGMENT, not one record: Records carries the
	// fleet's total segment count, so NsPerRecord reads as ns/segment (and
	// AllocsPerRecord as allocs/segment) in this row.
	fleetIters := 6
	if cfg.Quick {
		fleetIters = 3
	}
	fleetSources := make([]fleet.Source, 4)
	fleetMachines := make([]fleet.MachineConfig, 4)
	for i := range fleetSources {
		mc := fleet.MachineConfig{
			ID:       i,
			Seed:     cfg.seed() + uint64(i),
			Scenario: "netrecv",
			Params:   workload.Params{Duration: 200 * sim.Millisecond},
			Depth:    4096,
		}
		fleetMachines[i] = mc
		rs, err := fleet.Record(mc)
		if err != nil {
			return nil, err
		}
		fleetSources[i] = rs
	}
	var fleetSegments int
	fleetPass := func() {
		res, err := fleet.RunSources(fleet.Config{
			Machines: fleetMachines,
			Window:   50 * sim.Millisecond,
			Workers:  2,
		}, fleetSources)
		if err != nil {
			panic(err)
		}
		fleetSegments = res.Segments
	}
	fleetPass()
	if fleetSegments == 0 {
		return nil, fmt.Errorf("bench: fleet/ingest produced no segments")
	}
	fleetRes := measure("fleet/ingest", fleetSegments, 1, fleetIters, fleetPass)
	fleetRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, fleetRes)

	// pgo/plan: the instrumentation-budget optimizer — the exact
	// branch-and-bound search choosing which functions the next profile
	// should instrument — over the warm capture's full candidate set with
	// both the tag and the trigger-overhead constraint active. The unit is
	// one candidate function, so NsPerRecord reads as ns/candidate; the
	// figure gates the solver staying interactive as the kernel's function
	// census grows.
	cands := pgo.CandidatesFromAnalysis(sink, nil)
	if len(cands) == 0 {
		return nil, fmt.Errorf("bench: pgo/plan has no candidates")
	}
	planIters := 300
	if cfg.Quick {
		planIters = 100
	}
	var plan *pgo.Plan
	planPass := func() {
		plan = pgo.Optimize(cands, pgo.Budget{Tags: 16, OverheadNs: 2_000_000})
	}
	planPass()
	if plan == nil || len(plan.Picks) == 0 {
		return nil, fmt.Errorf("bench: pgo/plan picked nothing")
	}
	rep.Benchmarks = append(rep.Benchmarks,
		measure("pgo/plan", len(cands), 10, planIters, planPass))

	// serve/*: the live serving tier — cached vs uncached status requests
	// and SSE fan-out (serve.go).
	if err := serveBenchmarks(cfg, rep); err != nil {
		return nil, err
	}

	return rep, nil
}
