package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"

	"kprof/internal/core"
	"kprof/internal/export"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// Serving-tier benchmarks: the cost of watching a capture. Three rows,
// all with request (or event delivery) as the unit, so NsPerRecord reads
// as ns/request and RecordsPerSec as requests/sec:
//
//   - serve/status_cached: steady-state /status.json revalidation — every
//     request presents the current ETag and earns a 304 off the
//     generation counter, no render, no snapshot lock.
//   - serve/status_uncached: every request preceded by a progress hook, so
//     every response is a full re-render and marshal of the snapshot. The
//     cached/uncached ratio is the cache's value; EXPERIMENTS.md E22
//     tracks it.
//   - serve/sse_fanout: publishing through the bounded hub to a standing
//     crowd of in-process subscribers; the unit is one delivered event.

// nullRW is a ResponseWriter that only counts, so the rows measure the
// serving tier rather than a recorder's buffer management.
type nullRW struct {
	h    http.Header
	code int
	n    int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *nullRW) WriteHeader(code int)        { w.code = code }

// serveBenchmarks appends the serving-tier rows to the report. The
// fixture is a short production-day capture whose progress hooks feed a
// live StatusServer, exactly as cmd/kprof wires it.
func serveBenchmarks(cfg Config, rep *Report) error {
	srv := export.NewStatusServer()
	srv.SetScenario("proday")
	params := workload.Params{Duration: 100 * sim.Millisecond, Conns: 50, Rate: 300}
	m := core.NewMachine(kernel.Config{Seed: cfg.seed()})
	if err := workload.ProdaySetup(m, params); err != nil {
		return err
	}
	s, err := core.NewSession(m, core.ProfileConfig{
		Mode:  core.CaptureContinuous,
		Depth: 4096,
		Drain: core.DrainConfig{Pipeline: true, Recycle: true},
	})
	if err != nil {
		return err
	}
	var last core.Progress
	s.SetProgress(func(p core.Progress) { last = p; srv.OnSessionProgress(p) })
	s.Arm()
	if _, err := workload.Proday(m, params); err != nil {
		return err
	}
	s.Disarm()
	if err := s.DrainErr(); err != nil {
		return err
	}
	if last.Gen == 0 {
		return fmt.Errorf("bench: serve fixture saw no progress")
	}

	// Request count per pass is identical in quick and full mode so the
	// per-request allocation figures compare exactly; only the pass
	// counts shrink.
	h := srv.Handler()
	const requests = 5000
	statusIters, sseIters := 8, 6
	if cfg.Quick {
		statusIters, sseIters = 2, 2
	}

	// serve/status_cached: prime the cache once, then revalidate with the
	// current tag. The server is not mutated between requests, so every
	// one is the 304 fast path.
	w := &nullRW{h: make(http.Header)}
	req := httptest.NewRequest("GET", "/status.json", nil)
	h.ServeHTTP(w, req)
	etag := w.h.Get("ETag")
	if etag == "" || w.n == 0 {
		return fmt.Errorf("bench: priming GET served no ETag/body")
	}
	req.Header.Set("If-None-Match", etag)
	cachedPass := func() {
		for i := 0; i < requests; i++ {
			w.code = 0
			h.ServeHTTP(w, req)
			if w.code != http.StatusNotModified {
				panic(fmt.Sprintf("bench: cached GET answered %d, want 304", w.code))
			}
		}
	}
	cachedRes := measure("serve/status_cached", requests, 2, statusIters, cachedPass)
	cachedRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, cachedRes)

	// serve/status_uncached: a progress hook lands before every request,
	// so every response re-renders the snapshot.
	reqU := httptest.NewRequest("GET", "/status.json", nil)
	uncachedPass := func() {
		for i := 0; i < requests; i++ {
			srv.OnSessionProgress(last)
			w.code, w.n = 0, 0
			h.ServeHTTP(w, reqU)
			if w.n == 0 {
				panic("bench: uncached GET served no body")
			}
		}
	}
	uncachedRes := measure("serve/status_uncached", requests, 2, statusIters, uncachedPass)
	uncachedRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, uncachedRes)

	// serve/sse_fanout: one pass subscribes the crowd, publishes the event
	// stream through the hub (buffers sized so nobody is evicted — the
	// eviction path is the hub test battery's business, not a throughput
	// row), and disconnects. Records counts deliveries: subscribers ×
	// events.
	// Crowd size and event count are identical in quick and full mode —
	// per-delivery allocation figures must compare exactly across
	// configurations; only the pass count shrinks.
	const subs, events = 50, 400
	ssePass := func() {
		fan := export.NewStatusServer()
		fan.SetEventBuffer(events + 1)
		crowd := make([]*export.Subscription, subs)
		for i := range crowd {
			crowd[i] = fan.Subscribe()
		}
		for i := 0; i < events; i++ {
			fan.OnSessionProgress(last)
		}
		if st := fan.HubStats(); st.SlowDropped != 0 || st.Published != uint64(events) {
			panic(fmt.Sprintf("bench: sse pass dropped subscribers or lost events: %+v", st))
		}
		for _, sub := range crowd {
			sub.Close()
		}
	}
	sseRes := measure("serve/sse_fanout", subs*events, 1, sseIters, ssePass)
	sseRes.WallNoisy = true
	rep.Benchmarks = append(rep.Benchmarks, sseRes)

	return nil
}
