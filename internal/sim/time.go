// Package sim provides the deterministic discrete-event substrate that the
// simulated kernel and the Profiler hardware model are built on: a virtual
// clock, an event scheduler with stable FIFO ordering for simultaneous
// events, and a seeded pseudo-random number generator.
//
// All of kprof's timing is virtual. Nothing in this package reads the wall
// clock, so a simulation run is a pure function of its inputs and seed.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. It doubles as a duration; the arithmetic is ordinary
// integer arithmetic.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t truncated to whole microseconds. The Profiler's 1 MHz
// counter sees time at this granularity.
func (t Time) Micros() int64 { return int64(t / Microsecond) }

// String formats the time the way the paper's code-path traces do:
// "S:mmm uuu" (seconds, milliseconds, microseconds), e.g. "0:005 074".
func (t Time) String() string {
	us := t.Micros()
	neg := ""
	if us < 0 {
		neg, us = "-", -us
	}
	return fmt.Sprintf("%s%d:%03d %03d", neg, us/1e6, us/1e3%1e3, us%1e3)
}

// DurationString formats t as a plain microsecond count ("1045 us"), used in
// report bodies where the paper prints interval times.
func (t Time) DurationString() string {
	return fmt.Sprintf("%d us", t.Micros())
}
