package sim

// Rand is a small, fast, deterministic PRNG (splitmix64). The simulation
// uses it for workload jitter, disk seek distances and the like; seeding it
// identically reproduces a run bit-for-bit.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform virtual duration in [min, max].
func (r *Rand) Duration(min, max Time) Time {
	if max < min {
		panic("sim: Duration with max < min")
	}
	if max == min {
		return min
	}
	return min + Time(r.Int63n(int64(max-min)+1))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
