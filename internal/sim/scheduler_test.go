package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatalf("unit constants wrong: %d %d %d", Second, Millisecond, Microsecond)
	}
	if got := (5*Millisecond + 74*Microsecond).Micros(); got != 5074 {
		t.Fatalf("Micros = %d, want 5074", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0:000 000"},
		{5*Millisecond + 74*Microsecond, "0:005 074"},
		{2*Second + 671*Microsecond, "2:000 671"},
		{1*Second + 234*Millisecond + 567*Microsecond, "1:234 567"},
		{999 * Nanosecond, "0:000 000"}, // sub-microsecond truncates
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTimeDurationString(t *testing.T) {
	if got := (1045 * Microsecond).DurationString(); got != "1045 us" {
		t.Fatalf("DurationString = %q", got)
	}
}

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Microsecond, func() { order = append(order, 3) })
	s.At(10*Microsecond, func() { order = append(order, 1) })
	s.At(20*Microsecond, func() { order = append(order, 2) })
	for s.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v", order)
	}
	if s.Now() != 30*Microsecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSchedulerFIFOForSimultaneousEvents(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Microsecond, func() { order = append(order, i) })
	}
	s.Step()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(time10, func() { fired = true })
	if !e.Scheduled() {
		t.Fatal("event not scheduled")
	}
	s.Cancel(e)
	if e.Scheduled() {
		t.Fatal("event still scheduled after cancel")
	}
	for s.Step() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	s.Cancel(e)   // idempotent
	s.Cancel(nil) // nil-safe
	_ = e.When()  // still readable
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

const time10 = 10 * Microsecond

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var fired []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(Time(i)*Microsecond, func() { fired = append(fired, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		s.Cancel(events[i])
	}
	for s.Step() {
	}
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 20-7 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestSchedulerEventsScheduledDuringDispatch(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(10*Microsecond, func() {
		order = append(order, "a")
		// Same-instant event must run in this same RunDue pass.
		s.At(s.Now(), func() { order = append(order, "a2") })
		// Later event runs later.
		s.After(5*Microsecond, func() { order = append(order, "b") })
	})
	for s.Step() {
	}
	want := []string{"a", "a2", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Millisecond, func() { count++ })
	}
	s.RunUntil(5 * Millisecond)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
	s.RunUntil(20 * Millisecond)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if s.Now() != 20*Millisecond {
		t.Fatalf("Now = %v, want 20ms even with no events there", s.Now())
	}
}

func TestSchedulerAdvanceTo(t *testing.T) {
	s := NewScheduler()
	s.AdvanceTo(7 * Microsecond)
	if s.Now() != 7*Microsecond {
		t.Fatalf("Now = %v", s.Now())
	}
	mustPanic(t, func() { s.AdvanceTo(3 * Microsecond) })
	s.At(10*Microsecond, func() {})
	mustPanic(t, func() { s.AdvanceTo(15 * Microsecond) })
}

func TestSchedulerPastAndInvalidScheduling(t *testing.T) {
	s := NewScheduler()
	s.AdvanceTo(time10)
	mustPanic(t, func() { s.At(5*Microsecond, func() {}) })
	mustPanic(t, func() { s.At(20*Microsecond, nil) })
	mustPanic(t, func() { s.After(-1, func() {}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never runs backwards.
func TestSchedulerOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := NewScheduler()
		var times []Time
		for _, d := range delays {
			s.After(Time(d)*Microsecond, func() { times = append(times, s.Now()) })
		}
		for s.Step() {
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	b2 := NewRand(42)
	for i := 0; i < 64; i++ {
		if c.Uint64() == b2.Uint64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1e12); v < 0 || v >= 1e12 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if d := r.Duration(3*Microsecond, 9*Microsecond); d < 3*Microsecond || d > 9*Microsecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if d := r.Duration(5, 5); d != 5 {
		t.Fatalf("Duration(5,5) = %d", d)
	}
	mustPanic(t, func() { r.Intn(0) })
	mustPanic(t, func() { r.Int63n(-1) })
	mustPanic(t, func() { r.Duration(9, 3) })
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(7)
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}
