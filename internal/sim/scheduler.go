package sim

import "container/heap"

// Event is a scheduled callback. Events are one-shot; cancelling an event
// that has already fired is a no-op.
type Event struct {
	when   Time
	seq    uint64 // tie-break so simultaneous events fire in schedule order
	index  int    // heap index, -1 once fired or cancelled
	pooled bool   // recycled by RunDue after firing (AtFree/AfterFree)
	fn     func()
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e.index >= 0 }

// Scheduler is a discrete-event scheduler over virtual time.
//
// It deliberately separates *clock advancement* from *event dispatch*: the
// simulated kernel advances the clock in small cost-model increments and
// asks the scheduler which device events fall inside each increment, so that
// interrupts can preempt kernel code mid-function. Callers that just want to
// run events in order can use Step or RunUntil.
type Scheduler struct {
	now    Time
	events eventHeap
	seq    uint64
	free   []*Event // recycled pooled events (AtFree/AfterFree)
}

// NewScheduler returns a scheduler with the clock at zero and no events.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of scheduled events.
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) panics: it would silently reorder time and is always a bug in
// the caller.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// AtFree schedules fn at absolute time t on a pooled Event that the
// scheduler reclaims the moment it fires. No handle is returned — a pooled
// event cannot be cancelled or rescheduled, because the caller has no way to
// know whether its pointer still means the same scheduling. Use it for
// fire-and-forget work on hot paths; use At when you need Cancel.
func (s *Scheduler) AtFree(t Time, fn func()) {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.when, e.fn = t, fn
	} else {
		e = &Event{when: t, fn: fn, pooled: true}
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// AfterFree is AtFree at d after the current time.
func (s *Scheduler) AfterFree(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.AtFree(s.now+d, fn)
}

// Reschedule re-arms a fired (non-pooled) event at absolute time t, reusing
// its allocation. The event must be idle: rescheduling a still-pending or
// pooled event, or scheduling into the past, panics.
func (s *Scheduler) Reschedule(e *Event, t Time) {
	switch {
	case e == nil || e.fn == nil:
		panic("sim: Reschedule of nil event")
	case e.pooled:
		panic("sim: Reschedule of pooled event")
	case e.index >= 0:
		panic("sim: Reschedule of pending event")
	case t < s.now:
		panic("sim: event scheduled in the past")
	}
	e.when = t
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// Cancel removes a pending event. It is safe to call on an event that has
// already fired or been cancelled.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.events, e.index)
	e.index = -1
}

// NextAt reports the time of the earliest pending event.
func (s *Scheduler) NextAt() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].when, true
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// It panics if an event is pending before t — the caller is responsible for
// draining due events first (see RunDue). Moving backwards panics.
func (s *Scheduler) AdvanceTo(t Time) {
	if t < s.now {
		panic("sim: clock moved backwards")
	}
	if next, ok := s.NextAt(); ok && next < t {
		panic("sim: AdvanceTo would skip a pending event")
	}
	s.now = t
}

// RunDue fires, in order, every event scheduled at or before the current
// time, and reports how many ran. Events scheduled by the fired callbacks at
// the current time are run as well.
func (s *Scheduler) RunDue() int {
	n := 0
	for len(s.events) > 0 && s.events[0].when <= s.now {
		e := heap.Pop(&s.events).(*Event)
		e.index = -1
		e.fn()
		if e.pooled {
			e.fn = nil
			s.free = append(s.free, e)
		}
		n++
	}
	return n
}

// Step advances the clock to the next event and fires every event scheduled
// for that instant. It reports false if no events remain.
func (s *Scheduler) Step() bool {
	next, ok := s.NextAt()
	if !ok {
		return false
	}
	s.now = next
	s.RunDue()
	return true
}

// RunUntil steps the simulation until the clock reaches t or no events
// remain, then sets the clock to t if it is still behind.
func (s *Scheduler) RunUntil(t Time) {
	for {
		next, ok := s.NextAt()
		if !ok || next > t {
			break
		}
		s.now = next
		s.RunDue()
	}
	if s.now < t {
		s.now = t
	}
}

// eventHeap orders events by (when, seq) so simultaneous events preserve
// their scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
