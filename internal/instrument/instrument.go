// Package instrument reproduces the compiler half of the profiling system:
// the modified GNU C compiler that inserts an EPROM-window load at the
// entry (even tag) and exit (tag+1) of every function in the modules being
// profiled, driven by the name/tag file, plus the two-stage link that
// resolves _ProfileBase — the kernel-virtual address of the EPROM window,
// which cannot be known until the kernel's size is known.
//
// Selective profiling falls out of the per-module switch: compiling only
// the modules of interest with profiling enabled is the paper's
// "micro-profiling", and compiling the high-level entry points (syscall,
// VNODE layer) is "macro-profiling".
package instrument

import (
	"fmt"
	"sort"

	"kprof/internal/kernel"
	"kprof/internal/tagfile"
)

// Options selects what to instrument.
type Options struct {
	// Modules restricts instrumentation to these object modules; empty
	// means every module (whole-kernel profiling).
	Modules []string
	// Functions restricts instrumentation to these individual functions,
	// the granularity a budget optimizer works at. When set it composes
	// with Modules: a function is instrumented only if it passes both
	// filters. Empty means no per-function restriction.
	Functions []string
	// Tags is the existing name/tag file to extend; nil starts fresh.
	Tags *tagfile.File
	// ContextSwitchFns name the functions to mark '!' in the tag file;
	// nil defaults to ["swtch"].
	ContextSwitchFns []string
	// Inlines are additional inline ('=') trigger names to allocate,
	// e.g. "MGET".
	Inlines []string
}

// Result is what the "compilation" produced.
type Result struct {
	Tags *tagfile.File

	// CFunctions and AsmFunctions count instrumented routines by origin,
	// the paper's "1392 functions ... 35 assembler routines" accounting.
	CFunctions   int
	AsmFunctions int
	// TriggerPoints counts trigger instructions added (2 per function
	// plus 1 per inline).
	TriggerPoints int

	// InlineAddr maps inline trigger names to their EPROM-window offsets
	// (filled with virtual addresses after Link).
	InlineTags map[string]uint16

	instrumented []instrFn
}

type instrFn struct {
	fn *kernel.Fn
	e  tagfile.Entry
}

// Instrument assigns tags to every selected function in the kernel's
// symbol table, extending the name/tag file exactly as the compiler did.
// Triggers are not armed until Link supplies ProfileBase.
func Instrument(k *kernel.Kernel, opts Options) (*Result, error) {
	tags := opts.Tags
	if tags == nil {
		var err error
		tags, err = tagfile.NewStartingAt(500)
		if err != nil {
			return nil, err
		}
	}
	want := make(map[string]bool, len(opts.Modules))
	for _, m := range opts.Modules {
		want[m] = true
	}
	wantFn := make(map[string]bool, len(opts.Functions))
	for _, f := range opts.Functions {
		wantFn[f] = true
	}
	res := &Result{Tags: tags, InlineTags: make(map[string]uint16)}
	for _, fn := range k.Functions() {
		if len(want) > 0 && !want[fn.Module] {
			fn.ClearTriggers()
			continue
		}
		if len(wantFn) > 0 && !wantFn[fn.Name] {
			fn.ClearTriggers()
			continue
		}
		e, err := tags.Assign(fn.Name)
		if err != nil {
			return nil, fmt.Errorf("instrument: %s: %w", fn.Name, err)
		}
		res.instrumented = append(res.instrumented, instrFn{fn: fn, e: e})
		if fn.Asm {
			res.AsmFunctions++
		} else {
			res.CFunctions++
		}
		res.TriggerPoints += 2
	}
	ctxFns := opts.ContextSwitchFns
	if ctxFns == nil {
		ctxFns = []string{"swtch"}
	}
	for _, name := range ctxFns {
		if _, ok := tags.Lookup(name); ok {
			if err := tags.MarkContextSwitch(name); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range opts.Inlines {
		e, err := tags.AssignInline(name)
		if err != nil {
			return nil, err
		}
		res.InlineTags[name] = e.Tag
		res.TriggerPoints++
	}
	return res, nil
}

// Layout is the 386BSD virtual memory layout the two-stage link must model:
// the kernel is remapped to KernelBase, the last kernel page is rounded up,
// a fixed number of pages (kernel stack, proto udot) follow, and ISA bus
// memory space is remapped directly after.
type Layout struct {
	// KernelSize is the kernel image size in bytes (link stage one
	// measures it).
	KernelSize uint32
	// EPROMPhys is the physical ISA address of the profiler's EPROM
	// window (somewhere in 0xA0000-0x100000).
	EPROMPhys uint32
}

// i386 constants for the layout arithmetic.
const (
	KernelBase   = 0xFE000000
	PageSize     = 4096
	FixedPages   = 3 // kernel stack + proto udot + spare, per the paper's figure
	ISAPhysBase  = 0xA0000
	ISAWindowLen = 0x60000 // 0xA0000..0x100000
)

// Linked is the resolved address map.
type Linked struct {
	// ProfileBase is the kernel-virtual address of the EPROM window: the
	// value the second link stage patches into the assembler stub.
	ProfileBase uint32
	// ISAVirtBase is where ISA memory space begins in kernel VA.
	ISAVirtBase uint32
}

// Link performs the second link stage: compute ProfileBase from the kernel
// size, then patch every instrumented function's trigger instructions with
// their absolute virtual addresses (ProfileBase + tag).
func (r *Result) Link(lay Layout) (*Linked, error) {
	if lay.EPROMPhys < ISAPhysBase || lay.EPROMPhys+tagfile.MaxTag >= ISAPhysBase+ISAWindowLen {
		return nil, fmt.Errorf("instrument: EPROM window %#x outside ISA memory space", lay.EPROMPhys)
	}
	rounded := (lay.KernelSize + PageSize - 1) &^ uint32(PageSize-1)
	isaVirt := KernelBase + rounded + FixedPages*PageSize
	l := &Linked{
		ISAVirtBase: isaVirt,
		ProfileBase: isaVirt + (lay.EPROMPhys - ISAPhysBase),
	}
	for _, in := range r.instrumented {
		in.fn.SetTriggers(l.ProfileBase+uint32(in.e.Tag), l.ProfileBase+uint32(in.e.ExitTag()))
	}
	return l, nil
}

// VirtToPhys translates a kernel-virtual address in the ISA window back to
// the physical bus address the EPROM socket decodes.
func (l *Linked) VirtToPhys(va uint32) uint32 {
	return va - l.ISAVirtBase + ISAPhysBase
}

// InlineAddr reports the virtual trigger address for a named inline tag.
func (r *Result) InlineAddr(l *Linked, name string) (uint32, bool) {
	tag, ok := r.InlineTags[name]
	if !ok {
		return 0, false
	}
	return l.ProfileBase + uint32(tag), true
}

// InstrumentedNames lists the instrumented functions sorted by name (for
// reports and tests).
func (r *Result) InstrumentedNames() []string {
	names := make([]string, 0, len(r.instrumented))
	for _, in := range r.instrumented {
		names = append(names, in.fn.Name)
	}
	sort.Strings(names)
	return names
}

// Functions reports the count of instrumented functions.
func (r *Result) Functions() int { return len(r.instrumented) }
