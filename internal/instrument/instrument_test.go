package instrument

import (
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/tagfile"
)

func newKernelWithFns() *kernel.Kernel {
	k := kernel.New(kernel.Config{Seed: 1})
	k.RegisterFn("net", "ipintr")
	k.RegisterFn("net", "tcp_input")
	k.RegisterFn("fs", "bread")
	return k
}

func TestInstrumentAssignsTagPairs(t *testing.T) {
	k := newKernelWithFns()
	res, err := Instrument(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Functions() == 0 {
		t.Fatal("nothing instrumented")
	}
	// Every registered function received an even tag.
	for _, fn := range k.Functions() {
		e, ok := res.Tags.Lookup(fn.Name)
		if !ok {
			t.Fatalf("%s not in tag file", fn.Name)
		}
		if e.Tag%2 != 0 {
			t.Fatalf("%s got odd tag %d", fn.Name, e.Tag)
		}
	}
	if res.TriggerPoints != 2*res.Functions()+len(res.InlineTags) {
		t.Fatalf("trigger points = %d", res.TriggerPoints)
	}
	// C/asm census covers everything.
	if res.CFunctions+res.AsmFunctions != res.Functions() {
		t.Fatalf("census mismatch: %d + %d != %d", res.CFunctions, res.AsmFunctions, res.Functions())
	}
	if res.AsmFunctions == 0 {
		t.Fatal("core asm routines (bcopy, spl*) not counted")
	}
}

func TestSelectiveModules(t *testing.T) {
	k := newKernelWithFns()
	res, err := Instrument(k, Options{Modules: []string{"net"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Tags.Lookup("ipintr"); !ok {
		t.Fatal("selected module missing")
	}
	if _, ok := res.Tags.Lookup("bread"); ok {
		t.Fatal("unselected module instrumented")
	}
	if _, ok := res.Tags.Lookup("splnet"); ok {
		t.Fatal("core module leaked into selective set")
	}
}

func TestReinstrumentationKeepsStableTags(t *testing.T) {
	k := newKernelWithFns()
	res1, err := Instrument(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tcpTag, _ := res1.Tags.Lookup("tcp_input")

	// Recompile with the same tag file: tags must not move.
	k2 := newKernelWithFns()
	k2.RegisterFn("net", "udp_input") // a new function appears
	res2, err := Instrument(k2, Options{Tags: res1.Tags})
	if err != nil {
		t.Fatal(err)
	}
	tcpTag2, _ := res2.Tags.Lookup("tcp_input")
	if tcpTag.Tag != tcpTag2.Tag {
		t.Fatalf("tcp_input tag moved: %d -> %d", tcpTag.Tag, tcpTag2.Tag)
	}
	// The new function extends the file past the old highest value.
	udpTag, ok := res2.Tags.Lookup("udp_input")
	if !ok || udpTag.Tag <= tcpTag.Tag {
		t.Fatalf("udp_input tag = %+v", udpTag)
	}
}

func TestContextSwitchMarkAndInlines(t *testing.T) {
	k := newKernelWithFns()
	res, err := Instrument(k, Options{Inlines: []string{"MGET"}})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := res.Tags.Lookup("swtch")
	if !ok || !e.ContextSwitch {
		t.Fatalf("swtch = %+v ok=%v", e, ok)
	}
	m, ok := res.Tags.Lookup("MGET")
	if !ok || !m.Inline {
		t.Fatalf("MGET = %+v", m)
	}
}

func TestTwoStageLink(t *testing.T) {
	k := newKernelWithFns()
	res, err := Instrument(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Before Link, nothing is armed.
	for _, fn := range k.Functions() {
		if fn.Instrumented() {
			t.Fatalf("%s armed before link", fn.Name)
		}
	}
	linked, err := res.Link(Layout{KernelSize: 600 * 1024, EPROMPhys: 0xD0000})
	if err != nil {
		t.Fatal(err)
	}
	// ProfileBase: kernel base + rounded size + fixed pages + window
	// offset within ISA space.
	wantISAVirt := uint32(KernelBase) + 600*1024 + FixedPages*PageSize
	if linked.ISAVirtBase != wantISAVirt {
		t.Fatalf("ISAVirtBase = %#x, want %#x", linked.ISAVirtBase, wantISAVirt)
	}
	if linked.ProfileBase != wantISAVirt+(0xD0000-ISAPhysBase) {
		t.Fatalf("ProfileBase = %#x", linked.ProfileBase)
	}
	for _, fn := range k.Functions() {
		if !fn.Instrumented() {
			t.Fatalf("%s not armed after link", fn.Name)
		}
	}
	// Virtual-to-physical round trip.
	if pa := linked.VirtToPhys(linked.ProfileBase + 1386); pa != 0xD0000+1386 {
		t.Fatalf("VirtToPhys = %#x", pa)
	}
}

func TestLinkRoundsKernelSizeToPage(t *testing.T) {
	k := newKernelWithFns()
	res, _ := Instrument(k, Options{})
	l1, err := res.Link(Layout{KernelSize: 600*1024 + 1, EPROMPhys: 0xD0000})
	if err != nil {
		t.Fatal(err)
	}
	if l1.ISAVirtBase != KernelBase+600*1024+PageSize+FixedPages*PageSize {
		t.Fatalf("rounding failed: %#x", l1.ISAVirtBase)
	}
}

// The paper's key point: a different kernel size moves ProfileBase, and
// relinking (not recompiling) fixes every trigger address.
func TestRelinkMovesProfileBase(t *testing.T) {
	k := newKernelWithFns()
	res, _ := Instrument(k, Options{})
	l1, err := res.Link(Layout{KernelSize: 600 * 1024, EPROMPhys: 0xD0000})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := res.Link(Layout{KernelSize: 700 * 1024, EPROMPhys: 0xD0000})
	if err != nil {
		t.Fatal(err)
	}
	if l1.ProfileBase == l2.ProfileBase {
		t.Fatal("ProfileBase did not move with kernel size")
	}
	// The physical address of a given tag is invariant.
	if l1.VirtToPhys(l1.ProfileBase+500) != l2.VirtToPhys(l2.ProfileBase+500) {
		t.Fatal("relink changed the physical tag address")
	}
}

func TestLinkRejectsBadEPROMAddress(t *testing.T) {
	k := newKernelWithFns()
	res, _ := Instrument(k, Options{})
	if _, err := res.Link(Layout{KernelSize: 1, EPROMPhys: 0x80000}); err == nil {
		t.Fatal("EPROM below ISA space accepted")
	}
	if _, err := res.Link(Layout{KernelSize: 1, EPROMPhys: 0xFFFF0}); err == nil {
		t.Fatal("EPROM window overflowing ISA space accepted")
	}
}

func TestInlineAddr(t *testing.T) {
	k := newKernelWithFns()
	res, err := Instrument(k, Options{Inlines: []string{"MGET"}})
	if err != nil {
		t.Fatal(err)
	}
	linked, _ := res.Link(Layout{KernelSize: 4096, EPROMPhys: 0xD0000})
	addr, ok := res.InlineAddr(linked, "MGET")
	if !ok {
		t.Fatal("MGET inline address missing")
	}
	e, _ := res.Tags.Lookup("MGET")
	if addr != linked.ProfileBase+uint32(e.Tag) {
		t.Fatalf("addr = %#x", addr)
	}
	if _, ok := res.InlineAddr(linked, "nosuch"); ok {
		t.Fatal("phantom inline")
	}
}

func TestInstrumentedNamesSorted(t *testing.T) {
	k := newKernelWithFns()
	res, _ := Instrument(k, Options{Modules: []string{"net", "fs"}})
	names := res.InstrumentedNames()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}

func TestInstrumentWithExistingTagFileConflicts(t *testing.T) {
	// A tag file that already contains one of the kernel's functions at
	// a fixed tag: instrumentation must honour it.
	tags, err := tagfile.ParseString("ipintr/900\n")
	if err != nil {
		t.Fatal(err)
	}
	k := newKernelWithFns()
	res, err := Instrument(k, Options{Tags: tags, Modules: []string{"net"}})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := res.Tags.Lookup("ipintr")
	if e.Tag != 900 {
		t.Fatalf("existing tag overridden: %d", e.Tag)
	}
	e2, _ := res.Tags.Lookup("tcp_input")
	if e2.Tag <= 900 {
		t.Fatalf("new tag below existing range: %d", e2.Tag)
	}
}

func TestSelectiveFunctions(t *testing.T) {
	k := newKernelWithFns()
	res, err := Instrument(k, Options{Functions: []string{"ipintr", "bread"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Functions() != 2 {
		t.Fatalf("instrumented %d functions, want 2", res.Functions())
	}
	for _, name := range []string{"ipintr", "bread"} {
		if _, ok := res.Tags.Lookup(name); !ok {
			t.Fatalf("selected function %s missing", name)
		}
	}
	if _, ok := res.Tags.Lookup("splnet"); ok {
		t.Fatal("unselected function instrumented")
	}
	// The function filter composes with the module filter: a function
	// passes only if it satisfies both.
	k2 := newKernelWithFns()
	res2, err := Instrument(k2, Options{Modules: []string{"net"}, Functions: []string{"ipintr", "bread"}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Functions() != 1 {
		t.Fatalf("composed filters instrumented %d functions, want 1", res2.Functions())
	}
	if _, ok := res2.Tags.Lookup("bread"); ok {
		t.Fatal("bread is outside the net module but was instrumented")
	}
}
