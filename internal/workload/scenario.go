package workload

import (
	"fmt"

	"kprof/internal/core"
	"kprof/internal/loadgen"
	"kprof/internal/sim"
)

// Params parameterizes a registered scenario run. Zero values select each
// scenario's paper defaults, so Params{} reproduces the figures.
type Params struct {
	// Duration bounds time-based scenarios (netrecv, netrecv-long,
	// ffswrite, mixed, proday).
	Duration sim.Time
	// Count sets the iteration count of count-based scenarios (forkexec
	// cycles, ffsread batches).
	Count int

	// Arrivals selects the open-loop arrival process for loadgen-driven
	// scenarios (proday). The zero value is loadgen.Poisson.
	Arrivals loadgen.Kind
	// Rate overrides the total arrival rate in events per simulated
	// second (0: the scenario default).
	Rate float64
	// Conns overrides proday's connection count (0: the default).
	Conns int
	// Mix overrides proday's per-class arrival weights (zero: defaults).
	Mix ProdayMix
}

func (p Params) duration(def sim.Time) sim.Time {
	if p.Duration > 0 {
		return p.Duration
	}
	return def
}

func (p Params) count(def int) int {
	if p.Count > 0 {
		return p.Count
	}
	return def
}

// Scenario is a named workload driver runnable on a stock PC machine: the
// unit cmd/kprof selects by flag and the sweep engine fans out over seeds.
// (The embedded 68020 and two-machine NFS-versus-FTP studies need special
// machine construction and stay outside the registry.)
type Scenario struct {
	Name string
	// TimeBased reports whether Duration (true) or Count (false)
	// parameterizes the run.
	TimeBased bool
	// Setup, when non-nil, builds machine state that must exist before
	// the kernel is instrumented — registered kernel functions, MIB
	// stores, the NFS client. cmd/kprof and the sweep engine call it
	// after core.NewMachine and before core.NewSession; Setup stashes
	// whatever Run needs in Machine.Aux.
	Setup func(m *core.Machine, p Params) error
	// Run drives the workload on m and returns a one-line result
	// description.
	Run func(m *core.Machine, p Params) (string, error)
}

// The registry, in presentation order.
var scenarios = []Scenario{
	{
		Name: "netrecv", TimeBased: true,
		Run: func(m *core.Machine, p Params) (string, error) {
			res, err := NetReceive(m, p.duration(400*sim.Millisecond))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("netrecv: %d bytes delivered, %d frames, %d ring drops",
				res.BytesDelivered, res.Frames, res.Drops), nil
		},
	},
	{
		// The long-haul variant: at netrecv's ~35 records/ms the default
		// five seconds generates >10x the prototype's 16384-entry RAM, so
		// a one-shot capture keeps only the head. Run it under continuous
		// capture (kprof -drain) to keep every record.
		Name: "netrecv-long", TimeBased: true,
		Run: func(m *core.Machine, p Params) (string, error) {
			res, err := NetReceive(m, p.duration(5*sim.Second))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("netrecv-long: %d bytes delivered, %d frames, %d ring drops",
				res.BytesDelivered, res.Frames, res.Drops), nil
		},
	},
	{
		Name: "forkexec",
		Run: func(m *core.Machine, p Params) (string, error) {
			res := ForkExec(m, p.count(3))
			return fmt.Sprintf("forkexec: %d cycles, vfork %v avg, execve %v avg, pmap_pte %d calls/fork",
				res.Cycles, res.ForkTime, res.ExecTime, res.PmapPteCallsPerFork), nil
		},
	},
	{
		Name: "ffswrite", TimeBased: true,
		Run: func(m *core.Machine, p Params) (string, error) {
			res := FFSWrite(m, p.duration(2*sim.Second))
			return fmt.Sprintf("ffswrite: %d bytes, %d sectors, %d disk interrupts (%d back-to-back <100us)",
				res.BytesWritten, res.WriteSectors, res.DiskInterrupts, res.ShortGaps), nil
		},
	},
	{
		Name: "ffsread",
		Run: func(m *core.Machine, p Params) (string, error) {
			res := FFSRead(m, p.count(3)*10)
			return fmt.Sprintf("ffsread: %d bytes, mean read latency %v", res.BytesRead, res.MeanReadLatency), nil
		},
	},
	{
		Name: "mixed", TimeBased: true,
		Run: func(m *core.Machine, p Params) (string, error) {
			d := p.duration(sim.Second)
			Mixed(m, d)
			return fmt.Sprintf("mixed: ran for %v", d), nil
		},
	},
	{
		// The production-day stress: everything at once under open-loop
		// load. Run it under continuous capture (kprof -drain); at its
		// default rate a one-shot capture keeps only the head.
		Name: "proday", TimeBased: true,
		Setup: ProdaySetup,
		Run: func(m *core.Machine, p Params) (string, error) {
			res, err := Proday(m, p)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("proday: %d arrivals (%d net bytes, %d disk ops, %d vm cycles, %d nfs calls, %d snmp polls), %d storms/%d forks, %d ring drops",
				res.Arrivals, res.NetBytes, res.DiskOps, res.VMCycles, res.NFSCalls, res.SNMPPolls, res.Storms, res.Forks, res.RingDrops), nil
		},
	},
}

// FindScenario looks a scenario up by name.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists the registered scenario names in order.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}
