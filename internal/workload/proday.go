package workload

import (
	"encoding/binary"
	"fmt"

	"kprof/internal/core"
	"kprof/internal/fs"
	"kprof/internal/kernel"
	"kprof/internal/loadgen"
	"kprof/internal/netstack"
	"kprof/internal/sim"
	"kprof/internal/snmp"
	"kprof/internal/vm"
)

// Proday — "production day" — is the scenario the ROADMAP asks for: the
// whole machine doing everything at once, driven open-loop. Thousands of
// TCP/UDP connections receive traffic, fork storms arrive periodically,
// FFS read/write traffic keeps the disk seeking, VM paging pressure churns
// address spaces, an NFS client issues RPCs, and an SNMP manager polls the
// in-kernel agent — all arrival times drawn from seeded loadgen streams so
// the run is bit-reproducible. Under continuous drain capture this is the
// deepest-nesting, heaviest-context-switch stress the Reconstructor faces.

// Proday defaults: multiple simulated seconds, thousands of connections,
// thousands of arrivals per second.
const (
	defaultProdayDuration = 3 * sim.Second
	defaultProdayConns    = 2000
	defaultProdayRate     = 400 // arrivals/sec across all classes

	prodayBasePort = 10000 // conn i listens on prodayBasePort+i
	prodayMIBSize  = 512
)

// auxProdayAgent is the Machine.Aux key under which ProdaySetup stashes the
// pre-registered SNMP agent for Proday to find.
const auxProdayAgent = "proday.snmpAgent"

// ProdayMix sets the relative arrival weights of the five load classes.
// Zero values take the defaults (70/12/8/5/5: net-dominated, like the
// paper's saturation studies, with everything else nibbling at the CPU).
type ProdayMix struct {
	Net, Disk, VM, NFS, SNMP int
}

func (x ProdayMix) withDefaults() ProdayMix {
	if x == (ProdayMix{}) {
		return ProdayMix{Net: 70, Disk: 12, VM: 8, NFS: 5, SNMP: 5}
	}
	return x
}

func (x ProdayMix) total() int { return x.Net + x.Disk + x.VM + x.NFS + x.SNMP }

// ProdayResult summarises the run.
type ProdayResult struct {
	Arrivals  int // total load-generator arrivals fired
	NetBytes  int // TCP+UDP payload bytes injected
	DiskOps   int // FFS reads+writes completed
	VMCycles  int // fork/fault/teardown cycles completed
	NFSCalls  uint64
	SNMPPolls int // GETNEXT requests served
	Storms    int // fork storms launched
	Forks     int // vfork/exec cycles across all storms
	RingDrops uint64
}

// ProdaySetup builds the machine state that must exist before the kernel is
// instrumented: the SNMP agent and the NFS client both register kernel
// functions, and functions registered after core.NewSession are invisible
// to the profile. cmd/kprof and the sweep engine call Setup before
// constructing the session.
func ProdaySetup(m *core.Machine, p Params) error {
	store := snmp.NewBTreeStore()
	snmp.StandardMIB(store, prodayMIBSize)
	m.Aux[auxProdayAgent] = snmp.NewAgent(m.K, store, "pd")
	_, err := m.NFS()
	return err
}

// prodayConn is one simulated connection: a bound socket plus the injection
// state for open-loop traffic aimed at it.
type prodayConn struct {
	so  *netstack.Socket
	udp *netstack.UDPSource // nil for TCP conns
	seq uint32              // next TCP sequence number
}

// injectTCP delivers one 512-byte TCP data segment to c as if from the
// remote peer. tcpInput tolerates gaps and establishes the connection on
// the first segment, so no handshake is simulated.
func (c *prodayConn) injectTCP(m *core.Machine, nBytes int) {
	payload := make([]byte, nBytes)
	binary.BigEndian.PutUint32(payload, c.seq)
	for i := 4; i < nBytes; i++ {
		payload[i] = byte(c.seq>>8) + byte(i)
	}
	th := netstack.TCPHeader{
		SrcPort: 1023,
		DstPort: c.so.Port,
		Seq:     c.seq,
		Flags:   netstack.FlagACK,
		Window:  4096,
	}
	seg := th.Marshal(netstack.SparcAddr, netstack.PCAddr, payload)
	ih := netstack.IPv4Header{
		TotalLen: uint16(netstack.IPHdrLen + len(seg)),
		ID:       uint16(c.seq),
		TTL:      255,
		Proto:    netstack.ProtoTCP,
		Src:      netstack.SparcAddr,
		Dst:      netstack.PCAddr,
	}
	c.seq += uint32(nBytes)
	m.Net.Device().HostDeliver(append(ih.Marshal(), seg...))
}

// Proday runs the production-day workload for p.Duration (default 3s) with
// p.Conns connections (default 2000) at p.Rate total arrivals/sec (default
// 3000), arrival process p.Arrivals (default Poisson). ProdaySetup must
// have run on m first.
func Proday(m *core.Machine, p Params) (*ProdayResult, error) {
	agent, _ := m.Aux[auxProdayAgent].(*snmp.Agent)
	if agent == nil {
		return nil, fmt.Errorf("workload: proday: ProdaySetup did not run on this machine")
	}
	nfsc, err := m.NFS()
	if err != nil {
		return nil, err
	}

	d := p.duration(defaultProdayDuration)
	conns := p.Conns
	if conns <= 0 {
		conns = defaultProdayConns
	}
	rate := p.Rate
	if rate <= 0 {
		rate = defaultProdayRate
	}
	mix := p.Mix.withDefaults()
	if mix.total() <= 0 {
		return nil, fmt.Errorf("workload: proday: mix has no positive weights")
	}

	res := &ProdayResult{}
	start := m.K.Now()
	deadline := start + d

	// Seed streams: one parent draw from the machine's PRNG, then
	// independent derived streams — one per arrival class, one for target
	// selection — so arrival schedules never depend on what the workload
	// consumes.
	parent := sim.NewRand(m.K.Rand().Uint64())
	classSeed := make([]uint64, 5)
	for i := range classSeed {
		classSeed[i] = parent.Uint64()
	}
	pick := sim.NewRand(parent.Uint64())

	// The connection population: half TCP, half UDP, each with a sink
	// process looping in soreceive — the context-switch churn comes from
	// these being woken one datagram at a time.
	cs := make([]*prodayConn, 0, conns)
	for i := 0; i < conns; i++ {
		port := uint16(prodayBasePort + i)
		udp := i%2 == 1
		proto := uint8(netstack.ProtoTCP)
		if udp {
			proto = netstack.ProtoUDP
		}
		so, err := m.Net.SoCreate(proto, port)
		if err != nil {
			return nil, err
		}
		c := &prodayConn{so: so, seq: 1}
		if udp {
			c.udp = netstack.NewUDPSource(m.Net, port)
		}
		cs = append(cs, c)
		m.K.Spawn(fmt.Sprintf("pd-sink%d", i), func(p *kernel.Proc) {
			var scratch []byte
			for m.K.Now() < deadline {
				m.K.Syscall(p, func() { scratch = m.Net.SoReceiveInto(p, so, 4096, scratch) })
			}
		})
	}

	// Pending-work counters bumped by arrival events and drained by
	// tick-paced worker processes: arrivals are instantaneous scheduler
	// events (they may only inject frames or bump counters — the modeled
	// path), while the work itself runs in process context.
	var diskPending, vmPending, nfsPending, stormPending int

	// Disk class: alternate scattered reads on a big file with sequential
	// log writes, FFSRead/FFSWrite style.
	const dataBlocks = 256
	rdIno := m.FS.Create("pdbig", dataBlocks*fs.BlockSize)
	wrIno := m.FS.Create("pdlog", 0)
	m.K.Spawn("pd-disk", func(p *kernel.Proc) {
		op, woff := 0, 0
		for m.K.Now() < deadline {
			for diskPending > 0 {
				diskPending--
				if op%3 == 2 {
					m.K.Syscall(p, func() { m.FS.Write(p, wrIno, woff, fs.BlockSize) })
					woff += fs.BlockSize
				} else {
					off := ((op * 7) % dataBlocks) * fs.BlockSize
					m.K.Syscall(p, func() { m.FS.Read(p, rdIno, off, fs.BlockSize) })
				}
				op++
				res.DiskOps++
			}
			m.K.Tsleep(p, "pddisk", 1)
		}
	})

	// VM class: paging pressure — fork a half-resident space, COW-fault a
	// few pages back in, tear it down.
	space := m.VM.NewVMSpace(vm.DefaultImage)
	for _, e := range space.Entries {
		e.Resident = e.Pages / 2
	}
	m.K.Spawn("pd-vm", func(p *kernel.Proc) {
		for m.K.Now() < deadline {
			for vmPending > 0 {
				vmPending--
				m.K.Syscall(p, func() {
					child := m.VM.Fork(space)
					for _, e := range child.Entries {
						if e.CopyOnWrite {
							e.Resident -= 2
							m.VM.FaultIn(e, 2)
						}
					}
					m.VM.Teardown(child)
				})
				res.VMCycles++
			}
			m.K.Tsleep(p, "pdvm", 1)
		}
	})

	// NFS class: small-file reads through the NFS-lite client.
	m.K.Spawn("pd-nfs", func(p *kernel.Proc) {
		for m.K.Now() < deadline {
			for nfsPending > 0 {
				nfsPending--
				nfsc.ReadFile(p, 4096)
			}
			m.K.Tsleep(p, "pdnfs", 1)
		}
	})

	// Fork storms: every storm is a burst of shell-style vfork/exec
	// cycles, arriving on their own constant-interval stream (cron-like).
	parentSpace := m.VM.NewVMSpace(vm.DefaultImage)
	for _, e := range parentSpace.Entries {
		e.Resident = e.Pages
	}
	parentFDs := m.FD.NewTable()
	for i := 0; i < 3; i++ {
		m.FD.Falloc(parentFDs, i)
	}
	m.K.Spawn("pd-storm", func(p *kernel.Proc) {
		for m.K.Now() < deadline {
			for stormPending > 0 {
				stormPending--
				// Count the storm when it launches: the final Yield may
				// never return if the deadline lands mid-storm.
				res.Storms++
				for i := 0; i < 2; i++ {
					var child *vm.VMSpace
					m.K.Syscall(p, func() {
						m.FD.Copy(parentFDs)
						child = m.VM.Fork(parentSpace)
					})
					m.K.Syscall(p, func() {
						child = m.VM.Exec(child, vm.DefaultImage, 0)
					})
					m.VM.Teardown(child)
					res.Forks++
					p.Yield()
				}
			}
			m.K.Tsleep(p, "pdstorm", 1)
		}
	})

	// SNMP class: the manager polls anchor OIDs round-robin over UDP; an
	// in-kernel snmpd services GETNEXT through the pre-registered agent.
	snmpSo, err := m.Net.SoCreate(netstack.ProtoUDP, snmpPort)
	if err != nil {
		return nil, err
	}
	anchors := mibAnchors(agent.Store())
	snmpReq := 0
	m.K.Spawn("pd-snmpd", func(p *kernel.Proc) {
		var req []byte
		for m.K.Now() < deadline {
			m.K.Syscall(p, func() { req = m.Net.SoReceiveInto(p, snmpSo, 512, req) })
			if m.K.Now() >= deadline {
				return
			}
			oid, ok := unmarshalOID(req)
			if !ok {
				continue
			}
			m.K.Syscall(p, func() {
				var reply []byte
				if e, ok := agent.GetNext(oid); ok {
					reply = marshalOID(e.OID)
				} else {
					reply = marshalOID(nil)
				}
				m.Net.SendUDPDatagram(snmpSo, reply)
			})
			res.SNMPPolls++
		}
	})

	// The arrival schedules. Each class gets its own generator (same
	// process kind, its own seed) with its share of the total rate, so
	// per-class determinism survives mix changes to other classes.
	classes := []struct {
		weight int
		fire   func()
	}{
		{mix.Net, func() {
			c := cs[pick.Intn(len(cs))]
			const nBytes = 512
			if c.udp != nil {
				c.udp.Send(nBytes)
			} else {
				c.injectTCP(m, nBytes)
			}
			res.NetBytes += nBytes
		}},
		{mix.Disk, func() { diskPending++ }},
		{mix.VM, func() { vmPending++ }},
		{mix.NFS, func() { nfsPending++ }},
		{mix.SNMP, func() {
			var oid snmp.OID
			if len(anchors) > 0 {
				oid = anchors[snmpReq%len(anchors)]
			}
			snmpReq++
			payload := marshalOID(oid)
			uh := netstack.UDPHeader{SrcPort: 2001, DstPort: snmpPort}
			dgram := uh.Marshal(netstack.SparcAddr, netstack.PCAddr, payload, false)
			ih := netstack.IPv4Header{
				TotalLen: uint16(netstack.IPHdrLen + len(dgram)),
				TTL:      255,
				Proto:    netstack.ProtoUDP,
				Src:      netstack.SparcAddr,
				Dst:      netstack.PCAddr,
			}
			m.Net.Device().HostDeliver(append(ih.Marshal(), dgram...))
		}},
	}
	total := float64(mix.total())
	for i, cl := range classes {
		if cl.weight <= 0 {
			continue
		}
		g, err := loadgen.New(loadgen.Config{
			Kind: p.Arrivals,
			Rate: rate * float64(cl.weight) / total,
			Seed: classSeed[i],
		})
		if err != nil {
			return nil, err
		}
		fire := cl.fire
		g.Schedule(m.K.Scheduler(), deadline, func(int) {
			res.Arrivals++
			fire()
		})
	}

	// Fork storms ride a fixed cron-like interval, not the random mix.
	storms, err := loadgen.New(loadgen.Config{Kind: loadgen.Const, Rate: 4}) // every 250ms
	if err != nil {
		return nil, err
	}
	storms.Schedule(m.K.Scheduler(), deadline, func(int) { stormPending++ })

	m.K.Run(deadline)
	res.NFSCalls = nfsc.Calls
	res.RingDrops = m.Net.Device().RxDrops
	return res, nil
}
