// Package workload provides the scenario drivers behind the paper's case
// studies: the TCP receive saturation test (Figures 3/4), the fork/exec
// loop (Figure 5), the mixed load behind Table 1's sample timings, the FFS
// write/read studies, and the NFS-versus-FTP transfer comparison.
package workload

import (
	"kprof/internal/core"
	"kprof/internal/fs"
	"kprof/internal/kernel"
	"kprof/internal/netstack"
	"kprof/internal/sim"
	"kprof/internal/vm"
)

// RunFor advances the machine d further in virtual time.
func RunFor(m *core.Machine, d sim.Time) {
	m.K.Run(m.K.Now() + d)
}

// NetReceiveResult summarises the saturation test.
type NetReceiveResult struct {
	BytesDelivered int
	Frames         uint64
	Drops          uint64
	Sender         *netstack.Sender
}

// NetReceive runs the paper's network test: a discard server on the PC, a
// Sparc-class sender filling the PC's receive window, for duration d. The
// PC ends up CPU-bound, exactly as in the paper.
func NetReceive(m *core.Machine, d sim.Time) (*NetReceiveResult, error) {
	const port = 5001
	so, err := m.Net.SoCreate(netstack.ProtoTCP, port)
	if err != nil {
		return nil, err
	}
	res := &NetReceiveResult{}
	deadline := m.K.Now() + d
	m.K.Spawn("discard", func(p *kernel.Proc) {
		// Read-and-discard: one scratch buffer reused across reads.
		var scratch []byte
		for m.K.Now() < deadline {
			var n int
			m.K.Syscall(p, func() {
				scratch = m.Net.SoReceiveInto(p, so, 4096, scratch)
				n = len(scratch)
			})
			res.BytesDelivered += n
		}
	})
	sender := netstack.NewSender(m.Net, port)
	// The Sparc fills the wire but is not cycle-identical run to run:
	// a little seeded arrival jitter (≈5% of a frame's wire time) is what
	// distinguishes one seed's run from another's in a multi-seed sweep.
	sender.Jitter = 64 * sim.Microsecond
	res.Sender = sender
	sender.Start()
	m.K.Run(deadline)
	sender.Stop()
	res.Frames = m.Net.Device().RxFrames
	res.Drops = m.Net.Device().RxDrops
	return res, nil
}

// ForkExecResult summarises the fork/exec study.
type ForkExecResult struct {
	Cycles              int
	ForkTime            sim.Time // mean vfork syscall time
	ExecTime            sim.Time // mean execve syscall time
	PmapPteCallsPerFork uint64
}

// ForkExec runs the paper's fork/exec loop: a fully resident shell-class
// parent vforks and the child execs a cached image, count times. Times do
// not include disk activity, as in the paper.
func ForkExec(m *core.Machine, count int) *ForkExecResult {
	res := &ForkExecResult{Cycles: count}
	var forkTotal, execTotal sim.Time
	pte := m.K.MustFn("pmap_pte")
	var pteInForks uint64

	parentSpace := m.VM.NewVMSpace(vm.DefaultImage)
	// The parent is a long-running shell: fully resident already. This is
	// pre-existing state, not work the profiler should see.
	for _, e := range parentSpace.Entries {
		e.Resident = e.Pages
	}
	parentFDs := m.FD.NewTable()
	for i := 0; i < 3; i++ {
		m.FD.Falloc(parentFDs, i) // stdin/stdout/stderr
	}

	finished := false
	m.K.Spawn("sh", func(p *kernel.Proc) {
		for i := 0; i < count; i++ {
			var childSpace *vm.VMSpace
			start := m.K.Now()
			pteBefore := pte.Calls
			m.K.Syscall(p, func() {
				m.FD.Copy(parentFDs)
				childSpace = m.VM.Fork(parentSpace)
			})
			forkTotal += m.K.Now() - start
			pteInForks += pte.Calls - pteBefore

			// The child execs; the work happens in its own context.
			start = m.K.Now()
			m.K.Syscall(p, func() {
				childSpace = m.VM.Exec(childSpace, vm.DefaultImage, 0)
			})
			execTotal += m.K.Now() - start

			// Child exits: its address space is torn down lazily by the
			// next cycle's measurements; tear down now, outside the
			// timed regions (wait-and-reap).
			m.VM.Teardown(childSpace)
			p.Yield()
		}
		finished = true
	})
	m.K.RunUntilIdle(sim.Time(count+1) * 2 * sim.Second)
	if !finished {
		panic("workload: fork/exec loop did not complete within its time budget")
	}
	res.ForkTime = forkTotal / sim.Time(count)
	res.ExecTime = execTotal / sim.Time(count)
	res.PmapPteCallsPerFork = pteInForks / uint64(count)
	return res
}

// FFSWriteResult summarises the write study.
type FFSWriteResult struct {
	BytesWritten   int
	WriteSectors   uint64
	DiskInterrupts uint64
	ShortGaps      uint64
}

// FFSWrite streams sequential writes for duration d, write-behind style.
func FFSWrite(m *core.Machine, d sim.Time) *FFSWriteResult {
	res := &FFSWriteResult{}
	ino := m.FS.Create("bigout", 0)
	deadline := m.K.Now() + d
	m.K.Spawn("writer", func(p *kernel.Proc) {
		off := 0
		for m.K.Now() < deadline {
			m.K.Syscall(p, func() {
				m.FS.Write(p, ino, off, fs.BlockSize)
			})
			off += fs.BlockSize
			res.BytesWritten = off
			// Pace against the disk: one tick of write-behind headroom.
			m.K.Tsleep(p, "wpace", 1)
		}
	})
	m.K.Run(deadline)
	res.WriteSectors = m.FS.Disk.WriteSectors
	res.DiskInterrupts = m.FS.Disk.Interrupts
	res.ShortGaps = m.FS.Disk.InterGapUnder100us
	return res
}

// FFSReadResult summarises the read study.
type FFSReadResult struct {
	BytesRead       int
	MeanReadLatency sim.Time
	CacheHits       uint64
	CacheMisses     uint64
}

// FFSRead reads blocks scattered across a large file, forcing seeks.
func FFSRead(m *core.Machine, blocks int) *FFSReadResult {
	res := &FFSReadResult{}
	ino := m.FS.Create("bigin", 4*blocks*fs.BlockSize)
	m.K.Spawn("reader", func(p *kernel.Proc) {
		for i := 0; i < blocks; i++ {
			off := ((i * 7) % (4 * blocks)) * fs.BlockSize
			m.K.Syscall(p, func() {
				res.BytesRead += m.FS.Read(p, ino, off, fs.BlockSize)
			})
		}
	})
	m.K.RunUntilIdle(sim.Time(blocks+1) * 100 * sim.Millisecond)
	res.MeanReadLatency = m.FS.Disk.MeanReadLatency()
	res.CacheHits = m.FS.Cache.Hits
	res.CacheMisses = m.FS.Cache.Misses
	return res
}

// TransferResult summarises one leg of the NFS-vs-FTP study.
type TransferResult struct {
	Bytes    int
	Elapsed  sim.Time
	CPUProxy sim.Time // time attributable to the PC's CPU
}

// NFSTransfer reads size bytes through the NFS-lite client (UDP, checksums
// off).
func NFSTransfer(m *core.Machine, size int) (*TransferResult, error) {
	c, err := m.NFS()
	if err != nil {
		return nil, err
	}
	res := &TransferResult{}
	start := m.K.Now()
	m.K.Spawn("nfsread", func(p *kernel.Proc) {
		res.Bytes = c.ReadFile(p, size)
	})
	m.K.RunUntilIdle(m.K.Now() + sim.Time(size/1024+10)*50*sim.Millisecond)
	res.Elapsed = m.K.Now() - start
	// Subtract wire and server time per RPC to approximate CPU cost.
	nonCPU := sim.Time(c.Calls) * (c.ServerModel().ServiceTime +
		netstack.WireTime(1060) + netstack.WireTime(132))
	res.CPUProxy = res.Elapsed - nonCPU
	if res.CPUProxy < 0 {
		res.CPUProxy = 0
	}
	return res, nil
}

// FTPTransfer receives size bytes over TCP (checksummed), FTP-style.
func FTPTransfer(m *core.Machine, size int) (*TransferResult, error) {
	const port = 5002
	so, err := m.Net.SoCreate(netstack.ProtoTCP, port)
	if err != nil {
		return nil, err
	}
	res := &TransferResult{}
	start := m.K.Now()
	done := false
	m.K.Spawn("ftprecv", func(p *kernel.Proc) {
		var scratch []byte
		for res.Bytes < size {
			scratch = m.Net.SoReceiveInto(p, so, 8192, scratch)
			res.Bytes += len(scratch)
		}
		done = true
	})
	sender := netstack.NewSender(m.Net, port)
	sender.Start()
	for !done && m.K.Now() < start+sim.Time(size/1024+10)*50*sim.Millisecond {
		RunFor(m, 10*sim.Millisecond)
	}
	sender.Stop()
	res.Elapsed = m.K.Now() - start
	// The TCP leg is CPU-bound nearly throughout; elapsed is the proxy.
	res.CPUProxy = res.Elapsed
	return res, nil
}

// Mixed exercises a bit of everything — the background against which
// Table 1's sample function timings were collected: file I/O, VM churn,
// allocator traffic, and a trickle of network packets.
func Mixed(m *core.Machine, d sim.Time) {
	deadline := m.K.Now() + d
	// Background datagrams keep the network input path (and its spl
	// dance) warm without saturating anything.
	if so, err := m.Net.SoCreate(netstack.ProtoUDP, 7); err == nil {
		src := netstack.NewUDPSource(m.Net, 7)
		m.K.Spawn("udpsink", func(p *kernel.Proc) {
			var scratch []byte
			for m.K.Now() < deadline {
				m.K.Syscall(p, func() { scratch = m.Net.SoReceiveInto(p, so, 4096, scratch) })
			}
		})
		var tick func()
		tick = func() {
			if m.K.Now() >= deadline {
				return
			}
			src.Send(512)
			m.K.Scheduler().After(20*sim.Millisecond, tick)
		}
		m.K.Scheduler().After(5*sim.Millisecond, tick)
	}
	ino := m.FS.Create("mixedfile", 64*fs.BlockSize)
	m.K.Spawn("mixed-io", func(p *kernel.Proc) {
		off := 0
		for m.K.Now() < deadline {
			m.K.Syscall(p, func() { m.FS.Read(p, ino, off%(64*fs.BlockSize), fs.BlockSize) })
			if off%(3*fs.BlockSize) == 0 {
				m.K.Syscall(p, func() { m.FS.Write(p, ino, off%(32*fs.BlockSize), 2048) })
			}
			off += fs.BlockSize
			// Pace the I/O so interrupt traffic stays realistic rather
			// than saturating (Table 1 was measured on a working
			// system, not a stress test).
			m.K.Tsleep(p, "iopace", 1)
		}
	})
	space := m.VM.NewVMSpace(vm.DefaultImage)
	// Half-resident long-running process: pre-existing state.
	for _, e := range space.Entries {
		e.Resident = e.Pages / 2
	}
	m.K.Spawn("mixed-vm", func(p *kernel.Proc) {
		for m.K.Now() < deadline {
			m.K.Syscall(p, func() {
				child := m.VM.Fork(space)
				// The child touches a few pages (COW faults) before
				// being reaped.
				for _, e := range child.Entries {
					if e.CopyOnWrite {
						e.Resident -= 2
						m.VM.FaultIn(e, 2)
					}
				}
				m.VM.Teardown(child)
			})
			// Allocator churn: namei buffers, credentials, temporary
			// argument storage — the steady malloc/free traffic of a
			// working kernel.
			for _, size := range []int{64, 256, 1024, 256, 64, 512, 256, 128, 96, 256} {
				blk := m.Alloc.Malloc(size)
				m.Alloc.Free(blk)
			}
			m.Alloc.KmemAlloc(2) // a typical two-page kernel allocation
			m.K.Copyinstr(72)
			m.K.Tsleep(p, "vmpace", 2)
		}
	})
	m.K.Run(deadline)
}

// EmbeddedNetReceive is the 68020 case-study workload: the discard server
// on the Megadata board, traffic arriving through the LE controller. It
// reports goodput so the old-versus-recoded driver comparison ("the
// recoding of an Ethernet driver doubled the network throughput") can be
// made directly.
func EmbeddedNetReceive(m *core.Machine, le *netstack.LE, d sim.Time) (*NetReceiveResult, error) {
	const port = 5001
	so, err := m.Net.SoCreate(netstack.ProtoTCP, port)
	if err != nil {
		return nil, err
	}
	res := &NetReceiveResult{}
	deadline := m.K.Now() + d
	m.K.Spawn("discard", func(p *kernel.Proc) {
		var scratch []byte
		for m.K.Now() < deadline {
			var n int
			m.K.Syscall(p, func() {
				scratch = m.Net.SoReceiveInto(p, so, 4096, scratch)
				n = len(scratch)
			})
			res.BytesDelivered += n
		}
	})
	sender := netstack.NewSender(m.Net, port)
	sender.SetDevice(le)
	res.Sender = sender
	sender.Start()
	m.K.Run(deadline)
	sender.Stop()
	res.Frames = le.RxFrames
	res.Drops = le.RxDrops
	return res, nil
}
