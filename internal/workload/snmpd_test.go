package workload

import (
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/snmp"
)

func TestSNMPServeMixedProfile(t *testing.T) {
	m, s := newProfiledMachine(t)
	u := s.MapUser("snmpd")
	store := snmp.NewBTreeStore()
	snmp.StandardMIB(store, 200)

	s.Arm()
	res, err := SNMPServe(m, u, store, 20)
	if err != nil {
		t.Fatal(err)
	}
	s.Disarm()

	if res.Requests != 20 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.MeanResponse <= 0 {
		t.Fatal("no response time recorded")
	}
	a := s.Analyze()
	// User-mode functions and kernel functions share the capture.
	for _, name := range []string{"snmp_input", "mib_getnext", "ber_encode", "udp_input", "soreceive", "ipintr"} {
		if _, ok := a.Fn(name); !ok {
			t.Errorf("%s missing from mixed profile", name)
		}
	}
	// The trace shows user frames containing syscalls.
	trace := a.TraceString(analyze.TraceOptions{})
	if !strings.Contains(trace, "-> snmp_input") || !strings.Contains(trace, "-> mib_getnext") {
		t.Fatal("user nesting missing from trace")
	}
	in, _ := a.Fn("snmp_input")
	if in.Calls != 20 {
		t.Fatalf("snmp_input calls = %d", in.Calls)
	}
}

// The case study's punchline, measured end to end over the wire: the
// linear MIB's response time collapses once the store is a B-tree.
func TestSNMPServeLinearVsBTreeResponse(t *testing.T) {
	runWith := func(store snmp.Store) *SNMPServeResult {
		m := newMachine()
		s, err := core.NewSession(m, core.ProfileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		u := s.MapUser("snmpd")
		snmp.StandardMIB(store, 1500)
		res, err := SNMPServe(m, u, store, 15)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lin := runWith(snmp.NewLinearStore())
	bt := runWith(snmp.NewBTreeStore())
	ratio := float64(lin.MeanResponse) / float64(bt.MeanResponse)
	if ratio < 1.5 {
		t.Fatalf("linear/btree response ratio = %.2f; want a clear win", ratio)
	}
}
