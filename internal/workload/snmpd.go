package workload

import (
	"encoding/binary"
	"fmt"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/netstack"
	"kprof/internal/sim"
	"kprof/internal/snmp"
)

// SNMPServe is the paper's mixed kernel/user profiling scenario: an snmpd
// user process — instrumented through the mmap'd Profiler window — services
// GETNEXT requests arriving over UDP, so one capture traces the path from
// the Ethernet interrupt through ipintr and soreceive up into user-mode MIB
// code and back out through the UDP transmit path. ("This approach is
// especially applicable in debugging and tuning communication protocol
// stacks...")

const snmpPort = 161

// SNMPServeResult summarises the run.
type SNMPServeResult struct {
	Requests     uint64
	MeanResponse sim.Time // manager-observed request→reply turnaround
	Walked       int      // MIB variables visited
}

// User-mode costs for the agent (68020-class figures scaled to the 386).
const (
	costBerDecode = 90 * sim.Microsecond
	costBerEncode = 110 * sim.Microsecond
	costUserCmp   = 3 * sim.Microsecond
)

// SNMPServe runs count GETNEXT requests against the store through a
// profiled user-mode daemon on machine m. The UserProgram must come from
// the machine's profiling session (Session.MapUser).
func SNMPServe(m *core.Machine, u *core.UserProgram, store snmp.Store, count int) (*SNMPServeResult, error) {
	so, err := m.Net.SoCreate(netstack.ProtoUDP, snmpPort)
	if err != nil {
		return nil, err
	}
	defer so.Close()

	fnMain := u.MustRegister("snmpd_main")
	fnInput := u.MustRegister("snmp_input")
	fnNext := u.MustRegister("mib_getnext")
	fnEncode := u.MustRegister("ber_encode")

	res := &SNMPServeResult{}

	// The manager on the remote host polls anchor OIDs spread across the
	// MIB — interface counters here, TCP connection rows there — the
	// access pattern that exposed the linear table scan in the original
	// study. Anchor selection is setup, not simulated work.
	anchors := mibAnchors(store)
	var lastOID snmp.OID
	var sentAt sim.Time
	var totalResp sim.Time
	reqNo := 0
	sendReq := func() {
		if len(anchors) > 0 {
			lastOID = anchors[reqNo%len(anchors)]
		}
		reqNo++
		payload := marshalOID(lastOID)
		uh := netstack.UDPHeader{SrcPort: 2001, DstPort: snmpPort}
		dgram := uh.Marshal(netstack.SparcAddr, netstack.PCAddr, payload, false)
		ih := netstack.IPv4Header{
			TotalLen: uint16(netstack.IPHdrLen + len(dgram)),
			TTL:      255,
			Proto:    netstack.ProtoUDP,
			Src:      netstack.SparcAddr,
			Dst:      netstack.PCAddr,
		}
		sentAt = m.K.Now()
		m.Net.Device().HostDeliver(append(ih.Marshal(), dgram...))
	}
	done := false
	m.Net.Device().AddWireTap(func(frame []byte) {
		if done {
			return
		}
		ih, err := netstack.ParseIPv4(frame)
		if err != nil || ih.Proto != netstack.ProtoUDP {
			return
		}
		uh, payload, _, err := netstack.ParseUDP(ih.Src, ih.Dst, frame[netstack.IPHdrLen:ih.TotalLen])
		if err != nil || uh.SrcPort != snmpPort {
			return
		}
		totalResp += m.K.Now() - sentAt
		res.Requests++
		if _, ok := unmarshalOID(payload); !ok || int(res.Requests) >= count {
			done = true
			return
		}
		res.Walked++
		// Manager think time before the next request.
		m.K.Scheduler().After(200*sim.Microsecond, sendReq)
	})

	// The snmpd process.
	m.K.Spawn("snmpd", func(p *kernel.Proc) {
		u.Call(fnMain, func() {
			var req []byte
			for int(res.Requests) < count {
				m.K.Syscall(p, func() { req = m.Net.SoReceiveInto(p, so, 512, req) })
				if done {
					return
				}
				u.Call(fnInput, func() {
					m.K.Advance(costBerDecode)
					oid, _ := unmarshalOID(req)
					var reply []byte
					u.Call(fnNext, func() {
						e, cmps, ok := store.Next(oid)
						m.K.Advance(sim.Time(cmps) * costUserCmp)
						if ok {
							reply = marshalOID(e.OID)
						}
					})
					u.Call(fnEncode, func() {
						m.K.Advance(costBerEncode)
					})
					m.K.Syscall(p, func() {
						m.Net.SendUDPDatagram(so, reply)
					})
				})
			}
		})
	})

	m.K.Scheduler().After(sim.Millisecond, sendReq)
	m.K.RunUntilIdle(m.K.Now() + sim.Time(count+5)*20*sim.Millisecond)
	if res.Requests == 0 {
		return nil, fmt.Errorf("workload: snmpd served nothing")
	}
	res.MeanResponse = totalResp / sim.Time(res.Requests)
	return res, nil
}

// mibAnchors samples OIDs at spread positions across the store: the
// manager's polling targets.
func mibAnchors(store snmp.Store) []snmp.OID {
	var all []snmp.OID
	var cur snmp.OID
	for {
		e, _, ok := store.Next(cur)
		if !ok {
			break
		}
		all = append(all, e.OID)
		cur = e.OID
	}
	if len(all) == 0 {
		return nil
	}
	var anchors []snmp.OID
	for _, frac := range []int{1, 3, 5, 7} {
		anchors = append(anchors, all[len(all)*frac/8])
	}
	return anchors
}

// marshalOID encodes an OID as big-endian uint32s (the lite stand-in for
// BER).
func marshalOID(o snmp.OID) []byte {
	b := make([]byte, 4*len(o)+4)
	binary.BigEndian.PutUint32(b, uint32(len(o)))
	for i, v := range o {
		binary.BigEndian.PutUint32(b[4+4*i:], v)
	}
	return b
}

func unmarshalOID(b []byte) (snmp.OID, bool) {
	if len(b) < 4 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < 0 || len(b) < 4+4*n {
		return nil, false
	}
	o := make(snmp.OID, n)
	for i := range o {
		o[i] = binary.BigEndian.Uint32(b[4+4*i:])
	}
	return o, true
}
