package workload

import (
	"testing"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/netstack"
	"kprof/internal/sim"
)

func embeddedGoodput(t *testing.T, style netstack.DriverStyle) (int, *core.Machine) {
	t.Helper()
	m, le := core.NewEmbeddedMachine(kernel.Config{Seed: 13}, style)
	res, err := EmbeddedNetReceive(m, le, 400*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return res.BytesDelivered, m
}

// The paper's 68020 case study: recoding the Ethernet driver doubled the
// network throughput.
func TestDriverRecodingDoublesThroughput(t *testing.T) {
	oldB, _ := embeddedGoodput(t, netstack.DriverOld)
	newB, _ := embeddedGoodput(t, netstack.DriverRecoded)
	if oldB == 0 || newB == 0 {
		t.Fatalf("no data: old=%d new=%d", oldB, newB)
	}
	ratio := float64(newB) / float64(oldB)
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("recoded/old throughput = %.2fx, want ≈2x", ratio)
	}
}

// The interrupt-architecture comparison the paper wishes for: "It would be
// instructive to profile other microprocessor types running at a similar
// speed using the same software to do a side-by-side comparison." The
// 68020's multi-priority interrupt hardware makes spl* nearly free.
func TestSplCostAcrossArchitectures(t *testing.T) {
	cost := func(arch kernel.Arch) sim.Time {
		k := kernel.New(kernel.Config{Seed: 1, Arch: arch})
		start := k.Now()
		s := k.SplNet()
		k.SplX(s)
		return k.Now() - start
	}
	i386 := cost(kernel.ArchI386)
	m68k := cost(kernel.ArchM68K)
	if i386 < 12*sim.Microsecond {
		t.Fatalf("i386 splnet+splx = %v, want ≈14 µs", i386)
	}
	if m68k > 4*sim.Microsecond {
		t.Fatalf("m68k splnet+splx = %v, want a couple of µs", m68k)
	}
	if float64(i386)/float64(m68k) < 3 {
		t.Fatalf("i386/m68k spl ratio = %.1f, want large", float64(i386)/float64(m68k))
	}
}

// Profiling on the embedded machine works end to end, with the m68k
// interrupt stub name in the capture.
func TestEmbeddedProfiling(t *testing.T) {
	m, le := core.NewEmbeddedMachine(kernel.Config{Seed: 13}, netstack.DriverOld)
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	if _, err := EmbeddedNetReceive(m, le, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	a := s.Analyze()
	if _, ok := a.Fn("VECINTR"); !ok {
		t.Fatal("m68k interrupt stub missing from capture")
	}
	if _, ok := a.Fn("ISAINTR"); ok {
		t.Fatal("i386 stub on a 68020?")
	}
	// The old driver's copy loop dominates the profile.
	lecopy, ok := a.Fn("lecopy")
	if !ok {
		t.Fatal("lecopy missing")
	}
	frac := float64(lecopy.Net) / float64(a.RunTime())
	if frac < 0.3 {
		t.Fatalf("old driver copy loop = %.2f of CPU, want dominant", frac)
	}
}
