package workload

import (
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/sim"
)

func newMachine() *core.Machine {
	return core.NewMachine(kernel.Config{Seed: 42})
}

func newProfiledMachine(t *testing.T) (*core.Machine, *core.Session) {
	t.Helper()
	m := newMachine()
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

// The headline reproduction: the Figure 3 saturation run, measured through
// the real pipeline (triggers → card → decode → reconstruction).
func TestFigure3Shape(t *testing.T) {
	m, s := newProfiledMachine(t)
	s.Arm()
	res, err := NetReceive(m, 400*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	a := s.Analyze()

	if res.BytesDelivered == 0 {
		t.Fatal("no data moved")
	}
	run := a.RunTime()
	elapsed := a.Elapsed()
	if elapsed <= 0 {
		t.Fatal("empty capture")
	}

	// CPU saturated: idle a few percent at most (paper: 1.01%).
	idleFrac := float64(a.Idle) / float64(elapsed)
	if idleFrac > 0.10 {
		t.Fatalf("idle fraction = %.3f, want CPU-bound (paper 0.01)", idleFrac)
	}

	pct := func(name string) float64 {
		st, ok := a.Fn(name)
		if !ok {
			return 0
		}
		return float64(st.Net) / float64(run)
	}
	bcopy, cksum := pct("bcopy"), pct("in_cksum")
	// Paper: bcopy 33.59% net, in_cksum 30.82%.
	if bcopy < 0.25 || bcopy > 0.42 {
		t.Errorf("bcopy net fraction = %.3f, want ≈0.33", bcopy)
	}
	if cksum < 0.25 || cksum > 0.42 {
		t.Errorf("in_cksum net fraction = %.3f, want ≈0.31", cksum)
	}
	// The two dominate together (paper: 64%).
	if bcopy+cksum < 0.55 || bcopy+cksum > 0.80 {
		t.Errorf("bcopy+cksum = %.3f, want ≈0.64", bcopy+cksum)
	}
	// spl* routines: paper "in one test, 9% of the total CPU time".
	spl := pct("splnet") + pct("splx") + pct("spl0") + pct("splbio") + pct("splhigh") + pct("spltty") + pct("splclock")
	if spl < 0.03 || spl > 0.15 {
		t.Errorf("spl* fraction = %.3f, want ≈0.09", spl)
	}
	// The paper's top-ten names all present in the capture.
	for _, name := range []string{"bcopy", "in_cksum", "splnet", "soreceive", "splx", "malloc", "werint", "weget", "free", "westart"} {
		if _, ok := a.Fn(name); !ok {
			t.Errorf("%s missing from profile", name)
		}
	}
	// And the summary's ordering puts bcopy and in_cksum in the top 3.
	top := a.Functions()
	top3 := []string{top[0].Name, top[1].Name, top[2].Name}
	joined := strings.Join(top3, ",")
	if !strings.Contains(joined, "bcopy") || !strings.Contains(joined, "in_cksum") {
		t.Errorf("top-3 = %v, want bcopy and in_cksum there", top3)
	}
}

// Figure 4: the code-path trace shows the paper's nesting.
func TestFigure4TraceShape(t *testing.T) {
	m, s := newProfiledMachine(t)
	s.Arm()
	if _, err := NetReceive(m, 60*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	a := s.Analyze()
	trace := a.TraceString(analyze.TraceOptions{})

	// Driver chain nested under the interrupt stub.
	for _, want := range []string{"-> ISAINTR", "-> weintr", "-> werint", "-> weread", "-> bcopy", "-> ipintr", "-> tcp_input", "-> in_pcblookup", "Context switch"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
	// weintr nested deeper than ISAINTR, werint deeper still.
	iIdx := strings.Index(trace, "-> ISAINTR")
	wIdx := strings.Index(trace, "-> weintr")
	if wIdx < iIdx {
		t.Fatal("weintr before ISAINTR in trace")
	}
	// Inline MGET marks appear.
	if !strings.Contains(trace, "== MGET") {
		t.Fatal("no inline MGET marks")
	}
}

func TestForkExecNumbers(t *testing.T) {
	m, _ := newProfiledMachine(t)
	res := ForkExec(m, 3)
	// Paper: vfork ≈24 ms, execve ≈28 ms.
	if res.ForkTime < 18*sim.Millisecond || res.ForkTime > 32*sim.Millisecond {
		t.Errorf("fork time = %v, want ≈24 ms", res.ForkTime)
	}
	if res.ExecTime < 21*sim.Millisecond || res.ExecTime > 36*sim.Millisecond {
		t.Errorf("exec time = %v, want ≈28 ms", res.ExecTime)
	}
	// Paper: pmap_pte called ≈1053 times per fork.
	if res.PmapPteCallsPerFork < 900 || res.PmapPteCallsPerFork > 1200 {
		t.Errorf("pmap_pte per fork = %d, want ≈1053", res.PmapPteCallsPerFork)
	}
}

func TestFigure5Shape(t *testing.T) {
	m, s := newProfiledMachine(t)
	s.Arm()
	ForkExec(m, 3)
	s.Disarm()
	a := s.Analyze()

	// Over 50% of run time in the VM routines.
	groups := a.Groups(m.SubsystemOf())
	var vmFrac float64
	for _, g := range groups {
		if g.Name == "vm" {
			vmFrac = g.PctNet / 100
		}
	}
	if vmFrac < 0.5 {
		t.Errorf("vm subsystem fraction = %.2f, want >0.5", vmFrac)
	}
	// pmap_remove and pmap_pte among the top net consumers.
	top := a.Functions()
	names := []string{}
	for i := 0; i < len(top) && i < 8; i++ {
		names = append(names, top[i].Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"pmap_remove", "pmap_pte"} {
		if !strings.Contains(joined, want) {
			t.Errorf("top-8 %v missing %s", names, want)
		}
	}
	// pmap_pte: thousands of calls at ≈3 µs.
	pte, ok := a.Fn("pmap_pte")
	if !ok || pte.Calls < 3000 {
		t.Fatalf("pmap_pte calls = %+v", pte)
	}
	if avg := pte.Avg(); avg < 2*sim.Microsecond || avg > 6*sim.Microsecond {
		t.Errorf("pmap_pte avg = %v, want ≈3 µs", avg)
	}
}

func TestFFSWriteShape(t *testing.T) {
	m, _ := newProfiledMachine(t)
	res := FFSWrite(m, 2*sim.Second)
	if res.BytesWritten == 0 || res.WriteSectors == 0 {
		t.Fatal("nothing written")
	}
	// Most inter-interrupt gaps short (paper: "<100 microseconds").
	frac := float64(res.ShortGaps) / float64(res.DiskInterrupts)
	if frac < 0.5 {
		t.Errorf("short-gap fraction = %.2f, want most", frac)
	}
}

func TestFFSReadShape(t *testing.T) {
	m, _ := newProfiledMachine(t)
	res := FFSRead(m, 30)
	if res.MeanReadLatency < 15*sim.Millisecond || res.MeanReadLatency > 29*sim.Millisecond {
		t.Errorf("mean read latency = %v, want 18-26 ms", res.MeanReadLatency)
	}
	if res.BytesRead == 0 {
		t.Fatal("nothing read")
	}
}

func TestNFSvsFTP(t *testing.T) {
	// Separate machines so the workloads don't interfere.
	m1 := newMachine()
	nfsRes, err := NFSTransfer(m1, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine()
	ftpRes, err := FTPTransfer(m2, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if nfsRes.Bytes < 128*1024 || ftpRes.Bytes < 128*1024 {
		t.Fatalf("transfers incomplete: nfs=%d ftp=%d", nfsRes.Bytes, ftpRes.Bytes)
	}
	// Paper: "NFS actually provides less overhead ... than an FTP style
	// connection" because the checksum is skipped.
	nfsPerByte := float64(nfsRes.CPUProxy) / float64(nfsRes.Bytes)
	ftpPerByte := float64(ftpRes.CPUProxy) / float64(ftpRes.Bytes)
	if nfsPerByte >= ftpPerByte {
		t.Errorf("NFS CPU/B (%.1f ns) should beat FTP (%.1f ns)", nfsPerByte, ftpPerByte)
	}
}

func TestMixedWorkloadRuns(t *testing.T) {
	m, s := newProfiledMachine(t)
	s.Arm()
	Mixed(m, 300*sim.Millisecond)
	s.Disarm()
	a := s.Analyze()
	// Table 1's functions all appear.
	for _, name := range []string{"vm_fault", "kmem_alloc", "malloc", "free", "splnet", "spl0", "copyinstr"} {
		if _, ok := a.Fn(name); !ok {
			t.Errorf("%s missing from mixed profile", name)
		}
	}
}

func TestTriggerOverheadSmall(t *testing.T) {
	// The same fork/exec work on an instrumented+attached kernel versus a
	// bare kernel: the paper calculates 1-1.2% extra CPU cycles.
	bare := newMachine()
	r1 := ForkExec(bare, 3)

	prof, s := newProfiledMachine(t)
	s.Arm()
	r2 := ForkExec(prof, 3)
	s.Disarm()

	overhead := float64(r2.ForkTime+r2.ExecTime)/float64(r1.ForkTime+r1.ExecTime) - 1
	if overhead < 0 || overhead > 0.05 {
		t.Errorf("trigger overhead = %.3f, want ≈0.01 (and certainly <0.05)", overhead)
	}
	if overhead == 0 {
		t.Error("instrumentation should cost something")
	}
}

func TestProfilerFillRate(t *testing.T) {
	// Paper: "the Profiler RAM could be filled (16384 events) in as
	// short a time as 300 milliseconds" on a busy kernel.
	m, s := newProfiledMachine(t)
	s.Arm()
	NetReceive(m, sim.Second)
	s.Disarm()
	if !s.Card.Overflowed() {
		t.Fatalf("card not full after 1 s of saturation (%d events)", s.Card.Stored())
	}
	// Find the time of the last stored event: fill time.
	a := s.Analyze()
	fill := a.Elapsed()
	if fill > 900*sim.Millisecond {
		t.Errorf("fill time = %v, want well under a second on a busy kernel", fill)
	}
}
