package workload

import (
	"testing"

	"kprof/internal/core"
	"kprof/internal/kernel"
	"kprof/internal/loadgen"
	"kprof/internal/sim"
)

// shortProday is sized so every load class makes progress in a sub-second
// run without saturating the test suite's wall clock.
var shortProday = Params{
	Duration: 600 * sim.Millisecond,
	Conns:    100,
	Rate:     300,
}

func prodayRun(t *testing.T, seed uint64, p Params) (*core.Machine, *ProdayResult) {
	t.Helper()
	m := core.NewMachine(kernel.Config{Seed: seed})
	if err := ProdaySetup(m, p); err != nil {
		t.Fatal(err)
	}
	res, err := Proday(m, p)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// Every load class must make progress: a mixed workload where a class
// silently starves is not the production day the scenario promises.
func TestProdayAllClassesProgress(t *testing.T) {
	m, res := prodayRun(t, 42, shortProday)
	if res.Arrivals == 0 || res.NetBytes == 0 {
		t.Fatalf("no load offered: %+v", *res)
	}
	if res.DiskOps == 0 || res.VMCycles == 0 || res.NFSCalls == 0 || res.SNMPPolls == 0 {
		t.Fatalf("a load class starved: %+v", *res)
	}
	if res.Storms == 0 || res.Forks == 0 {
		t.Fatalf("no fork storm completed: %+v", *res)
	}
	if m.K.Stats.ContextSw < 100 {
		t.Fatalf("only %d context switches; proday should churn", m.K.Stats.ContextSw)
	}
}

// Same machine seed, same params => identical results and identical final
// virtual time, for every arrival process.
func TestProdayDeterminism(t *testing.T) {
	for _, kind := range []loadgen.Kind{loadgen.Poisson, loadgen.Burst, loadgen.Const} {
		p := shortProday
		p.Arrivals = kind
		m1, r1 := prodayRun(t, 7, p)
		m2, r2 := prodayRun(t, 7, p)
		if *r1 != *r2 {
			t.Fatalf("%v: results diverged:\n%+v\n%+v", kind, *r1, *r2)
		}
		if m1.K.Now() != m2.K.Now() || m1.K.Stats.ContextSw != m2.K.Stats.ContextSw {
			t.Fatalf("%v: machine state diverged: now %v vs %v, ctxsw %d vs %d",
				kind, m1.K.Now(), m2.K.Now(), m1.K.Stats.ContextSw, m2.K.Stats.ContextSw)
		}
		// A different seed must perturb the run.
		_, r3 := prodayRun(t, 8, p)
		if *r1 == *r3 {
			t.Fatalf("%v: seeds 7 and 8 produced identical results", kind)
		}
	}
}

// The Mix knob reshapes the load: an all-net mix must offer no disk/vm/nfs
// arrivals, and a custom mix shifts bytes accordingly.
func TestProdayMixOverride(t *testing.T) {
	p := shortProday
	p.Mix = ProdayMix{Net: 1}
	_, res := prodayRun(t, 42, p)
	if res.NetBytes == 0 {
		t.Fatal("net-only mix offered no net load")
	}
	if res.DiskOps != 0 || res.VMCycles != 0 || res.NFSCalls != 0 || res.SNMPPolls != 0 {
		t.Fatalf("net-only mix ran other classes: %+v", *res)
	}
}

func TestProdayRequiresSetup(t *testing.T) {
	m := core.NewMachine(kernel.Config{Seed: 1})
	if _, err := Proday(m, shortProday); err == nil {
		t.Fatal("Proday without ProdaySetup should fail")
	}
}

func TestProdayRejectsBadParams(t *testing.T) {
	m := core.NewMachine(kernel.Config{Seed: 1})
	if err := ProdaySetup(m, Params{}); err != nil {
		t.Fatal(err)
	}
	p := shortProday
	p.Mix = ProdayMix{Net: -1, Disk: 1}
	if _, err := Proday(m, p); err == nil {
		t.Fatal("non-positive mix total should fail")
	}
}

// The registry entry wires Setup and Run together.
func TestProdayScenarioEntry(t *testing.T) {
	sc, ok := FindScenario("proday")
	if !ok {
		t.Fatal("proday not registered")
	}
	if !sc.TimeBased || sc.Setup == nil {
		t.Fatalf("proday registration wrong: TimeBased=%v Setup=%p", sc.TimeBased, sc.Setup)
	}
	m := core.NewMachine(kernel.Config{Seed: 42})
	if err := sc.Setup(m, shortProday); err != nil {
		t.Fatal(err)
	}
	line, err := sc.Run(m, shortProday)
	if err != nil {
		t.Fatal(err)
	}
	if line == "" {
		t.Fatal("empty result line")
	}
	t.Log(line)
}
