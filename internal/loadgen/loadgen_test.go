package loadgen

import (
	"math"
	"testing"

	"kprof/internal/sim"
)

func mustNew(t *testing.T, cfg Config) *Gen {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Same seed => identical schedule, bit for bit, for every kind.
func TestSeededDeterminism(t *testing.T) {
	for _, kind := range []Kind{Poisson, Burst, Const} {
		cfg := Config{Kind: kind, Rate: 2500, Seed: 42}
		a := mustNew(t, cfg).Times(10000)
		b := mustNew(t, cfg).Times(10000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: schedule diverged at arrival %d: %v vs %v", kind, i, a[i], b[i])
			}
		}
		// And a different seed must NOT reproduce it (Const is seedless
		// by construction, so skip it).
		if kind == Const {
			continue
		}
		c := mustNew(t, Config{Kind: kind, Rate: 2500, Seed: 43}).Times(10000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: seeds 42 and 43 produced identical schedules", kind)
		}
	}
}

// Empirical mean inter-arrival must be within the declared tolerance of
// 1/rate: 2% for Poisson (50k exponential gaps, standard error ~0.45%),
// 10% for Burst (the ON/OFF modulation inflates gap variance), exact for
// Const.
func TestMeanInterArrival(t *testing.T) {
	const n = 50000
	cases := []struct {
		kind Kind
		tol  float64
	}{
		{Poisson, 0.02},
		{Burst, 0.10},
		{Const, 0.001},
	}
	for _, c := range cases {
		for _, rate := range []float64{100, 3000} {
			times := mustNew(t, Config{Kind: c.kind, Rate: rate, Seed: 7}).Times(n)
			mean := float64(times[n-1]-times[0]) / float64(n-1)
			want := float64(sim.Second) / rate
			if rel := math.Abs(mean-want) / want; rel > c.tol {
				t.Errorf("%v rate=%v: mean gap %.0fns, want %.0fns ±%.0f%% (off by %.1f%%)",
					c.kind, rate, mean, want, c.tol*100, rel*100)
			}
		}
	}
}

// Arrival times must be strictly increasing (the scheduler rejects events
// in the past) and the burst process must actually modulate: its gap
// variance should exceed Poisson's at the same mean rate.
func TestScheduleShape(t *testing.T) {
	const n = 20000
	variance := func(times []sim.Time) float64 {
		mean := float64(times[n-1]-times[0]) / float64(n-1)
		var ss float64
		for i := 1; i < n; i++ {
			d := float64(times[i]-times[i-1]) - mean
			ss += d * d
		}
		return ss / float64(n-1)
	}
	var poisVar, burstVar float64
	for _, kind := range []Kind{Poisson, Burst, Const} {
		times := mustNew(t, Config{Kind: kind, Rate: 2000, Seed: 11}).Times(n)
		for i := 1; i < n; i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("%v: non-increasing arrivals at %d: %v then %v", kind, i, times[i-1], times[i])
			}
		}
		switch kind {
		case Poisson:
			poisVar = variance(times)
		case Burst:
			burstVar = variance(times)
		}
	}
	if burstVar <= poisVar {
		t.Errorf("burst gap variance %.0f not above poisson %.0f: ON/OFF modulation missing", burstVar, poisVar)
	}
}

// The open-loop invariant: the schedule is independent of what the arrival
// callbacks do. Two schedulers run the same generator config; on one of
// them every arrival performs extra work (more scheduler events, draws from
// an unrelated rng, simulated "service" that outlives the next arrival).
// The observed arrival times must match exactly.
func TestOpenLoopInvariant(t *testing.T) {
	for _, kind := range []Kind{Poisson, Burst, Const} {
		cfg := Config{Kind: kind, Rate: 5000, Seed: 99}
		run := func(busy bool) []sim.Time {
			s := sim.NewScheduler()
			g := mustNew(t, cfg)
			var got []sim.Time
			svc := sim.NewRand(1)
			g.Schedule(s, 100*sim.Millisecond, func(i int) {
				got = append(got, s.Now())
				if busy {
					// "Service" with random duration, often longer
					// than the next inter-arrival gap, plus noise
					// events crowding the same heap.
					d := svc.Duration(sim.Microsecond, 2*sim.Millisecond)
					s.After(d, func() {})
					s.After(d/2, func() {})
				}
			})
			s.RunUntil(100 * sim.Millisecond)
			return got
		}
		idle, busy := run(false), run(true)
		if len(idle) == 0 {
			t.Fatalf("%v: no arrivals in 100ms at 5000/s", kind)
		}
		if len(idle) != len(busy) {
			t.Fatalf("%v: arrival count depends on service: %d vs %d", kind, len(idle), len(busy))
		}
		for i := range idle {
			if idle[i] != busy[i] {
				t.Fatalf("%v: arrival %d moved under load: %v vs %v", kind, i, idle[i], busy[i])
			}
		}
	}
}

// Schedule must deliver exactly the times Next would report, in order, and
// stop at the deadline.
func TestScheduleMatchesTimes(t *testing.T) {
	cfg := Config{Kind: Poisson, Rate: 1000, Seed: 5}
	want := mustNew(t, cfg).Times(1000)
	s := sim.NewScheduler()
	var got []sim.Time
	mustNew(t, cfg).Schedule(s, 200*sim.Millisecond, func(i int) {
		if i != len(got) {
			t.Fatalf("arrival index %d out of order (have %d)", i, len(got))
		}
		got = append(got, s.Now())
	})
	s.RunUntil(sim.Second)
	if len(got) == 0 {
		t.Fatal("no arrivals scheduled")
	}
	for i, at := range got {
		if at != want[i] {
			t.Fatalf("arrival %d at %v, want %v", i, at, want[i])
		}
		if at >= 200*sim.Millisecond {
			t.Fatalf("arrival %d at %v is past the deadline", i, at)
		}
	}
	// Every pre-deadline arrival must have fired.
	for i, at := range want {
		if at >= 200*sim.Millisecond {
			if i != len(got) {
				t.Fatalf("got %d arrivals, want %d before deadline", len(got), i)
			}
			break
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, rate := range []float64{0, -5, math.Inf(1), math.NaN(), 2e8} {
		if _, err := New(Config{Rate: rate}); err == nil {
			t.Errorf("rate %v: want error", rate)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Poisson, Burst, Const} {
		k, err := ParseKind(kind.String())
		if err != nil || k != kind {
			t.Errorf("ParseKind(%q) = %v, %v", kind.String(), k, err)
		}
	}
	if _, err := ParseKind("uniform"); err == nil {
		t.Error("ParseKind(uniform): want error")
	}
	if s := Kind(9).String(); s != "Kind(9)" {
		t.Errorf("Kind(9).String() = %q", s)
	}
}
