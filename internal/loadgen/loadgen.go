// Package loadgen is a seeded open-loop load generator driven entirely off
// the sim scheduler. "Open loop" means the arrival schedule is a pure
// function of the generator's own seeded random stream: arrivals keep coming
// at the configured rate whether or not the system under test has finished
// serving the previous ones, which is the regime that exposes queueing,
// drain-loss, and deep-nesting behaviour a closed-loop (request/response)
// driver can never produce.
//
// Three arrival processes are provided: Poisson (exponential inter-arrival
// gaps via the inverse CDF), Burst (a two-state ON/OFF modulated Poisson
// process whose long-run mean rate still equals the configured rate), and
// Const (a fixed inter-arrival interval). All draws come from the
// generator's private sim.Rand, so the same seed reproduces the same
// schedule bit for bit — on any host, at any worker count.
package loadgen

import (
	"fmt"
	"math"

	"kprof/internal/sim"
)

// Kind selects an arrival process. The zero value is Poisson, the default
// for loadgen-driven scenarios.
type Kind int

const (
	// Poisson draws independent exponential inter-arrival gaps with mean
	// 1/Rate.
	Poisson Kind = iota
	// Burst is an ON/OFF (interrupted Poisson) process: exponential dwell
	// times in each state, arrivals only while ON, with the ON-state rate
	// scaled up so the long-run mean rate equals Rate.
	Burst
	// Const emits arrivals at a fixed interval of exactly 1/Rate.
	Const
)

// String reports the flag spelling of k.
func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Burst:
		return "burst"
	case Const:
		return "const"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses the -arrivals flag spelling.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "burst":
		return Burst, nil
	case "const":
		return Const, nil
	}
	return Poisson, fmt.Errorf("loadgen: unknown arrival process %q (want poisson, burst, or const)", s)
}

// Config parameterizes a generator.
type Config struct {
	// Kind selects the arrival process (zero value: Poisson).
	Kind Kind
	// Rate is the long-run mean arrival rate in events per simulated
	// second. Must be positive.
	Rate float64
	// Seed seeds the generator's private random stream.
	Seed uint64
	// OnMean and OffMean set the mean ON and OFF dwell times for Burst
	// (zero values: 50ms ON, 150ms OFF, i.e. a 4x peak-to-mean ratio).
	// Ignored by the other kinds.
	OnMean, OffMean sim.Time
}

// Default Burst dwell means: 50ms bursts separated by 150ms lulls.
const (
	DefaultOnMean  = 50 * sim.Millisecond
	DefaultOffMean = 150 * sim.Millisecond
)

// Gen generates one arrival schedule. It is not safe for concurrent use;
// the sim scheduler is single-threaded, so this never comes up in practice.
type Gen struct {
	cfg Config
	rng *sim.Rand

	// Burst state: the end of the current ON period (on=true) or OFF
	// period (on=false).
	on       bool
	dwellEnd sim.Time
	peakMean sim.Time // ON-state mean gap, pre-scaled
	next     sim.Time // absolute time of the next arrival
}

// New builds a generator. The first arrival is drawn immediately, so two
// generators with identical configs agree on the whole schedule from t=0.
func New(cfg Config) (*Gen, error) {
	if !(cfg.Rate > 0) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("loadgen: rate must be a positive finite number of events/sec, got %v", cfg.Rate)
	}
	if cfg.Rate > 1e8 {
		return nil, fmt.Errorf("loadgen: rate %v exceeds 1e8 events/sec (sub-10ns gaps)", cfg.Rate)
	}
	g := &Gen{cfg: cfg, rng: sim.NewRand(cfg.Seed)}
	if cfg.Kind == Burst {
		on, off := cfg.OnMean, cfg.OffMean
		if on <= 0 {
			on = DefaultOnMean
		}
		if off <= 0 {
			off = DefaultOffMean
		}
		g.cfg.OnMean, g.cfg.OffMean = on, off
		// Scale the ON-state rate so the long-run mean over ON+OFF
		// cycles is still cfg.Rate.
		peak := cfg.Rate * float64(on+off) / float64(on)
		g.peakMean = meanGap(peak)
		// Start ON so low-rate short runs still see arrivals.
		g.on = true
		g.dwellEnd = g.exp(on)
	}
	g.next = g.gap(0)
	return g, nil
}

// Kind reports the configured arrival process.
func (g *Gen) Kind() Kind { return g.cfg.Kind }

// Rate reports the configured long-run mean rate in events/sec.
func (g *Gen) Rate() float64 { return g.cfg.Rate }

// meanGap converts a rate in events/sec to a mean gap in sim.Time.
func meanGap(rate float64) sim.Time {
	t := sim.Time(float64(sim.Second) / rate)
	if t < 1 {
		t = 1
	}
	return t
}

// exp draws an exponential variate with the given mean via the inverse CDF.
// math.Log is exactly specified for a given input, so the draw is as
// deterministic as the underlying Uint64 stream.
func (g *Gen) exp(mean sim.Time) sim.Time {
	u := g.rng.Float64() // in [0,1)
	t := sim.Time(-math.Log(1-u) * float64(mean))
	if t < 1 {
		t = 1
	}
	return t
}

// gap draws the inter-arrival gap for an arrival at absolute time t and
// returns the absolute time of the next arrival.
func (g *Gen) gap(t sim.Time) sim.Time {
	switch g.cfg.Kind {
	case Const:
		return t + meanGap(g.cfg.Rate)
	case Burst:
		// Walk dwell periods until an ON-state draw lands inside its
		// period. Arrivals never fall in OFF periods.
		for {
			if !g.on {
				t = g.dwellEnd
				g.on = true
				g.dwellEnd = t + g.exp(g.cfg.OnMean)
				continue
			}
			t += g.exp(g.peakMean)
			if t < g.dwellEnd {
				return t
			}
			t = g.dwellEnd
			g.on = false
			g.dwellEnd = t + g.exp(g.cfg.OffMean)
		}
	default: // Poisson
		return t + g.exp(meanGap(g.cfg.Rate))
	}
}

// Next returns the absolute time of the next arrival and advances the
// schedule. The stream depends only on the config and seed, never on what
// the caller does between calls — the open-loop invariant.
func (g *Gen) Next() sim.Time {
	t := g.next
	g.next = g.gap(t)
	return t
}

// Times returns the first n arrival times without needing a scheduler —
// the property-test entry point.
func (g *Gen) Times(n int) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Schedule arms arrival events on s from now until the until deadline,
// calling fn(i) at the i-th arrival. Each event draws and arms the next
// arrival BEFORE invoking fn, so nothing fn does (blocking, consuming
// random numbers from other streams, advancing time) can perturb the
// schedule. Returns immediately; arrivals fire as s runs.
func (g *Gen) Schedule(s *sim.Scheduler, until sim.Time, fn func(i int)) {
	i := 0
	var arm func(at sim.Time)
	arm = func(at sim.Time) {
		if at >= until {
			return
		}
		s.At(at, func() {
			n := i
			i++
			arm(g.Next())
			fn(n)
		})
	}
	next := g.Next()
	for next <= s.Now() {
		// A generator built mid-run re-anchors: skip arrivals already
		// in the past rather than panicking the scheduler.
		next = g.Next()
	}
	arm(next)
}
