package bus

import (
	"testing"

	"kprof/internal/sim"
)

func TestCalibrationAgainstPaper(t *testing.T) {
	// Driver bcopy: 1500 bytes out of 8-bit controller memory ≈ 1045 µs.
	got := CopyCost(1500, ISA8, MainMemory)
	if got < 1000*sim.Microsecond || got > 1100*sim.Microsecond {
		t.Fatalf("1500B ISA8 copy = %v, want ≈1045 µs", got)
	}
	// copyout: 1 KiB within main memory ≈ 40 µs.
	got = CopyCost(1024, MainMemory, MainMemory)
	if got < 35*sim.Microsecond || got > 50*sim.Microsecond {
		t.Fatalf("1KiB main copy = %v, want ≈40 µs", got)
	}
}

func TestISAIsRoughly20xSlower(t *testing.T) {
	f := SlowdownVsMain(ISA8)
	if f < 15 || f > 20 {
		t.Fatalf("ISA8 slowdown = %.1f, want 15-20x", f)
	}
	if s := SlowdownVsMain(ISA16); s >= f || s < 2 {
		t.Fatalf("ISA16 slowdown = %.1f, want between main and ISA8", s)
	}
	if SlowdownVsMain(MainMemory) != 1 {
		t.Fatal("main memory slowdown != 1")
	}
}

func TestCopyCostDominatedBySlowerSide(t *testing.T) {
	toISA := CopyCost(1000, MainMemory, ISA8)
	fromISA := CopyCost(1000, ISA8, MainMemory)
	if toISA != fromISA {
		t.Fatalf("asymmetric: %v vs %v", toISA, fromISA)
	}
	if CopyCost(1000, ISA8, ISA8) != fromISA {
		t.Fatal("ISA-to-ISA should cost the same as the slower side")
	}
}

func TestZeroLengthCopyIsJustSetup(t *testing.T) {
	if CopyCost(0, MainMemory, MainMemory) != copySetup {
		t.Fatal("zero-length copy should cost only setup")
	}
	if TouchCost(0, ISA8) != 0 {
		t.Fatal("zero-length touch should be free")
	}
}

func TestTouchCost(t *testing.T) {
	if TouchCost(1024, MainMemory) >= TouchCost(1024, ISA8) {
		t.Fatal("touching ISA should cost more than main")
	}
}

func TestRegionString(t *testing.T) {
	for _, r := range []Region{MainMemory, ISA8, ISA16, Region(99)} {
		if r.String() == "" {
			t.Fatal("empty region string")
		}
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative copy":  func() { CopyCost(-1, MainMemory, MainMemory) },
		"negative touch": func() { TouchCost(-1, MainMemory) },
		"bad region":     func() { NsPerByte(Region(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
