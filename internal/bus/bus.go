// Package bus models the memory-system timing of the paper's target PC: a
// 40 MHz i386 with 64 KB of external cache on a fast main-memory bus, and an
// 8-bit ISA expansion bus that is — as the paper measures — up to 20 times
// slower to move data across.
//
// The calibration points come straight from the paper's Network Performance
// section: the WD8003E driver's bcopy of a 1500-byte packet out of the
// 8-bit controller memory takes ≈1045 µs (≈700 ns/byte), while copyout of a
// 1 KiB mbuf cluster within main memory takes ≈40 µs (≈39 ns/byte).
package bus

import "kprof/internal/sim"

// Region identifies where a buffer lives, which determines transfer rates.
type Region int

const (
	// MainMemory is cached system RAM.
	MainMemory Region = iota
	// ISA8 is memory on an 8-bit ISA card (the WD8003E's packet RAM).
	ISA8
	// ISA16 is memory on a 16-bit ISA card, roughly twice as fast as
	// ISA8; the paper wishes for EISA, but 16-bit cards existed.
	ISA16
)

func (r Region) String() string {
	switch r {
	case MainMemory:
		return "main"
	case ISA8:
		return "isa8"
	case ISA16:
		return "isa16"
	}
	return "region?"
}

// Per-byte access costs, calibrated as described in the package comment.
const (
	mainNsPerByte  = 39
	isa8NsPerByte  = 730
	isa16NsPerByte = 290

	// copySetup is the fixed overhead of a block copy: call set-up,
	// direction flag, alignment preamble.
	copySetup = 2 * sim.Microsecond
)

// NsPerByte reports the per-byte cost of streaming access to a region.
func NsPerByte(r Region) sim.Time {
	switch r {
	case MainMemory:
		return mainNsPerByte * sim.Nanosecond
	case ISA8:
		return isa8NsPerByte * sim.Nanosecond
	case ISA16:
		return isa16NsPerByte * sim.Nanosecond
	}
	panic("bus: unknown region")
}

// CopyCost is the time to copy n bytes from src to dst: the slower side of
// the transfer dominates, since the CPU performs the cycles synchronously.
func CopyCost(n int, src, dst Region) sim.Time {
	if n < 0 {
		panic("bus: negative copy length")
	}
	rate := NsPerByte(src)
	if d := NsPerByte(dst); d > rate {
		rate = d
	}
	return copySetup + sim.Time(n)*rate
}

// TouchCost is the time to read n bytes from a region without writing
// (checksumming in place, scanning).
func TouchCost(n int, r Region) sim.Time {
	if n < 0 {
		panic("bus: negative touch length")
	}
	return sim.Time(n) * NsPerByte(r)
}

// SlowdownVsMain reports how many times slower a region is than main
// memory, the paper's "ISA bus is up to 20 times slower" figure.
func SlowdownVsMain(r Region) float64 {
	return float64(NsPerByte(r)) / float64(NsPerByte(MainMemory))
}
