package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"kprof/internal/analyze"
	"kprof/internal/fleet"
)

// The serving half of StatusServer beyond the original poll endpoint:
// the SSE push stream (/events), the time-series ring (/timeseries.json),
// and the live profile exporters (/pprof, /trace.json), all fed by the
// same progress hooks and all revalidating through the generation-counter
// ETag cache (cache.go).

// SetEventBuffer sets the per-subscriber event buffer for subsequent
// /events subscribers (existing subscribers keep theirs). A subscriber
// that falls n events behind is evicted; the default is
// DefaultEventBuffer.
func (s *StatusServer) SetEventBuffer(n int) {
	if n < 1 {
		n = 1
	}
	s.hub.mu.Lock()
	s.hub.buffer = n
	s.hub.mu.Unlock()
}

// SetRingCap sets the time-series ring capacities (windows and load
// points retained). Call it before the run: it replaces the rings, so
// points already recorded are discarded. Zero or negative capacities
// select the defaults.
func (s *StatusServer) SetRingCap(windows, load int) {
	if windows < 1 {
		windows = DefaultWindowRing
	}
	if load < 1 {
		load = DefaultLoadRing
	}
	s.ts.Store(newTimeseries(windows, load))
	s.tsRes.invalidate()
}

// PublishAnalysis publishes a finished analysis as the live profile:
// /pprof and /trace.json render from it until the next publish. The
// analysis must be immutable once published (the driver publishes its
// final analysis and keeps rendering reports from it — both only read).
func (s *StatusServer) PublishAnalysis(a *analyze.Analysis) {
	s.mu.Lock()
	s.analysis = a
	s.mu.Unlock()
	s.pprofRes.invalidate()
	s.traceRes.invalidate()
}

// OnFleetWindow is a fleet window-close hook: assign it to
// fleet.Config.OnWindow. Each closed window becomes a point in the
// /timeseries.json windows ring and (when subscribers are connected) a
// "window" SSE event. Like OnFleetProgress it runs under the staging
// store's lock, so it only records the point and returns.
func (s *StatusServer) OnFleetWindow(ws fleet.WindowSummary) {
	p := WindowPoint{
		Index:    ws.Index,
		StartUS:  ws.StartUS,
		EndUS:    ws.EndUS,
		Machines: ws.Machines,
		Segments: ws.Segments,
		Records:  ws.Records,
		Dropped:  ws.Dropped,
	}
	if len(ws.Top) > 0 {
		p.TopFn = ws.Top[0].Name
		p.TopFnPct = ws.Top[0].PctNetMean
		p.TopFnNetUS = ws.Top[0].NetUSMean
	}
	p = s.ts.Load().pushWindow(p)
	s.tsRes.invalidate()
	if s.hub.active() {
		data, _ := json.Marshal(p)
		s.hub.publish("window", data)
	}
}

// Timeseries returns the current time-series document (what
// /timeseries.json serves).
func (s *StatusServer) Timeseries() Timeseries {
	return s.ts.Load().document()
}

// HubStats returns the SSE hub's lifetime accounting.
func (s *StatusServer) HubStats() HubStats {
	return s.hub.stats()
}

// Subscribe registers an in-process event subscriber — the same bounded
// fan-out an /events client gets, without the HTTP layer (the serving
// benchmark and embedding drivers consume it). Receive from the
// subscription's C until done, then Close it; if C closes first, the hub
// evicted the subscriber as too slow.
func (s *StatusServer) Subscribe() *Subscription {
	return s.hub.subscribe()
}

func (s *StatusServer) renderTimeseries() []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	enc.Encode(s.ts.Load().document())
	return b.Bytes()
}

func (s *StatusServer) serveTimeseries(w http.ResponseWriter, r *http.Request) {
	s.tsRes.serve(w, r, "application/json", s.renderTimeseries)
}

// publishedAnalysis returns the live profile, or nil before any publish.
func (s *StatusServer) publishedAnalysis() *analyze.Analysis {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.analysis
}

func (s *StatusServer) servePprof(w http.ResponseWriter, r *http.Request) {
	a := s.publishedAnalysis()
	if a == nil {
		http.Error(w, "no profile published yet", http.StatusNotFound)
		return
	}
	s.pprofRes.serve(w, r, "application/octet-stream", func() []byte {
		return MarshalPprof(s.publishedAnalysis(), PprofOptions{})
	})
}

func (s *StatusServer) serveTrace(w http.ResponseWriter, r *http.Request) {
	a := s.publishedAnalysis()
	if a == nil {
		http.Error(w, "no profile published yet", http.StatusNotFound)
		return
	}
	s.traceRes.serve(w, r, "application/json", func() []byte {
		var b bytes.Buffer
		WriteChromeTrace(&b, s.publishedAnalysis())
		return b.Bytes()
	})
}

// serveEvents is the SSE stream: an initial "snapshot" event with the
// full current status, then every hub event as it is published. The
// handler goroutine is the only place that blocks on this client — the
// hub's non-blocking publish keeps the capture-side hooks isolated from
// it, and a client that stalls long enough to fill its buffer is evicted
// (its channel closes and the handler returns).
func (s *StatusServer) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.hub.subscribe()
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	snap, _ := json.Marshal(s.Snapshot())
	if _, err := fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", snap); err != nil {
		return
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				// Evicted as a slow client; the stream just ends.
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Name, ev.Data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
