package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/fleet"
	"kprof/internal/sim"
	"kprof/internal/sweep"
)

// The live serving tier: an HTTP server fed by the progress hooks on
// core.Session, sweep.Config and fleet.Config, built to fan one live
// capture out to many concurrent clients without ever touching the
// measured path. Four mechanisms carry it (see DESIGN.md, "Live serving
// tier"):
//
//   - /status.json and / render whatever the hooks last reported, through
//     a generation-counter ETag cache (cache.go): pollers revalidate with
//     If-None-Match and in steady state get 304s that cost no render and
//     no lock;
//   - /events pushes every progress and aggregate delta over SSE through
//     a bounded fan-out hub (hub.go) — slow subscribers are dropped, with
//     accounting, never waited on;
//   - /timeseries.json serves a fixed-capacity ring of recent fleet
//     window summaries and ingest load samples (ring.go), the trend view
//     a client joining mid-run has otherwise missed;
//   - /pprof and /trace.json render the published live analysis through
//     the existing exporter writers (pprof.go, trace.go), byte-identical
//     to the file exports.

// SessionStatus is the live view of one profiling session's capture
// state, mirroring core.Progress. Loss-accounting field names follow the
// repository-wide vocabulary (dropped_strobes; see DESIGN.md).
type SessionStatus struct {
	NowUS          int64   `json:"now_us"`
	Armed          bool    `json:"armed"`
	Mode           string  `json:"mode"`
	Stored         int     `json:"stored"`
	Depth          int     `json:"depth"`
	FillPct        float64 `json:"fill_pct"`
	Overflowed     bool    `json:"overflowed"`
	Segments       int     `json:"segments"`
	DrainedRecords int     `json:"drained_records"`
	Dropped        uint64  `json:"dropped_strobes"`
	// FaultsInjected counts corruptions the session's fault injector has
	// applied; absent when the run is on pristine hardware.
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	// DrainErrs counts drains whose readout failed verification (each one
	// stranded a bank, included in Dropped); absent when every drain read
	// back clean.
	DrainErrs int `json:"drain_errors,omitempty"`
	// Gen is the session's snapshot sequence number (core.Progress.Gen):
	// it increments by one per progress snapshot, so two equal Gens are
	// the same snapshot.
	Gen uint64 `json:"gen"`
}

// SweepStatus is the live view of a multi-seed sweep, mirroring
// sweep.Progress.
type SweepStatus struct {
	Scenario string `json:"scenario"`
	Seeds    int    `json:"seeds"`
	Started  int    `json:"started"`
	Done     int    `json:"done"`
	LastSeed uint64 `json:"last_seed"`
	Segments int    `json:"segments"`
	Dropped  uint64 `json:"dropped_strobes"`
}

// FleetStatus is the live view of a fleet ingest pipeline, mirroring
// fleet.Progress.
type FleetStatus struct {
	Machines     int `json:"machines"`
	MachinesDone int `json:"machines_done"`
	// SegmentsStaged and SegmentsCommitted are lifetime totals; Backlog
	// is the staged-but-uncommitted count bounded by the staging store.
	SegmentsStaged    int `json:"segments_staged"`
	SegmentsCommitted int `json:"segments_committed"`
	Backlog           int `json:"backlog"`
	RecordsCommitted  int `json:"records_committed"`
	// Dropped uses the repository-wide loss vocabulary.
	Dropped uint64 `json:"dropped_strobes"`
	// WatermarkUS is the fleet watermark: every machine's stream is
	// committed at least this far into virtual time.
	WatermarkUS   int64 `json:"watermark_us"`
	WindowsClosed int   `json:"windows_closed"`
}

// StatusSnapshot is everything /status.json serves.
type StatusSnapshot struct {
	// Scenario and State describe the run as a whole; State is free-form
	// ("running", "done", ...) and set by the driver via SetState.
	Scenario string `json:"scenario,omitempty"`
	State    string `json:"state"`
	// Session, Sweep and Fleet are present once the corresponding hook
	// has fired at least once.
	Session *SessionStatus `json:"session,omitempty"`
	Sweep   *SweepStatus   `json:"sweep,omitempty"`
	Fleet   *FleetStatus   `json:"fleet,omitempty"`
	// Serving is the SSE hub's fan-out accounting, present once /events
	// has seen any activity.
	Serving *HubStats `json:"serving,omitempty"`
}

// StatusServer serves the live capture status. Zero value is not usable;
// call NewStatusServer. Wire it up with
//
//	srv := export.NewStatusServer()
//	session.SetProgress(srv.OnSessionProgress)   // and/or
//	sweepCfg.OnProgress = srv.OnSweepProgress
//	url, stop, err := srv.Start(":6060")
//
// All methods are safe for concurrent use: the hooks run on simulation or
// worker goroutines while HTTP handlers read. The hooks build a fresh
// immutable status struct and swap the pointer under the lock — handlers
// and SSE marshaling only ever read published structs, never ones still
// being written.
type StatusServer struct {
	mu       sync.RWMutex
	snap     StatusSnapshot
	analysis *analyze.Analysis

	mux *http.ServeMux
	hub *hub
	ts  atomic.Pointer[timeseries]

	// One ETag generation per cacheable endpoint; every mutator bumps
	// the generations of the resources it affects (see cache.go).
	statusRes cachedResource
	tsRes     cachedResource
	pprofRes  cachedResource
	traceRes  cachedResource
}

// NewStatusServer returns a server with an empty snapshot and State
// "idle".
func NewStatusServer() *StatusServer {
	s := &StatusServer{snap: StatusSnapshot{State: "idle"}}
	s.statusRes.prefix = "st-"
	s.tsRes.prefix = "ts-"
	s.pprofRes.prefix = "pp-"
	s.traceRes.prefix = "tr-"
	// Subscriber-set changes alter the "serving" section, so they
	// invalidate the status resource.
	s.hub = newHub(s.statusRes.invalidate)
	s.ts.Store(newTimeseries(DefaultWindowRing, DefaultLoadRing))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/status.json", s.serveJSON)
	s.mux.HandleFunc("/timeseries.json", s.serveTimeseries)
	s.mux.HandleFunc("/events", s.serveEvents)
	s.mux.HandleFunc("/pprof", s.servePprof)
	s.mux.HandleFunc("/trace.json", s.serveTrace)
	s.mux.HandleFunc("/", s.serveHTML)
	return s
}

// SetScenario records the scenario name shown in the status.
func (s *StatusServer) SetScenario(name string) {
	s.mu.Lock()
	s.snap.Scenario = name
	s.mu.Unlock()
	s.publishState()
	s.statusRes.invalidate()
}

// SetState records the run state ("running", "done", ...).
func (s *StatusServer) SetState(state string) {
	s.mu.Lock()
	s.snap.State = state
	s.mu.Unlock()
	s.publishState()
	s.statusRes.invalidate()
}

// publishState pushes a "state" SSE event with the run identity.
func (s *StatusServer) publishState() {
	if !s.hub.active() {
		return
	}
	s.mu.RLock()
	p := struct {
		Scenario string `json:"scenario,omitempty"`
		State    string `json:"state"`
	}{s.snap.Scenario, s.snap.State}
	s.mu.RUnlock()
	data, _ := json.Marshal(p)
	s.hub.publish("state", data)
}

// OnSessionProgress is a core.Session progress hook: pass it to
// Session.SetProgress.
func (s *StatusServer) OnSessionProgress(p core.Progress) {
	st := &SessionStatus{
		NowUS:          p.Now.Micros(),
		Armed:          p.Armed,
		Mode:           p.Mode.String(),
		Stored:         p.Stored,
		Depth:          p.Depth,
		Overflowed:     p.Overflowed,
		Segments:       p.Segments,
		DrainedRecords: p.SegmentRecords,
		Dropped:        p.Dropped,
		FaultsInjected: p.FaultsInjected,
		DrainErrs:      p.DrainErrs,
	}
	if p.Depth > 0 {
		st.FillPct = 100 * float64(p.Stored) / float64(p.Depth)
	}
	st.Gen = p.Gen
	s.mu.Lock()
	s.snap.Session = st
	s.mu.Unlock()
	if s.hub.active() {
		data, _ := json.Marshal(st)
		s.hub.publish("session", data)
	}
	s.statusRes.invalidate()
}

// OnSweepProgress is a sweep progress hook: assign it to
// sweep.Config.OnProgress.
func (s *StatusServer) OnSweepProgress(p sweep.Progress) {
	st := &SweepStatus{
		Scenario: p.Scenario,
		Seeds:    p.Seeds,
		Started:  p.Started,
		Done:     p.Done,
		LastSeed: p.Seed,
		Segments: p.Segments,
		Dropped:  p.Dropped,
	}
	s.mu.Lock()
	s.snap.Sweep = st
	s.mu.Unlock()
	if s.hub.active() {
		data, _ := json.Marshal(st)
		s.hub.publish("sweep", data)
	}
	s.statusRes.invalidate()
}

// OnFleetProgress is a fleet ingest-pipeline hook: assign it to
// fleet.Config.OnProgress. It runs under the staging store's lock, so it
// only copies the snapshot and returns.
func (s *StatusServer) OnFleetProgress(p fleet.Progress) {
	st := &FleetStatus{
		Machines:          p.Machines,
		MachinesDone:      p.MachinesDone,
		SegmentsStaged:    p.SegmentsStaged,
		SegmentsCommitted: p.SegmentsCommitted,
		Backlog:           p.Backlog,
		RecordsCommitted:  p.RecordsCommitted,
		Dropped:           p.Dropped,
		WatermarkUS:       p.WatermarkUS,
		WindowsClosed:     p.WindowsClosed,
	}
	s.mu.Lock()
	s.snap.Fleet = st
	s.mu.Unlock()
	// The load ring coalesces: only staged/committed transitions become
	// points, and the point carries only interleaving-independent fields
	// (see ring.go's determinism contract). SSE "fleet" events follow the
	// same gate so a watched run streams one delta per real transition.
	if lp, ok := s.ts.Load().pushLoad(LoadPoint{
		Staged:    p.SegmentsStaged,
		Committed: p.SegmentsCommitted,
		Backlog:   p.Backlog,
		Records:   p.RecordsCommitted,
		Dropped:   p.Dropped,
	}); ok {
		s.tsRes.invalidate()
		if s.hub.active() {
			data, _ := json.Marshal(lp)
			s.hub.publish("fleet", data)
		}
	}
	s.statusRes.invalidate()
}

// Snapshot returns a copy of the current status, including the SSE
// hub's accounting once it has seen any activity.
func (s *StatusServer) Snapshot() StatusSnapshot {
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	if hs := s.hub.stats(); hs != (HubStats{}) {
		snap.Serving = &hs
	}
	return snap
}

// Handler returns the HTTP handler serving / (HTML), /status.json,
// /timeseries.json, /events (SSE), /pprof and /trace.json.
func (s *StatusServer) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. ":6060") and serves the status in a
// background goroutine. It returns the reachable URL and a stop function
// that closes the listener.
func (s *StatusServer) Start(addr string) (string, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.mux}
	go srv.Serve(l)
	return "http://" + l.Addr().String(), srv.Close, nil
}

func (s *StatusServer) renderStatus() []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
	return b.Bytes()
}

func (s *StatusServer) serveJSON(w http.ResponseWriter, r *http.Request) {
	s.statusRes.serve(w, r, "application/json", s.renderStatus)
}

func (s *StatusServer) serveHTML(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html><html><head><meta charset=\"utf-8\">")
	fmt.Fprint(w, "<meta http-equiv=\"refresh\" content=\"1\"><title>kprof status</title>")
	fmt.Fprint(w, "<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}")
	fmt.Fprint(w, "td,th{border:1px solid #999;padding:.3em .8em;text-align:right}th{text-align:left}</style>")
	fmt.Fprint(w, "</head><body><h1>kprof</h1>")
	fmt.Fprintf(w, "<p>scenario <b>%s</b> — state <b>%s</b> — <a href=\"/status.json\">status.json</a>"+
		" · <a href=\"/timeseries.json\">timeseries.json</a> · <a href=\"/events\">events</a>"+
		" · <a href=\"/pprof\">pprof</a> · <a href=\"/trace.json\">trace.json</a></p>",
		html.EscapeString(snap.Scenario), html.EscapeString(snap.State))
	if hs := snap.Serving; hs != nil {
		fmt.Fprintf(w, "<p>serving: %d subscriber(s), %d event(s) pushed, %d slow client(s) dropped</p>",
			hs.Subscribers, hs.Published, hs.SlowDropped)
	}
	if st := snap.Session; st != nil {
		fmt.Fprint(w, "<h2>capture</h2><table>")
		fmt.Fprintf(w, "<tr><th>virtual time</th><td>%s</td></tr>", sim.Time(st.NowUS)*sim.Microsecond)
		fmt.Fprintf(w, "<tr><th>mode</th><td>%s</td></tr>", html.EscapeString(st.Mode))
		fmt.Fprintf(w, "<tr><th>armed</th><td>%v</td></tr>", st.Armed)
		fmt.Fprintf(w, "<tr><th>card fill</th><td>%d / %d (%.1f%%)</td></tr>", st.Stored, st.Depth, st.FillPct)
		fmt.Fprintf(w, "<tr><th>overflow LED</th><td>%v</td></tr>", st.Overflowed)
		fmt.Fprintf(w, "<tr><th>drained segments</th><td>%d</td></tr>", st.Segments)
		fmt.Fprintf(w, "<tr><th>drained records</th><td>%d</td></tr>", st.DrainedRecords)
		fmt.Fprintf(w, "<tr><th>dropped strobes</th><td>%d</td></tr>", st.Dropped)
		if st.FaultsInjected > 0 {
			fmt.Fprintf(w, "<tr><th>faults injected</th><td>%d</td></tr>", st.FaultsInjected)
		}
		if st.DrainErrs > 0 {
			fmt.Fprintf(w, "<tr><th>failed drains</th><td>%d</td></tr>", st.DrainErrs)
		}
		fmt.Fprint(w, "</table>")
	}
	if st := snap.Fleet; st != nil {
		fmt.Fprint(w, "<h2>fleet</h2><table>")
		fmt.Fprintf(w, "<tr><th>machines done</th><td>%d / %d</td></tr>", st.MachinesDone, st.Machines)
		fmt.Fprintf(w, "<tr><th>segments committed</th><td>%d / %d staged (%d backlog)</td></tr>",
			st.SegmentsCommitted, st.SegmentsStaged, st.Backlog)
		fmt.Fprintf(w, "<tr><th>records committed</th><td>%d</td></tr>", st.RecordsCommitted)
		fmt.Fprintf(w, "<tr><th>dropped strobes</th><td>%d</td></tr>", st.Dropped)
		fmt.Fprintf(w, "<tr><th>watermark</th><td>%s</td></tr>", sim.Time(st.WatermarkUS)*sim.Microsecond)
		fmt.Fprintf(w, "<tr><th>windows closed</th><td>%d</td></tr>", st.WindowsClosed)
		fmt.Fprint(w, "</table>")
	}
	if doc := s.ts.Load().document(); len(doc.Windows) > 0 || len(doc.Load) > 0 {
		fmt.Fprint(w, "<h2>trend</h2><table>")
		if n := len(doc.Windows); n > 0 {
			recs := make([]int, n)
			for i, p := range doc.Windows {
				recs[i] = p.Records
			}
			last := doc.Windows[n-1]
			fmt.Fprintf(w, "<tr><th>window records</th><td>%s (%d windows, last: %d records", sparkline(recs), doc.WindowsTotal, last.Records)
			if last.TopFn != "" {
				fmt.Fprintf(w, ", top %s %.1f%%", html.EscapeString(last.TopFn), last.TopFnPct)
			}
			fmt.Fprint(w, ")</td></tr>")
		}
		if n := len(doc.Load); n > 0 {
			backlog := make([]int, n)
			for i, p := range doc.Load {
				backlog[i] = p.Backlog
			}
			fmt.Fprintf(w, "<tr><th>ingest backlog</th><td>%s (%d samples, now %d)</td></tr>",
				sparkline(backlog), doc.LoadTotal, doc.Load[n-1].Backlog)
		}
		fmt.Fprint(w, "</table>")
	}
	if st := snap.Sweep; st != nil {
		fmt.Fprint(w, "<h2>sweep</h2><table>")
		fmt.Fprintf(w, "<tr><th>scenario</th><td>%s</td></tr>", html.EscapeString(st.Scenario))
		fmt.Fprintf(w, "<tr><th>seeds done</th><td>%d / %d (%d in flight)</td></tr>",
			st.Done, st.Seeds, st.Started-st.Done)
		fmt.Fprintf(w, "<tr><th>last seed</th><td>%d</td></tr>", st.LastSeed)
		fmt.Fprintf(w, "<tr><th>drain segments</th><td>%d</td></tr>", st.Segments)
		fmt.Fprintf(w, "<tr><th>dropped strobes</th><td>%d</td></tr>", st.Dropped)
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "</body></html>")
}
