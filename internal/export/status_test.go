// Status endpoint coverage beyond the happy path: routing, the
// fault-injection row, and a live faulted capture driving the progress
// hook end to end.
package export

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"kprof/internal/core"
	"kprof/internal/faults"
	"kprof/internal/fleet"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

func statusGet(t *testing.T, srv *StatusServer, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// The served routes answer 200 (profile endpoints only once an analysis
// is published); everything else is a clean 404. /events is exercised by
// the SSE battery in serve_test.go — it streams, so it has no place in a
// one-shot routing sweep.
func TestStatusServerRouting(t *testing.T) {
	srv := NewStatusServer()
	for _, path := range []string{"/", "/status.json", "/timeseries.json"} {
		if rec := statusGet(t, srv, path); rec.Code != 200 {
			t.Fatalf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	for _, path := range []string{"/nope", "/status", "/status.json/extra", "/pprof", "/trace.json"} {
		if rec := statusGet(t, srv, path); rec.Code != 404 {
			t.Fatalf("GET %s = %d, want 404 (profile endpoints have no analysis yet)", path, rec.Code)
		}
	}
	srv.PublishAnalysis(netrecvAnalysis(t, 42, 20*sim.Millisecond))
	for _, path := range []string{"/pprof", "/trace.json"} {
		if rec := statusGet(t, srv, path); rec.Code != 200 {
			t.Fatalf("GET %s after publish = %d, want 200", path, rec.Code)
		}
	}
}

// The faults_injected field rides the progress hook: absent while zero
// (clean sessions keep a clean wire format), present in both views once
// the injector has fired.
func TestStatusServerFaultsInjected(t *testing.T) {
	srv := NewStatusServer()
	srv.OnSessionProgress(core.Progress{Armed: true, Stored: 1, Depth: 1024})
	body := statusGet(t, srv, "/status.json").Body.String()
	if strings.Contains(body, "faults_injected") {
		t.Fatalf("clean session leaked a faults_injected field:\n%s", body)
	}
	if html := statusGet(t, srv, "/").Body.String(); strings.Contains(html, "faults injected") {
		t.Fatalf("clean session rendered a faults row:\n%s", html)
	}

	srv.OnSessionProgress(core.Progress{Armed: true, Stored: 2, Depth: 1024, FaultsInjected: 17})
	var snap StatusSnapshot
	if err := json.Unmarshal(statusGet(t, srv, "/status.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Session == nil || snap.Session.FaultsInjected != 17 {
		t.Fatalf("session status %+v, want 17 faults injected", snap.Session)
	}
	html := statusGet(t, srv, "/").Body.String()
	if !strings.Contains(html, "faults injected") || !strings.Contains(html, "17") {
		t.Fatalf("HTML view missing the faults row:\n%s", html)
	}
}

// A continuous faulted capture drives the hook through arm, drains and
// disarm; the server's final count must agree with the injector's own
// statistics — the live view never under- or over-reports corruption.
func TestStatusServerLiveFaultedSession(t *testing.T) {
	srv := NewStatusServer()
	m := core.NewMachine(kernel.Config{Seed: 42})
	s, err := core.NewSession(m, core.ProfileConfig{
		Mode:   core.CaptureContinuous,
		Depth:  512,
		Faults: &faults.Config{Seed: 9, Rate: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetProgress(srv.OnSessionProgress)
	s.Arm()
	if _, err := workload.NetReceive(m, 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	st, ok := s.FaultStats()
	if !ok || st.Injected() == 0 {
		t.Fatalf("faulted session injected nothing: %+v ok=%v", st, ok)
	}
	snap := srv.Snapshot().Session
	if snap == nil || snap.FaultsInjected != st.Injected() {
		t.Fatalf("status reports %+v, injector says %d", snap, st.Injected())
	}
}

// The fleet section rides OnFleetProgress: absent until the hook fires,
// then present in both views, and a real fleet run drives it end to end
// with a drained final state.
func TestStatusServerFleet(t *testing.T) {
	srv := NewStatusServer()
	if body := statusGet(t, srv, "/status.json").Body.String(); strings.Contains(body, `"fleet"`) {
		t.Fatalf("idle server leaked a fleet section:\n%s", body)
	}
	machines, err := fleet.MachinesFromMix(2, "netrecv", 900, workload.Params{Duration: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Run(fleet.Config{
		Machines:   machines,
		Window:     20 * sim.Millisecond,
		OnProgress: srv.OnFleetProgress,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal(statusGet(t, srv, "/status.json").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	fs := snap.Fleet
	if fs == nil {
		t.Fatal("fleet section missing after a fleet run")
	}
	if fs.Machines != 2 || fs.MachinesDone != 2 || fs.Backlog != 0 {
		t.Fatalf("final fleet status not drained: %+v", fs)
	}
	if fs.SegmentsCommitted != res.Segments || fs.RecordsCommitted != res.Records {
		t.Fatalf("status totals %d/%d, result says %d/%d",
			fs.SegmentsCommitted, fs.RecordsCommitted, res.Segments, res.Records)
	}
	if fs.WatermarkUS != res.WatermarkUS || fs.WindowsClosed != len(res.Windows) {
		t.Fatalf("status watermark/windows %d/%d, result says %d/%d",
			fs.WatermarkUS, fs.WindowsClosed, res.WatermarkUS, len(res.Windows))
	}
	html := statusGet(t, srv, "/").Body.String()
	for _, want := range []string{"fleet", "machines done", "watermark", "windows closed"} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML view missing %q:\n%s", want, html)
		}
	}
}
