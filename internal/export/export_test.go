package export

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/sweep"
	"kprof/internal/tagfile"
	"kprof/internal/workload"
)

// netrecvAnalysis profiles the netrecv scenario at a fixed seed and
// returns the full reconstruction — the same capture the root package's
// golden exporter tests use.
func netrecvAnalysis(t *testing.T, seed uint64, d sim.Time) *analyze.Analysis {
	t.Helper()
	sc, ok := workload.FindScenario("netrecv")
	if !ok {
		t.Fatal("netrecv scenario not registered")
	}
	m := core.NewMachine(kernel.Config{Seed: seed})
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	if _, err := sc.Run(m, workload.Params{Duration: d}); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	return s.Analyze()
}

// ---- minimal pprof proto parser (test-only): just enough of the wire
// format to read back what MarshalPprof emits. ----

type protoReader struct {
	b []byte
	t *testing.T
}

func (r *protoReader) varint() uint64 {
	var v uint64
	for i := 0; ; i++ {
		if len(r.b) == 0 {
			r.t.Fatal("truncated varint")
		}
		c := r.b[0]
		r.b = r.b[1:]
		v |= uint64(c&0x7f) << (7 * i)
		if c&0x80 == 0 {
			return v
		}
	}
}

// field returns the next (field number, varint value or bytes payload).
func (r *protoReader) field() (int, uint64, []byte) {
	key := r.varint()
	switch key & 7 {
	case 0:
		return int(key >> 3), r.varint(), nil
	case 2:
		n := r.varint()
		if uint64(len(r.b)) < n {
			r.t.Fatalf("truncated bytes field of %d", n)
		}
		p := r.b[:n]
		r.b = r.b[n:]
		return int(key >> 3), 0, p
	default:
		r.t.Fatalf("unexpected wire type %d", key&7)
		return 0, 0, nil
	}
}

func (r *protoReader) packed(p []byte) []uint64 {
	sub := &protoReader{b: p, t: r.t}
	var out []uint64
	for len(sub.b) > 0 {
		out = append(out, sub.varint())
	}
	return out
}

type parsedProfile struct {
	strtab    []string
	fnName    map[uint64]string // function id -> name
	locFn     map[uint64]uint64 // location id -> function id
	samples   [][]uint64        // location ids, leaf first
	values    [][]int64
	duration  int64
	period    int64
	sampleTyp []string // "type/unit" per sample value slot
}

func parsePprof(t *testing.T, raw []byte) *parsedProfile {
	t.Helper()
	p := &parsedProfile{fnName: map[uint64]string{}, locFn: map[uint64]uint64{}}
	var fnIDs []uint64
	var fnNameIx []int64
	var types [][2]int64
	r := &protoReader{b: raw, t: t}
	for len(r.b) > 0 {
		f, v, p2 := r.field()
		switch f {
		case 1: // sample_type
			sub := &protoReader{b: p2, t: t}
			var typ, unit int64
			for len(sub.b) > 0 {
				sf, sv, _ := sub.field()
				switch sf {
				case 1:
					typ = int64(sv)
				case 2:
					unit = int64(sv)
				}
			}
			types = append(types, [2]int64{typ, unit})
		case 2: // sample
			sub := &protoReader{b: p2, t: t}
			var locs []uint64
			var vals []int64
			for len(sub.b) > 0 {
				sf, _, sp := sub.field()
				switch sf {
				case 1:
					locs = sub.packed(sp)
				case 2:
					for _, u := range sub.packed(sp) {
						vals = append(vals, int64(u))
					}
				}
			}
			p.samples = append(p.samples, locs)
			p.values = append(p.values, vals)
		case 4: // location
			sub := &protoReader{b: p2, t: t}
			var id, fnID uint64
			for len(sub.b) > 0 {
				sf, sv, sp := sub.field()
				switch sf {
				case 1:
					id = sv
				case 4: // line
					line := &protoReader{b: sp, t: t}
					for len(line.b) > 0 {
						lf, lv, _ := line.field()
						if lf == 1 {
							fnID = lv
						}
					}
				}
			}
			p.locFn[id] = fnID
		case 5: // function
			sub := &protoReader{b: p2, t: t}
			var id uint64
			var nameIx int64
			for len(sub.b) > 0 {
				sf, sv, _ := sub.field()
				switch sf {
				case 1:
					id = sv
				case 2:
					nameIx = int64(sv)
				}
			}
			fnIDs = append(fnIDs, id)
			fnNameIx = append(fnNameIx, nameIx)
		case 6: // string_table
			p.strtab = append(p.strtab, string(p2))
		case 10:
			p.duration = int64(v)
		case 12:
			p.period = int64(v)
		}
	}
	for i, id := range fnIDs {
		ix := fnNameIx[i]
		if ix < 0 || int(ix) >= len(p.strtab) {
			t.Fatalf("function %d name index %d out of range", id, ix)
		}
		p.fnName[id] = p.strtab[ix]
	}
	for _, ty := range types {
		p.sampleTyp = append(p.sampleTyp, p.strtab[ty[0]]+"/"+p.strtab[ty[1]])
	}
	return p
}

// flatCum folds the samples into per-function flat (leaf) and cumulative
// (anywhere in stack, counted once per sample) nanosecond totals.
func (p *parsedProfile) flatCum() (flat, cum map[string]int64) {
	flat = map[string]int64{}
	cum = map[string]int64{}
	for i, locs := range p.samples {
		ns := p.values[i][1]
		if len(locs) > 0 {
			flat[p.name(locs[0])] += ns
		}
		seen := map[string]bool{}
		for _, l := range locs {
			n := p.name(l)
			if !seen[n] {
				seen[n] = true
				cum[n] += ns
			}
		}
	}
	return flat, cum
}

func (p *parsedProfile) name(loc uint64) string { return p.fnName[p.locFn[loc]] }

// The profile parses back to exactly the summary report's accounting:
// flat = net, sample calls = timed calls, duration = elapsed.
func TestPprofMatchesSummary(t *testing.T) {
	a := netrecvAnalysis(t, 42, 60*sim.Millisecond)
	raw := MarshalPprof(a, PprofOptions{})
	p := parsePprof(t, raw)

	if got, want := strings.Join(p.sampleTyp, ","), "calls/count,time/nanoseconds"; got != want {
		t.Fatalf("sample types %q, want %q", got, want)
	}
	if p.strtab[0] != "" {
		t.Fatalf("string_table[0] = %q, want empty", p.strtab[0])
	}
	if p.duration != int64(a.Elapsed()) {
		t.Fatalf("duration_nanos = %d, want %d", p.duration, int64(a.Elapsed()))
	}
	if p.period != 1000 {
		t.Fatalf("period = %d, want 1000", p.period)
	}

	flat, _ := p.flatCum()
	calls := map[string]int64{}
	for i, locs := range p.samples {
		if len(locs) > 0 {
			calls[p.name(locs[0])] += p.values[i][0]
		}
	}
	for _, s := range a.Functions() {
		if s.CtxSwitch {
			continue
		}
		if got := flat[s.Name]; got != int64(s.Net) {
			t.Errorf("%s: flat %d ns, summary net %d ns", s.Name, got, int64(s.Net))
		}
		if got := calls[s.Name]; got != int64(s.TimedCalls) {
			t.Errorf("%s: %d sampled calls, summary timed calls %d", s.Name, got, s.TimedCalls)
		}
	}
	// The flat total is the summary's net total: everything the timed
	// (complete) frames ran. Frames still open at capture end occupy run
	// time but are untimed, so the profile can only undershoot run time.
	var total, net int64
	for _, v := range flat {
		total += v
	}
	for _, s := range a.Functions() {
		net += int64(s.Net)
	}
	if total != net {
		t.Fatalf("sum of flat = %d ns, summary net total %d ns", total, net)
	}
	if total > int64(a.RunTime()) {
		t.Fatalf("sum of flat = %d ns exceeds accumulated run time %d ns", total, int64(a.RunTime()))
	}
}

// The acceptance criterion: `go tool pprof -top` lists the same top-5
// functions as the paper-style net-time report for the golden netrecv
// seed. pprof sorts by flat, the report by net, and the exporter makes
// flat = net, so the order must agree exactly.
func TestPprofTopMatchesReport(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	a := netrecvAnalysis(t, 42, 60*sim.Millisecond)

	dir := t.TempDir()
	path := filepath.Join(dir, "netrecv.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePprof(f, a, PprofOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goBin, "tool", "pprof", "-top", "-nodecount=5", path)
	cmd.Env = append(os.Environ(), "PPROF_NO_BROWSER=1", "HOME="+dir, "XDG_CONFIG_HOME="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof: %v\n%s", err, out)
	}

	var got []string
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		// Rows look like: "flat flat% sum% cum cum% name".
		if len(fields) == 6 && strings.HasSuffix(fields[1], "%") && strings.HasSuffix(fields[4], "%") {
			got = append(got, fields[5])
		}
	}
	var want []string
	for _, s := range a.Functions() {
		if s.CtxSwitch {
			continue
		}
		want = append(want, s.Name)
		if len(want) == 5 {
			break
		}
	}
	if len(got) != 5 || strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("pprof top-5 %v, report top-5 %v\nfull output:\n%s", got, want, out)
	}
}

// WritePprof output is a valid gzip stream wrapping MarshalPprof bytes.
func TestWritePprofGzips(t *testing.T) {
	a := netrecvAnalysis(t, 42, 5*sim.Millisecond)
	var buf bytes.Buffer
	if err := WritePprof(&buf, a, PprofOptions{}); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, MarshalPprof(a, PprofOptions{})) {
		t.Fatal("gzipped payload differs from MarshalPprof")
	}
}

// ---- Chrome trace ----

// traceEvent mirrors the subset of trace_event fields the exporter emits.
type traceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int64                  `json:"tid"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	S    string                 `json:"s"`
	Args map[string]interface{} `json:"args"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

func decodeTrace(t *testing.T, a *analyze.Analysis) *traceFile {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, a); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	return &tf
}

// Every reconstructed frame becomes one complete event; the counts and
// totals agree with the analysis.
func TestChromeTraceEvents(t *testing.T) {
	a := netrecvAnalysis(t, 42, 20*sim.Millisecond)
	tf := decodeTrace(t, a)
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", tf.DisplayTimeUnit)
	}
	enters, inlines := 0, 0
	for _, it := range a.Items {
		switch it.Kind {
		case analyze.TraceEnter:
			enters++
		case analyze.TraceInline:
			inlines++
		}
	}
	durs, instants, metas := 0, 0, 0
	tids := map[int64]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			durs++
			tids[ev.Tid] = true
			if ev.Dur < 0 {
				t.Fatalf("negative duration on %q", ev.Name)
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if durs != enters {
		t.Fatalf("%d duration events, %d frames in the trace", durs, enters)
	}
	if instants != inlines { // no drain segments in a one-shot capture
		t.Fatalf("%d instants, %d inline marks", instants, inlines)
	}
	if metas == 0 {
		t.Fatal("no metadata events")
	}
	if a.Switches > 0 && len(tids) < 2 {
		t.Fatalf("capture has %d context switches but all frames share %d tid(s)", a.Switches, len(tids))
	}
}

// The acceptance criterion: a drain-mode run's trace contains exactly one
// global instant per segment boundary, lossy ones named "drain loss".
func TestChromeTraceDrainBoundaries(t *testing.T) {
	tags, err := tagfile.ParseString("a/500\nb/502\nc/504\n")
	if err != nil {
		t.Fatal(err)
	}
	capOf := func(pairs ...[2]uint32) hw.Capture {
		var c hw.Capture
		for _, p := range pairs {
			c.Records = append(c.Records, hw.Record{Tag: uint16(p[0]), Stamp: p[1] & hw.TimerMask})
		}
		return c
	}
	// Segment 1 ends lossy with a and b open; segment 2 is clean; segment 3
	// closes the capture.
	seg1 := capOf([2]uint32{500, 0}, [2]uint32{502, 10})
	seg1.Dropped = 3
	seg1.Overflowed = true
	seg2 := capOf([2]uint32{504, 100}, [2]uint32{505, 130})
	seg3 := capOf([2]uint32{504, 200}, [2]uint32{505, 230})
	a := analyze.Stitch([]hw.Capture{seg1, seg2, seg3}, tags, analyze.ReconstructOptions{})

	tf := decodeTrace(t, a)
	var clean, lossy int
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "i" || ev.S != "g" {
			continue
		}
		switch ev.Name {
		case TraceEventDrain:
			clean++
		case TraceEventDrainLoss:
			lossy++
			if got := ev.Args["dropped_strobes"].(float64); got != 3 {
				t.Fatalf("lossy boundary dropped_strobes = %v, want 3", got)
			}
			if got := ev.Args["force_closed_frames"].(float64); got != 2 {
				t.Fatalf("lossy boundary force_closed_frames = %v, want 2", got)
			}
		}
	}
	if lossy != 1 || clean != 2 {
		t.Fatalf("boundary instants: %d lossy, %d clean; want 1 lossy, 2 clean (one per segment)", lossy, clean)
	}
}

// ---- status server ----

func TestStatusServer(t *testing.T) {
	srv := NewStatusServer()
	srv.SetScenario("netrecv")
	srv.SetState("running")
	srv.OnSessionProgress(core.Progress{
		Now:    12 * sim.Millisecond,
		Armed:  true,
		Mode:   core.CaptureContinuous,
		Stored: 512, Depth: 1024,
		Segments: 3, SegmentRecords: 3000, Dropped: 7,
	})
	srv.OnSweepProgress(sweep.Progress{
		Scenario: "netrecv", Seeds: 8, Started: 3, Done: 2,
		Seed: 11, Finished: true, Segments: 5, Dropped: 2,
	})

	req := func(path string) (string, string) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Body.String(), rec.Header().Get("Content-Type")
	}
	body, ctype := req("/status.json")
	if ctype != "application/json" {
		t.Fatalf("content type %q", ctype)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.Scenario != "netrecv" || snap.State != "running" {
		t.Fatalf("snapshot header %+v", snap)
	}
	if snap.Session == nil || !snap.Session.Armed || snap.Session.Mode != "continuous" {
		t.Fatalf("session status %+v", snap.Session)
	}
	if snap.Session.FillPct != 50 || snap.Session.Dropped != 7 {
		t.Fatalf("session fill/drops %+v", snap.Session)
	}
	if snap.Sweep == nil || snap.Sweep.Done != 2 || snap.Sweep.Seeds != 8 {
		t.Fatalf("sweep status %+v", snap.Sweep)
	}

	html, ctype := req("/")
	if !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("content type %q", ctype)
	}
	for _, want := range []string{"netrecv", "512 / 1024 (50.0%)", "dropped strobes", "2 / 8"} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML view missing %q:\n%s", want, html)
		}
	}
}

// A continuous-capture session drives the progress hook through arm,
// drain polls and disarm, and the status server ends up with the true
// totals.
func TestStatusServerLiveSession(t *testing.T) {
	sc, ok := workload.FindScenario("netrecv")
	if !ok {
		t.Fatal("netrecv scenario not registered")
	}
	srv := NewStatusServer()
	m := core.NewMachine(kernel.Config{Seed: 42})
	s, err := core.NewSession(m, core.ProfileConfig{
		Mode:  core.CaptureContinuous,
		Depth: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	s.SetProgress(func(p core.Progress) {
		fired++
		srv.OnSessionProgress(p)
	})
	s.Arm()
	if _, err := sc.Run(m, workload.Params{Duration: 100 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	s.Disarm()
	if err := s.DrainErr(); err != nil {
		t.Fatal(err)
	}
	if fired < 3 {
		t.Fatalf("progress hook fired %d times, want arm + polls + disarm", fired)
	}
	st := srv.Snapshot().Session
	if st == nil || st.Armed {
		t.Fatalf("final session status %+v", st)
	}
	if st.Segments != len(s.Segments()) {
		t.Fatalf("status saw %d segments, session has %d", st.Segments, len(s.Segments()))
	}
	want := 0
	for _, seg := range s.Segments() {
		want += seg.Capture.Len()
	}
	if st.DrainedRecords != want {
		t.Fatalf("status saw %d drained records, segments hold %d", st.DrainedRecords, want)
	}
}
