package export

// Minimal protobuf wire-format encoder — exactly the subset the pprof
// profile.proto schema needs (varints, length-delimited submessages and
// strings, packed repeated scalars). Hand-rolled so the repository stays
// standard-library only; the encoding is deterministic byte for byte,
// which the golden exporter tests rely on.

// Wire types of the protobuf encoding.
const (
	wireVarint = 0
	wireBytes  = 2
)

// protoBuf accumulates an encoded message.
type protoBuf struct {
	b []byte
}

// varint appends v in base-128 little-endian-group encoding.
func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// key appends a field key (field number + wire type).
func (p *protoBuf) key(field, wire int) {
	p.varint(uint64(field)<<3 | uint64(wire))
}

// uint64Field appends field=v, omitting the proto3 zero default.
func (p *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	p.key(field, wireVarint)
	p.varint(v)
}

// int64Field appends field=v, omitting the proto3 zero default. pprof's
// schema never stores negative values in practice, but the two's-complement
// varint form is the correct general encoding.
func (p *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	p.key(field, wireVarint)
	p.varint(uint64(v))
}

// stringField appends field=s. Empty strings are omitted (proto3 default);
// repeated-string entries that must be present even when empty (the string
// table's index 0) go through bytesField instead.
func (p *protoBuf) stringField(field int, s string) {
	if s == "" {
		return
	}
	p.bytesField(field, []byte(s))
}

// bytesField appends field=b as a length-delimited value, even when empty.
func (p *protoBuf) bytesField(field int, b []byte) {
	p.key(field, wireBytes)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packedUint64 appends a packed repeated uint64 field.
func (p *protoBuf) packedUint64(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vals {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// packedInt64 appends a packed repeated int64 field.
func (p *protoBuf) packedInt64(field int, vals []int64) {
	if len(vals) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vals {
		inner.varint(uint64(v))
	}
	p.bytesField(field, inner.b)
}
