// Hub-level concurrency battery: the bounded fan-out's eviction policy
// (a stuck subscriber is dropped with accounting, never waited on), the
// idle fast path (no subscribers, no work), and the subscriber-set
// bookkeeping the status cache depends on.
package export

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kprof/internal/core"
)

// progressAt builds a distinct session progress snapshot — each call
// through OnSessionProgress is one published event when subscribers are
// connected.
func progressAt(i int) core.Progress {
	return core.Progress{Stored: i, Depth: 1 << 20, Gen: uint64(i + 1)}
}

// A subscriber that never receives is evicted the moment its buffer
// overflows; the publisher never blocks, healthy subscribers are
// untouched, and the eviction is accounted. This is the slow-client
// test at the hub layer, where the property is exact: the stuck
// subscriber holds precisely its buffer, the healthy one every event.
func TestHubSlowSubscriberEvicted(t *testing.T) {
	srv := NewStatusServer()
	srv.SetEventBuffer(4)
	stuck := srv.Subscribe()
	srv.SetEventBuffer(2048) // future subscribers get the bigger bound
	healthy := srv.Subscribe()

	const events = 1000
	for i := 0; i < events; i++ {
		srv.OnSessionProgress(progressAt(i)) // must never block: no one is reading yet
	}

	st := srv.HubStats()
	if st.SlowDropped != 1 || st.Subscribers != 1 || st.Published != events {
		t.Fatalf("hub stats %+v, want 1 dropped, 1 subscriber, %d published", st, events)
	}

	// The stuck subscriber holds exactly its buffer, then a close.
	got := 0
	for range stuck.C {
		got++
	}
	if got != 4 {
		t.Fatalf("stuck subscriber buffered %d events, want its buffer of 4", got)
	}
	stuck.Close() // idempotent after eviction

	// The healthy subscriber got every event, in order, with contiguous
	// hub sequence numbers.
	var last uint64
	got = 0
	healthy.Close()
	for ev := range healthy.C {
		if last != 0 && ev.Seq != last+1 {
			t.Fatalf("event seq %d after %d, want contiguous", ev.Seq, last)
		}
		last = ev.Seq
		got++
	}
	if got != events {
		t.Fatalf("healthy subscriber got %d events, want %d", got, events)
	}
}

// With no subscribers the hub does no work and counts nothing: the
// unwatched capture path publishes into the void for free, and the
// status snapshot omits the serving section entirely.
func TestHubIdlePublishIsFree(t *testing.T) {
	srv := NewStatusServer()
	for i := 0; i < 100; i++ {
		srv.OnSessionProgress(progressAt(i))
	}
	if st := srv.HubStats(); st != (HubStats{}) {
		t.Fatalf("idle hub accounted %+v, want zero", st)
	}
	if snap := srv.Snapshot(); snap.Serving != nil {
		t.Fatalf("idle snapshot grew a serving section: %+v", snap.Serving)
	}
}

// Subscribe/Close bookkeeping: counts track the set, Close is
// idempotent, and a subscriber who left stops receiving.
func TestHubSubscribeClose(t *testing.T) {
	srv := NewStatusServer()
	a, b := srv.Subscribe(), srv.Subscribe()
	if st := srv.HubStats(); st.Subscribers != 2 {
		t.Fatalf("subscribers %d, want 2", st.Subscribers)
	}
	a.Close()
	a.Close()
	if st := srv.HubStats(); st.Subscribers != 1 {
		t.Fatalf("subscribers %d after close, want 1", st.Subscribers)
	}
	srv.OnSessionProgress(progressAt(1))
	if _, ok := <-a.C; ok {
		t.Fatal("closed subscription still receives")
	}
	select {
	case ev := <-b.C:
		if ev.Name != "session" {
			t.Fatalf("event name %q, want session", ev.Name)
		}
	default:
		t.Fatal("live subscription got nothing")
	}
	b.Close()
}

// The HTTP-level slow-client test: an /events client that never reads
// lets the socket, the handler and finally its hub buffer fill — at
// which point the hub evicts it, while the goroutine doing the
// publishing (standing in for the capture loop) sails through a bounded
// number of events without ever blocking.
func TestHubHTTPSlowClientEvicted(t *testing.T) {
	srv := NewStatusServer()
	srv.SetEventBuffer(8)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read from it

	deadline := time.Now().Add(30 * time.Second)
	published := 0
	for srv.HubStats().SlowDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after %d events published against a stuck client", published)
		}
		// Publish a batch from this goroutine: if the hub ever blocked on
		// the stuck client, this loop — the stand-in capture path — would
		// hang and the deadline above would fire.
		for i := 0; i < 1000; i++ {
			srv.OnSessionProgress(progressAt(published))
			published++
		}
	}
	st := srv.HubStats()
	if st.SlowDropped != 1 {
		t.Fatalf("hub stats %+v, want exactly one eviction", st)
	}
	t.Logf("stuck client evicted after %d events (socket+buffer capacity)", published)
}
