// Time-series ring battery: fixed-capacity bounds under wrap, the
// load-point coalescing rule that keeps /timeseries.json deterministic,
// and the sparkline rendering on the HTML page.
package export

import (
	"encoding/json"
	"strings"
	"testing"

	"kprof/internal/fleet"
)

func windowAt(i int) fleet.WindowSummary {
	return fleet.WindowSummary{
		Index:   int64(i),
		StartUS: int64(i) * 1000,
		EndUS:   int64(i+1) * 1000,
		Records: 100 + i,
		Top:     []fleet.WindowFn{{Name: "tcp_input", PctNetMean: 12.5, NetUSMean: 40}},
	}
}

// Overfilling both rings keeps exactly the newest cap entries, with
// lifetime totals and Seq numbers that expose how much history fell off
// the end.
func TestTimeseriesRingBounds(t *testing.T) {
	srv := NewStatusServer()
	srv.SetRingCap(4, 3)
	for i := 0; i < 10; i++ {
		srv.OnFleetWindow(windowAt(i))
		srv.OnFleetProgress(fleet.Progress{SegmentsStaged: i + 1, SegmentsCommitted: i, Backlog: 1})
	}
	doc := srv.Timeseries()
	if doc.Schema != TimeseriesSchema || doc.WindowCap != 4 || doc.LoadCap != 3 {
		t.Fatalf("doc header %+v", doc)
	}
	if doc.WindowsTotal != 10 || len(doc.Windows) != 4 {
		t.Fatalf("windows: total %d, kept %d; want 10 total, 4 kept", doc.WindowsTotal, len(doc.Windows))
	}
	for i, p := range doc.Windows {
		if want := int64(6 + i); p.Seq != want || p.Index != want {
			t.Fatalf("window %d has seq %d index %d, want %d (oldest-first tail)", i, p.Seq, p.Index, want)
		}
		if p.TopFn != "tcp_input" || p.TopFnPct != 12.5 {
			t.Fatalf("window %d top %q/%v, want tcp_input/12.5", i, p.TopFn, p.TopFnPct)
		}
	}
	if doc.LoadTotal != 10 || len(doc.Load) != 3 {
		t.Fatalf("load: total %d, kept %d; want 10 total, 3 kept", doc.LoadTotal, len(doc.Load))
	}
	if last := doc.Load[len(doc.Load)-1]; last.Staged != 10 || last.Seq != 9 {
		t.Fatalf("newest load point %+v, want staged 10 seq 9", last)
	}

	// The HTTP document agrees with the direct accessor.
	var served Timeseries
	if err := json.Unmarshal(statusGet(t, srv, "/timeseries.json").Body.Bytes(), &served); err != nil {
		t.Fatal(err)
	}
	if served.WindowsTotal != doc.WindowsTotal || len(served.Windows) != len(doc.Windows) ||
		served.LoadTotal != doc.LoadTotal || len(served.Load) != len(doc.Load) {
		t.Fatalf("served document %+v disagrees with Timeseries() %+v", served, doc)
	}
}

// The coalescing rule: progress events that move neither the staged nor
// the committed total (machine completions, watermark-only advances)
// append nothing — they are the interleaving-dependent events, and
// dropping them is what makes the load series deterministic.
func TestLoadPointCoalescing(t *testing.T) {
	srv := NewStatusServer()
	srv.OnFleetProgress(fleet.Progress{SegmentsStaged: 1})                       // append
	srv.OnFleetProgress(fleet.Progress{SegmentsStaged: 1, MachinesDone: 1})      // coalesced away
	srv.OnFleetProgress(fleet.Progress{SegmentsStaged: 1, WatermarkUS: 999})     // coalesced away
	srv.OnFleetProgress(fleet.Progress{SegmentsStaged: 1, SegmentsCommitted: 1}) // append
	doc := srv.Timeseries()
	if doc.LoadTotal != 2 || len(doc.Load) != 2 {
		t.Fatalf("load series %+v, want exactly the 2 transitions", doc.Load)
	}
	if doc.Load[0].Staged != 1 || doc.Load[0].Committed != 0 ||
		doc.Load[1].Staged != 1 || doc.Load[1].Committed != 1 {
		t.Fatalf("load points %+v, want (1,0) then (1,1)", doc.Load)
	}
}

// An empty document serves empty arrays, not nulls — clients can index
// without nil checks.
func TestTimeseriesEmptyArrays(t *testing.T) {
	body := statusGet(t, NewStatusServer(), "/timeseries.json").Body.String()
	for _, want := range []string{`"windows": []`, `"load": []`} {
		if !strings.Contains(body, want) {
			t.Fatalf("empty document missing %q:\n%s", want, body)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("sparkline(nil) = %q", got)
	}
	if got := sparkline([]int{0, 0}); got != "▁▁" {
		t.Fatalf("sparkline zeros = %q", got)
	}
	if got := sparkline([]int{0, 50, 100}); got != "▁▄█" {
		t.Fatalf("sparkline ramp = %q", got)
	}
	if got := sparkline([]int{-5, 100}); got != "▁█" {
		t.Fatalf("sparkline with negative = %q", got)
	}
}

// Rings fed with fleet data surface as sparklines and trend counts on
// the HTML page.
func TestHTMLSparklines(t *testing.T) {
	srv := NewStatusServer()
	for i := 0; i < 6; i++ {
		srv.OnFleetWindow(windowAt(i))
		srv.OnFleetProgress(fleet.Progress{SegmentsStaged: i + 1, SegmentsCommitted: i, Backlog: 1})
	}
	html := statusGet(t, srv, "/").Body.String()
	for _, want := range []string{"trend", "window records", "ingest backlog", "█", "tcp_input", "timeseries.json", "/events", "/pprof", "/trace.json"} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML page missing %q:\n%s", want, html)
		}
	}
}
