package export

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Cached resource rendering with ETag revalidation. Every cacheable
// endpoint owns a cachedResource; every mutation of the state a resource
// renders bumps its generation counter (inside the mutator's critical
// section, after the state change). The serving invariant is one-sided
// and cheap to maintain:
//
//	a 304 is only ever sent for the ETag of the CURRENT generation, and
//	every mutation bumps the generation — so a client holding a stale
//	ETag always gets a 200 with a fresh body, and a client that
//	revalidates an unchanged resource always gets a 304 that cost no
//	render, no marshal, and no snapshot lock.
//
// The body cache may briefly be fresher than its generation label (a
// mutation can land between the generation read and the render), which
// only means one extra re-render on the next miss — never a stale body.

// cachedResource is one endpoint's generation counter plus the rendered
// body for that generation.
type cachedResource struct {
	// prefix distinguishes the resource's ETags (e.g. `"st-7"`).
	prefix string
	gen    atomic.Uint64
	// etag caches the formatted ETag of the current generation so the
	// 304 fast path allocates nothing in steady state.
	etag atomic.Pointer[etagEntry]

	mu      sync.Mutex
	body    []byte
	bodyGen uint64
}

type etagEntry struct {
	gen uint64
	str string
}

// invalidate marks the resource changed; the next request re-renders.
func (c *cachedResource) invalidate() { c.gen.Add(1) }

// currentETag formats (and caches) the ETag of the current generation.
func (c *cachedResource) currentETag() string {
	g := c.gen.Load()
	if e := c.etag.Load(); e != nil && e.gen == g {
		return e.str
	}
	s := `"` + c.prefix + strconv.FormatUint(g, 10) + `"`
	c.etag.Store(&etagEntry{gen: g, str: s})
	return s
}

// etagMatch implements If-None-Match: a comma-separated list of entity
// tags, or "*" for any. Weak tags (W/"...") compare by their opaque part
// — for a 304 the weak comparison is the correct one.
func etagMatch(header, etag string) bool {
	for len(header) > 0 {
		var field string
		field, header, _ = strings.Cut(header, ",")
		field = strings.TrimSpace(field)
		field = strings.TrimPrefix(field, "W/")
		if field == "*" || field == etag {
			return true
		}
	}
	return false
}

// serve answers one request for the resource: a 304 when the client's
// ETag is current (without rendering anything), otherwise the cached
// body for the current generation, re-rendering it only when the
// generation moved since the last render.
func (c *cachedResource) serve(w http.ResponseWriter, r *http.Request, ctype string, render func() []byte) {
	etag := c.currentETag()
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	c.mu.Lock()
	if g := c.gen.Load(); c.body == nil || c.bodyGen != g {
		c.body = render()
		c.bodyGen = g
	}
	body := c.body
	c.mu.Unlock()
	// Cache-Control: no-cache makes clients revalidate (the cheap 304
	// path) instead of reusing a possibly stale body without asking.
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}
