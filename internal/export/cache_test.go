// ETag/If-None-Match conformance battery for the cached endpoints, plus
// the cache-coherence hammer: concurrent conditional readers against a
// live mutator must never observe time running backwards.
package export

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kprof/internal/sim"
)

func TestETagMatch(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{`"st-3"`, `"st-3"`, true},
		{`"st-2"`, `"st-3"`, false},
		{`*`, `"st-3"`, true},
		{`W/"st-3"`, `"st-3"`, true},
		{`"zz", "st-3"`, `"st-3"`, true},
		{`"zz" , W/"st-3"`, `"st-3"`, true},
		{`"zz", "yy"`, `"st-3"`, false},
		{``, `"st-3"`, false},
		{`st-3`, `"st-3"`, false}, // unquoted is not the same entity tag
	}
	for _, c := range cases {
		if got := etagMatch(c.header, c.etag); got != c.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}

// condGet performs a conditional GET with an optional If-None-Match.
func condGet(t *testing.T, srv *StatusServer, path, inm string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", path, nil)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

// The conformance matrix, run against every cached endpoint with that
// endpoint's own mutator: fresh GET → 200+ETag; revalidation with the
// current tag (exact, weak, listed, wildcard) → 304 with no body; a
// stale or garbage tag → 200; after a mutation the old tag → 200 with a
// different ETag and different bytes; repeated unconditional GETs with
// no mutation are byte-identical (the cache serves one render).
func TestETagConformanceMatrix(t *testing.T) {
	a1 := netrecvAnalysis(t, 1, 40*sim.Millisecond)
	a2 := netrecvAnalysis(t, 2, 60*sim.Millisecond)

	endpoints := []struct {
		path   string
		setup  func(*StatusServer)
		mutate func(*StatusServer)
	}{
		{
			path:   "/status.json",
			setup:  func(s *StatusServer) { s.OnSessionProgress(progressAt(1)) },
			mutate: func(s *StatusServer) { s.OnSessionProgress(progressAt(2)) },
		},
		{
			path:   "/timeseries.json",
			setup:  func(s *StatusServer) { s.OnFleetWindow(windowAt(0)) },
			mutate: func(s *StatusServer) { s.OnFleetWindow(windowAt(1)) },
		},
		{
			path:   "/pprof",
			setup:  func(s *StatusServer) { s.PublishAnalysis(a1) },
			mutate: func(s *StatusServer) { s.PublishAnalysis(a2) },
		},
		{
			path:   "/trace.json",
			setup:  func(s *StatusServer) { s.PublishAnalysis(a1) },
			mutate: func(s *StatusServer) { s.PublishAnalysis(a2) },
		},
	}

	for _, ep := range endpoints {
		t.Run(ep.path, func(t *testing.T) {
			srv := NewStatusServer()
			ep.setup(srv)

			fresh := condGet(t, srv, ep.path, "")
			etag := fresh.Header().Get("ETag")
			if fresh.Code != 200 || etag == "" || fresh.Body.Len() == 0 {
				t.Fatalf("fresh GET: code %d, etag %q, %d bytes", fresh.Code, etag, fresh.Body.Len())
			}
			if cc := fresh.Header().Get("Cache-Control"); cc != "no-cache" {
				t.Fatalf("Cache-Control %q, want no-cache (revalidate, don't reuse)", cc)
			}

			// Every way a client can present the current tag earns a 304.
			for _, inm := range []string{etag, "W/" + etag, `"bogus", ` + etag, "*"} {
				rec := condGet(t, srv, ep.path, inm)
				if rec.Code != 304 || rec.Body.Len() != 0 {
					t.Fatalf("If-None-Match %q: code %d, %d body bytes, want empty 304", inm, rec.Code, rec.Body.Len())
				}
				if rec.Header().Get("ETag") != etag {
					t.Fatalf("304 carried ETag %q, want %q", rec.Header().Get("ETag"), etag)
				}
			}

			// A tag the server never issued is a miss.
			if rec := condGet(t, srv, ep.path, `"never-issued"`); rec.Code != 200 || rec.Body.Len() == 0 {
				t.Fatalf("garbage tag: code %d, %d bytes, want full 200", rec.Code, rec.Body.Len())
			}

			// Unmutated re-renders are byte-identical: the cache is serving
			// one render, not re-marshaling per request.
			if again := condGet(t, srv, ep.path, ""); again.Body.String() != fresh.Body.String() {
				t.Fatal("two GETs with no mutation in between returned different bytes")
			}

			// After a mutation the old tag is stale: full 200, new ETag,
			// different bytes.
			ep.mutate(srv)
			rec := condGet(t, srv, ep.path, etag)
			if rec.Code != 200 {
				t.Fatalf("stale tag after mutation: code %d, want 200", rec.Code)
			}
			if rec.Header().Get("ETag") == etag {
				t.Fatal("mutation did not move the ETag")
			}
			if rec.Body.String() == fresh.Body.String() {
				t.Fatal("mutation did not change the body")
			}
		})
	}
}

// Subscribing to /events changes /status.json (the serving section
// appears), so it must invalidate the status cache — as must the
// subscriber leaving.
func TestSubscribeInvalidatesStatus(t *testing.T) {
	srv := NewStatusServer()
	etag := condGet(t, srv, "/status.json", "").Header().Get("ETag")

	sub := srv.Subscribe()
	rec := condGet(t, srv, "/status.json", etag)
	if rec.Code != 200 {
		t.Fatalf("status after subscribe: code %d with old tag, want 200", rec.Code)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Serving == nil || snap.Serving.Subscribers != 1 {
		t.Fatalf("serving section %+v, want 1 subscriber", snap.Serving)
	}

	etag = rec.Header().Get("ETag")
	sub.Close()
	rec = condGet(t, srv, "/status.json", etag)
	if rec.Code != 200 {
		t.Fatalf("status after unsubscribe: code %d with old tag, want 200", rec.Code)
	}
}

// The coherence hammer: one writer advancing the session snapshot,
// many readers doing conditional GETs in a tight loop. Each reader must
// see a non-decreasing stored count (a cached body must never be older
// than one the same reader already saw), and once the writer stops, the
// next unconditional GET shows the final state and its tag revalidates
// as a 304 until the next mutation.
func TestCacheCoherenceUnderConcurrentMutation(t *testing.T) {
	const (
		writes  = 400
		readers = 8
	)
	srv := NewStatusServer()
	srv.OnSessionProgress(progressAt(0))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastStored, etag := -1, ""
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := condGet(t, srv, "/status.json", etag)
				switch rec.Code {
				case 304:
					// Nothing changed for us; keep the tag.
				case 200:
					etag = rec.Header().Get("ETag")
					var snap StatusSnapshot
					if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
						errs <- err
						return
					}
					if snap.Session == nil {
						errs <- fmt.Errorf("session section vanished mid-run")
						return
					}
					if snap.Session.Stored < lastStored {
						errs <- fmt.Errorf("stored went backwards: %d after %d", snap.Session.Stored, lastStored)
						return
					}
					lastStored = snap.Session.Stored
				default:
					errs <- fmt.Errorf("unexpected status %d", rec.Code)
					return
				}
			}
		}()
	}

	for i := 1; i <= writes; i++ {
		srv.OnSessionProgress(progressAt(i))
		if i%50 == 0 {
			time.Sleep(time.Millisecond) // let readers interleave
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent state: the final write is visible, and its tag holds a 304
	// until the next mutation.
	final := condGet(t, srv, "/status.json", "")
	var snap StatusSnapshot
	if err := json.Unmarshal(final.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Session.Stored != writes {
		t.Fatalf("final stored %d, want %d", snap.Session.Stored, writes)
	}
	etag := final.Header().Get("ETag")
	if rec := condGet(t, srv, "/status.json", etag); rec.Code != 304 {
		t.Fatalf("quiescent revalidation: code %d, want 304", rec.Code)
	}
	srv.OnSessionProgress(progressAt(writes + 1))
	if rec := condGet(t, srv, "/status.json", etag); rec.Code != 200 {
		t.Fatalf("post-mutation revalidation: code %d, want 200", rec.Code)
	}
}
