// The serving-tier concurrency battery: SSE fan-out under 100-client
// churn against a live capture, /timeseries.json byte-identity
// regardless of who is watching, live profile endpoints matching the
// offline writers byte for byte, and a multi-client hammer over every
// endpoint at once.
package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kprof/internal/core"
	"kprof/internal/fleet"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/workload"
)

// errShortStream marks a stream that ended (eviction, server shutdown)
// before the reader's quota — a protocol-clean outcome some tests
// tolerate and the churn test treats as fatal.
var errShortStream = errors.New("stream ended early")

// sseRead consumes one /events stream: it requires the snapshot event
// first, then reads `quota` hub events checking the SSE ids are strictly
// increasing, and disconnects. A stream that ends cleanly before the
// quota returns an error wrapping errShortStream.
func sseRead(url string, quota int) error {
	resp, err := http.Get(url + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("/events content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	sawSnapshot := false
	lastID := int64(-1)
	got := 0
	for got < quota && sc.Scan() {
		line := sc.Text()
		if !sawSnapshot && strings.HasPrefix(line, "event: ") {
			if line != "event: snapshot" {
				return fmt.Errorf("first event %q, want the snapshot", line)
			}
			sawSnapshot = true
			continue
		}
		if strings.HasPrefix(line, "id: ") {
			id, err := strconv.ParseInt(line[len("id: "):], 10, 64)
			if err != nil {
				return fmt.Errorf("bad SSE id line %q: %v", line, err)
			}
			if id <= lastID {
				return fmt.Errorf("SSE ids not strictly increasing: %d after %d", id, lastID)
			}
			lastID = id
			got++
		}
	}
	if !sawSnapshot {
		return fmt.Errorf("%w without a snapshot event (read %d events): %v", errShortStream, got, sc.Err())
	}
	if got < quota {
		return fmt.Errorf("%w after %d/%d events: %v", errShortStream, got, quota, sc.Err())
	}
	return nil
}

// The headline churn test: a live capture publishing progress while two
// waves of 50 SSE clients connect, read differing numbers of events and
// disconnect mid-capture. The capture loop must never stall (it finishes
// promptly after stop, with a clean drain), no prompt reader may be
// evicted, and the subscriber set must drain back to zero once the
// clients are gone.
func TestSSEFanoutChurn(t *testing.T) {
	srv := NewStatusServer()
	srv.SetEventBuffer(8192) // prompt readers must never trip eviction
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var stop atomic.Bool
	var cycles atomic.Int64
	capErr := make(chan error, 1)
	go func() {
		// One short capture per cycle on a fresh machine — the shape of a
		// periodic profiling job, and every NetReceive needs its own
		// netstack.
		for seed := uint64(7); !stop.Load(); seed++ {
			m := core.NewMachine(kernel.Config{Seed: seed})
			s, err := core.NewSession(m, core.ProfileConfig{Mode: core.CaptureContinuous, Depth: 1024})
			if err != nil {
				capErr <- err
				return
			}
			s.SetProgress(srv.OnSessionProgress)
			s.Arm()
			if _, err := workload.NetReceive(m, 2*sim.Millisecond); err != nil {
				capErr <- err
				return
			}
			s.Disarm()
			if err := s.DrainErr(); err != nil {
				capErr <- err
				return
			}
			cycles.Add(1)
			time.Sleep(time.Millisecond) // throttle so subscribers keep pace
		}
		capErr <- nil
	}()

	const wave = 50
	errs := make(chan error, 2*wave)
	for _, n := range []int{wave, wave} { // second wave reconnects mid-capture
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := sseRead(hs.URL, 1+i%13); err != nil {
					errs <- err
				}
			}(i)
		}
		wg.Wait()
	}

	stop.Store(true)
	select {
	case err := <-capErr:
		if err != nil {
			t.Fatalf("capture loop: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("capture loop stalled: did not finish after stop")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cycles.Load() == 0 {
		t.Fatal("capture loop never completed a cycle")
	}
	if st := srv.HubStats(); st.SlowDropped != 0 || st.Published == 0 {
		t.Fatalf("hub stats %+v: prompt readers must not be evicted, events must flow", st)
	}
	// Handlers notice the disconnects and unsubscribe.
	deadline := time.Now().Add(10 * time.Second)
	for srv.HubStats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d subscribers still registered after all clients left", srv.HubStats().Subscribers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("churn: %d capture cycles, %d events fanned out", cycles.Load(), srv.HubStats().Published)
}

// fleetTimeseries runs a seeded fleet with the serving hooks attached
// and `subs` SSE clients watching, and returns the final
// /timeseries.json bytes.
func fleetTimeseries(t *testing.T, machines []fleet.MachineConfig, staging, workers, subs int) []byte {
	t.Helper()
	srv := NewStatusServer()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	for i := 0; i < subs; i++ {
		resp, err := http.Get(hs.URL + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		go io.Copy(io.Discard, resp.Body)
	}
	if _, err := fleet.Run(fleet.Config{
		Machines:   machines,
		Window:     20 * sim.Millisecond,
		Staging:    staging,
		Workers:    workers,
		OnProgress: srv.OnFleetProgress,
		OnWindow:   srv.OnFleetWindow,
	}); err != nil {
		t.Fatal(err)
	}
	return statusGet(t, srv, "/timeseries.json").Body.Bytes()
}

// The determinism contract, strong form: with a single machine and a
// staging bound of one, appends and commits strictly alternate, so the
// whole document — load series included — is byte-identical however many
// subscribers are watching (ring.go states the contract).
func TestTimeseriesDeterministicAcrossSubscribers(t *testing.T) {
	one := []fleet.MachineConfig{
		{ID: 0, Seed: 777, Scenario: "netrecv", Params: workload.Params{Duration: 60 * sim.Millisecond}, Depth: 512},
	}
	base := fleetTimeseries(t, one, 1, 1, 0)
	if !bytes.Contains(base, []byte(`"seq"`)) {
		t.Fatalf("fixture fleet produced an empty timeseries:\n%s", base)
	}
	for _, subs := range []int{3, 25} {
		if got := fleetTimeseries(t, one, 1, 1, subs); !bytes.Equal(got, base) {
			t.Errorf("timeseries bytes differ with %d subscribers:\n%s\nwant:\n%s", subs, got, base)
		}
	}
}

// The determinism contract, general form: window close order is fixed
// for any fleet (a PR-8 guarantee), so the windows ring is identical for
// any worker count and subscriber load, even when the load series
// interleaving varies.
func TestTimeseriesWindowsDeterministicMultiMachine(t *testing.T) {
	machines := []fleet.MachineConfig{
		{ID: 0, Seed: 2001, Scenario: "netrecv", Params: workload.Params{Duration: 80 * sim.Millisecond}, Depth: 512},
		{ID: 1, Seed: 2002, Scenario: "netrecv", Params: workload.Params{Duration: 80 * sim.Millisecond}, Depth: 512, ClockHz: 2_000_000},
		{ID: 2, Seed: 2003, Scenario: "mixed", Params: workload.Params{Duration: 80 * sim.Millisecond}, Depth: 1024},
	}
	windowsOf := func(raw []byte) string {
		var doc Timeseries
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, w := range doc.Windows {
			fmt.Fprintf(&b, "%d %d %d %d %d %s %.3f\n", w.Seq, w.Index, w.Records, w.Segments, w.Dropped, w.TopFn, w.TopFnPct)
		}
		if b.Len() == 0 {
			t.Fatal("fleet closed no windows")
		}
		return b.String()
	}
	base := windowsOf(fleetTimeseries(t, machines, 0, 1, 0))
	if got := windowsOf(fleetTimeseries(t, machines, 0, 4, 8)); got != base {
		t.Errorf("windows ring differs with 4 workers and 8 subscribers:\n%s\nwant:\n%s", got, base)
	}
}

// The live profile endpoints are the offline writers, served: /pprof
// bytes are exactly MarshalPprof of the published analysis and
// /trace.json exactly WriteChromeTrace — both 404 until a publish.
func TestLiveProfileEndpointsMatchWriters(t *testing.T) {
	srv := NewStatusServer()
	for _, path := range []string{"/pprof", "/trace.json"} {
		if rec := statusGet(t, srv, path); rec.Code != 404 {
			t.Fatalf("GET %s before publish = %d, want 404", path, rec.Code)
		}
	}

	a := netrecvAnalysis(t, 42, 60*sim.Millisecond)
	srv.PublishAnalysis(a)

	rec := statusGet(t, srv, "/pprof")
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("GET /pprof = %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if want := MarshalPprof(a, PprofOptions{}); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("/pprof served %d bytes, MarshalPprof produced %d — not identical", rec.Body.Len(), len(want))
	}

	rec = statusGet(t, srv, "/trace.json")
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("GET /trace.json = %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var want bytes.Buffer
	if err := WriteChromeTrace(&want, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatalf("/trace.json served %d bytes, WriteChromeTrace wrote %d — not identical", rec.Body.Len(), want.Len())
	}
}

// The multi-client race audit: a live session and a stream of fleet
// hooks mutate the server while clients hammer every endpoint —
// conditional status polls, timeseries reads, the HTML page, profile
// fetches and SSE streams, plus publish/re-publish of the analysis.
// The -race leg of scripts/check.sh runs this; any unsynchronized
// access in the serving tier trips it.
func TestServingMultiClientLiveSession(t *testing.T) {
	srv := NewStatusServer()
	srv.SetEventBuffer(4096)
	srv.PublishAnalysis(netrecvAnalysis(t, 42, 20*sim.Millisecond))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Live sessions feeding OnSessionProgress, one short capture per
	// cycle (NetReceive needs a fresh netstack each time).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seed := uint64(11); !stop.Load(); seed++ {
			m := core.NewMachine(kernel.Config{Seed: seed})
			s, err := core.NewSession(m, core.ProfileConfig{Mode: core.CaptureContinuous, Depth: 512})
			if err != nil {
				errs <- err
				return
			}
			s.SetProgress(srv.OnSessionProgress)
			s.Arm()
			if _, err := workload.NetReceive(m, sim.Millisecond); err != nil {
				errs <- err
				return
			}
			s.Disarm()
			if err := s.DrainErr(); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Fleet hooks firing from a second producer, as in a fleet run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			srv.OnFleetProgress(fleet.Progress{SegmentsStaged: i + 1, SegmentsCommitted: i, Backlog: 1})
			srv.OnFleetWindow(windowAt(i))
			time.Sleep(time.Millisecond)
		}
	}()

	// Re-publishing the analysis races the profile endpoints.
	a2 := netrecvAnalysis(t, 43, 20*sim.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			srv.PublishAnalysis(a2)
			time.Sleep(time.Millisecond)
		}
	}()

	// Clients: conditional status polls plus reads of every other endpoint.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			etag := ""
			for !stop.Load() {
				rec := condGet(t, srv, "/status.json", etag)
				if rec.Code == 200 {
					etag = rec.Header().Get("ETag")
				}
				for _, path := range []string{"/timeseries.json", "/", "/pprof", "/trace.json"} {
					if rec := statusGet(t, srv, path); rec.Code != 200 {
						errs <- fmt.Errorf("GET %s = %d mid-run", path, rec.Code)
						return
					}
				}
			}
		}()
	}

	// Two SSE clients churning against the live feed. A short stream
	// (eviction under load) is a legitimate outcome here; protocol
	// violations are not.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := sseRead(hs.URL, 5); err != nil && !errors.Is(err, errShortStream) {
					errs <- err
					return
				}
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	// An SSE reader that connected just before stop is still waiting for
	// its event quota; keep a wind-down publisher running until everyone
	// has drained so nobody waits on a silent hub.
	done := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
				srv.OnSessionProgress(progressAt(1_000_000 + i))
			}
		}
	}()
	wg.Wait()
	close(done)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
