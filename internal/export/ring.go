package export

import "sync"

// The time-series ring behind /timeseries.json: fixed-capacity history of
// (a) closed fleet window summaries and (b) ingest load samples, so a
// client joining mid-run can see the recent trend without having polled
// from the start. Capacity is fixed up front and old points are
// overwritten — a multi-day run holds the ring, not the run's history.
//
// Determinism contract: the windows series is a pure function of the
// committed samples (window close order is deterministic), and a load
// point is appended only when the staged or committed segment totals
// changed — never for machine-completion or watermark-only progress
// events, whose field values depend on goroutine interleaving. A load
// point therefore carries only interleaving-independent fields, and
// /timeseries.json is byte-identical for a seeded single-pipeline run no
// matter how many subscribers watch (the battery asserts this).

// TimeseriesSchema identifies the /timeseries.json document format.
const TimeseriesSchema = "kprof-timeseries/1"

// Default ring capacities (see SetRingCap).
const (
	DefaultWindowRing = 256
	DefaultLoadRing   = 512
)

// WindowPoint is one closed fleet window in the time series. Seq is the
// lifetime point index (0-based), so a ring that has wrapped still shows
// how much history was discarded; the remaining fields mirror
// fleet.WindowSummary with the per-window top function inlined.
type WindowPoint struct {
	Seq      int64  `json:"seq"`
	Index    int64  `json:"index"`
	StartUS  int64  `json:"start_us"`
	EndUS    int64  `json:"end_us"`
	Machines int    `json:"machines"`
	Segments int    `json:"segments"`
	Records  int    `json:"records"`
	Dropped  uint64 `json:"dropped_strobes"`
	// TopFn is the window's heaviest function by mean net time, with its
	// cross-machine mean share of run time; absent for empty windows.
	TopFn      string  `json:"top_fn,omitempty"`
	TopFnPct   float64 `json:"top_fn_pct_net,omitempty"`
	TopFnNetUS float64 `json:"top_fn_net_us_mean,omitempty"`
}

// LoadPoint is one ingest-pipeline load sample: backlog and throughput
// at a staged- or committed-segment transition. Only
// interleaving-independent fields are recorded (see the determinism
// contract above).
type LoadPoint struct {
	Seq int64 `json:"seq"`
	// Staged and Committed are lifetime segment totals; Backlog is
	// staged-minus-committed, the staging-store occupancy.
	Staged    int `json:"segments_staged"`
	Committed int `json:"segments_committed"`
	Backlog   int `json:"backlog"`
	// Records and Dropped total the committed samples.
	Records int    `json:"records_committed"`
	Dropped uint64 `json:"dropped_strobes"`
}

// Timeseries is the /timeseries.json document: both rings oldest-first,
// plus lifetime totals so a wrapped ring is recognizable (Seq of the
// first point > 0, or total > len).
type Timeseries struct {
	Schema string `json:"schema"`
	// WindowCap and LoadCap are the ring capacities.
	WindowCap int `json:"window_cap"`
	LoadCap   int `json:"load_cap"`
	// WindowsTotal and LoadTotal count points ever appended, including
	// ones the rings have since overwritten.
	WindowsTotal int64 `json:"windows_total"`
	LoadTotal    int64 `json:"load_total"`
	// Windows and Load list the retained points, oldest first.
	Windows []WindowPoint `json:"windows"`
	Load    []LoadPoint   `json:"load"`
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf   []T
	next  int // buf index the next push writes
	n     int // live entries, ≤ len(buf)
	total int64
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) push(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
}

// snapshot copies the live entries oldest-first.
func (r *ring[T]) snapshot() []T {
	out := make([]T, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// timeseries holds both rings and the load-coalescing state.
type timeseries struct {
	mu      sync.Mutex
	windows ring[WindowPoint]
	load    ring[LoadPoint]
	// lastStaged/lastCommitted dedupe load points: only a staged or
	// committed transition appends one.
	lastStaged    int
	lastCommitted int
}

func newTimeseries(windowCap, loadCap int) *timeseries {
	return &timeseries{
		windows: newRing[WindowPoint](windowCap),
		load:    newRing[LoadPoint](loadCap),
	}
}

// pushWindow appends a window point, assigning its Seq, and returns it.
func (t *timeseries) pushWindow(p WindowPoint) WindowPoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	p.Seq = t.windows.total
	t.windows.push(p)
	return p
}

// pushLoad appends a load point if the staged/committed totals moved
// since the last one; reports whether it appended.
func (t *timeseries) pushLoad(p LoadPoint) (LoadPoint, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.load.total > 0 && p.Staged == t.lastStaged && p.Committed == t.lastCommitted {
		return LoadPoint{}, false
	}
	t.lastStaged = p.Staged
	t.lastCommitted = p.Committed
	p.Seq = t.load.total
	t.load.push(p)
	return p, true
}

// document assembles the /timeseries.json payload.
func (t *timeseries) document() Timeseries {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := Timeseries{
		Schema:       TimeseriesSchema,
		WindowCap:    len(t.windows.buf),
		LoadCap:      len(t.load.buf),
		WindowsTotal: t.windows.total,
		LoadTotal:    t.load.total,
		Windows:      t.windows.snapshot(),
		Load:         t.load.snapshot(),
	}
	return doc
}

// sparkline renders vals as a block-character strip scaled to the
// maximum value (the HTML page's trend view). Empty input renders empty.
func sparkline(vals []int) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := 0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		lv := 0
		if max > 0 {
			lv = v * (len(blocks) - 1) / max
		}
		out[i] = blocks[lv]
	}
	return string(out)
}
