package export

import (
	"sync"
	"sync/atomic"
)

// The SSE fan-out hub. Progress hooks run on the simulation and
// projection goroutines — the measured path — so publishing must never
// block there, whatever the subscribers do. The hub gives every
// subscriber a bounded buffered channel and publishes with a non-blocking
// send: a subscriber whose buffer is full is evicted on the spot (its
// channel is closed and SlowDropped accounts for it) rather than ever
// holding a send. When nobody is subscribed, Publish returns after one
// atomic load, so an unwatched capture pays nothing for the hub's
// existence. See DESIGN.md ("Live serving tier") for the policy
// discussion.

// DefaultEventBuffer is the per-subscriber event buffer when
// StatusServer.SetEventBuffer was not called. A subscriber that falls
// this many events behind the capture is dropped.
const DefaultEventBuffer = 64

// Event is one hub event: a name (the SSE event type), a JSON payload,
// and a hub-wide monotonic sequence number (the SSE id).
type Event struct {
	Seq  uint64
	Name string
	Data []byte
}

// HubStats is the hub's lifetime accounting, served in /status.json's
// "serving" section.
type HubStats struct {
	// Subscribers is the current subscriber count.
	Subscribers int `json:"subscribers"`
	// Published counts events accepted for fan-out (publishes while
	// nobody was subscribed are not events and are not counted).
	Published uint64 `json:"events_published"`
	// SlowDropped counts subscribers evicted because their buffer was
	// full when an event arrived.
	SlowDropped uint64 `json:"slow_clients_dropped"`
}

// hub is the bounded fan-out hub behind /events.
type hub struct {
	// nsubs mirrors len(subs) so Publish can bail without the lock when
	// nobody is listening.
	nsubs atomic.Int32

	mu          sync.Mutex
	subs        map[*Subscription]struct{}
	seq         uint64
	published   uint64
	slowDropped uint64
	buffer      int
	// onChange fires (outside the lock) whenever the subscriber set
	// changes — the status cache includes the count, so it must
	// invalidate.
	onChange func()
}

func newHub(onChange func()) *hub {
	return &hub{
		subs:     make(map[*Subscription]struct{}),
		buffer:   DefaultEventBuffer,
		onChange: onChange,
	}
}

// Subscription is one event subscriber — an /events HTTP client, or an
// in-process consumer from StatusServer.Subscribe. Receive from C until
// it is closed: a close without Close being called means the hub evicted
// the subscriber as too slow.
type Subscription struct {
	// C delivers events in publish order.
	C <-chan Event
	h *hub
	c chan Event
}

// active reports whether anyone is subscribed; callers use it to skip
// payload marshaling entirely on the unwatched path.
func (h *hub) active() bool { return h.nsubs.Load() > 0 }

// subscribe registers a new subscriber with the hub's current buffer
// bound.
func (h *hub) subscribe() *Subscription {
	h.mu.Lock()
	s := &Subscription{h: h, c: make(chan Event, h.buffer)}
	s.C = s.c
	h.subs[s] = struct{}{}
	h.nsubs.Store(int32(len(h.subs)))
	h.mu.Unlock()
	if h.onChange != nil {
		h.onChange()
	}
	return s
}

// Close unsubscribes. Safe to call after eviction and more than once.
func (s *Subscription) Close() {
	h := s.h
	h.mu.Lock()
	_, present := h.subs[s]
	if present {
		delete(h.subs, s)
		close(s.c)
		h.nsubs.Store(int32(len(h.subs)))
	}
	h.mu.Unlock()
	if present && h.onChange != nil {
		h.onChange()
	}
}

// publish fans one event out to every subscriber without ever blocking:
// a full buffer evicts its subscriber (close + account) instead of
// holding the send. Channel close happens under the same lock as every
// send, so an evicted channel can never be sent to again.
func (h *hub) publish(name string, data []byte) {
	if !h.active() {
		return
	}
	h.mu.Lock()
	if len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	h.seq++
	h.published++
	ev := Event{Seq: h.seq, Name: name, Data: data}
	evicted := false
	for s := range h.subs {
		select {
		case s.c <- ev:
		default:
			delete(h.subs, s)
			close(s.c)
			h.slowDropped++
			evicted = true
		}
	}
	h.nsubs.Store(int32(len(h.subs)))
	h.mu.Unlock()
	if evicted && h.onChange != nil {
		h.onChange()
	}
}

// stats reports the hub's lifetime accounting.
func (h *hub) stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Subscribers: len(h.subs),
		Published:   h.published,
		SlowDropped: h.slowDropped,
	}
}
