// Package export converts a reconstructed capture (analyze.Analysis) into
// the formats modern profiling consumers expect, and serves live capture
// status over HTTP:
//
//   - MarshalPprof / WritePprof emit a pprof-compatible protobuf profile
//     (hand-rolled encoding, no dependencies) whose samples carry the
//     reconstructed call stacks with per-stack call counts and nanosecond
//     self times, so `go tool pprof` renders the simulated kernel exactly
//     as it renders a Go program: flat = the paper's net column,
//     cumulative = the paper's elapsed column.
//   - WriteChromeTrace emits the nested frames as Chrome trace_event
//     duration events — viewable in Perfetto or chrome://tracing — with
//     per-process tracks split at the context switcher and one instant
//     event per drain-segment boundary (loss boundaries marked).
//   - StatusServer exposes capture progress (fill level, drained
//     segments, dropped strobes, sweep worker progress) as JSON plus a
//     minimal HTML view, fed by the progress hooks on core.Session and
//     sweep.Config.
//
// The exporters need a full reconstruction (Session.Analyze or
// analyze.Reconstruct): the lean streaming path discards the invocation
// trees the stacks and duration events are built from.
package export

import (
	"compress/gzip"
	"fmt"
	"io"

	"kprof/internal/analyze"
)

// pprof profile.proto field numbers. The schema is the stable public one
// consumed by `go tool pprof` (google/pprof/proto/profile.proto).
const (
	// Profile
	profSampleType    = 1
	profSample        = 2
	profLocation      = 4
	profFunction      = 5
	profStringTable   = 6
	profTimeNanos     = 9
	profDurationNanos = 10
	profPeriodType    = 11
	profPeriod        = 12
	profComment       = 13

	// ValueType
	vtType = 1
	vtUnit = 2

	// Sample
	sampleLocationID = 1
	sampleValue      = 2

	// Location
	locID   = 1
	locLine = 4

	// Line
	lineFunctionID = 1

	// Function
	fnID         = 1
	fnName       = 2
	fnSystemName = 3
)

// PprofOptions tunes the pprof export.
type PprofOptions struct {
	// PeriodNS is the sampling period recorded on the profile, in
	// nanoseconds; 0 means 1000 — the prototype card's 1 µs counter
	// resolution.
	PeriodNS int64
}

// pprofSample is one unique call stack's accumulated values.
type pprofSample struct {
	locs  []uint64 // leaf first, as the schema requires
	calls int64
	ns    int64
}

// pprofBuilder assigns deterministic ids while walking the invocation
// trees: functions and locations in first-encounter order (1:1, one
// synthetic location per function), samples in first-encounter stack
// order, strings in insertion order. Determinism is what makes the golden
// byte-for-byte tests possible.
type pprofBuilder struct {
	strings  map[string]int64
	strtab   []string
	funcIDs  map[string]uint64
	funcs    []string // name per id, in id order (id = index+1)
	sampleIx map[string]int
	samples  []*pprofSample
}

func newPprofBuilder() *pprofBuilder {
	b := &pprofBuilder{
		strings:  map[string]int64{"": 0},
		strtab:   []string{""},
		funcIDs:  map[string]uint64{},
		sampleIx: map[string]int{},
	}
	return b
}

func (b *pprofBuilder) str(s string) int64 {
	if ix, ok := b.strings[s]; ok {
		return ix
	}
	ix := int64(len(b.strtab))
	b.strings[s] = ix
	b.strtab = append(b.strtab, s)
	return ix
}

func (b *pprofBuilder) loc(name string) uint64 {
	if id, ok := b.funcIDs[name]; ok {
		return id
	}
	id := uint64(len(b.funcs) + 1)
	b.funcIDs[name] = id
	b.funcs = append(b.funcs, name)
	b.str(name)
	return id
}

// add folds one invocation into the sample keyed by its root-first stack.
func (b *pprofBuilder) add(rootFirst []uint64, ns int64) {
	var key protoBuf
	for _, l := range rootFirst {
		key.varint(l)
	}
	k := string(key.b)
	var smp *pprofSample
	if ix, ok := b.sampleIx[k]; ok {
		smp = b.samples[ix]
	} else {
		leafFirst := make([]uint64, len(rootFirst))
		for i, l := range rootFirst {
			leafFirst[len(rootFirst)-1-i] = l
		}
		smp = &pprofSample{locs: leafFirst}
		b.sampleIx[k] = len(b.samples)
		b.samples = append(b.samples, smp)
	}
	smp.calls++
	smp.ns += ns
}

// walk adds every complete invocation of the tree rooted at n. Incomplete
// frames (force-closed or still open) have unknowable self time and
// contribute no sample of their own, exactly as they are excluded from the
// summary's timed statistics — but their name still appears in the stacks
// of their complete descendants.
func (b *pprofBuilder) walk(stack []uint64, n *analyze.Node) {
	stack = append(stack, b.loc(n.Name))
	if n.Complete {
		ns := int64(n.Net())
		if ns < 0 {
			ns = 0
		}
		b.add(stack, ns)
	}
	for _, c := range n.Children {
		b.walk(stack, c)
	}
}

// MarshalPprof encodes the analysis as an uncompressed pprof protobuf
// profile. Sample values are [calls/count, time/nanoseconds]; each sample
// is one unique reconstructed call stack, its time the accumulated net
// (self) time of the invocations with that stack. `go tool pprof -top`
// therefore shows flat = the summary report's net column and cum = its
// elapsed column. The output is deterministic byte for byte.
func MarshalPprof(a *analyze.Analysis, opts PprofOptions) []byte {
	period := opts.PeriodNS
	if period == 0 {
		period = 1000
	}
	b := newPprofBuilder()
	// Pre-intern the type/unit strings so the table layout is stable
	// regardless of function names.
	callsIx, countIx := b.str("calls"), b.str("count")
	timeIx, nanosIx := b.str("time"), b.str("nanoseconds")
	for _, it := range a.Items {
		if it.Kind == analyze.TraceExit && it.Node != nil && it.Depth == 0 {
			b.walk(nil, it.Node)
		}
	}
	// A capture the hardened decoder had to repair carries its corruption
	// accounting as a profile comment (`go tool pprof` prints it under
	// "Comment:"). Interned before the string table is emitted; clean
	// captures intern nothing, so their bytes are unchanged.
	commentIx := int64(-1)
	if a.Stats.CorruptRecords > 0 {
		commentIx = b.str(fmt.Sprintf("decode: %d corrupt records, %d repaired timestamps, %d resyncs",
			a.Stats.CorruptRecords, a.Stats.RepairedTimestamps, a.Stats.Resyncs))
	}

	var p protoBuf
	vt := func(typ, unit int64) []byte {
		var v protoBuf
		v.int64Field(vtType, typ)
		v.int64Field(vtUnit, unit)
		return v.b
	}
	p.bytesField(profSampleType, vt(callsIx, countIx))
	p.bytesField(profSampleType, vt(timeIx, nanosIx))
	for _, smp := range b.samples {
		var s protoBuf
		s.packedUint64(sampleLocationID, smp.locs)
		s.packedInt64(sampleValue, []int64{smp.calls, smp.ns})
		p.bytesField(profSample, s.b)
	}
	for i := range b.funcs {
		id := uint64(i + 1)
		var line protoBuf
		line.uint64Field(lineFunctionID, id)
		var loc protoBuf
		loc.uint64Field(locID, id)
		loc.bytesField(locLine, line.b)
		p.bytesField(profLocation, loc.b)
	}
	for i, name := range b.funcs {
		nameIx := b.strings[name]
		var fn protoBuf
		fn.uint64Field(fnID, uint64(i+1))
		fn.int64Field(fnName, nameIx)
		fn.int64Field(fnSystemName, nameIx)
		p.bytesField(profFunction, fn.b)
	}
	for _, s := range b.strtab {
		p.bytesField(profStringTable, []byte(s))
	}
	// time_nanos stays zero: the capture's timeline is virtual, and a wall
	// timestamp would break byte-identical golden output.
	p.int64Field(profTimeNanos, 0)
	p.int64Field(profDurationNanos, int64(a.Elapsed()))
	p.bytesField(profPeriodType, vt(timeIx, nanosIx))
	p.int64Field(profPeriod, period)
	if commentIx >= 0 {
		p.int64Field(profComment, commentIx)
	}
	return p.b
}

// WritePprof writes the gzipped pprof profile — the on-disk form
// `go tool pprof` expects.
func WritePprof(w io.Writer, a *analyze.Analysis, opts PprofOptions) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(MarshalPprof(a, opts)); err != nil {
		return err
	}
	return zw.Close()
}
