package export

import (
	"bufio"
	"io"
	"strconv"

	"kprof/internal/analyze"
	"kprof/internal/sim"
)

// Chrome trace_event export: the reconstructed nested frames become
// complete ("X") duration events in the JSON Object Format that Perfetto
// and chrome://tracing load directly. The context-switch splitting the
// analyzer already performs maps onto trace threads: every process context
// the reconstruction identifies gets its own tid (contexts reunified by
// stack adoption share one), and interrupt activity inside the idle loop
// lands on a dedicated tid 0 track. Drain-segment boundaries from
// continuous capture appear as global instant events — one per boundary,
// with lossy boundaries (dropped strobes, force-closed frames) named
// "drain loss" so capture gaps are visible on the timeline.

// Trace event names used for drain-segment boundary instants.
const (
	// TraceEventDrain marks a clean drain boundary.
	TraceEventDrain = "drain"
	// TraceEventDrainLoss marks a lossy drain boundary: strobes were
	// dropped between this segment's last record and the next one's
	// first, and every frame spanning the gap was force-closed.
	TraceEventDrainLoss = "drain loss"
	// TraceEventDecodeFaults marks a capture the hardened decoder had to
	// repair; its args carry the corruption accounting.
	TraceEventDecodeFaults = "decode faults"
)

// tracePID is the single simulated machine's process id in the trace.
const tracePID = 1

// idleTID is the track carrying interrupt frames that run in the idle
// loop (inside the context switcher).
const idleTID = 0

// blockSet is a union-find over context blocks: maximal runs of trace
// items between context-switch markers. A frame whose entry and exit fall
// in different blocks proves those blocks are the same process (the
// analyzer's stack adoption), so the blocks merge and share a tid.
type blockSet struct {
	parent []int
	idle   []bool
}

func (b *blockSet) add(idle bool) int {
	b.parent = append(b.parent, len(b.parent))
	b.idle = append(b.idle, idle)
	return len(b.parent) - 1
}

func (b *blockSet) find(x int) int {
	for b.parent[x] != x {
		b.parent[x] = b.parent[b.parent[x]]
		x = b.parent[x]
	}
	return x
}

func (b *blockSet) union(x, y int) {
	rx, ry := b.find(x), b.find(y)
	if rx == ry {
		return
	}
	// Keep the earlier block as root so tid numbering follows first
	// appearance order.
	if ry < rx {
		rx, ry = ry, rx
	}
	b.parent[ry] = rx
}

// traceUS renders a virtual time as trace_event microseconds: integral
// when the time is µs-aligned (the prototype card always is), three
// decimals otherwise (upgraded-clock captures). Deterministic, so trace
// output can be golden-tested byte for byte.
func traceUS(t sim.Time) string {
	if t%sim.Microsecond == 0 {
		return strconv.FormatInt(int64(t/sim.Microsecond), 10)
	}
	return strconv.FormatFloat(float64(t)/float64(sim.Microsecond), 'f', 3, 64)
}

// WriteChromeTrace writes the analysis as a Chrome trace_event JSON file
// (the JSON Object Format: {"traceEvents": [...]}) for Perfetto or
// chrome://tracing. It needs a full reconstruction — the trace timeline
// and invocation trees — so analyses from the lean streaming path render
// only metadata and segment boundaries.
func WriteChromeTrace(w io.Writer, a *analyze.Analysis) error {
	bw := bufio.NewWriter(w)

	// Pass 1: assign every item a context block and unify blocks joined
	// by a frame's entry/exit pair.
	blocks := &blockSet{}
	cur := blocks.add(false) // the initial context, before any switch
	itemBlock := make([]int, len(a.Items))
	enterBlock := map[*analyze.Node]int{}
	for i, it := range a.Items {
		switch it.Kind {
		case analyze.TraceSwitchOut:
			cur = blocks.add(true)
		case analyze.TraceSwitchIn:
			cur = blocks.add(false)
		case analyze.TraceEnter:
			enterBlock[it.Node] = cur
		case analyze.TraceExit:
			if eb, ok := enterBlock[it.Node]; ok && eb != cur {
				blocks.union(eb, cur)
			}
		}
		itemBlock[i] = cur
	}

	// Pass 2: number the process tracks in first-appearance order; all
	// idle blocks share the dedicated interrupt track.
	tids := map[int]int64{}
	next := int64(idleTID + 1)
	tidOf := func(block int) int64 {
		root := blocks.find(block)
		if blocks.idle[root] {
			return idleTID
		}
		tid, ok := tids[root]
		if !ok {
			tid = next
			next++
			tids[root] = tid
		}
		return tid
	}

	first := true
	emit := func(fields string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString("{")
		bw.WriteString(fields)
		bw.WriteString("}")
	}
	meta := func(name, value string, tid int64) {
		emit(`"name":` + strconv.Quote(name) +
			`,"ph":"M","pid":` + strconv.Itoa(tracePID) +
			`,"tid":` + strconv.FormatInt(tid, 10) +
			`,"args":{"name":` + strconv.Quote(value) + `}`)
	}

	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	meta("process_name", "kprof simulated kernel", 0)

	// Thread-name metadata: collect the tids actually used, in order.
	usedIdle := false
	for i, it := range a.Items {
		if it.Kind == analyze.TraceEnter || it.Kind == analyze.TraceInline {
			if tidOf(itemBlock[i]) == idleTID {
				usedIdle = true
			}
		}
	}
	if usedIdle {
		meta("thread_name", "idle loop interrupts", idleTID)
	}
	// tids was populated by the scan above; re-emit names in tid order.
	for tid := int64(idleTID + 1); tid < next; tid++ {
		meta("thread_name", "context "+strconv.FormatInt(tid, 10), tid)
	}

	for i, it := range a.Items {
		switch it.Kind {
		case analyze.TraceEnter:
			n := it.Node
			dur := n.End - n.Start
			if dur < 0 {
				dur = 0
			}
			f := `"name":` + strconv.Quote(n.Name) +
				`,"ph":"X","pid":` + strconv.Itoa(tracePID) +
				`,"tid":` + strconv.FormatInt(tidOf(itemBlock[i]), 10) +
				`,"ts":` + traceUS(n.Start) +
				`,"dur":` + traceUS(dur)
			if !n.Complete {
				f += `,"args":{"complete":false}`
			}
			emit(f)
		case analyze.TraceInline:
			emit(`"name":` + strconv.Quote(it.Mark) +
				`,"ph":"i","s":"t","pid":` + strconv.Itoa(tracePID) +
				`,"tid":` + strconv.FormatInt(tidOf(itemBlock[i]), 10) +
				`,"ts":` + traceUS(it.Time))
		}
	}

	// A capture the hardened decoder had to repair gets one global instant
	// at the capture start carrying the corruption accounting; clean
	// captures emit nothing, keeping golden traces byte-identical.
	if a.Stats.CorruptRecords > 0 {
		emit(`"name":` + strconv.Quote(TraceEventDecodeFaults) +
			`,"ph":"i","s":"g","pid":` + strconv.Itoa(tracePID) +
			`,"tid":` + strconv.Itoa(idleTID) +
			`,"ts":` + traceUS(a.Start) +
			`,"args":{"corrupt_records":` + strconv.Itoa(a.Stats.CorruptRecords) +
			`,"repaired_timestamps":` + strconv.Itoa(a.Stats.RepairedTimestamps) +
			`,"resyncs":` + strconv.Itoa(a.Stats.Resyncs) + `}`)
	}

	for _, seg := range a.Segments {
		name := TraceEventDrain
		if seg.Dropped > 0 {
			name = TraceEventDrainLoss
		}
		emit(`"name":` + strconv.Quote(name) +
			`,"ph":"i","s":"g","pid":` + strconv.Itoa(tracePID) +
			`,"tid":` + strconv.Itoa(idleTID) +
			`,"ts":` + traceUS(seg.End) +
			`,"args":{"segment":` + strconv.Itoa(seg.Index) +
			`,"records":` + strconv.Itoa(seg.Records) +
			`,"dropped_strobes":` + strconv.FormatUint(seg.Dropped, 10) +
			`,"force_closed_frames":` + strconv.Itoa(seg.ForceClosed) + `}`)
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}
