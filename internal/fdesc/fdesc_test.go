package fdesc

import (
	"testing"

	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

func newFD() (*kernel.Kernel, *FD) {
	k := kernel.New(kernel.Config{Seed: 1})
	return k, Attach(k, mem.Attach(k))
}

func TestFallocAssignsLowestSlot(t *testing.T) {
	_, fd := newFD()
	tab := fd.NewTable()
	s0, f0 := fd.Falloc(tab, "stdin")
	s1, _ := fd.Falloc(tab, "stdout")
	if s0 != 0 || s1 != 1 {
		t.Fatalf("slots = %d, %d", s0, s1)
	}
	if f0.Obj != "stdin" || f0.RefCount != 1 {
		t.Fatalf("file = %+v", f0)
	}
	if err := fd.Close(tab, 0); err != nil {
		t.Fatal(err)
	}
	s2, _ := fd.Falloc(tab, "again")
	if s2 != 0 {
		t.Fatalf("freed slot not reused: %d", s2)
	}
}

func TestFallocTimingMatchesFigure4(t *testing.T) {
	k, fd := newFD()
	tab := fd.NewTable()
	// Warm the malloc bucket so we measure the steady-state path.
	fd.Falloc(tab, "warm")
	start := k.Now()
	fd.Falloc(tab, "x")
	d := k.Now() - start
	// Figure 4: falloc 83 µs total (22 net + fdalloc 18 + malloc 43).
	if d < 60*sim.Microsecond || d > 110*sim.Microsecond {
		t.Fatalf("falloc total = %v, want ≈83 µs", d)
	}
}

func TestTableGrowth(t *testing.T) {
	_, fd := newFD()
	tab := fd.NewTable()
	for i := 0; i < initialSlots+5; i++ {
		fd.Falloc(tab, i)
	}
	if tab.Size() <= initialSlots {
		t.Fatalf("table did not grow: %d", tab.Size())
	}
	if tab.OpenCount() != initialSlots+5 {
		t.Fatalf("open = %d", tab.OpenCount())
	}
}

func TestGetAndCloseErrors(t *testing.T) {
	_, fd := newFD()
	tab := fd.NewTable()
	if _, err := fd.Get(tab, 0); err == nil {
		t.Fatal("Get on empty slot should fail")
	}
	if _, err := fd.Get(tab, -1); err == nil {
		t.Fatal("negative fd should fail")
	}
	if _, err := fd.Get(tab, 1000); err == nil {
		t.Fatal("out-of-range fd should fail")
	}
	if err := fd.Close(tab, 3); err == nil {
		t.Fatal("closing unused fd should fail")
	}
}

func TestCopySharesFiles(t *testing.T) {
	_, fd := newFD()
	tab := fd.NewTable()
	_, f := fd.Falloc(tab, "shared")
	child := fd.Copy(tab)
	if f.RefCount != 2 {
		t.Fatalf("refcount = %d", f.RefCount)
	}
	got, err := fd.Get(child, 0)
	if err != nil || got != f {
		t.Fatal("child table does not share the file")
	}
	// Closing in one table keeps the file alive in the other.
	fd.Close(tab, 0)
	if f.RefCount != 1 || fd.Ffrees != 0 {
		t.Fatalf("refcount = %d, ffrees = %d", f.RefCount, fd.Ffrees)
	}
	fd.Close(child, 0)
	if fd.Ffrees != 1 {
		t.Fatalf("ffrees = %d", fd.Ffrees)
	}
}
