// Package fdesc models the kernel file-descriptor layer (kern_descrip.c):
// per-process descriptor tables, falloc/fdalloc for slot and file-structure
// allocation, and ffree. The falloc → fdalloc → min call chain, with a
// malloc when the table grows, appears verbatim in the paper's Figure 4
// code-path trace (falloc 22 µs net / 83 µs total, fdalloc 13/18, min 5).
package fdesc

import (
	"fmt"

	"kprof/internal/kernel"
	"kprof/internal/mem"
	"kprof/internal/sim"
)

// File is an open file table entry; the payload is whatever object the
// descriptor refers to (a vnode, a socket).
type File struct {
	Obj      any
	RefCount int
}

// Table is a per-process descriptor table.
type Table struct {
	slots []*File
}

// Calibrated costs from Figure 4.
const (
	costFalloc  = 22 * sim.Microsecond
	costFdalloc = 13 * sim.Microsecond
	costMin     = 5 * sim.Microsecond
	costFfree   = 9 * sim.Microsecond
	costFdcopy  = 30 * sim.Microsecond // fixed part of dup'ing a table on fork

	// initialSlots is the table size before the first malloc'd growth.
	initialSlots = 20
)

// FD is the file-descriptor subsystem.
type FD struct {
	k     *kernel.Kernel
	alloc *mem.Allocator

	fnFalloc  *kernel.Fn
	fnFdalloc *kernel.Fn
	fnMin     *kernel.Fn
	fnFfree   *kernel.Fn
	fnFdcopy  *kernel.Fn

	// Stats.
	Fallocs, Ffrees uint64
}

// Attach registers the descriptor routines.
func Attach(k *kernel.Kernel, alloc *mem.Allocator) *FD {
	return &FD{
		k:         k,
		alloc:     alloc,
		fnFalloc:  k.RegisterFn("kern_descrip", "falloc"),
		fnFdalloc: k.RegisterFn("kern_descrip", "fdalloc"),
		fnMin:     k.RegisterFn("kern_descrip", "min"),
		fnFfree:   k.RegisterFn("kern_descrip", "ffree"),
		fnFdcopy:  k.RegisterFn("kern_descrip", "fdcopy"),
	}
}

// NewTable returns an empty descriptor table.
func (fd *FD) NewTable() *Table {
	return &Table{slots: make([]*File, initialSlots)}
}

// Falloc allocates a descriptor slot and a file structure, exactly as the
// Figure 4 trace shows: falloc calls fdalloc (which calls min to bound the
// search) and then malloc for the file structure.
func (fd *FD) Falloc(t *Table, obj any) (int, *File) {
	fd.Fallocs++
	var slot int
	var f *File
	fd.k.Call(fd.fnFalloc, func() {
		fd.k.Advance(costFalloc)
		slot = fd.fdalloc(t)
		f = &File{Obj: obj, RefCount: 1}
		fd.alloc.Malloc(64) // struct file
		t.slots[slot] = f
	})
	return slot, f
}

// fdalloc finds the lowest free slot, growing the table if needed.
func (fd *FD) fdalloc(t *Table) int {
	slot := -1
	fd.k.Call(fd.fnFdalloc, func() {
		fd.k.Advance(costFdalloc)
		fd.k.CallCost(fd.fnMin, costMin)
		for i, f := range t.slots {
			if f == nil {
				slot = i
				return
			}
		}
		// Grow: malloc a bigger descriptor array.
		fd.alloc.Malloc(2 * len(t.slots) * 8)
		slot = len(t.slots)
		t.slots = append(t.slots, make([]*File, len(t.slots))...)
	})
	return slot
}

// Get returns the file open on a descriptor.
func (fd *FD) Get(t *Table, n int) (*File, error) {
	if n < 0 || n >= len(t.slots) || t.slots[n] == nil {
		return nil, fmt.Errorf("fdesc: bad file descriptor %d", n)
	}
	return t.slots[n], nil
}

// Close releases a descriptor, freeing the file structure when the last
// reference drops.
func (fd *FD) Close(t *Table, n int) error {
	f, err := fd.Get(t, n)
	if err != nil {
		return err
	}
	t.slots[n] = nil
	f.RefCount--
	if f.RefCount == 0 {
		fd.Ffrees++
		fd.k.CallCost(fd.fnFfree, costFfree)
	}
	return nil
}

// Copy duplicates a table for fork: every open file gains a reference.
func (fd *FD) Copy(t *Table) *Table {
	nt := &Table{}
	fd.k.Call(fd.fnFdcopy, func() {
		fd.k.Advance(costFdcopy)
		fd.alloc.Malloc(len(t.slots) * 8)
		nt.slots = make([]*File, len(t.slots))
		for i, f := range t.slots {
			if f != nil {
				f.RefCount++
				nt.slots[i] = f
				fd.k.Advance(2 * sim.Microsecond)
			}
		}
	})
	return nt
}

// OpenCount reports how many descriptors are in use.
func (t *Table) OpenCount() int {
	n := 0
	for _, f := range t.slots {
		if f != nil {
			n++
		}
	}
	return n
}

// Size reports the table capacity.
func (t *Table) Size() int { return len(t.slots) }
