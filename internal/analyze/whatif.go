package analyze

import (
	"fmt"
	"strings"

	"kprof/internal/sim"
)

// The what-if estimator formalises the paper's Network Performance
// arithmetic: given a measured per-packet cost breakdown, estimate the
// effect of (a) linking controller buffers into mbufs instead of copying
// ("Would this help? Contrary to intuition, this would actually decrease
// the performance") and (b) recoding in_cksum.

// PacketCost is a measured per-packet cost breakdown, produced by
// profiling the receive path.
type PacketCost struct {
	DriverCopy sim.Time // bcopy out of controller memory
	Checksum   sim.Time // in_cksum over the packet in main memory
	Copyout    sim.Time // copy to user space
	Other      sim.Time // everything else on the path
	Bytes      int      // packet data size
}

// Total is the full per-packet processing time.
func (p PacketCost) Total() sim.Time {
	return p.DriverCopy + p.Checksum + p.Copyout + p.Other
}

// WhatIf is one estimated alternative.
type WhatIf struct {
	Name     string
	Baseline sim.Time
	Estimate sim.Time
}

// Delta is the estimated change (negative is an improvement).
func (w WhatIf) Delta() sim.Time { return w.Estimate - w.Baseline }

// Improves reports whether the alternative is a win.
func (w WhatIf) Improves() bool { return w.Estimate < w.Baseline }

// String renders the estimate with its win/flat/LOSS verdict. A
// zero-delta estimate is a tie, not a regression: it renders "flat" so
// the optimize-verify loop never reports a no-op change as a LOSS.
func (w WhatIf) String() string {
	verdict := "LOSS"
	switch {
	case w.Improves():
		verdict = "win"
	case w.Delta() == 0:
		verdict = "flat"
	}
	return fmt.Sprintf("%-34s %6d us -> %6d us (%+d us, %s)",
		w.Name, w.Baseline.Micros(), w.Estimate.Micros(), w.Delta().Micros(), verdict)
}

// EstimateMbufLinking evaluates making the controller buffers external
// mbufs: the driver copy disappears, but every routine that touches the
// packet — most importantly the checksum — now runs against controller
// memory at the bus penalty (extraNsPerByte = ISA cost − main cost).
func EstimateMbufLinking(p PacketCost, extraNsPerByte sim.Time) WhatIf {
	est := p.Total() - p.DriverCopy           // the copy is gone...
	est += sim.Time(p.Bytes) * extraNsPerByte // ...but the checksum slows
	// copyout now also reads controller memory.
	est += sim.Time(p.Bytes) * extraNsPerByte
	return WhatIf{Name: "link controller bufs into mbufs", Baseline: p.Total(), Estimate: est}
}

// EstimateOptimizedChecksum evaluates recoding in_cksum at copy speed
// (fastNsPerByte per byte plus fixed setup).
func EstimateOptimizedChecksum(p PacketCost, fastNsPerByte, setup sim.Time) WhatIf {
	newCksum := setup + sim.Time(p.Bytes)*fastNsPerByte
	est := p.Total() - p.Checksum + newCksum
	return WhatIf{Name: "recode in_cksum (assembler-style)", Baseline: p.Total(), Estimate: est}
}

// WhatIfReport renders a set of alternatives.
func WhatIfReport(ws []WhatIf) string {
	var b strings.Builder
	for _, w := range ws {
		fmt.Fprintln(&b, w.String())
	}
	return b.String()
}
