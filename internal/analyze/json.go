package analyze

import (
	"encoding/json"
	"io"
)

// JSON export of an analysis, for downstream tooling (plotting, regression
// tracking between kernel builds). Times are integer microseconds, the
// Profiler's native resolution.

// JSONReport is the serialized form of an Analysis.
type JSONReport struct {
	ElapsedUS  int64 `json:"elapsed_us"`
	RunUS      int64 `json:"run_us"`
	IdleUS     int64 `json:"idle_us"`
	Records    int   `json:"records"`
	Overflowed bool  `json:"overflowed"`
	Switches   int   `json:"context_switches"`
	Orphans    int   `json:"orphan_exits"`
	Recovered  int   `json:"recovered_frames"`

	Functions []JSONFn `json:"functions"`
}

// JSONFn is one function's statistics row.
type JSONFn struct {
	Name      string  `json:"name"`
	Calls     int     `json:"calls"`
	ElapsedUS int64   `json:"elapsed_us"`
	NetUS     int64   `json:"net_us"`
	MaxUS     int64   `json:"max_us"`
	AvgUS     int64   `json:"avg_us"`
	MinUS     int64   `json:"min_us"`
	PctReal   float64 `json:"pct_real"`
	PctNet    float64 `json:"pct_net"`
	Inlines   int     `json:"inlines,omitempty"`
}

// Report builds the serializable form.
func (a *Analysis) Report() JSONReport {
	r := JSONReport{
		ElapsedUS:  a.Elapsed().Micros(),
		RunUS:      a.RunTime().Micros(),
		IdleUS:     a.Idle.Micros(),
		Records:    a.Stats.Records,
		Overflowed: a.Stats.Overflowed,
		Switches:   a.Switches,
		Orphans:    a.OrphanExits,
		Recovered:  a.Recovered,
	}
	elapsed, run := a.Elapsed(), a.RunTime()
	for _, s := range a.Functions() {
		fn := JSONFn{
			Name:      s.Name,
			Calls:     s.Calls,
			ElapsedUS: s.Elapsed.Micros(),
			NetUS:     s.Net.Micros(),
			MaxUS:     s.Max.Micros(),
			AvgUS:     s.Avg().Micros(),
			MinUS:     s.MinOrZero().Micros(),
			Inlines:   s.Inlines,
		}
		if elapsed > 0 {
			fn.PctReal = 100 * float64(s.Net) / float64(elapsed)
		}
		if run > 0 {
			fn.PctNet = 100 * float64(s.Net) / float64(run)
		}
		r.Functions = append(r.Functions, fn)
	}
	return r
}

// WriteJSON serializes the analysis as indented JSON.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Report())
}
