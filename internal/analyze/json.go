package analyze

import (
	"encoding/json"
	"io"
)

// JSON export of an analysis, for downstream tooling (plotting, regression
// tracking between kernel builds). Times are integer microseconds, the
// Profiler's native resolution. The schema is documented in DESIGN.md
// ("JSON report schema"); its loss-accounting names deliberately match the
// text reports' vocabulary: strobes are *dropped* (dropped_strobes),
// frames are *force-closed* (force_closed_frames).

// JSONReport is the serialized form of an Analysis.
type JSONReport struct {
	// ElapsedUS is the capture's wall span; RunUS is elapsed minus idle;
	// IdleUS is time inside the context switcher net of interrupts.
	ElapsedUS int64 `json:"elapsed_us"`
	RunUS     int64 `json:"run_us"`
	IdleUS    int64 `json:"idle_us"`
	// Records counts decoded capture records; Overflowed propagates the
	// card's overflow LED; Dropped counts strobes the card could not
	// store (including every lossy drain boundary of a stitched run).
	Records    int    `json:"records"`
	Overflowed bool   `json:"overflowed"`
	Dropped    uint64 `json:"dropped_strobes,omitempty"`
	// Switches counts context-switch entries; Orphans counts exits that
	// matched no open frame; ForceClosed counts frames closed by mismatch
	// recovery or at lossy boundaries (Analysis.Recovered).
	Switches    int `json:"context_switches"`
	Orphans     int `json:"orphan_exits"`
	ForceClosed int `json:"force_closed_frames"`
	// Corruption accounting from the hardened decoder (DecodeStats); all
	// zero — and absent — for a clean capture.
	Corrupt  int `json:"corrupt_records,omitempty"`
	Repaired int `json:"repaired_timestamps,omitempty"`
	Resyncs  int `json:"resyncs,omitempty"`

	// Segments describes the drained slices of a stitched capture.
	Segments []JSONSegment `json:"segments,omitempty"`

	// Functions holds one row per function, sorted by net time.
	Functions []JSONFn `json:"functions"`
}

// JSONSegment is one drained slice of a stitched capture. Its field names
// mirror WriteSegments' columns: records, end µs, dropped strobes,
// force-closed frames.
type JSONSegment struct {
	Index       int    `json:"index"`
	Records     int    `json:"records"`
	EndUS       int64  `json:"end_us"`
	Dropped     uint64 `json:"dropped_strobes,omitempty"`
	Overflowed  bool   `json:"overflowed,omitempty"`
	ForceClosed int    `json:"force_closed_frames,omitempty"`
	Corrupt     int    `json:"corrupt_records,omitempty"`
}

// JSONFn is one function's statistics row.
type JSONFn struct {
	Name      string  `json:"name"`
	Calls     int     `json:"calls"`
	Timed     int     `json:"timed_calls"`
	ElapsedUS int64   `json:"elapsed_us"`
	NetUS     int64   `json:"net_us"`
	MaxUS     int64   `json:"max_us"`
	AvgUS     int64   `json:"avg_us"`
	MinUS     int64   `json:"min_us"`
	PctReal   float64 `json:"pct_real"`
	PctNet    float64 `json:"pct_net"`
	Inlines   int     `json:"inlines,omitempty"`
}

// Report builds the serializable form.
func (a *Analysis) Report() JSONReport {
	r := JSONReport{
		ElapsedUS:   a.Elapsed().Micros(),
		RunUS:       a.RunTime().Micros(),
		IdleUS:      a.Idle.Micros(),
		Records:     a.Stats.Records,
		Overflowed:  a.Stats.Overflowed,
		Dropped:     a.Stats.Dropped,
		Switches:    a.Switches,
		Orphans:     a.OrphanExits,
		ForceClosed: a.Recovered,
		Corrupt:     a.Stats.CorruptRecords,
		Repaired:    a.Stats.RepairedTimestamps,
		Resyncs:     a.Stats.Resyncs,
	}
	for _, s := range a.Segments {
		r.Segments = append(r.Segments, JSONSegment{
			Index: s.Index, Records: s.Records, EndUS: s.End.Micros(),
			Dropped: s.Dropped, Overflowed: s.Overflowed, ForceClosed: s.ForceClosed,
			Corrupt: s.Corrupt,
		})
	}
	elapsed, run := a.Elapsed(), a.RunTime()
	for _, s := range a.Functions() {
		fn := JSONFn{
			Name:      s.Name,
			Calls:     s.Calls,
			Timed:     s.TimedCalls,
			ElapsedUS: s.Elapsed.Micros(),
			NetUS:     s.Net.Micros(),
			MaxUS:     s.Max.Micros(),
			AvgUS:     s.Avg().Micros(),
			MinUS:     s.MinOrZero().Micros(),
			Inlines:   s.Inlines,
		}
		if elapsed > 0 {
			fn.PctReal = 100 * float64(s.Net) / float64(elapsed)
		}
		if run > 0 {
			fn.PctNet = 100 * float64(s.Net) / float64(run)
		}
		r.Functions = append(r.Functions, fn)
	}
	return r
}

// WriteJSON serializes the analysis as indented JSON.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Report())
}
