package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/sim"
)

// Before/after comparison — the workflow the Profiler exists for:
// "quantitative comparison may guide design and implementation improvements
// as performance bottlenecks are highlighted in the kernel, and accurate
// before and after measurements may be made to test the success of such
// changes."
//
// Because two runs rarely cover identical wall time, the comparison is made
// in *net share of run time* and *per-call* terms, which are rate-free.

// Delta is one function's before/after movement.
type Delta struct {
	Name string

	BeforeShare, AfterShare     float64  // net time / run time
	BeforePerCall, AfterPerCall sim.Time // avg net per call
	BeforeCalls, AfterCalls     int

	// Added and Removed mark a function present in only one run: Added
	// means it appears only in the after run, Removed only in the before
	// run. The zero columns on the missing side mean "not instrumented
	// there", not "measured at zero".
	Added, Removed bool
}

// ShareChange is the movement in net share (negative = improvement for a
// function you were trying to shrink).
func (d Delta) ShareChange() float64 { return d.AfterShare - d.BeforeShare }

// Comparison is the full before/after report.
type Comparison struct {
	Deltas []Delta

	BeforeIdle, AfterIdle float64
}

// Compare builds a before/after comparison of two analyses.
func Compare(before, after *Analysis) *Comparison {
	names := map[string]bool{}
	for _, s := range before.Functions() {
		if !s.CtxSwitch {
			names[s.Name] = true
		}
	}
	for _, s := range after.Functions() {
		if !s.CtxSwitch {
			names[s.Name] = true
		}
	}
	c := &Comparison{}
	if e := before.Elapsed(); e > 0 {
		c.BeforeIdle = float64(before.Idle) / float64(e)
	}
	if e := after.Elapsed(); e > 0 {
		c.AfterIdle = float64(after.Idle) / float64(e)
	}
	share := func(a *Analysis, name string) (float64, sim.Time, int, bool) {
		s, ok := a.Fn(name)
		if !ok {
			return 0, 0, 0, false
		}
		if a.RunTime() <= 0 {
			return 0, 0, 0, true
		}
		return float64(s.Net) / float64(a.RunTime()), s.Avg(), s.Calls, true
	}
	for name := range names {
		var d Delta
		var inBefore, inAfter bool
		d.Name = name
		d.BeforeShare, d.BeforePerCall, d.BeforeCalls, inBefore = share(before, name)
		d.AfterShare, d.AfterPerCall, d.AfterCalls, inAfter = share(after, name)
		d.Added = inAfter && !inBefore
		d.Removed = inBefore && !inAfter
		c.Deltas = append(c.Deltas, d)
	}
	sort.Slice(c.Deltas, func(i, j int) bool {
		ai := abs64(c.Deltas[i].ShareChange())
		aj := abs64(c.Deltas[j].ShareChange())
		if ai != aj {
			return ai > aj
		}
		return c.Deltas[i].Name < c.Deltas[j].Name
	})
	return c
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Write renders the biggest movers. Rows with no movement at all (both
// shares and both call counts unchanged) are dropped before the top cut,
// so a short report is all movers; functions present in only one run
// render as "+new" / "gone" rather than a misleading 0.00%.
func (c *Comparison) Write(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "idle: %5.2f%% -> %5.2f%%\n", 100*c.BeforeIdle, 100*c.AfterIdle)
	fmt.Fprintf(ew, "%-20s %9s %9s %8s %10s %10s\n",
		"function", "before%", "after%", "change", "us/call", "->us/call")
	deltas := make([]Delta, 0, len(c.Deltas))
	for _, d := range c.Deltas {
		still := !d.Added && !d.Removed &&
			d.BeforeShare == d.AfterShare && d.BeforeCalls == d.AfterCalls
		if !still {
			deltas = append(deltas, d)
		}
	}
	if top > 0 && len(deltas) > top {
		deltas = deltas[:top]
	}
	for _, d := range deltas {
		switch {
		case d.Added:
			fmt.Fprintf(ew, "%-20s %9s %8.2f%% %8s %10s %10d\n",
				d.Name, "+new", 100*d.AfterShare, "+new", "-",
				d.AfterPerCall.Micros())
		case d.Removed:
			fmt.Fprintf(ew, "%-20s %8.2f%% %9s %8s %10d %10s\n",
				d.Name, 100*d.BeforeShare, "gone", "gone",
				d.BeforePerCall.Micros(), "-")
		default:
			fmt.Fprintf(ew, "%-20s %8.2f%% %8.2f%% %+7.2f%% %10d %10d\n",
				d.Name, 100*d.BeforeShare, 100*d.AfterShare, 100*d.ShareChange(),
				d.BeforePerCall.Micros(), d.AfterPerCall.Micros())
		}
	}
	return ew.err
}

// String renders the top 20 movers.
func (c *Comparison) String() string {
	var b strings.Builder
	_ = c.Write(&b, 20)
	return b.String()
}
