package analyze

import (
	"sort"

	"kprof/internal/sim"
)

// Node is one reconstructed function invocation.
type Node struct {
	Name  string
	Start sim.Time
	End   sim.Time
	// Complete is false for invocations force-closed by mismatch
	// recovery or still open when the capture ended (their self time is
	// unknowable and excluded from stats).
	Complete bool
	// outOfContext accumulates time this invocation spent switched out
	// (its process suspended), which the paper's analysis excludes: a
	// tsleep that blocks for seconds still reports only its in-context
	// microseconds.
	outOfContext sim.Time
	// childTime accumulates the in-context elapsed of direct children as
	// they close, so Net never walks Children — which the lean streaming
	// path does not even build.
	childTime sim.Time
	// fn carries the decoder's dense name/tag-file index (plus one, zero
	// when unknown) so folding the node into the stats avoids hashing the
	// name.
	fn int32

	Children []*Node
	Marks    []Mark
}

// Mark is an inline ('=') trigger hit inside an invocation.
type Mark struct {
	Name string
	Time sim.Time
}

// Elapsed is the invocation's in-context elapsed time.
func (n *Node) Elapsed() sim.Time {
	return n.End - n.Start - n.outOfContext
}

// Net is elapsed minus the in-context elapsed of direct children — the
// time spent in this function alone.
func (n *Node) Net() sim.Time {
	return n.Elapsed() - n.childTime
}

// TraceItem is one line of the chronological code-path trace.
type TraceItem struct {
	Time  sim.Time
	Depth int
	Kind  TraceKind
	Node  *Node  // nil for context-switch markers
	Mark  string // inline mark name
}

// TraceKind classifies trace lines.
type TraceKind int

// Trace item kinds, in the order the timeline can contain them.
const (
	TraceEnter TraceKind = iota
	TraceExit
	TraceInline
	TraceSwitchOut // swtch entered: context switch out / idle begins
	TraceSwitchIn  // swtch exited: context switch in
)

// SegmentInfo describes one drained slice of a stitched capture: the
// drain-and-stitch pipeline reads the card out whenever it nears capacity,
// and each readout becomes one segment of the reconstructed timeline.
type SegmentInfo struct {
	// Index is the segment's position in drain order.
	Index int
	// Records is the number of records the segment contributed.
	Records int
	// Dropped counts strobes lost at the segment's end: the card filled
	// (or was disarmed) before the drain completed, so events between
	// this segment's last record and the next segment's first are gone.
	Dropped uint64
	// Overflowed reports whether the card's RAM filled during the segment.
	Overflowed bool
	// ForceClosed counts frames force-closed at the segment's lossy end
	// boundary (each is also counted in Analysis.Recovered).
	ForceClosed int
	// Corrupt counts records within the segment the decoder judged
	// corrupted (unresolvable tags and repaired timestamps); the capture
	// total is DecodeStats.CorruptRecords.
	Corrupt int
	// End is the stitched timeline's position at the segment's end
	// boundary: the decoded timestamp of the last record seen when the
	// drain ran (capture-relative, like every Analysis time).
	End sim.Time
}

// Analysis is the full reconstruction of a capture.
type Analysis struct {
	Events []Event
	Items  []TraceItem
	Stats  DecodeStats

	// Segments describes the drained slices of a stitched capture, in
	// drain order; empty for a single-readout capture.
	Segments []SegmentInfo

	Start, End sim.Time

	// Idle is time inside swtch (between '!' entry and the next '!'
	// exit) minus interrupt activity within those windows.
	Idle sim.Time
	// Switches counts entries to the context-switch function.
	Switches int

	// OrphanExits counts exits that matched no open frame anywhere —
	// usually functions entered before the capture began.
	OrphanExits int
	// Recovered counts frames force-closed by mismatch recovery.
	Recovered int

	fns map[string]*FnStat
}

// FnStat aggregates one function's invocations.
type FnStat struct {
	Name string
	// Calls counts every observed invocation, including untimed ones:
	// orphan exits, frames force-closed by mismatch recovery, and frames
	// still open when the capture ended.
	Calls int
	// TimedCalls counts only the invocations with complete timing; the
	// averages divide by it, so an untimed call never biases them.
	TimedCalls int
	Elapsed    sim.Time // inclusive, in-context
	Net        sim.Time
	// Max/Min are per-call *net* extremes: the paper's (max/avg/min)
	// columns report time in the function alone (Figure 3's soreceive
	// line: 16391 µs net over 166 calls and an avg column of 98).
	Max     sim.Time
	Min     sim.Time
	Inlines int // inline marks carrying this name
	// CtxSwitch marks the context-switch function (the name/tag file's
	// '!' modifier): its in-function time is idle, accounted in the
	// analysis header, so reports skip its row whatever it is named.
	CtxSwitch bool
}

// stack is one process context's call stack.
type stack struct {
	open []*Node
	done []*Node // completed top-level frames (not kept by the lean path)
	// doneElapsed is the summed in-context elapsed of the done roots —
	// what splicing them under an adopted frame adds to its childTime.
	doneElapsed sim.Time
	suspendedAt sim.Time
}

// reconstructor is the analysis state machine.
type reconstructor struct {
	a *Analysis

	// keepItems retains the trace timeline; the streaming path drops it
	// so a sweep worker's Analysis holds only the per-function stats.
	keepItems bool
	haveStart bool
	// lastSwitchIn tracks the most recent context-switch-in time, so
	// pending-resume adoption does not depend on the retained trace.
	lastSwitchIn sim.Time

	current   *stack   // nil while idle / pending resume
	suspended []*stack // stacks parked inside swtch, FIFO
	pending   bool     // saw swtch exit, context not yet identified

	idleStart sim.Time
	idleOpen  bool
	idleStack *stack // interrupts that run in the idle loop
	idleIntr  sim.Time

	// freeNodes and freeStacks recycle closed nodes and drained context
	// stacks so the steady state allocates nothing per record. Nodes are
	// pooled only on the lean path (keepItems false): the full path hands
	// every node to the retained trace, so none may be reused.
	freeNodes  []*Node
	freeStacks []*stack

	// statArena block-allocates FnStat entries: a boot's symbol table is
	// ~100 functions, so carving them from one slab costs one allocation
	// per analysis instead of one per function. Append-only at fixed
	// capacity — a.fns holds the stable per-entry pointers — with an
	// individual-allocation fallback past the cap. nodeArena does the
	// same for the first Nodes before freeNodes warms up.
	statArena []FnStat
	nodeArena []Node

	// byIdx caches FnStat pointers by the decoder's dense name/tag-file
	// index, so the per-record stats fold is a slice load; the name-keyed
	// map is only consulted the first time each function appears (and for
	// events with no index — hand-built or unknown-tag).
	byIdx []*FnStat
}

// nodeArenaCap covers the call-nesting working set of the lean path before
// the recycle pool warms up.
const nodeArenaCap = 96

// newNode takes a node from the pool (lean path) or allocates one; fresh
// nodes before the pool warms up are carved from a slab.
func (r *reconstructor) newNode(name string, start sim.Time, fn int32) *Node {
	if n := len(r.freeNodes); n > 0 {
		nd := r.freeNodes[n-1]
		r.freeNodes = r.freeNodes[:n-1]
		*nd = Node{Name: name, Start: start, fn: fn}
		return nd
	}
	if r.nodeArena == nil {
		r.nodeArena = make([]Node, 0, nodeArenaCap)
	}
	if len(r.nodeArena) < cap(r.nodeArena) {
		r.nodeArena = append(r.nodeArena, Node{Name: name, Start: start, fn: fn})
		return &r.nodeArena[len(r.nodeArena)-1]
	}
	return &Node{Name: name, Start: start, fn: fn}
}

// freeNode recycles a closed node. Callers must only do so on the lean
// path, after the node's last read — nothing retains it there.
func (r *reconstructor) freeNode(n *Node) {
	if r.freeNodes == nil {
		r.freeNodes = make([]*Node, 0, nodeArenaCap)
	}
	r.freeNodes = append(r.freeNodes, n)
}

// newStack takes a context stack from the pool or allocates one.
func (r *reconstructor) newStack() *stack {
	if n := len(r.freeStacks); n > 0 {
		st := r.freeStacks[n-1]
		r.freeStacks = r.freeStacks[:n-1]
		return st
	}
	return &stack{}
}

// freeStack recycles a drained context stack (both paths: the stack
// struct itself is never retained, only the nodes it pointed at).
func (r *reconstructor) freeStack(st *stack) {
	if st == nil {
		return
	}
	for i := range st.open {
		st.open[i] = nil
	}
	for i := range st.done {
		st.done[i] = nil
	}
	st.open = st.open[:0]
	st.done = st.done[:0]
	st.doneElapsed = 0
	st.suspendedAt = 0
	r.freeStacks = append(r.freeStacks, st)
}

// Reconstruct runs the full analysis over decoded events.
func Reconstruct(events []Event, stats DecodeStats) *Analysis {
	a := &Analysis{Events: events, Stats: stats, fns: make(map[string]*FnStat, fnStatArenaCap)}
	r := &reconstructor{a: a, idleStack: &stack{}, keepItems: true}
	if len(events) > 0 {
		a.Start = events[0].Time
		a.End = events[len(events)-1].Time
		r.lastSwitchIn = a.Start
		r.haveStart = true
	}
	for _, ev := range events {
		r.step(ev)
	}
	r.finish()
	return a
}

// feed processes one event incrementally, maintaining the bookkeeping that
// the batch path precomputes from the whole slice.
func (r *reconstructor) feed(ev Event, keepEvent bool) {
	if !r.haveStart {
		r.a.Start, r.lastSwitchIn, r.haveStart = ev.Time, ev.Time, true
	}
	r.a.End = ev.Time
	if keepEvent {
		r.a.Events = append(r.a.Events, ev)
	}
	r.step(ev)
}

// fnStatArenaCap covers a fully-attached machine's symbol table with room
// to spare; see statArena.
const fnStatArenaCap = 160

func (r *reconstructor) fnStat(name string) *FnStat {
	s, ok := r.a.fns[name]
	if !ok {
		if r.statArena == nil {
			r.statArena = make([]FnStat, 0, fnStatArenaCap)
		}
		if len(r.statArena) < cap(r.statArena) {
			r.statArena = append(r.statArena, FnStat{Name: name, Min: 1 << 62})
			s = &r.statArena[len(r.statArena)-1]
		} else {
			s = &FnStat{Name: name, Min: 1 << 62}
		}
		r.a.fns[name] = s
	}
	return s
}

// fnStatOf resolves a function's stat through the dense index when the
// decoder stamped one, falling back to the name map otherwise. Both routes
// land on the same FnStat objects in a.fns, so reports and merges see one
// view whichever path filled it.
func (r *reconstructor) fnStatOf(name string, idx int32) *FnStat {
	if idx <= 0 {
		return r.fnStat(name)
	}
	if int(idx) > len(r.byIdx) {
		size := int(idx) + 16
		if size < fnStatArenaCap {
			size = fnStatArenaCap // one growth covers the whole table
		}
		grown := make([]*FnStat, size)
		copy(grown, r.byIdx)
		r.byIdx = grown
	}
	if s := r.byIdx[idx-1]; s != nil {
		return s
	}
	s := r.fnStat(name)
	r.byIdx[idx-1] = s
	return s
}

func (r *reconstructor) item(ev Event, kind TraceKind, n *Node, depth int) {
	if !r.keepItems {
		return
	}
	r.a.Items = append(r.a.Items, TraceItem{Time: ev.Time, Depth: depth, Kind: kind, Node: n, Mark: func() string {
		if kind == TraceInline {
			return ev.Name
		}
		return ""
	}()})
}

func (r *reconstructor) step(ev Event) {
	switch {
	case ev.Kind == Unknown:
		return
	case ev.CtxSwitch && ev.Kind == Entry:
		r.switchOut(ev)
	case ev.CtxSwitch && ev.Kind == Exit:
		r.switchIn(ev)
	case ev.Kind == Inline:
		r.inline(ev)
	case ev.Kind == Entry:
		r.enter(ev)
	case ev.Kind == Exit:
		r.exit(ev)
	}
}

// switchOut: the process entered swtch. Its stack parks; the CPU is idle
// (apart from interrupts) until the next swtch exit.
func (r *reconstructor) switchOut(ev Event) {
	r.a.Switches++
	// The switcher is whatever the name/tag file marked '!' — not
	// necessarily named "swtch"; flag its stat so reports and the sweep
	// merge can skip the row without knowing the name.
	sw := r.fnStatOf(ev.Name, ev.fnIdx)
	sw.Calls++
	sw.CtxSwitch = true
	r.resolvePendingAsNew(ev.Time)
	if r.current != nil {
		if len(r.current.open) > 0 {
			r.current.suspendedAt = ev.Time
			r.suspended = append(r.suspended, r.current)
		} else {
			// Nothing open: no orphan exit can ever identify this
			// context again, so parking it would only leak. Its done
			// roots are already in the stats.
			r.freeStack(r.current)
		}
		r.current = nil
	}
	r.idleOpen = true
	r.idleStart = ev.Time
	r.idleIntr = 0
	r.item(ev, TraceSwitchOut, nil, 0)
}

// switchIn: some process came out of swtch; which one becomes clear from
// the next orphan exit (or doesn't, in which case it is a fresh context).
func (r *reconstructor) switchIn(ev Event) {
	if r.idleOpen {
		idle := ev.Time - r.idleStart - r.idleIntr
		if idle < 0 {
			idle = 0
		}
		r.a.Idle += idle
		r.idleOpen = false
	}
	// Interrupt frames opened in the idle loop but never closed (a lost
	// interrupt exit) are force-closed here as recovered: left open they
	// would permanently nest every later idle-window interrupt.
	r.closeAll(r.idleStack, ev.Time)
	r.pending = true
	if r.current != nil {
		// A switch-in with a context still attached means the matching
		// switch-out was lost (dropped strobe). The stack was never
		// parked, so no orphan exit can reclaim it and finish never
		// walks it — recycle it instead of leaking it.
		if !r.keepItems {
			for _, n := range r.current.open {
				r.freeNode(n)
			}
		}
		r.freeStack(r.current)
		r.current = nil
	}
	r.lastSwitchIn = ev.Time
	r.item(ev, TraceSwitchIn, nil, 0)
}

// resolvePendingAsNew turns an unresolved resumed block into a fresh
// context (a process making its first appearance).
func (r *reconstructor) resolvePendingAsNew(now sim.Time) {
	if !r.pending {
		return
	}
	r.pending = false
	// Completed top-level frames of the anonymous block are already in
	// the stats; nothing further to attach.
	if r.current == nil {
		r.current = r.newStack()
	}
}

// contextStack returns the stack events should apply to right now.
func (r *reconstructor) contextStack() *stack {
	if r.idleOpen {
		return r.idleStack
	}
	if r.current == nil {
		r.current = r.newStack()
	}
	return r.current
}

func (r *reconstructor) enter(ev Event) {
	if r.pending {
		// New frames in an unresolved block accumulate on a fresh
		// current stack; resolution may later splice them.
		r.pending = r.pendingEnter(ev)
		return
	}
	st := r.contextStack()
	r.push(st, ev)
}

// pendingEnter handles an entry during pending-resume: frames stack up
// normally on a tentative current stack; reports whether still pending.
func (r *reconstructor) pendingEnter(ev Event) bool {
	if r.current == nil {
		r.current = r.newStack()
	}
	r.push(r.current, ev)
	return true // stays pending until an orphan exit or next switch
}

func (r *reconstructor) push(st *stack, ev Event) {
	n := r.newNode(ev.Name, ev.Time, ev.fnIdx)
	if r.keepItems && len(st.open) > 0 {
		parent := st.open[len(st.open)-1]
		parent.Children = append(parent.Children, n)
	}
	depth := len(st.open)
	st.open = append(st.open, n)
	r.item(ev, TraceEnter, n, depth)
}

func (r *reconstructor) inline(ev Event) {
	st := r.contextStack()
	if r.keepItems && len(st.open) > 0 {
		top := st.open[len(st.open)-1]
		top.Marks = append(top.Marks, Mark{Name: ev.Name, Time: ev.Time})
	}
	r.fnStatOf(ev.Name, ev.fnIdx).Inlines++
	r.item(ev, TraceInline, nil, len(st.open))
}

func (r *reconstructor) exit(ev Event) {
	if r.idleOpen {
		// Interrupt activity inside swtch.
		if r.closeOn(r.idleStack, ev, true) {
			return
		}
		// Exit with no matching frame in idle: orphan.
		r.a.OrphanExits++
		return
	}
	if r.pending {
		// Try the tentative stack first (balanced calls since resume).
		if r.current != nil && r.closeOn(r.current, ev, false) {
			return
		}
		// Orphan exit: identifies the resumed process. Adopt the oldest
		// suspended stack whose top frame matches.
		for i, st := range r.suspended {
			if len(st.open) > 0 && st.open[len(st.open)-1].Name == ev.Name {
				r.adopt(i, ev)
				return
			}
		}
		// No match anywhere: truly orphan (entered before capture).
		r.a.OrphanExits++
		r.fnStatOf(ev.Name, ev.fnIdx).Calls++ // count the call even without timing
		r.pending = false
		if r.current == nil {
			r.current = r.newStack()
		}
		return
	}
	st := r.contextStack()
	if r.closeOn(st, ev, true) {
		return
	}
	r.a.OrphanExits++
}

// adopt resolves pending-resume onto suspended stack i: credit its frames
// with the out-of-context interval, splice tentative children, close the
// matching frame.
func (r *reconstructor) adopt(i int, ev Event) {
	st := r.suspended[i]
	copy(r.suspended[i:], r.suspended[i+1:])
	r.suspended[len(r.suspended)-1] = nil
	r.suspended = r.suspended[:len(r.suspended)-1]
	resumeAt := r.lastSwitchInTime()
	for _, n := range st.open {
		n.outOfContext += resumeAt - st.suspendedAt
	}
	// Frames completed since the switch-in belong to the resumed frame.
	if r.current != nil {
		top := st.open[len(st.open)-1]
		for _, c := range r.current.doneRoots() {
			top.Children = append(top.Children, c)
		}
		top.childTime += r.current.doneElapsed
		// Unclosed tentative frames would be a malformed capture;
		// recover by discarding (counted).
		if len(r.current.open) > 0 {
			r.a.Recovered += len(r.current.open)
			if !r.keepItems {
				for _, n := range r.current.open {
					r.freeNode(n)
				}
			}
		}
		r.freeStack(r.current)
	}
	r.current = st
	r.pending = false
	r.closeOn(st, ev, true)
}

// lastSwitchInTime reports the time of the most recent switch-in marker
// (the capture start when none has occurred).
func (r *reconstructor) lastSwitchInTime() sim.Time {
	return r.lastSwitchIn
}

// doneRoots reports a stack's completed top-level frames (used when
// splicing a tentative block into an adopted stack).
func (st *stack) doneRoots() []*Node {
	return st.done
}

// closeOn closes the frame named by ev on st. With recovery enabled,
// a mismatched exit force-closes intervening frames (lost events); it
// reports whether the exit was consumed.
func (r *reconstructor) closeOn(st *stack, ev Event, recover bool) bool {
	idx := -1
	for i := len(st.open) - 1; i >= 0; i-- {
		if st.open[i].Name == ev.Name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	if !recover && idx != len(st.open)-1 {
		return false
	}
	// Force-close anything above the match (missing exits in the
	// capture — e.g. RAM overflow mid-run).
	for len(st.open)-1 > idx {
		top := st.open[len(st.open)-1]
		top.End = ev.Time
		top.Complete = false
		st.open = st.open[:len(st.open)-1]
		st.open[len(st.open)-1].childTime += top.Elapsed()
		r.a.Recovered++
		r.record(top)
		if !r.keepItems {
			r.freeNode(top)
		}
	}
	n := st.open[idx]
	n.End = ev.Time
	n.Complete = true
	st.open = st.open[:idx]
	if len(st.open) > 0 {
		st.open[len(st.open)-1].childTime += n.Elapsed()
	} else {
		st.doneElapsed += n.Elapsed()
		if r.keepItems {
			st.done = append(st.done, n)
		}
	}
	r.record(n)
	r.item(ev, TraceExit, n, len(st.open))
	if st == r.idleStack && len(st.open) == 0 && r.idleOpen {
		r.idleIntr += n.Elapsed()
	}
	if !r.keepItems {
		r.freeNode(n)
	}
	return true
}

// closeAll force-closes every open frame on st, deepest first, counting
// each as recovered — the exits were lost (a missed interrupt return, or
// records dropped at a lossy drain boundary).
func (r *reconstructor) closeAll(st *stack, at sim.Time) {
	for len(st.open) > 0 {
		top := st.open[len(st.open)-1]
		st.open = st.open[:len(st.open)-1]
		top.End = at
		top.Complete = false
		if len(st.open) > 0 {
			st.open[len(st.open)-1].childTime += top.Elapsed()
		}
		r.a.Recovered++
		r.record(top)
		if !r.keepItems {
			r.freeNode(top)
		}
	}
}

// lossBoundary closes the books at a lossy drain boundary: records were
// dropped between two segments, so every open frame — in the running
// context, the idle stack, and every suspended process — is force-closed
// as recovered rather than left to mis-nest against post-loss events, and
// the context-tracking state starts afresh. It reports how many frames it
// force-closed.
func (r *reconstructor) lossBoundary() int {
	before := r.a.Recovered
	at := r.a.End
	if r.idleOpen {
		idle := at - r.idleStart - r.idleIntr
		if idle > 0 {
			r.a.Idle += idle
		}
		r.idleOpen = false
	}
	r.closeAll(r.idleStack, at)
	if r.current != nil {
		r.closeAll(r.current, at)
		r.freeStack(r.current)
		r.current = nil
	}
	for i, st := range r.suspended {
		r.closeAll(st, at)
		r.freeStack(st)
		r.suspended[i] = nil
	}
	r.suspended = r.suspended[:0]
	r.pending = false
	return r.a.Recovered - before
}

// record folds a closed node into the per-function statistics.
func (r *reconstructor) record(n *Node) {
	s := r.fnStatOf(n.Name, n.fn)
	s.Calls++
	if !n.Complete {
		return
	}
	s.TimedCalls++
	s.Elapsed += n.Elapsed()
	net := n.Net()
	s.Net += net
	if net > s.Max {
		s.Max = net
	}
	if net < s.Min {
		s.Min = net
	}
}

// finish closes the books at capture end.
func (r *reconstructor) finish() {
	if r.idleOpen {
		idle := r.a.End - r.idleStart - r.idleIntr
		if idle > 0 {
			r.a.Idle += idle
		}
	}
	// Open frames at capture end: count calls, no timing. Deepest first,
	// so each child's End (and therefore Elapsed) is final before it is
	// folded into its parent's childTime — keeping Net consistent for
	// the trace rendering of frames left open.
	countOpen := func(st *stack) {
		if st == nil {
			return
		}
		for i := len(st.open) - 1; i >= 0; i-- {
			n := st.open[i]
			n.End = r.a.End
			if i > 0 {
				st.open[i-1].childTime += n.Elapsed()
			}
			r.fnStatOf(n.Name, n.fn).Calls++
		}
	}
	countOpen(r.current)
	countOpen(r.idleStack)
	for _, st := range r.suspended {
		countOpen(st)
	}
}

// Functions returns the per-function statistics sorted by net time
// descending (ties by name for determinism).
func (a *Analysis) Functions() []*FnStat {
	out := make([]*FnStat, 0, len(a.fns))
	for _, s := range a.fns {
		out = append(out, s)
	}
	sortStats(out)
	return out
}

// Fn returns one function's stats.
func (a *Analysis) Fn(name string) (*FnStat, bool) {
	s, ok := a.fns[name]
	return s, ok
}

// Elapsed is the capture's wall span.
func (a *Analysis) Elapsed() sim.Time { return a.End - a.Start }

// RunTime is elapsed minus idle: the accumulated run time of Figure 3.
func (a *Analysis) RunTime() sim.Time { return a.Elapsed() - a.Idle }

// Avg reports a stat's mean per-call net time (the paper's avg column).
// Only timed calls divide: Calls also counts orphan exits, recovered
// frames and frames open at capture end, whose durations are unknowable,
// and dividing by them would bias the average low.
func (s *FnStat) Avg() sim.Time {
	if s.TimedCalls == 0 {
		return 0
	}
	return s.Net / sim.Time(s.TimedCalls)
}

// AvgElapsed reports mean per-call inclusive time — Table 1's "times are
// inclusive of subroutines that are called" basis. As with Avg, untimed
// calls are excluded.
func (s *FnStat) AvgElapsed() sim.Time {
	if s.TimedCalls == 0 {
		return 0
	}
	return s.Elapsed / sim.Time(s.TimedCalls)
}

// MinOrZero is Min, or zero when no timed call completed.
func (s *FnStat) MinOrZero() sim.Time {
	if s.Min == 1<<62 {
		return 0
	}
	return s.Min
}

// sortStats orders by net time descending, ties broken by name so reports
// are deterministic.
func sortStats(stats []*FnStat) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Net != stats[j].Net {
			return stats[i].Net > stats[j].Net
		}
		return stats[i].Name < stats[j].Name
	})
}
