package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/sim"
)

// Timeline is a coarse graphical view of where CPU time went over the
// capture — per-subsystem activity intensity in fixed time buckets, the
// "graphically representing the code path" the paper's future-work section
// wants. Each cell holds the net time attributed to a group inside one
// bucket.
type Timeline struct {
	Start       sim.Time
	BucketWidth sim.Time
	Groups      []string // sorted by total, descending
	Cells       map[string][]sim.Time
	totals      map[string]sim.Time
}

// Timeline buckets net function time by groupOf over the capture span.
// Functions missing from groupOf fall into "other"; swtch/idle time is not
// attributed.
func (a *Analysis) Timeline(groupOf map[string]string, buckets int) *Timeline {
	if buckets <= 0 {
		buckets = 60
	}
	span := a.Elapsed()
	if span <= 0 {
		return &Timeline{BucketWidth: 1, Cells: map[string][]sim.Time{}}
	}
	width := (span + sim.Time(buckets) - 1) / sim.Time(buckets)
	tl := &Timeline{
		Start:       a.Start,
		BucketWidth: width,
		Cells:       make(map[string][]sim.Time),
		totals:      make(map[string]sim.Time),
	}
	add := func(group string, at sim.Time, amount sim.Time) {
		row, ok := tl.Cells[group]
		if !ok {
			row = make([]sim.Time, buckets)
			tl.Cells[group] = row
		}
		i := int((at - a.Start) / width)
		if i >= buckets {
			i = buckets - 1
		}
		if i < 0 {
			i = 0
		}
		row[i] += amount
		tl.totals[group] += amount
	}
	for _, it := range a.Items {
		if it.Kind != TraceExit || it.Node == nil || !it.Node.Complete {
			continue
		}
		group := groupOf[it.Node.Name]
		if group == "" {
			group = "other"
		}
		// Attribute the whole net time at the midpoint of the frame —
		// coarse, but the buckets are coarse by design.
		mid := it.Node.Start + it.Node.Elapsed()/2
		add(group, mid, it.Node.Net())
	}
	for g := range tl.Cells {
		tl.Groups = append(tl.Groups, g)
	}
	sort.Slice(tl.Groups, func(i, j int) bool {
		if tl.totals[tl.Groups[i]] != tl.totals[tl.Groups[j]] {
			return tl.totals[tl.Groups[i]] > tl.totals[tl.Groups[j]]
		}
		return tl.Groups[i] < tl.Groups[j]
	})
	return tl
}

// intensity maps a fill fraction to a display character.
var intensity = []byte(" .:-=+*#%@")

// Write renders the timeline as rows of intensity characters, one per
// group, dark cells meaning the group dominated that interval.
func (tl *Timeline) Write(w io.Writer) error {
	ew := &errWriter{w: w}
	if len(tl.Groups) == 0 {
		_, err := fmt.Fprintln(ew, "(empty capture)")
		return err
	}
	fmt.Fprintf(ew, "timeline: %v per cell, starting at %v\n", tl.BucketWidth, tl.Start)
	for _, g := range tl.Groups {
		row := tl.Cells[g]
		var b strings.Builder
		for _, v := range row {
			frac := float64(v) / float64(tl.BucketWidth)
			idx := int(frac * float64(len(intensity)))
			if idx >= len(intensity) {
				idx = len(intensity) - 1
			}
			if idx < 0 {
				idx = 0
			}
			b.WriteByte(intensity[idx])
		}
		fmt.Fprintf(ew, "%-10s |%s| %6d us\n", g, b.String(), tl.totals[g].Micros())
	}
	return ew.err
}

// String renders the timeline.
func (tl *Timeline) String() string {
	var b strings.Builder
	_ = tl.Write(&b)
	return b.String()
}
